// Command figures regenerates Figures 1, 2 and 3 of the paper from the
// running example: the statement-level CFG, the extended CFG, and the
// forward control dependence graph annotated with frequency and execution
// time tuples (TIME(START) = 920, STD_DEV(START) = 300).
//
// Usage:
//
//	figures [-fig 1|2|3|all] [-dot]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "which figure to print: 1, 2, 3 or all")
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of text (figures 1 and 3)")
	// figures' fixed paper example is too small for caching to matter, but
	// the shared flag is still accepted and validated so a REPRO_CACHE_DIR
	// that works for the other tools never breaks this one.
	cacheDir := artifact.AddCLIFlags(flag.CommandLine)
	obsCLI := obs.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	if _, err := artifact.StoreFromFlag(*cacheDir); err != nil {
		fail(err)
	}
	if _, err := obsCLI.Begin(); err != nil {
		fail(err)
	}
	show1 := *fig == "1" || *fig == "all"
	show2 := *fig == "2" || *fig == "all"
	show3 := *fig == "3" || *fig == "all"
	if !show1 && !show2 && !show3 {
		fail(fmt.Errorf("unknown figure %q", *fig))
	}
	if show1 {
		g, text := experiments.Figure1()
		if *dot {
			fmt.Print(g.DOT())
		} else {
			fmt.Println(text)
		}
	}
	if show2 {
		a, text, err := experiments.Figure2()
		if err != nil {
			fail(err)
		}
		if *dot {
			fmt.Print(a.Ext.G.DOT())
		} else {
			fmt.Println(text)
		}
	}
	if show3 {
		r, err := experiments.Figure3()
		if err != nil {
			fail(err)
		}
		if *dot {
			fmt.Print(r.A.FCDG.DOT())
		} else {
			fmt.Println(r.Format())
		}
	}
	if err := obsCLI.End("figures"); err != nil {
		fail(err)
	}
}
