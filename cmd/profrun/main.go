// Command profrun executes a program with optimized counter-based
// profiling and accumulates the recovered TOTAL_FREQ profile into a
// program-database JSON file, merging with any existing content — the
// paper's workflow of gathering representative frequencies over several
// runs.
//
// Usage:
//
//	profrun -src prog.f -db profile.json [-seeds 1,2,3] [-workers N]
//	        [-engine tree|vm|vm-batch] [-plan sarkar|ball-larus]
//	        [-loopvar] [-check] [-print]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/database"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/profiler"
)

func main() {
	src := flag.String("src", "", "source file (required)")
	dbPath := flag.String("db", "", "program database file to create or merge into (required)")
	seeds := flag.String("seeds", "1", "comma-separated interpreter seeds, one run each")
	loopvar := flag.Bool("loopvar", false, "also collect loop-frequency variance (extra instrumented run per seed)")
	show := flag.Bool("print", false, "print program output (PRINT statements)")
	runCheck := flag.Bool("check", false, "run the static checker passes; error findings abort")
	engine := flag.String("engine", "", "execution engine: tree|vm|vm-batch (default: REPRO_ENGINE, else tree)")
	plan := flag.String("plan", "", "counter-placement strategy: sarkar|ball-larus (default: REPRO_PLAN, else sarkar)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for analysis and per-seed profiling runs")
	cacheDir := artifact.AddCLIFlags(flag.CommandLine)
	obsCLI := obs.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "profrun:", err)
		os.Exit(1)
	}
	tr, err := obsCLI.Begin()
	if err != nil {
		fail(err)
	}
	if *src == "" || *dbPath == "" {
		fail(fmt.Errorf("-src and -db are required"))
	}
	text, err := os.ReadFile(*src)
	if err != nil {
		fail(err)
	}
	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fail(err)
	}
	strat, err := core.ParseStrategy(*plan)
	if err != nil {
		fail(err)
	}
	store, err := artifact.StoreFromFlag(*cacheDir)
	if err != nil {
		fail(err)
	}
	loadOpts := core.LoadOptions{Workers: *workers, Trace: tr, Engine: eng, Plan: strat, Cache: store}
	var collector *check.Collector
	if *runCheck {
		collector = &check.Collector{}
		loadOpts.CheckProc = collector.CheckProc
	}
	p, err := core.LoadOpts(string(text), loadOpts)
	if err != nil {
		fail(err)
	}
	if collector != nil {
		if err := check.Gate(os.Stderr, *src, collector); err != nil {
			fail(err)
		}
	}
	var seedList []uint64
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fail(fmt.Errorf("bad seed %q", s))
		}
		seedList = append(seedList, v)
	}

	db := database.New(*src)
	if _, err := os.Stat(*dbPath); err == nil {
		db, err = database.Load(*dbPath)
		if err != nil {
			fail(err)
		}
	}

	opts := interp.Options{}
	if *show {
		opts.Out = os.Stdout
	}
	profile, _, err := p.Profile(opts, seedList...)
	if err != nil {
		fail(err)
	}
	db.Merge(profile, len(seedList), seedList...)
	if *loopvar {
		for _, seed := range seedList {
			o := opts
			o.Seed = seed
			vars, err := profiler.VarianceRun(p.An, o)
			if err != nil {
				fail(err)
			}
			db.MergeLoopVar(vars)
		}
	}
	if err := db.Save(*dbPath); err != nil {
		fail(err)
	}
	fmt.Printf("profrun: %d run(s) merged into %s (now %d runs total)\n",
		len(seedList), *dbPath, db.Runs)
	if err := obsCLI.End("profrun"); err != nil {
		fail(err)
	}
}
