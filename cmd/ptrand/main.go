// Command ptrand is the long-running analysis daemon: it serves the full
// paper pipeline (static checks, counter planning, profiling, TIME/VAR
// estimation) over HTTP.
//
//	POST /v1/analyze  {"source": "...", "engine": "vm", "plan": "sarkar", "seeds": [1,2]}
//	GET  /healthz     liveness (503 while draining)
//	GET  /metrics     Prometheus text exposition of the obs registry
//
// The daemon caches compiled artifacts across requests (content hash ×
// engine × plan, single-flighted), bounds concurrency with a worker pool
// and a shedding queue, enforces per-request deadlines, and drains
// in-flight analyses on SIGINT/SIGTERM before exiting.
//
// Usage:
//
//	ptrand [-addr :8321] [-workers N] [-queue N] [-cache N] [-timeout 30s]
//	ptrand -smoke
//
// -smoke starts the server on a loopback listener, runs one cold and one
// warm analysis plus a health and metrics probe against it, prints the
// measured latencies, and exits non-zero on any failure — the CI
// smoke test without an orchestrator.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", 0, "max concurrent analyses (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "max queued requests before shedding with 503")
	cacheSize := flag.Int("cache", 128, "compiled-artifact LRU capacity")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	smoke := flag.Bool("smoke", false, "self-test against an in-process server and exit")
	cacheDir := artifact.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	disk, err := artifact.StoreFromFlag(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptrand:", err)
		os.Exit(1)
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		Queue:          *queue,
		CacheSize:      *cacheSize,
		RequestTimeout: *timeout,
		DiskCache:      disk,
	})

	if *smoke {
		if err := runSmoke(svc); err != nil {
			fmt.Fprintln(os.Stderr, "ptrand: smoke:", err)
			os.Exit(1)
		}
		return
	}

	srv := &http.Server{Addr: *addr, Handler: svc}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("ptrand: listening on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("ptrand: %v", err)
	case s := <-sig:
		log.Printf("ptrand: %v, draining", s)
	}

	// Drain in order: stop admitting new analyses, wait for in-flight ones,
	// then close the listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("ptrand: drain incomplete: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("ptrand: server shutdown: %v", err)
	}
}

// smokeSrc is a tiny program exercising a call, a loop, and a branch.
const smokeSrc = `      PROGRAM SMOKE
      INTEGER I, S, T
      S = 0
      DO 10 I = 1, 10
         IF (RAND() .GE. 0.5) THEN
            CALL WORK(I, T)
            S = S + T
         ENDIF
   10 CONTINUE
      END

      SUBROUTINE WORK(N, T)
      INTEGER N, J, T
      T = 0
      DO 20 J = 1, N
         T = T + J
   20 CONTINUE
      RETURN
      END
`

// runSmoke exercises the service end to end over a real loopback listener.
func runSmoke(svc *service.Service) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	analyze := func() (cacheHit bool, ms float64, err error) {
		body, _ := json.Marshal(map[string]any{"source": smokeSrc, "seeds": []uint64{1, 2, 3}})
		t0 := time.Now()
		resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			return false, 0, err
		}
		defer resp.Body.Close()
		ms = float64(time.Since(t0)) / float64(time.Millisecond)
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return false, ms, fmt.Errorf("analyze: status %d: %s", resp.StatusCode, b)
		}
		var out struct {
			CacheHit bool   `json:"cache_hit"`
			Main     string `json:"main"`
			Errors   int    `json:"errors"`
			Procs    []any  `json:"procs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return false, ms, err
		}
		if out.Main == "" || len(out.Procs) == 0 {
			return false, ms, fmt.Errorf("analyze: incomplete result %+v", out)
		}
		if out.Errors != 0 {
			return false, ms, fmt.Errorf("analyze: %d error diagnostics", out.Errors)
		}
		return out.CacheHit, ms, nil
	}

	hit, coldMs, err := analyze()
	if err != nil {
		return err
	}
	if hit {
		return fmt.Errorf("first analyze reported a cache hit")
	}
	hit, warmMs, err := analyze()
	if err != nil {
		return err
	}
	if !hit {
		return fmt.Errorf("second analyze missed the cache")
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{"repro_service_requests_total", "repro_service_cache_hits_total"} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics: missing %s", want)
		}
	}

	fmt.Printf("ptrand smoke ok: cold %.1fms, warm %.1fms (hit)\n", coldMs, warmMs)
	return nil
}
