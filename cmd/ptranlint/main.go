// Command ptranlint runs the internal/check static verification and lint
// passes over a program in the Fortran subset: it re-proves the paper's
// structural guarantees (reducibility, ECFG well-formedness, FCDG shape,
// counter-plan sufficiency) and lints the source (constant branches,
// zero-trip DO loops, dead code), printing one diagnostic per finding.
//
// Usage:
//
//	ptranlint [-json] [-Werror] [-passes name,name] [-workers N] [-src] prog.f
//	ptranlint -hot-paths K [-hot-seed N] prog.f
//	ptranlint -dataflow prog.f
//	ptranlint -list
//
// With -dataflow the report additionally carries each procedure's monotone
// dataflow facts: reachability and per-analysis fact counts, the proven
// infeasible edges, decided branches and constant trip counts. These are
// the facts the counter planner and the estimator consume; the oracle's
// dataflow-sound invariant checks every one of them dynamically.
//
// With -hot-paths K the program additionally runs once under Ball–Larus
// path instrumentation and the report carries each procedure's top-K most
// frequently completed acyclic paths (decoded node sequences with counts)
// — as text lines, or as the hot_paths array of the JSON document.
//
// Exit status: 0 when no error-severity findings (warnings allowed unless
// -Werror), 1 when findings fail the run, 2 on usage or internal errors.
// Syntax and semantic errors in the input are themselves reported in the
// same diagnostic format (pass "parse") and exit 1.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/artifact"
	"repro/internal/cfg"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/pathprof"
	"repro/internal/report"
)

func main() {
	src := flag.String("src", "", "source file (or pass it as the positional argument)")
	jsonOut := flag.Bool("json", false, "emit the shared JSON diagnostic document instead of text")
	werror := flag.Bool("Werror", false, "treat warnings as errors")
	passes := flag.String("passes", "", "comma-separated pass names (default: all)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the per-procedure analysis")
	dflow := flag.Bool("dataflow", false, "report each procedure's dataflow facts (infeasible edges, decided branches, constant trips)")
	hotPaths := flag.Int("hot-paths", 0, "report each procedure's top-K hot acyclic paths from one profiled run (0: off)")
	hotSeed := flag.Uint64("hot-seed", 1, "random seed of the -hot-paths profiling run")
	list := flag.Bool("list", false, "list registry passes and exit")
	cacheDir := artifact.AddCLIFlags(flag.CommandLine)
	obsCLI := obs.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, p := range check.Registry() {
			fmt.Printf("%-12s %s\n", p.Name, p.Desc)
		}
		return
	}
	if *src == "" && flag.NArg() == 1 {
		*src = flag.Arg(0)
	}
	if *src == "" || flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: ptranlint [-json] [-Werror] [-passes name,name] prog.f")
		os.Exit(2)
	}
	text, err := os.ReadFile(*src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptranlint:", err)
		os.Exit(2)
	}

	opts := check.Options{}
	if *passes != "" {
		opts.Passes = strings.Split(*passes, ",")
	}
	tr, err := obsCLI.Begin()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptranlint:", err)
		os.Exit(2)
	}
	store, err := artifact.StoreFromFlag(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptranlint:", err)
		os.Exit(2)
	}
	diags, pipe, err := lint(string(text), opts, *workers, tr, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptranlint:", err)
		os.Exit(2)
	}
	var flow []flowReport
	if *dflow && pipe != nil {
		flow = flowReports(pipe)
	}
	var hot []report.HotPath
	if *hotPaths > 0 && pipe != nil {
		hps, err := pipe.HotPaths(interp.Options{Seed: *hotSeed, MaxSteps: 50_000_000}, *hotPaths)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptranlint: hot-paths:", err)
			os.Exit(2)
		}
		hot = toReportHotPaths(hps)
	}
	if err := obsCLI.End("ptranlint"); err != nil {
		fmt.Fprintln(os.Stderr, "ptranlint:", err)
		os.Exit(2)
	}
	emit(*src, diags, hot, flow, *jsonOut, *werror)
}

// flowReport is one procedure's dataflow fact summary, ordered for output.
type flowReport struct {
	Proc    string         `json:"proc"`
	Stats   dataflow.Stats `json:"stats"`
	Edges   []string       `json:"infeasible_edges,omitempty"`
	Decided []string       `json:"decided_branches,omitempty"`
	Trips   []string       `json:"const_trips,omitempty"`
}

// flowReports assembles the per-procedure dataflow summaries in sorted
// procedure order.
func flowReports(pipe *core.Pipeline) []flowReport {
	names := make([]string, 0, len(pipe.An.Procs))
	for name := range pipe.An.Procs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]flowReport, 0, len(names))
	for _, name := range names {
		f := pipe.An.Procs[name].Flow
		if f == nil {
			continue
		}
		fr := flowReport{Proc: name, Stats: f.Stats()}
		for _, e := range f.Infeasible {
			fr.Edges = append(fr.Edges, e.String())
		}
		decided := make([]cfg.NodeID, 0, len(f.ConstBranch))
		for n := range f.ConstBranch {
			decided = append(decided, n)
		}
		sort.Slice(decided, func(i, j int) bool { return decided[i] < decided[j] })
		for _, n := range decided {
			fr.Decided = append(fr.Decided, fmt.Sprintf("node %d always %s", n, f.ConstBranch[n]))
		}
		tests := make([]cfg.NodeID, 0, len(f.ConstTrips))
		for n := range f.ConstTrips {
			tests = append(tests, n)
		}
		sort.Slice(tests, func(i, j int) bool { return tests[i] < tests[j] })
		for _, n := range tests {
			fr.Trips = append(fr.Trips, fmt.Sprintf("DO test %d trips %d", n, f.ConstTrips[n]))
		}
		out = append(out, fr)
	}
	return out
}

// toReportHotPaths converts the pathprof rows into the shared report
// schema (plain ints for the node ids).
func toReportHotPaths(hps []pathprof.HotPath) []report.HotPath {
	out := make([]report.HotPath, len(hps))
	for i, h := range hps {
		nodes := make([]int, len(h.Nodes))
		for j, n := range h.Nodes {
			nodes[j] = int(n)
		}
		out[i] = report.HotPath{
			Proc: h.Proc, ID: h.ID, Count: h.Count,
			Nodes: nodes, FromEntry: h.FromEntry, ToExit: h.ToExit,
		}
	}
	return out
}

// lint runs the front end and the checker, turning syntax/semantic errors
// into diagnostics rather than bare failures. The loaded pipeline is
// returned for follow-on reports (nil when the front end failed).
func lint(text string, opts check.Options, workers int, tr *obs.Trace, store *artifact.Store) ([]report.Diagnostic, *core.Pipeline, error) {
	collector := &check.Collector{Opts: opts}
	pipe, err := core.LoadOpts(text, core.LoadOptions{
		Workers:   workers,
		CheckProc: collector.CheckProc,
		Trace:     tr,
		Cache:     store,
	})
	if err != nil {
		var se *lang.SyntaxError
		if errors.As(err, &se) {
			return []report.Diagnostic{{
				Severity: report.Error,
				Pass:     "parse",
				Line:     se.Line,
				Col:      se.Col,
				Message:  se.Msg,
			}}, nil, nil
		}
		// Lowering/analysis errors have no richer structure than the text.
		return []report.Diagnostic{{
			Severity: report.Error,
			Pass:     "parse",
			Message:  err.Error(),
		}}, nil, nil
	}
	diags, err := collector.Diagnostics()
	return diags, pipe, err
}

// emit prints the findings and exits with the verdict.
func emit(path string, diags []report.Diagnostic, hot []report.HotPath, flow []flowReport, jsonOut, werror bool) {
	fail := report.Count(diags, report.Error) > 0
	if werror && report.Count(diags, report.Warning) > 0 {
		fail = true
	}
	if jsonOut {
		doc := report.NewDocument("ptranlint", diags)
		doc.HotPaths = hot
		if len(flow) > 0 {
			doc.Dataflow = flow
		}
		if err := doc.Encode(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ptranlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%s\n", path, d)
		}
		if len(diags) == 0 {
			fmt.Printf("%s: clean (%d passes)\n", path, len(check.Registry()))
		}
		for _, fr := range flow {
			st := fr.Stats
			fmt.Printf("%s: dataflow %s: %d/%d nodes reached, %d infeasible edges, %d decided branches, %d const trips, %d dead, %d dead stores, %d use-before-def\n",
				path, fr.Proc, st.ReachedNodes, st.Nodes, st.Infeasible, st.ConstBranch, st.ConstTrips, st.DeadNodes, st.DeadStores, st.UseBeforeDef)
			for _, e := range fr.Edges {
				fmt.Printf("%s: dataflow %s: infeasible %s\n", path, fr.Proc, e)
			}
			for _, d := range fr.Decided {
				fmt.Printf("%s: dataflow %s: %s\n", path, fr.Proc, d)
			}
			for _, tr := range fr.Trips {
				fmt.Printf("%s: dataflow %s: %s\n", path, fr.Proc, tr)
			}
		}
		for _, h := range hot {
			fmt.Printf("%s: hot: %s\n", path, h)
		}
	}
	if fail {
		os.Exit(1)
	}
}
