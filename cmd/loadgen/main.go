// Command loadgen drives the analysis service under concurrent load and
// records the service-level numbers — p50/p99 latency, throughput, cache
// hit rate, cold-compile vs warm-hit latency — as a bench/v1 snapshot
// entry, the same schema cmd/bench writes.
//
// By default it spins the service up in-process on a loopback listener
// (so a single command measures the whole stack, HTTP included) and holds
// -c requests in flight until -n requests complete:
//
//	loadgen -n 5000 -c 1000 -out BENCH_2026-08-08d.json
//	loadgen -url http://host:8321   # aim at an external daemon instead
//
// The request mix cycles through -sources distinct program variants, so a
// run measures both cold compiles (first hit per variant) and warm cache
// hits (everything after).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/report"
	"repro/internal/service"
)

// makeSource builds one program variant: the variant constant makes each a
// distinct content hash (so -sources controls the cold-compile count), and
// the pad subroutines grow the compiled code without growing the executed
// trace — the cold/hot latency gap is the front end, which is exactly what
// the artifact cache amortizes.
func makeSource(variant, pad int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, `      PROGRAM LOAD
      INTEGER I, S, T
      S = %d
      DO 10 I = 1, 20
         IF (RAND() .GE. 0.5) THEN
            CALL WORK(I, T)
            S = S + T
         ENDIF
   10 CONTINUE
      END

      SUBROUTINE WORK(N, T)
      INTEGER N, J, T
      T = 0
      DO 20 J = 1, N
         T = T + J
   20 CONTINUE
      RETURN
      END
`, variant)
	for p := 0; p < pad; p++ {
		fmt.Fprintf(&b, `
      SUBROUTINE PAD%d(N, T)
      INTEGER N, J, T
      T = 0
      DO 30 J = 1, N
         IF (T .GE. N) THEN
            T = T - N
         ELSE
            T = T + J
         ENDIF
   30 CONTINUE
      RETURN
      END
`, p)
	}
	return b.String()
}

type sample struct {
	ms  float64
	hit bool
}

func main() {
	url := flag.String("url", "", "service base URL (empty: run the service in-process)")
	n := flag.Int("n", 5000, "total requests")
	c := flag.Int("c", 1000, "concurrent in-flight requests")
	sources := flag.Int("sources", 8, "distinct program variants (cold compiles)")
	pad := flag.Int("pad", 24, "padding subroutines per variant (compile weight)")
	seeds := flag.Int("seeds", 3, "profiling seeds per request")
	workers := flag.Int("workers", 0, "in-process service worker slots (0 = GOMAXPROCS)")
	out := flag.String("out", "", "append a bench snapshot entry to this BENCH_<date>.json (created if missing)")
	entry := flag.String("entry", "service-loadgen", "bench entry name")
	cacheDir := artifact.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	disk, err := artifact.StoreFromFlag(*cacheDir)
	if err != nil {
		fatal(err)
	}

	base := *url
	if base == "" {
		// In-process server: the queue must hold the whole in-flight load
		// minus the workers, or the run would measure shedding, not latency.
		svc := service.New(service.Config{
			Workers:   *workers,
			Queue:     *c + 64,
			DiskCache: disk,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		srv := &http.Server{Handler: svc}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
	}

	bodies := make([][]byte, *sources)
	for i := range bodies {
		req := map[string]any{"source": makeSource(i, *pad), "seeds": seedList(*seeds)}
		b, err := json.Marshal(req)
		if err != nil {
			fatal(err)
		}
		bodies[i] = b
	}

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        *c,
			MaxIdleConnsPerHost: *c,
			MaxConnsPerHost:     0,
		},
		Timeout: 5 * time.Minute,
	}

	// Uncontended probes first: one cold request per variant (the compile)
	// and one warm request right after (the cache hit). Measuring these
	// outside the storm keeps queue wait out of the cold/hot comparison.
	var coldProbe, hotProbe []float64
	for i, b := range bodies {
		ms, hit, err := timedAnalyze(client, base, b)
		if err != nil {
			fatal(fmt.Errorf("cold probe %d: %w", i, err))
		}
		if hit {
			fatal(fmt.Errorf("cold probe %d unexpectedly hit the cache", i))
		}
		coldProbe = append(coldProbe, ms)
		ms, hit, err = timedAnalyze(client, base, b)
		if err != nil {
			fatal(fmt.Errorf("hot probe %d: %w", i, err))
		}
		if !hit {
			fatal(fmt.Errorf("hot probe %d missed the cache", i))
		}
		hotProbe = append(hotProbe, ms)
	}

	samples := make([]sample, *n)
	var (
		next        atomic.Int64
		inflight    atomic.Int64
		maxInflight atomic.Int64
		failures    atomic.Int64
	)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				cur := inflight.Add(1)
				for {
					old := maxInflight.Load()
					if cur <= old || maxInflight.CompareAndSwap(old, cur) {
						break
					}
				}
				rt0 := time.Now()
				hit, err := analyze(client, base, bodies[i%len(bodies)])
				ms := float64(time.Since(rt0)) / float64(time.Millisecond)
				inflight.Add(-1)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: request %d: %v\n", i, err)
					continue
				}
				samples[i] = sample{ms: ms, hit: hit}
			}
		}()
	}
	wg.Wait()
	wallMs := float64(time.Since(t0)) / float64(time.Millisecond)

	if failures.Load() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d/%d requests failed\n", failures.Load(), *n)
		os.Exit(1)
	}

	var all []float64
	hits := 0
	for _, s := range samples {
		all = append(all, s.ms)
		if s.hit {
			hits++
		}
	}
	sort.Float64s(all)
	metrics := report.Metrics{
		"requests":         float64(*n),
		"concurrency":      float64(*c),
		"max_inflight":     float64(maxInflight.Load()),
		"requests_per_sec": float64(*n) / (wallMs / 1000),
		"latency_p50_ms":   quantile(all, 0.50),
		"latency_p99_ms":   quantile(all, 0.99),
		"cache_hit_rate":   float64(hits) / float64(*n),
		"cold_mean_ms":     mean(coldProbe),
		"hot_mean_ms":      mean(hotProbe),
	}
	if mean(hotProbe) > 0 {
		metrics["cold_over_hot"] = mean(coldProbe) / mean(hotProbe)
	}

	// Restart-warm probe: a brand-new in-process service sharing the same
	// on-disk artifact cache simulates a daemon restart. Its in-memory LRU
	// starts empty (every probe reports a cache miss), but the disk half
	// serves the per-procedure artifacts, so the "cold" compile after a
	// restart should sit far below the true cold compile above.
	if *url == "" && disk != nil {
		restart := service.New(service.Config{
			Workers:   *workers,
			Queue:     *c + 64,
			DiskCache: disk,
		})
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		rsrv := &http.Server{Handler: restart}
		go rsrv.Serve(rln)
		defer rsrv.Close()
		rbase := "http://" + rln.Addr().String()
		var restartProbe []float64
		for i, b := range bodies {
			ms, hit, err := timedAnalyze(client, rbase, b)
			if err != nil {
				fatal(fmt.Errorf("restart probe %d: %w", i, err))
			}
			if hit {
				fatal(fmt.Errorf("restart probe %d hit the in-memory cache of a fresh service", i))
			}
			restartProbe = append(restartProbe, ms)
		}
		metrics["restart_warm_mean_ms"] = mean(restartProbe)
		if mean(restartProbe) > 0 {
			metrics["cold_over_restart_warm"] = mean(coldProbe) / mean(restartProbe)
		}
		fmt.Printf("  restart-warm (disk cache, fresh service) %.2fms vs cold %.2fms (%.1fx)\n",
			metrics["restart_warm_mean_ms"], metrics["cold_mean_ms"], metrics["cold_over_restart_warm"])
	}

	fmt.Printf("loadgen: %d requests, %d in-flight (peak %d), %.0f req/s\n",
		*n, *c, maxInflight.Load(), metrics["requests_per_sec"])
	fmt.Printf("  storm p50 %.2fms p99 %.2fms, hit rate %.1f%% | uncontended cold %.2fms hot %.2fms (%.0fx)\n",
		metrics["latency_p50_ms"], metrics["latency_p99_ms"], 100*metrics["cache_hit_rate"],
		metrics["cold_mean_ms"], metrics["hot_mean_ms"], metrics["cold_over_hot"])

	if *out != "" {
		if err := save(*out, *entry, wallMs, metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s entry %q\n", *out, *entry)
	}
}

// timedAnalyze is analyze plus the wall-clock latency in milliseconds.
func timedAnalyze(client *http.Client, base string, body []byte) (float64, bool, error) {
	t0 := time.Now()
	hit, err := analyze(client, base, body)
	return float64(time.Since(t0)) / float64(time.Millisecond), hit, err
}

// analyze posts one request and returns whether the artifact cache hit.
func analyze(client *http.Client, base string, body []byte) (bool, error) {
	resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		CacheHit bool `json:"cache_hit"`
		Errors   int  `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, err
	}
	if out.Errors != 0 {
		return false, fmt.Errorf("%d error diagnostics", out.Errors)
	}
	return out.CacheHit, nil
}

// save appends the entry to an existing snapshot of the same schema, or
// starts a fresh one.
func save(path, name string, wallMs float64, metrics report.Metrics) error {
	snap, err := report.LoadBench(path)
	if err != nil {
		if !os.IsNotExist(err) {
			if _, statErr := os.Stat(path); statErr == nil {
				return err // exists but unreadable/mismatched: do not clobber
			}
		}
		snap = &report.BenchSnapshot{
			Schema:    report.BenchSchema,
			Tool:      "loadgen",
			Date:      time.Now().Format("2006-01-02"),
			GoVersion: runtime.Version(),
			MaxProcs:  runtime.GOMAXPROCS(0),
		}
	}
	if e := snap.Entry(name); e != nil {
		e.WallMs = wallMs
		e.Metrics = metrics
	} else {
		snap.Entries = append(snap.Entries, report.BenchEntry{Name: name, WallMs: wallMs, Metrics: metrics})
	}
	return snap.Save(path)
}

func seedList(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
