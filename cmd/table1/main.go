// Command table1 regenerates Table 1 of the paper: sequential execution
// times of the LOOPS (Livermore) and SIMPLE benchmarks, original versus
// smart versus naive counter-based profiling, under the optimized and
// unoptimized cost models, plus the counter-count ablation behind it.
//
// Usage:
//
//	table1 [-paper] [-loopsn N] [-reps R] [-simplen N] [-cycles C]
//
// -paper uses the paper's problem sizes (SIMPLE 100×100, NCYCLES=10);
// the defaults are scaled down for a quick run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	paper := flag.Bool("paper", false, "use the paper's problem sizes")
	loopsN := flag.Int("loopsn", 60, "Livermore kernel problem size")
	reps := flag.Int("reps", 1, "Livermore repetitions")
	simpleN := flag.Int("simplen", 24, "SIMPLE mesh size")
	cycles := flag.Int("cycles", 3, "SIMPLE time-step cycles")
	seed := flag.Uint64("seed", 1, "interpreter seed")
	cacheDir := artifact.AddCLIFlags(flag.CommandLine)
	obsCLI := obs.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	tr, err := obsCLI.Begin()
	if err != nil {
		fail(err)
	}
	cfg := experiments.Table1Config{
		LoopsN: *loopsN, LoopsReps: *reps,
		SimpleN: *simpleN, SimpleNCycles: *cycles,
		Seed: *seed,
	}
	if *paper {
		cfg = experiments.PaperTable1Config
	}
	cfg.Trace = tr
	if cfg.Cache, err = artifact.StoreFromFlag(*cacheDir); err != nil {
		fail(err)
	}
	res, err := experiments.Table1(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(res.Format())
	if err := obsCLI.End("table1"); err != nil {
		fail(err)
	}
}
