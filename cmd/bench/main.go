// Command bench is the performance-regression harness: it sweeps the
// end-to-end pipeline (parse, lower, analyze, profile over 8 seeds,
// estimate) over generated programs of increasing size plus a small oracle
// corpus, records throughput (nodes/sec, cases/sec), counter economy
// (counters per basic block), peak RSS, and the per-phase trace of the best
// repetition into a BENCH_<date>.json snapshot, and diffs the rates against
// a previous snapshot.
//
// Usage:
//
//	bench [-out BENCH_2026-08-06.json] [-diff auto|FILE] [-threshold 0.25]
//	      [-reps 3] [-sizes small,medium,large] [-oracle-seeds 32] [-workers N]
//	      [-engines tree,vm,vm-batch] [-plan sarkar|ball-larus]
//
// Every scenario runs once per requested engine: tree-walker entries keep
// the legacy names (small, medium, large, oracle-corpus) so historical
// diffs line up, VM entries get a "-vm" suffix and batch-engine entries a
// "-vm-batch" suffix. Each pipeline entry also records
// profile_nodes_per_sec (interpreted nodes per second of engine busy time
// inside the profile phase alone) and alloc_bytes_per_seed (the engine's
// own heap allocation per seed, measured precisely with ReadMemStats
// around direct engine runs — not from span attribution, which is only
// mcache-refill granular); batch entries add profile_batch_nodes_per_sec
// (nodes per second of whole-batch wall time, counter recovery included —
// the end-to-end number for the batched path) and the lane count. Every entry records the maxprocs and worker
// count it ran under, so lane/worker sweeps stay attributable.
//
// -plan switches the sweep's counter-placement strategy; ball-larus
// entries get an extra "-bl" suffix. Independent of -plan, every snapshot
// carries a "strategy-economy" entry recording both strategies'
// counters_per_block and counter bumps per run on the medium program, so
// the economy comparison is always in the artifact.
//
// -diff auto picks the lexically newest BENCH_*.json in the output
// directory other than the output file itself (the date-stamped names sort
// chronologically); when none exists the diff is skipped. The exit status
// is 1 when any "_per_sec" rate dropped by more than -threshold or
// alloc_bytes_per_seed grew by more than it, so the command doubles as a
// CI gate (`make bench-json`).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/pathprof"
	"repro/internal/profiler"
	"repro/internal/progen"
	"repro/internal/report"
	"repro/internal/vm"
)

// sweepSizes mirrors BenchmarkScale in bench_test.go so `go test -bench`
// and this harness measure the same programs.
var sweepSizes = []struct {
	name        string
	size, depth int
}{
	{"small", 20, 2},
	{"medium", 80, 3},
	{"large", 240, 4},
}

var sweepSeeds = []uint64{1, 2, 3, 4, 5, 6, 7, 8}

func main() {
	date := time.Now().Format("2006-01-02")
	out := flag.String("out", "BENCH_"+date+".json", "snapshot output file")
	diff := flag.String("diff", "", "previous snapshot to diff against (auto = newest BENCH_*.json next to -out)")
	threshold := flag.Float64("threshold", 0.25, "fail when a throughput rate drops by more than this fraction")
	reps := flag.Int("reps", 3, "repetitions per scenario; the best one is recorded")
	oracleSeeds := flag.Int("oracle-seeds", 32, "oracle corpus size (0 = skip the corpus entry)")
	sizes := flag.String("sizes", "small,medium,large", "comma-separated sweep sizes to run")
	engines := flag.String("engines", "tree,vm,vm-batch", "comma-separated execution engines to sweep: tree|vm|vm-batch")
	plan := flag.String("plan", "", "counter-placement strategy for the sweep: sarkar|ball-larus (default: REPRO_PLAN, else sarkar)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for analysis and profiling")
	cacheDir := artifact.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}

	var engineList []interp.Engine
	for _, name := range strings.Split(*engines, ",") {
		eng, err := interp.ParseEngine(strings.TrimSpace(name))
		if err != nil {
			fail(err)
		}
		engineList = append(engineList, eng)
	}
	strat, err := core.ParseStrategy(*plan)
	if err != nil {
		fail(err)
	}
	// -cache-dir only hosts the cache scenario's per-rep directories (the
	// throughput sweeps stay uncached so rates keep their meaning); it is
	// still validated up front so a bad path fails loudly.
	cacheParent := ""
	if *cacheDir != "" {
		store, err := artifact.StoreFromFlag(*cacheDir)
		if err != nil {
			fail(err)
		}
		cacheParent = store.Dir()
	}

	snap := &report.BenchSnapshot{
		Schema:    report.BenchSchema,
		Tool:      "bench",
		Date:      date,
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	wanted := make(map[string]bool)
	for _, name := range strings.Split(*sizes, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	for _, eng := range engineList {
		for _, sz := range sweepSizes {
			if !wanted[sz.name] {
				continue
			}
			entry, err := runPipelineScenario(entryName(sz.name, eng, strat), sz.size, sz.depth, *workers, *reps, eng, strat)
			if err != nil {
				fail(err)
			}
			snap.Entries = append(snap.Entries, *entry)
			fmt.Fprintf(os.Stderr, "bench: %-12s %8.1f ms  %10.0f nodes/sec  %12.0f profile-nodes/sec  %.3f counters/block\n",
				entry.Name, entry.WallMs, entry.Metrics["nodes_per_sec"],
				entry.Metrics["profile_nodes_per_sec"], entry.Metrics["counters_per_block"])
			if sz.name == "medium" || sz.name == "large" {
				cent, err := runCacheScenario(entryName("cache-"+sz.name, eng, strat), cacheParent, sz.size, sz.depth, *workers, *reps, eng, strat)
				if err != nil {
					fail(err)
				}
				snap.Entries = append(snap.Entries, *cent)
				fmt.Fprintf(os.Stderr, "bench: %-12s cold %8.1f ms  warm %8.1f ms  %.1fx warm speedup\n",
					cent.Name, cent.Metrics["cold_load_ms"], cent.Metrics["warm_load_ms"], cent.Metrics["warm_speedup"])
			}
		}
		if *oracleSeeds > 0 {
			entry, err := runOracleScenario(entryName("oracle-corpus", eng, strat), *oracleSeeds, *workers, eng, strat)
			if err != nil {
				fail(err)
			}
			snap.Entries = append(snap.Entries, *entry)
			fmt.Fprintf(os.Stderr, "bench: %-12s %8.1f ms  %10.2f cases/sec\n",
				entry.Name, entry.WallMs, entry.Metrics["cases_per_sec"])
		}
	}
	econ, err := runEconomyScenario(*workers)
	if err != nil {
		fail(err)
	}
	snap.Entries = append(snap.Entries, *econ)
	fmt.Fprintf(os.Stderr, "bench: %-12s sarkar %.3f ctr/blk %.0f bumps/run | ball-larus %.3f ctr/blk %.0f bumps/run\n",
		econ.Name, econ.Metrics["sarkar_counters_per_block"], econ.Metrics["sarkar_bumps_per_run"],
		econ.Metrics["bl_counters_per_block"], econ.Metrics["bl_bumps_per_run"])
	snap.Metrics = map[string]float64{"process.peak_rss_bytes": float64(obs.PeakRSSBytes())}

	if err := snap.Save(*out); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "bench: snapshot written to %s\n", *out)

	if *diff == "" {
		return
	}
	prevPath := *diff
	if prevPath == "auto" {
		prevPath = newestSnapshot(*out)
		if prevPath == "" {
			fmt.Fprintln(os.Stderr, "bench: no previous BENCH_*.json snapshot, diff skipped")
			return
		}
	}
	prev, err := report.LoadBench(prevPath)
	if err != nil {
		fail(err)
	}
	regs := report.DiffBench(prev, snap, *threshold)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "bench: no regression beyond %.0f%% vs %s\n", 100**threshold, prevPath)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "bench: REGRESSION %s (vs %s)\n", r, prevPath)
	}
	os.Exit(1)
}

// entryName names a scenario for one engine and strategy: the tree-walker
// under the Sarkar plan keeps the legacy name so diffs against historical
// snapshots line up; the VM gets a "-vm" suffix, the batched VM a
// "-vm-batch" suffix, and the Ball–Larus strategy an extra "-bl" suffix.
func entryName(base string, eng interp.Engine, strat core.Strategy) string {
	switch interp.EffectiveEngine(eng) {
	case interp.EngineVM:
		base += "-vm"
	case interp.EngineVMBatch:
		base += "-vm-batch"
	}
	if core.EffectiveStrategy(strat) == core.StrategyBallLarus {
		base += "-bl"
	}
	return base
}

// runPipelineScenario measures the full pipeline on one generated program,
// keeping the fastest of reps repetitions (minimum-of-N rejects scheduler
// noise; a regression must slow down every repetition to show).
func runPipelineScenario(name string, size, depth, workers, reps int, eng interp.Engine, strat core.Strategy) (*report.BenchEntry, error) {
	src := progen.Generate(7, size, depth)
	best := &report.BenchEntry{Name: name}
	// Best-of-N is applied per metric: wall time picks the recorded entry,
	// but the profile-phase throughput keeps its own best across reps (the
	// rep with the best wall is not necessarily the one with the cleanest
	// profile phase, and the phase is short enough to be noisy).
	bestProfile, bestBatch, lanes := 0.0, 0.0, 0.0
	for rep := 0; rep < reps || rep == 0; rep++ {
		obs.Default.Reset()
		tr := obs.NewTrace()
		t0 := time.Now()
		p, err := core.LoadOpts(src, core.LoadOptions{Workers: workers, Trace: tr, Engine: eng, Plan: strat})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		est, err := p.Estimate(cost.Optimized, core.Options{}, sweepSeeds...)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(t0)

		var nodes int
		for _, a := range p.An.Procs {
			nodes += a.P.G.NumNodes()
		}
		counters := obs.Default.Snapshot()
		spans := tr.Spans()

		// profile.run isolates the execution engine's hot loop from the
		// engine-independent counter recovery; its WallMs sums busy time
		// across seeds, so steps/busy is per-core interpretation throughput.
		var steps float64
		for _, sp := range spans {
			if sp.Name == "profile" {
				steps = sp.Metrics["steps"]
			}
		}
		for _, sp := range spans {
			if sp.Name != "profile.run" {
				continue
			}
			if sp.WallMs > 0 {
				if rate := steps / (sp.WallMs / 1000); rate > bestProfile {
					bestProfile = rate
				}
			}
		}
		// Under the batch engine the profile phase is one lane-sharded batch
		// run instead of per-seed profile.run spans: exec_ms is summed lane
		// busy time (profile_nodes_per_sec stays comparable with the
		// per-seed entries), the span's own wall covers the whole batch,
		// counter recovery included (profile_batch_nodes_per_sec).
		for _, sp := range spans {
			if sp.Name != "profile.batch" {
				continue
			}
			bSteps := sp.Metrics["steps"]
			if ms := sp.Metrics["exec_ms"]; ms > 0 {
				if rate := bSteps / (ms / 1000); rate > bestProfile {
					bestProfile = rate
				}
			}
			if sp.WallMs > 0 {
				if rate := bSteps / (sp.WallMs / 1000); rate > bestBatch {
					bestBatch = rate
				}
			}
			lanes = sp.Metrics["lanes"]
		}

		wallMs := float64(wall) / float64(time.Millisecond)
		if best.Metrics != nil && wallMs >= best.WallMs {
			continue
		}
		best.WallMs = wallMs
		best.Spans = spans
		best.Metrics = map[string]float64{
			"nodes":         float64(nodes),
			"nodes_per_sec": float64(nodes) / wall.Seconds(),
			"seeds":         float64(len(sweepSeeds)),
			"time_estimate": est.Main.Time,
			"stddev":        est.Main.StdDev(),
			"maxprocs":      float64(runtime.GOMAXPROCS(0)),
			"workers":       float64(workers),
		}
		if blocks := counters["pipeline.blocks"]; blocks > 0 {
			best.Metrics["counters_per_block"] = counters["pipeline.counters"] / blocks
		}
	}
	if bestProfile > 0 {
		best.Metrics["profile_nodes_per_sec"] = bestProfile
	}
	if bestBatch > 0 {
		best.Metrics["profile_batch_nodes_per_sec"] = bestBatch
	}
	if lanes > 0 {
		best.Metrics["lanes"] = lanes
	}
	alloc, err := measureAllocPerSeed(src, eng)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	best.Metrics["alloc_bytes_per_seed"] = alloc
	return best, nil
}

// measureAllocPerSeed measures the execution engine's own heap allocation
// per profiled seed — directly and precisely, outside the traced pipeline.
// The span layer reads the cheap runtime/metrics allocation counter, which
// the runtime only updates at mcache span-refill granularity; at the ~10KB
// scale of a warm engine that lumpiness leaks neighboring-phase
// allocations (counter recovery allocates an order of magnitude more) into
// the engine's window. Here one warm-up pass settles pools, the compiled
// program and memoized cost tables, then runtime.ReadMemStats — which
// flushes every mcache — brackets a second pass over all sweep seeds.
func measureAllocPerSeed(src string, eng interp.Engine) (float64, error) {
	p, err := core.LoadOpts(src, core.LoadOptions{Workers: 1})
	if err != nil {
		return 0, err
	}
	m := cost.Optimized
	opt := interp.Options{Model: &m}
	var runAll func() error
	switch interp.EffectiveEngine(eng) {
	case interp.EngineVM, interp.EngineVMBatch:
		prog, err := vm.Compile(p.Res)
		if err != nil {
			return 0, err
		}
		if interp.EffectiveEngine(eng) == interp.EngineVMBatch {
			runAll = func() error {
				var seedErr error
				_, err := prog.RunBatch(opt, sweepSeeds, 1,
					func(_ int, _ uint64, _ *interp.Result, rerr error) bool {
						if rerr != nil && seedErr == nil {
							seedErr = rerr
						}
						return false
					})
				if err != nil {
					return err
				}
				return seedErr
			}
		} else {
			runAll = func() error {
				for _, s := range sweepSeeds {
					o := opt
					o.Seed = s
					if _, err := prog.Run(o); err != nil {
						return err
					}
				}
				return nil
			}
		}
	default:
		runAll = func() error {
			for _, s := range sweepSeeds {
				o := opt
				o.Seed = s
				o.Engine = interp.EngineTree
				if _, err := interp.Run(p.Res, o); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if err := runAll(); err != nil {
		return 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := runAll(); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(len(sweepSeeds)), nil
}

// runOracleScenario sweeps a small oracle corpus once; corpus evaluation is
// already a multi-case aggregate, so a single repetition is stable enough.
func runOracleScenario(name string, seeds, workers int, eng interp.Engine, strat core.Strategy) (*report.BenchEntry, error) {
	t0 := time.Now()
	rep, err := oracle.Run(oracle.Config{
		Seeds:           seeds,
		Size:            6,
		Depth:           3,
		ProfileRuns:     2,
		BranchFreeEvery: 4,
		DetLoopEvery:    6,
		Workers:         workers,
		Engine:          eng,
		Plan:            strat,
	})
	if err != nil {
		return nil, fmt.Errorf("oracle corpus: %w", err)
	}
	if !rep.AllPass {
		return nil, fmt.Errorf("oracle corpus: invariant failures — fix correctness before benchmarking:\n%s", rep.Summary())
	}
	wall := time.Since(t0)
	return &report.BenchEntry{
		Name:   name,
		WallMs: float64(wall) / float64(time.Millisecond),
		Metrics: map[string]float64{
			"cases":         float64(seeds),
			"cases_per_sec": float64(seeds) / wall.Seconds(),
			"maxprocs":      float64(runtime.GOMAXPROCS(0)),
			"workers":       float64(workers),
		},
	}, nil
}

// runEconomyScenario measures the counter economy of both placement
// strategies on the medium sweep program: counters per basic block (the
// static cost of carrying the instrumentation) and counter bumps per
// profiled run (the dynamic cost, seed 1 under the tree-walker — bump
// counts are engine-independent). The entry is recorded in every snapshot
// regardless of -plan, so the strategy comparison is always in the
// artifact.
func runEconomyScenario(workers int) (*report.BenchEntry, error) {
	t0 := time.Now()
	src := progen.Generate(7, 80, 3)
	p, err := core.LoadOpts(src, core.LoadOptions{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("strategy-economy: %w", err)
	}
	sk, err := profiler.BuildPlans(p.An)
	if err != nil {
		return nil, fmt.Errorf("strategy-economy: sarkar plans: %w", err)
	}
	bl, err := pathprof.BuildPlansWith(p.An, sk, pathprof.Options{})
	if err != nil {
		return nil, fmt.Errorf("strategy-economy: path plans: %w", err)
	}
	var blocks, skCounters, blCounters float64
	for name, a := range p.An.Procs {
		blocks += float64(len(profiler.BlockLeaders(a.P.G)))
		skCounters += float64(sk[name].NumCounters())
		blCounters += float64(bl.ByProc[name].NumCounters())
	}
	run, err := interp.Run(p.Res, interp.Options{Seed: 1, PathSpec: bl.Spec(), Engine: interp.EngineTree})
	if err != nil {
		return nil, fmt.Errorf("strategy-economy: run: %w", err)
	}
	var skBumps float64
	for name := range p.An.Procs {
		ov := sk[name].MeasureOverhead(run, cost.Model{})
		skBumps += float64(ov.Increments + ov.TripAdds)
	}
	econ := bl.MeasureEconomy(run)
	entry := &report.BenchEntry{
		Name:   "strategy-economy",
		WallMs: float64(time.Since(t0)) / float64(time.Millisecond),
		Metrics: map[string]float64{
			"blocks":               blocks,
			"sarkar_counters":      skCounters,
			"bl_counters":          blCounters,
			"sarkar_bumps_per_run": skBumps,
			"bl_bumps_per_run":     float64(econ.Bumps),
			"bl_counters_touched":  float64(econ.Touched),
			"bl_fallback_procs":    float64(econ.FallbackProcs),
		},
	}
	if blocks > 0 {
		entry.Metrics["sarkar_counters_per_block"] = skCounters / blocks
		entry.Metrics["bl_counters_per_block"] = blCounters / blocks
	}
	return entry, nil
}

// newestSnapshot returns the lexically newest BENCH_*.json sibling of out,
// excluding out itself ("" when there is none).
func newestSnapshot(out string) string {
	dir := filepath.Dir(out)
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	absOut, _ := filepath.Abs(out)
	best := ""
	for _, m := range matches {
		if abs, _ := filepath.Abs(m); abs == absOut {
			continue
		}
		if m > best {
			best = m
		}
	}
	return best
}

// runCacheScenario measures the on-disk artifact cache on one generated
// program: a cold load into an empty cache directory (full analysis plus
// the save) against a warm load of the same source (every procedure a
// cache hit). Each repetition gets a fresh directory so cold stays cold;
// both sides keep their own best-of-N. parent optionally roots the
// per-rep directories (the -cache-dir flag); empty means the system temp
// directory.
func runCacheScenario(name, parent string, size, depth, workers, reps int, eng interp.Engine, strat core.Strategy) (*report.BenchEntry, error) {
	src := progen.Generate(7, size, depth)
	root, err := os.MkdirTemp(orTempDir(parent), "bench-cache-")
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	defer os.RemoveAll(root)
	bestCold, bestWarm := 0.0, 0.0
	for rep := 0; rep < reps || rep == 0; rep++ {
		store, err := artifact.Open(filepath.Join(root, fmt.Sprintf("r%d", rep)))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		opts := core.LoadOptions{Workers: workers, Engine: eng, Plan: strat, Cache: store}
		t0 := time.Now()
		if _, err := core.LoadOpts(src, opts); err != nil {
			return nil, fmt.Errorf("%s: cold: %w", name, err)
		}
		cold := float64(time.Since(t0)) / float64(time.Millisecond)
		t1 := time.Now()
		if _, err := core.LoadOpts(src, opts); err != nil {
			return nil, fmt.Errorf("%s: warm: %w", name, err)
		}
		warm := float64(time.Since(t1)) / float64(time.Millisecond)
		if bestCold == 0 || cold < bestCold {
			bestCold = cold
		}
		if bestWarm == 0 || warm < bestWarm {
			bestWarm = warm
		}
	}
	entry := &report.BenchEntry{
		Name:   name,
		WallMs: bestCold + bestWarm,
		Metrics: map[string]float64{
			"cold_load_ms": bestCold,
			"warm_load_ms": bestWarm,
			"maxprocs":     float64(runtime.GOMAXPROCS(0)),
			"workers":      float64(workers),
		},
	}
	if bestWarm > 0 {
		entry.Metrics["warm_speedup"] = bestCold / bestWarm
	}
	return entry, nil
}

// orTempDir substitutes the system temp directory for an empty parent.
func orTempDir(dir string) string {
	if dir == "" {
		return os.TempDir()
	}
	return dir
}
