// Command ptranc is the analysis front door (named after PTRAN, the system
// the paper's framework was implemented in): it parses a program in the
// Fortran subset, runs the full analysis pipeline, and dumps any of the
// intermediate structures — control flow graph, extended CFG, forward
// control dependence graph, interval structure, or the optimized counter
// placement plan.
//
// Usage:
//
//	ptranc -src prog.f [-proc NAME] [-dump cfg|ecfg|fcdg|intervals|plan|all] [-dot] [-check] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profiler"
)

func main() {
	src := flag.String("src", "", "source file (required)")
	proc := flag.String("proc", "", "restrict output to one procedure")
	dump := flag.String("dump", "all", "what to dump: cfg, ecfg, fcdg, intervals, plan or all")
	dot := flag.Bool("dot", false, "emit Graphviz dot for graph dumps")
	runCheck := flag.Bool("check", false, "run the static checker passes; error findings abort")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the per-procedure analysis")
	cacheDir := artifact.AddCLIFlags(flag.CommandLine)
	obsCLI := obs.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ptranc:", err)
		os.Exit(1)
	}
	tr, err := obsCLI.Begin()
	if err != nil {
		fail(err)
	}
	if *src == "" {
		fail(fmt.Errorf("-src is required"))
	}
	text, err := os.ReadFile(*src)
	if err != nil {
		fail(err)
	}
	store, err := artifact.StoreFromFlag(*cacheDir)
	if err != nil {
		fail(err)
	}
	loadOpts := core.LoadOptions{Workers: *workers, Trace: tr, Cache: store}
	var collector *check.Collector
	if *runCheck {
		collector = &check.Collector{}
		loadOpts.CheckProc = collector.CheckProc
	}
	p, err := core.LoadOpts(string(text), loadOpts)
	if err != nil {
		fail(err)
	}
	if collector != nil {
		if err := check.Gate(os.Stderr, *src, collector); err != nil {
			fail(err)
		}
	}

	names := make([]string, 0, len(p.An.Procs))
	for _, comp := range p.An.BottomUp {
		names = append(names, comp...)
	}
	for _, name := range names {
		if *proc != "" && name != *proc {
			continue
		}
		a := p.An.Procs[name]
		fmt.Printf("==== procedure %s ====\n", name)
		if *dump == "cfg" || *dump == "all" {
			if *dot {
				fmt.Print(a.P.G.DOT())
			} else {
				fmt.Print(a.P.G.String())
			}
		}
		if *dump == "intervals" || *dump == "all" {
			fmt.Printf("loop headers:")
			for _, h := range a.Intervals.Headers() {
				fmt.Printf(" %d(depth %d, parent %d)", h, a.Intervals.Depth(h), a.Intervals.Parent(h))
			}
			fmt.Println()
		}
		if *dump == "ecfg" || *dump == "all" {
			if *dot {
				fmt.Print(a.Ext.G.DOT())
			} else {
				fmt.Print(a.Ext.G.String())
			}
		}
		if *dump == "fcdg" || *dump == "all" {
			if *dot {
				fmt.Print(a.FCDG.DOT())
			} else {
				fmt.Print(a.FCDG.String())
			}
		}
		if *dump == "plan" || *dump == "all" {
			plan, err := profiler.PlanSmart(a)
			if err != nil {
				fail(err)
			}
			naive := profiler.PlanNaive(a)
			fmt.Printf("smart counters (%d):", plan.NumCounters())
			for _, c := range plan.Counters {
				fmt.Printf(" %v", c)
			}
			fmt.Printf("\nnaive counters: %d (one per basic block%s)\n",
				naive.NumCounters(), naiveNote(naive))
		}
	}
	if p.Res.Main != nil && *proc == "" {
		fmt.Printf("==== call graph (bottom-up) ====\n")
		for _, comp := range p.An.BottomUp {
			rec := ""
			if len(comp) > 1 || p.An.IsRecursive(comp[0]) {
				rec = "  (recursive)"
			}
			fmt.Printf("  %v%s\n", comp, rec)
		}
	}
	if err := obsCLI.End("ptranc"); err != nil {
		fail(err)
	}
}

func naiveNote(p *profiler.Plan) string {
	trips := 0
	for _, c := range p.Counters {
		if c.Kind == profiler.TripAdd {
			trips++
		}
	}
	if trips > 0 {
		return fmt.Sprintf(", %d trip-adds from the straight-line DO optimization", trips)
	}
	return ""
}
