// Command estimate computes average execution times and variances from a
// source program plus a program-database profile (see profrun), printing
// the per-node [COST, TIME, E[T²], VAR, STD_DEV] table of every procedure
// — the content of the paper's Figure 3 for arbitrary programs.
//
// Usage:
//
//	estimate -src prog.f -db profile.json [-model opt-on|opt-off|unit]
//	         [-proc NAME] [-plan sarkar|ball-larus] [-callvar] [-workers N]
//
// The same database can be estimated under different cost models — the
// cross-architecture property Section 3 highlights ("the frequency
// information can be generated on any machine, and can be used to estimate
// execution times ... on different target architectures").
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/database"
	"repro/internal/obs"
)

func main() {
	src := flag.String("src", "", "source file (required)")
	dbPath := flag.String("db", "", "program database file (required)")
	model := flag.String("model", "opt-on", "cost model: opt-on, opt-off or unit")
	proc := flag.String("proc", "", "print only one procedure's table")
	callvar := flag.Bool("callvar", false, "propagate callee variance into call sites")
	flat := flag.Bool("flat", false, "print a gprof-style flat profile instead of per-node tables")
	runCheck := flag.Bool("check", false, "run the static checker passes; error findings abort")
	plan := flag.String("plan", "", "counter-placement strategy for pipeline profiling: sarkar|ball-larus (default: REPRO_PLAN, else sarkar); the database's stored profile is strategy-independent")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the per-procedure analysis")
	cacheDir := artifact.AddCLIFlags(flag.CommandLine)
	obsCLI := obs.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "estimate:", err)
		os.Exit(1)
	}
	tr, err := obsCLI.Begin()
	if err != nil {
		fail(err)
	}
	if *src == "" || *dbPath == "" {
		fail(fmt.Errorf("-src and -db are required"))
	}
	var m cost.Model
	switch *model {
	case "opt-on":
		m = cost.Optimized
	case "opt-off":
		m = cost.Unoptimized
	case "unit":
		m = cost.Unit
	default:
		fail(fmt.Errorf("unknown model %q", *model))
	}
	text, err := os.ReadFile(*src)
	if err != nil {
		fail(err)
	}
	strat, err := core.ParseStrategy(*plan)
	if err != nil {
		fail(err)
	}
	store, err := artifact.StoreFromFlag(*cacheDir)
	if err != nil {
		fail(err)
	}
	loadOpts := core.LoadOptions{Workers: *workers, Trace: tr, Plan: strat, Cache: store}
	var collector *check.Collector
	if *runCheck {
		collector = &check.Collector{}
		loadOpts.CheckProc = collector.CheckProc
	}
	p, err := core.LoadOpts(string(text), loadOpts)
	if err != nil {
		fail(err)
	}
	if collector != nil {
		if err := check.Gate(os.Stderr, *src, collector); err != nil {
			fail(err)
		}
	}
	db, err := database.Load(*dbPath)
	if err != nil {
		fail(err)
	}
	totals, err := db.ProcTotals()
	if err != nil {
		fail(err)
	}
	opt := core.Options{PropagateCallVariance: *callvar}
	if lv, err := db.LoopVariance(); err == nil && len(lv) > 0 {
		opt.FreqVar = lv
	}
	sp := tr.Start("estimate")
	est, err := core.EstimateProgram(p.An, totals, p.CostTables(m), opt)
	sp.End()
	if err != nil {
		fail(err)
	}
	if *flat {
		rows, err := est.FlatProfile()
		if err != nil {
			fail(err)
		}
		fmt.Print(core.FormatFlat(rows))
		if err := obsCLI.End("estimate"); err != nil {
			fail(err)
		}
		return
	}
	for _, comp := range p.An.BottomUp {
		for _, name := range comp {
			if *proc != "" && name != *proc {
				continue
			}
			fmt.Print(core.Report(est.Procs[name]))
			fmt.Println()
		}
	}
	if est.Main != nil && *proc == "" {
		fmt.Printf("program: TIME = %.6g cycles, STD_DEV = %.6g cycles (model %s, %d profiled runs)\n",
			est.Main.Time, est.Main.StdDev(), m.Name, db.Runs)
	}
	if err := obsCLI.End("estimate"); err != nil {
		fail(err)
	}
}
