// Command oracle runs the differential/metamorphic verification harness
// over a corpus of generated programs and reports per-invariant pass/fail
// tallies as JSON, with failing cases minimized to the smallest generator
// knobs that still reproduce them.
//
// Usage:
//
//	oracle -seeds 200 [-start 1] [-size 8] [-depth 3] [-runs 3]
//	       [-workers N] [-invariants name,name,...] [-branchfree-every 4]
//	       [-detloop-every 6] [-constfacts-every 3] [-engine tree|vm|vm-batch]
//	       [-plan sarkar|ball-larus] [-no-minimize] [-quiet]
//
// The exit status is 0 when every invariant passes and 1 otherwise, so the
// command doubles as a CI gate (`make oracle`). To reproduce a failure, re-run
// with `-start <seed> -seeds 1 -size <min_size> -depth <min_depth>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/report"
)

func main() {
	seeds := flag.Int("seeds", 200, "number of generated programs")
	start := flag.Uint64("start", 1, "first program seed")
	size := flag.Int("size", 8, "generator size ceiling (per-seed spread 1..size)")
	depth := flag.Int("depth", 3, "generator loop/IF nesting depth")
	runs := flag.Int("runs", 3, "profiled interpreter runs per program")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent case evaluations")
	invariants := flag.String("invariants", "", "comma-separated invariant names (default: all)")
	branchFreeEvery := flag.Int("branchfree-every", 4, "every k-th case uses the branch-free program family (0 = never)")
	detLoopEvery := flag.Int("detloop-every", 6, "every k-th case uses the branch-free-plus-constant-trip-DO family (0 = never)")
	constFactsEvery := flag.Int("constfacts-every", 3, "every k-th random case carries the progen dataflow gadget block (0 = never)")
	stopsEvery := flag.Int("stops-every", 0, "every k-th random case generates with the stopping family (0 = never); pair with -invariants of the takings-level checks")
	engine := flag.String("engine", "", "execution engine for profiled runs: tree|vm|vm-batch (default: REPRO_ENGINE, else tree)")
	plan := flag.String("plan", "", "counter-placement strategy for profiled runs: sarkar|ball-larus (default: REPRO_PLAN, else sarkar)")
	noMinimize := flag.Bool("no-minimize", false, "skip shrinking failing cases")
	quiet := flag.Bool("quiet", false, "suppress the human-readable summary on stderr")
	diag := flag.Bool("diag", false, "emit the diagnostic document shared with ptranlint instead of the sweep report")
	list := flag.Bool("list", false, "list registry invariants and exit")
	cacheDir := artifact.AddCLIFlags(flag.CommandLine)
	obsCLI := obs.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, inv := range oracle.Registry() {
			fmt.Printf("%-18s %s\n", inv.Name, inv.Desc)
		}
		return
	}

	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(2)
	}
	strat, err := core.ParseStrategy(*plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(2)
	}
	// Validate the cache directory up front; the artifact-roundtrip
	// invariant roots its per-case scratch caches under it.
	if _, err := artifact.StoreFromFlag(*cacheDir); err != nil {
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(2)
	}
	cfg := oracle.Config{
		Engine:          eng,
		Plan:            strat,
		CacheDir:        *cacheDir,
		SeedStart:       *start,
		Seeds:           *seeds,
		Size:            *size,
		Depth:           *depth,
		ProfileRuns:     *runs,
		BranchFreeEvery: *branchFreeEvery,
		DetLoopEvery:    *detLoopEvery,
		ConstFactsEvery: *constFactsEvery,
		StopsEvery:      *stopsEvery,
		Workers:         *workers,
		Minimize:        !*noMinimize,
	}
	if *invariants != "" {
		cfg.Invariants = strings.Split(*invariants, ",")
	}
	if _, err := obsCLI.Begin(); err != nil {
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(2)
	}
	rep, err := oracle.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(2)
	}
	if err := obsCLI.End("oracle"); err != nil {
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(2)
	}
	if *diag {
		if err := report.NewDocument("oracle", rep.Diagnostics()).Encode(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "oracle:", err)
			os.Exit(2)
		}
	} else {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "oracle:", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
	}
	if !*quiet {
		fmt.Fprint(os.Stderr, rep.Summary())
	}
	if !rep.AllPass {
		os.Exit(1)
	}
}
