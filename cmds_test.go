package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/paperex"
)

// buildCmds compiles every command once into a shared temp dir.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"figures", "table1", "ptranc", "profrun", "estimate", "ptranlint"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, msg)
		}
	}
	return dir
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildCmds(t)
	src := filepath.Join(dir, "example.f")
	if err := os.WriteFile(src, []byte(paperex.Source), 0o644); err != nil {
		t.Fatal(err)
	}
	db := filepath.Join(dir, "profile.json")

	t.Run("figures", func(t *testing.T) {
		out := runCmd(t, filepath.Join(dir, "figures"), "-fig", "3")
		for _, want := range []string{"TIME(START)    = 920", "STD_DEV(START) = 300"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in:\n%s", want, out)
			}
		}
		dot := runCmd(t, filepath.Join(dir, "figures"), "-fig", "1", "-dot")
		if !strings.Contains(dot, "digraph") {
			t.Errorf("dot output missing digraph:\n%s", dot)
		}
	})

	t.Run("table1", func(t *testing.T) {
		out := runCmd(t, filepath.Join(dir, "table1"), "-loopsn", "20", "-simplen", "8", "-cycles", "1")
		for _, want := range []string{"LOOPS", "SIMPLE", "opt-on", "Counter ablation"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in:\n%s", want, out)
			}
		}
	})

	t.Run("ptranc", func(t *testing.T) {
		out := runCmd(t, filepath.Join(dir, "ptranc"), "-src", src, "-dump", "fcdg")
		if !strings.Contains(out, "procedure EXMPL") || !strings.Contains(out, "fcdg root=") {
			t.Errorf("unexpected output:\n%s", out)
		}
		out = runCmd(t, filepath.Join(dir, "ptranc"), "-src", src, "-dump", "plan", "-proc", "EXMPL")
		if !strings.Contains(out, "smart counters") {
			t.Errorf("plan output:\n%s", out)
		}
	})

	t.Run("profrun-then-estimate", func(t *testing.T) {
		out := runCmd(t, filepath.Join(dir, "profrun"), "-src", src, "-db", db, "-seeds", "1,2")
		if !strings.Contains(out, "2 run(s) merged") {
			t.Errorf("profrun output:\n%s", out)
		}
		// Merge again: runs accumulate.
		out = runCmd(t, filepath.Join(dir, "profrun"), "-src", src, "-db", db, "-seeds", "3")
		if !strings.Contains(out, "now 3 runs total") {
			t.Errorf("merge output:\n%s", out)
		}
		out = runCmd(t, filepath.Join(dir, "estimate"), "-src", src, "-db", db, "-model", "unit")
		if !strings.Contains(out, "program: TIME =") {
			t.Errorf("estimate output:\n%s", out)
		}
		flat := runCmd(t, filepath.Join(dir, "estimate"), "-src", src, "-db", db, "-model", "opt-off", "-flat")
		if !strings.Contains(flat, "%time") || !strings.Contains(flat, "FOO") {
			t.Errorf("flat output:\n%s", flat)
		}
	})

	t.Run("ptranlint", func(t *testing.T) {
		bin := filepath.Join(dir, "ptranlint")
		// The paper's Figure 1 example is checker-clean: exit 0.
		out := runCmd(t, bin, src)
		if !strings.Contains(out, "clean") {
			t.Errorf("figure-1 lint output:\n%s", out)
		}
		// The bad fixture carries warnings: exit 0 plain, 1 under -Werror.
		bad := "internal/check/testdata/bad.f"
		out = runCmd(t, bin, "-json", bad)
		for _, want := range []string{`"tool": "ptranlint"`, `"pass": "reducible"`, "DO loop never executes", "constant .FALSE."} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in -json output:\n%s", want, out)
			}
		}
		if msg, err := exec.Command(bin, "-Werror", bad).CombinedOutput(); err == nil {
			t.Errorf("-Werror on bad.f must exit non-zero:\n%s", msg)
		}
		// Syntax errors come back as parse diagnostics, not bare failures.
		broken := filepath.Join(dir, "broken.f")
		if err := os.WriteFile(broken, []byte("      PROGRAM P\n      X = \n      END\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		msg, err := exec.Command(bin, "-json", broken).CombinedOutput()
		if err == nil || !strings.Contains(string(msg), `"pass": "parse"`) {
			t.Errorf("broken source: err=%v output:\n%s", err, msg)
		}
	})

	t.Run("check-flag", func(t *testing.T) {
		out := runCmd(t, filepath.Join(dir, "ptranc"), "-src", src, "-check", "-dump", "plan", "-proc", "EXMPL")
		if !strings.Contains(out, "smart counters") {
			t.Errorf("ptranc -check output:\n%s", out)
		}
	})

	t.Run("error-paths", func(t *testing.T) {
		if _, err := exec.Command(filepath.Join(dir, "estimate"), "-src", src, "-db", "/nonexistent.json").CombinedOutput(); err == nil {
			t.Error("estimate with missing db must fail")
		}
		if _, err := exec.Command(filepath.Join(dir, "ptranc")).CombinedOutput(); err == nil {
			t.Error("ptranc without -src must fail")
		}
		if _, err := exec.Command(filepath.Join(dir, "figures"), "-fig", "9").CombinedOutput(); err == nil {
			t.Error("figures -fig 9 must fail")
		}
	})
}
