package repro_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/paperex"
)

// buildCmds compiles every command once into a shared temp dir.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"figures", "table1", "ptranc", "profrun", "estimate", "ptranlint", "bench", "oracle", "loadgen", "ptrand"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, msg)
		}
	}
	return dir
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildCmds(t)
	src := filepath.Join(dir, "example.f")
	if err := os.WriteFile(src, []byte(paperex.Source), 0o644); err != nil {
		t.Fatal(err)
	}
	db := filepath.Join(dir, "profile.json")

	t.Run("figures", func(t *testing.T) {
		out := runCmd(t, filepath.Join(dir, "figures"), "-fig", "3")
		for _, want := range []string{"TIME(START)    = 920", "STD_DEV(START) = 300"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in:\n%s", want, out)
			}
		}
		dot := runCmd(t, filepath.Join(dir, "figures"), "-fig", "1", "-dot")
		if !strings.Contains(dot, "digraph") {
			t.Errorf("dot output missing digraph:\n%s", dot)
		}
	})

	t.Run("table1", func(t *testing.T) {
		out := runCmd(t, filepath.Join(dir, "table1"), "-loopsn", "20", "-simplen", "8", "-cycles", "1")
		for _, want := range []string{"LOOPS", "SIMPLE", "opt-on", "Counter ablation"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in:\n%s", want, out)
			}
		}
	})

	t.Run("ptranc", func(t *testing.T) {
		out := runCmd(t, filepath.Join(dir, "ptranc"), "-src", src, "-dump", "fcdg")
		if !strings.Contains(out, "procedure EXMPL") || !strings.Contains(out, "fcdg root=") {
			t.Errorf("unexpected output:\n%s", out)
		}
		out = runCmd(t, filepath.Join(dir, "ptranc"), "-src", src, "-dump", "plan", "-proc", "EXMPL")
		if !strings.Contains(out, "smart counters") {
			t.Errorf("plan output:\n%s", out)
		}
	})

	t.Run("profrun-then-estimate", func(t *testing.T) {
		out := runCmd(t, filepath.Join(dir, "profrun"), "-src", src, "-db", db, "-seeds", "1,2")
		if !strings.Contains(out, "2 run(s) merged") {
			t.Errorf("profrun output:\n%s", out)
		}
		// Merge again: runs accumulate.
		out = runCmd(t, filepath.Join(dir, "profrun"), "-src", src, "-db", db, "-seeds", "3")
		if !strings.Contains(out, "now 3 runs total") {
			t.Errorf("merge output:\n%s", out)
		}
		out = runCmd(t, filepath.Join(dir, "estimate"), "-src", src, "-db", db, "-model", "unit")
		if !strings.Contains(out, "program: TIME =") {
			t.Errorf("estimate output:\n%s", out)
		}
		flat := runCmd(t, filepath.Join(dir, "estimate"), "-src", src, "-db", db, "-model", "opt-off", "-flat")
		if !strings.Contains(flat, "%time") || !strings.Contains(flat, "FOO") {
			t.Errorf("flat output:\n%s", flat)
		}
	})

	t.Run("ptranlint", func(t *testing.T) {
		bin := filepath.Join(dir, "ptranlint")
		// The paper's Figure 1 example is checker-clean: exit 0.
		out := runCmd(t, bin, src)
		if !strings.Contains(out, "clean") {
			t.Errorf("figure-1 lint output:\n%s", out)
		}
		// The bad fixture carries warnings: exit 0 plain, 1 under -Werror.
		bad := "internal/check/testdata/bad.f"
		out = runCmd(t, bin, "-json", bad)
		for _, want := range []string{`"tool": "ptranlint"`, `"pass": "reducible"`, "DO loop never executes", "constant .FALSE."} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in -json output:\n%s", want, out)
			}
		}
		if msg, err := exec.Command(bin, "-Werror", bad).CombinedOutput(); err == nil {
			t.Errorf("-Werror on bad.f must exit non-zero:\n%s", msg)
		}
		// Syntax errors come back as parse diagnostics, not bare failures.
		broken := filepath.Join(dir, "broken.f")
		if err := os.WriteFile(broken, []byte("      PROGRAM P\n      X = \n      END\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		msg, err := exec.Command(bin, "-json", broken).CombinedOutput()
		if err == nil || !strings.Contains(string(msg), `"pass": "parse"`) {
			t.Errorf("broken source: err=%v output:\n%s", err, msg)
		}
	})

	t.Run("ptranlint-exit-codes", func(t *testing.T) {
		bin := filepath.Join(dir, "ptranlint")
		broken := filepath.Join(dir, "broken2.f")
		if err := os.WriteFile(broken, []byte("      PROGRAM P\n      X = \n      END\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		// Every failure class maps to a documented status: 0 = no
		// error-severity findings, 1 = findings fail the run, 2 = usage or
		// internal errors. -Werror must promote warnings from any pass.
		cases := []struct {
			name string
			args []string
			want int
		}{
			{"clean", []string{src}, 0},
			{"clean-werror", []string{"-Werror", src}, 0},
			{"clean-dataflow", []string{"-dataflow", src}, 0},
			{"warnings", []string{"internal/check/testdata/bad.f"}, 0},
			{"warnings-werror", []string{"-Werror", "internal/check/testdata/bad.f"}, 1},
			{"warnings-werror-json", []string{"-Werror", "-json", "internal/check/testdata/bad.f"}, 1},
			{"flow-lints-only-werror", []string{"-Werror", "-passes", "deadcode,deadstore,defassign", "internal/check/testdata/bad.f"}, 1},
			{"parse-error", []string{broken}, 1},
			{"parse-error-werror", []string{"-Werror", broken}, 1},
			{"missing-file", []string{filepath.Join(dir, "no-such.f")}, 2},
			{"no-args", nil, 2},
			{"two-positional", []string{src, src}, 2},
			{"bad-flag", []string{"-definitely-not-a-flag", src}, 2},
			{"unknown-pass", []string{"-passes", "nope", src}, 2},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				out, err := exec.Command(bin, tc.args...).CombinedOutput()
				got := 0
				if ee, ok := err.(*exec.ExitError); ok {
					got = ee.ExitCode()
				} else if err != nil {
					t.Fatalf("run: %v\n%s", err, out)
				}
				if got != tc.want {
					t.Errorf("ptranlint %v: exit %d, want %d\n%s", tc.args, got, tc.want, out)
				}
			})
		}
	})

	t.Run("ptranlint-dataflow", func(t *testing.T) {
		bin := filepath.Join(dir, "ptranlint")
		out := runCmd(t, bin, "-dataflow", "examples/loops.f")
		for _, want := range []string{"dataflow DOTPRD", "const trips", "DO test"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in -dataflow output:\n%s", want, out)
			}
		}
		jout := runCmd(t, bin, "-dataflow", "-json", "examples/loops.f")
		var doc struct {
			Dataflow []struct {
				Proc  string `json:"proc"`
				Stats struct {
					Nodes      int `json:"Nodes"`
					ConstTrips int `json:"ConstTrips"`
				} `json:"stats"`
				Trips []string `json:"const_trips"`
			} `json:"dataflow"`
		}
		if err := json.Unmarshal([]byte(jout), &doc); err != nil {
			t.Fatalf("-dataflow -json: %v\n%s", err, jout)
		}
		if len(doc.Dataflow) == 0 || doc.Dataflow[0].Proc != "DOTPRD" || doc.Dataflow[0].Stats.ConstTrips != 2 {
			t.Errorf("unexpected dataflow document: %+v", doc.Dataflow)
		}
	})

	t.Run("check-flag", func(t *testing.T) {
		out := runCmd(t, filepath.Join(dir, "ptranc"), "-src", src, "-check", "-dump", "plan", "-proc", "EXMPL")
		if !strings.Contains(out, "smart counters") {
			t.Errorf("ptranc -check output:\n%s", out)
		}
	})

	t.Run("trace-flag", func(t *testing.T) {
		tracePath := filepath.Join(dir, "trace.json")
		runCmd(t, filepath.Join(dir, "ptranc"), "-src", src, "-dump", "plan", "-trace", tracePath)
		raw, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Tool  string `json:"tool"`
			Spans []struct {
				Name   string  `json:"name"`
				WallMs float64 `json:"wall_ms"`
				Count  int64   `json:"count"`
			} `json:"spans"`
			Metrics map[string]float64 `json:"metrics"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("trace JSON: %v\n%s", err, raw)
		}
		if doc.Tool != "ptranc" {
			t.Errorf("tool = %q, want ptranc", doc.Tool)
		}
		phases := make(map[string]bool)
		for _, sp := range doc.Spans {
			phases[sp.Name] = true
			if sp.Count <= 0 {
				t.Errorf("span %q has count %d", sp.Name, sp.Count)
			}
		}
		for _, want := range []string{"parse", "lower", "interval", "ecfg", "cdg", "fcdg", "analyze"} {
			if !phases[want] {
				t.Errorf("missing span %q in %v", want, phases)
			}
		}
		if doc.Metrics["pipeline.procs"] <= 0 {
			t.Errorf("metrics missing pipeline.procs: %v", doc.Metrics)
		}
		if doc.Metrics["process.peak_rss_bytes"] <= 0 {
			t.Errorf("metrics missing process.peak_rss_bytes: %v", doc.Metrics)
		}

		metricsPath := filepath.Join(dir, "metrics.json")
		runCmd(t, filepath.Join(dir, "profrun"), "-src", src, "-db",
			filepath.Join(dir, "trace-profile.json"), "-seeds", "1", "-metrics", metricsPath)
		raw, err = os.ReadFile(metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		var mdoc struct {
			Metrics map[string]float64 `json:"metrics"`
		}
		if err := json.Unmarshal(raw, &mdoc); err != nil {
			t.Fatalf("metrics JSON: %v\n%s", err, raw)
		}
		if mdoc.Metrics["pipeline.counters"] <= 0 {
			t.Errorf("profrun metrics missing pipeline.counters: %v", mdoc.Metrics)
		}
	})

	t.Run("bench", func(t *testing.T) {
		out := filepath.Join(dir, "BENCH_1999-01-01.json")
		// Small/medium only (the large sweep is slow), no oracle corpus.
		// Two reps: the per-phase profile throughput of these tiny sweeps
		// is noisy at one rep, and the self-diff below gates on it.
		msg := runCmd(t, filepath.Join(dir, "bench"), "-reps", "2", "-sizes", "small,medium", "-oracle-seeds", "0", "-out", out, "-diff", "auto")
		if !strings.Contains(msg, "no previous BENCH_") {
			t.Errorf("first run must skip the diff:\n%s", msg)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Schema  string `json:"schema"`
			Entries []struct {
				Name    string             `json:"name"`
				Metrics map[string]float64 `json:"metrics"`
				Spans   []struct {
					Name string `json:"name"`
				} `json:"spans"`
			} `json:"entries"`
		}
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("snapshot JSON: %v\n%s", err, raw)
		}
		if snap.Schema != "bench/v1" || len(snap.Entries) == 0 {
			t.Fatalf("snapshot = %+v", snap)
		}
		e := snap.Entries[0]
		if e.Metrics["nodes_per_sec"] <= 0 || e.Metrics["counters_per_block"] <= 0 {
			t.Errorf("entry %s metrics: %v", e.Name, e.Metrics)
		}
		phases := make(map[string]bool)
		for _, sp := range e.Spans {
			phases[sp.Name] = true
		}
		for _, want := range []string{"parse", "analyze", "plan", "profile", "estimate"} {
			if !phases[want] {
				t.Errorf("entry %s missing span %q in %v", e.Name, want, phases)
			}
		}
		// A second run diffing against the first must pass (same machine,
		// same workload) and exit 0. The loose threshold keeps the smoke
		// test robust when it shares the machine with the -race suite;
		// CI's bench-smoke job applies the real 25% gate.
		out2 := filepath.Join(dir, "BENCH_1999-01-02.json")
		msg = runCmd(t, filepath.Join(dir, "bench"), "-reps", "2", "-sizes", "small,medium", "-oracle-seeds", "0", "-out", out2, "-diff", out, "-threshold", "0.6")
		if !strings.Contains(msg, "no regression") {
			t.Errorf("self-diff must report no regression:\n%s", msg)
		}
	})

	t.Run("hot-paths", func(t *testing.T) {
		bin := filepath.Join(dir, "ptranlint")
		out := runCmd(t, bin, "-hot-paths", "3", src)
		if !strings.Contains(out, "hot:") || !strings.Contains(out, "path ") {
			t.Errorf("text hot-path report missing:\n%s", out)
		}
		out = runCmd(t, bin, "-hot-paths", "3", "-json", src)
		var doc struct {
			HotPaths []struct {
				Proc  string `json:"proc"`
				Count int64  `json:"count"`
				Nodes []int  `json:"nodes"`
			} `json:"hot_paths"`
		}
		if err := json.Unmarshal([]byte(out), &doc); err != nil {
			t.Fatalf("hot-paths JSON: %v\n%s", err, out)
		}
		if len(doc.HotPaths) == 0 {
			t.Fatalf("no hot_paths in document:\n%s", out)
		}
		for _, h := range doc.HotPaths {
			if h.Proc == "" || h.Count <= 0 || len(h.Nodes) == 0 {
				t.Errorf("malformed hot path %+v", h)
			}
		}
	})

	// Every tool that takes -engine/-plan must reject unknown values with
	// the named sentinel message, and their help text must agree on the
	// accepted values — the flag set is one strategy surface, not N.
	t.Run("flag-rejection", func(t *testing.T) {
		engineTools := map[string][]string{
			"profrun": {"-src", src, "-db", db, "-engine", "bogus"},
			"oracle":  {"-seeds", "1", "-engine", "bogus"},
			"bench":   {"-engines", "bogus"},
		}
		for name, args := range engineTools {
			msg, err := exec.Command(filepath.Join(dir, name), args...).CombinedOutput()
			if err == nil {
				t.Errorf("%s -engine bogus must fail:\n%s", name, msg)
				continue
			}
			if !strings.Contains(string(msg), "unknown engine (want tree|vm|vm-batch)") {
				t.Errorf("%s: engine error must name the accepted values:\n%s", name, msg)
			}
		}
		planTools := map[string][]string{
			"profrun":  {"-src", src, "-db", db, "-plan", "bogus"},
			"estimate": {"-src", src, "-db", db, "-plan", "bogus"},
			"oracle":   {"-seeds", "1", "-plan", "bogus"},
			"bench":    {"-plan", "bogus"},
		}
		for name, args := range planTools {
			msg, err := exec.Command(filepath.Join(dir, name), args...).CombinedOutput()
			if err == nil {
				t.Errorf("%s -plan bogus must fail:\n%s", name, msg)
				continue
			}
			if !strings.Contains(string(msg), "unknown plan (want sarkar|ball-larus)") {
				t.Errorf("%s: plan error must name the accepted values:\n%s", name, msg)
			}
		}
		for _, name := range []string{"profrun", "oracle"} {
			msg, _ := exec.Command(filepath.Join(dir, name), "-h").CombinedOutput()
			if !strings.Contains(string(msg), "tree|vm|vm-batch") {
				t.Errorf("%s -h engine help drifted:\n%s", name, msg)
			}
		}
	})

	t.Run("cache-dir", func(t *testing.T) {
		readMetrics := func(t *testing.T, path string) map[string]float64 {
			t.Helper()
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var doc struct {
				Metrics map[string]float64 `json:"metrics"`
			}
			if err := json.Unmarshal(raw, &doc); err != nil {
				t.Fatalf("metrics JSON: %v\n%s", err, raw)
			}
			return doc.Metrics
		}
		cacheDir := filepath.Join(dir, "artcache")
		cacheDB := filepath.Join(dir, "cache-profile.json")

		// Every tool advertises the shared flag.
		for _, name := range []string{"figures", "table1", "ptranc", "profrun", "estimate", "ptranlint", "bench", "oracle", "loadgen", "ptrand"} {
			msg, _ := exec.Command(filepath.Join(dir, name), "-h").CombinedOutput()
			if !strings.Contains(string(msg), "cache-dir") {
				t.Errorf("%s -h does not document -cache-dir:\n%s", name, msg)
			}
		}

		// Cold run populates the cache (misses), warm run hits everything.
		m1 := filepath.Join(dir, "cache-m1.json")
		runCmd(t, filepath.Join(dir, "profrun"), "-src", src, "-db", cacheDB, "-seeds", "1", "-cache-dir", cacheDir, "-metrics", m1)
		if mm := readMetrics(t, m1); mm["artifact.miss"] <= 0 || mm["artifact.hit"] != 0 {
			t.Errorf("cold run metrics: %v", mm)
		}
		m2 := filepath.Join(dir, "cache-m2.json")
		runCmd(t, filepath.Join(dir, "profrun"), "-src", src, "-db", cacheDB, "-seeds", "2", "-cache-dir", cacheDir, "-metrics", m2)
		if mm := readMetrics(t, m2); mm["artifact.hit"] <= 0 || mm["artifact.miss"] != 0 {
			t.Errorf("warm run metrics: %v", mm)
		}

		// REPRO_CACHE_DIR is honored without the flag (estimate shares the
		// cache profrun populated: same source, engine, and plan).
		m3 := filepath.Join(dir, "cache-m3.json")
		cmd := exec.Command(filepath.Join(dir, "estimate"), "-src", src, "-db", cacheDB, "-model", "unit", "-metrics", m3)
		cmd.Env = append(os.Environ(), "REPRO_CACHE_DIR="+cacheDir)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("estimate under REPRO_CACHE_DIR: %v\n%s", err, msg)
		}
		if mm := readMetrics(t, m3); mm["artifact.hit"] <= 0 || mm["artifact.miss"] != 0 {
			t.Errorf("REPRO_CACHE_DIR run metrics: %v", mm)
		}

		// A cache path that is not a directory is a clear error, not a
		// silent fall-through to uncached mode.
		for name, args := range map[string][]string{
			"ptranc":   {"-src", src, "-cache-dir", src},
			"estimate": {"-src", src, "-db", cacheDB, "-cache-dir", src},
			"oracle":   {"-seeds", "1", "-cache-dir", src},
		} {
			msg, err := exec.Command(filepath.Join(dir, name), args...).CombinedOutput()
			if err == nil {
				t.Errorf("%s with a file as -cache-dir must fail:\n%s", name, msg)
				continue
			}
			if !strings.Contains(string(msg), "not a directory") {
				t.Errorf("%s: bad-dir error must say so:\n%s", name, msg)
			}
		}
	})

	t.Run("error-paths", func(t *testing.T) {
		if _, err := exec.Command(filepath.Join(dir, "estimate"), "-src", src, "-db", "/nonexistent.json").CombinedOutput(); err == nil {
			t.Error("estimate with missing db must fail")
		}
		if _, err := exec.Command(filepath.Join(dir, "ptranc")).CombinedOutput(); err == nil {
			t.Error("ptranc without -src must fail")
		}
		if _, err := exec.Command(filepath.Join(dir, "figures"), "-fig", "9").CombinedOutput(); err == nil {
			t.Error("figures -fig 9 must fail")
		}
	})
}
