// Package dfst computes depth-first spanning trees over control flow
// graphs, classifies edges, tests reducibility, and performs node splitting
// to make irreducible graphs reducible.
//
// The paper assumes a reducible CFG ("As in other code analysis and
// optimization techniques, we assume that the control flow graph is
// reducible. Node splitting is a standard approach that can be used to
// transform an irreducible control flow graph."); this package supplies both
// the test and the transformation.
package dfst

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
)

// EdgeKind classifies an edge with respect to a depth-first spanning tree.
type EdgeKind int

// Edge kinds. Tree edges form the spanning tree; Retreating edges go from a
// node to one of its DFS ancestors (in a reducible graph every retreating
// edge is a back edge whose target dominates its source); Forward edges go
// to a proper DFS descendant that is not a tree child via this edge; Cross
// edges connect unrelated subtrees.
const (
	Tree EdgeKind = iota
	Retreating
	Forward
	Cross
)

var kindNames = [...]string{"tree", "retreating", "forward", "cross"}

func (k EdgeKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
	return kindNames[k]
}

// Result holds a depth-first spanning tree of a graph rooted at its entry,
// together with derived orderings.
type Result struct {
	G *cfg.Graph

	// Pre and Post are 1-based DFS preorder and postorder numbers; 0 means
	// the node is unreachable from the entry.
	Pre, Post []int

	// RPO lists reachable node IDs in reverse postorder.
	RPO []cfg.NodeID

	// Parent is the DFS tree parent of each node (None for the root and
	// unreachable nodes).
	Parent []cfg.NodeID

	// kinds[i] classifies G.Edges()[i]... stored as map keyed by edge.
	kinds map[cfg.Edge]EdgeKind
}

// New runs a depth-first search over g from g.Entry and returns the
// resulting spanning tree and edge classification. Successors are visited in
// edge insertion order so the traversal is deterministic.
func New(g *cfg.Graph) *Result {
	r := &Result{
		G:      g,
		Pre:    make([]int, g.MaxID()+1),
		Post:   make([]int, g.MaxID()+1),
		Parent: make([]cfg.NodeID, g.MaxID()+1),
		kinds:  make(map[cfg.Edge]EdgeKind),
	}
	preClock, postClock := 0, 0
	// Iterative DFS to avoid recursion limits on large graphs.
	type frame struct {
		node cfg.NodeID
		next int // index into OutEdges(node)
	}
	if g.Node(g.Entry) == nil {
		return r
	}
	preClock++
	r.Pre[g.Entry] = preClock
	stack := []frame{{node: g.Entry}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		edges := g.OutEdges(f.node)
		if f.next < len(edges) {
			e := edges[f.next]
			f.next++
			if r.Pre[e.To] == 0 {
				r.kinds[e] = Tree
				r.Parent[e.To] = f.node
				preClock++
				r.Pre[e.To] = preClock
				stack = append(stack, frame{node: e.To})
			}
			continue
		}
		postClock++
		r.Post[f.node] = postClock
		stack = stack[:len(stack)-1]
	}
	// Classify non-tree edges now that numbering is complete.
	for _, e := range g.Edges() {
		if _, ok := r.kinds[e]; ok {
			continue
		}
		switch {
		case r.Pre[e.From] == 0 || r.Pre[e.To] == 0:
			// Edge touching an unreachable node: call it cross; analyses
			// require Validate()d graphs so this only happens in tests.
			r.kinds[e] = Cross
		case e.From == e.To:
			r.kinds[e] = Retreating
		case r.isAncestor(e.To, e.From):
			r.kinds[e] = Retreating
		case r.isAncestor(e.From, e.To):
			r.kinds[e] = Forward
		default:
			r.kinds[e] = Cross
		}
	}
	// Reverse postorder.
	reach := make([]cfg.NodeID, 0, g.NumNodes())
	for id := cfg.NodeID(1); id <= g.MaxID(); id++ {
		if r.Pre[id] != 0 {
			reach = append(reach, id)
		}
	}
	sort.Slice(reach, func(i, j int) bool { return r.Post[reach[i]] > r.Post[reach[j]] })
	r.RPO = reach
	return r
}

// isAncestor reports whether a is an ancestor of b in the DFS tree
// (a == b counts). It uses the standard preorder/postorder interval test.
func (r *Result) isAncestor(a, b cfg.NodeID) bool {
	return r.Pre[a] <= r.Pre[b] && r.Post[a] >= r.Post[b]
}

// Kind returns the classification of e. The edge must belong to the graph
// the Result was built from.
func (r *Result) Kind(e cfg.Edge) EdgeKind {
	k, ok := r.kinds[e]
	if !ok {
		panic(fmt.Sprintf("dfst: unknown edge %v", e))
	}
	return k
}

// RetreatingEdges returns all retreating edges in deterministic order.
func (r *Result) RetreatingEdges() []cfg.Edge {
	var out []cfg.Edge
	for _, e := range r.G.Edges() {
		if r.kinds[e] == Retreating {
			out = append(out, e)
		}
	}
	return out
}

// Reducible reports whether g is reducible, using iterated T1/T2 interval
// reduction: repeatedly remove self-loops (T1) and merge single-predecessor
// nodes into their predecessor (T2); g is reducible iff the limit graph is a
// single node. Only the subgraph reachable from g.Entry is considered.
func Reducible(g *cfg.Graph) bool {
	return len(limitGraph(g)) == 1
}

// limitGraph runs T1/T2 reduction to a fixpoint and returns the surviving
// node set (the "limit graph" vertices), represented as a map from
// representative node ID to its predecessor-representative set.
func limitGraph(g *cfg.Graph) map[cfg.NodeID]map[cfg.NodeID]bool {
	reach := g.ReachableFrom(g.Entry)
	// preds[n] = set of predecessor representatives; merged nodes are
	// removed from the map entirely.
	preds := make(map[cfg.NodeID]map[cfg.NodeID]bool)
	succs := make(map[cfg.NodeID]map[cfg.NodeID]bool)
	for id := cfg.NodeID(1); id <= g.MaxID(); id++ {
		if !reach[id] {
			continue
		}
		preds[id] = make(map[cfg.NodeID]bool)
		succs[id] = make(map[cfg.NodeID]bool)
	}
	for _, e := range g.Edges() {
		if !reach[e.From] || !reach[e.To] {
			continue
		}
		if e.From != e.To { // T1 applied up front: drop self loops
			preds[e.To][e.From] = true
			succs[e.From][e.To] = true
		}
	}
	changed := true
	for changed {
		changed = false
		// Deterministic scan order.
		ids := make([]cfg.NodeID, 0, len(preds))
		for id := range preds {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, n := range ids {
			ps, ok := preds[n]
			if !ok || n == g.Entry {
				continue
			}
			if len(ps) != 1 {
				continue
			}
			// T2: merge n into its unique predecessor p.
			var p cfg.NodeID
			for q := range ps {
				p = q
			}
			for s := range succs[n] {
				delete(preds[s], n)
				if s != p { // self-loop after merge: T1 removes it
					preds[s][p] = true
					succs[p][s] = true
				}
			}
			delete(succs[p], n)
			delete(preds, n)
			delete(succs, n)
			changed = true
		}
	}
	return preds
}

// SplitResult reports what MakeReducible did.
type SplitResult struct {
	// Splits counts how many node duplications were performed.
	Splits int
	// Original maps each node of the output graph to the node of the input
	// graph it copies (identity for unsplit nodes).
	Original map[cfg.NodeID]cfg.NodeID
}

// MakeReducible returns a reducible graph equivalent to g, applying node
// splitting: while the graph is irreducible, some node that survives T1/T2
// reduction with multiple predecessors is duplicated, one copy per
// predecessor. The input graph is not modified. For reducible inputs the
// result is a clone with zero splits.
//
// Node splitting can blow up exponentially in the worst case; real programs
// (and the paper's benchmarks) have tiny irreducible regions, so no effort
// is spent being clever about copy minimization.
func MakeReducible(g *cfg.Graph) (*cfg.Graph, *SplitResult) {
	out := g.Clone()
	res := &SplitResult{Original: make(map[cfg.NodeID]cfg.NodeID)}
	for id := cfg.NodeID(1); id <= out.MaxID(); id++ {
		res.Original[id] = id
	}
	for {
		limit := limitGraph(out)
		if len(limit) <= 1 {
			return out, res
		}
		// Choose the smallest non-entry survivor with >1 predecessors in the
		// limit graph; duplicate it in the real graph per incoming edge.
		var victim cfg.NodeID
		ids := make([]cfg.NodeID, 0, len(limit))
		for id := range limit {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if id != out.Entry && len(limit[id]) > 1 {
				victim = id
				break
			}
		}
		if victim == cfg.None {
			// Should be impossible: an irreducible limit graph must contain
			// a multi-entry node other than the entry.
			panic("dfst: irreducible graph with no splittable node")
		}
		splitNode(out, victim, res)
		res.Splits++
	}
}

// splitNode duplicates node v so that each incoming edge gets a private
// copy. The first incoming edge keeps the original node; each further edge
// is redirected to a fresh copy that inherits all of v's out-edges.
func splitNode(g *cfg.Graph, v cfg.NodeID, res *SplitResult) {
	in := append([]cfg.Edge(nil), g.InEdges(v)...)
	out := append([]cfg.Edge(nil), g.OutEdges(v)...)
	orig := res.Original[v]
	for i, e := range in {
		if i == 0 {
			continue // original keeps the first predecessor
		}
		copyNode := g.AddNode(g.Node(v).Type, g.Node(v).Name)
		copyNode.Payload = g.Node(v).Payload
		res.Original[copyNode.ID] = orig
		g.RemoveEdge(e.From, v, e.Label)
		g.MustAddEdge(e.From, copyNode.ID, e.Label)
		for _, oe := range out {
			to := oe.To
			if to == v {
				to = copyNode.ID // self loop duplicates onto the copy
			}
			g.MustAddEdge(copyNode.ID, to, oe.Label)
		}
	}
}
