package dfst

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/paperex"
)

// loopGraph: 1 -> 2 -> 3 -> 2 (back), 3 -> 4.
func loopGraph() *cfg.Graph {
	g := cfg.New("loop")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 2, cfg.True)
	g.MustAddEdge(3, 4, cfg.False)
	g.Entry, g.Exit = 1, 4
	return g
}

// irreducibleGraph is the classic two-entry loop: 1->2, 1->3, 2->3, 3->2,
// 2->4, with neither 2 nor 3 dominating the other.
func irreducibleGraph() *cfg.Graph {
	g := cfg.New("irreducible")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.True)
	g.MustAddEdge(1, 3, cfg.False)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 2, cfg.True)
	g.MustAddEdge(2, 4, cfg.True)
	g.Entry, g.Exit = 1, 4
	return g
}

func TestDFSNumbering(t *testing.T) {
	g := loopGraph()
	r := New(g)
	for id := cfg.NodeID(1); id <= 4; id++ {
		if r.Pre[id] == 0 || r.Post[id] == 0 {
			t.Errorf("node %d not numbered: pre=%d post=%d", id, r.Pre[id], r.Post[id])
		}
	}
	if r.Pre[1] != 1 {
		t.Errorf("entry preorder = %d, want 1", r.Pre[1])
	}
	if len(r.RPO) != 4 || r.RPO[0] != 1 {
		t.Errorf("RPO = %v, want entry first and all 4 nodes", r.RPO)
	}
	// RPO property: for tree/forward edges, source precedes target.
	pos := map[cfg.NodeID]int{}
	for i, n := range r.RPO {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if k := r.Kind(e); k == Tree || k == Forward {
			if pos[e.From] >= pos[e.To] {
				t.Errorf("%v edge %v violates RPO", k, e)
			}
		}
	}
}

func TestEdgeClassification(t *testing.T) {
	g := loopGraph()
	r := New(g)
	if k := r.Kind(cfg.Edge{From: 3, To: 2, Label: cfg.True}); k != Retreating {
		t.Errorf("3->2 classified %v, want retreating", k)
	}
	if k := r.Kind(cfg.Edge{From: 1, To: 2, Label: cfg.Uncond}); k != Tree {
		t.Errorf("1->2 classified %v, want tree", k)
	}
	back := r.RetreatingEdges()
	if len(back) != 1 || back[0].From != 3 {
		t.Errorf("RetreatingEdges = %v, want [3->2]", back)
	}
}

func TestForwardAndCrossEdges(t *testing.T) {
	g := cfg.New("fc")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	// 1->2->4, 1->3, 3->4 visited after 2's subtree: cross or forward
	// depending on DFS order; with insertion order 1->2 first, 2->4 tree,
	// then 1->3 tree, 3->4 is a cross edge (4 in a finished subtree).
	g.MustAddEdge(1, 2, cfg.True)
	g.MustAddEdge(2, 4, cfg.Uncond)
	g.MustAddEdge(1, 3, cfg.False)
	g.MustAddEdge(3, 4, cfg.Uncond)
	g.MustAddEdge(1, 4, cfg.Uncond) // forward edge to grandchild
	g.Entry, g.Exit = 1, 4
	r := New(g)
	if k := r.Kind(cfg.Edge{From: 3, To: 4, Label: cfg.Uncond}); k != Cross {
		t.Errorf("3->4 classified %v, want cross", k)
	}
	if k := r.Kind(cfg.Edge{From: 1, To: 4, Label: cfg.Uncond}); k != Forward {
		t.Errorf("1->4 classified %v, want forward", k)
	}
}

func TestSelfLoopIsRetreating(t *testing.T) {
	g := cfg.New("self")
	g.AddNode(cfg.Other, "a")
	g.AddNode(cfg.Other, "b")
	g.MustAddEdge(1, 1, cfg.True)
	g.MustAddEdge(1, 2, cfg.False)
	g.Entry, g.Exit = 1, 2
	r := New(g)
	if k := r.Kind(cfg.Edge{From: 1, To: 1, Label: cfg.True}); k != Retreating {
		t.Errorf("self loop classified %v, want retreating", k)
	}
}

func TestReducible(t *testing.T) {
	if !Reducible(loopGraph()) {
		t.Error("loop graph should be reducible")
	}
	if !Reducible(paperex.CFG()) {
		t.Error("paper example should be reducible")
	}
	if Reducible(irreducibleGraph()) {
		t.Error("two-entry loop should be irreducible")
	}
	// Straight line.
	g := cfg.New("line")
	g.AddNode(cfg.Other, "a")
	g.AddNode(cfg.Other, "b")
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.Entry, g.Exit = 1, 2
	if !Reducible(g) {
		t.Error("straight-line graph should be reducible")
	}
}

func TestMakeReducibleOnReducibleIsClone(t *testing.T) {
	g := loopGraph()
	out, res := MakeReducible(g)
	if res.Splits != 0 {
		t.Errorf("Splits = %d, want 0", res.Splits)
	}
	if out.NumNodes() != g.NumNodes() {
		t.Errorf("node count changed: %d -> %d", g.NumNodes(), out.NumNodes())
	}
}

func TestMakeReducibleSplitsIrreducible(t *testing.T) {
	g := irreducibleGraph()
	out, res := MakeReducible(g)
	if res.Splits == 0 {
		t.Fatal("expected at least one split")
	}
	if !Reducible(out) {
		t.Fatal("result is still irreducible")
	}
	if g.NumNodes() != 4 {
		t.Error("input graph was modified")
	}
	// Every new node maps back to an original node.
	for id := cfg.NodeID(1); id <= out.MaxID(); id++ {
		orig, ok := res.Original[id]
		if !ok || orig < 1 || orig > 4 {
			t.Errorf("node %d has bad original mapping %d (ok=%v)", id, orig, ok)
		}
	}
	// Behaviour preservation (paths): every node reachable from the entry.
	if err := out.Validate(); err != nil {
		t.Errorf("split graph invalid: %v", err)
	}
}

func TestMakeReducibleSelfLoopOnCopy(t *testing.T) {
	// Irreducible region where the split node has a self loop.
	g := cfg.New("selfsplit")
	for i := 0; i < 5; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.True)
	g.MustAddEdge(1, 3, cfg.False)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 3, cfg.True) // self loop on 3
	g.MustAddEdge(3, 2, cfg.False)
	g.MustAddEdge(2, 4, cfg.True)
	g.MustAddEdge(4, 5, cfg.Uncond)
	g.Entry, g.Exit = 1, 5
	out, _ := MakeReducible(g)
	if !Reducible(out) {
		t.Fatal("result is still irreducible")
	}
}

func TestKindPanicsOnForeignEdge(t *testing.T) {
	r := New(loopGraph())
	defer func() {
		if recover() == nil {
			t.Error("Kind on unknown edge should panic")
		}
	}()
	r.Kind(cfg.Edge{From: 9, To: 9, Label: cfg.Uncond})
}
