package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := &Registry{}
	r.Add("pipeline.engine_fallbacks_total", 3)
	r.Add("service.requests_total", 10)
	r.SetGauge("service.inflight", 2)
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE repro_pipeline_engine_fallbacks_total counter\n" +
		"repro_pipeline_engine_fallbacks_total 3\n" +
		"# TYPE repro_service_inflight gauge\n" +
		"repro_service_inflight 2\n" +
		"# TYPE repro_service_requests_total counter\n" +
		"repro_service_requests_total 10\n"
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"pipeline.cfg_nodes":    "repro_pipeline_cfg_nodes",
		"9lives":                "repro_9lives", // prefix keeps the name legal
		"a-b c":                 "repro_a_b_c",
		"process.peak_rss.2024": "repro_process_peak_rss_2024",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
