// Package obs is the pipeline's observability layer: a lightweight
// tracing/metrics subsystem the analysis, profiling, and estimation phases
// report into, and the bench harness reads regression data out of.
//
// The design follows the paper's own discipline of cheap counters: a Trace
// aggregates observations by phase name (one row per phase, not one per
// event), so tracing a 10k-procedure analysis costs a map lookup and two
// clock reads per procedure, and the output stays small enough to commit
// as a bench snapshot. A nil *Trace is valid everywhere and costs nothing —
// callers thread the trace unconditionally and the flag decides whether it
// exists.
//
// Spans measure wall time (summed busy time across observations), elapsed
// end-to-end extent (so Wall/Elapsed reveals worker-pool utilization),
// observation counts, and heap-allocation deltas read from the cheap
// runtime/metrics counter (not ReadMemStats, which stops the world).
//
// The process-wide metrics Registry holds named atomic counters and gauges
// (node totals, counters placed, peak RSS, ...); Snapshot flattens it into
// the report.Document schema shared with the diagnostic tools.
package obs

import (
	"math"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/report"
)

// heapAllocSample reads the monotone total of heap bytes allocated. One
// runtime/metrics read is a few atomic loads — cheap enough per span.
func heapAllocBytes() uint64 {
	var s [1]metrics.Sample
	s[0].Name = "/gc/heap/allocs:bytes"
	metrics.Read(s[:])
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}

// Trace aggregates span observations by phase name. The zero value is not
// usable; construct with NewTrace. A nil *Trace is a no-op on every method.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	agg   map[string]*spanAgg
}

type spanAgg struct {
	first, last time.Time
	busy        time.Duration
	count       int64
	alloc       int64
	metrics     map[string]float64
}

// NewTrace starts a trace; its clock zero is the call time.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), agg: make(map[string]*spanAgg)}
}

// Span is one in-flight observation; End folds it into the trace.
type Span struct {
	t      *Trace
	name   string
	t0     time.Time
	alloc0 uint64
}

// Start opens a span for the named phase. Safe on a nil trace (returns a
// no-op span) and from concurrent goroutines.
func (t *Trace) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, t0: time.Now(), alloc0: heapAllocBytes()}
}

// End folds the observation into its phase row, attaching the optional
// metrics (summed into any existing values of the same key).
func (s Span) End(extra ...Metric) {
	if s.t == nil {
		return
	}
	now := time.Now()
	alloc := int64(heapAllocBytes() - s.alloc0)
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.agg[s.name]
	if a == nil {
		a = &spanAgg{first: s.t0, last: now}
		t.agg[s.name] = a
	}
	if s.t0.Before(a.first) {
		a.first = s.t0
	}
	if now.After(a.last) {
		a.last = now
	}
	a.busy += now.Sub(s.t0)
	a.count++
	a.alloc += alloc
	for _, m := range extra {
		if a.metrics == nil {
			a.metrics = make(map[string]float64)
		}
		a.metrics[m.Name] += m.Value
	}
}

// Metric is one named measurement attached to a span observation.
type Metric struct {
	Name  string
	Value float64
}

// M is shorthand for constructing a Metric.
func M(name string, v float64) Metric { return Metric{Name: name, Value: v} }

// SetMetric records a phase-level metric outside any observation, replacing
// the current value (use for ratios and final counts rather than sums).
func (t *Trace) SetMetric(phase, name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.agg[phase]
	if a == nil {
		a = &spanAgg{first: time.Now(), last: time.Now()}
		t.agg[phase] = a
	}
	if a.metrics == nil {
		a.metrics = make(map[string]float64)
	}
	a.metrics[name] = v
}

// Spans renders the aggregated rows in first-start order, using the shared
// report schema.
func (t *Trace) Spans() []report.Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]report.Span, 0, len(t.agg))
	for name, a := range t.agg {
		sp := report.Span{
			Name:       name,
			StartMs:    float64(a.first.Sub(t.start)) / float64(time.Millisecond),
			WallMs:     float64(a.busy) / float64(time.Millisecond),
			ElapsedMs:  float64(a.last.Sub(a.first)) / float64(time.Millisecond),
			Count:      a.count,
			AllocBytes: a.alloc,
		}
		if len(a.metrics) > 0 {
			sp.Metrics = make(map[string]float64, len(a.metrics))
			for k, v := range a.metrics {
				sp.Metrics[k] = v
			}
		}
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartMs != out[j].StartMs {
			return out[i].StartMs < out[j].StartMs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ---------------------------------------------------------------------------
// Metrics registry.

// Registry is a process-wide set of named atomic counters and gauges.
// All methods are safe for concurrent use; the zero value is ready.
type Registry struct {
	counters sync.Map // string → *atomic.Int64
	gauges   sync.Map // string → *atomic.Uint64 (float64 bits)
}

// Default is the registry the pipeline reports into.
var Default = &Registry{}

// Add increments the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	v, ok := r.counters.Load(name)
	if !ok {
		v, _ = r.counters.LoadOrStore(name, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(delta)
}

// SetGauge sets the named gauge.
func (r *Registry) SetGauge(name string, val float64) {
	v, ok := r.gauges.Load(name)
	if !ok {
		v, _ = r.gauges.LoadOrStore(name, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Store(floatBits(val))
}

// MaxGauge raises the named gauge to val if val is larger (peak tracking).
func (r *Registry) MaxGauge(name string, val float64) {
	v, ok := r.gauges.Load(name)
	if !ok {
		v, _ = r.gauges.LoadOrStore(name, new(atomic.Uint64))
	}
	g := v.(*atomic.Uint64)
	for {
		old := g.Load()
		if floatFrom(old) >= val {
			return
		}
		if g.CompareAndSwap(old, floatBits(val)) {
			return
		}
	}
}

// Snapshot flattens counters and gauges into one map.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	r.counters.Range(func(k, v any) bool {
		out[k.(string)] = float64(v.(*atomic.Int64).Load())
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		out[k.(string)] = floatFrom(v.(*atomic.Uint64).Load())
		return true
	})
	return out
}

// Reset clears every counter and gauge (bench reps want a clean slate).
func (r *Registry) Reset() {
	r.counters.Range(func(k, _ any) bool { r.counters.Delete(k); return true })
	r.gauges.Range(func(k, _ any) bool { r.gauges.Delete(k); return true })
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }
