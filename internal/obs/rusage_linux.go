//go:build linux

package obs

import "syscall"

// PeakRSSBytes returns the process's peak resident set size. On Linux,
// getrusage reports Maxrss in kilobytes.
func PeakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024
}
