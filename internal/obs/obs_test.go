package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Start("phase")
	sp.End(M("x", 1))
	tr.SetMetric("phase", "y", 2)
	if got := tr.Spans(); got != nil {
		t.Errorf("nil trace Spans() = %v, want nil", got)
	}
}

func TestSpanAggregation(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 3; i++ {
		sp := tr.Start("work")
		time.Sleep(time.Millisecond)
		sp.End(M("items", 10))
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d rows, want 1 aggregated row: %v", len(spans), spans)
	}
	row := spans[0]
	if row.Name != "work" || row.Count != 3 {
		t.Errorf("row = %+v, want name=work count=3", row)
	}
	if row.WallMs < 3 {
		t.Errorf("WallMs = %v, want >= 3 (three 1ms sleeps)", row.WallMs)
	}
	if row.ElapsedMs < row.WallMs-0.5 {
		// Sequential spans: elapsed covers all busy time.
		t.Errorf("ElapsedMs = %v < WallMs = %v for sequential spans", row.ElapsedMs, row.WallMs)
	}
	if row.Metrics["items"] != 30 {
		t.Errorf("metrics summed to %v, want items=30", row.Metrics)
	}
}

func TestConcurrentSpansOverlap(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := tr.Start("pool")
			time.Sleep(5 * time.Millisecond)
			sp.End()
		}()
	}
	wg.Wait()
	row := tr.Spans()[0]
	if row.Count != 4 {
		t.Fatalf("count = %d, want 4", row.Count)
	}
	// Four overlapping 5ms spans: wall ≈ 20ms busy, elapsed ≈ 5ms extent.
	if row.WallMs <= row.ElapsedMs {
		t.Errorf("overlapping spans must have WallMs (%v) > ElapsedMs (%v)", row.WallMs, row.ElapsedMs)
	}
}

func TestSetMetricReplaces(t *testing.T) {
	tr := NewTrace()
	tr.SetMetric("analyze", "utilization", 0.5)
	tr.SetMetric("analyze", "utilization", 0.75)
	row := tr.Spans()[0]
	if row.Metrics["utilization"] != 0.75 {
		t.Errorf("SetMetric must replace, got %v", row.Metrics)
	}
}

func TestSpansSortedByStart(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("first")
	sp.End()
	time.Sleep(time.Millisecond)
	sp = tr.Start("second")
	sp.End()
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "first" || spans[1].Name != "second" {
		t.Errorf("spans out of order: %v", spans)
	}
}

func TestRegistry(t *testing.T) {
	r := &Registry{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add("counter", 1)
				r.MaxGauge("peak", float64(j))
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap["counter"] != 800 {
		t.Errorf("counter = %v, want 800", snap["counter"])
	}
	if snap["peak"] != 99 {
		t.Errorf("peak = %v, want 99", snap["peak"])
	}
	r.SetGauge("gauge", 1.5)
	if got := r.Snapshot()["gauge"]; got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	r.Reset()
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("Reset left %v", snap)
	}
}

func TestPeakRSSBytes(t *testing.T) {
	// Linux CI: getrusage must report a real footprint. Elsewhere 0 is the
	// documented "unavailable" value.
	if got := PeakRSSBytes(); got < 0 {
		t.Errorf("PeakRSSBytes = %d, want >= 0", got)
	}
}

func TestCLIWritesTraceDocument(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse([]string{"-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	tr, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("Begin with -trace must return a trace")
	}
	sp := tr.Start("phase")
	sp.End(M("n", 7))
	if err := c.End("testtool"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tool": "testtool"`, `"name": "phase"`, `"n": 7`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("trace document missing %q:\n%s", want, raw)
		}
	}
}

func TestCLIOffByDefault(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCLIFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	tr, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tr != nil {
		t.Error("Begin without -trace must return nil")
	}
	if err := c.End("testtool"); err != nil {
		t.Fatal(err)
	}
}
