package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): every counter as a `counter` family and every
// gauge as a `gauge` family, names prefixed with "repro_" and sanitized to
// the metric-name alphabet (dots and other separators become underscores).
// Families are emitted in sorted name order so scrapes are diffable.
//
// The registry's counters are cumulative by construction (Registry.Add is
// the only writer), which is exactly the Prometheus counter contract;
// gauges come from SetGauge/MaxGauge and may move both ways.
func WritePrometheus(w io.Writer, r *Registry) error {
	type family struct {
		name string
		typ  string
		val  float64
	}
	var fams []family
	r.counters.Range(func(k, v any) bool {
		fams = append(fams, family{promName(k.(string)), "counter", float64(v.(*atomic.Int64).Load())})
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		fams = append(fams, family{promName(k.(string)), "gauge", floatFrom(v.(*atomic.Uint64).Load())})
		return true
	})
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %v\n", f.name, f.typ, f.name, f.val); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry key to a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*, with the repro_ namespace prefix.
func promName(key string) string {
	var b strings.Builder
	b.WriteString("repro_") // the prefix also keeps a leading digit legal
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
