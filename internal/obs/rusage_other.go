//go:build !linux

package obs

// PeakRSSBytes returns 0 on platforms where peak RSS is not wired up;
// consumers treat 0 as "unavailable".
func PeakRSSBytes() int64 { return 0 }
