package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/report"
)

// CLI is the shared observability flag set of the command-line tools:
// -trace writes per-phase spans and a metrics snapshot as a report.Document,
// -metrics dumps the metrics snapshot alone, -pprof captures a CPU profile.
type CLI struct {
	tracePath   string
	metricsPath string
	pprofPath   string

	trace     *Trace
	pprofFile *os.File
}

// AddCLIFlags registers -trace, -metrics, and -pprof on fs.
func AddCLIFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.tracePath, "trace", "", "write per-phase spans + metrics as report JSON to `file` (- = stderr)")
	fs.StringVar(&c.metricsPath, "metrics", "", "write the metrics snapshot as report JSON to `file` (- = stderr)")
	fs.StringVar(&c.pprofPath, "pprof", "", "capture a CPU profile of the run to `file`")
	return c
}

// Begin starts tracing/profiling as requested by the parsed flags and
// returns the trace to thread through the pipeline (nil when -trace is off,
// which every consumer accepts).
func (c *CLI) Begin() (*Trace, error) {
	if c.tracePath != "" {
		c.trace = NewTrace()
	}
	if c.pprofPath != "" {
		f, err := os.Create(c.pprofPath)
		if err != nil {
			return nil, fmt.Errorf("obs: -pprof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: -pprof: %w", err)
		}
		c.pprofFile = f
	}
	return c.trace, nil
}

// Trace returns the trace started by Begin (nil when -trace is off).
func (c *CLI) Trace() *Trace { return c.trace }

// End stops the CPU profile and writes the requested reports. Call it on
// the success path (after the tool's own output), passing the tool name.
func (c *CLI) End(tool string) error {
	if c.pprofFile != nil {
		pprof.StopCPUProfile()
		if err := c.pprofFile.Close(); err != nil {
			return fmt.Errorf("obs: -pprof: %w", err)
		}
		c.pprofFile = nil
	}
	Default.MaxGauge("process.peak_rss_bytes", float64(PeakRSSBytes()))
	if c.tracePath != "" {
		doc := report.NewDocument(tool, nil)
		doc.Spans = c.trace.Spans()
		doc.Metrics = Default.Snapshot()
		if err := writeDoc(c.tracePath, doc); err != nil {
			return fmt.Errorf("obs: -trace: %w", err)
		}
	}
	if c.metricsPath != "" {
		doc := report.NewDocument(tool, nil)
		doc.Metrics = Default.Snapshot()
		if err := writeDoc(c.metricsPath, doc); err != nil {
			return fmt.Errorf("obs: -metrics: %w", err)
		}
	}
	return nil
}

func writeDoc(path string, doc *report.Document) error {
	if path == "-" {
		return doc.Encode(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := doc.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
