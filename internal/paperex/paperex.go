// Package paperex constructs the running example of the paper (Figures
// 1–3): the Fortran fragment
//
//	10 IF (M .GE. 0) THEN
//	       IF (N .LT. 0) GOTO 20
//	   ELSE
//	       IF (N .GE. 0) GOTO 20
//	   ENDIF
//	   CALL FOO(M,N)
//	   GOTO 10
//	20 CONTINUE
//
// Both the hand-built statement-level CFG (exactly Figure 1) and the
// matching source text for the frontend are provided, together with the
// profile and cost assignments the paper uses for Figure 3: the IF with
// label 10 executes 10 times, the loop exits via the IF(N.LT.0) branch,
// COST is 1 for IF nodes, 100 for the CALL, and 0 elsewhere. With these
// inputs the paper reports TIME(START) = 920 and STD_DEV(START) = 300.
package paperex

import "repro/internal/cfg"

// Node IDs of the hand-built Figure 1 CFG, exported so tests can refer to
// specific statements.
const (
	IfM    cfg.NodeID = 1 // 10 IF (M .GE. 0)   — loop header
	IfNLt  cfg.NodeID = 2 // IF (N .LT. 0) GOTO 20   (THEN arm)
	IfNGe  cfg.NodeID = 3 // IF (N .GE. 0) GOTO 20   (ELSE arm)
	Call   cfg.NodeID = 4 // CALL FOO(M,N)
	Goto10 cfg.NodeID = 5 // GOTO 10
	Cont20 cfg.NodeID = 6 // 20 CONTINUE
)

// CFG builds the statement-level control flow graph of Figure 1.
func CFG() *cfg.Graph {
	g := cfg.New("FIGURE1")
	g.AddNode(cfg.Other, "IF (M.GE.0)")
	g.AddNode(cfg.Other, "IF (N.LT.0) GOTO 20")
	g.AddNode(cfg.Other, "IF (N.GE.0) GOTO 20")
	g.AddNode(cfg.Other, "CALL FOO(M,N)")
	g.AddNode(cfg.Other, "GOTO 10")
	g.AddNode(cfg.Other, "CONTINUE")
	g.MustAddEdge(IfM, IfNLt, cfg.True)
	g.MustAddEdge(IfM, IfNGe, cfg.False)
	g.MustAddEdge(IfNLt, Cont20, cfg.True)
	g.MustAddEdge(IfNLt, Call, cfg.False)
	g.MustAddEdge(IfNGe, Cont20, cfg.True)
	g.MustAddEdge(IfNGe, Call, cfg.False)
	g.MustAddEdge(Call, Goto10, cfg.Uncond)
	g.MustAddEdge(Goto10, IfM, cfg.Uncond)
	g.Entry, g.Exit = IfM, Cont20
	return g
}

// Source is the example as frontend input. M and N are chosen so that the
// run matches the paper's profile: the IF labelled 10 executes 10 times
// (9 iterations run CALL FOO, the 10th exits), M stays non-negative
// throughout, and the loop exits through the IF (N .LT. 0) branch. FOO
// decrements N, so with N = 8 the 10th test sees N = -1.
const Source = `      PROGRAM EXMPL
      INTEGER M, N
      M = 5
      N = 8
   10 IF (M .GE. 0) THEN
         IF (N .LT. 0) GOTO 20
      ELSE
         IF (N .GE. 0) GOTO 20
      ENDIF
      CALL FOO(M, N)
      GOTO 10
   20 CONTINUE
      END

      SUBROUTINE FOO(M, N)
      INTEGER M, N
      N = N - 1
      RETURN
      END
`

// Paper-reported results for Figure 3.
const (
	// PaperTime is TIME(START) for the example.
	PaperTime = 920.0
	// PaperVariance is VAR(START); the paper reports STD_DEV(START) = 300.
	PaperVariance = 90000.0
	// PaperStdDev is STD_DEV(START).
	PaperStdDev = 300.0
)

// Costs returns the paper's COST assignment for the Figure 1 statement
// nodes: 1 for the IF nodes, 100 for the CALL, 0 elsewhere (START,
// CONTINUE, PREHEADER and POSTEXIT nodes all cost 0).
func Costs() map[cfg.NodeID]float64 {
	return map[cfg.NodeID]float64{
		IfM:    1,
		IfNLt:  1,
		IfNGe:  1,
		Call:   100,
		Goto10: 0,
		Cont20: 0,
	}
}
