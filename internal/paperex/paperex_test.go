package paperex

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/lang"
)

func TestCFGWellFormed(t *testing.T) {
	g := CFG()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 {
		t.Errorf("nodes = %d, want 6", g.NumNodes())
	}
	// Figure 1's edge set, exactly.
	want := map[cfg.Edge]bool{
		{From: IfM, To: IfNLt, Label: cfg.True}:     true,
		{From: IfM, To: IfNGe, Label: cfg.False}:    true,
		{From: IfNLt, To: Cont20, Label: cfg.True}:  true,
		{From: IfNLt, To: Call, Label: cfg.False}:   true,
		{From: IfNGe, To: Cont20, Label: cfg.True}:  true,
		{From: IfNGe, To: Call, Label: cfg.False}:   true,
		{From: Call, To: Goto10, Label: cfg.Uncond}: true,
		{From: Goto10, To: IfM, Label: cfg.Uncond}:  true,
	}
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("edges = %v", got)
	}
	for _, e := range got {
		if !want[e] {
			t.Errorf("unexpected edge %v", e)
		}
	}
}

func TestSourceParses(t *testing.T) {
	prog, err := lang.Parse(Source)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Main() == nil || prog.Unit("FOO") == nil {
		t.Error("expected EXMPL and FOO units")
	}
}

func TestCostsCoverAllNodes(t *testing.T) {
	costs := Costs()
	if len(costs) != 6 {
		t.Errorf("costs cover %d nodes, want 6", len(costs))
	}
	if costs[Call] != 100 || costs[IfM] != 1 || costs[Goto10] != 0 {
		t.Errorf("cost assignment wrong: %v", costs)
	}
	if PaperStdDev*PaperStdDev != PaperVariance {
		t.Error("paper constants inconsistent")
	}
}
