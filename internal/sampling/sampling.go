// Package sampling simulates the profiling approach Section 3 argues
// against: run-time sampling of the program counter. "The output of a
// sampling-based profiler is of the form 'Procedure P was found executing
// x% of the time' ... However, the coarse granularity of the sampling
// interval makes this approach unsuitable for determining execution
// frequencies of individual statements, or even small procedures."
//
// The simulator samples the executing node every `interval` machine cycles
// of the simulated trace and tallies hits per procedure and per node. The
// companion ExactShares computes the true time share of each procedure from
// the exact counts, so experiments can quantify the sampling error the
// paper alludes to — and contrast it with counter-based profiling, which
// recovers exact frequencies at comparable overhead.
package sampling

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/lower"
)

// Result is one sampled run.
type Result struct {
	// Interval is the sampling period in cycles.
	Interval float64
	// ByProc counts samples that landed in each procedure.
	ByProc map[string]int64
	// ByNode counts samples per (procedure, node).
	ByNode map[string]map[cfg.NodeID]int64
	// Total is the number of samples taken.
	Total int64
	// Cost is the run's total trace cost.
	Cost float64
}

// Run executes the program once, sampling every interval cycles. The
// opt.Engine selection passes through to interp.Run: both engines support
// the OnNodeCost sampling hook and tick at identical trace positions, so
// sampled profiles are engine-independent.
func Run(res *lower.Result, m cost.Model, interval float64, opt interp.Options) (*Result, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("sampling: interval must be positive, got %g", interval)
	}
	r := &Result{
		Interval: interval,
		ByProc:   make(map[string]int64),
		ByNode:   make(map[string]map[cfg.NodeID]int64),
	}
	next := interval
	opt.Model = &m
	prev := opt.OnNodeCost
	opt.OnNodeCost = func(p *lower.Proc, n cfg.NodeID, costSoFar float64) {
		if prev != nil {
			prev(p, n, costSoFar)
		}
		// The node "occupies" the trace up to costSoFar; every sampling
		// tick it covers charges one sample to it.
		for costSoFar >= next {
			r.ByProc[p.G.Name]++
			if r.ByNode[p.G.Name] == nil {
				r.ByNode[p.G.Name] = make(map[cfg.NodeID]int64)
			}
			r.ByNode[p.G.Name][n]++
			r.Total++
			next += interval
		}
	}
	run, err := interp.Run(res, opt)
	if err != nil {
		return nil, err
	}
	r.Cost = run.Cost
	return r, nil
}

// Share returns the sampled time fraction attributed to proc (0 when no
// samples were taken at all).
func (r *Result) Share(proc string) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.ByProc[proc]) / float64(r.Total)
}

// ExactShares computes each procedure's true self-time share of a run:
// the sum over its nodes of (executions × node cost), divided by the total
// trace cost. Derived from the interpreter's exact counts — the reference
// the sampled shares are compared against.
func ExactShares(res *lower.Result, m cost.Model, run *interp.Result) map[string]float64 {
	shares := make(map[string]float64, len(res.Procs))
	total := 0.0
	for name, p := range res.Procs {
		tab := m.Table(p)
		counts := run.ByProc[name]
		self := 0.0
		for _, n := range p.G.Nodes() {
			self += float64(counts.Node[n.ID]) * tab[n.ID]
		}
		shares[name] = self
		total += self
	}
	if total > 0 {
		for name := range shares {
			shares[name] /= total
		}
	}
	return shares
}

// WorstError returns the largest |sampled − exact| share over all
// procedures, with the offending procedure name.
func (r *Result) WorstError(exact map[string]float64) (string, float64) {
	worstName, worst := "", 0.0
	names := make([]string, 0, len(exact))
	for name := range exact {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if d := abs(r.Share(name) - exact[name]); d > worst {
			worstName, worst = name, d
		}
	}
	return worstName, worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
