package sampling

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interp"
)

// twoProcs spends ~90% of its time in HEAVY and ~10% in LIGHT, plus a tiny
// TINY procedure that a coarse sampler will miss entirely.
const twoProcs = `      PROGRAM MAINP
      INTEGER I
      DO 10 I = 1, 20
         CALL HEAVY
         CALL LIGHT
         CALL TINY
   10 CONTINUE
      END

      SUBROUTINE HEAVY
      INTEGER J
      REAL S
      S = 0.0
      DO 20 J = 1, 300
         S = S + SIN(S)
   20 CONTINUE
      RETURN
      END

      SUBROUTINE LIGHT
      INTEGER J
      REAL S
      S = 0.0
      DO 30 J = 1, 30
         S = S + 1.0
   30 CONTINUE
      RETURN
      END

      SUBROUTINE TINY
      RETURN
      END
`

func TestFineSamplingApproximatesShares(t *testing.T) {
	p, err := core.Load(twoProcs)
	if err != nil {
		t.Fatal(err)
	}
	m := cost.Optimized
	run, err := interp.Run(p.Res, interp.Options{Seed: 1, Model: &m})
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactShares(p.Res, m, run)
	if exact["HEAVY"] < 0.5 {
		t.Fatalf("test premise broken: HEAVY share = %g", exact["HEAVY"])
	}
	fine, err := Run(p.Res, m, 10, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, worst := fine.WorstError(exact); worst > 0.02 {
		t.Errorf("fine sampling (interval 10) worst share error %g > 2%%", worst)
	}
}

// TestSamplingConvergesToExactShares shrinks the sampling interval by
// successive factors of 10 and requires the worst per-procedure share error
// to converge toward the exact shares: every refinement may not help, but
// across two decades the error must drop, and the finest grid must land
// within a tight bound.
func TestSamplingConvergesToExactShares(t *testing.T) {
	p, err := core.Load(twoProcs)
	if err != nil {
		t.Fatal(err)
	}
	m := cost.Optimized
	run, err := interp.Run(p.Res, interp.Options{Seed: 1, Model: &m})
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactShares(p.Res, m, run)

	intervals := []float64{run.Cost / 10, run.Cost / 100, run.Cost / 1000, run.Cost / 10000}
	errs := make([]float64, len(intervals))
	for i, iv := range intervals {
		s, err := Run(p.Res, m, iv, interp.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, errs[i] = s.WorstError(exact)
		t.Logf("interval %.4g: %d samples, worst share error %.5f", iv, s.Total, errs[i])
	}
	for i := 2; i < len(errs); i++ {
		if errs[i] >= errs[i-2] && errs[i] > 0.01 {
			t.Errorf("error did not shrink over two decades: err[%d]=%g ≥ err[%d]=%g",
				i, errs[i], i-2, errs[i-2])
		}
	}
	if final := errs[len(errs)-1]; final > 0.005 {
		t.Errorf("finest sampling still off by %g (> 0.5%%)", final)
	}
}

func TestCoarseSamplingMissesSmallProcedures(t *testing.T) {
	p, err := core.Load(twoProcs)
	if err != nil {
		t.Fatal(err)
	}
	m := cost.Optimized
	run, err := interp.Run(p.Res, interp.Options{Seed: 1, Model: &m})
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactShares(p.Res, m, run)

	// Interval comparable to LIGHT's entire cost: per-procedure shares of
	// the small procedures become unreliable or zero — the paper's "even
	// small procedures" point.
	coarse, err := Run(p.Res, m, run.Cost/15, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Total == 0 {
		t.Fatal("no samples at all")
	}
	if coarse.ByProc["TINY"] != 0 {
		t.Errorf("TINY caught by coarse sampler (%d samples): premise too weak", coarse.ByProc["TINY"])
	}
	if exact["TINY"] == 0 {
		t.Error("TINY really does execute; its exact share must be positive")
	}
	// And the error is much worse than fine sampling's.
	fine, err := Run(p.Res, m, 10, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, coarseErr := coarse.WorstError(exact)
	_, fineErr := fine.WorstError(exact)
	if coarseErr <= fineErr {
		t.Errorf("coarse error %g should exceed fine error %g", coarseErr, fineErr)
	}
	t.Logf("shares exact HEAVY=%.3f LIGHT=%.3f TINY=%.5f; coarse worst err %.3f, fine worst err %.4f",
		exact["HEAVY"], exact["LIGHT"], exact["TINY"], coarseErr, fineErr)
}

func TestSamplingCannotSeeStatementFrequencies(t *testing.T) {
	// The paper's core argument: counters give exact statement
	// frequencies; sampling attributes whole ticks to whichever statement
	// happened to be executing. For a cheap statement inside a hot loop
	// the sampled "count" bears no relation to its execution frequency.
	p, err := core.Load(twoProcs)
	if err != nil {
		t.Fatal(err)
	}
	m := cost.Optimized
	s, err := Run(p.Res, m, 500, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := interp.Run(p.Res, interp.Options{Seed: 1, Model: &m})
	if err != nil {
		t.Fatal(err)
	}
	heavy := p.Res.Procs["HEAVY"]
	mismatch := false
	for _, n := range heavy.G.Nodes() {
		execs := run.NodeCount(heavy, n.ID)
		samples := s.ByNode["HEAVY"][n.ID]
		if execs > 100 && samples == 0 {
			mismatch = true // a hot statement invisible to the sampler
		}
	}
	if !mismatch {
		t.Error("expected at least one hot statement with zero samples at interval 500")
	}
}

func TestBadInterval(t *testing.T) {
	p, err := core.Load(twoProcs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p.Res, cost.Unit, 0, interp.Options{}); err == nil {
		t.Error("interval 0 must be rejected")
	}
	if _, err := Run(p.Res, cost.Unit, -5, interp.Options{}); err == nil {
		t.Error("negative interval must be rejected")
	}
}

// TestSamplingEngineEquivalence runs the sampler on both execution engines
// and requires identical sample counts: the VM fires OnNodeCost at the
// same trace positions as the tree-walker.
func TestSamplingEngineEquivalence(t *testing.T) {
	p, err := core.Load(twoProcs)
	if err != nil {
		t.Fatal(err)
	}
	m := cost.Optimized
	tree, err := Run(p.Res, m, 25, interp.Options{Seed: 3, Engine: interp.EngineTree})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := Run(p.Res, m, 25, interp.Options{Seed: 3, Engine: interp.EngineVM})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Total != vm.Total || tree.Cost != vm.Cost {
		t.Fatalf("totals differ: tree (%d, %g) vm (%d, %g)", tree.Total, tree.Cost, vm.Total, vm.Cost)
	}
	for proc, n := range tree.ByProc {
		if vm.ByProc[proc] != n {
			t.Fatalf("proc %s: tree %d samples, vm %d", proc, n, vm.ByProc[proc])
		}
	}
	for proc, nodes := range tree.ByNode {
		for id, n := range nodes {
			if vm.ByNode[proc][id] != n {
				t.Fatalf("%s node %d: tree %d samples, vm %d", proc, id, n, vm.ByNode[proc][id])
			}
		}
	}
}
