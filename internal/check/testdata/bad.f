      PROGRAM BAD
      INTEGER I, K
      K = 0
      IF (K .GT. 0) GOTO 20
   10 K = K + 1
   20 K = K - 1
      IF (K .GT. 5) GOTO 10
      IF (K .LT. -5) GOTO 20
      DO 30 I = 10, 1
         K = K + 1
   30 CONTINUE
      IF (.FALSE.) THEN
         K = 99
      ENDIF
      END
