package check_test

import (
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/report"
)

// loadSrc runs the full front end over an inline source.
func loadSrc(t *testing.T, src string) *core.Pipeline {
	t.Helper()
	p, err := core.Load(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

// TestLintUnreachableAfterStop pins the lint on statements following STOP:
// they can never execute and must be flagged, at warning severity only.
func TestLintUnreachableAfterStop(t *testing.T) {
	p := loadSrc(t, `      PROGRAM P
      REAL X
      X = 1.0
      PRINT *, X
      STOP
      X = 2.0
      PRINT *, X
      END
`)
	diags, err := check.Program(p.An, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Severity == report.Error {
			t.Errorf("unreachable code must not be an error: %s", d)
		}
		if d.Line == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("no finding points at the statement after STOP: %v", diags)
	}
}

// TestLintEmptyProcedure checks degenerate program units carry no findings:
// nothing to lint is not a defect.
func TestLintEmptyProcedure(t *testing.T) {
	p := loadSrc(t, `      PROGRAM P
      CALL NOP()
      END
      SUBROUTINE NOP()
      END
`)
	diags, err := check.Program(p.An, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("empty units must be clean, got: %s", d)
	}
}

// TestLintDiagnosticsDeterministic pins ordering: repeated runs over a
// program that fires several passes at once produce byte-identical,
// report.Sort-stable diagnostic lists.
func TestLintDiagnosticsDeterministic(t *testing.T) {
	src := `      PROGRAM P
      INTEGER K, J, N, I
      REAL X
      K = 1
      X = 0.0
      N = 0
      IF (K .GT. 5) THEN
         X = X + 1.0
      ENDIF
      DO 10 I = 1, N
         X = X + 1.0
10    CONTINUE
      J = 3
      X = X + REAL(K)
      PRINT *, X
      END
`
	p := loadSrc(t, src)
	base, err := check.Program(p.An, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("the fixture must produce findings (constant IF, zero-trip DO, dead store)")
	}
	sorted := append([]report.Diagnostic(nil), base...)
	report.Sort(sorted)
	if !reflect.DeepEqual(base, sorted) {
		t.Errorf("diagnostics not emitted in sorted order:\n%v", base)
	}
	for i := 0; i < 5; i++ {
		q := loadSrc(t, src)
		again, err := check.Program(q.An, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, again) {
			t.Fatalf("run %d produced different diagnostics:\nfirst: %v\nagain: %v", i, base, again)
		}
	}
}

// TestFlowLintsFire pins each new flow pass on its smallest trigger.
func TestFlowLintsFire(t *testing.T) {
	cases := []struct {
		name string
		pass string
		src  string
	}{
		{"deadcode", "deadcode", `      PROGRAM P
      INTEGER K
      REAL X
      K = 1
      X = 0.0
      IF (K .GT. 5) THEN
         X = X + 1.0
      ENDIF
      PRINT *, X
      END
`},
		{"deadstore", "deadstore", `      PROGRAM P
      INTEGER K
      REAL X
      K = 9
      K = 2
      X = REAL(K)
      PRINT *, X
      END
`},
		{"defassign", "defassign", `      PROGRAM P
      INTEGER K
      REAL X
      IF (RAND() .GT. 0.5) THEN
         K = 4
      ENDIF
      X = REAL(K)
      PRINT *, X
      END
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := loadSrc(t, tc.src)
			diags, err := check.Program(p.An, check.Options{Passes: []string{tc.pass}})
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) == 0 {
				t.Fatalf("pass %s produced no findings", tc.pass)
			}
			for _, d := range diags {
				if d.Pass != tc.pass {
					t.Errorf("finding from pass %q, want %q: %s", d.Pass, tc.pass, d)
				}
				if d.Severity != report.Warning {
					t.Errorf("flow lints are warnings, got %s: %s", d.Severity, d)
				}
				if d.Line == 0 {
					t.Errorf("finding carries no source line: %s", d)
				}
			}
		})
	}
}
