package check

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/dfst"
	"repro/internal/dom"
	"repro/internal/report"
)

// checkReducible re-derives the reducibility certificate on the lowered
// (post-split) CFG: every retreating edge of a depth-first spanning tree
// must have a target that dominates its source — exactly the property the
// interval analysis assumes. Lowering is supposed to have node-split any
// irreducible input, so a violation here is an error; the split count
// itself is surfaced as a warning because duplicated code changes the
// source-to-node mapping the profiler reports against.
func checkReducible(a *analysis.Proc, r *reporter) {
	g := a.P.G
	res := dfst.New(g)
	doms := dom.Dominators(g)
	var offending int
	for _, e := range res.RetreatingEdges() {
		if !doms.Dominates(e.To, e.From) {
			offending++
			r.errorf(int(e.From), "retreating edge %v: target does not dominate source (irreducible region survived lowering)", e)
		}
	}
	if offending == 0 && !dfst.Reducible(g) {
		// Belt and braces: the T1/T2 limit-graph test disagrees with the
		// dominator certificate. One of the two analyses is wrong.
		r.errorf(0, "dominator certificate holds but T1/T2 reduction does not reach a single node")
	}
	if a.P.Splits > 0 {
		noun := "nodes"
		if a.P.Splits == 1 {
			noun = "node"
		}
		r.add(report.Warning, report.Diagnostic{
			Message: fmt.Sprintf("irreducible control flow: lowering duplicated %d %s to restore reducibility", a.P.Splits, noun),
			Hint:    "restructure the GOTOs so every loop has a single entry point",
		})
	}
}
