package check

import (
	"repro/internal/analysis"
	"repro/internal/lang"
)

// checkLints runs the source-level lints over the procedure's AST and its
// lowered form: branch conditions that fold to a compile-time constant,
// constant DO loops that never execute, and statements the lowering dropped
// as unreachable. All findings are warnings — the program is still valid —
// positioned at the offending source line/column.
func checkLints(a *analysis.Proc, r *reporter) {
	u := a.P.Unit
	if u == nil {
		return // hand-built procedures (tests, paperex) have no AST
	}

	// Live statements: everything the lowering kept a node for. Statements
	// absent from the map were dropped as dead code.
	live := make(map[lang.Stmt]bool, len(a.P.Stmt))
	for _, s := range a.P.Stmt {
		live[s] = true
	}
	// "IF (c) GOTO l" lowers to one fused branch node mapped to the
	// LogicalIf; its inner GOTO has no node of its own but is just as live.
	for _, s := range a.P.Stmt {
		if li, ok := s.(*lang.LogicalIf); ok {
			live[li.Then] = true
		}
	}

	lintBlock(u, u.Body, live, true, r)
}

// lintBlock walks one statement list. parentLive is false inside a
// statement already reported dead, so a dropped region produces one
// diagnostic at its head instead of one per statement.
func lintBlock(u *lang.Unit, body []lang.Stmt, live map[lang.Stmt]bool, parentLive bool, r *reporter) {
	for _, s := range body {
		alive := live[s]
		if parentLive && !alive {
			r.warnAt(s.Pos(), s.Column(), "remove it or make it reachable",
				"unreachable code: statement %q was dropped during lowering", s.Text())
		}
		switch st := s.(type) {
		case *lang.IfBlock:
			lintCond(u, st.Cond, st.Line, st.Col, r)
			lintBlock(u, st.Then, live, alive, r)
			for _, arm := range st.Elifs {
				lintCond(u, arm.Cond, arm.Line, 0, r)
				lintBlock(u, arm.Body, live, alive, r)
			}
			lintBlock(u, st.Else, live, alive, r)
		case *lang.LogicalIf:
			lintCond(u, st.Cond, st.Line, st.Col, r)
			lintBlock(u, []lang.Stmt{st.Then}, live, alive, r)
		case *lang.ArithIf:
			if v, ok := lang.FoldInt(u, st.Expr); ok {
				r.warnAt(st.Line, st.Col, "the other two targets are dead",
					"arithmetic IF expression is the constant %d: always branches the same way", v)
			}
		case *lang.ComputedGoto:
			if v, ok := lang.FoldInt(u, st.Expr); ok {
				r.warnAt(st.Line, st.Col, "replace it with a plain GOTO",
					"computed GOTO index is the constant %d", v)
			}
		case *lang.DoLoop:
			lintDo(u, st, r)
			lintBlock(u, st.Body, live, alive, r)
		}
	}
}

// lintCond flags IF conditions that fold at compile time.
func lintCond(u *lang.Unit, cond lang.Expr, line, col int, r *reporter) {
	if v, ok := lang.FoldLogical(u, cond); ok {
		arm := ".FALSE.: the THEN arm is dead"
		if v {
			arm = ".TRUE.: the branch is always taken"
		}
		r.warnAt(line, col, "fold the branch away", "IF condition %q is constant %s", cond.String(), arm)
	}
}

// lintDo flags constant DO loops with a non-positive trip count (including
// a constant zero step, which would never terminate).
func lintDo(u *lang.Unit, st *lang.DoLoop, r *reporter) {
	lo, okLo := lang.FoldInt(u, st.Lo)
	hi, okHi := lang.FoldInt(u, st.Hi)
	step, okStep := int64(1), true
	if st.Step != nil {
		step, okStep = lang.FoldInt(u, st.Step)
	}
	if okStep && step == 0 {
		r.warnAt(st.Line, st.Col, "use a nonzero step", "DO step is the constant 0: the loop never advances")
		return
	}
	if !okLo || !okHi || !okStep {
		return
	}
	trip := (hi - lo + step) / step
	if trip <= 0 {
		r.warnAt(st.Line, st.Col, "the body is dead at run time",
			"DO loop never executes: constant bounds %d,%d,%d give trip count %d", lo, hi, step, max64(trip, 0))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
