package check

import (
	"repro/internal/analysis"
)

// The dataflow-backed lint passes surface the flow framework's findings as
// diagnostics. They complement the syntactic lints of checkLints: those
// fold single expressions, these reason across statements — a branch
// decided by a propagated constant, a store no path reads, a read of a
// never-assigned local. All findings are warnings; the interpreter gives
// every program a well-defined meaning regardless.

// checkDeadCode reports statements the constant propagation proved
// unreachable (beyond the syntactically dead code the lowering dropped).
func checkDeadCode(a *analysis.Proc, r *reporter) {
	f := a.Flow
	if f == nil || a.P.Unit == nil {
		return
	}
	for _, n := range f.DeadNodes {
		s := a.P.Stmt[n]
		r.warnAt(s.Pos(), s.Column(), "the conditions guarding it are decided at compile time",
			"dead code: statement %q can never execute", s.Text())
	}
}

// checkDeadStore reports scalar assignments whose value no later path
// reads, from the backward liveness analysis.
func checkDeadStore(a *analysis.Proc, r *reporter) {
	if a.Flow == nil || a.P.Unit == nil {
		return
	}
	for _, fd := range a.Flow.DeadStores {
		r.warnAt(fd.Line, fd.Col, "remove the assignment or use the value",
			"dead store: %s", fd.Msg)
	}
}

// checkDefAssign reports reads of locals not assigned on every path from
// entry, from the forward definite-assignment analysis. The interpreter
// zero-initializes locals, so these execute deterministically — but the
// zero is almost never what the author meant.
func checkDefAssign(a *analysis.Proc, r *reporter) {
	if a.Flow == nil || a.P.Unit == nil {
		return
	}
	for _, fd := range a.Flow.UseBeforeDef {
		r.warnAt(fd.Line, fd.Col, "assign the variable on every path before this use",
			"use before assignment: %s", fd.Msg)
	}
}
