package check

import (
	"repro/internal/analysis"
	"repro/internal/cfg"
)

// checkWellFormed verifies the CFG/ECFG shape later phases rely on:
// every node is reachable from START, every node can reach STOP (the
// postdominator-based CDG construction requires it), and the pseudo edges
// added by the ECFG transformation connect exactly the node pairs Figure 2
// prescribes — Z1 only START→STOP, Z2 only preheader→postexit of the same
// interval, with every preheader and postexit wired to its loop.
func checkWellFormed(a *analysis.Proc, r *reporter) {
	ext := a.Ext
	g := ext.G

	// Forward reachability from START.
	reach := g.ReachableFrom(ext.Start)
	for id := cfg.NodeID(1); id <= g.MaxID(); id++ {
		if g.Node(id) == nil {
			continue
		}
		if int(id) >= len(reach) || !reach[id] {
			r.errorf(int(id), "node %q is unreachable from START", g.Node(id).Name)
		}
	}

	// Backward reachability to STOP.
	canStop := make([]bool, g.MaxID()+1)
	stack := []cfg.NodeID{ext.Stop}
	canStop[ext.Stop] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.InEdges(n) {
			if !canStop[e.From] {
				canStop[e.From] = true
				stack = append(stack, e.From)
			}
		}
	}
	for id := cfg.NodeID(1); id <= g.MaxID(); id++ {
		if g.Node(id) == nil || canStop[id] {
			continue
		}
		r.errorf(int(id), "node %q cannot reach STOP (non-terminating region)", g.Node(id).Name)
	}

	// Pseudo edge shape.
	for _, e := range g.Edges() {
		switch e.Label {
		case cfg.PseudoStartStop:
			if e.From != ext.Start || e.To != ext.Stop {
				r.errorf(int(e.From), "dangling Z1 pseudo edge %v: must connect START to STOP", e)
			}
		case cfg.PseudoLoop:
			h, isPre := ext.HeaderOf[e.From]
			if !isPre {
				r.errorf(int(e.From), "dangling Z2 pseudo edge %v: source is not a PREHEADER", e)
				continue
			}
			exited, isPost := ext.ExitedInterval[e.To]
			if !isPost {
				r.errorf(int(e.To), "dangling Z2 pseudo edge %v: target is not a POSTEXIT", e)
				continue
			}
			if exited != h {
				r.errorf(int(e.From), "Z2 pseudo edge %v crosses intervals: preheader of %d, postexit of %d", e, h, exited)
			}
		}
	}

	// Every loop header has a preheader; every preheader/postexit node is
	// registered in the interval bookkeeping.
	for _, h := range ext.Intervals.Headers() {
		if _, ok := ext.Preheader[h]; !ok && !ext.IsSynthetic(h) {
			r.errorf(int(h), "loop header %d has no PREHEADER node", h)
		}
	}
	for id := cfg.NodeID(1); id <= g.MaxID(); id++ {
		n := g.Node(id)
		if n == nil {
			continue
		}
		switch n.Type {
		case cfg.Preheader:
			if _, ok := ext.HeaderOf[id]; !ok {
				r.errorf(int(id), "PREHEADER node %d serves no loop header", id)
			}
		case cfg.Postexit:
			if _, ok := ext.ExitedInterval[id]; !ok {
				r.errorf(int(id), "POSTEXIT node %d exits no interval", id)
			}
		}
	}
}
