package check

import (
	"math"

	"repro/internal/analysis"
	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/profiler"
	"repro/internal/report"
)

// checkPlan builds the optimized counter placement for the procedure —
// the same flow-aware placement BuildPlans deploys — and statically proves
// it sound via VerifyPlan.
func checkPlan(a *analysis.Proc, r *reporter) {
	plan, err := profiler.PlanFlow(a)
	if err != nil {
		r.errorf(0, "no solvable counter plan: %v", err)
		return
	}
	for _, d := range VerifyPlan(plan) {
		d.Pass = r.pass
		d.Proc = r.proc
		r.diags = append(r.diags, d)
	}
}

// VerifyPlan is the counter-plan soundness proof: it encodes the plan's
// counters and inference rules as a linear system over the non-pseudo FCDG
// conditions and checks that the coefficient matrix has full column rank.
// Full rank means the system determines every TOTAL_FREQ(u,l) uniquely for
// any counter readings — independent of the runtime recovery fixpoint, which
// is one particular way of solving the same system.
//
// The encoding mirrors the recovery semantics exactly:
//
//   - a condition counter contributes the equation x_c = reading;
//   - exec(u), wherever a rule mentions it, expands to the sum of u's FCDG
//     in-edge conditions (pseudo conditions are identically zero), and
//     exec(START) to the START run counter;
//   - branch balance:  x_dropped + Σ x_others − exec(u)          = 0
//   - loop identity:   x_(ph,U) − exec(ph) − Σ taking(back edge) = 0
//   - static freq:     x_dropped − k·exec(u)                     = 0
//   - constant DO:     x_(ph,U) − (trip+1)·exec(ph)              = 0
//     plus x_(test,T) − trip·exec(ph) = 0 and x_(test,F) − exec(ph) = 0
//   - TripAdd DO:      x_(ph,U) − exec(ph) = reading, x_(test,T) = reading,
//     and x_(test,F) − exec(ph) = 0.
//
// It returns one error diagnostic per condition left undetermined (free
// column), or nil when the plan is certified.
func VerifyPlan(p *profiler.Plan) []report.Diagnostic {
	if p.Naive {
		return nil // naive plans count blocks, not conditions: nothing to certify
	}
	s := newLinsys(p)
	for _, c := range p.Counters {
		if c.Kind == profiler.CondCounter {
			row := s.row()
			s.addCond(row, c.Cond, 1)
			s.rows = append(s.rows, row)
		}
	}
	for _, r := range p.Rules() {
		s.addRule(r)
	}
	free := s.freeColumns()
	var diags []report.Diagnostic
	for _, col := range free {
		c := s.conds[col]
		diags = append(diags, report.Diagnostic{
			Severity: report.Error,
			Node:     int(c.Node),
			Message:  "counter plan does not determine condition " + c.String() + " uniquely",
			Hint:     "the placement's rules are rank-deficient; file a profiler bug",
		})
	}
	return diags
}

// linsys accumulates equation rows over the plan's condition unknowns.
type linsys struct {
	p     *profiler.Plan
	conds []cdg.Condition
	ci    map[cdg.Condition]int
	rows  [][]float64
}

func newLinsys(p *profiler.Plan) *linsys {
	conds := p.Conds()
	ci := make(map[cdg.Condition]int, len(conds))
	for i, c := range conds {
		ci[c] = i
	}
	return &linsys{p: p, conds: conds, ci: ci}
}

func (s *linsys) row() []float64 { return make([]float64, len(s.conds)) }

// addCond adds scale·x_c to the row; pseudo conditions are identically zero
// and contribute nothing. It reports whether the condition was representable
// (a real unknown or a pseudo constant).
func (s *linsys) addCond(row []float64, c cdg.Condition, scale float64) bool {
	if c.Label.IsPseudo() {
		return true
	}
	i, ok := s.ci[c]
	if !ok {
		return false
	}
	row[i] += scale
	return true
}

// addExec adds scale·exec(u) to the row, expanding exec to the FCDG in-edge
// conditions (or the START run counter for the root).
func (s *linsys) addExec(row []float64, u cfg.NodeID, scale float64) bool {
	f := s.p.A.FCDG
	if u == f.Root {
		return s.addCond(row, cdg.Condition{Node: f.Root, Label: cfg.Uncond}, scale)
	}
	in := f.InEdges(u)
	if len(in) == 0 {
		return false
	}
	for _, e := range in {
		if !s.addCond(row, cdg.Condition{Node: e.From, Label: e.Label}, scale) {
			return false
		}
	}
	return true
}

// addTaking adds scale·taking(be) for a CFG back edge, mirroring the
// recovery fixpoint: the edge's own condition when it is one, otherwise
// exec(source) when the source is single-exit.
func (s *linsys) addTaking(row []float64, be cfg.Edge, scale float64) bool {
	c := cdg.Condition{Node: be.From, Label: be.Label}
	if _, ok := s.ci[c]; ok || c.Label.IsPseudo() {
		return s.addCond(row, c, scale)
	}
	labels := 0
	for _, l := range s.p.A.Ext.G.Labels(be.From) {
		if !l.IsPseudo() {
			labels++
		}
	}
	if labels == 1 {
		return s.addExec(row, be.From, scale)
	}
	return false
}

func (s *linsys) addRule(r profiler.RuleView) {
	ext := s.p.A.Ext
	switch r.Kind {
	case profiler.RuleBranchBalance:
		row := s.row()
		ok := s.addCond(row, r.Dropped, 1)
		for _, o := range r.Others {
			ok = s.addCond(row, o, 1) && ok
		}
		ok = s.addExec(row, r.Node, -1) && ok
		if ok {
			s.rows = append(s.rows, row)
		}

	case profiler.RuleLoopIdentity:
		ph := ext.Preheader[r.Node]
		row := s.row()
		ok := s.addCond(row, cdg.Condition{Node: ph, Label: cfg.Uncond}, 1)
		ok = s.addExec(row, ph, -1) && ok
		for _, be := range r.BackEdges {
			ok = s.addTaking(row, be, -1) && ok
		}
		if ok {
			s.rows = append(s.rows, row)
		}

	case profiler.RuleStaticCond:
		row := s.row()
		ok := s.addCond(row, r.Dropped, 1)
		ok = s.addExec(row, r.Node, -r.StaticFreq) && ok
		if ok {
			s.rows = append(s.rows, row)
		}

	case profiler.RuleDoConstTrip, profiler.RuleDoAddTrip:
		ph := ext.Preheader[r.Node]
		// Loop condition equation.
		row := s.row()
		ok := s.addCond(row, cdg.Condition{Node: ph, Label: cfg.Uncond}, 1)
		scale := -1.0 // TripAdd: x_(ph,U) − exec(ph) = reading
		if r.Kind == profiler.RuleDoConstTrip {
			scale = -float64(r.Trip + 1) // x_(ph,U) = (trip+1)·exec(ph)
		}
		ok = s.addExec(row, ph, scale) && ok
		if ok {
			s.rows = append(s.rows, row)
		}
		// Body-entry condition (test,T).
		if bodyCond := (cdg.Condition{Node: r.Node, Label: cfg.True}); s.has(bodyCond) {
			row := s.row()
			ok := s.addCond(row, bodyCond, 1)
			if r.Kind == profiler.RuleDoConstTrip {
				ok = s.addExec(row, ph, -float64(r.Trip)) && ok
			}
			// TripAdd: x_(test,T) = reading — the row is just x_(test,T).
			if ok {
				s.rows = append(s.rows, row)
			}
		}
		// Exit condition (test,F) = exec(ph).
		if exitCond := (cdg.Condition{Node: r.Node, Label: cfg.False}); s.has(exitCond) {
			row := s.row()
			ok := s.addCond(row, exitCond, 1)
			ok = s.addExec(row, ph, -1) && ok
			if ok {
				s.rows = append(s.rows, row)
			}
		}
	}
}

func (s *linsys) has(c cdg.Condition) bool {
	_, ok := s.ci[c]
	return ok
}

// freeColumns runs Gaussian elimination and returns the indices of columns
// without a pivot — the conditions the system does not determine. An empty
// result means full column rank, i.e. a unique solution for any readings.
func (s *linsys) freeColumns() []int {
	n := len(s.conds)
	rows := s.rows
	maxAbs := 1.0
	for _, row := range rows {
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	eps := 1e-9 * maxAbs
	var free []int
	top := 0
	for col := 0; col < n; col++ {
		// Partial pivoting.
		pivot, best := -1, eps
		for i := top; i < len(rows); i++ {
			if a := math.Abs(rows[i][col]); a > best {
				pivot, best = i, a
			}
		}
		if pivot < 0 {
			free = append(free, col)
			continue
		}
		rows[top], rows[pivot] = rows[pivot], rows[top]
		pr := rows[top]
		for i := top + 1; i < len(rows); i++ {
			if rows[i][col] == 0 {
				continue
			}
			f := rows[i][col] / pr[col]
			for j := col; j < n; j++ {
				rows[i][j] -= f * pr[j]
			}
		}
		top++
	}
	return free
}
