// Package check is a static verification and lint pass framework over the
// pipeline's intermediate representations. Each pass re-proves one of the
// paper's structural guarantees (reducibility, ECFG well-formedness, FCDG
// shape, counter-plan sufficiency) or lints the source view of a procedure,
// and emits structured diagnostics instead of surfacing violations as
// panics deep inside ecfg or freq.
//
// Passes are pure functions over an analyzed procedure, so the framework is
// safe to run from the parallel per-procedure analysis workers: each call
// touches only the procedure it was handed plus immutable analysis data.
package check

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/report"
)

// Pass is one named static analysis over an analyzed procedure.
type Pass struct {
	Name string
	Desc string
	Run  func(a *analysis.Proc, r *reporter)
}

// Registry returns the built-in passes in their canonical run order.
func Registry() []Pass {
	return []Pass{
		{Name: "reducible", Desc: "every back-edge target dominates its source; node splits reported", Run: checkReducible},
		{Name: "wellformed", Desc: "CFG/ECFG well-formedness: reachability, STOP, pseudo-edge shape", Run: checkWellFormed},
		{Name: "fcdg", Desc: "FCDG is a rooted DAG whose region nesting mirrors HDR_PARENT", Run: checkFCDG},
		{Name: "plan", Desc: "counter plan determines every FREQ(u,l) uniquely (rank proof)", Run: checkPlan},
		{Name: "lints", Desc: "source lints: constant branches, zero-trip DO loops, dead code", Run: checkLints},
		{Name: "deadcode", Desc: "flow lint: statements unreachable under propagated constants", Run: checkDeadCode},
		{Name: "deadstore", Desc: "flow lint: scalar stores whose value no path reads", Run: checkDeadStore},
		{Name: "defassign", Desc: "flow lint: locals read before assignment on some path", Run: checkDefAssign},
		{Name: "vmcompile", Desc: "bytecode compile coverage: constructs forcing tree-walker fallback", Run: checkVMCompile},
	}
}

// PassNames returns the registry's pass names in run order.
func PassNames() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, p := range reg {
		out[i] = p.Name
	}
	return out
}

// Options selects which passes run.
type Options struct {
	// Passes filters the registry by name; nil or empty means all.
	Passes []string
}

func (o Options) selected() ([]Pass, error) {
	reg := Registry()
	if len(o.Passes) == 0 {
		return reg, nil
	}
	byName := make(map[string]Pass, len(reg))
	for _, p := range reg {
		byName[p.Name] = p
	}
	var out []Pass
	for _, name := range o.Passes {
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("check: unknown pass %q (have %v)", name, PassNames())
		}
		out = append(out, p)
	}
	return out, nil
}

// reporter accumulates one procedure's diagnostics; pass implementations
// report through it.
type reporter struct {
	pass  string
	proc  string
	diags []report.Diagnostic
}

func (r *reporter) add(sev report.Severity, d report.Diagnostic) {
	d.Severity = sev
	d.Pass = r.pass
	d.Proc = r.proc
	r.diags = append(r.diags, d)
}

func (r *reporter) errorf(node int, format string, args ...any) {
	r.add(report.Error, report.Diagnostic{Node: node, Message: fmt.Sprintf(format, args...)})
}

func (r *reporter) warnAt(line, col int, hint, format string, args ...any) {
	r.add(report.Warning, report.Diagnostic{Line: line, Col: col, Hint: hint,
		Message: fmt.Sprintf(format, args...)})
}

// Proc runs the selected passes over one analyzed procedure and returns the
// sorted diagnostics.
func Proc(a *analysis.Proc, opts Options) ([]report.Diagnostic, error) {
	passes, err := opts.selected()
	if err != nil {
		return nil, err
	}
	var diags []report.Diagnostic
	for _, p := range passes {
		r := &reporter{pass: p.Name, proc: a.P.G.Name}
		p.Run(a, r)
		diags = append(diags, r.diags...)
	}
	report.Sort(diags)
	return diags, nil
}

// Program runs the selected passes over every procedure of an analyzed
// program, in deterministic (alphabetical) procedure order.
func Program(prog *analysis.Program, opts Options) ([]report.Diagnostic, error) {
	names := make([]string, 0, len(prog.Procs))
	for name := range prog.Procs {
		names = append(names, name)
	}
	sort.Strings(names)
	var diags []report.Diagnostic
	for _, name := range names {
		d, err := Proc(prog.Procs[name], opts)
		if err != nil {
			return nil, err
		}
		diags = append(diags, d...)
	}
	return diags, nil
}

// Collector adapts the checker to analysis.Options.CheckProc: the analysis
// worker pool calls CheckProc concurrently, one analyzed procedure at a
// time, and the collector accumulates diagnostics thread-safely. Checking
// never aborts the analysis — callers inspect Diagnostics() afterwards and
// decide what severity is fatal.
type Collector struct {
	Opts Options

	mu    sync.Mutex
	diags []report.Diagnostic
	err   error
}

// CheckProc runs the collector's passes on one procedure. It always returns
// nil so a finding does not abort the analysis.
func (c *Collector) CheckProc(a *analysis.Proc) error {
	d, err := Proc(a, c.Opts)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil && c.err == nil {
		c.err = err
	}
	c.diags = append(c.diags, d...)
	return nil
}

// Gate is the shared -check behaviour of the pipeline commands: it prints
// every collected diagnostic to w prefixed with the source path and returns
// a non-nil error when any finding has error severity.
func Gate(w io.Writer, path string, c *Collector) error {
	diags, err := c.Diagnostics()
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s:%s\n", path, d)
	}
	if n := report.Count(diags, report.Error); n > 0 {
		return fmt.Errorf("static checks failed with %d error finding(s)", n)
	}
	return nil
}

// Diagnostics returns everything collected so far, sorted.
func (c *Collector) Diagnostics() ([]report.Diagnostic, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	diags := append([]report.Diagnostic(nil), c.diags...)
	report.Sort(diags)
	return diags, nil
}
