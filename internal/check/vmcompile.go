package check

import (
	"errors"

	"repro/internal/analysis"
	"repro/internal/vm"
)

// checkVMCompile is the compile-coverage lint: it runs the bytecode
// compiler over the procedure in lint mode and reports any construct it
// bails out on. A bailout is not an error — the pipeline silently falls
// back to the tree-walker and produces identical results — but the
// fallback costs the VM's speedup, so the de-optimization should be a
// visible diagnostic instead of a perf cliff.
func checkVMCompile(a *analysis.Proc, r *reporter) {
	err := vm.CheckProc(a.P)
	if err == nil {
		return
	}
	var be *vm.BailoutError
	if errors.As(err, &be) {
		r.warnAt(be.Line, 0, "this procedure falls back to the tree-walking interpreter",
			"bytecode compiler bails on %s: %s", be.Construct, be.Reason)
		return
	}
	r.warnAt(0, 0, "this procedure falls back to the tree-walking interpreter",
		"bytecode compiler bails: %v", err)
}
