package check

import (
	"repro/internal/analysis"
	"repro/internal/cdg"
	"repro/internal/cfg"
)

// checkFCDG verifies the forward control dependence graph is what the
// frequency recurrence assumes: rooted at START, connected (every node
// reachable from the root), acyclic, and with region nesting that exactly
// mirrors the interval nesting — every node of interval h is an FCDG
// descendant of h's preheader, and nested intervals' preheaders nest the
// same way HDR_PARENT does.
func checkFCDG(a *analysis.Proc, r *reporter) {
	f := a.FCDG

	// Rooted and connected: a DFS from the root must reach every node the
	// graph mentions.
	desc := descendants(f, f.Root)
	for _, n := range f.Nodes() {
		if !desc[n] {
			r.errorf(int(n), "FCDG node %d is not reachable from the root (disconnected region)", n)
		}
	}

	// Acyclic: recompute a DFS three-coloring rather than trusting the
	// cached topological order.
	if cyc, ok := findCycle(f); ok {
		r.errorf(int(cyc), "FCDG has a cycle through node %d", cyc)
	}

	// Region nesting mirrors HDR_PARENT. The interval structure of the
	// extended graph assigns each node its innermost header; the matching
	// FCDG property is that the node is a descendant of that header's
	// preheader (the loop condition governs its frequency), and that inner
	// preheaders are descendants of outer ones.
	iv := a.Ext.Intervals
	for _, h := range iv.Headers() {
		ph, ok := a.Ext.Preheader[h]
		if !ok {
			continue // reported by the wellformed pass
		}
		region := descendants(f, ph)
		for n := range iv.Body(h) {
			if n == h || region[n] {
				continue
			}
			r.errorf(int(n), "node %d belongs to interval %d but is not an FCDG descendant of its preheader %d", n, h, ph)
		}
		if !region[h] {
			r.errorf(int(h), "loop header %d is not an FCDG descendant of its own preheader %d", h, ph)
		}
		if parent := iv.Parent(h); parent != cfg.None {
			pph, ok := a.Ext.Preheader[parent]
			if ok && !descendants(f, pph)[ph] {
				r.errorf(int(ph), "preheader %d of interval %d does not nest under preheader %d of HDR_PARENT %d", ph, h, pph, parent)
			}
		}
	}
}

// descendants returns the set of nodes reachable from start in the FCDG
// (start included).
func descendants(f *cdg.Graph, start cfg.NodeID) map[cfg.NodeID]bool {
	seen := map[cfg.NodeID]bool{start: true}
	stack := []cfg.NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range f.OutEdges(n) {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// findCycle reports a node on some cycle of the graph, if one exists.
func findCycle(f *cdg.Graph) (cfg.NodeID, bool) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[cfg.NodeID]int{}
	type frame struct {
		node  cfg.NodeID
		edges []cfg.Edge
		next  int
	}
	for _, root := range f.Nodes() {
		if color[root] != white {
			continue
		}
		stack := []frame{{node: root, edges: f.OutEdges(root)}}
		color[root] = grey
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.next >= len(fr.edges) {
				color[fr.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			e := fr.edges[fr.next]
			fr.next++
			switch color[e.To] {
			case grey:
				return e.To, true
			case white:
				color[e.To] = grey
				stack = append(stack, frame{node: e.To, edges: f.OutEdges(e.To)})
			}
		}
	}
	return cfg.None, false
}
