package check_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden files")

// loadFile parses and analyzes a source file through the full front end.
func loadFile(t *testing.T, path string) *core.Pipeline {
	t.Helper()
	text, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Load(string(text))
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	return p
}

// TestExamplesClean is the checker's own oracle: the shipped example
// programs (including the paper's Figure 1) must carry zero findings of
// any severity under every pass.
func TestExamplesClean(t *testing.T) {
	files, err := filepath.Glob("../../examples/*.f")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example sources found: %v", err)
	}
	for _, f := range files {
		p := loadFile(t, f)
		diags, err := check.Program(p.An, check.Options{})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected finding: %s", f, d)
		}
	}
}

// TestBadProgramGolden pins the checker's findings on a deliberately bad
// program — irreducible GOTO spaghetti, a zero-trip constant DO loop, and
// a constant IF condition — as the exact JSON document ptranlint -json
// emits. Regenerate with `go test ./internal/check -run Golden -update`.
func TestBadProgramGolden(t *testing.T) {
	p := loadFile(t, "testdata/bad.f")
	diags, err := check.Program(p.An, check.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := report.NewDocument("ptranlint", diags).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "bad.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("golden mismatch\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// The named findings the fixture was built to trigger.
	found := map[string]bool{}
	for _, d := range diags {
		found[d.Pass] = true
	}
	for _, pass := range []string{"reducible", "lints"} {
		if !found[pass] {
			t.Errorf("no finding from pass %q", pass)
		}
	}
}

// TestPassSelection exercises the -passes filter and its error path.
func TestPassSelection(t *testing.T) {
	p := loadFile(t, "testdata/bad.f")
	diags, err := check.Program(p.An, check.Options{Passes: []string{"lints"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("lints alone found nothing on bad.f")
	}
	for _, d := range diags {
		if d.Pass != "lints" {
			t.Errorf("pass filter leaked %q finding: %s", d.Pass, d)
		}
	}
	if _, err := check.Program(p.An, check.Options{Passes: []string{"nosuch"}}); err == nil {
		t.Error("unknown pass name must error")
	}
}

// TestCollector routes the checker through the analysis worker-pool hook.
func TestCollector(t *testing.T) {
	text, err := os.ReadFile("testdata/bad.f")
	if err != nil {
		t.Fatal(err)
	}
	c := &check.Collector{}
	if _, err := core.LoadOpts(string(text), core.LoadOptions{Workers: 4, CheckProc: c.CheckProc}); err != nil {
		t.Fatal(err)
	}
	diags, err := c.Diagnostics()
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("collector gathered no findings on bad.f")
	}
	// Same findings as the direct path.
	p := loadFile(t, "testdata/bad.f")
	direct, err := check.Program(p.An, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(diags) {
		t.Errorf("collector found %d findings, direct run %d", len(diags), len(direct))
	}
}
