package report

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// BenchSchema versions the snapshot format; bump on breaking changes.
const BenchSchema = "bench/v1"

// BenchEntry is one benchmark scenario of a sweep: a generated program size,
// a real benchmark, or the oracle corpus. Metrics whose name ends in
// "_per_sec" are throughput rates (higher is better) and are the ones a
// regression diff compares; everything else is recorded for inspection only.
type BenchEntry struct {
	Name string `json:"name"`
	// WallMs is the end-to-end wall time of the best repetition.
	WallMs float64 `json:"wall_ms"`
	// Metrics holds the scenario's measurements (nodes_per_sec,
	// counters_per_block, ...).
	Metrics Metrics `json:"metrics,omitempty"`
	// Spans is the per-phase trace of the best repetition, in the same
	// schema -trace emits, so a snapshot shows where the time went.
	Spans []Span `json:"spans,omitempty"`
}

// BenchSnapshot is one full sweep, written as BENCH_<date>.json and diffed
// against the previous snapshot to catch performance regressions.
type BenchSnapshot struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
	// Date is the sweep day (YYYY-MM-DD), also embedded in the file name.
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	MaxProcs  int    `json:"maxprocs"`
	// Metrics holds process-wide measurements (process.peak_rss_bytes, ...).
	Metrics Metrics      `json:"metrics,omitempty"`
	Entries []BenchEntry `json:"entries"`
}

// Entry returns the named entry, or nil.
func (s *BenchSnapshot) Entry(name string) *BenchEntry {
	for i := range s.Entries {
		if s.Entries[i].Name == name {
			return &s.Entries[i]
		}
	}
	return nil
}

// Save writes the snapshot as indented JSON.
func (s *BenchSnapshot) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBench reads a snapshot and validates its schema tag.
func LoadBench(path string) (*BenchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s BenchSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, s.Schema, BenchSchema)
	}
	return &s, nil
}

// BenchRegression is one metric that crossed the regression threshold
// relative to the previous snapshot: a throughput rate that fell, or a
// lower-is-better measurement that rose.
type BenchRegression struct {
	Entry  string
	Metric string
	Old    float64
	New    float64
	// LowerBetter marks a metric where growth is the regression
	// (alloc_bytes_per_seed), as opposed to the "_per_sec" rates.
	LowerBetter bool
}

// Drop is the fractional regression magnitude: throughput loss for rates
// (0.30 = 30% slower), growth for lower-is-better metrics (0.30 = 30% more).
func (r BenchRegression) Drop() float64 {
	if r.LowerBetter {
		return r.New/r.Old - 1
	}
	return 1 - r.New/r.Old
}

func (r BenchRegression) String() string {
	if r.LowerBetter {
		return fmt.Sprintf("%s %s: %.4g -> %.4g (+%.1f%%, lower is better)",
			r.Entry, r.Metric, r.Old, r.New, 100*r.Drop())
	}
	return fmt.Sprintf("%s %s: %.4g -> %.4g (-%.1f%%)", r.Entry, r.Metric, r.Old, r.New, 100*r.Drop())
}

// lowerBetterMetric reports whether a metric regresses by growing rather
// than shrinking.
func lowerBetterMetric(name string) bool { return name == "alloc_bytes_per_seed" }

// DiffBench compares every "_per_sec" rate and every lower-is-better
// metric (alloc_bytes_per_seed) present in both snapshots, and returns the
// ones that regressed by more than threshold (0.25 = fail when a rate
// drops below 75% of the previous value, or an allocation figure grows
// beyond 125%). Entries or metrics present on only one side are ignored:
// scenarios may come and go across revisions.
func DiffBench(prev, cur *BenchSnapshot, threshold float64) []BenchRegression {
	var out []BenchRegression
	for _, pe := range prev.Entries {
		ce := cur.Entry(pe.Name)
		if ce == nil {
			continue
		}
		names := make([]string, 0, len(pe.Metrics))
		for name := range pe.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			lower := lowerBetterMetric(name)
			if !strings.HasSuffix(name, "_per_sec") && !lower {
				continue
			}
			old, cv := pe.Metrics[name], ce.Metrics[name]
			if old <= 0 || cv <= 0 {
				continue
			}
			if lower {
				if cv > old*(1+threshold) {
					out = append(out, BenchRegression{Entry: pe.Name, Metric: name, Old: old, New: cv, LowerBetter: true})
				}
			} else if cv < old*(1-threshold) {
				out = append(out, BenchRegression{Entry: pe.Name, Metric: name, Old: old, New: cv})
			}
		}
	}
	return out
}
