package report

import (
	"path/filepath"
	"strings"
	"testing"
)

func benchPair() (*BenchSnapshot, *BenchSnapshot) {
	prev := &BenchSnapshot{
		Schema: BenchSchema,
		Entries: []BenchEntry{
			{Name: "small", Metrics: map[string]float64{"nodes_per_sec": 1000, "nodes": 131}},
			{Name: "large", Metrics: map[string]float64{"nodes_per_sec": 400}},
			{Name: "gone", Metrics: map[string]float64{"nodes_per_sec": 99}},
		},
	}
	cur := &BenchSnapshot{
		Schema: BenchSchema,
		Entries: []BenchEntry{
			{Name: "small", Metrics: map[string]float64{"nodes_per_sec": 900, "nodes": 50}},
			{Name: "large", Metrics: map[string]float64{"nodes_per_sec": 200}},
			{Name: "added", Metrics: map[string]float64{"nodes_per_sec": 1}},
		},
	}
	return prev, cur
}

func TestDiffBench(t *testing.T) {
	prev, cur := benchPair()
	regs := DiffBench(prev, cur, 0.25)
	// small dropped 10% (within threshold); large dropped 50% (regression);
	// "nodes" is not a rate; "gone"/"added" are one-sided and ignored.
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want 1", len(regs), regs)
	}
	r := regs[0]
	if r.Entry != "large" || r.Metric != "nodes_per_sec" || r.Old != 400 || r.New != 200 {
		t.Errorf("regression = %+v", r)
	}
	if got := r.Drop(); got != 0.5 {
		t.Errorf("Drop() = %v, want 0.5", got)
	}
	if s := r.String(); !strings.Contains(s, "large") || !strings.Contains(s, "-50.0%") {
		t.Errorf("String() = %q", s)
	}
	if regs := DiffBench(prev, cur, 0.6); len(regs) != 0 {
		t.Errorf("threshold 0.6 must tolerate a 50%% drop, got %v", regs)
	}
}

func TestBenchSnapshotRoundTrip(t *testing.T) {
	prev, _ := benchPair()
	prev.Date = "2026-08-06"
	prev.Entries[0].Spans = []Span{{Name: "parse", WallMs: 1.5, Count: 1}}
	path := filepath.Join(t.TempDir(), "BENCH_2026-08-06.json")
	if err := prev.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != "2026-08-06" || len(got.Entries) != 3 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if e := got.Entry("small"); e == nil || len(e.Spans) != 1 || e.Spans[0].Name != "parse" {
		t.Errorf("spans lost: %+v", got.Entry("small"))
	}
	if got.Entry("nope") != nil {
		t.Error("Entry(nope) must be nil")
	}
}

func TestLoadBenchRejectsWrongSchema(t *testing.T) {
	s := &BenchSnapshot{Schema: "bench/v0"}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBench(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("LoadBench on wrong schema: err = %v", err)
	}
}
