package report

import (
	"path/filepath"
	"strings"
	"testing"
)

func benchPair() (*BenchSnapshot, *BenchSnapshot) {
	prev := &BenchSnapshot{
		Schema: BenchSchema,
		Entries: []BenchEntry{
			{Name: "small", Metrics: map[string]float64{"nodes_per_sec": 1000, "nodes": 131}},
			{Name: "large", Metrics: map[string]float64{"nodes_per_sec": 400}},
			{Name: "gone", Metrics: map[string]float64{"nodes_per_sec": 99}},
		},
	}
	cur := &BenchSnapshot{
		Schema: BenchSchema,
		Entries: []BenchEntry{
			{Name: "small", Metrics: map[string]float64{"nodes_per_sec": 900, "nodes": 50}},
			{Name: "large", Metrics: map[string]float64{"nodes_per_sec": 200}},
			{Name: "added", Metrics: map[string]float64{"nodes_per_sec": 1}},
		},
	}
	return prev, cur
}

func TestDiffBench(t *testing.T) {
	prev, cur := benchPair()
	regs := DiffBench(prev, cur, 0.25)
	// small dropped 10% (within threshold); large dropped 50% (regression);
	// "nodes" is not a rate; "gone"/"added" are one-sided and ignored.
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want 1", len(regs), regs)
	}
	r := regs[0]
	if r.Entry != "large" || r.Metric != "nodes_per_sec" || r.Old != 400 || r.New != 200 {
		t.Errorf("regression = %+v", r)
	}
	if got := r.Drop(); got != 0.5 {
		t.Errorf("Drop() = %v, want 0.5", got)
	}
	if s := r.String(); !strings.Contains(s, "large") || !strings.Contains(s, "-50.0%") {
		t.Errorf("String() = %q", s)
	}
	if regs := DiffBench(prev, cur, 0.6); len(regs) != 0 {
		t.Errorf("threshold 0.6 must tolerate a 50%% drop, got %v", regs)
	}
}

func TestDiffBenchLowerBetter(t *testing.T) {
	prev := &BenchSnapshot{Schema: BenchSchema, Entries: []BenchEntry{
		{Name: "small-vm", Metrics: map[string]float64{"alloc_bytes_per_seed": 1000, "profile_batch_nodes_per_sec": 5000}},
		{Name: "ok", Metrics: map[string]float64{"alloc_bytes_per_seed": 1000}},
	}}
	cur := &BenchSnapshot{Schema: BenchSchema, Entries: []BenchEntry{
		// alloc grew 60% (regression) and the batch rate halved (regression).
		{Name: "small-vm", Metrics: map[string]float64{"alloc_bytes_per_seed": 1600, "profile_batch_nodes_per_sec": 2500}},
		// 20% growth stays within a 0.25 threshold.
		{Name: "ok", Metrics: map[string]float64{"alloc_bytes_per_seed": 1200}},
	}}
	regs := DiffBench(prev, cur, 0.25)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2", len(regs), regs)
	}
	var alloc, rate *BenchRegression
	for i := range regs {
		switch regs[i].Metric {
		case "alloc_bytes_per_seed":
			alloc = &regs[i]
		case "profile_batch_nodes_per_sec":
			rate = &regs[i]
		}
	}
	if alloc == nil || !alloc.LowerBetter || alloc.Entry != "small-vm" {
		t.Fatalf("alloc regression = %+v", alloc)
	}
	if got := alloc.Drop(); got < 0.59 || got > 0.61 {
		t.Errorf("alloc Drop() = %v, want ~0.6", got)
	}
	if s := alloc.String(); !strings.Contains(s, "lower is better") || !strings.Contains(s, "+60.0%") {
		t.Errorf("alloc String() = %q", s)
	}
	if rate == nil || rate.LowerBetter {
		t.Fatalf("batch rate regression = %+v", rate)
	}
}

func TestBenchSnapshotRoundTrip(t *testing.T) {
	prev, _ := benchPair()
	prev.Date = "2026-08-06"
	prev.Entries[0].Spans = []Span{{Name: "parse", WallMs: 1.5, Count: 1}}
	path := filepath.Join(t.TempDir(), "BENCH_2026-08-06.json")
	if err := prev.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != "2026-08-06" || len(got.Entries) != 3 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if e := got.Entry("small"); e == nil || len(e.Spans) != 1 || e.Spans[0].Name != "parse" {
		t.Errorf("spans lost: %+v", got.Entry("small"))
	}
	if got.Entry("nope") != nil {
		t.Error("Entry(nope) must be nil")
	}
}

func TestLoadBenchRejectsWrongSchema(t *testing.T) {
	s := &BenchSnapshot{Schema: "bench/v0"}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBench(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("LoadBench on wrong schema: err = %v", err)
	}
}
