package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// fullDocument populates every field of the schema, with deliberately
// hostile metric values: NaN and ±Inf used to abort the whole encode
// (encoding/json rejects non-finite floats), silently losing the entire
// document to one bad variance gauge.
func fullDocument() *Document {
	doc := NewDocument("ptrand", []Diagnostic{
		{Severity: Error, Pass: "parse", Line: 3, Col: 7, Message: "unexpected token"},
		{Severity: Warning, Pass: "engine", Proc: "MAIN", Node: 4,
			Message: "bytecode compile bailed; runs fell back to the tree-walker",
			Hint:    "results identical, throughput degraded"},
	})
	doc.HotPaths = []HotPath{
		{Proc: "MAIN", ID: 3, Count: 42, Nodes: []int{1, 4, 7}, FromEntry: true, ToExit: true},
	}
	doc.Spans = []Span{{
		Name: "profile", StartMs: 1.5, WallMs: 10, ElapsedMs: 5, Count: 2, AllocBytes: 4096,
		Metrics: Metrics{"seeds": 2, "utilization": 0.75},
	}}
	doc.Metrics = Metrics{
		"pipeline.procs":       3,
		"service.latency_p99":  math.NaN(), // no samples yet
		"estimate.var_ceiling": math.Inf(1),
		"estimate.var_floor":   math.Inf(-1),
	}
	return doc
}

const goldenDocument = `{
  "tool": "ptrand",
  "diagnostics": [
    {
      "severity": "error",
      "pass": "parse",
      "line": 3,
      "col": 7,
      "message": "unexpected token"
    },
    {
      "severity": "warning",
      "pass": "engine",
      "proc": "MAIN",
      "node": 4,
      "message": "bytecode compile bailed; runs fell back to the tree-walker",
      "hint": "results identical, throughput degraded"
    }
  ],
  "errors": 1,
  "warnings": 1,
  "hot_paths": [
    {
      "proc": "MAIN",
      "id": 3,
      "count": 42,
      "nodes": [
        1,
        4,
        7
      ],
      "from_entry": true,
      "to_exit": true
    }
  ],
  "spans": [
    {
      "name": "profile",
      "start_ms": 1.5,
      "wall_ms": 10,
      "elapsed_ms": 5,
      "count": 2,
      "alloc_bytes": 4096,
      "metrics": {
        "seeds": 2,
        "utilization": 0.75
      }
    }
  ],
  "metrics": {
    "estimate.var_ceiling": "+Inf",
    "estimate.var_floor": "-Inf",
    "pipeline.procs": 3,
    "service.latency_p99": "NaN"
  }
}
`

// TestDocumentGoldenRoundTrip pins the document schema byte-for-byte and
// asserts decode(encode(doc)) loses nothing — non-finite metric values
// included, which the plain float64 encoding used to reject wholesale.
func TestDocumentGoldenRoundTrip(t *testing.T) {
	doc := fullDocument()
	var buf strings.Builder
	if err := doc.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if got := buf.String(); got != goldenDocument {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenDocument)
	}
	var back Document
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Tool != doc.Tool || back.Errors != 1 || back.Warnings != 1 {
		t.Errorf("header fields lost: %+v", back)
	}
	if len(back.Diagnostics) != 2 || back.Diagnostics[1] != doc.Diagnostics[1] {
		t.Errorf("diagnostics lost: %+v", back.Diagnostics)
	}
	if len(back.HotPaths) != 1 || back.HotPaths[0].Proc != "MAIN" ||
		len(back.HotPaths[0].Nodes) != 3 || !back.HotPaths[0].ToExit {
		t.Errorf("hot paths lost: %+v", back.HotPaths)
	}
	if len(back.Spans) != 1 || back.Spans[0].AllocBytes != 4096 ||
		back.Spans[0].Metrics["utilization"] != 0.75 {
		t.Errorf("spans lost: %+v", back.Spans)
	}
	if !math.IsNaN(back.Metrics["service.latency_p99"]) {
		t.Errorf("NaN metric lost: %v", back.Metrics["service.latency_p99"])
	}
	if !math.IsInf(back.Metrics["estimate.var_ceiling"], 1) || !math.IsInf(back.Metrics["estimate.var_floor"], -1) {
		t.Errorf("Inf metrics lost: %+v", back.Metrics)
	}
	if back.Metrics["pipeline.procs"] != 3 {
		t.Errorf("finite metric lost: %v", back.Metrics["pipeline.procs"])
	}
}

// TestMetricsBackCompat parses the pre-Metrics plain-number encoding —
// committed BENCH_*.json snapshots must keep loading.
func TestMetricsBackCompat(t *testing.T) {
	var m Metrics
	if err := json.Unmarshal([]byte(`{"nodes_per_sec": 1.5e6, "lanes": 8}`), &m); err != nil {
		t.Fatal(err)
	}
	if m["nodes_per_sec"] != 1.5e6 || m["lanes"] != 8 {
		t.Errorf("plain numbers mis-parsed: %+v", m)
	}
	if err := json.Unmarshal([]byte(`{"x": true}`), &m); err == nil {
		t.Error("want error for non-number non-string metric value")
	}
}

// TestMetricsNilRoundTrip keeps the omitempty contract: a nil map is
// omitted, an explicit null decodes back to nil.
func TestMetricsNilRoundTrip(t *testing.T) {
	doc := NewDocument("t", nil)
	var buf strings.Builder
	if err := doc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "metrics") {
		t.Errorf("nil metrics not omitted:\n%s", buf.String())
	}
	var m Metrics
	if err := json.Unmarshal([]byte("null"), &m); err != nil || m != nil {
		t.Errorf("null: m=%v err=%v", m, err)
	}
}
