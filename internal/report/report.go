// Package report defines the diagnostic schema shared by the command-line
// tools: ptranlint emits it natively and oracle converts invariant failures
// into it, so both speak one JSON dialect and neither duplicates an encoder.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Severity ranks a diagnostic. Error-severity findings fail the run.
type Severity string

// Severity levels.
const (
	Info    Severity = "info"
	Warning Severity = "warning"
	Error   Severity = "error"
)

// Diagnostic is one finding with enough position information to be
// clickable: tool is the producer ("ptranlint", "oracle"), pass the named
// analysis that fired, proc the procedure (program unit) it concerns, and
// line/col the source position when one is known (node is the CFG/ECFG node
// otherwise).
type Diagnostic struct {
	Severity Severity `json:"severity"`
	Pass     string   `json:"pass"`
	Proc     string   `json:"proc,omitempty"`
	Node     int      `json:"node,omitempty"`
	Line     int      `json:"line,omitempty"`
	Col      int      `json:"col,omitempty"`
	Message  string   `json:"message"`
	Hint     string   `json:"hint,omitempty"`
}

// String renders the diagnostic in the classic compiler one-liner format:
// file-less "line:col: severity: [pass] message".
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&b, "%d:", d.Line)
		if d.Col > 0 {
			fmt.Fprintf(&b, "%d:", d.Col)
		}
		b.WriteByte(' ')
	}
	fmt.Fprintf(&b, "%s: [%s]", d.Severity, d.Pass)
	if d.Proc != "" {
		fmt.Fprintf(&b, " %s:", d.Proc)
	}
	if d.Node > 0 {
		fmt.Fprintf(&b, " node %d:", d.Node)
	}
	fmt.Fprintf(&b, " %s", d.Message)
	if d.Hint != "" {
		fmt.Fprintf(&b, " (%s)", d.Hint)
	}
	return b.String()
}

// Document is the top-level JSON shape both tools emit: the producing tool,
// its findings, and the severity tally.
type Document struct {
	Tool        string       `json:"tool"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Errors      int          `json:"errors"`
	Warnings    int          `json:"warnings"`
}

// NewDocument bundles diagnostics under a tool name, counting severities.
func NewDocument(tool string, diags []Diagnostic) *Document {
	doc := &Document{Tool: tool, Diagnostics: diags}
	if doc.Diagnostics == nil {
		doc.Diagnostics = []Diagnostic{} // encode as [], not null
	}
	for _, d := range diags {
		switch d.Severity {
		case Error:
			doc.Errors++
		case Warning:
			doc.Warnings++
		}
	}
	return doc
}

// Encode writes the document as indented JSON.
func (doc *Document) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Count returns how many diagnostics have the given severity.
func Count(diags []Diagnostic, sev Severity) int {
	n := 0
	for _, d := range diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// Sort orders diagnostics for stable output: by procedure, then source
// position, then node, then pass, then message.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}
