// Package report defines the diagnostic schema shared by the command-line
// tools: ptranlint emits it natively and oracle converts invariant failures
// into it, so both speak one JSON dialect and neither duplicates an encoder.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Severity ranks a diagnostic. Error-severity findings fail the run.
type Severity string

// Severity levels.
const (
	Info    Severity = "info"
	Warning Severity = "warning"
	Error   Severity = "error"
)

// Diagnostic is one finding with enough position information to be
// clickable: tool is the producer ("ptranlint", "oracle"), pass the named
// analysis that fired, proc the procedure (program unit) it concerns, and
// line/col the source position when one is known (node is the CFG/ECFG node
// otherwise).
type Diagnostic struct {
	Severity Severity `json:"severity"`
	Pass     string   `json:"pass"`
	Proc     string   `json:"proc,omitempty"`
	Node     int      `json:"node,omitempty"`
	Line     int      `json:"line,omitempty"`
	Col      int      `json:"col,omitempty"`
	Message  string   `json:"message"`
	Hint     string   `json:"hint,omitempty"`
}

// String renders the diagnostic in the classic compiler one-liner format:
// file-less "line:col: severity: [pass] message".
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&b, "%d:", d.Line)
		if d.Col > 0 {
			fmt.Fprintf(&b, "%d:", d.Col)
		}
		b.WriteByte(' ')
	}
	fmt.Fprintf(&b, "%s: [%s]", d.Severity, d.Pass)
	if d.Proc != "" {
		fmt.Fprintf(&b, " %s:", d.Proc)
	}
	if d.Node > 0 {
		fmt.Fprintf(&b, " node %d:", d.Node)
	}
	fmt.Fprintf(&b, " %s", d.Message)
	if d.Hint != "" {
		fmt.Fprintf(&b, " (%s)", d.Hint)
	}
	return b.String()
}

// Metrics is a named-measurement map that survives JSON: encoding/json
// rejects NaN and ±Inf outright, so a single NaN variance gauge would
// abort an entire document encode. Metrics marshals those values as the
// strings "NaN", "+Inf" and "-Inf" (keys sorted, so output is diffable)
// and unmarshals both the string forms and plain numbers, round-tripping
// every float64 without loss.
type Metrics map[string]float64

// MarshalJSON renders the map with sorted keys, spelling non-finite
// values as quoted strings.
func (m Metrics) MarshalJSON() ([]byte, error) {
	if m == nil {
		return []byte("null"), nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		b.Write(kb)
		b.WriteByte(':')
		v := m[k]
		switch {
		case math.IsNaN(v):
			b.WriteString(`"NaN"`)
		case math.IsInf(v, 1):
			b.WriteString(`"+Inf"`)
		case math.IsInf(v, -1):
			b.WriteString(`"-Inf"`)
		default:
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// UnmarshalJSON accepts numbers and the non-finite string spellings.
func (m *Metrics) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*m = nil
		return nil
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(Metrics, len(raw))
	for k, v := range raw {
		var f float64
		if err := json.Unmarshal(v, &f); err == nil {
			out[k] = f
			continue
		}
		var s string
		if err := json.Unmarshal(v, &s); err != nil {
			return fmt.Errorf("report: metric %q: %s is neither number nor string", k, v)
		}
		switch s {
		case "NaN":
			out[k] = math.NaN()
		case "+Inf", "Inf":
			out[k] = math.Inf(1)
		case "-Inf":
			out[k] = math.Inf(-1)
		default:
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("report: metric %q: unrecognized value %q", k, s)
			}
			out[k] = f
		}
	}
	*m = out
	return nil
}

// HotPath is one row of a hot-path report: a procedure's Ball–Larus
// acyclic path, its completion count, and the decoded node sequence.
// FromEntry and ToExit distinguish the dummy entry/exit paths that a
// split back edge introduces from full entry-to-exit paths.
type HotPath struct {
	Proc      string `json:"proc"`
	ID        int64  `json:"id"`
	Count     int64  `json:"count"`
	Nodes     []int  `json:"nodes"`
	FromEntry bool   `json:"from_entry"`
	ToExit    bool   `json:"to_exit"`
}

// String renders the hot path as a one-liner: "PROC: path 3 ×42 [entry 1→4→7 exit]".
func (h HotPath) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: path %d ×%d [", h.Proc, h.ID, h.Count)
	if h.FromEntry {
		b.WriteString("entry ")
	}
	for i, n := range h.Nodes {
		if i > 0 {
			b.WriteString("→")
		}
		fmt.Fprintf(&b, "%d", n)
	}
	if h.ToExit {
		b.WriteString(" exit")
	}
	b.WriteString("]")
	return b.String()
}

// Span is one aggregated pipeline phase in a trace: all observations of the
// same phase name merge into a single row. Wall is the summed busy time of
// every observation; Elapsed is last-end minus first-start, so on a worker
// pool Wall/Elapsed exceeds 1 exactly when the phase ran concurrently.
type Span struct {
	Name string `json:"name"`
	// StartMs is the first observation's offset from the trace start.
	StartMs float64 `json:"start_ms"`
	// WallMs is total busy time across observations.
	WallMs float64 `json:"wall_ms"`
	// ElapsedMs is the end-to-end extent of the phase.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Count is the number of merged observations (e.g. procedures analyzed).
	Count int64 `json:"count"`
	// AllocBytes is the heap allocation delta attributed to the phase
	// (approximate under concurrency: the counter is process-wide).
	AllocBytes int64 `json:"alloc_bytes"`
	// Metrics carries phase-specific measurements (node counts, counters
	// placed, utilization ratios, ...).
	Metrics Metrics `json:"metrics,omitempty"`
}

// Document is the top-level JSON shape the tools emit: the producing tool,
// its findings, the severity tally, and — when tracing is on — the phase
// spans and process metrics.
type Document struct {
	Tool        string       `json:"tool"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Errors      int          `json:"errors"`
	Warnings    int          `json:"warnings"`
	// HotPaths is the optional hot-path report (ptranlint -hot-paths).
	HotPaths []HotPath `json:"hot_paths,omitempty"`
	// Dataflow is the optional per-procedure dataflow fact report
	// (ptranlint -dataflow); the element type lives with the tool.
	Dataflow any `json:"dataflow,omitempty"`
	// Spans are the pipeline phase timings of a traced run (obs.Trace).
	Spans []Span `json:"spans,omitempty"`
	// Metrics is a point-in-time snapshot of the process metrics registry.
	Metrics Metrics `json:"metrics,omitempty"`
}

// NewDocument bundles diagnostics under a tool name, counting severities.
func NewDocument(tool string, diags []Diagnostic) *Document {
	doc := &Document{Tool: tool, Diagnostics: diags}
	if doc.Diagnostics == nil {
		doc.Diagnostics = []Diagnostic{} // encode as [], not null
	}
	for _, d := range diags {
		switch d.Severity {
		case Error:
			doc.Errors++
		case Warning:
			doc.Warnings++
		}
	}
	return doc
}

// Encode writes the document as indented JSON.
func (doc *Document) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Count returns how many diagnostics have the given severity.
func Count(diags []Diagnostic, sev Severity) int {
	n := 0
	for _, d := range diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// Sort orders diagnostics for stable output: by procedure, then source
// position, then node, then pass, then message.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}
