// Package staticfreq implements the compile-time frequency analysis of
// Section 3: "These frequency values may be determined by program
// analysis, or may be obtained from an execution profile ... We believe
// that program analysis is feasible for only a few restricted cases (e.g.
// a Fortran DO loop with constant bounds and no conditional loop exits, an
// IF condition that can be computed at compile-time, etc.), and should be
// complemented by execution profile information wherever compile-time
// analysis is unsuccessful."
//
// Exactly those restricted cases are resolved here:
//
//   - exit-free counted DO loops whose bounds fold to constants: the loop
//     condition's FREQ is trip+1 header executions per entry, and the
//     test's T/F branch probabilities are trip/(trip+1) and 1/(trip+1);
//   - IF conditions (block or logical) that fold to .TRUE. or .FALSE.;
//   - arithmetic IFs and computed GOTOs over constant expressions;
//   - conditions the dataflow framework (internal/dataflow) resolves
//     beyond syntactic folding: branches decided by propagated constants,
//     edges proven infeasible, and DO loops whose bounds become constant
//     only through the flow of proven-constant scalars.
//
// The result is a partial FREQ assignment over the procedure's control
// conditions; freq.ComputeOpts accepts it alongside profile totals, and
// the profiler can drop counters for statically known conditions.
package staticfreq

import (
	"repro/internal/analysis"
	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/ecfg"
	"repro/internal/lang"
	"repro/internal/lower"
)

// Analyze returns the compile-time-known FREQ values of a's control
// conditions. Conditions absent from the map need profile data.
func Analyze(a *analysis.Proc) map[cdg.Condition]float64 {
	out := make(map[cdg.Condition]float64)
	known := map[cdg.Condition]bool{}
	for _, c := range a.FCDG.Conditions() {
		known[c] = true
		if c.Label.IsPseudo() {
			out[c] = 0 // pseudo edges are never taken, statically
		}
	}
	set := func(c cdg.Condition, v float64) {
		if known[c] {
			out[c] = v
		}
	}

	for _, n := range a.P.G.Nodes() {
		switch op := n.Payload.(type) {
		case lower.OpDoTest:
			trip, ok := constTrip(a, n.ID, op)
			if !ok {
				continue
			}
			// Header executes trip+1 times per entry; the T branch is
			// taken trip of those, F once.
			f := float64(trip)
			set(cdg.Condition{Node: n.ID, Label: cfg.True}, f/(f+1))
			set(cdg.Condition{Node: n.ID, Label: cfg.False}, 1/(f+1))
			if ph, ok := a.Ext.Preheader[n.ID]; ok {
				set(cdg.Condition{Node: ph, Label: ecfg.LoopBodyLabel}, f+1)
			}
		case lower.OpBranch:
			v, ok := lang.FoldLogical(a.P.Unit, op.Cond)
			if !ok {
				continue
			}
			t, f := 0.0, 1.0
			if v {
				t, f = 1.0, 0.0
			}
			set(cdg.Condition{Node: n.ID, Label: cfg.True}, t)
			set(cdg.Condition{Node: n.ID, Label: cfg.False}, f)
		case lower.OpArithIf:
			v, ok := lang.FoldInt(a.P.Unit, op.E)
			if !ok {
				continue
			}
			for lbl, hit := range map[cfg.Label]bool{
				lower.LabelNeg:  v < 0,
				lower.LabelZero: v == 0,
				lower.LabelPos:  v > 0,
			} {
				p := 0.0
				if hit {
					p = 1.0
				}
				set(cdg.Condition{Node: n.ID, Label: lbl}, p)
			}
		case lower.OpComputedGoto:
			v, ok := lang.FoldInt(a.P.Unit, op.E)
			if !ok {
				continue
			}
			for i := 1; i <= op.N; i++ {
				p := 0.0
				if int64(i) == v {
					p = 1.0
				}
				set(cdg.Condition{Node: n.ID, Label: lower.GotoCase(i)}, p)
			}
			p := 0.0
			if v < 1 || v > int64(op.N) {
				p = 1.0
			}
			set(cdg.Condition{Node: n.ID, Label: lower.LabelDefault}, p)
		}
	}

	// Dataflow facts sharpen the syntactic cases: an infeasible edge's
	// condition has frequency 0, and a branch with a single feasible label
	// takes it on every execution.
	if a.Flow != nil {
		for _, e := range a.Flow.Infeasible {
			set(cdg.Condition{Node: e.From, Label: e.Label}, 0)
		}
		for n, lbl := range a.Flow.ConstBranch {
			set(cdg.Condition{Node: n, Label: lbl}, 1)
		}
	}
	return out
}

// Exact returns the subset of static frequencies that hold exactly on
// every run, including runs cut short by STOP: conditions pinned to 0 by
// proven edge infeasibility and to 1 by a branch with a single feasible
// label. A branch node's execution and its edge taking are recorded
// atomically by the interpreter, so FREQ(c) = 0 or 1 times exec(node) can
// never be off even for truncated runs — the counter planner may therefore
// drop counters for these conditions unconditionally. Trip-derived
// fractional frequencies are deliberately excluded (they are exact only
// for runs that complete).
func Exact(a *analysis.Proc) map[cdg.Condition]float64 {
	out := make(map[cdg.Condition]float64)
	if a.Flow == nil {
		return out
	}
	known := map[cdg.Condition]bool{}
	for _, c := range a.FCDG.Conditions() {
		known[c] = true
	}
	for _, e := range a.Flow.Infeasible {
		if c := (cdg.Condition{Node: e.From, Label: e.Label}); known[c] {
			out[c] = 0
		}
	}
	for n, lbl := range a.Flow.ConstBranch {
		if c := (cdg.Condition{Node: n, Label: lbl}); known[c] {
			out[c] = 1
		}
	}
	return out
}

// ConstTripTests returns every DO-test node of a that is proven to run a
// compile-time-constant trip count with no conditional loop exits, mapped
// to that trip count. These are exactly the loops whose test branch is
// deterministic: per loop entry the test takes its T label trip times and
// its F label once, with zero variance. The estimator (core) uses this set
// to price such tests as deterministic selections rather than Bernoulli
// branches, so fully constant loops carry VAR = 0, matching Section 5's
// preheader case with a known trip count.
func ConstTripTests(a *analysis.Proc) map[cfg.NodeID]int64 {
	out := make(map[cfg.NodeID]int64)
	for _, n := range a.P.G.Nodes() {
		op, ok := n.Payload.(lower.OpDoTest)
		if !ok {
			continue
		}
		if trip, ok := constTrip(a, n.ID, op); ok {
			out[n.ID] = trip
		}
	}
	return out
}

// constTrip reports whether the DO test at node id belongs to an exit-free
// loop whose trip count is known at compile time — by syntactic constant
// folding of the bounds, or failing that by the dataflow framework's
// flow-proven constant trips — and the trip count if so.
func constTrip(a *analysis.Proc, id cfg.NodeID, op lower.OpDoTest) (int64, bool) {
	if !a.Intervals.IsHeader(id) || !exitFree(a, id) {
		return 0, false
	}
	l := op.L
	lo, okLo := lang.FoldInt(a.P.Unit, l.Lo)
	hi, okHi := lang.FoldInt(a.P.Unit, l.Hi)
	step := int64(1)
	okStep := true
	if l.Step != nil {
		step, okStep = lang.FoldInt(a.P.Unit, l.Step)
	}
	if okLo && okHi && okStep && step != 0 {
		trip := (hi - lo + step) / step
		if trip < 0 {
			trip = 0
		}
		return trip, true
	}
	if a.Flow != nil {
		if trip, ok := a.Flow.ConstTrips[id]; ok {
			return trip, true
		}
	}
	return 0, false
}

// exitFree reports whether every postexit of the interval headed by id is
// fed only by the test itself ("no conditional loop exits").
func exitFree(a *analysis.Proc, id cfg.NodeID) bool {
	for _, pe := range a.Ext.Postexits {
		if a.Ext.ExitedInterval[pe] != id {
			continue
		}
		for _, e := range a.Ext.G.InEdges(pe) {
			if !e.Pseudo() && e.From != id {
				return false
			}
		}
	}
	return true
}

// Program analyzes every procedure of an analyzed program.
func Program(p *analysis.Program) map[string]map[cdg.Condition]float64 {
	out := make(map[string]map[cdg.Condition]float64, len(p.Procs))
	for name, a := range p.Procs {
		out[name] = Analyze(a)
	}
	return out
}
