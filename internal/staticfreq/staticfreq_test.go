package staticfreq_test

import (
	"math"
	"testing"

	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/profiler"
	"repro/internal/staticfreq"
)

// fullyStatic has only compile-time-resolvable control flow: constant-trip
// DO loops and a PARAMETER-driven IF.
const fullyStatic = `      PROGRAM STATP
      INTEGER I, J, S, N
      PARAMETER (N = 10)
      S = 0
      DO 10 I = 1, N
         DO 20 J = 1, 4
            S = S + J
   20    CONTINUE
   10 CONTINUE
      IF (N .GT. 5) THEN
         S = S * 2
      ELSE
         S = 0
      ENDIF
      END
`

func TestFullyStaticProgramNeedsNoProfile(t *testing.T) {
	p, err := core.Load(fullyStatic)
	if err != nil {
		t.Fatal(err)
	}
	static := staticfreq.Program(p.An)
	a := p.An.Procs["STATP"]

	// Every non-pseudo condition except (START,U) must be statically
	// known.
	startCond := cdg.Condition{Node: a.Ext.Start, Label: cfg.Uncond}
	for _, c := range a.FCDG.Conditions() {
		if c == startCond {
			continue
		}
		if _, ok := static["STATP"][c]; !ok {
			t.Errorf("condition %v not statically resolved", c)
		}
	}

	// Estimate with a profile that records only one invocation and no
	// counter data at all: the static frequencies carry everything.
	profile := map[string]freq.Totals{"STATP": {startCond: 1}}
	model := cost.Unit
	est, err := core.EstimateProgram(p.An, profile, p.CostTables(model),
		core.Options{StaticFreq: static})
	if err != nil {
		t.Fatal(err)
	}
	measured, err := p.MeasuredCost(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Main.Time-measured) > 1e-9*measured {
		t.Errorf("static-only TIME = %g, measured = %g", est.Main.Time, measured)
	}
}

func TestStaticAgreesWithProfile(t *testing.T) {
	p, err := core.Load(fullyStatic)
	if err != nil {
		t.Fatal(err)
	}
	static := staticfreq.Program(p.An)
	a := p.An.Procs["STATP"]
	run, err := interp.Run(p.Res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	totals := profiler.ExactTotals(a, run)
	tab, err := freq.Compute(a.FCDG, totals)
	if err != nil {
		t.Fatal(err)
	}
	for c, sv := range static["STATP"] {
		if pv := tab.Freq.At(c); math.Abs(pv-sv) > 1e-12 {
			t.Errorf("condition %v: static FREQ %g != profiled FREQ %g", c, sv, pv)
		}
	}
}

func TestStaticShrinksCounterPlan(t *testing.T) {
	p, err := core.Load(fullyStatic)
	if err != nil {
		t.Fatal(err)
	}
	a := p.An.Procs["STATP"]
	static := staticfreq.Analyze(a)
	plain, err := profiler.PlanSmart(a)
	if err != nil {
		t.Fatal(err)
	}
	withStatic, err := profiler.PlanStatic(a, static)
	if err != nil {
		t.Fatal(err)
	}
	if withStatic.NumCounters() > plain.NumCounters() {
		t.Errorf("static plan has %d counters, plain %d", withStatic.NumCounters(), plain.NumCounters())
	}
	// Recovery must still be lossless.
	run, err := interp.Run(p.Res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := withStatic.Recover(withStatic.SimulateReadings(run))
	if err != nil {
		t.Fatal(err)
	}
	for c, w := range profiler.ExactTotals(a, run) {
		if math.Abs(got[c]-w) > 1e-9 {
			t.Errorf("TOTAL%v = %g, want %g", c, got[c], w)
		}
	}
	t.Logf("counters: plain %d, with static analysis %d", plain.NumCounters(), withStatic.NumCounters())
}

func TestDynamicConditionsNotResolved(t *testing.T) {
	src := `      PROGRAM DYN
      INTEGER I, S
      REAL X
      S = 0
      DO 10 I = 1, 5
         X = RAND()
         IF (X .LT. 0.5) S = S + 1
         IF (S .GT. 100) GOTO 20
   10 CONTINUE
   20 CONTINUE
      END
`
	p, err := core.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	a := p.An.Procs["DYN"]
	static := staticfreq.Analyze(a)
	for c, v := range static {
		if c.Label.IsPseudo() {
			continue
		}
		n := a.Ext.G.Node(c.Node)
		// The RAND IF and the exit IF are dynamic; only conditions of the
		// DO loop would be static, but that loop has an exit, so nothing
		// but pseudo conditions may appear.
		t.Errorf("unexpected static condition %v=%g on %s", c, v, n.Name)
	}
}

func TestArithIfAndComputedGotoStatic(t *testing.T) {
	src := `      PROGRAM ACG
      INTEGER K, S, N
      PARAMETER (N = 2)
      S = 0
      IF (N - 2) 1, 2, 3
    1 S = 1
      GOTO 5
    2 S = 2
      GOTO 5
    3 S = 3
    5 CONTINUE
      GOTO (7, 8), N
      S = -1
    7 S = S + 10
    8 CONTINUE
      END
`
	p, err := core.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	a := p.An.Procs["ACG"]
	static := staticfreq.Analyze(a)
	// With N=2: the arithmetic IF takes EQ with probability 1, LT/GT are
	// dead; the computed GOTO takes case 2 — whose target is the join and
	// therefore controls nothing — so what is statically known is that G1
	// and the fall-through D are dead.
	want := map[cfg.Label]float64{"EQ": 1, "LT": 0, "GT": 0, "G1": 0, "D": 0}
	seen := map[cfg.Label]bool{}
	for c, v := range static {
		w, ok := want[c.Label]
		if !ok {
			continue
		}
		seen[c.Label] = true
		if v != w {
			t.Errorf("static FREQ%v = %g, want %g", c, v, w)
		}
	}
	for l := range want {
		if !seen[l] {
			t.Errorf("no static value for any %s condition: %v", l, static)
		}
	}
}
