package ck74

import (
	"math"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/livermore"
	"repro/internal/paperex"
	"repro/internal/profiler"
	"repro/internal/progen"
)

// agree verifies that the flow-balance frequencies match the FCDG
// recurrences' NODE_FREQ and the actual node counts for one program.
func agree(t *testing.T, src string, seed uint64) {
	t.Helper()
	p, err := core.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	run, err := interp.Run(p.Res, interp.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range p.An.Procs {
		acts := float64(run.ByProc[name].Activations)
		if acts == 0 {
			continue
		}
		probs := FromRun(a.P, run)
		flow, err := Frequencies(a.P, probs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		totals := profiler.ExactTotals(a, run)
		tab, err := freq.Compute(a.FCDG, totals)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, n := range a.P.G.Nodes() {
			want := float64(run.NodeCount(a.P, n.ID)) / acts
			if math.Abs(flow[n.ID]-want) > 1e-6*math.Max(1, want) {
				t.Errorf("%s node %d: CK74 freq %g, actual %g", name, n.ID, flow[n.ID], want)
			}
			if math.Abs(flow[n.ID]-tab.NodeFreq[n.ID]) > 1e-6*math.Max(1, want) {
				t.Errorf("%s node %d: CK74 %g != FCDG NODE_FREQ %g", name, n.ID, flow[n.ID], tab.NodeFreq[n.ID])
			}
		}
	}
}

func TestAgreesOnPaperExample(t *testing.T) { agree(t, paperex.Source, 1) }

func TestAgreesOnKernels(t *testing.T) {
	for _, k := range []int{1, 2, 15, 16, 17, 24} {
		agree(t, livermore.KernelSource(k, 40), 2)
	}
}

func TestAgreesOnRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		agree(t, progen.Generate(seed, 7, 3), seed)
	}
}

func TestSingularLoopRejected(t *testing.T) {
	// A loop whose exit probability is claimed to be zero has unbounded
	// expected frequency: the flow system is singular.
	p, err := core.Load(paperex.Source)
	if err != nil {
		t.Fatal(err)
	}
	a := p.An.Procs["EXMPL"]
	probs := make(Probabilities)
	for _, n := range a.P.G.Nodes() {
		out := a.P.G.OutEdges(n.ID)
		if len(out) < 2 {
			continue
		}
		pm := map[cfg.Label]float64{}
		for _, e := range out {
			pm[e.Label] = 0
		}
		// Always loop back: both IFs take F with probability 1.
		pm[cfg.False] = 1
		probs[n.ID] = pm
	}
	if _, err := Frequencies(a.P, probs); err == nil {
		t.Fatal("never-exiting loop must make the flow system singular")
	}
}

func TestCountersNeeded(t *testing.T) {
	p, err := core.Load(paperex.Source)
	if err != nil {
		t.Fatal(err)
	}
	a := p.An.Procs["EXMPL"]
	ck := CountersNeeded(a.P)
	smart, err := profiler.PlanSmart(a)
	if err != nil {
		t.Fatal(err)
	}
	// CK74 needs a probability per branch edge (n−1 each) plus the run
	// counter; the FCDG scheme must not need more.
	if smart.NumCounters() > ck {
		t.Errorf("smart counters %d > CK74 counters %d", smart.NumCounters(), ck)
	}
	t.Logf("example: CK74 per-edge counters = %d, FCDG smart counters = %d", ck, smart.NumCounters())
}
