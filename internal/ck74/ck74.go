// Package ck74 implements the related-work baseline the paper cites as
// [CK74]: Cocke and Kennedy, "Profitability Computations on Program Flow
// Graphs" — determining average execution frequencies from transition
// probabilities on the control flow graph itself, by solving the linear
// flow-balance system
//
//	freq(entry) = 1 + Σ incoming flow        (one entry per invocation)
//	freq(v)     = Σ over edges (u,v,l) of freq(u) · prob(u,l)
//
// with one unknown per CFG node. Contrast with the paper's approach: the
// FCDG recurrences need one pass over an acyclic graph and only
// control-condition counters, while the flow-balance system needs a branch
// probability for every CFG edge (per-edge counters, naive-profiler
// territory) and a simultaneous linear solve because loops make the system
// cyclic. Both must agree on the frequencies — a cross-validation the
// tests exercise.
package ck74

import (
	"fmt"
	"math"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/lower"
)

// Probabilities holds prob(u,l) — the probability that an execution of u
// leaves via its edge labelled l — for every multi-successor node. Nodes
// with a single out-edge implicitly have probability 1.
type Probabilities map[cfg.NodeID]map[cfg.Label]float64

// FromRun extracts edge probabilities from a run's exact counts (what a
// per-edge profile would provide).
func FromRun(p *lower.Proc, run *interp.Result) Probabilities {
	probs := make(Probabilities)
	counts := run.ByProc[p.G.Name]
	for _, n := range p.G.Nodes() {
		execs := float64(counts.Node[n.ID])
		out := p.G.OutEdges(n.ID)
		if len(out) < 2 || execs == 0 {
			continue
		}
		m := make(map[cfg.Label]float64, len(out))
		for k, e := range out {
			m[e.Label] = float64(counts.Edge[n.ID][k]) / execs
		}
		probs[n.ID] = m
	}
	return probs
}

// Frequencies solves the flow-balance system and returns the expected
// executions of every node per invocation of the procedure. The system is
// singular when some loop has expected iteration count diverging (its exit
// probability is 0); that is reported as an error.
func Frequencies(p *lower.Proc, probs Probabilities) ([]float64, error) {
	g := p.G
	n := int(g.MaxID())
	// Unknowns x[1..n]: node frequencies. Equations: x[v] − Σ prob(u,l)·x[u] = entry(v).
	A := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		A[i] = make([]float64, n)
		A[i][i] = 1
	}
	prob := func(u cfg.NodeID, l cfg.Label, fanout int) float64 {
		if fanout == 1 {
			return 1
		}
		if m, ok := probs[u]; ok {
			return m[l]
		}
		// Unprofiled multi-way node (never executed): split evenly; its
		// frequency is 0 anyway so the choice cannot matter.
		return 1 / float64(fanout)
	}
	for id := cfg.NodeID(1); id <= g.MaxID(); id++ {
		out := g.OutEdges(id)
		for _, e := range out {
			A[int(e.To)-1][int(id)-1] -= prob(id, e.Label, len(out))
		}
	}
	b[int(g.Entry)-1] = 1

	x, err := solve(A, b)
	if err != nil {
		return nil, fmt.Errorf("ck74: %s: %w", g.Name, err)
	}
	// Frequencies are expectations of counts: they must be non-negative.
	freqs := make([]float64, n+1)
	for i, v := range x {
		if v < 0 && v > -1e-9 {
			v = 0
		}
		if v < 0 {
			return nil, fmt.Errorf("ck74: %s: negative frequency %g for node %d", g.Name, v, i+1)
		}
		freqs[i+1] = v
	}
	return freqs, nil
}

// solve is Gaussian elimination with partial pivoting.
func solve(A [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		if math.Abs(A[col][col]) < 1e-12 {
			return nil, fmt.Errorf("singular flow system (column %d): a loop never exits", col)
		}
		for r := col + 1; r < n; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= A[i][j] * x[j]
		}
		x[i] = sum / A[i][i]
	}
	return x, nil
}

// CountersNeeded returns how many per-edge probability counters the CK74
// formulation requires for the procedure: one per out-edge of every
// multi-successor node, minus one per such node (probabilities sum to 1).
func CountersNeeded(p *lower.Proc) int {
	total := 0
	for _, n := range p.G.Nodes() {
		if k := len(p.G.OutEdges(n.ID)); k >= 2 {
			total += k - 1
		}
	}
	// Plus the invocation counter.
	return total + 1
}
