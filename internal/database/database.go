// Package database is the reproduction's stand-in for the PTRAN program
// database: it accumulates TOTAL_FREQ profiles (and the optional
// loop-frequency second moments) across program executions and persists
// them as JSON. Section 3: "it is a good idea to accumulate the TOTAL_FREQ
// values (as a sum or average) from different program executions in the
// program database, so as to get a more representative set of frequency
// values" — only ratios of totals matter downstream, so plain sums are the
// merge operation.
package database

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/freq"
	"repro/internal/profiler"
)

// DB is one program's accumulated profile.
type DB struct {
	// Program names the profiled program (free-form, e.g. a source path).
	Program string `json:"program"`
	// Runs counts the executions accumulated.
	Runs int `json:"runs"`
	// Seeds records which interpreter seeds contributed (documentation
	// only; merging identical seeds twice is the caller's responsibility).
	Seeds []uint64 `json:"seeds,omitempty"`
	// Totals maps procedure name -> "node:label" -> accumulated
	// TOTAL_FREQ.
	Totals map[string]map[string]float64 `json:"totals"`
	// LoopVar maps procedure name -> "node:label" -> VAR(FREQ) of loop
	// conditions, averaged over merges.
	LoopVar map[string]map[string]float64 `json:"loop_var,omitempty"`
}

// New returns an empty database for a program.
func New(program string) *DB {
	return &DB{
		Program: program,
		Totals:  make(map[string]map[string]float64),
		LoopVar: make(map[string]map[string]float64),
	}
}

// Key renders a condition as the stable string key used on disk.
func Key(c cdg.Condition) string {
	return fmt.Sprintf("%d:%s", int(c.Node), string(c.Label))
}

// ParseKey inverts Key.
func ParseKey(s string) (cdg.Condition, error) {
	i := strings.IndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return cdg.Condition{}, fmt.Errorf("database: bad condition key %q", s)
	}
	n, err := strconv.Atoi(s[:i])
	if err != nil || n <= 0 {
		return cdg.Condition{}, fmt.Errorf("database: bad node in key %q", s)
	}
	return cdg.Condition{Node: cfg.NodeID(n), Label: cfg.Label(s[i+1:])}, nil
}

// Merge accumulates one profiling session (one or more runs already summed
// in profile) into the database.
func (db *DB) Merge(profile profiler.ProgramProfile, runs int, seeds ...uint64) {
	db.Runs += runs
	db.Seeds = append(db.Seeds, seeds...)
	for proc, totals := range profile {
		if db.Totals[proc] == nil {
			db.Totals[proc] = make(map[string]float64)
		}
		for c, v := range totals {
			db.Totals[proc][Key(c)] += v
		}
	}
}

// MergeLoopVar records loop-frequency variances (keeping the latest value;
// variance of merged sample sets would need raw moments, which VarianceRun
// callers can maintain themselves if needed).
func (db *DB) MergeLoopVar(vars map[string]map[cdg.Condition]float64) {
	for proc, m := range vars {
		if db.LoopVar[proc] == nil {
			db.LoopVar[proc] = make(map[string]float64)
		}
		for c, v := range m {
			db.LoopVar[proc][Key(c)] = v
		}
	}
}

// ProcTotals reconstructs the freq.Totals of every procedure.
func (db *DB) ProcTotals() (map[string]freq.Totals, error) {
	out := make(map[string]freq.Totals, len(db.Totals))
	for proc, m := range db.Totals {
		t := make(freq.Totals, len(m))
		for k, v := range m {
			c, err := ParseKey(k)
			if err != nil {
				return nil, fmt.Errorf("database: proc %s: %w", proc, err)
			}
			t[c] = v
		}
		out[proc] = t
	}
	return out, nil
}

// LoopVariance reconstructs the per-procedure VAR(FREQ) maps.
func (db *DB) LoopVariance() (map[string]map[cdg.Condition]float64, error) {
	out := make(map[string]map[cdg.Condition]float64, len(db.LoopVar))
	for proc, m := range db.LoopVar {
		pm := make(map[cdg.Condition]float64, len(m))
		for k, v := range m {
			c, err := ParseKey(k)
			if err != nil {
				return nil, fmt.Errorf("database: proc %s: %w", proc, err)
			}
			pm[c] = v
		}
		out[proc] = pm
	}
	return out, nil
}

// Save writes the database as indented JSON.
func (db *DB) Save(path string) error {
	data, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return fmt.Errorf("database: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a database written by Save.
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("database: %w", err)
	}
	db := New("")
	if err := json.Unmarshal(data, db); err != nil {
		return nil, fmt.Errorf("database: %s: %w", path, err)
	}
	// Validate keys eagerly so corruption surfaces at load time.
	if _, err := db.ProcTotals(); err != nil {
		return nil, err
	}
	return db, nil
}
