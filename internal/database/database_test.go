package database

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/paperex"
)

func TestKeyRoundTrip(t *testing.T) {
	cases := []cdg.Condition{
		{Node: 1, Label: cfg.Uncond},
		{Node: 42, Label: cfg.True},
		{Node: 7, Label: cfg.PseudoLoop},
		{Node: 9, Label: cfg.Label("G3")},
	}
	for _, c := range cases {
		got, err := ParseKey(Key(c))
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
	for _, bad := range []string{"", "x", ":T", "5:", "-1:T", "abc:T"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) should fail", bad)
		}
	}
}

func TestMergeAccumulatesAndSurvivesRoundTrip(t *testing.T) {
	p, err := core.Load(paperex.Source)
	if err != nil {
		t.Fatal(err)
	}
	db := New("paperex")
	for seed := uint64(1); seed <= 3; seed++ {
		profile, _, err := p.Profile(interp.Options{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		db.Merge(profile, 1, seed)
	}
	if db.Runs != 3 || len(db.Seeds) != 3 {
		t.Fatalf("Runs=%d Seeds=%v", db.Runs, db.Seeds)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "profile.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := loaded.ProcTotals()
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.ProcTotals()
	if err != nil {
		t.Fatal(err)
	}
	for proc, totals := range b {
		for c, v := range totals {
			if math.Abs(a[proc][c]-v) > 1e-12 {
				t.Errorf("%s %v: %g != %g after round trip", proc, c, a[proc][c], v)
			}
		}
	}

	// Estimating from the merged database equals estimating from the
	// in-memory accumulated profile (the deterministic program runs
	// identically under every seed, so totals are 3x the single run).
	est, err := core.EstimateProgram(p.An, a, map[string]cost.Table{"EXMPL": exCosts(p), "FOO": nil}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Main.Time-paperex.PaperTime) > 1e-9 {
		t.Errorf("TIME from database = %g, want %g", est.Main.Time, paperex.PaperTime)
	}
}

func exCosts(p *core.Pipeline) cost.Table {
	costs := cost.NewTable(p.An.Procs["EXMPL"].P.G.MaxID())
	for id, s := range p.An.Procs["EXMPL"].P.Stmt {
		switch s.Text()[0:2] {
		case "IF":
			costs[id] = 1
		case "CA":
			costs[id] = 100
		}
	}
	return costs
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/path.json"); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("corrupt JSON should error")
	}
	badKey := filepath.Join(dir, "badkey.json")
	os.WriteFile(badKey, []byte(`{"program":"x","runs":1,"totals":{"P":{"zap":1}}}`), 0o644)
	if _, err := Load(badKey); err == nil {
		t.Error("bad condition key should error at load")
	}
}

func TestLoopVarRoundTrip(t *testing.T) {
	db := New("x")
	db.MergeLoopVar(map[string]map[cdg.Condition]float64{
		"P": {{Node: 3, Label: cfg.Uncond}: 2.5},
	})
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := loaded.LoopVariance()
	if err != nil {
		t.Fatal(err)
	}
	if got := lv["P"][cdg.Condition{Node: 3, Label: cfg.Uncond}]; got != 2.5 {
		t.Errorf("loop var = %g, want 2.5", got)
	}
}
