// Package chunk implements the application Section 5 of the paper
// motivates for variance information: choosing the chunk size of a
// self-scheduled parallel loop, after Kruskal and Weiss [KW85].
//
// Intuition from the paper: "when the execution time of the loop body has
// zero variance, we would prefer to use a chunk size of ⌊N/P⌋ ... when the
// variance is large, we have to move to smaller chunk sizes to get better
// load balancing, at the cost of increased overhead." The Kruskal–Weiss
// analysis makes this quantitative: dispatching N iterations of mean μ and
// standard deviation σ to P processors in chunks of k, with a per-chunk
// dispatch overhead h, has expected makespan approximately
//
//	E[makespan] ≈ (N/P)·μ + (N/(k·P))·h + σ·√(2·k·ln P)
//
// whose minimizer is k* = (√2·N·h / (P·σ·√(ln P)))^(2/3), clamped to
// [1, ⌈N/P⌉]. The compiler feeds μ = TIME and σ = STD_DEV of the loop body
// from the estimator and picks k* at compile time.
//
// The package also contains a deterministic self-scheduling simulator so
// experiments can sweep k against actual per-iteration costs and check
// where the analytic optimum falls.
package chunk

import (
	"fmt"
	"math"
	"sort"
)

// Params describe one parallel loop scheduling problem.
type Params struct {
	// N is the iteration count, P the processor count.
	N, P int
	// Mu and Sigma are the loop body's mean execution time and standard
	// deviation (from the estimator: TIME and STD_DEV).
	Mu, Sigma float64
	// Overhead is the cost of dispatching one chunk.
	Overhead float64
}

// KruskalWeiss returns the analytic chunk size k*.
func KruskalWeiss(p Params) int {
	maxK := (p.N + p.P - 1) / p.P
	if maxK < 1 {
		maxK = 1
	}
	if p.Sigma <= 0 || p.P <= 1 {
		return maxK // zero variance or sequential: biggest chunks win
	}
	lnP := math.Log(float64(p.P))
	if lnP <= 0 {
		return maxK
	}
	k := math.Pow(math.Sqrt2*float64(p.N)*p.Overhead/(float64(p.P)*p.Sigma*math.Sqrt(lnP)), 2.0/3.0)
	ki := int(math.Round(k))
	if ki < 1 {
		ki = 1
	}
	if ki > maxK {
		ki = maxK
	}
	return ki
}

// ExpectedMakespan evaluates the KW85 makespan model at chunk size k.
func ExpectedMakespan(p Params, k int) float64 {
	if k < 1 {
		k = 1
	}
	n, pp := float64(p.N), float64(p.P)
	lnP := math.Log(math.Max(float64(p.P), math.E))
	return n/pp*p.Mu + n/(float64(k)*pp)*p.Overhead + p.Sigma*math.Sqrt(2*float64(k)*lnP)
}

// Simulate runs deterministic self-scheduling: P workers repeatedly grab
// the next k iterations (paying overhead per grab) until none remain, and
// the makespan is the latest finish time. iterTimes[i] is the cost of
// iteration i.
func Simulate(iterTimes []float64, P, k int, overhead float64) float64 {
	if P < 1 || k < 1 {
		return math.Inf(1)
	}
	// Worker finish times in a tiny priority structure: with P small a
	// linear scan is fine and allocation-free.
	busy := make([]float64, P)
	next := 0
	for next < len(iterTimes) {
		// Earliest-free worker takes the next chunk.
		w := 0
		for i := 1; i < P; i++ {
			if busy[i] < busy[w] {
				w = i
			}
		}
		end := next + k
		if end > len(iterTimes) {
			end = len(iterTimes)
		}
		t := overhead
		for _, c := range iterTimes[next:end] {
			t += c
		}
		busy[w] += t
		next = end
	}
	max := 0.0
	for _, b := range busy {
		if b > max {
			max = b
		}
	}
	return max
}

// SimulateGSS runs guided self-scheduling (Polychronopoulos–Kuck): each
// grab takes ⌈remaining/P⌉ iterations, so chunks shrink geometrically and
// the tail self-balances. Included as the classic adaptive baseline the
// fixed-size Kruskal–Weiss choice is usually compared against.
func SimulateGSS(iterTimes []float64, P int, overhead float64) float64 {
	if P < 1 {
		return math.Inf(1)
	}
	busy := make([]float64, P)
	next := 0
	for next < len(iterTimes) {
		w := 0
		for i := 1; i < P; i++ {
			if busy[i] < busy[w] {
				w = i
			}
		}
		remaining := len(iterTimes) - next
		k := (remaining + P - 1) / P
		if k < 1 {
			k = 1
		}
		end := next + k
		t := overhead
		for _, c := range iterTimes[next:end] {
			t += c
		}
		busy[w] += t
		next = end
	}
	max := 0.0
	for _, b := range busy {
		if b > max {
			max = b
		}
	}
	return max
}

// SweepResult is one point of a chunk-size sweep.
type SweepResult struct {
	K        int
	Makespan float64
}

// Sweep simulates every chunk size in ks and returns the results sorted by
// K along with the best one.
func Sweep(iterTimes []float64, P int, overhead float64, ks []int) ([]SweepResult, SweepResult) {
	out := make([]SweepResult, 0, len(ks))
	best := SweepResult{K: 0, Makespan: math.Inf(1)}
	for _, k := range ks {
		m := Simulate(iterTimes, P, k, overhead)
		out = append(out, SweepResult{K: k, Makespan: m})
		if m < best.Makespan {
			best = SweepResult{K: k, Makespan: m}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out, best
}

// DefaultKs returns a log-spaced set of chunk sizes to sweep for N
// iterations on P processors: 1, 2, 4, ... up to ⌈N/P⌉.
func DefaultKs(n, p int) []int {
	maxK := (n + p - 1) / p
	var ks []int
	for k := 1; k < maxK; k *= 2 {
		ks = append(ks, k)
	}
	ks = append(ks, maxK)
	return ks
}

func (r SweepResult) String() string {
	return fmt.Sprintf("k=%d makespan=%.4g", r.K, r.Makespan)
}
