package chunk

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/lower"
)

// MeasureIterations runs the program once under the cost model and returns
// the per-iteration cost of the loop headed by header in procedure proc:
// the cost accumulated between consecutive executions of the header. It is
// intended for loops entered once per run (the usual parallel-loop
// candidate); for multi-entry loops the deltas spanning an exit/re-entry
// would include code outside the loop.
func MeasureIterations(res *lower.Result, proc string, header cfg.NodeID, m cost.Model, opt interp.Options) ([]float64, error) {
	var marks []float64
	opt.Model = &m
	prev := opt.OnNodeCost
	opt.OnNodeCost = func(p *lower.Proc, n cfg.NodeID, costSoFar float64) {
		if prev != nil {
			prev(p, n, costSoFar)
		}
		if p.G.Name == proc && n == header {
			marks = append(marks, costSoFar)
		}
	}
	if _, err := interp.Run(res, opt); err != nil {
		return nil, err
	}
	if len(marks) < 2 {
		return nil, fmt.Errorf("chunk: loop header %d of %s executed %d times; no iterations to measure", header, proc, len(marks))
	}
	iters := make([]float64, len(marks)-1)
	for i := 1; i < len(marks); i++ {
		iters[i-1] = marks[i] - marks[i-1]
	}
	return iters, nil
}
