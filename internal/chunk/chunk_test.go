package chunk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/stats"
)

func TestZeroVariancePrefersBiggestChunks(t *testing.T) {
	p := Params{N: 1000, P: 8, Mu: 10, Sigma: 0, Overhead: 5}
	if k := KruskalWeiss(p); k != 125 {
		t.Errorf("k = %d, want N/P = 125", k)
	}
}

func TestHigherVarianceSmallerChunks(t *testing.T) {
	base := Params{N: 1000, P: 8, Mu: 10, Overhead: 5}
	prev := 1 << 30
	for _, sigma := range []float64{0.5, 2, 8, 32, 128} {
		p := base
		p.Sigma = sigma
		k := KruskalWeiss(p)
		if k > prev {
			t.Errorf("sigma %g: k = %d, want non-increasing (prev %d)", sigma, k, prev)
		}
		prev = k
	}
	if prev >= 125 {
		t.Errorf("largest sigma still picked k = %d", prev)
	}
}

func TestKruskalWeissBounds(t *testing.T) {
	cfgs := []Params{
		{N: 1, P: 64, Mu: 1, Sigma: 100, Overhead: 0.1},
		{N: 10, P: 1, Mu: 1, Sigma: 5, Overhead: 1},
		{N: 100000, P: 4, Mu: 1, Sigma: 0.001, Overhead: 1000},
	}
	for _, p := range cfgs {
		k := KruskalWeiss(p)
		maxK := (p.N + p.P - 1) / p.P
		if k < 1 || k > maxK {
			t.Errorf("%+v: k = %d outside [1, %d]", p, k, maxK)
		}
	}
}

func TestSimulateDeterministicBalanced(t *testing.T) {
	// 8 equal iterations on 2 workers, chunks of 2, no overhead: each
	// worker gets 2 chunks of cost 2: makespan 4.
	iter := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if got := Simulate(iter, 2, 2, 0); got != 4 {
		t.Errorf("makespan = %g, want 4", got)
	}
	// One big chunk: one worker does everything.
	if got := Simulate(iter, 2, 8, 0); got != 8 {
		t.Errorf("makespan = %g, want 8", got)
	}
	// Overhead charged per chunk.
	if got := Simulate(iter, 2, 2, 1); got != 6 {
		t.Errorf("makespan = %g, want 6 (2 chunks x (1+2))", got)
	}
}

func TestSimulateImbalancedFavorsSmallChunks(t *testing.T) {
	// One pathological iteration: with chunk = N/P the unlucky worker
	// serializes; chunk = 1 balances.
	iter := make([]float64, 64)
	for i := range iter {
		iter[i] = 1
	}
	iter[0] = 100
	big := Simulate(iter, 8, 8, 0.01)
	small := Simulate(iter, 8, 1, 0.01)
	if small >= big {
		t.Errorf("small-chunk makespan %g should beat big-chunk %g under imbalance", small, big)
	}
}

func TestSimulateProperties(t *testing.T) {
	// Properties: makespan >= total/P and >= max iteration; makespan <=
	// total + chunks*overhead (one worker case bound).
	f := func(seed int64) bool {
		rng := seed
		next := func() float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return float64(uint64(rng)>>11) / float64(1<<53)
		}
		n := 1 + int(next()*200)
		iter := make([]float64, n)
		total, maxIt := 0.0, 0.0
		for i := range iter {
			iter[i] = 0.1 + next()*10
			total += iter[i]
			if iter[i] > maxIt {
				maxIt = iter[i]
			}
		}
		P := 1 + int(next()*7)
		k := 1 + int(next()*20)
		h := next()
		ms := Simulate(iter, P, k, h)
		chunks := (n + k - 1) / k
		lower := math.Max(total/float64(P), maxIt)
		upper := total + float64(chunks)*h
		return ms >= lower-1e-9 && ms <= upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSweepFindsMinimum(t *testing.T) {
	iter := make([]float64, 256)
	for i := range iter {
		iter[i] = 1
		if i%16 == 0 {
			iter[i] = 40
		}
	}
	results, best := Sweep(iter, 8, 2, DefaultKs(len(iter), 8))
	if len(results) == 0 || best.K == 0 {
		t.Fatal("empty sweep")
	}
	for _, r := range results {
		if r.Makespan < best.Makespan {
			t.Errorf("best %v worse than %v", best, r)
		}
	}
}

func TestExpectedMakespanShape(t *testing.T) {
	p := Params{N: 4096, P: 16, Mu: 10, Sigma: 20, Overhead: 8}
	kStar := KruskalWeiss(p)
	mStar := ExpectedMakespan(p, kStar)
	// The analytic optimum must beat both extremes of the model curve.
	if m1 := ExpectedMakespan(p, 1); m1 < mStar {
		t.Errorf("k=1 model makespan %g < k*=%d's %g", m1, kStar, mStar)
	}
	if mMax := ExpectedMakespan(p, p.N/p.P); mMax < mStar {
		t.Errorf("k=N/P model makespan %g < k*=%d's %g", mMax, kStar, mStar)
	}
}

// TestEndToEndVarianceDrivenChunking runs the full story: estimate a
// variable loop body's TIME/STD_DEV from a profile, feed them to KW85, and
// check the chosen chunk size sits near the simulated optimum (and clearly
// beats the naive N/P choice).
func TestEndToEndVarianceDrivenChunking(t *testing.T) {
	src := `      PROGRAM PARLOOP
      INTEGER I, K, N
      REAL X
      PARAMETER (N = 256)
      DO 10 I = 1, N
         X = RAND()
         IF (X .LT. 0.1) THEN
            DO 20 K = 1, 400
   20       CONTINUE
         ELSE
            DO 30 K = 1, 4
   30       CONTINUE
         ENDIF
   10 CONTINUE
      END
`
	p, err := core.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.Unit
	est, err := p.Estimate(model, core.Options{}, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := p.An.Procs["PARLOOP"]
	// The outer loop is the depth-1 header; its body TIME/VAR live on the
	// header node's estimate.
	var outer = a.Intervals.Headers()[0]
	for _, h := range a.Intervals.Headers() {
		if a.Intervals.Depth(h) == 1 {
			outer = h
		}
	}
	pe := est.Procs["PARLOOP"]
	body := pe.Node[outer] // TIME/VAR of one header-to-header iteration
	const P = 8
	const overhead = 25.0
	params := Params{N: 256, P: P, Mu: body.Time, Sigma: body.StdDev, Overhead: overhead}
	kStar := KruskalWeiss(params)

	iters, err := MeasureIterations(p.Res, "PARLOOP", outer, model, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 256 {
		t.Fatalf("measured %d iterations, want 256", len(iters))
	}
	sum := stats.Summarize(iters)
	// The estimator's per-iteration mean should match the measured mean
	// closely (profile pools 3 seeds, measurement uses seed 1).
	if rel := math.Abs(sum.Mean-body.Time) / sum.Mean; rel > 0.25 {
		t.Errorf("estimated iteration TIME %g vs measured mean %g", body.Time, sum.Mean)
	}
	// The iteration-time standard deviation is dominated by the iid branch
	// between the cheap and the expensive arm, where Section 5's model is
	// exact up to the deterministic inner loops' phantom variance: the
	// compile-time σ must land within 40% of the measured σ.
	if sum.Std > 0 {
		if rel := math.Abs(body.StdDev-sum.Std) / sum.Std; rel > 0.40 {
			t.Errorf("estimated iteration STD_DEV %g vs measured %g (rel %g)", body.StdDev, sum.Std, rel)
		}
	}

	_, best := Sweep(iters, P, overhead, DefaultKs(256, P))
	naive := Simulate(iters, P, 256/P, overhead)
	kw := Simulate(iters, P, kStar, overhead)
	t.Logf("k*=%d (mu=%.4g sigma=%.4g): makespan %.4g; best sweep %v; naive N/P %.4g",
		kStar, body.Time, body.StdDev, kw, best, naive)
	if kw > naive {
		t.Errorf("variance-driven chunk (k=%d, %.4g) must not lose to naive N/P (%.4g)", kStar, kw, naive)
	}
	if kw > best.Makespan*1.5 {
		t.Errorf("variance-driven chunk %.4g too far from sweep optimum %.4g", kw, best.Makespan)
	}
}

func TestGSSBalancedAndOverheadAware(t *testing.T) {
	// Equal iterations: GSS must be within a small factor of the ideal
	// total/P even with the pathological first iteration.
	iter := make([]float64, 128)
	total := 0.0
	for i := range iter {
		iter[i] = 1
		total += iter[i]
	}
	const P = 8
	ms := SimulateGSS(iter, P, 0)
	if ms < total/P-1e-9 {
		t.Fatalf("GSS makespan %g below lower bound %g", ms, total/P)
	}
	if ms > total/P*1.5 {
		t.Errorf("GSS makespan %g too far above ideal %g", ms, total/P)
	}
	// GSS uses O(P log(N/P)) grabs, far fewer than chunk=1's N grabs: with
	// heavy overhead GSS must beat k=1 scheduling.
	heavyOv := 50.0
	gss := SimulateGSS(iter, P, heavyOv)
	k1 := Simulate(iter, P, 1, heavyOv)
	if gss >= k1 {
		t.Errorf("GSS (%g) should beat chunk=1 (%g) under heavy overhead", gss, k1)
	}
}

func TestGSSHandlesImbalance(t *testing.T) {
	// Spread-out spikes: every 16th iteration is expensive.
	iter := make([]float64, 256)
	total, maxIt := 0.0, 0.0
	for i := range iter {
		iter[i] = 1
		if i%16 == 0 {
			iter[i] = 40
		}
		total += iter[i]
		if iter[i] > maxIt {
			maxIt = iter[i]
		}
	}
	const P = 8
	const h = 0.5
	gss := SimulateGSS(iter, P, h)
	if gss < total/P || gss < maxIt {
		t.Fatalf("GSS makespan %g below lower bounds (%g, %g)", gss, total/P, maxIt)
	}
	// GSS is adaptive: it must land within 1.5x of the best fixed chunk
	// size found by sweeping.
	_, best := Sweep(iter, P, h, DefaultKs(len(iter), P))
	if gss > best.Makespan*1.5 {
		t.Errorf("GSS (%g) too far from sweep optimum (%g)", gss, best.Makespan)
	}
}
