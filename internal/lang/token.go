// Package lang implements the frontend for the Fortran-77-like subset used
// as the substrate language of this reproduction: a lexer, a recursive
// descent parser, an AST, and semantic analysis.
//
// The paper's framework analyzes Fortran programs (its running example and
// both Table 1 benchmarks are Fortran); this subset covers the control flow
// constructs the framework cares about — DO loops, block and logical and
// arithmetic IFs, GOTO and computed GOTO, CALL/RETURN — plus enough of the
// expression and array language to express the Livermore Loops and a
// SIMPLE-like CFD kernel.
//
// Deviations from Fortran 77, chosen for implementation clarity and noted
// here once: source is free-form (no column-6 continuation; a trailing '&'
// continues a line), keywords are reserved words, and CHARACTER data exists
// only as literals inside PRINT.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	REALLIT
	STRINGLIT
	LPAREN
	RPAREN
	COMMA
	ASSIGN // =
	PLUS
	MINUS
	STAR
	SLASH
	POW    // **
	DOTOP  // .LT. .GE. .AND. .NOT. .TRUE. ... — Text holds the upper-cased name
	COLON  // : (array slices are not supported; kept for better errors)
	KWWORD // reserved keyword; Text holds the upper-cased spelling
)

var kindNames = map[Kind]string{
	EOF: "end of line", IDENT: "identifier", INTLIT: "integer", REALLIT: "real",
	STRINGLIT: "string", LPAREN: "'('", RPAREN: "')'", COMMA: "','", ASSIGN: "'='",
	PLUS: "'+'", MINUS: "'-'", STAR: "'*'", SLASH: "'/'", POW: "'**'",
	DOTOP: "dotted operator", COLON: "':'", KWWORD: "keyword",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexical token. Text is upper-cased for identifiers, keywords
// and dotted operators; string literals keep their original spelling.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%v %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// keywords are the reserved statement words of the subset.
var keywords = map[string]bool{
	"PROGRAM": true, "SUBROUTINE": true, "INTEGER": true, "REAL": true,
	"LOGICAL": true, "PARAMETER": true, "DIMENSION": true,
	"IF": true, "THEN": true, "ELSE": true, "ELSEIF": true, "ENDIF": true,
	"DO": true, "ENDDO": true, "CONTINUE": true, "GOTO": true, "CALL": true,
	"RETURN": true, "STOP": true, "END": true, "PRINT": true, "WRITE": true,
}

// Line is one logical source line: an optional numeric statement label and
// its tokens.
type Line struct {
	Label  int // 0 = unlabelled
	Tokens []Token
	Num    int // 1-based physical line number of the first physical line
}

// A SyntaxError reports a problem with a position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Lex splits src into logical lines of tokens. Comment lines (first
// non-blank character 'C', 'c' or '*' in column one, or '!' anywhere) are
// stripped; a trailing '&' joins the next physical line.
func Lex(src string) ([]Line, error) {
	physical := strings.Split(src, "\n")
	var logical []struct {
		text string
		num  int
	}
	for i := 0; i < len(physical); i++ {
		text := physical[i]
		num := i + 1
		if isCommentLine(text) {
			continue
		}
		if idx := strings.IndexByte(text, '!'); idx >= 0 && !inString(text, idx) {
			text = text[:idx]
		}
		// Continuations: a trailing '&' pulls in the next line, and a line
		// whose first non-blank character is '&' (the fixed-form column-6
		// style) continues the previous one.
		for i+1 < len(physical) {
			next := physical[i+1]
			if idx := strings.IndexByte(next, '!'); idx >= 0 && !inString(next, idx) {
				next = next[:idx]
			}
			trimmedNext := strings.TrimSpace(next)
			switch {
			case strings.HasSuffix(strings.TrimSpace(text), "&"):
				t := strings.TrimSpace(text)
				text = t[:len(t)-1] + " " + strings.TrimPrefix(trimmedNext, "&")
				i++
			case strings.HasPrefix(trimmedNext, "&"):
				text = strings.TrimSpace(text) + " " + strings.TrimSpace(trimmedNext[1:])
				i++
			default:
				goto joined
			}
		}
	joined:
		if strings.TrimSpace(text) == "" {
			continue
		}
		logical = append(logical, struct {
			text string
			num  int
		}{text, num})
	}

	var lines []Line
	for _, ll := range logical {
		toks, err := lexLine(ll.text, ll.num)
		if err != nil {
			return nil, err
		}
		if len(toks) == 0 {
			continue
		}
		toks = fuseSpellings(toks)
		line := Line{Num: ll.num, Tokens: toks}
		// A leading integer is a statement label.
		if toks[0].Kind == INTLIT && len(toks) > 1 {
			label := 0
			for _, c := range toks[0].Text {
				label = label*10 + int(c-'0')
			}
			if label == 0 {
				return nil, errf(ll.num, toks[0].Col, "statement label 0 is not allowed")
			}
			line.Label = label
			line.Tokens = toks[1:]
		}
		lines = append(lines, line)
	}
	return lines, nil
}

// fuseSpellings merges the two-word spellings "END IF", "END DO",
// "GO TO" (and "ELSE IF" is handled by the parser directly) into their
// one-word keyword equivalents.
func fuseSpellings(toks []Token) []Token {
	var out []Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if i+1 < len(toks) {
			n := toks[i+1]
			switch {
			case t.Kind == KWWORD && t.Text == "END" && n.Kind == KWWORD && (n.Text == "IF" || n.Text == "DO"):
				out = append(out, Token{Kind: KWWORD, Text: "END" + n.Text, Line: t.Line, Col: t.Col})
				i++
				continue
			case t.Kind == IDENT && t.Text == "GO" && n.Kind == IDENT && n.Text == "TO":
				out = append(out, Token{Kind: KWWORD, Text: "GOTO", Line: t.Line, Col: t.Col})
				i++
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

func isCommentLine(text string) bool {
	trimmed := strings.TrimLeft(text, " \t")
	if trimmed == "" {
		return false
	}
	// Classic fixed-form comment marker in column one.
	if text[0] == 'C' || text[0] == 'c' || text[0] == '*' {
		// Only treat it as a comment if it doesn't look like a statement
		// (e.g. "CALL FOO" starts with C). A comment marker is followed by
		// whitespace or the line is pure commentary.
		rest := text[1:]
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
			// "C " could still be an assignment "C = 1"; check for '='
			// before any paren at the top level.
			if !looksLikeStatement(rest) {
				return true
			}
		}
	}
	return strings.HasPrefix(trimmed, "!")
}

// looksLikeStatement reports whether the text after a potential comment
// marker parses as the tail of a statement starting with that letter
// (assignment "C = ..." or "C(I) = ..."). Everything else is commentary.
func looksLikeStatement(rest string) bool {
	s := strings.TrimSpace(rest)
	if s == "" {
		return false
	}
	if s[0] == '=' && (len(s) < 2 || s[1] != '=') {
		return true
	}
	if s[0] == '(' {
		depth := 0
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					tail := strings.TrimSpace(s[i+1:])
					return strings.HasPrefix(tail, "=") && !strings.HasPrefix(tail, "==")
				}
			}
		}
	}
	return false
}

func inString(text string, idx int) bool {
	quote := byte(0)
	for i := 0; i < idx; i++ {
		c := text[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		if c == '\'' || c == '"' {
			quote = c
		}
	}
	return quote != 0
}

// lexLine tokenizes one logical line.
func lexLine(text string, lineNum int) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(text)
	for i < n {
		c := text[i]
		col := i + 1
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && text[i+1] >= '0' && text[i+1] <= '9':
			tok, next, err := lexNumberOrDotOp(text, i, lineNum)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
			i = next
		case c == '.':
			// Dotted operator: .LT. .AND. .TRUE. etc.
			j := i + 1
			for j < n && isAlpha(text[j]) {
				j++
			}
			if j >= n || text[j] != '.' {
				return nil, errf(lineNum, col, "malformed dotted operator near %q", text[i:min(i+6, n)])
			}
			name := strings.ToUpper(text[i+1 : j])
			if !validDotOp(name) {
				return nil, errf(lineNum, col, "unknown operator .%s.", name)
			}
			toks = append(toks, Token{Kind: DOTOP, Text: name, Line: lineNum, Col: col})
			i = j + 1
		case isAlpha(c):
			j := i
			for j < n && (isAlpha(text[j]) || text[j] >= '0' && text[j] <= '9' || text[j] == '_') {
				j++
			}
			word := strings.ToUpper(text[i:j])
			kind := IDENT
			if keywords[word] {
				kind = KWWORD
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: lineNum, Col: col})
			i = j
		case c == '\'' || c == '"':
			j := i + 1
			for j < n && text[j] != c {
				j++
			}
			if j >= n {
				return nil, errf(lineNum, col, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: STRINGLIT, Text: text[i+1 : j], Line: lineNum, Col: col})
			i = j + 1
		case c == '*':
			if i+1 < n && text[i+1] == '*' {
				toks = append(toks, Token{Kind: POW, Line: lineNum, Col: col})
				i += 2
			} else {
				toks = append(toks, Token{Kind: STAR, Line: lineNum, Col: col})
				i++
			}
		case c == '(':
			toks = append(toks, Token{Kind: LPAREN, Line: lineNum, Col: col})
			i++
		case c == ')':
			toks = append(toks, Token{Kind: RPAREN, Line: lineNum, Col: col})
			i++
		case c == ',':
			toks = append(toks, Token{Kind: COMMA, Line: lineNum, Col: col})
			i++
		case c == '=':
			toks = append(toks, Token{Kind: ASSIGN, Line: lineNum, Col: col})
			i++
		case c == '+':
			toks = append(toks, Token{Kind: PLUS, Line: lineNum, Col: col})
			i++
		case c == '-':
			toks = append(toks, Token{Kind: MINUS, Line: lineNum, Col: col})
			i++
		case c == '/':
			toks = append(toks, Token{Kind: SLASH, Line: lineNum, Col: col})
			i++
		case c == ':':
			toks = append(toks, Token{Kind: COLON, Line: lineNum, Col: col})
			i++
		default:
			return nil, errf(lineNum, col, "unexpected character %q", rune(c))
		}
	}
	return toks, nil
}

// lexNumberOrDotOp scans an integer or real literal starting at i. Fortran
// makes "1.LT.2" ambiguous (is it "1. LT . 2"?); like real compilers we
// resolve it by treating ".XX." following digits as an operator when XX is
// alphabetic.
func lexNumberOrDotOp(text string, i, lineNum int) (Token, int, error) {
	col := i + 1
	n := len(text)
	j := i
	for j < n && text[j] >= '0' && text[j] <= '9' {
		j++
	}
	isReal := false
	if j < n && text[j] == '.' {
		// Peek: digits '.' alpha ... '.' means a dotted operator follows.
		k := j + 1
		for k < n && isAlpha(text[k]) {
			k++
		}
		opLike := k > j+1 && k < n && text[k] == '.' && validDotOp(strings.ToUpper(text[j+1:k]))
		if !opLike {
			isReal = true
			j++
			for j < n && text[j] >= '0' && text[j] <= '9' {
				j++
			}
		}
	}
	// Exponent: E or D followed by optional sign and digits.
	if j < n && (text[j] == 'e' || text[j] == 'E' || text[j] == 'd' || text[j] == 'D') {
		k := j + 1
		if k < n && (text[k] == '+' || text[k] == '-') {
			k++
		}
		if k < n && text[k] >= '0' && text[k] <= '9' {
			isReal = true
			for k < n && text[k] >= '0' && text[k] <= '9' {
				k++
			}
			j = k
		}
	}
	lit := text[i:j]
	if isReal {
		// Normalize D exponents to E for strconv.
		lit = strings.Map(func(r rune) rune {
			if r == 'd' || r == 'D' {
				return 'E'
			}
			return r
		}, lit)
		return Token{Kind: REALLIT, Text: lit, Line: lineNum, Col: col}, j, nil
	}
	return Token{Kind: INTLIT, Text: lit, Line: lineNum, Col: col}, j, nil
}

func validDotOp(name string) bool {
	switch name {
	case "LT", "LE", "GT", "GE", "EQ", "NE", "AND", "OR", "NOT", "EQV", "NEQV", "TRUE", "FALSE":
		return true
	}
	return false
}

func isAlpha(c byte) bool {
	return unicode.IsLetter(rune(c)) && c < 128
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
