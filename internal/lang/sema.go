package lang

import (
	"fmt"
	"math"
	"strings"
)

// Analyze runs semantic analysis over the whole program: it resolves
// PARAMETER constants, builds per-unit symbol tables (with Fortran implicit
// typing: undeclared I–N names are INTEGER, the rest REAL), type-checks
// every statement and expression, verifies label usage (targets exist, no
// jumps into DO bodies or IF arms from outside), and checks CALL sites
// against subroutine signatures.
func Analyze(prog *Program) error {
	mains := 0
	seen := map[string]bool{}
	for _, u := range prog.Units {
		if u.IsMain {
			mains++
		}
		if seen[u.Name] {
			return fmt.Errorf("duplicate program unit %s", u.Name)
		}
		seen[u.Name] = true
	}
	if mains != 1 {
		return fmt.Errorf("program must have exactly one PROGRAM unit, found %d", mains)
	}
	for _, u := range prog.Units {
		a := &analyzer{prog: prog, unit: u}
		if err := a.run(); err != nil {
			return err
		}
	}
	return nil
}

type analyzer struct {
	prog *Program
	unit *Unit
	// labels maps a statement label to the block path where it is defined;
	// paths are dot-joined block IDs so prefix testing detects illegal
	// inward jumps.
	labels map[int]string
	// gotos records (target label, block path of the GOTO, line).
	gotos []gotoRef
	// blockSeq generates unique block IDs.
	blockSeq int
}

type gotoRef struct {
	target int
	path   string
	line   int
	col    int
}

func (a *analyzer) run() error {
	u := a.unit
	u.Symbols = make(map[string]*Symbol)

	// PARAMETER constants first (they may appear in array bounds).
	for _, c := range u.Consts {
		if _, dup := u.Symbols[c.Name]; dup {
			return errf(c.Line, c.Col, "duplicate name %s", c.Name)
		}
		val, ty, err := a.foldConst(c.Value)
		if err != nil {
			return errf(c.Line, c.Col, "PARAMETER %s: %v", c.Name, err)
		}
		u.Symbols[c.Name] = &Symbol{Name: c.Name, Kind: SymConst, Type: ty, ConstValue: val}
	}

	// Declarations. DIMENSION (Type == TNone) keeps the implicit type.
	for _, d := range u.Decls {
		for _, item := range d.Items {
			ty := d.Type
			if ty == TNone {
				ty = implicitType(item.Name)
			}
			if prev, dup := u.Symbols[item.Name]; dup {
				// A second mention is legal in two forms: adding dimensions
				// to a previously typed scalar ("INTEGER N" + "DIMENSION
				// N(10)"), or giving an explicit type to a PARAMETER
				// constant ("INTEGER N" + "PARAMETER (N = 100)" in either
				// order).
				if prev.Kind == SymScalar && len(item.Dims) > 0 && (d.Type == TNone || d.Type == prev.Type) {
					prev.Kind = SymArray
					prev.Dims = item.Dims
					continue
				}
				if prev.Kind == SymConst && len(item.Dims) == 0 && d.Type != TNone {
					if prev.Type == TReal && d.Type == TInt {
						// Integer-typed parameter folded as real: re-fold is
						// unnecessary since foldConst kept int64 for TInt
						// expressions; just truncate.
						if rv, ok := prev.ConstValue.(float64); ok {
							prev.ConstValue = int64(rv)
						}
					}
					prev.Type = d.Type
					continue
				}
				return errf(d.Line, d.Col, "duplicate declaration of %s", item.Name)
			}
			sym := &Symbol{Name: item.Name, Type: ty}
			if len(item.Dims) > 0 {
				sym.Kind = SymArray
				sym.Dims = item.Dims
			}
			if _, isIntr := Intrinsics[item.Name]; isIntr && sym.Kind == SymArray {
				return errf(d.Line, d.Col, "cannot declare array %s: name is an intrinsic function", item.Name)
			}
			u.Symbols[item.Name] = sym
		}
	}
	for _, p := range u.Params {
		sym, ok := u.Symbols[p]
		if !ok {
			sym = &Symbol{Name: p, Type: implicitType(p)}
			u.Symbols[p] = sym
		}
		if sym.Kind == SymConst {
			return fmt.Errorf("unit %s: parameter %s conflicts with PARAMETER constant", u.Name, p)
		}
		sym.IsParam = true
	}

	// Array bounds must be integer expressions over constants and (in
	// subroutines) parameters.
	for _, sym := range u.Symbols {
		for _, dim := range sym.Dims {
			ty, err := a.typeOf(dim)
			if err != nil {
				return fmt.Errorf("unit %s: array %s bound: %v", u.Name, sym.Name, err)
			}
			if ty != TInt {
				return fmt.Errorf("unit %s: array %s bound must be INTEGER", u.Name, sym.Name)
			}
		}
	}

	// Collect labels with their block paths, then statements.
	a.labels = make(map[int]string)
	a.gotos = nil
	if err := a.checkBlock(u.Body, "0"); err != nil {
		return err
	}
	for _, g := range a.gotos {
		defPath, ok := a.labels[g.target]
		if !ok {
			return errf(g.line, g.col, "GOTO %d: no such label in unit %s", g.target, u.Name)
		}
		// Legal iff the label's block is the GOTO's block or an ancestor:
		// jumping out of blocks is fine, jumping in is not.
		if !strings.HasPrefix(g.path+".", defPath+".") {
			return errf(g.line, g.col, "GOTO %d jumps into a nested block", g.target)
		}
	}
	return nil
}

func implicitType(name string) Type {
	if name == "" {
		return TReal
	}
	if c := name[0]; c >= 'I' && c <= 'N' {
		return TInt
	}
	return TReal
}

// lookup returns the symbol for name, creating it with the implicit type on
// first use (Fortran implicit typing).
func (a *analyzer) lookup(name string) *Symbol {
	if sym, ok := a.unit.Symbols[name]; ok {
		return sym
	}
	sym := &Symbol{Name: name, Kind: SymScalar, Type: implicitType(name)}
	a.unit.Symbols[name] = sym
	return sym
}

func (a *analyzer) checkBlock(body []Stmt, path string) error {
	for _, s := range body {
		if l := s.Lab(); l != 0 {
			if _, dup := a.labels[l]; dup {
				return errf(s.Pos(), s.Column(), "duplicate statement label %d", l)
			}
			a.labels[l] = path
		}
		if err := a.checkStmt(s, path); err != nil {
			return err
		}
	}
	return nil
}

func (a *analyzer) subBlock() string {
	a.blockSeq++
	return fmt.Sprintf("%d", a.blockSeq)
}

func (a *analyzer) checkStmt(s Stmt, path string) error {
	switch st := s.(type) {
	case *Assign:
		return a.checkAssign(st)
	case *IfBlock:
		if err := a.checkCond(st.Cond, st.Line, st.Col); err != nil {
			return err
		}
		if err := a.checkBlock(st.Then, path+"."+a.subBlock()); err != nil {
			return err
		}
		for _, arm := range st.Elifs {
			if err := a.checkCond(arm.Cond, arm.Line, 0); err != nil {
				return err
			}
			if err := a.checkBlock(arm.Body, path+"."+a.subBlock()); err != nil {
				return err
			}
		}
		return a.checkBlock(st.Else, path+"."+a.subBlock())
	case *LogicalIf:
		if err := a.checkCond(st.Cond, st.Line, st.Col); err != nil {
			return err
		}
		if _, nested := st.Then.(*LogicalIf); nested {
			return errf(st.Line, st.Col, "logical IF body cannot be another IF")
		}
		return a.checkStmt(st.Then, path)
	case *ArithIf:
		ty, err := a.typeOf(st.Expr)
		if err != nil {
			return errf(st.Line, st.Col, "%v", err)
		}
		if ty != TInt && ty != TReal {
			return errf(st.Line, st.Col, "arithmetic IF needs a numeric expression")
		}
		for _, t := range []int{st.OnNeg, st.OnZero, st.OnPos} {
			a.gotos = append(a.gotos, gotoRef{target: t, path: path, line: st.Line, col: st.Col})
		}
		return nil
	case *DoLoop:
		sym := a.lookup(st.Var)
		if sym.Kind != SymScalar || sym.Type != TInt {
			return errf(st.Line, st.Col, "DO variable %s must be an INTEGER scalar", st.Var)
		}
		for _, e := range []Expr{st.Lo, st.Hi, st.Step} {
			if e == nil {
				continue
			}
			ty, err := a.typeOf(e)
			if err != nil {
				return errf(st.Line, st.Col, "%v", err)
			}
			if ty != TInt {
				return errf(st.Line, st.Col, "DO bounds must be INTEGER")
			}
		}
		return a.checkBlock(st.Body, path+"."+a.subBlock())
	case *Goto:
		a.gotos = append(a.gotos, gotoRef{target: st.Target, path: path, line: st.Line, col: st.Col})
		return nil
	case *ComputedGoto:
		ty, err := a.typeOf(st.Expr)
		if err != nil {
			return errf(st.Line, st.Col, "%v", err)
		}
		if ty != TInt {
			return errf(st.Line, st.Col, "computed GOTO index must be INTEGER")
		}
		for _, t := range st.Targets {
			a.gotos = append(a.gotos, gotoRef{target: t, path: path, line: st.Line, col: st.Col})
		}
		return nil
	case *CallStmt:
		callee := a.prog.Unit(st.Name)
		if callee == nil || callee.IsMain {
			return errf(st.Line, st.Col, "CALL %s: no such subroutine", st.Name)
		}
		if len(st.Args) != len(callee.Params) {
			return errf(st.Line, st.Col, "CALL %s: %d arguments, subroutine takes %d",
				st.Name, len(st.Args), len(callee.Params))
		}
		for _, arg := range st.Args {
			if _, err := a.typeOf(arg); err != nil {
				return errf(st.Line, st.Col, "%v", err)
			}
		}
		return nil
	case *Return:
		if a.unit.IsMain {
			return errf(st.Line, st.Col, "RETURN in main program (use STOP or END)")
		}
		return nil
	case *StopStmt, *Continue:
		return nil
	case *Print:
		for _, e := range st.Items {
			if _, err := a.typeOf(e); err != nil {
				return errf(st.Line, st.Col, "%v", err)
			}
		}
		return nil
	}
	return errf(s.Pos(), s.Column(), "unhandled statement %T", s)
}

func (a *analyzer) checkCond(e Expr, line, col int) error {
	ty, err := a.typeOf(e)
	if err != nil {
		return errf(line, col, "%v", err)
	}
	if ty != TLogical {
		return errf(line, col, "IF condition must be LOGICAL, got %s", ty)
	}
	return nil
}

func (a *analyzer) checkAssign(st *Assign) error {
	var sym *Symbol
	switch lhs := st.LHS.(type) {
	case *Var:
		sym = a.lookup(lhs.Name)
		if sym.Kind == SymArray {
			return errf(st.Line, st.Col, "cannot assign to whole array %s", lhs.Name)
		}
	case *Index:
		sym = a.lookup(lhs.Name)
		if sym.Kind != SymArray {
			return errf(st.Line, st.Col, "%s is not an array", lhs.Name)
		}
		if len(lhs.Subs) != len(sym.Dims) {
			return errf(st.Line, st.Col, "%s has %d dimensions, indexed with %d",
				lhs.Name, len(sym.Dims), len(lhs.Subs))
		}
		for _, sub := range lhs.Subs {
			ty, err := a.typeOf(sub)
			if err != nil {
				return errf(st.Line, st.Col, "%v", err)
			}
			if ty != TInt {
				return errf(st.Line, st.Col, "array subscript must be INTEGER")
			}
		}
	default:
		return errf(st.Line, st.Col, "bad assignment target")
	}
	if sym.Kind == SymConst {
		return errf(st.Line, st.Col, "cannot assign to PARAMETER %s", sym.Name)
	}
	rty, err := a.typeOf(st.RHS)
	if err != nil {
		return errf(st.Line, st.Col, "%v", err)
	}
	lty := sym.Type
	if lty == TLogical != (rty == TLogical) {
		return errf(st.Line, st.Col, "cannot assign %s to %s variable", rty, lty)
	}
	return nil
}

// typeOf type-checks an expression and returns its type. Numeric operands
// promote INTEGER -> REAL.
func (a *analyzer) typeOf(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return TInt, nil
	case *RealLit:
		return TReal, nil
	case *LogLit:
		return TLogical, nil
	case *StrLit:
		return TNone, nil // only legal in PRINT; callers needing a value reject TNone
	case *Var:
		sym := a.lookup(x.Name)
		if sym.Kind == SymArray {
			// Whole-array reference: legal only as a CALL argument; typeOf
			// is also used there, so return the element type.
			return sym.Type, nil
		}
		return sym.Type, nil
	case *Index:
		sym := a.lookup(x.Name)
		if sym.Kind != SymArray {
			return TNone, fmt.Errorf("%s is not an array (or undeclared array use)", x.Name)
		}
		if len(x.Subs) != len(sym.Dims) {
			return TNone, fmt.Errorf("%s has %d dimensions, indexed with %d", x.Name, len(sym.Dims), len(x.Subs))
		}
		for _, sub := range x.Subs {
			ty, err := a.typeOf(sub)
			if err != nil {
				return TNone, err
			}
			if ty != TInt {
				return TNone, fmt.Errorf("subscript of %s must be INTEGER", x.Name)
			}
		}
		return sym.Type, nil
	case *Intrinsic:
		return a.typeOfIntrinsic(x)
	case *Un:
		ty, err := a.typeOf(x.X)
		if err != nil {
			return TNone, err
		}
		switch x.Op {
		case OpNot:
			if ty != TLogical {
				return TNone, fmt.Errorf(".NOT. needs a LOGICAL operand")
			}
			return TLogical, nil
		default:
			if ty != TInt && ty != TReal {
				return TNone, fmt.Errorf("unary %v needs a numeric operand", x.Op)
			}
			return ty, nil
		}
	case *Bin:
		lt, err := a.typeOf(x.L)
		if err != nil {
			return TNone, err
		}
		rt, err := a.typeOf(x.R)
		if err != nil {
			return TNone, err
		}
		switch {
		case x.Op.Logical():
			if lt != TLogical || rt != TLogical {
				return TNone, fmt.Errorf("%s needs LOGICAL operands", x.Op)
			}
			return TLogical, nil
		case x.Op.Relational():
			if !numeric(lt) || !numeric(rt) {
				return TNone, fmt.Errorf("%s needs numeric operands", x.Op)
			}
			return TLogical, nil
		default:
			if !numeric(lt) || !numeric(rt) {
				return TNone, fmt.Errorf("%s needs numeric operands", x.Op)
			}
			if lt == TReal || rt == TReal {
				return TReal, nil
			}
			return TInt, nil
		}
	}
	return TNone, fmt.Errorf("unhandled expression %T", e)
}

func numeric(t Type) bool { return t == TInt || t == TReal }

func (a *analyzer) typeOfIntrinsic(x *Intrinsic) (Type, error) {
	arity, ok := Intrinsics[x.Name]
	if !ok {
		return TNone, fmt.Errorf("unknown intrinsic %s", x.Name)
	}
	if arity >= 0 && len(x.Args) != arity {
		return TNone, fmt.Errorf("%s takes %d arguments, got %d", x.Name, arity, len(x.Args))
	}
	if arity < 0 && len(x.Args) < 2 {
		return TNone, fmt.Errorf("%s needs at least 2 arguments", x.Name)
	}
	var argTypes []Type
	for _, arg := range x.Args {
		ty, err := a.typeOf(arg)
		if err != nil {
			return TNone, err
		}
		if !numeric(ty) {
			return TNone, fmt.Errorf("%s argument must be numeric", x.Name)
		}
		argTypes = append(argTypes, ty)
	}
	switch x.Name {
	case "SQRT", "EXP", "LOG", "SIN", "COS", "REAL", "RAND":
		return TReal, nil
	case "INT", "IRAND":
		return TInt, nil
	case "ABS":
		return argTypes[0], nil
	case "MOD", "SIGN":
		if argTypes[0] == TReal || argTypes[1] == TReal {
			return TReal, nil
		}
		return TInt, nil
	case "MIN", "MAX":
		out := TInt
		for _, t := range argTypes {
			if t == TReal {
				out = TReal
			}
		}
		return out, nil
	}
	return TNone, fmt.Errorf("unhandled intrinsic %s", x.Name)
}

// foldConst evaluates a constant expression for PARAMETER definitions,
// compile-time trip counts and compile-time branch conditions. It supports
// literals, previously defined PARAMETER names, arithmetic, relational and
// logical operators.
func (a *analyzer) foldConst(e Expr) (any, Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, TInt, nil
	case *RealLit:
		return x.Val, TReal, nil
	case *LogLit:
		return x.Val, TLogical, nil
	case *Var:
		sym, ok := a.unit.Symbols[x.Name]
		if !ok || sym.Kind != SymConst {
			return nil, TNone, fmt.Errorf("%s is not a PARAMETER constant", x.Name)
		}
		return sym.ConstValue, sym.Type, nil
	case *Un:
		v, ty, err := a.foldConst(x.X)
		if err != nil {
			return nil, TNone, err
		}
		switch x.Op {
		case OpNeg:
			if i, ok := v.(int64); ok {
				return -i, ty, nil
			}
			return -v.(float64), ty, nil
		case OpPlus:
			return v, ty, nil
		case OpNot:
			if b, ok := v.(bool); ok {
				return !b, TLogical, nil
			}
		}
		return nil, TNone, fmt.Errorf("cannot fold unary operator")
	case *Bin:
		lv, lt, err := a.foldConst(x.L)
		if err != nil {
			return nil, TNone, err
		}
		rv, rt, err := a.foldConst(x.R)
		if err != nil {
			return nil, TNone, err
		}
		if x.Op.Logical() {
			lb, lok := lv.(bool)
			rb, rok := rv.(bool)
			if !lok || !rok {
				return nil, TNone, fmt.Errorf("%s needs LOGICAL constants", x.Op)
			}
			switch x.Op {
			case OpAnd:
				return lb && rb, TLogical, nil
			case OpOr:
				return lb || rb, TLogical, nil
			case OpEqv:
				return lb == rb, TLogical, nil
			case OpNeqv:
				return lb != rb, TLogical, nil
			}
		}
		if x.Op.Relational() {
			if lt == TLogical || rt == TLogical {
				return nil, TNone, fmt.Errorf("%s needs numeric constants", x.Op)
			}
			l, r := toF(lv), toF(rv)
			switch x.Op {
			case OpLT:
				return l < r, TLogical, nil
			case OpLE:
				return l <= r, TLogical, nil
			case OpGT:
				return l > r, TLogical, nil
			case OpGE:
				return l >= r, TLogical, nil
			case OpEQ:
				return l == r, TLogical, nil
			default:
				return l != r, TLogical, nil
			}
		}
		if lt == TInt && rt == TInt {
			l, r := lv.(int64), rv.(int64)
			switch x.Op {
			case OpAdd:
				return l + r, TInt, nil
			case OpSub:
				return l - r, TInt, nil
			case OpMul:
				return l * r, TInt, nil
			case OpDiv:
				if r == 0 {
					return nil, TNone, fmt.Errorf("division by zero in constant")
				}
				return l / r, TInt, nil
			case OpPow:
				if r < 0 {
					return nil, TNone, fmt.Errorf("negative integer exponent in constant")
				}
				out := int64(1)
				for i := int64(0); i < r; i++ {
					out *= l
				}
				return out, TInt, nil
			}
			return nil, TNone, fmt.Errorf("cannot fold operator %s", x.Op)
		}
		l, r := toF(lv), toF(rv)
		switch x.Op {
		case OpAdd:
			return l + r, TReal, nil
		case OpSub:
			return l - r, TReal, nil
		case OpMul:
			return l * r, TReal, nil
		case OpDiv:
			if r == 0 {
				return nil, TNone, fmt.Errorf("division by zero in constant")
			}
			return l / r, TReal, nil
		case OpPow:
			return math.Pow(l, r), TReal, nil
		}
		return nil, TNone, fmt.Errorf("cannot fold operator %s", x.Op)
	}
	return nil, TNone, fmt.Errorf("not a constant expression: %s", e)
}

func toF(v any) float64 {
	if i, ok := v.(int64); ok {
		return float64(i)
	}
	return v.(float64)
}

// FoldInt folds e to an integer constant using unit u's PARAMETER table.
// It returns (value, true) on success. The profiler uses it to detect DO
// loops with compile-time-constant trip counts (third optimization).
func FoldInt(u *Unit, e Expr) (int64, bool) {
	a := &analyzer{unit: u}
	v, ty, err := a.foldConst(e)
	if err != nil || ty != TInt {
		return 0, false
	}
	i, ok := v.(int64)
	return i, ok
}

// FoldLogical folds e to a LOGICAL constant using unit u's PARAMETER table.
// It returns (value, true) on success. The static frequency analysis uses
// it to resolve compile-time IF conditions (the paper's "an IF condition
// that can be computed at compile-time").
func FoldLogical(u *Unit, e Expr) (bool, bool) {
	a := &analyzer{unit: u}
	v, ty, err := a.foldConst(e)
	if err != nil || ty != TLogical {
		return false, false
	}
	b, ok := v.(bool)
	return b, ok
}
