package lang

import (
	"strings"
	"testing"
)

func semaErr(t *testing.T, body, want string) {
	t.Helper()
	_, err := Parse(wrap(body))
	if err == nil {
		t.Fatalf("expected error containing %q for:\n%s", want, body)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error = %v, want substring %q", err, want)
	}
}

func TestImplicitTyping(t *testing.T) {
	u := parseBody(t, `      I = 1
      X = 1.5
      NUM = 2
      AVG = 0.5
`)
	cases := map[string]Type{"I": TInt, "X": TReal, "NUM": TInt, "AVG": TReal}
	for name, want := range cases {
		sym := u.Symbols[name]
		if sym == nil || sym.Type != want {
			t.Errorf("%s: %+v, want %v", name, sym, want)
		}
	}
}

func TestDuplicateChecks(t *testing.T) {
	semaErr(t, "      INTEGER I\n      INTEGER I\n      I = 1\n", "duplicate declaration")
	semaErr(t, "      PARAMETER (N = 1)\n      PARAMETER (N = 2)\n      X = 1\n", "duplicate name")
	semaErr(t, "   10 CONTINUE\n   10 CONTINUE\n", "duplicate statement label")
}

func TestTypedParameterBothOrders(t *testing.T) {
	for _, body := range []string{
		"      INTEGER N\n      PARAMETER (N = 4)\n      X = N\n",
		"      PARAMETER (N = 4)\n      INTEGER N\n      X = N\n",
	} {
		u := parseBody(t, body)
		sym := u.Symbols["N"]
		if sym.Kind != SymConst || sym.Type != TInt || sym.ConstValue.(int64) != 4 {
			t.Errorf("N: %+v for body:\n%s", sym, body)
		}
	}
}

func TestGotoChecks(t *testing.T) {
	semaErr(t, "      GOTO 99\n", "no such label")
	// Jump INTO a block is illegal...
	semaErr(t, `      GOTO 10
      IF (1 .GT. 0) THEN
   10    X = 1
      ENDIF
`, "jumps into a nested block")
	// ... but jumping OUT is fine.
	if _, err := Parse(wrap(`      INTEGER I
      DO 20 I = 1, 3
         IF (I .GT. 1) GOTO 30
   20 CONTINUE
   30 CONTINUE
`)); err != nil {
		t.Errorf("jump out of a loop must be legal: %v", err)
	}
}

func TestTypeChecks(t *testing.T) {
	semaErr(t, "      INTEGER I\n      IF (I) THEN\n      ENDIF\n", "must be LOGICAL")
	semaErr(t, "      LOGICAL L\n      X = L + 1\n", "needs numeric operands")
	semaErr(t, "      LOGICAL L\n      L = 1 .AND. 2\n", "needs LOGICAL operands")
	semaErr(t, "      INTEGER I\n      I = .TRUE.\n", "cannot assign LOGICAL")
	semaErr(t, "      LOGICAL L\n      L = 1\n", "cannot assign INTEGER")
	semaErr(t, "      REAL X\n      DO 10 X = 1, 5\n   10 CONTINUE\n", "must be an INTEGER scalar")
	semaErr(t, "      REAL X\n      DO 10 I = 1.0, 5\n   10 CONTINUE\n", "DO bounds must be INTEGER")
	semaErr(t, "      LOGICAL L\n      IF (L) 1, 2, 3\n    1 CONTINUE\n    2 CONTINUE\n    3 CONTINUE\n", "needs a numeric expression")
	semaErr(t, "      LOGICAL L\n      GOTO (10, 20), L\n   10 CONTINUE\n   20 CONTINUE\n", "must be INTEGER")
}

func TestArrayChecks(t *testing.T) {
	semaErr(t, "      REAL A(10)\n      X = A(1, 2)\n", "1 dimensions, indexed with 2")
	semaErr(t, "      REAL A(10)\n      A(1.5) = 0.0\n", "must be INTEGER")
	semaErr(t, "      X = B(3)\n", "not an array")
	semaErr(t, "      REAL A(10)\n      A = 0.0\n", "whole array")
	semaErr(t, "      REAL A(2.5)\n      X = 1\n", "must be INTEGER")
	semaErr(t, "      REAL MOD(5)\n      X = 1\n", "intrinsic")
}

func TestParameterChecks(t *testing.T) {
	semaErr(t, "      PARAMETER (N = 1)\n      N = 2\n", "cannot assign to PARAMETER")
	semaErr(t, "      PARAMETER (N = 1/0)\n      X = 1\n", "division by zero")
	semaErr(t, "      PARAMETER (N = X)\n      X = 1\n", "not a PARAMETER constant")
}

func TestCallChecks(t *testing.T) {
	src := `      PROGRAM P
      CALL S(1)
      END
      SUBROUTINE S(A, B)
      RETURN
      END
`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "1 arguments, subroutine takes 2") {
		t.Errorf("arity check: %v", err)
	}
	semaErr(t, "      RETURN\n", "RETURN in main program")
	// CALL to the main program is also rejected.
	src2 := `      PROGRAM P
      CALL P
      END
`
	if _, err := Parse(src2); err == nil || !strings.Contains(err.Error(), "no such subroutine") {
		t.Errorf("call-to-main check: %v", err)
	}
}

func TestProgramStructureChecks(t *testing.T) {
	twoMains := `      PROGRAM A
      END
      PROGRAM B
      END
`
	if _, err := Parse(twoMains); err == nil || !strings.Contains(err.Error(), "exactly one PROGRAM") {
		t.Errorf("two mains: %v", err)
	}
	dup := `      PROGRAM A
      END
      SUBROUTINE A
      RETURN
      END
`
	if _, err := Parse(dup); err == nil || !strings.Contains(err.Error(), "duplicate program unit") {
		t.Errorf("duplicate unit: %v", err)
	}
}

func TestIntrinsicArity(t *testing.T) {
	semaErr(t, "      X = SQRT(1.0, 2.0)\n", "takes 1 arguments")
	semaErr(t, "      X = MIN(1.0)\n", "at least 2")
	semaErr(t, "      LOGICAL L\n      X = SQRT(L)\n", "must be numeric")
}

func TestFoldIntAndLogical(t *testing.T) {
	u := parseBody(t, `      PARAMETER (N = 6, M = 2)
      X = 1
`)
	cases := []struct {
		expr string
		want int64
	}{
		{"N", 6}, {"N*M", 12}, {"N/M", 3}, {"N-M", 4}, {"N**M", 36}, {"-N", -6}, {"MOD(N, M) + 1", 0}, // MOD not foldable: want flag false
	}
	for _, c := range cases[:6] {
		e := parseExprString(t, c.expr)
		got, ok := FoldInt(u, e)
		if !ok || got != c.want {
			t.Errorf("FoldInt(%s) = %d, %v; want %d", c.expr, got, ok, c.want)
		}
	}
	if _, ok := FoldInt(u, parseExprString(t, "MOD(N, M)")); ok {
		t.Error("intrinsics must not fold")
	}
	if _, ok := FoldInt(u, parseExprString(t, "X")); ok {
		t.Error("variables must not fold")
	}

	logical := []struct {
		expr string
		want bool
	}{
		{"N .GT. M", true}, {"N .LT. M", false}, {".TRUE. .AND. N .EQ. 6", true},
		{".NOT. (M .GE. N)", true}, {"N .EQ. 6 .OR. X .GT. 0", false}, // second operand unfoldable
	}
	for _, c := range logical[:4] {
		e := parseExprString(t, c.expr)
		got, ok := FoldLogical(u, e)
		if !ok || got != c.want {
			t.Errorf("FoldLogical(%s) = %v, %v; want %v", c.expr, got, ok, c.want)
		}
	}
	if _, ok := FoldLogical(u, parseExprString(t, "N .EQ. 6 .OR. X .GT. 0")); ok {
		t.Error("expressions over variables must not fold")
	}
}

func parseExprString(t *testing.T, src string) Expr {
	t.Helper()
	lines, err := Lex("      JUNK = " + src + "\n")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTokens(lines[0])
	ts.next() // JUNK
	ts.next() // =
	e, err := ts.parseExpr()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestWalkVisitsNestedBodies(t *testing.T) {
	u := parseBody(t, `      INTEGER I
      DO 10 I = 1, 2
         IF (I .GT. 0) THEN
            X = 1.0
         ELSE
            X = 2.0
         ENDIF
         IF (I .GT. 1) X = 3.0
   10 CONTINUE
`)
	var assigns int
	Walk(u.Body, func(s Stmt) {
		if _, ok := s.(*Assign); ok {
			assigns++
		}
	})
	if assigns != 3 {
		t.Errorf("Walk saw %d assignments, want 3", assigns)
	}
}
