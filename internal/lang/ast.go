package lang

import (
	"fmt"
	"strings"
)

// Type is a data type of the subset.
type Type int

// Data types. TInt maps to Go int64, TReal to float64, TLogical to bool.
const (
	TNone Type = iota
	TInt
	TReal
	TLogical
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TReal:
		return "REAL"
	case TLogical:
		return "LOGICAL"
	}
	return "NONE"
}

// Program is a whole compilation unit: one PROGRAM plus any SUBROUTINEs.
type Program struct {
	Units []*Unit
}

// Unit returns the named program unit, or nil.
func (p *Program) Unit(name string) *Unit {
	for _, u := range p.Units {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// Main returns the PROGRAM unit, or nil.
func (p *Program) Main() *Unit {
	for _, u := range p.Units {
		if u.IsMain {
			return u
		}
	}
	return nil
}

// Unit is one program unit: the main PROGRAM or a SUBROUTINE.
type Unit struct {
	Name   string
	IsMain bool
	Params []string
	Decls  []*Decl
	Consts []*Const
	Body   []Stmt

	// Symbols is filled by semantic analysis.
	Symbols map[string]*Symbol
}

// Decl declares one or more names with a type and optional array bounds.
type Decl struct {
	Type  Type
	Items []DeclItem
	Line  int
	Col   int
}

// DeclItem is one declared name; Dims is nil for scalars. Each dimension is
// an expression that must fold to a positive constant at unit entry
// (parameters are allowed, e.g. A(N) inside a subroutine).
type DeclItem struct {
	Name string
	Dims []Expr
}

// Const is a PARAMETER (NAME = constant-expression) definition.
type Const struct {
	Name  string
	Value Expr
	Line  int
	Col   int
}

// SymbolKind distinguishes what a name denotes.
type SymbolKind int

// Symbol kinds.
const (
	SymScalar SymbolKind = iota
	SymArray
	SymConst
)

// Symbol is the semantic information for one name in a unit.
type Symbol struct {
	Name    string
	Kind    SymbolKind
	Type    Type
	Dims    []Expr // arrays: one extent expression per dimension
	IsParam bool   // appears in the SUBROUTINE parameter list
	// ConstValue holds the folded PARAMETER value (IntVal or RealVal).
	ConstValue any
}

// ---------------------------------------------------------------------------
// Statements. Every statement carries its source line and optional label.

// Stmt is any executable statement.
type Stmt interface {
	stmtNode()
	// Pos returns the physical source line.
	Pos() int
	// Column returns the 1-based column of the statement's first token
	// (0 when unknown, e.g. for synthesized statements).
	Column() int
	// Lab returns the numeric statement label (0 if none).
	Lab() int
	// Text renders the statement head the way Figure 1 labels CFG nodes,
	// e.g. "IF (M.GE.0)" — block bodies are not included.
	Text() string
}

// StmtBase carries position and label for all statements.
type StmtBase struct {
	Line  int
	Col   int
	Label int
}

func (s StmtBase) Pos() int    { return s.Line }
func (s StmtBase) Column() int { return s.Col }
func (s StmtBase) Lab() int    { return s.Label }

// Assign is "lhs = rhs"; LHS is a Var or Index expression.
type Assign struct {
	StmtBase
	LHS Expr
	RHS Expr
}

// IfBlock is a block IF with zero or more ELSEIF arms and an optional ELSE.
type IfBlock struct {
	StmtBase
	Cond Expr
	Then []Stmt
	// Elifs are the ELSE IF arms in order.
	Elifs []ElifArm
	Else  []Stmt
}

// ElifArm is one ELSE IF (cond) THEN arm.
type ElifArm struct {
	Cond Expr
	Line int
	Body []Stmt
}

// LogicalIf is "IF (cond) stmt" with a single-statement body.
type LogicalIf struct {
	StmtBase
	Cond Expr
	Then Stmt
}

// ArithIf is the three-way arithmetic IF: "IF (e) l1, l2, l3" branching on
// the sign of e (negative, zero, positive).
type ArithIf struct {
	StmtBase
	Expr                 Expr
	OnNeg, OnZero, OnPos int
}

// DoLoop is a counted DO loop: "DO [label] var = lo, hi [, step]". The body
// is the statements up to the matching terminator (labelled statement or
// ENDDO), terminator included when it is a labelled CONTINUE.
type DoLoop struct {
	StmtBase
	Var      string
	Lo, Hi   Expr
	Step     Expr // nil means 1
	EndLabel int  // 0 for DO/ENDDO form
	Body     []Stmt
}

// Goto is an unconditional GOTO.
type Goto struct {
	StmtBase
	Target int
}

// ComputedGoto is "GOTO (l1, ..., lk), e": jumps to the e-th label; falls
// through when e is out of range.
type ComputedGoto struct {
	StmtBase
	Targets []int
	Expr    Expr
}

// CallStmt is "CALL name(args)".
type CallStmt struct {
	StmtBase
	Name string
	Args []Expr
}

// Return is RETURN (subroutines only).
type Return struct{ StmtBase }

// StopStmt is STOP: terminates the whole program.
type StopStmt struct{ StmtBase }

// Continue is CONTINUE: a no-op, usually a branch target.
type Continue struct{ StmtBase }

// Print is "PRINT *, items".
type Print struct {
	StmtBase
	Items []Expr
}

func (*Assign) stmtNode()       {}
func (*IfBlock) stmtNode()      {}
func (*LogicalIf) stmtNode()    {}
func (*ArithIf) stmtNode()      {}
func (*DoLoop) stmtNode()       {}
func (*Goto) stmtNode()         {}
func (*ComputedGoto) stmtNode() {}
func (*CallStmt) stmtNode()     {}
func (*Return) stmtNode()       {}
func (*StopStmt) stmtNode()     {}
func (*Continue) stmtNode()     {}
func (*Print) stmtNode()        {}

func (s *Assign) Text() string { return fmt.Sprintf("%s = %s", s.LHS, s.RHS) }
func (s *IfBlock) Text() string {
	return fmt.Sprintf("IF (%s) THEN", s.Cond)
}
func (s *LogicalIf) Text() string {
	return fmt.Sprintf("IF (%s) %s", s.Cond, s.Then.Text())
}
func (s *ArithIf) Text() string {
	return fmt.Sprintf("IF (%s) %d,%d,%d", s.Expr, s.OnNeg, s.OnZero, s.OnPos)
}
func (s *DoLoop) Text() string {
	step := ""
	if s.Step != nil {
		step = fmt.Sprintf(",%s", s.Step)
	}
	return fmt.Sprintf("DO %s = %s,%s%s", s.Var, s.Lo, s.Hi, step)
}
func (s *Goto) Text() string { return fmt.Sprintf("GOTO %d", s.Target) }
func (s *ComputedGoto) Text() string {
	parts := make([]string, len(s.Targets))
	for i, t := range s.Targets {
		parts[i] = fmt.Sprintf("%d", t)
	}
	return fmt.Sprintf("GOTO (%s), %s", strings.Join(parts, ","), s.Expr)
}
func (s *CallStmt) Text() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("CALL %s(%s)", s.Name, strings.Join(args, ","))
}
func (s *Return) Text() string   { return "RETURN" }
func (s *StopStmt) Text() string { return "STOP" }
func (s *Continue) Text() string { return "CONTINUE" }
func (s *Print) Text() string    { return "PRINT *" }

// ---------------------------------------------------------------------------
// Expressions.

// Expr is any expression. String renders source-like text.
type Expr interface {
	exprNode()
	String() string
}

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// RealLit is a real literal.
type RealLit struct{ Val float64 }

// LogLit is .TRUE. or .FALSE..
type LogLit struct{ Val bool }

// StrLit is a character literal (PRINT only).
type StrLit struct{ Val string }

// Var references a scalar variable (or whole array in a CALL argument).
type Var struct{ Name string }

// Index references an array element: Name(Subs...).
type Index struct {
	Name string
	Subs []Expr
}

// Intrinsic is a call to a builtin function: ABS, MOD, MIN, MAX, SQRT, EXP,
// LOG, SIN, COS, INT, REAL, RAND, IRAND.
type Intrinsic struct {
	Name string
	Args []Expr
}

// BinOp identifies a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpPow
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
	OpEqv
	OpNeqv
)

var binOpText = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpPow: "**",
	OpLT: ".LT.", OpLE: ".LE.", OpGT: ".GT.", OpGE: ".GE.", OpEQ: ".EQ.", OpNE: ".NE.",
	OpAnd: ".AND.", OpOr: ".OR.", OpEqv: ".EQV.", OpNeqv: ".NEQV.",
}

func (op BinOp) String() string { return binOpText[op] }

// Relational reports whether op compares two numeric operands.
func (op BinOp) Relational() bool { return op >= OpLT && op <= OpNE }

// Logical reports whether op combines two logical operands.
func (op BinOp) Logical() bool { return op >= OpAnd }

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// UnOp identifies a unary operator.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota
	OpNot
	OpPlus
)

// Un is a unary expression.
type Un struct {
	Op UnOp
	X  Expr
}

func (*IntLit) exprNode()    {}
func (*RealLit) exprNode()   {}
func (*LogLit) exprNode()    {}
func (*StrLit) exprNode()    {}
func (*Var) exprNode()       {}
func (*Index) exprNode()     {}
func (*Intrinsic) exprNode() {}
func (*Bin) exprNode()       {}
func (*Un) exprNode()        {}

func (e *IntLit) String() string  { return fmt.Sprintf("%d", e.Val) }
func (e *RealLit) String() string { return fmt.Sprintf("%g", e.Val) }
func (e *LogLit) String() string {
	if e.Val {
		return ".TRUE."
	}
	return ".FALSE."
}
func (e *StrLit) String() string { return fmt.Sprintf("'%s'", e.Val) }
func (e *Var) String() string    { return e.Name }
func (e *Index) String() string {
	subs := make([]string, len(e.Subs))
	for i, s := range e.Subs {
		subs[i] = s.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(subs, ","))
}
func (e *Intrinsic) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ","))
}
func (e *Bin) String() string {
	op := binOpText[e.Op]
	if e.Op == OpAdd || e.Op == OpSub || e.Op == OpMul || e.Op == OpDiv || e.Op == OpPow {
		return fmt.Sprintf("%s%s%s", e.L, op, e.R)
	}
	return fmt.Sprintf("%s%s%s", e.L, op, e.R)
}
func (e *Un) String() string {
	switch e.Op {
	case OpNeg:
		return fmt.Sprintf("-%s", e.X)
	case OpNot:
		return fmt.Sprintf(".NOT.%s", e.X)
	}
	return fmt.Sprintf("+%s", e.X)
}

// Intrinsics lists the builtin functions with their arity (-1 = variadic,
// at least two).
var Intrinsics = map[string]int{
	"ABS": 1, "MOD": 2, "MIN": -1, "MAX": -1, "SQRT": 1, "EXP": 1,
	"LOG": 1, "SIN": 1, "COS": 1, "INT": 1, "REAL": 1, "SIGN": 2,
	"RAND": 0, "IRAND": 1,
}

// Walk visits every statement in body depth-first, pre-order, calling fn
// for each. Nested bodies (IF arms, DO bodies, logical-IF targets) are
// included.
func Walk(body []Stmt, fn func(Stmt)) {
	for _, s := range body {
		fn(s)
		switch st := s.(type) {
		case *IfBlock:
			Walk(st.Then, fn)
			for _, a := range st.Elifs {
				Walk(a.Body, fn)
			}
			Walk(st.Else, fn)
		case *LogicalIf:
			Walk([]Stmt{st.Then}, fn)
		case *DoLoop:
			Walk(st.Body, fn)
		}
	}
}
