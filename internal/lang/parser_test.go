package lang

import (
	"strings"
	"testing"
)

// wrap builds a minimal program around body statements.
func wrap(body string) string {
	return "      PROGRAM T\n" + body + "      END\n"
}

func parseBody(t *testing.T, body string) *Unit {
	t.Helper()
	prog, err := Parse(wrap(body))
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, wrap(body))
	}
	return prog.Main()
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("Parse succeeded, want error containing %q\nsource:\n%s", wantSub, src)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error = %v, want substring %q", err, wantSub)
	}
}

func TestParseUnits(t *testing.T) {
	prog, err := Parse(`      PROGRAM MAIN
      CALL S(1)
      END
      SUBROUTINE S(I)
      INTEGER I
      RETURN
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Units) != 2 || !prog.Units[0].IsMain || prog.Units[1].Name != "S" {
		t.Fatalf("units wrong: %+v", prog.Units)
	}
	if prog.Unit("S") == nil || prog.Unit("NOPE") != nil {
		t.Error("Unit lookup wrong")
	}
	if len(prog.Units[1].Params) != 1 || prog.Units[1].Params[0] != "I" {
		t.Errorf("params = %v", prog.Units[1].Params)
	}
}

func TestParseDeclarations(t *testing.T) {
	u := parseBody(t, `      INTEGER I, J
      REAL A(10), B(5,5)
      LOGICAL FLAG
      DIMENSION C(7)
      PARAMETER (N = 100, M = N*2)
      I = 1
`)
	if u.Symbols["A"].Kind != SymArray || len(u.Symbols["A"].Dims) != 1 {
		t.Errorf("A: %+v", u.Symbols["A"])
	}
	if u.Symbols["B"].Kind != SymArray || len(u.Symbols["B"].Dims) != 2 {
		t.Errorf("B: %+v", u.Symbols["B"])
	}
	if u.Symbols["FLAG"].Type != TLogical {
		t.Errorf("FLAG: %+v", u.Symbols["FLAG"])
	}
	// DIMENSION with implicit typing: C is REAL.
	if u.Symbols["C"].Kind != SymArray || u.Symbols["C"].Type != TReal {
		t.Errorf("C: %+v", u.Symbols["C"])
	}
	if u.Symbols["N"].Kind != SymConst || u.Symbols["N"].ConstValue.(int64) != 100 {
		t.Errorf("N: %+v", u.Symbols["N"])
	}
	if u.Symbols["M"].ConstValue.(int64) != 200 {
		t.Errorf("M: %+v", u.Symbols["M"])
	}
}

func TestParseIfForms(t *testing.T) {
	u := parseBody(t, `      INTEGER I
      I = 0
      IF (I .GT. 0) THEN
         I = 1
      ELSE IF (I .LT. 0) THEN
         I = 2
      ELSEIF (I .EQ. 0) THEN
         I = 3
      ELSE
         I = 4
      ENDIF
      IF (I .GT. 2) I = 5
      IF (I - 3) 10, 20, 30
   10 CONTINUE
   20 CONTINUE
   30 CONTINUE
`)
	var blk *IfBlock
	var lif *LogicalIf
	var aif *ArithIf
	Walk(u.Body, func(s Stmt) {
		switch x := s.(type) {
		case *IfBlock:
			if blk == nil {
				blk = x
			}
		case *LogicalIf:
			lif = x
		case *ArithIf:
			aif = x
		}
	})
	if blk == nil || len(blk.Elifs) != 2 || blk.Else == nil {
		t.Fatalf("block IF parsed wrong: %+v", blk)
	}
	if lif == nil {
		t.Fatal("logical IF missing")
	}
	if aif == nil || aif.OnNeg != 10 || aif.OnZero != 20 || aif.OnPos != 30 {
		t.Fatalf("arith IF: %+v", aif)
	}
}

func TestParseDoForms(t *testing.T) {
	u := parseBody(t, `      INTEGER I, J, S
      S = 0
      DO 10 I = 1, 10, 2
         S = S + I
   10 CONTINUE
      DO J = 1, 3
         S = S - 1
      ENDDO
`)
	var labelled, enddo *DoLoop
	Walk(u.Body, func(s Stmt) {
		if d, ok := s.(*DoLoop); ok {
			if d.EndLabel != 0 {
				labelled = d
			} else {
				enddo = d
			}
		}
	})
	if labelled == nil || labelled.Step == nil || labelled.EndLabel != 10 {
		t.Fatalf("labelled DO: %+v", labelled)
	}
	if len(labelled.Body) != 2 { // S=S+I and the terminating CONTINUE
		t.Errorf("labelled DO body = %d stmts", len(labelled.Body))
	}
	if enddo == nil || enddo.Var != "J" || enddo.Step != nil {
		t.Fatalf("ENDDO DO: %+v", enddo)
	}
}

func TestParseSharedDoTerminator(t *testing.T) {
	u := parseBody(t, `      INTEGER I, J, S
      S = 0
      DO 10 I = 1, 3
      DO 10 J = 1, 3
      S = S + 1
   10 CONTINUE
`)
	var outer *DoLoop
	for _, s := range u.Body {
		if d, ok := s.(*DoLoop); ok {
			outer = d
		}
	}
	if outer == nil {
		t.Fatal("no outer DO")
	}
	inner, ok := outer.Body[0].(*DoLoop)
	if !ok {
		t.Fatalf("outer body[0] = %T", outer.Body[0])
	}
	if inner.EndLabel != 10 || outer.EndLabel != 10 {
		t.Errorf("labels: outer %d inner %d", outer.EndLabel, inner.EndLabel)
	}
	// The terminating CONTINUE lives in the inner body.
	last := inner.Body[len(inner.Body)-1]
	if _, ok := last.(*Continue); !ok || last.Lab() != 10 {
		t.Errorf("inner terminator: %T label %d", last, last.Lab())
	}
}

func TestParseGotoForms(t *testing.T) {
	u := parseBody(t, `      INTEGER I
      I = 1
      GOTO 10
   10 CONTINUE
      GO TO 20
   20 CONTINUE
      GOTO (30, 40), I
   30 CONTINUE
   40 CONTINUE
`)
	var gotos, computed int
	Walk(u.Body, func(s Stmt) {
		switch s.(type) {
		case *Goto:
			gotos++
		case *ComputedGoto:
			computed++
		}
	})
	if gotos != 2 || computed != 1 {
		t.Errorf("gotos = %d, computed = %d", gotos, computed)
	}
}

func TestParseExpressionsPrecedence(t *testing.T) {
	u := parseBody(t, "      X = 1.0 + 2.0*3.0**2.0\n")
	asg := u.Body[0].(*Assign)
	// 1 + (2 * (3**2)); top is +.
	top, ok := asg.RHS.(*Bin)
	if !ok || top.Op != OpAdd {
		t.Fatalf("top = %v", asg.RHS)
	}
	mul, ok := top.R.(*Bin)
	if !ok || mul.Op != OpMul {
		t.Fatalf("rhs of + = %v", top.R)
	}
	pow, ok := mul.R.(*Bin)
	if !ok || pow.Op != OpPow {
		t.Fatalf("rhs of * = %v", mul.R)
	}
}

func TestParsePowerRightAssociative(t *testing.T) {
	u := parseBody(t, "      X = 2.0**3.0**2.0\n")
	top := u.Body[0].(*Assign).RHS.(*Bin)
	if top.Op != OpPow {
		t.Fatal("top not **")
	}
	if inner, ok := top.R.(*Bin); !ok || inner.Op != OpPow {
		t.Fatalf("** must be right associative: %v", u.Body[0].(*Assign).RHS)
	}
}

func TestParseUnaryMinusBindsBelowPower(t *testing.T) {
	// -A**2 parses as -(A**2).
	u := parseBody(t, "      X = -2.0**2.0\n")
	un, ok := u.Body[0].(*Assign).RHS.(*Un)
	if !ok || un.Op != OpNeg {
		t.Fatalf("top = %v", u.Body[0].(*Assign).RHS)
	}
	if inner, ok := un.X.(*Bin); !ok || inner.Op != OpPow {
		t.Fatalf("-A**2 must be -(A**2): %v", un.X)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	// A.LT.B .AND. .NOT. C.GT.D .OR. E.EQ.F parses as ((A<B && !(C>D)) || E==F).
	u := parseBody(t, "      LOGICAL Q\n      Q = 1.0.LT.2.0 .AND. .NOT. 3.0.GT.4.0 .OR. 5.0.EQ.6.0\n")
	top := u.Body[0].(*Assign).RHS.(*Bin)
	if top.Op != OpOr {
		t.Fatalf("top = %v", top.Op)
	}
	l, ok := top.L.(*Bin)
	if !ok || l.Op != OpAnd {
		t.Fatalf("lhs of .OR. = %v", top.L)
	}
}

func TestParseIntrinsicVsArray(t *testing.T) {
	u := parseBody(t, `      REAL A(10)
      X = MOD(3, 2) + A(1) + REAL(7)
`)
	asg := u.Body[0].(*Assign)
	var intr, idx int
	var walkE func(e Expr)
	walkE = func(e Expr) {
		switch x := e.(type) {
		case *Bin:
			walkE(x.L)
			walkE(x.R)
		case *Intrinsic:
			intr++
		case *Index:
			idx++
		}
	}
	walkE(asg.RHS)
	if intr != 2 || idx != 1 {
		t.Errorf("intrinsics = %d, indexes = %d, want 2, 1", intr, idx)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"      X = 1\n", "expected PROGRAM or SUBROUTINE"},
		{"      PROGRAM P\n      X = 1\n", "missing END"},
		{"      PROGRAM P\n      IF (1 .GT. 0) THEN\n      END\n", "no matching ENDIF"},
		{"      PROGRAM P\n      DO 10 I = 1, 3\n      END\n", "unexpected END inside DO 10"},
		{"      PROGRAM P\n      DO 10 I = 1, 3\n      X = 1\n", "DO loop has no statement labelled 10"},
		{"      PROGRAM P\n      DO I = 1, 3\n      END\n", "unexpected END"},
		{"      PROGRAM P\n      ENDIF\n      END\n", "unexpected ENDIF"},
		{"      PROGRAM P\n      X = \n      END\n", "unexpected"},
		{"      PROGRAM P\n      X = (1\n      END\n", "expected ')'"},
		{"      PROGRAM P\n      GOTO X\n      END\n", "expected statement label"},
		{"      PROGRAM P\n      IF (1 .GT. 0) IF (2 .GT. 0) X = 1\n      END\n", "logical IF body"},
		{"      PROGRAM P\n      PRINT 'fmt', X\n      END\n", "list-directed"},
		{"", "empty source"},
	}
	for _, c := range cases {
		parseErr(t, c.src, c.want)
	}
}

func TestParseStopForms(t *testing.T) {
	u := parseBody(t, `      STOP
`)
	if _, ok := u.Body[0].(*StopStmt); !ok {
		t.Fatalf("STOP parsed as %T", u.Body[0])
	}
	u = parseBody(t, "      STOP 1\n")
	if _, ok := u.Body[0].(*StopStmt); !ok {
		t.Fatalf("STOP 1 parsed as %T", u.Body[0])
	}
	u = parseBody(t, "      STOP 'done'\n")
	if _, ok := u.Body[0].(*StopStmt); !ok {
		t.Fatalf("STOP 'done' parsed as %T", u.Body[0])
	}
}

func TestStmtTextRendering(t *testing.T) {
	// ParseNoSema: the CALL target intentionally doesn't exist — only the
	// Text renderings matter here (they drive CFG node names).
	prog, err := ParseNoSema(wrap(`      INTEGER I
      I = 1 + 2
      IF (I .GT. 0) GOTO 10
   10 CONTINUE
      CALL FOO(I)
      DO 20 I = 1, 5
   20 CONTINUE
`))
	if err != nil {
		t.Fatal(err)
	}
	texts := map[string]bool{}
	Walk(prog.Main().Body, func(s Stmt) { texts[s.Text()] = true })
	for _, want := range []string{"I = 1+2", "IF (I.GT.0) GOTO 10", "CONTINUE", "CALL FOO(I)", "DO I = 1,5"} {
		if !texts[want] {
			t.Errorf("missing rendering %q in %v", want, texts)
		}
	}
}

func TestParseNoSemaSkipsChecks(t *testing.T) {
	// CALL to a missing subroutine parses, fails only in sema.
	src := wrap("      CALL NOSUCH(1)\n")
	if _, err := ParseNoSema(src); err != nil {
		t.Fatalf("ParseNoSema: %v", err)
	}
	parseErr(t, src, "no such subroutine")
}

func TestParseWriteStatement(t *testing.T) {
	u := parseBody(t, `      WRITE(*,*) 1, 2.5, 'text'
      WRITE(*,*)
`)
	pr, ok := u.Body[0].(*Print)
	if !ok || len(pr.Items) != 3 {
		t.Fatalf("WRITE parsed as %T with %d items", u.Body[0], len(pr.Items))
	}
	if pr2, ok := u.Body[1].(*Print); !ok || len(pr2.Items) != 0 {
		t.Fatalf("bare WRITE parsed as %T", u.Body[1])
	}
	parseErr(t, wrap("      WRITE(6,*) 1\n"), "WRITE(*,*)")
}
