package lang

import (
	"fmt"
	"strings"
)

// DumpUnit renders a unit into a canonical, unambiguous text form for
// content hashing: two units dump identically iff reparsing either yields
// the same AST. It is NOT a pretty-printer — Stmt.Text omits block bodies,
// ELSE IF conditions, PRINT items and DO terminator labels, and
// Expr.String drops parentheses, so neither is safe to hash. Every
// expression here is fully parenthesized, every statement carries its
// line/column/label, and string literals are quoted with escapes.
func DumpUnit(u *Unit) string {
	var b strings.Builder
	if u.IsMain {
		b.WriteString("PROGRAM ")
	} else {
		b.WriteString("SUBROUTINE ")
	}
	b.WriteString(u.Name)
	b.WriteByte('(')
	b.WriteString(strings.Join(u.Params, ","))
	b.WriteString(")\n")
	for _, d := range u.Decls {
		fmt.Fprintf(&b, "decl@%d:%d %s", d.Line, d.Col, d.Type)
		for _, it := range d.Items {
			b.WriteByte(' ')
			b.WriteString(it.Name)
			if len(it.Dims) > 0 {
				b.WriteByte('(')
				for i, dim := range it.Dims {
					if i > 0 {
						b.WriteByte(',')
					}
					dumpExpr(&b, dim)
				}
				b.WriteByte(')')
			}
		}
		b.WriteByte('\n')
	}
	for _, c := range u.Consts {
		fmt.Fprintf(&b, "const@%d:%d %s=", c.Line, c.Col, c.Name)
		dumpExpr(&b, c.Value)
		b.WriteByte('\n')
	}
	dumpBody(&b, u.Body, 1)
	return b.String()
}

// DumpExpr renders one expression in the same canonical form DumpUnit
// uses — fully parenthesized, literal kinds tagged, strings quoted — so
// it is safe to hash: two expressions dump identically iff reparsing
// either yields the same AST.
func DumpExpr(e Expr) string {
	var b strings.Builder
	dumpExpr(&b, e)
	return b.String()
}

func dumpBody(b *strings.Builder, body []Stmt, depth int) {
	for _, s := range body {
		dumpStmt(b, s, depth)
	}
}

func dumpStmt(b *strings.Builder, s Stmt, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteByte(' ')
	}
	fmt.Fprintf(b, "@%d:%d", s.Pos(), s.Column())
	if l := s.Lab(); l != 0 {
		fmt.Fprintf(b, " %d", l)
	}
	b.WriteByte(' ')
	switch st := s.(type) {
	case *Assign:
		dumpExpr(b, st.LHS)
		b.WriteByte('=')
		dumpExpr(b, st.RHS)
		b.WriteByte('\n')
	case *IfBlock:
		b.WriteString("IF ")
		dumpExpr(b, st.Cond)
		b.WriteString(" THEN\n")
		dumpBody(b, st.Then, depth+1)
		for _, a := range st.Elifs {
			for i := 0; i < depth; i++ {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "@%d ELSEIF ", a.Line)
			dumpExpr(b, a.Cond)
			b.WriteString(" THEN\n")
			dumpBody(b, a.Body, depth+1)
		}
		if st.Else != nil {
			for i := 0; i < depth; i++ {
				b.WriteByte(' ')
			}
			b.WriteString("ELSE\n")
			dumpBody(b, st.Else, depth+1)
		}
		for i := 0; i < depth; i++ {
			b.WriteByte(' ')
		}
		b.WriteString("ENDIF\n")
	case *LogicalIf:
		b.WriteString("IF ")
		dumpExpr(b, st.Cond)
		b.WriteByte('\n')
		dumpStmt(b, st.Then, depth+1)
	case *ArithIf:
		b.WriteString("ARITHIF ")
		dumpExpr(b, st.Expr)
		fmt.Fprintf(b, " %d,%d,%d\n", st.OnNeg, st.OnZero, st.OnPos)
	case *DoLoop:
		fmt.Fprintf(b, "DO[%d] %s=", st.EndLabel, st.Var)
		dumpExpr(b, st.Lo)
		b.WriteByte(',')
		dumpExpr(b, st.Hi)
		if st.Step != nil {
			b.WriteByte(',')
			dumpExpr(b, st.Step)
		}
		b.WriteByte('\n')
		dumpBody(b, st.Body, depth+1)
		for i := 0; i < depth; i++ {
			b.WriteByte(' ')
		}
		b.WriteString("ENDDO\n")
	case *Goto:
		fmt.Fprintf(b, "GOTO %d\n", st.Target)
	case *ComputedGoto:
		b.WriteString("CGOTO (")
		for i, t := range st.Targets {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%d", t)
		}
		b.WriteString(") ")
		dumpExpr(b, st.Expr)
		b.WriteByte('\n')
	case *CallStmt:
		fmt.Fprintf(b, "CALL %s(", st.Name)
		for i, a := range st.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			dumpExpr(b, a)
		}
		b.WriteString(")\n")
	case *Return:
		b.WriteString("RETURN\n")
	case *StopStmt:
		b.WriteString("STOP\n")
	case *Continue:
		b.WriteString("CONTINUE\n")
	case *Print:
		b.WriteString("PRINT")
		for _, it := range st.Items {
			b.WriteByte(' ')
			dumpExpr(b, it)
		}
		b.WriteByte('\n')
	default:
		fmt.Fprintf(b, "UNKNOWN %T\n", s)
	}
}

func dumpExpr(b *strings.Builder, e Expr) {
	switch ex := e.(type) {
	case *IntLit:
		fmt.Fprintf(b, "%d", ex.Val)
	case *RealLit:
		// %g alone is ambiguous against an IntLit of the same digits
		// (2 vs 2.0); the marker keeps the dump injective.
		fmt.Fprintf(b, "r%g", ex.Val)
	case *LogLit:
		if ex.Val {
			b.WriteString(".TRUE.")
		} else {
			b.WriteString(".FALSE.")
		}
	case *StrLit:
		fmt.Fprintf(b, "%q", ex.Val)
	case *Var:
		b.WriteString(ex.Name)
	case *Index:
		b.WriteString(ex.Name)
		b.WriteByte('(')
		for i, s := range ex.Subs {
			if i > 0 {
				b.WriteByte(',')
			}
			dumpExpr(b, s)
		}
		b.WriteByte(')')
	case *Intrinsic:
		b.WriteString(ex.Name)
		b.WriteString("#(")
		for i, a := range ex.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			dumpExpr(b, a)
		}
		b.WriteByte(')')
	case *Bin:
		b.WriteByte('(')
		dumpExpr(b, ex.L)
		b.WriteString(ex.Op.String())
		dumpExpr(b, ex.R)
		b.WriteByte(')')
	case *Un:
		b.WriteByte('(')
		switch ex.Op {
		case OpNeg:
			b.WriteByte('-')
		case OpNot:
			b.WriteString(".NOT.")
		default:
			b.WriteByte('+')
		}
		dumpExpr(b, ex.X)
		b.WriteByte(')')
	case nil:
		b.WriteString("<nil>")
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}
