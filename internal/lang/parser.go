package lang

import (
	"fmt"
	"strconv"
)

// Parse lexes and parses src into a Program and runs semantic analysis.
func Parse(src string) (*Program, error) {
	lines, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{lines: lines}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Analyze(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseNoSema parses without semantic analysis; tests use it to target
// specific sema diagnostics.
func ParseNoSema(src string) (*Program, error) {
	lines, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{lines: lines}
	return p.parseProgram()
}

// parser is a cursor over logical lines; each statement parse consumes one
// or more whole lines.
type parser struct {
	lines []Line
	pos   int
}

func (p *parser) atEOF() bool   { return p.pos >= len(p.lines) }
func (p *parser) current() Line { return p.lines[p.pos] }
func (p *parser) advance()      { p.pos++ }

// head returns the first token of the current line, or an EOF token.
func (p *parser) head() Token {
	if p.atEOF() || len(p.current().Tokens) == 0 {
		return Token{Kind: EOF}
	}
	return p.current().Tokens[0]
}

// headIs reports whether the current line starts with the given keyword.
func (p *parser) headIs(kw string) bool {
	t := p.head()
	return t.Kind == KWWORD && t.Text == kw
}

// headIsElseIf matches both "ELSEIF" and "ELSE IF ... THEN".
func (p *parser) headIsElseIf() bool {
	if p.headIs("ELSEIF") {
		return true
	}
	if !p.headIs("ELSE") {
		return false
	}
	toks := p.current().Tokens
	return len(toks) > 1 && toks[1].Kind == KWWORD && toks[1].Text == "IF"
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.atEOF() {
		u, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		prog.Units = append(prog.Units, u)
	}
	if len(prog.Units) == 0 {
		return nil, fmt.Errorf("empty source: no PROGRAM or SUBROUTINE unit")
	}
	return prog, nil
}

func (p *parser) parseUnit() (*Unit, error) {
	line := p.current()
	ts := newTokens(line)
	u := &Unit{}
	switch {
	case ts.acceptKW("PROGRAM"):
		u.IsMain = true
		name, err := ts.expectIdent()
		if err != nil {
			return nil, err
		}
		u.Name = name
	case ts.acceptKW("SUBROUTINE"):
		name, err := ts.expectIdent()
		if err != nil {
			return nil, err
		}
		u.Name = name
		if ts.accept(LPAREN) {
			for !ts.accept(RPAREN) {
				pn, err := ts.expectIdent()
				if err != nil {
					return nil, err
				}
				u.Params = append(u.Params, pn)
				if !ts.accept(COMMA) && ts.peek().Kind != RPAREN {
					return nil, ts.errHere("expected ',' or ')' in parameter list")
				}
			}
		}
	default:
		return nil, errf(line.Num, 1, "expected PROGRAM or SUBROUTINE, got %v", p.head())
	}
	if err := ts.expectEOL(); err != nil {
		return nil, err
	}
	p.advance()

	// Declaration section.
	for !p.atEOF() {
		line := p.current()
		ts := newTokens(line)
		switch {
		case ts.acceptKW("INTEGER"), ts.acceptKW("REAL"), ts.acceptKW("LOGICAL"):
			ty := map[string]Type{"INTEGER": TInt, "REAL": TReal, "LOGICAL": TLogical}[line.Tokens[0].Text]
			d := &Decl{Type: ty, Line: line.Num, Col: line.Tokens[0].Col}
			for {
				name, err := ts.expectIdent()
				if err != nil {
					return nil, err
				}
				item := DeclItem{Name: name}
				if ts.accept(LPAREN) {
					for {
						dim, err := ts.parseExpr()
						if err != nil {
							return nil, err
						}
						item.Dims = append(item.Dims, dim)
						if ts.accept(RPAREN) {
							break
						}
						if !ts.accept(COMMA) {
							return nil, ts.errHere("expected ',' or ')' in array bounds")
						}
					}
				}
				d.Items = append(d.Items, item)
				if !ts.accept(COMMA) {
					break
				}
			}
			if err := ts.expectEOL(); err != nil {
				return nil, err
			}
			u.Decls = append(u.Decls, d)
			p.advance()
			continue
		case ts.acceptKW("DIMENSION"):
			// DIMENSION A(10), B(5,5): array shape with implicit typing.
			d := &Decl{Type: TNone, Line: line.Num, Col: line.Tokens[0].Col}
			for {
				name, err := ts.expectIdent()
				if err != nil {
					return nil, err
				}
				if !ts.accept(LPAREN) {
					return nil, ts.errHere("DIMENSION requires array bounds")
				}
				item := DeclItem{Name: name}
				for {
					dim, err := ts.parseExpr()
					if err != nil {
						return nil, err
					}
					item.Dims = append(item.Dims, dim)
					if ts.accept(RPAREN) {
						break
					}
					if !ts.accept(COMMA) {
						return nil, ts.errHere("expected ',' or ')' in array bounds")
					}
				}
				d.Items = append(d.Items, item)
				if !ts.accept(COMMA) {
					break
				}
			}
			if err := ts.expectEOL(); err != nil {
				return nil, err
			}
			u.Decls = append(u.Decls, d)
			p.advance()
			continue
		case ts.acceptKW("PARAMETER"):
			// PARAMETER (N = 100, M = 2*N)
			if !ts.accept(LPAREN) {
				return nil, ts.errHere("expected '(' after PARAMETER")
			}
			for {
				name, err := ts.expectIdent()
				if err != nil {
					return nil, err
				}
				if !ts.accept(ASSIGN) {
					return nil, ts.errHere("expected '=' in PARAMETER")
				}
				val, err := ts.parseExpr()
				if err != nil {
					return nil, err
				}
				u.Consts = append(u.Consts, &Const{Name: name, Value: val, Line: line.Num, Col: line.Tokens[0].Col})
				if ts.accept(RPAREN) {
					break
				}
				if !ts.accept(COMMA) {
					return nil, ts.errHere("expected ',' or ')' in PARAMETER")
				}
			}
			if err := ts.expectEOL(); err != nil {
				return nil, err
			}
			p.advance()
			continue
		}
		break // first executable statement
	}

	// Executable statements until END.
	body, err := p.parseBlock(func() bool { return p.headIs("END") && len(p.current().Tokens) == 1 })
	if err != nil {
		return nil, err
	}
	if p.atEOF() {
		return nil, fmt.Errorf("unit %s: missing END", u.Name)
	}
	p.advance() // consume END
	u.Body = body
	return u, nil
}

// parseBlock parses statements until stop() is true (the stopping line is
// not consumed) or EOF.
func (p *parser) parseBlock(stop func() bool) ([]Stmt, error) {
	var body []Stmt
	for !p.atEOF() && !stop() {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return body, nil
}

// blockEnder reports whether the current line is a structural terminator
// that an enclosing construct must handle (ELSE/ELSEIF/ENDIF/ENDDO/END).
func (p *parser) blockEnder() bool {
	return p.headIs("ELSE") || p.headIs("ELSEIF") || p.headIs("ENDIF") ||
		p.headIs("ENDDO") || (p.headIs("END") && len(p.current().Tokens) == 1)
}

// parseStmt parses one statement (consuming one or more lines).
func (p *parser) parseStmt() (Stmt, error) {
	line := p.current()
	if p.blockEnder() {
		return nil, errf(line.Num, 1, "unexpected %s", p.head().Text)
	}
	base := StmtBase{Line: line.Num, Label: line.Label}
	if len(line.Tokens) > 0 {
		base.Col = line.Tokens[0].Col
	}
	ts := newTokens(line)
	switch {
	case ts.acceptKW("IF"):
		return p.parseIf(base, ts)
	case ts.acceptKW("DO"):
		return p.parseDo(base, ts)
	case ts.acceptKW("GOTO"):
		p.advance()
		return parseGotoTail(base, ts)
	case ts.acceptKW("CALL"):
		p.advance()
		return parseCallTail(base, ts)
	case ts.acceptKW("RETURN"):
		p.advance()
		if err := ts.expectEOL(); err != nil {
			return nil, err
		}
		return &Return{base}, nil
	case ts.acceptKW("STOP"):
		p.advance()
		// Allow "STOP n" / "STOP 'msg'" and ignore the code.
		if ts.peek().Kind == INTLIT || ts.peek().Kind == STRINGLIT {
			ts.next()
		}
		if err := ts.expectEOL(); err != nil {
			return nil, err
		}
		return &StopStmt{base}, nil
	case ts.acceptKW("CONTINUE"):
		p.advance()
		if err := ts.expectEOL(); err != nil {
			return nil, err
		}
		return &Continue{base}, nil
	case ts.acceptKW("PRINT"):
		p.advance()
		return parsePrintTail(base, ts)
	case ts.acceptKW("WRITE"):
		p.advance()
		return parseWriteTail(base, ts)
	case ts.peek().Kind == IDENT:
		p.advance()
		return parseAssignTail(base, ts)
	}
	return nil, errf(line.Num, 1, "cannot parse statement starting with %v", ts.peek())
}

// parseIf handles the three IF forms. ts has consumed the IF keyword.
func (p *parser) parseIf(base StmtBase, ts *tokens) (Stmt, error) {
	if !ts.accept(LPAREN) {
		return nil, ts.errHere("expected '(' after IF")
	}
	cond, err := ts.parseExpr()
	if err != nil {
		return nil, err
	}
	if !ts.accept(RPAREN) {
		return nil, ts.errHere("expected ')' after IF condition")
	}
	switch {
	case ts.acceptKW("THEN"):
		if err := ts.expectEOL(); err != nil {
			return nil, err
		}
		p.advance()
		return p.parseIfBlock(base, cond)
	case ts.peek().Kind == INTLIT:
		// Arithmetic IF: three labels.
		var labs [3]int
		for i := 0; i < 3; i++ {
			l, err := ts.expectLabel()
			if err != nil {
				return nil, err
			}
			labs[i] = l
			if i < 2 && !ts.accept(COMMA) {
				return nil, ts.errHere("expected ',' in arithmetic IF")
			}
		}
		if err := ts.expectEOL(); err != nil {
			return nil, err
		}
		p.advance()
		return &ArithIf{StmtBase: base, Expr: cond, OnNeg: labs[0], OnZero: labs[1], OnPos: labs[2]}, nil
	default:
		// Logical IF: a single simple statement on the same line.
		inner, err := p.parseSimpleTail(StmtBase{Line: base.Line, Col: ts.peek().Col}, ts)
		if err != nil {
			return nil, err
		}
		p.advance()
		return &LogicalIf{StmtBase: base, Cond: cond, Then: inner}, nil
	}
}

// parseSimpleTail parses the single-statement body of a logical IF from the
// remaining tokens of the line.
func (p *parser) parseSimpleTail(base StmtBase, ts *tokens) (Stmt, error) {
	switch {
	case ts.acceptKW("GOTO"):
		return parseGotoTail(base, ts)
	case ts.acceptKW("CALL"):
		return parseCallTail(base, ts)
	case ts.acceptKW("RETURN"):
		if err := ts.expectEOL(); err != nil {
			return nil, err
		}
		return &Return{base}, nil
	case ts.acceptKW("STOP"):
		if ts.peek().Kind == INTLIT || ts.peek().Kind == STRINGLIT {
			ts.next()
		}
		if err := ts.expectEOL(); err != nil {
			return nil, err
		}
		return &StopStmt{base}, nil
	case ts.acceptKW("CONTINUE"):
		if err := ts.expectEOL(); err != nil {
			return nil, err
		}
		return &Continue{base}, nil
	case ts.acceptKW("PRINT"):
		return parsePrintTail(base, ts)
	case ts.acceptKW("WRITE"):
		return parseWriteTail(base, ts)
	case ts.peek().Kind == IDENT:
		return parseAssignTail(base, ts)
	}
	return nil, ts.errHere("invalid logical IF body")
}

// parseIfBlock parses the body of a block IF after "IF (cond) THEN".
func (p *parser) parseIfBlock(base StmtBase, cond Expr) (Stmt, error) {
	blk := &IfBlock{StmtBase: base, Cond: cond}
	thenBody, err := p.parseBlock(p.blockEnder)
	if err != nil {
		return nil, err
	}
	blk.Then = thenBody
	for p.headIsElseIf() {
		line := p.current()
		ts := newTokens(line)
		ts.acceptKW("ELSEIF")
		if ts.acceptKW("ELSE") {
			ts.acceptKW("IF")
		}
		if !ts.accept(LPAREN) {
			return nil, ts.errHere("expected '(' after ELSE IF")
		}
		c, err := ts.parseExpr()
		if err != nil {
			return nil, err
		}
		if !ts.accept(RPAREN) || !ts.acceptKW("THEN") {
			return nil, ts.errHere("expected ') THEN' after ELSE IF condition")
		}
		if err := ts.expectEOL(); err != nil {
			return nil, err
		}
		p.advance()
		body, err := p.parseBlock(p.blockEnder)
		if err != nil {
			return nil, err
		}
		blk.Elifs = append(blk.Elifs, ElifArm{Cond: c, Line: line.Num, Body: body})
	}
	if p.headIs("ELSE") && len(p.current().Tokens) == 1 {
		p.advance()
		body, err := p.parseBlock(p.blockEnder)
		if err != nil {
			return nil, err
		}
		blk.Else = body
	}
	if !p.headIs("ENDIF") {
		return nil, errf(base.Line, 1, "IF block starting here has no matching ENDIF")
	}
	p.advance()
	return blk, nil
}

// parseDo parses both DO forms. ts has consumed the DO keyword.
func (p *parser) parseDo(base StmtBase, ts *tokens) (Stmt, error) {
	loop := &DoLoop{StmtBase: base}
	if ts.peek().Kind == INTLIT {
		l, err := ts.expectLabel()
		if err != nil {
			return nil, err
		}
		loop.EndLabel = l
		ts.accept(COMMA) // optional comma: DO 10, I = ...
	}
	v, err := ts.expectIdent()
	if err != nil {
		return nil, err
	}
	loop.Var = v
	if !ts.accept(ASSIGN) {
		return nil, ts.errHere("expected '=' in DO statement")
	}
	if loop.Lo, err = ts.parseExpr(); err != nil {
		return nil, err
	}
	if !ts.accept(COMMA) {
		return nil, ts.errHere("expected ',' after DO initial value")
	}
	if loop.Hi, err = ts.parseExpr(); err != nil {
		return nil, err
	}
	if ts.accept(COMMA) {
		if loop.Step, err = ts.parseExpr(); err != nil {
			return nil, err
		}
	}
	if err := ts.expectEOL(); err != nil {
		return nil, err
	}
	p.advance()

	if loop.EndLabel == 0 {
		// DO ... ENDDO form.
		body, err := p.parseBlock(func() bool { return p.headIs("ENDDO") })
		if err != nil {
			return nil, err
		}
		if !p.headIs("ENDDO") {
			return nil, errf(base.Line, 1, "DO loop starting here has no matching ENDDO")
		}
		p.advance()
		loop.Body = body
		return loop, nil
	}

	// DO label ... form: body ends at the line carrying the label; that
	// statement is part of the body. Nested DO loops may share the
	// terminator ("DO 10 I / DO 10 J / 10 CONTINUE"): the innermost loop
	// consumes the labelled line, and enclosing loops detect completion by
	// looking at the nested loop's EndLabel.
	for {
		if p.atEOF() {
			return nil, errf(base.Line, 1, "DO loop has no statement labelled %d", loop.EndLabel)
		}
		if p.blockEnder() {
			return nil, errf(p.current().Num, 1, "unexpected %s inside DO %d", p.head().Text, loop.EndLabel)
		}
		terminates := p.current().Label == loop.EndLabel
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		loop.Body = append(loop.Body, s)
		if terminates {
			return loop, nil
		}
		if inner, ok := s.(*DoLoop); ok && inner.EndLabel == loop.EndLabel {
			return loop, nil // shared terminator consumed by the inner loop
		}
	}
}

func parseGotoTail(base StmtBase, ts *tokens) (Stmt, error) {
	if ts.accept(LPAREN) {
		cg := &ComputedGoto{StmtBase: base}
		for {
			l, err := ts.expectLabel()
			if err != nil {
				return nil, err
			}
			cg.Targets = append(cg.Targets, l)
			if ts.accept(RPAREN) {
				break
			}
			if !ts.accept(COMMA) {
				return nil, ts.errHere("expected ',' or ')' in computed GOTO")
			}
		}
		ts.accept(COMMA) // optional comma before the index expression
		e, err := ts.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := ts.expectEOL(); err != nil {
			return nil, err
		}
		cg.Expr = e
		return cg, nil
	}
	l, err := ts.expectLabel()
	if err != nil {
		return nil, err
	}
	if err := ts.expectEOL(); err != nil {
		return nil, err
	}
	return &Goto{StmtBase: base, Target: l}, nil
}

func parseCallTail(base StmtBase, ts *tokens) (Stmt, error) {
	name, err := ts.expectIdent()
	if err != nil {
		return nil, err
	}
	call := &CallStmt{StmtBase: base, Name: name}
	if ts.accept(LPAREN) {
		if !ts.accept(RPAREN) {
			for {
				a, err := ts.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if ts.accept(RPAREN) {
					break
				}
				if !ts.accept(COMMA) {
					return nil, ts.errHere("expected ',' or ')' in CALL arguments")
				}
			}
		}
	}
	if err := ts.expectEOL(); err != nil {
		return nil, err
	}
	return call, nil
}

func parsePrintTail(base StmtBase, ts *tokens) (Stmt, error) {
	if !ts.accept(STAR) {
		return nil, ts.errHere("only list-directed PRINT *, ... is supported")
	}
	pr := &Print{StmtBase: base}
	for ts.accept(COMMA) {
		e, err := ts.parseExpr()
		if err != nil {
			return nil, err
		}
		pr.Items = append(pr.Items, e)
	}
	if err := ts.expectEOL(); err != nil {
		return nil, err
	}
	return pr, nil
}

// parseWriteTail handles "WRITE(*,*) items": list-directed output to
// standard output, equivalent to PRINT *, items.
func parseWriteTail(base StmtBase, ts *tokens) (Stmt, error) {
	if !ts.accept(LPAREN) || !ts.accept(STAR) || !ts.accept(COMMA) || !ts.accept(STAR) || !ts.accept(RPAREN) {
		return nil, ts.errHere("only WRITE(*,*) list-directed output is supported")
	}
	pr := &Print{StmtBase: base}
	for {
		if ts.peek().Kind == EOF {
			break
		}
		e, err := ts.parseExpr()
		if err != nil {
			return nil, err
		}
		pr.Items = append(pr.Items, e)
		if !ts.accept(COMMA) {
			break
		}
	}
	if err := ts.expectEOL(); err != nil {
		return nil, err
	}
	return pr, nil
}

func parseAssignTail(base StmtBase, ts *tokens) (Stmt, error) {
	lhs, err := ts.parseDesignator()
	if err != nil {
		return nil, err
	}
	if !ts.accept(ASSIGN) {
		return nil, ts.errHere("expected '=' in assignment")
	}
	rhs, err := ts.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := ts.expectEOL(); err != nil {
		return nil, err
	}
	return &Assign{StmtBase: base, LHS: lhs, RHS: rhs}, nil
}

// ---------------------------------------------------------------------------
// Token-stream helpers and the expression grammar.

type tokens struct {
	toks []Token
	pos  int
	line int
}

func newTokens(l Line) *tokens { return &tokens{toks: l.Tokens, line: l.Num} }

func (ts *tokens) peek() Token {
	if ts.pos >= len(ts.toks) {
		return Token{Kind: EOF, Line: ts.line}
	}
	return ts.toks[ts.pos]
}

func (ts *tokens) next() Token {
	t := ts.peek()
	if ts.pos < len(ts.toks) {
		ts.pos++
	}
	return t
}

func (ts *tokens) accept(k Kind) bool {
	if ts.peek().Kind == k {
		ts.pos++
		return true
	}
	return false
}

func (ts *tokens) acceptKW(kw string) bool {
	t := ts.peek()
	if t.Kind == KWWORD && t.Text == kw {
		ts.pos++
		return true
	}
	return false
}

func (ts *tokens) acceptDotOp(name string) bool {
	t := ts.peek()
	if t.Kind == DOTOP && t.Text == name {
		ts.pos++
		return true
	}
	return false
}

func (ts *tokens) expectIdent() (string, error) {
	t := ts.peek()
	if t.Kind != IDENT {
		return "", ts.errHere("expected identifier, got %v", t)
	}
	ts.pos++
	return t.Text, nil
}

func (ts *tokens) expectLabel() (int, error) {
	t := ts.peek()
	if t.Kind != INTLIT {
		return 0, ts.errHere("expected statement label, got %v", t)
	}
	ts.pos++
	v, err := strconv.Atoi(t.Text)
	if err != nil || v <= 0 {
		return 0, ts.errHere("bad statement label %q", t.Text)
	}
	return v, nil
}

func (ts *tokens) expectEOL() error {
	if t := ts.peek(); t.Kind != EOF {
		return ts.errHere("unexpected %v at end of statement", t)
	}
	return nil
}

func (ts *tokens) errHere(format string, args ...any) error {
	t := ts.peek()
	col := t.Col
	if col == 0 {
		col = 1
	}
	return errf(ts.line, col, format, args...)
}

// parseExpr parses the full expression grammar:
//
//	expr   := orE ( .EQV. | .NEQV. orE )*
//	orE    := andE ( .OR. andE )*
//	andE   := notE ( .AND. notE )*
//	notE   := .NOT. notE | rel
//	rel    := arith ( relop arith )?
//	arith  := term ( (+|-) term )*
//	term   := factor ( (*|/) factor )*
//	factor := (+|-)* power
//	power  := primary ( ** factor )?     (right associative)
func (ts *tokens) parseExpr() (Expr, error) {
	l, err := ts.parseOr()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case ts.acceptDotOp("EQV"):
			op = OpEqv
		case ts.acceptDotOp("NEQV"):
			op = OpNeqv
		default:
			return l, nil
		}
		r, err := ts.parseOr()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (ts *tokens) parseOr() (Expr, error) {
	l, err := ts.parseAnd()
	if err != nil {
		return nil, err
	}
	for ts.acceptDotOp("OR") {
		r, err := ts.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (ts *tokens) parseAnd() (Expr, error) {
	l, err := ts.parseNot()
	if err != nil {
		return nil, err
	}
	for ts.acceptDotOp("AND") {
		r, err := ts.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (ts *tokens) parseNot() (Expr, error) {
	if ts.acceptDotOp("NOT") {
		x, err := ts.parseNot()
		if err != nil {
			return nil, err
		}
		return &Un{Op: OpNot, X: x}, nil
	}
	return ts.parseRel()
}

var relOps = map[string]BinOp{
	"LT": OpLT, "LE": OpLE, "GT": OpGT, "GE": OpGE, "EQ": OpEQ, "NE": OpNE,
}

func (ts *tokens) parseRel() (Expr, error) {
	l, err := ts.parseArith()
	if err != nil {
		return nil, err
	}
	if t := ts.peek(); t.Kind == DOTOP {
		if op, ok := relOps[t.Text]; ok {
			ts.pos++
			r, err := ts.parseArith()
			if err != nil {
				return nil, err
			}
			return &Bin{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (ts *tokens) parseArith() (Expr, error) {
	l, err := ts.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case ts.accept(PLUS):
			op = OpAdd
		case ts.accept(MINUS):
			op = OpSub
		default:
			return l, nil
		}
		r, err := ts.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (ts *tokens) parseTerm() (Expr, error) {
	l, err := ts.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case ts.accept(STAR):
			op = OpMul
		case ts.accept(SLASH):
			op = OpDiv
		default:
			return l, nil
		}
		r, err := ts.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (ts *tokens) parseFactor() (Expr, error) {
	switch {
	case ts.accept(MINUS):
		x, err := ts.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Un{Op: OpNeg, X: x}, nil
	case ts.accept(PLUS):
		return ts.parseFactor()
	}
	return ts.parsePower()
}

func (ts *tokens) parsePower() (Expr, error) {
	base, err := ts.parsePrimary()
	if err != nil {
		return nil, err
	}
	if ts.accept(POW) {
		// Right associative: A ** B ** C = A ** (B ** C); the exponent may
		// carry a unary sign: A ** -2.
		exp, err := ts.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpPow, L: base, R: exp}, nil
	}
	return base, nil
}

func (ts *tokens) parsePrimary() (Expr, error) {
	t := ts.peek()
	switch t.Kind {
	case INTLIT:
		ts.pos++
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, ts.errHere("bad integer literal %q", t.Text)
		}
		return &IntLit{Val: v}, nil
	case REALLIT:
		ts.pos++
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, ts.errHere("bad real literal %q", t.Text)
		}
		return &RealLit{Val: v}, nil
	case STRINGLIT:
		ts.pos++
		return &StrLit{Val: t.Text}, nil
	case DOTOP:
		switch t.Text {
		case "TRUE":
			ts.pos++
			return &LogLit{Val: true}, nil
		case "FALSE":
			ts.pos++
			return &LogLit{Val: false}, nil
		}
		return nil, ts.errHere("unexpected operator %v", t)
	case LPAREN:
		ts.pos++
		e, err := ts.parseExpr()
		if err != nil {
			return nil, err
		}
		if !ts.accept(RPAREN) {
			return nil, ts.errHere("expected ')'")
		}
		return e, nil
	case IDENT:
		return ts.parseDesignator()
	case KWWORD:
		// The type names INTEGER/REAL double as conversion intrinsics;
		// REAL(X) in an expression is the conversion, not a declaration.
		if t.Text == "REAL" || t.Text == "INTEGER" {
			ts.pos++
			if !ts.accept(LPAREN) {
				return nil, ts.errHere("expected '(' after %s in expression", t.Text)
			}
			arg, err := ts.parseExpr()
			if err != nil {
				return nil, err
			}
			if !ts.accept(RPAREN) {
				return nil, ts.errHere("expected ')'")
			}
			name := "REAL"
			if t.Text == "INTEGER" {
				name = "INT"
			}
			return &Intrinsic{Name: name, Args: []Expr{arg}}, nil
		}
	}
	return nil, ts.errHere("unexpected %v in expression", t)
}

// parseDesignator parses NAME or NAME(args). Intrinsic names become
// Intrinsic calls; everything else becomes Var/Index, with sema deciding
// whether an Index is legal.
func (ts *tokens) parseDesignator() (Expr, error) {
	t := ts.peek()
	if t.Kind != IDENT {
		return nil, ts.errHere("expected identifier, got %v", t)
	}
	ts.pos++
	name := t.Text
	if !ts.accept(LPAREN) {
		return &Var{Name: name}, nil
	}
	var args []Expr
	if !ts.accept(RPAREN) {
		for {
			a, err := ts.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if ts.accept(RPAREN) {
				break
			}
			if !ts.accept(COMMA) {
				return nil, ts.errHere("expected ',' or ')'")
			}
		}
	}
	if _, ok := Intrinsics[name]; ok {
		return &Intrinsic{Name: name, Args: args}, nil
	}
	return &Index{Name: name, Subs: args}, nil
}
