package lang

import "testing"

func TestSmokeParse(t *testing.T) {
	src := `      PROGRAM EXMPL
      INTEGER M, N
      M = 5
      N = 9
   10 IF (M .GE. 0) THEN
         IF (N .LT. 0) GOTO 20
      ELSE
         IF (N .GE. 0) GOTO 20
      ENDIF
      CALL FOO(M, N)
      GOTO 10
   20 CONTINUE
      END

      SUBROUTINE FOO(M, N)
      INTEGER M, N
      N = N - 1
      RETURN
      END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Units) != 2 {
		t.Fatalf("units = %d", len(prog.Units))
	}
	t.Logf("main body has %d stmts", len(prog.Main().Body))
}
