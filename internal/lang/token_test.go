package lang

import (
	"strings"
	"testing"
)

func lexOne(t *testing.T, src string) []Line {
	t.Helper()
	lines, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return lines
}

func kinds(ts []Token) []Kind {
	out := make([]Kind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	lines := lexOne(t, "      X = Y + 2.5*Z(3) - 1E-2\n")
	if len(lines) != 1 {
		t.Fatalf("lines = %d", len(lines))
	}
	toks := lines[0].Tokens
	want := []Kind{IDENT, ASSIGN, IDENT, PLUS, REALLIT, STAR, IDENT, LPAREN, INTLIT, RPAREN, MINUS, REALLIT}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], toks)
		}
	}
}

func TestLexLabels(t *testing.T) {
	lines := lexOne(t, "   10 CONTINUE\n      X = 1\n")
	if lines[0].Label != 10 {
		t.Errorf("label = %d, want 10", lines[0].Label)
	}
	if lines[1].Label != 0 {
		t.Errorf("unlabelled line got label %d", lines[1].Label)
	}
	if _, err := Lex("    0 CONTINUE\n"); err == nil {
		t.Error("label 0 must be rejected")
	}
}

func TestLexComments(t *testing.T) {
	src := `C this is a comment
c lower case comment too
* asterisk comment
      X = 1 ! trailing comment
! whole line bang comment
      Y = 2
`
	lines := lexOne(t, src)
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2 (comments stripped): %v", len(lines), lines)
	}
	if len(lines[0].Tokens) != 3 {
		t.Errorf("trailing comment not stripped: %v", lines[0].Tokens)
	}
}

func TestLexCommentVsCStatement(t *testing.T) {
	// 'C' in column one can still start real statements.
	lines := lexOne(t, "CALL FOO\nC = 1\nC(2) = 3\nC plain comment\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3: CALL, C=1, C(2)=3", len(lines))
	}
	if lines[0].Tokens[0].Text != "CALL" {
		t.Errorf("first line = %v", lines[0].Tokens)
	}
	if lines[1].Tokens[0].Text != "C" || lines[1].Tokens[1].Kind != ASSIGN {
		t.Errorf("second line = %v", lines[1].Tokens)
	}
}

func TestLexContinuations(t *testing.T) {
	// Trailing '&'.
	lines := lexOne(t, "      X = 1 + &\n          2\n")
	if len(lines) != 1 || len(lines[0].Tokens) != 5 {
		t.Fatalf("trailing &: %v", lines)
	}
	// Leading '&' (fixed-form style).
	lines = lexOne(t, "      X = 1 +\n     &    2\n")
	if len(lines) != 1 || len(lines[0].Tokens) != 5 {
		t.Fatalf("leading &: %v", lines)
	}
	// Chained.
	lines = lexOne(t, "      X = 1 + &\n     &    2 + &\n     &    3\n")
	if len(lines) != 1 || len(lines[0].Tokens) != 7 {
		t.Fatalf("chained &: %v", lines)
	}
}

func TestLexDottedOperators(t *testing.T) {
	lines := lexOne(t, "      L = A .LT. B .AND. .NOT. C .OR. .TRUE.\n")
	var ops []string
	for _, tok := range lines[0].Tokens {
		if tok.Kind == DOTOP {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"LT", "AND", "NOT", "OR", "TRUE"}
	if strings.Join(ops, ",") != strings.Join(want, ",") {
		t.Errorf("dotted ops = %v, want %v", ops, want)
	}
	if _, err := Lex("      X = A .FOO. B\n"); err == nil {
		t.Error("unknown dotted operator must be rejected")
	}
}

func TestLexNumberDotOperatorAmbiguity(t *testing.T) {
	// "1.LT.2" must lex as INTLIT DOTOP INTLIT, not real "1." etc.
	lines := lexOne(t, "      L = 1.LT.2\n")
	got := kinds(lines[0].Tokens)
	want := []Kind{IDENT, ASSIGN, INTLIT, DOTOP, INTLIT}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
	// But "1.5" stays a real literal.
	lines = lexOne(t, "      X = 1.5\n")
	if lines[0].Tokens[2].Kind != REALLIT {
		t.Errorf("1.5 lexed as %v", lines[0].Tokens[2])
	}
}

func TestLexRealForms(t *testing.T) {
	cases := map[string]string{
		"1.5":    "1.5",
		"1E3":    "1E3",
		"1.5E-3": "1.5E-3",
		"2D0":    "2E0", // D exponent normalized
		"3.D2":   "3.E2",
	}
	for src, want := range cases {
		lines := lexOne(t, "      X = "+src+"\n")
		tok := lines[0].Tokens[2]
		if tok.Kind != REALLIT || tok.Text != want {
			t.Errorf("%q lexed as %v %q, want REALLIT %q", src, tok.Kind, tok.Text, want)
		}
	}
	// Integer stays integer.
	lines := lexOne(t, "      I = 42\n")
	if lines[0].Tokens[2].Kind != INTLIT {
		t.Errorf("42 lexed as %v", lines[0].Tokens[2])
	}
}

func TestLexStrings(t *testing.T) {
	lines := lexOne(t, "      PRINT *, 'hello there', \"double\"\n")
	var strs []string
	for _, tok := range lines[0].Tokens {
		if tok.Kind == STRINGLIT {
			strs = append(strs, tok.Text)
		}
	}
	if len(strs) != 2 || strs[0] != "hello there" || strs[1] != "double" {
		t.Errorf("strings = %v", strs)
	}
	if _, err := Lex("      PRINT *, 'unterminated\n"); err == nil {
		t.Error("unterminated string must be rejected")
	}
	// '!' inside a string is not a comment.
	lines = lexOne(t, "      PRINT *, 'has ! inside'\n")
	found := false
	for _, tok := range lines[0].Tokens {
		if tok.Kind == STRINGLIT && strings.Contains(tok.Text, "!") {
			found = true
		}
	}
	if !found {
		t.Error("'!' inside a string stripped as comment")
	}
}

func TestLexFusedSpellings(t *testing.T) {
	lines := lexOne(t, "      END IF\n      END DO\n      GO TO 10\n")
	if lines[0].Tokens[0].Text != "ENDIF" {
		t.Errorf("END IF -> %v", lines[0].Tokens)
	}
	if lines[1].Tokens[0].Text != "ENDDO" {
		t.Errorf("END DO -> %v", lines[1].Tokens)
	}
	if lines[2].Tokens[0].Text != "GOTO" || lines[2].Tokens[0].Kind != KWWORD {
		t.Errorf("GO TO -> %v", lines[2].Tokens)
	}
}

func TestLexPower(t *testing.T) {
	lines := lexOne(t, "      X = A ** 2 * B\n")
	got := kinds(lines[0].Tokens)
	want := []Kind{IDENT, ASSIGN, IDENT, POW, INTLIT, STAR, IDENT}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"      X = #\n",
		"      X = A .\n",
		"      X = .5LT.\n",
	} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexKeywordsAreCaseInsensitive(t *testing.T) {
	lines := lexOne(t, "      do 10 i = 1, n\n")
	if lines[0].Tokens[0].Kind != KWWORD || lines[0].Tokens[0].Text != "DO" {
		t.Errorf("lowercase do -> %v", lines[0].Tokens[0])
	}
	if lines[0].Tokens[2].Text != "I" {
		t.Errorf("identifiers must be upper-cased: %v", lines[0].Tokens[2])
	}
}
