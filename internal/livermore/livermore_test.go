package livermore

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/profiler"
)

// TestEveryKernelRunsAndProfiles parses, lowers, runs, profiles and
// verifies counter recovery for each of the 24 kernels in isolation.
func TestEveryKernelRunsAndProfiles(t *testing.T) {
	for k := 1; k <= Kernels; k++ {
		k := k
		t.Run(Name(k), func(t *testing.T) {
			p, err := core.Load(KernelSource(k, 60))
			if err != nil {
				t.Fatalf("kernel %d: %v", k, err)
			}
			run, err := interp.Run(p.Res, interp.Options{Seed: 7, MaxSteps: 20_000_000})
			if err != nil {
				t.Fatalf("kernel %d: %v", k, err)
			}
			if run.Steps == 0 {
				t.Fatalf("kernel %d executed nothing", k)
			}
			for name, a := range p.An.Procs {
				plan, err := profiler.PlanSmart(a)
				if err != nil {
					t.Fatalf("kernel %d %s: %v", k, name, err)
				}
				got, err := plan.Recover(plan.SimulateReadings(run))
				if err != nil {
					t.Fatalf("kernel %d %s: %v", k, name, err)
				}
				want := profiler.ExactTotals(a, run)
				for c, w := range want {
					if g := got[c]; g != w {
						t.Errorf("kernel %d %s: TOTAL%v = %g, want %g", k, name, c, g, w)
					}
				}
			}
		})
	}
}

// TestFullLoopsProgram runs the complete 24-kernel program and checks the
// estimator's mean against the measured cost (single deterministic run,
// except for kernel 16's RAND which the shared profile still captures
// exactly for that same run).
func TestFullLoopsProgram(t *testing.T) {
	p, err := core.Load(Source(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	model := cost.Optimized
	measured, err := p.MeasuredCost(model, 3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.Estimate(model, core.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel := (est.Main.Time - measured) / measured
	if rel < -1e-9 || rel > 1e-9 {
		t.Errorf("estimated %g vs measured %g (rel %g)", est.Main.Time, measured, rel)
	}
	if est.Main.Var < 0 {
		t.Errorf("negative variance %g", est.Main.Var)
	}
}

func TestSourceShape(t *testing.T) {
	src := Source(100, 2)
	for k := 1; k <= Kernels; k++ {
		want := "SUBROUTINE KERN"
		if !strings.Contains(src, want) {
			t.Fatalf("source missing %q", want)
		}
	}
	if !strings.Contains(src, "DO 900 IR = 1, 2") {
		t.Error("reps not honoured")
	}
	if Name(1) == "unknown" || Name(0) != "unknown" || Name(25) != "unknown" {
		t.Error("Name bounds wrong")
	}
	// Clamping.
	if !strings.Contains(Source(5, 0), "N = 10") {
		t.Error("size clamp failed")
	}
}
