package livermore

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/profiler"
)

// TestNodeFreqIdentityAllKernels verifies the paper's equation 3 on every
// kernel: NODE_FREQ(v) computed by the top-down FCDG recurrence, times the
// number of activations, equals the exact execution count of every node.
// This is the identity that makes control-condition counters sufficient
// (profiling optimization 1) and the TIME estimate exact in the mean.
func TestNodeFreqIdentityAllKernels(t *testing.T) {
	for k := 1; k <= Kernels; k++ {
		prog, err := lang.Parse(KernelSource(k, 60))
		if err != nil {
			t.Fatal(err)
		}
		res, err := lower.Lower(prog)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := analysis.AnalyzeProgram(res)
		if err != nil {
			t.Fatal(err)
		}
		run, err := interp.Run(res, interp.Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for name, a := range ap.Procs {
			totals := profiler.ExactTotals(a, run)
			tab, err := freq.Compute(a.FCDG, totals)
			if err != nil {
				t.Fatalf("k%d %s: %v", k, name, err)
			}
			acts := float64(run.ByProc[name].Activations)
			for _, n := range a.P.G.Nodes() {
				want := float64(run.NodeCount(a.P, n.ID))
				got := tab.NodeFreq[n.ID] * acts
				if math.Abs(got-want) > 1e-6 {
					t.Errorf("kernel %d %s node %d (%s): NF*acts=%g actual=%g", k, name, n.ID, n.Name, got, want)
				}
			}
		}
	}
}
