// Package livermore provides the LOOPS benchmark of Table 1: the 24
// Livermore Fortran Kernels [McM86], re-expressed in this repository's
// Fortran subset. The paper uses LOOPS to measure profiling overhead, so
// what matters for reproduction is each kernel's control structure — loop
// nests, strides, conditionals, GOTO search loops — which is preserved
// faithfully; array payload arithmetic follows the standard kernel
// recurrences with local initialization replacing the original COMMON-block
// setup.
//
// Source(n, reps) renders a complete program whose main calls all 24
// kernels reps times at problem size n; KernelSource(k, n) renders a
// driver for one kernel, used by per-kernel tests.
package livermore

import (
	"fmt"
	"strings"
)

// Kernels is the number of Livermore kernels.
const Kernels = 24

// names gives each kernel's traditional description.
var names = [Kernels + 1]string{
	"",
	"hydro fragment",
	"ICCG excerpt (incomplete Cholesky conjugate gradient)",
	"inner product",
	"banded linear equations",
	"tri-diagonal elimination, below diagonal",
	"general linear recurrence equations",
	"equation of state fragment",
	"ADI integration",
	"integrate predictors",
	"difference predictors",
	"first sum",
	"first difference",
	"2-D PIC (particle in cell)",
	"1-D PIC",
	"casual Fortran",
	"Monte Carlo search loop",
	"implicit, conditional computation",
	"2-D explicit hydrodynamics fragment",
	"general linear recurrence equations (second form)",
	"discrete ordinates transport",
	"matrix*matrix product",
	"Planckian distribution",
	"2-D implicit hydrodynamics fragment",
	"find location of first minimum",
}

// Name returns the traditional description of kernel k (1-based).
func Name(k int) string {
	if k < 1 || k > Kernels {
		return "unknown"
	}
	return names[k]
}

// Source renders the full LOOPS program: every kernel called reps times at
// size n (n is clamped to [10, 1000]).
func Source(n, reps int) string {
	n = clamp(n, 10, 1000)
	if reps < 1 {
		reps = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "      PROGRAM LOOPS\n")
	fmt.Fprintf(&b, "      INTEGER IR\n")
	fmt.Fprintf(&b, "      DO 900 IR = 1, %d\n", reps)
	for k := 1; k <= Kernels; k++ {
		fmt.Fprintf(&b, "      CALL KERN%02d\n", k)
	}
	fmt.Fprintf(&b, "  900 CONTINUE\n")
	fmt.Fprintf(&b, "      END\n\n")
	for k := 1; k <= Kernels; k++ {
		b.WriteString(kernel(k, n))
		b.WriteString("\n")
	}
	return b.String()
}

// KernelSource renders a driver program for a single kernel.
func KernelSource(k, n int) string {
	n = clamp(n, 10, 1000)
	var b strings.Builder
	fmt.Fprintf(&b, "      PROGRAM K%02d\n", k)
	fmt.Fprintf(&b, "      CALL KERN%02d\n", k)
	fmt.Fprintf(&b, "      END\n\n")
	b.WriteString(kernel(k, n))
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// kernel renders SUBROUTINE KERNxx at problem size n.
func kernel(k, n int) string {
	// Common sizes: most kernels loop to N; 2-D kernels use a reduced
	// square dimension M so work stays O(n)-ish.
	m := 10
	for m*m < n {
		m++
	}
	hdr := func(arrays string) string {
		return fmt.Sprintf("      SUBROUTINE KERN%02d\n      INTEGER N, M\n      PARAMETER (N = %d, M = %d)\n%s", k, n, m, arrays)
	}
	switch k {
	case 1: // X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11))
		return hdr(`      REAL X(N), Y(N), Z(N)
      REAL Q, R, T
      INTEGER K
      DO 5 K = 1, N
         Y(K) = 0.0001*K
         Z(K) = 0.0002*K
    5 CONTINUE
      Q = 0.5
      R = 0.25
      T = 0.125
      DO 10 K = 1, N - 11
         X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11))
   10 CONTINUE
      RETURN
      END`)
	case 2: // ICCG: stride-halving inner structure
		return hdr(`      REAL X(N), V(N)
      INTEGER K, IPNT, IPNTP, II, I
      DO 5 K = 1, N
         X(K) = 0.001*K
         V(K) = 0.002*K
    5 CONTINUE
      II = N/2
      IPNTP = 0
  222 IPNT = IPNTP
      IPNTP = IPNTP + II
      II = II/2
      I = IPNTP + 1
      DO 10 K = IPNT + 2, IPNTP, 2
         I = I + 1
         IF (I .LE. N) THEN
            X(I) = X(K) - V(K)*X(K-1) - V(K+1)*X(K+1)
         ENDIF
   10 CONTINUE
      IF (II .GT. 1) GOTO 222
      RETURN
      END`)
	case 3: // inner product
		return hdr(`      REAL X(N), Z(N)
      REAL Q
      INTEGER K
      DO 5 K = 1, N
         X(K) = 0.001*K
         Z(K) = 0.002*K
    5 CONTINUE
      Q = 0.0
      DO 10 K = 1, N
         Q = Q + Z(K)*X(K)
   10 CONTINUE
      RETURN
      END`)
	case 4: // banded linear equations
		return hdr(`      REAL X(N), Y(N)
      REAL XI
      INTEGER J, K, LB, II
      DO 5 K = 1, N
         X(K) = 0.001*K
         Y(K) = 0.002*K
    5 CONTINUE
      LB = N/5
      II = LB + 5
      DO 10 K = II, N, 5
         XI = X(K)
         DO 20 J = 5, LB, 5
            XI = XI - X(K-J)*Y(J)
   20    CONTINUE
         X(K) = XI*0.5
   10 CONTINUE
      RETURN
      END`)
	case 5: // tri-diagonal elimination, below diagonal
		return hdr(`      REAL X(N), Y(N), Z(N)
      INTEGER I
      DO 5 I = 1, N
         X(I) = 0.0
         Y(I) = 0.001*I
         Z(I) = 0.002*I
    5 CONTINUE
      DO 10 I = 2, N
         X(I) = Z(I)*(Y(I) - X(I-1))
   10 CONTINUE
      RETURN
      END`)
	case 6: // general linear recurrence equations
		return hdr(`      REAL W(N), B(M,M)
      INTEGER I, K
      DO 5 I = 1, N
         W(I) = 0.001*I
    5 CONTINUE
      DO 6 I = 1, M
         DO 7 K = 1, M
            B(I,K) = 0.0001*(I+K)
    7    CONTINUE
    6 CONTINUE
      DO 10 I = 2, M
         DO 20 K = 1, I - 1
            W(I) = W(I) + B(I,K)*W(I-K)
   20    CONTINUE
   10 CONTINUE
      RETURN
      END`)
	case 7: // equation of state fragment
		return hdr(`      REAL X(N), Y(N), Z(N), U(N)
      REAL Q, R, T
      INTEGER K
      DO 5 K = 1, N
         Y(K) = 0.001*K
         Z(K) = 0.002*K
         U(K) = 0.003*K
    5 CONTINUE
      Q = 0.5
      R = 0.25
      T = 0.125
      DO 10 K = 1, N - 6
         X(K) = U(K) + R*(Z(K) + R*Y(K)) +
     &          T*(U(K+3) + R*(U(K+2) + R*U(K+1)) +
     &          T*(U(K+6) + Q*(U(K+5) + Q*U(K+4))))
   10 CONTINUE
      RETURN
      END`)
	case 8: // ADI integration (two-plane sweep, reduced)
		return hdr(`      REAL U1(M,M), U2(M,M), U3(M,M)
      REAL A11, A12, A13
      INTEGER KX, KY
      DO 5 KX = 1, M
         DO 6 KY = 1, M
            U1(KX,KY) = 0.001*(KX+KY)
            U2(KX,KY) = 0.002*(KX+KY)
            U3(KX,KY) = 0.003*(KX+KY)
    6    CONTINUE
    5 CONTINUE
      A11 = 0.1
      A12 = 0.2
      A13 = 0.3
      DO 10 KX = 2, M - 1
         DO 20 KY = 2, M - 1
            U1(KX,KY) = U1(KX,KY) + A11*U2(KX,KY) + A12*U3(KX,KY)
            U2(KX,KY) = U2(KX,KY) + A13*(U1(KX+1,KY) - U1(KX-1,KY))
            U3(KX,KY) = U3(KX,KY) + A13*(U2(KX,KY+1) - U2(KX,KY-1))
   20    CONTINUE
   10 CONTINUE
      RETURN
      END`)
	case 9: // integrate predictors
		return hdr(`      REAL PX(13,M)
      REAL DM(13)
      INTEGER I, J
      DO 5 I = 1, 13
         DM(I) = 0.01*I
         DO 6 J = 1, M
            PX(I,J) = 0.001*(I+J)
    6    CONTINUE
    5 CONTINUE
      DO 10 I = 1, M
         PX(1,I) = DM(1)*PX(5,I) + DM(2)*PX(6,I) + DM(3)*PX(7,I) +
     &             DM(4)*PX(8,I) + DM(5)*PX(9,I) + DM(6)*PX(10,I) +
     &             DM(7)*PX(11,I) + DM(8)*PX(12,I) + DM(9)*PX(13,I) +
     &             PX(3,I)
   10 CONTINUE
      RETURN
      END`)
	case 10: // difference predictors
		return hdr(`      REAL PX(13,M)
      REAL AR, BR, CR
      INTEGER I, J
      DO 5 I = 1, 13
         DO 6 J = 1, M
            PX(I,J) = 0.001*(I+J)
    6    CONTINUE
    5 CONTINUE
      DO 10 I = 1, M
         AR = PX(5,I)
         BR = AR - PX(6,I)
         PX(6,I) = AR
         CR = BR - PX(7,I)
         PX(7,I) = BR
         AR = CR - PX(8,I)
         PX(8,I) = CR
         BR = AR - PX(9,I)
         PX(9,I) = AR
         CR = BR - PX(10,I)
         PX(10,I) = BR
         AR = CR - PX(11,I)
         PX(11,I) = CR
         BR = AR - PX(12,I)
         PX(12,I) = AR
         PX(13,I) = BR - PX(13,I)
         PX(12,I) = BR
   10 CONTINUE
      RETURN
      END`)
	case 11: // first sum
		return hdr(`      REAL X(N), Y(N)
      INTEGER K
      DO 5 K = 1, N
         Y(K) = 0.001*K
    5 CONTINUE
      X(1) = Y(1)
      DO 10 K = 2, N
         X(K) = X(K-1) + Y(K)
   10 CONTINUE
      RETURN
      END`)
	case 12: // first difference
		return hdr(`      REAL X(N), Y(N)
      INTEGER K
      DO 5 K = 1, N
         Y(K) = 0.001*K*K
    5 CONTINUE
      DO 10 K = 1, N - 1
         X(K) = Y(K+1) - Y(K)
   10 CONTINUE
      RETURN
      END`)
	case 13: // 2-D PIC
		return hdr(`      REAL P(4,N), B(M,M), C(M,M), Y(N), Z(N), H(M,M)
      INTEGER IP, I1, J1, I2, J2
      DO 5 IP = 1, N
         P(1,IP) = 1.0 + 0.001*IP
         P(2,IP) = 1.0 + 0.002*IP
         P(3,IP) = 0.0
         P(4,IP) = 0.0
         Y(IP) = 0.1
         Z(IP) = 0.2
    5 CONTINUE
      DO 6 I1 = 1, M
         DO 7 J1 = 1, M
            B(I1,J1) = 0.5
            C(I1,J1) = 0.25
            H(I1,J1) = 0.0
    7    CONTINUE
    6 CONTINUE
      DO 10 IP = 1, N
         I1 = INT(P(1,IP))
         J1 = INT(P(2,IP))
         I1 = 1 + MOD(I1, M - 1)
         J1 = 1 + MOD(J1, M - 1)
         P(3,IP) = P(3,IP) + B(I1,J1)
         P(4,IP) = P(4,IP) + C(I1,J1)
         P(1,IP) = P(1,IP) + P(3,IP)
         P(2,IP) = P(2,IP) + P(4,IP)
         I2 = INT(P(1,IP))
         J2 = INT(P(2,IP))
         I2 = 1 + MOD(I2, M - 1)
         J2 = 1 + MOD(J2, M - 1)
         P(1,IP) = P(1,IP) + Y(I2+1)
         P(2,IP) = P(2,IP) + Z(J2+1)
         H(I2,J2) = H(I2,J2) + 1.0
   10 CONTINUE
      RETURN
      END`)
	case 14: // 1-D PIC
		return hdr(`      REAL VX(N), XX(N), GRD(N), XI(N), EX(N), DEX(N), RH(N)
      INTEGER K, IX, IR
      DO 5 K = 1, N
         VX(K) = 0.0
         XX(K) = 0.01*K
         GRD(K) = 1.0 + MOD(K, 8)
         EX(K) = 0.01*K
         DEX(K) = 0.001*K
         RH(K) = 0.0
    5 CONTINUE
      DO 10 K = 1, N
         IX = INT(GRD(K))
         XI(K) = REAL(IX)
         EX(IX) = EX(IX) + DEX(IX)
   10 CONTINUE
      DO 20 K = 1, N
         VX(K) = VX(K) + EX(K)
         XX(K) = XX(K) + VX(K)
         IR = 1 + MOD(INT(XX(K)) + N, N - 1)
         RH(IR) = RH(IR) + 1.0
   20 CONTINUE
      RETURN
      END`)
	case 15: // casual Fortran: branch-heavy 2-D sweep
		return hdr(`      REAL VS(M,M), VE(M,M), VH(M,M)
      REAL T, S
      INTEGER I, J
      DO 5 I = 1, M
         DO 6 J = 1, M
            VS(I,J) = 0.001*(I*J)
            VE(I,J) = 0.002*(I+J)
            VH(I,J) = 0.0
    6    CONTINUE
    5 CONTINUE
      T = 0.0037
      S = 0.0041
      DO 10 I = 2, M - 1
         DO 20 J = 2, M - 1
            IF (VS(I,J) .LT. T) THEN
               VH(I,J) = VE(I,J)
            ELSE IF (VE(I,J) .GT. S) THEN
               VH(I,J) = VS(I,J) - VE(I,J)
            ELSE
               VH(I,J) = VS(I,J) + VE(I,J)
            ENDIF
            IF (VH(I,J) .LT. 0.0) VH(I,J) = 0.0
   20    CONTINUE
   10 CONTINUE
      RETURN
      END`)
	case 16: // Monte Carlo search loop (GOTO-driven, as in the original)
		return hdr(`      REAL ZONE(N)
      REAL PLAN, R
      INTEGER K, J, M2
      DO 5 K = 1, N
         ZONE(K) = MOD(K*7, 100) * 0.01
    5 CONTINUE
      M2 = 0
      J = 1
      K = 1
  100 K = K + 1
      IF (K .GE. N - 1) GOTO 300
      R = RAND()
      PLAN = ZONE(K)
      IF (PLAN .LT. R) GOTO 100
      IF (PLAN .GT. R + 0.5) GOTO 200
      M2 = M2 + 1
      GOTO 100
  200 J = J + 1
      IF (J .GE. N) GOTO 300
      GOTO 100
  300 CONTINUE
      RETURN
      END`)
	case 17: // implicit, conditional computation
		return hdr(`      REAL VXNE(N), VLR(N), VSP(N)
      REAL SCALE, XNM, E1
      INTEGER K, I
      DO 5 K = 1, N
         VLR(K) = 0.001*K
         VSP(K) = 0.0001*K
         VXNE(K) = 0.0
    5 CONTINUE
      SCALE = 1.5
      XNM = 0.0012
      E1 = 1.0
      I = N
      K = 0
   10 K = K + 1
      IF (K .GT. N) GOTO 30
      E1 = E1*VSP(K) + VLR(K)
      IF (E1 .GT. SCALE) THEN
         E1 = E1*XNM
         I = I - 1
      ENDIF
      VXNE(K) = E1
      GOTO 10
   30 CONTINUE
      RETURN
      END`)
	case 18: // 2-D explicit hydrodynamics fragment
		return hdr(`      REAL ZA(M,M), ZB(M,M), ZP(M,M), ZQ(M,M), ZR(M,M), ZM(M,M)
      REAL T, S
      INTEGER J, K
      DO 5 J = 1, M
         DO 6 K = 1, M
            ZP(J,K) = 0.001*(J+K)
            ZQ(J,K) = 0.002*(J+K)
            ZR(J,K) = 0.003*(J+K)
            ZM(J,K) = 0.004*(J+K)
            ZA(J,K) = 0.0
            ZB(J,K) = 0.0
    6    CONTINUE
    5 CONTINUE
      T = 0.0037
      S = 0.0041
      DO 10 J = 2, M - 1
         DO 20 K = 2, M - 1
            ZA(J,K) = (ZP(J-1,K+1) + ZQ(J-1,K+1) - ZP(J-1,K) -
     &                ZQ(J-1,K)) * (ZR(J,K) + ZR(J-1,K)) /
     &                (ZM(J-1,K) + ZM(J-1,K+1))
            ZB(J,K) = (ZP(J-1,K) + ZQ(J-1,K) - ZP(J,K) - ZQ(J,K)) *
     &                (ZR(J,K) + ZR(J,K-1)) / (ZM(J,K) + ZM(J-1,K))
   20    CONTINUE
   10 CONTINUE
      DO 30 J = 2, M - 1
         DO 40 K = 2, M - 1
            ZR(J,K) = ZR(J,K) + T*ZA(J,K) - S*ZB(J,K)
   40    CONTINUE
   30 CONTINUE
      RETURN
      END`)
	case 19: // general linear recurrence equations, second form
		return hdr(`      REAL B5(N), SA(N), SB(N)
      REAL STB5
      INTEGER K
      DO 5 K = 1, N
         SA(K) = 0.001*K
         SB(K) = 0.002*K
    5 CONTINUE
      STB5 = 0.0157
      DO 10 K = 1, N
         STB5 = SA(K) + STB5*SB(K)
         B5(K) = STB5
   10 CONTINUE
      DO 20 K = N, 1, -1
         STB5 = SA(K) + STB5*SB(K)
         B5(K) = STB5
   20 CONTINUE
      RETURN
      END`)
	case 20: // discrete ordinates transport
		return hdr(`      REAL G(N), U(N), V(N), W(N), X(N), Y(N), Z(N), XX(N), VX(N)
      REAL DK, DI, DN, T, S
      INTEGER K
      DO 5 K = 1, N
         U(K) = 0.001*K
         V(K) = 0.002*K
         W(K) = 0.003*K
         Y(K) = 0.004*K
         Z(K) = 0.005*K
         G(K) = 0.5
         VX(K) = 0.25
    5 CONTINUE
      DK = 0.2
      DN = 0.4
      T = 0.0037
      S = 0.0041
      XX(1) = 0.01
      DO 10 K = 2, N
         DI = Y(K) - G(K)/(XX(K-1) + DK)
         DN = 0.2
         IF (DI .NE. 0.0) THEN
            DN = Z(K)/DI
            IF (T .GT. DN) DN = T
            IF (S .LT. DN) DN = S
         ENDIF
         X(K) = ((W(K) + V(K)*DN)*XX(K-1) + U(K)) / (VX(K) + V(K)*DN)
         XX(K) = (X(K) - XX(K-1))*DN + XX(K-1)
   10 CONTINUE
      RETURN
      END`)
	case 21: // matrix * matrix product
		return hdr(`      REAL PX(M,M), CX(M,M), VY(M,M)
      INTEGER I, J, K
      DO 5 I = 1, M
         DO 6 J = 1, M
            PX(I,J) = 0.0
            CX(I,J) = 0.001*(I+J)
            VY(I,J) = 0.002*(I*J)
    6    CONTINUE
    5 CONTINUE
      DO 10 K = 1, M
         DO 20 I = 1, M
            DO 30 J = 1, M
               PX(I,J) = PX(I,J) + VY(I,K) * CX(K,J)
   30       CONTINUE
   20    CONTINUE
   10 CONTINUE
      RETURN
      END`)
	case 22: // Planckian distribution
		return hdr(`      REAL X(N), Y(N), U(N), V(N), W(N)
      REAL EXPMAX
      INTEGER K
      EXPMAX = 20.0
      DO 5 K = 1, N
         U(K) = 0.001*K
         V(K) = 0.5 + 0.0001*K
         X(K) = 0.0
    5 CONTINUE
      DO 10 K = 1, N
         Y(K) = U(K)/V(K)
         IF (Y(K) .GT. EXPMAX) Y(K) = EXPMAX
         W(K) = X(K)/(EXP(Y(K)) - 1.0 + 0.0001)
   10 CONTINUE
      RETURN
      END`)
	case 23: // 2-D implicit hydrodynamics fragment
		return hdr(`      REAL ZA(M,M), ZB(M,M), ZU(M,M), ZV(M,M), ZR(M,M), ZZ(M,M)
      REAL QA
      INTEGER J, K
      DO 5 J = 1, M
         DO 6 K = 1, M
            ZA(J,K) = 0.001*(J+K)
            ZB(J,K) = 0.002*(J+K)
            ZU(J,K) = 0.003*(J+K)
            ZV(J,K) = 0.004*(J+K)
            ZR(J,K) = 0.005*(J+K)
            ZZ(J,K) = 0.006*(J+K)
    6    CONTINUE
    5 CONTINUE
      DO 10 J = 2, M - 1
         DO 20 K = 2, M - 1
            QA = ZA(J,K+1)*ZR(J,K) + ZA(J,K-1)*ZB(J,K) +
     &           ZA(J+1,K)*ZU(J,K) + ZA(J-1,K)*ZV(J,K) + ZZ(J,K)
            ZA(J,K) = ZA(J,K) + 0.175*(QA - ZA(J,K))
   20    CONTINUE
   10 CONTINUE
      RETURN
      END`)
	case 24: // find location of first minimum
		return hdr(`      REAL X(N)
      INTEGER K, MLOC
      DO 5 K = 1, N
         X(K) = MOD(K*13, 97) * 0.01
    5 CONTINUE
      X(N/2) = -1.0
      MLOC = 1
      DO 10 K = 2, N
         IF (X(K) .LT. X(MLOC)) MLOC = K
   10 CONTINUE
      RETURN
      END`)
	}
	panic(fmt.Sprintf("livermore: no kernel %d", k))
}
