package artifact

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store is a content-addressed artifact directory: one file per ProcKey at
// dir/<key[:2]>/<key>.art. Reads never fail — anything unreadable is a
// miss. Writes go to a temp file in the destination directory and land via
// atomic rename, so concurrent writers (several CLIs sharing one cache
// dir, the service's worker pool) can only ever race to install identical
// bytes; readers see either nothing or a complete blob, and a crash
// mid-write leaves a temp file that is never matched by a Get.
type Store struct {
	dir string
}

// Open validates and creates the cache directory. The error distinguishes
// the common misconfigurations (path is a file, no permission) because
// every CLI surfaces it directly to the user.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact cache: empty directory path")
	}
	if st, err := os.Stat(dir); err == nil && !st.IsDir() {
		return nil, fmt.Errorf("artifact cache: %s is not a directory", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact cache: cannot create %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("artifact cache: %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &Store{dir: dir}, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".art")
}

// Get returns the blob stored under key, or nil on any failure (absent,
// unreadable, empty). Integrity is the decoder's job; Get is pure IO.
func (s *Store) Get(key string) []byte {
	if len(key) < 3 {
		return nil
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil || len(b) == 0 {
		return nil
	}
	return b
}

// Put installs blob under key via write-to-temp + rename. A lost race
// against another writer is not an error — both sides derived the blob
// from the same key, so the bytes are interchangeable.
func (s *Store) Put(key string, blob []byte) error {
	if len(key) < 3 {
		return fmt.Errorf("artifact cache: malformed key %q", key)
	}
	dst := s.path(key)
	dir := filepath.Dir(dst)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("artifact cache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact cache: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact cache: %w", err)
	}
	return nil
}
