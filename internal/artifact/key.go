// Package artifact is the on-disk compiled-artifact cache: a versioned,
// self-describing binary format for the expensive per-procedure middle-end
// products (interval structure, extended CFG, control dependence, dataflow
// facts, Sarkar and Ball–Larus counter plans, VM bytecode), keyed by
// content hash so an edited source file re-derives only the procedures it
// actually changed.
//
// The cache stores the middle-end only. A warm load still re-parses and
// re-lowers the source — that phase is cheap, deterministic, and restores
// the AST/CFG pointer identity the decoded artifacts re-attach to — then
// decodes everything downstream instead of recomputing it. Any read
// failure (version skew, truncation, bit corruption, concurrent partial
// write) is a cache miss, never an error: the pipeline falls back to fresh
// analysis and overwrites the bad entry.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// FormatVersion is bumped whenever any encoded structure changes shape —
// including changes to the encodings in other packages' codec files (cfg,
// interval, ecfg, cdg, dataflow, profiler, pathprof, vm) — or when a
// section's placement semantics change. Blobs written by any other
// version are rejected wholesale; there is no migration, the cache just
// goes cold. See DESIGN.md §17 for the bump policy.
//
// Version 2: the VM bailout section is recorded only in the bailing
// procedure's own artifact (v1 wrote it into every missed procedure's
// entry, which outlived edits to the bailing body), and signature hashes
// cover dimension extents and PARAMETER values.
const FormatVersion = 2

// UnitHash is the content hash of one unit's full canonical dump:
// identical iff the unit parses to the same AST at the same positions.
// This is the per-procedure half of the cache key — editing one
// procedure's body changes only that procedure's UnitHash.
func UnitHash(u *lang.Unit) string {
	sum := sha256.Sum256([]byte(lang.DumpUnit(u)))
	return hex.EncodeToString(sum[:])
}

// sigDump renders the unit's interface — everything a *caller's* compiled
// artifacts can depend on: name, kind, parameter list, and the
// declarations/constants that give parameters their types and array
// shapes. Dimension extents and PARAMETER values are hashed in canonical
// expression form, so a shape or constant-value change invalidates
// callers even though today's cross-procedure compile checks only look
// at kind/arity/type — slightly coarser invalidation is cheap insurance
// against argument staging ever growing an extent check. Bodies are
// excluded, so a body-only edit leaves every other procedure's key
// intact.
func sigDump(u *lang.Unit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%t|%s\n", u.Name, u.IsMain, strings.Join(u.Params, ","))
	for _, d := range u.Decls {
		fmt.Fprintf(&b, "%s", d.Type)
		for _, it := range d.Items {
			fmt.Fprintf(&b, " %s/%d", it.Name, len(it.Dims))
			for _, dim := range it.Dims {
				fmt.Fprintf(&b, "(%s)", lang.DumpExpr(dim))
			}
		}
		b.WriteByte('\n')
	}
	for _, c := range u.Consts {
		fmt.Fprintf(&b, "const %s=%s\n", c.Name, lang.DumpExpr(c.Value))
	}
	return b.String()
}

// LinkHash hashes the program-level linkage every procedure's artifacts
// implicitly depend on: the sorted set of (unit name, signature) pairs
// plus which unit is main. VM bytecode bakes global callee indices (the
// rank of each name in the sorted name set) into opCall operands, and
// compilation checks cross-procedure argument binding against callee
// signatures — so adding, removing, renaming, or re-signaturing any unit
// must invalidate everything, while body edits must invalidate nothing
// but the edited unit.
func LinkHash(prog *lang.Program) string {
	sigs := make([]string, 0, len(prog.Units))
	main := ""
	for _, u := range prog.Units {
		sum := sha256.Sum256([]byte(sigDump(u)))
		sigs = append(sigs, u.Name+"="+hex.EncodeToString(sum[:]))
		if u.IsMain {
			main = u.Name
		}
	}
	sort.Strings(sigs)
	h := sha256.New()
	fmt.Fprintf(h, "main=%s\n", main)
	for _, s := range sigs {
		fmt.Fprintln(h, s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ProcKey is the cache key of one procedure's artifact blob. Engine and
// plan are part of the key because they change which sections a usable
// blob must carry (VM bytecode, Ball–Larus tables); the format version is
// part of the key so a version bump never even reads stale files.
func ProcKey(unitHash, linkHash, engine, plan string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d\n%s\n%s\n%s\n%s\n", FormatVersion, unitHash, linkHash, engine, plan)
	return hex.EncodeToString(h.Sum(nil))
}
