package artifact

import (
	"flag"
	"os"
)

// EnvCacheDir is the environment variable every CLI consults for a
// default cache directory, so a shell-wide `export REPRO_CACHE_DIR=...`
// shares one cache across all tools without per-command flags.
const EnvCacheDir = "REPRO_CACHE_DIR"

// AddCLIFlags registers the shared -cache-dir flag on fs and returns a
// pointer to its value. The default comes from REPRO_CACHE_DIR; an empty
// value disables the on-disk cache entirely.
func AddCLIFlags(fs *flag.FlagSet) *string {
	return fs.String("cache-dir", os.Getenv(EnvCacheDir),
		"on-disk compiled-artifact cache directory (default $"+EnvCacheDir+"; empty disables caching)")
}

// StoreFromFlag resolves a -cache-dir value: nil store (caching off) for
// the empty string, otherwise an opened store or the open error — a bad
// directory is a hard error, not a silent fall-through to uncached mode,
// so misconfigured runs don't quietly lose the speedup they asked for.
func StoreFromFlag(dir string) (*Store, error) {
	if dir == "" {
		return nil, nil
	}
	return Open(dir)
}
