package artifact_test

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/artifact"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/pathprof"
	"repro/internal/profiler"
	"repro/internal/vm"
	"repro/internal/wire"
)

// src exercises every statement family the middle-end serializes: nested
// DO loops, a multi-arm IF with ELSE IF, a computed GOTO, an arithmetic
// IF, calls with scalar and array arguments, and PRINT.
const src = `      PROGRAM ART
      INTEGER I, K, N
      REAL X, S
      REAL A(10)
      N = 10
      S = 0.0
      DO 10 I = 1, N
         X = RAND()
         IF (X .LT. 0.3) THEN
            S = S + X*X
         ELSE IF (X .LT. 0.7) THEN
            CALL TWIST(A, I, S)
         ELSE
            S = S - X
         ENDIF
   10 CONTINUE
      K = INT(S) - INT(S)
      GOTO (20, 30), K + 1
   20 S = S + 1.0
   30 IF (S - 5.0) 40, 50, 50
   40 S = S * 2.0
   50 PRINT *, S
      END

      SUBROUTINE TWIST(A, I, S)
      REAL A(10), S
      INTEGER I, J
      DO 60 J = 1, 5
         A(I) = A(I) + S * 0.5
         S = S + A(I)
   60 CONTINUE
      RETURN
      END
`

type built struct {
	res   *lower.Result
	an    *analysis.Program
	plans profiler.Plans
	paths *pathprof.Plans
	prog  *vm.Program
}

func buildAll(t *testing.T) *built {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	an, err := analysis.AnalyzeProgram(res)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := profiler.BuildPlans(an)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := pathprof.BuildPlansWith(an, plans, pathprof.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vm.Compile(res)
	if err != nil {
		t.Fatal(err)
	}
	return &built{res: res, an: an, plans: plans, paths: paths, prog: prog}
}

func encodeProc(t *testing.T, b *built, name string) []byte {
	t.Helper()
	var w wire.Writer
	if !b.prog.EncodeProc(name, &w) {
		t.Fatalf("no compiled proc %s", name)
	}
	pa := &artifact.ProcArtifact{
		An:     b.an.Procs[name],
		Sarkar: b.plans[name],
		BL:     b.paths.ByProc[name],
		VMCode: w.Bytes(),
	}
	return pa.Encode()
}

// TestRoundTripBitStable: decode against a fresh lowering of the same
// source, re-encode, and require the bytes identical — the oracle
// invariant's cheap byte-level form, covering every codec at once.
func TestRoundTripBitStable(t *testing.T) {
	b := buildAll(t)
	p2, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := lower.Lower(p2)
	if err != nil {
		t.Fatal(err)
	}
	for name := range b.res.Procs {
		blob := encodeProc(t, b, name)
		pa, err := artifact.DecodeProc(blob, res2.Procs[name])
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if pa.An.P != res2.Procs[name] {
			t.Fatalf("%s: decoded analysis not attached to fresh lowering", name)
		}
		blob2 := pa.Encode()
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("%s: re-encoded blob differs (%d vs %d bytes)", name, len(blob), len(blob2))
		}
	}
}

// TestComposedVMIdenticalRun: a program assembled from decoded bytecode
// blobs runs bit-identically to the directly compiled one.
func TestComposedVMIdenticalRun(t *testing.T) {
	b := buildAll(t)
	blobs := make(map[string][]byte)
	for name := range b.res.Procs {
		var w wire.Writer
		if b.prog.EncodeProc(name, &w) {
			blobs[name] = w.Bytes()
		}
	}
	p2, _ := lang.Parse(src)
	res2, err := lower.Lower(p2)
	if err != nil {
		t.Fatal(err)
	}
	prog2, missed, err := vm.ComposeProgram(res2, blobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missed) != 0 {
		t.Fatalf("compose rejected blobs: %v", missed)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		r1, err1 := b.prog.Run(interp.Options{Seed: seed})
		r2, err2 := prog2.Run(interp.Options{Seed: seed})
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: run errors %v / %v", seed, err1, err2)
		}
		if r1.Steps != r2.Steps {
			t.Fatalf("seed %d: steps %d vs %d", seed, r1.Steps, r2.Steps)
		}
		for name, c1 := range r1.ByProc {
			c2 := r2.ByProc[name]
			if c2 == nil {
				t.Fatalf("seed %d: composed run missing proc %s", seed, name)
			}
			for id := range c1.Node {
				if c1.Node[id] != c2.Node[id] {
					t.Fatalf("seed %d: %s node %d count %d vs %d", seed, name, id, c1.Node[id], c2.Node[id])
				}
			}
		}
	}
}

// TestDecodeRejectsMutations: truncations and bit flips at every offset
// produce a typed error, never a panic, and never a silently-accepted
// different artifact.
func TestDecodeRejectsMutations(t *testing.T) {
	b := buildAll(t)
	p2, _ := lang.Parse(src)
	res2, err := lower.Lower(p2)
	if err != nil {
		t.Fatal(err)
	}
	name := "TWIST"
	blob := encodeProc(t, b, name)
	proc := res2.Procs[name]
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := artifact.DecodeProc(blob[:cut], proc); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for off := 0; off < len(blob); off += 11 {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		if _, err := artifact.DecodeProc(mut, proc); err == nil {
			t.Fatalf("bit flip at %d accepted", off)
		}
	}
}

// TestVersionSkewRejected: a blob from any other format version is
// rejected before section decoding.
func TestVersionSkewRejected(t *testing.T) {
	b := buildAll(t)
	blob := encodeProc(t, b, "ART")
	mut := append([]byte(nil), blob...)
	mut[4]++ // little-endian version field follows the 4-byte magic
	if _, err := artifact.DecodeProc(mut, b.res.Procs["ART"]); err == nil {
		t.Fatal("version skew accepted")
	}
}

// TestBailoutMarkerRoundTrip: a bailout marker survives encode/decode.
func TestBailoutMarkerRoundTrip(t *testing.T) {
	b := buildAll(t)
	pa := &artifact.ProcArtifact{
		An:      b.an.Procs["ART"],
		Sarkar:  b.plans["ART"],
		Bailout: &vm.BailoutError{Proc: "ART", Line: 7, Construct: "X", Reason: "test"},
	}
	got, err := artifact.DecodeProc(pa.Encode(), b.res.Procs["ART"])
	if err != nil {
		t.Fatal(err)
	}
	if got.Bailout == nil || *got.Bailout != *pa.Bailout {
		t.Fatalf("bailout marker mangled: %+v", got.Bailout)
	}
}

// TestBothVMSectionsRejected: a blob carrying both the bytecode and the
// bailout section violates the at-most-one invariant and must reject,
// even though its tags are strictly ascending and its checksum is valid.
func TestBothVMSectionsRejected(t *testing.T) {
	b := buildAll(t)
	blob := encodeProc(t, b, "TWIST") // sections 1,2,3,4 (analysis..VM code)
	// Append a tag-5 bailout section to the body and re-sign the blob.
	hdr := len(magicAndVersion(blob)) + sha256.Size
	var sec wire.Writer
	sec.String("TWIST")
	sec.Int(3)
	sec.String("X")
	sec.String("test")
	var body wire.Writer
	body.Raw(blob[hdr:])
	body.U8(5)
	body.BytesPrefixed(sec.Bytes())
	var out wire.Writer
	out.Raw(magicAndVersion(blob))
	sum := sha256.Sum256(body.Bytes())
	out.Raw(sum[:])
	out.Raw(body.Bytes())
	if _, err := artifact.DecodeProc(out.Bytes(), b.res.Procs["TWIST"]); err == nil {
		t.Fatal("blob with both VM code and bailout sections accepted")
	}
}

// magicAndVersion returns the blob's 8-byte prefix: 4-byte magic plus the
// little-endian u32 format version.
func magicAndVersion(blob []byte) []byte { return blob[:8] }

// TestKeyStability: body edits change only the edited unit's hash; any
// signature change moves the link hash.
func TestKeyStability(t *testing.T) {
	p1, _ := lang.Parse(src)
	edited := bytes.Replace([]byte(src), []byte("S = S + A(I)"), []byte("S = S - A(I)"), 1)
	p2, err := lang.Parse(string(edited))
	if err != nil {
		t.Fatal(err)
	}
	if artifact.UnitHash(p1.Unit("ART")) != artifact.UnitHash(p2.Unit("ART")) {
		t.Error("body edit in TWIST changed ART's unit hash")
	}
	if artifact.UnitHash(p1.Unit("TWIST")) == artifact.UnitHash(p2.Unit("TWIST")) {
		t.Error("body edit in TWIST did not change its unit hash")
	}
	if artifact.LinkHash(p1) != artifact.LinkHash(p2) {
		t.Error("body edit changed the link hash")
	}
	resigned := bytes.Replace([]byte(src), []byte("SUBROUTINE TWIST(A, I, S)"), []byte("SUBROUTINE TWIST(A, S, I)"), 1)
	p3, err := lang.Parse(string(resigned))
	if err != nil {
		t.Fatal(err)
	}
	if artifact.LinkHash(p1) == artifact.LinkHash(p3) {
		t.Error("parameter reorder did not change the link hash")
	}
	// Array extents are interface: resizing a declared shape must move the
	// link hash even though the parameter list is unchanged.
	resized := bytes.Replace([]byte(src), []byte("REAL A(10), S"), []byte("REAL A(11), S"), 1)
	p4, err := lang.Parse(string(resized))
	if err != nil {
		t.Fatal(err)
	}
	if artifact.LinkHash(p1) == artifact.LinkHash(p4) {
		t.Error("array extent change did not change the link hash")
	}
}

// TestKeyCoversConstValues: PARAMETER values feed dimension folding, so
// changing one must move the link hash, not just the defining unit's.
func TestKeyCoversConstValues(t *testing.T) {
	const constSrc = `      PROGRAM CP
      PARAMETER (N = 4)
      INTEGER I
      REAL S
      S = 0.0
      DO 10 I = 1, N
         S = S + 1.0
   10 CONTINUE
      PRINT *, S
      END
`
	p1, err := lang.Parse(constSrc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := lang.Parse(strings.Replace(constSrc, "N = 4", "N = 5", 1))
	if err != nil {
		t.Fatal(err)
	}
	if artifact.LinkHash(p1) == artifact.LinkHash(p2) {
		t.Error("PARAMETER value change did not change the link hash")
	}
}
