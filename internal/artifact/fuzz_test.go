package artifact

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/pathprof"
	"repro/internal/profiler"
	"repro/internal/vm"
	"repro/internal/wire"
)

// fuzzSrc is a compact two-procedure program covering every section an
// artifact can carry: control flow rich enough for real counter plans and
// path numberings, a call, and VM-compilable bodies.
const fuzzSrc = `      PROGRAM FZ
      INTEGER I, K
      REAL X, S
      S = 0.0
      DO 10 I = 1, 6
         X = RAND()
         IF (X .LT. 0.5) THEN
            CALL FSUB(S)
         ELSE
            S = S + X
         ENDIF
   10 CONTINUE
      K = INT(S)
      GOTO (20, 30), K + 1
   20 S = S + 1.0
   30 PRINT *, S
      END

      SUBROUTINE FSUB(S)
      REAL S
      INTEGER J
      DO 40 J = 1, 3
         S = S + 0.5
   40 CONTINUE
      RETURN
      END
`

// fuzzProcs lowers fuzzSrc once and returns the procedures decode targets
// attach to, plus one fully populated encoded blob per procedure.
func fuzzProcs(tb testing.TB) (map[string]*lower.Proc, map[string][]byte) {
	tb.Helper()
	prog, err := lang.Parse(fuzzSrc)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		tb.Fatal(err)
	}
	an, err := analysis.AnalyzeProgram(res)
	if err != nil {
		tb.Fatal(err)
	}
	plans, err := profiler.BuildPlans(an)
	if err != nil {
		tb.Fatal(err)
	}
	paths, err := pathprof.BuildPlansWith(an, plans, pathprof.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	vmProg, err := vm.Compile(res)
	if err != nil {
		tb.Fatal(err)
	}
	blobs := make(map[string][]byte, len(res.Procs))
	for name := range res.Procs {
		var w wire.Writer
		pa := &ProcArtifact{An: an.Procs[name], Sarkar: plans[name], BL: paths.ByProc[name]}
		if vmProg.EncodeProc(name, &w) {
			pa.VMCode = w.Bytes()
		}
		blobs[name] = pa.Encode()
	}
	return res.Procs, blobs
}

// FuzzArtifactDecode feeds arbitrary bytes to the blob decoder. Two
// properties must hold everywhere: DecodeProc never panics (it returns a
// typed error for anything but a pristine blob), and — because the header
// checksum would otherwise shield the section codecs from nearly every
// mutation — the same bytes are replayed through decodeSections directly,
// so every per-package codec faces arbitrary input too. A decode that
// somehow succeeds must re-encode and survive a second decode (accepted
// means well-formed, not merely unexploded).
func FuzzArtifactDecode(f *testing.F) {
	procs, blobs := fuzzProcs(f)
	for _, blob := range blobs {
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		mut := append([]byte(nil), blob...)
		mut[len(mut)/3] ^= 0x20
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(magic)
	f.Fuzz(func(t *testing.T, data []byte) {
		for name, proc := range procs {
			pa, err := DecodeProc(data, proc)
			if err == nil {
				blob2 := pa.Encode()
				if _, err := DecodeProc(blob2, proc); err != nil {
					t.Fatalf("%s: accepted blob re-encodes to a rejected one: %v", name, err)
				}
			} else if err.Error() == "" {
				t.Fatalf("%s: empty error message", name)
			}
			// Past-the-header replay: arbitrary bytes straight into the
			// section decoders.
			if pa, err := decodeSections(data, proc); err == nil {
				if pa.An == nil || pa.Sarkar == nil {
					t.Fatalf("%s: decodeSections accepted a blob without required sections", name)
				}
			}
		}
	})
}

// TestFuzzSeedsRejectOrRoundTrip replays the static seed shapes without
// the fuzzing engine, so plain `go test` keeps the harness honest.
func TestFuzzSeedsRejectOrRoundTrip(t *testing.T) {
	procs, blobs := fuzzProcs(t)
	for name, blob := range blobs {
		if _, err := DecodeProc(blob, procs[name]); err != nil {
			t.Fatalf("%s: pristine blob rejected: %v", name, err)
		}
		if _, err := DecodeProc(blob[:len(blob)/2], procs[name]); err == nil {
			t.Fatalf("%s: truncated blob accepted", name)
		}
	}
}
