package artifact

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cdg"
	"repro/internal/dataflow"
	"repro/internal/ecfg"
	"repro/internal/interval"
	"repro/internal/lower"
	"repro/internal/pathprof"
	"repro/internal/profiler"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Blob layout:
//
//	"PTAF"                magic
//	u32                   FormatVersion
//	[32]byte              SHA-256 of everything after this field
//	sections              each: u8 tag, length-prefixed payload
//
// Sections appear in tag order at most once each. Unknown tags are a
// decode error (same version ⇒ same tag set; a new tag means a version
// bump was missed). The checksum rejects torn or bit-flipped files before
// any section decoder runs; the section decoders still tolerate arbitrary
// bytes (typed error, no panic) because the fuzz harness — and a hash
// collision, in principle — can hand them unchecked input.
const (
	secAnalysis  = 1 // interval + ecfg + cdg + fcdg + dataflow
	secSarkar    = 2 // profiler.Plan
	secBL        = 3 // pathprof.Plan (plan=ball-larus only)
	secVM        = 4 // vm bytecode (VM engines only)
	secVMBailout = 5 // vm.BailoutError marker (only in the bailing procedure's own artifact, mutually exclusive with secVM)
)

var magic = []byte("PTAF")

// ProcArtifact is the decoded (or to-be-encoded) middle-end of one
// procedure. An is always present in a usable artifact; Sarkar likewise.
// BL is present iff the blob was written under plan=ball-larus. At most
// one of VMCode/Bailout may be set, and only under a VM engine: VMCode
// holds the procedure's bytecode; Bailout records that program
// compilation bailed out on THIS procedure's body, so a warm load can
// skip re-attempting it — the bailout lives only in the bailing
// procedure's own artifact, whose key covers the body that caused it.
// Under a VM engine a blob may carry neither (it was written while the
// program bailed in some other procedure): the analysis and plans are
// still reusable, and the pipeline recompiles the missing bytecode.
type ProcArtifact struct {
	An      *analysis.Proc
	Sarkar  *profiler.Plan
	BL      *pathprof.Plan
	VMCode  []byte
	Bailout *vm.BailoutError
}

// Encode renders the artifact as a self-checking blob.
func (pa *ProcArtifact) Encode() []byte {
	var body wire.Writer
	var sec wire.Writer

	a := pa.An
	a.Intervals.Encode(&sec)
	a.Ext.Encode(&sec)
	a.CDG.Encode(&sec)
	a.FCDG.Encode(&sec)
	a.Flow.Encode(&sec)
	body.U8(secAnalysis)
	body.BytesPrefixed(sec.Bytes())

	sec = wire.Writer{}
	pa.Sarkar.Encode(&sec)
	body.U8(secSarkar)
	body.BytesPrefixed(sec.Bytes())

	if pa.BL != nil {
		sec = wire.Writer{}
		pa.BL.Encode(&sec)
		body.U8(secBL)
		body.BytesPrefixed(sec.Bytes())
	}
	if pa.VMCode != nil {
		body.U8(secVM)
		body.BytesPrefixed(pa.VMCode)
	} else if pa.Bailout != nil {
		sec = wire.Writer{}
		sec.String(pa.Bailout.Proc)
		sec.Int(pa.Bailout.Line)
		sec.String(pa.Bailout.Construct)
		sec.String(pa.Bailout.Reason)
		body.U8(secVMBailout)
		body.BytesPrefixed(sec.Bytes())
	}

	var out wire.Writer
	out.Raw(magic)
	out.U32(FormatVersion)
	sum := sha256.Sum256(body.Bytes())
	out.Raw(sum[:])
	out.Raw(body.Bytes())
	return out.Bytes()
}

// DecodeProc reads a blob back into a ProcArtifact attached to the freshly
// lowered p. Any malformation — bad magic, version skew, checksum
// mismatch, truncation, out-of-range IDs, duplicate or unknown sections —
// returns a typed error; callers treat every error as a cache miss.
func DecodeProc(blob []byte, p *lower.Proc) (*ProcArtifact, error) {
	r := wire.NewReader(blob)
	r.Expect(magic)
	if v := r.U32(); r.Err() == nil && v != FormatVersion {
		return nil, fmt.Errorf("artifact: format version %d, want %d", v, FormatVersion)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if r.Remaining() < sha256.Size {
		return nil, fmt.Errorf("artifact: truncated checksum")
	}
	hdr := len(blob) - r.Remaining()
	want := blob[hdr : hdr+sha256.Size]
	body := blob[hdr+sha256.Size:]
	if got := sha256.Sum256(body); string(got[:]) != string(want) {
		return nil, fmt.Errorf("artifact: checksum mismatch")
	}
	return decodeSections(body, p)
}

// decodeSections decodes the post-checksum section stream. Split out so
// the fuzz harness can drive the section decoders with arbitrary bytes
// (recomputing the checksum would mask them behind SHA-256).
func decodeSections(body []byte, p *lower.Proc) (*ProcArtifact, error) {
	r := wire.NewReader(body)
	pa := &ProcArtifact{}
	prev := 0
	for r.Err() == nil && r.Remaining() > 0 {
		tag := int(r.U8())
		payload := r.BytesPrefixed()
		if r.Err() != nil {
			break
		}
		if tag <= prev || tag > secVMBailout {
			return nil, fmt.Errorf("artifact: unexpected section tag %d after %d", tag, prev)
		}
		prev = tag
		if tag == secVM {
			// Kept opaque here: vm.ComposeProgram validates the bytecode
			// against the whole program (callee indices are global).
			pa.VMCode = payload
			continue
		}
		sr := wire.NewReader(payload)
		switch tag {
		case secAnalysis:
			a := &analysis.Proc{P: p}
			a.Intervals = interval.Decode(sr, p.G)
			if sr.Err() == nil {
				a.Ext = ecfg.Decode(sr, p.G)
			}
			if sr.Err() == nil {
				a.CDG = cdg.Decode(sr, a.Ext)
			}
			if sr.Err() == nil {
				a.FCDG = cdg.Decode(sr, a.Ext)
			}
			if sr.Err() == nil {
				a.Flow = dataflow.Decode(sr, p)
			}
			if sr.Err() == nil {
				pa.An = a
			}
		case secSarkar:
			if pa.An == nil {
				return nil, fmt.Errorf("artifact: plan section without analysis section")
			}
			pa.Sarkar = profiler.DecodePlan(sr, pa.An)
		case secBL:
			if pa.Sarkar == nil {
				return nil, fmt.Errorf("artifact: path-plan section without Sarkar section")
			}
			pa.BL = pathprof.DecodePlan(sr, pa.An, pa.Sarkar)
		case secVMBailout:
			if pa.VMCode != nil {
				return nil, fmt.Errorf("artifact: blob carries both bytecode and bailout sections")
			}
			be := &vm.BailoutError{}
			be.Proc = sr.String()
			be.Line = sr.Int()
			be.Construct = sr.String()
			be.Reason = sr.String()
			if sr.Err() == nil {
				pa.Bailout = be
			}
		}
		if err := sr.Err(); err != nil {
			return nil, fmt.Errorf("artifact: section %d: %w", tag, err)
		}
		if sr.Remaining() != 0 {
			return nil, fmt.Errorf("artifact: section %d: %d trailing bytes", tag, sr.Remaining())
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if pa.An == nil || pa.Sarkar == nil {
		return nil, fmt.Errorf("artifact: blob missing required sections")
	}
	return pa, nil
}
