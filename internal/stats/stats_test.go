package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", w.Mean())
	}
	if math.Abs(w.PopVar()-4) > 1e-12 {
		t.Errorf("popvar = %g, want 4", w.PopVar())
	}
	if math.Abs(w.StdDev()-2) > 1e-12 {
		t.Errorf("std = %g, want 2", w.StdDev())
	}
	if math.Abs(w.SampleVar()-32.0/7) > 1e-12 {
		t.Errorf("samplevar = %g, want %g", w.SampleVar(), 32.0/7)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.PopVar() != 0 || w.SampleVar() != 0 {
		t.Error("empty Welford must be all zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.PopVar() != 0 || w.SampleVar() != 0 {
		t.Errorf("single observation: mean=%g pop=%g sample=%g", w.Mean(), w.PopVar(), w.SampleVar())
	}
}

// TestWelfordMatchesNaive cross-checks the streaming computation against
// the two-pass formula on random data.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%64)
		rng := uint64(seed)
		xs := make([]float64, n)
		var w Welford
		sum := 0.0
		for i := range xs {
			rng = rng*6364136223846793005 + 1442695040888963407
			xs[i] = float64(rng>>11)/float64(1<<53)*2000 - 1000
			w.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		pop := m2 / float64(n)
		scale := math.Max(1, math.Abs(pop))
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.PopVar()-pop) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeKnownValues(t *testing.T) {
	var a, b, all Welford
	left := []float64{2, 4, 4, 4}
	right := []float64{5, 5, 7, 9}
	for _, x := range left {
		a.Add(x)
		all.Add(x)
	}
	for _, x := range right {
		b.Add(x)
		all.Add(x)
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Errorf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Errorf("merged mean = %g, want %g", a.Mean(), all.Mean())
	}
	if math.Abs(a.PopVar()-all.PopVar()) > 1e-12 {
		t.Errorf("merged popvar = %g, want %g", a.PopVar(), all.PopVar())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging an empty accumulator is a no-op
	if a != before {
		t.Errorf("merge of empty changed the accumulator: %+v", a)
	}
	b.Merge(a) // merging into an empty accumulator copies
	if b.N() != 2 || math.Abs(b.Mean()-2) > 1e-12 || math.Abs(b.PopVar()-1) > 1e-12 {
		t.Errorf("merge into empty: n=%d mean=%g var=%g", b.N(), b.Mean(), b.PopVar())
	}
	var c, d Welford
	c.Merge(d)
	if c.N() != 0 {
		t.Error("empty merged with empty must stay empty")
	}
}

// TestWelfordMergeMatchesSequential is the merge/variance identity: splitting
// a stream at any point, accumulating the halves separately, and merging must
// agree with one sequential pass.
func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(seed int64, nRaw, splitRaw uint8) bool {
		n := 2 + int(nRaw%64)
		split := 1 + int(splitRaw)%(n-1)
		rng := uint64(seed)
		var left, right, seq Welford
		for i := 0; i < n; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			x := float64(rng>>11)/float64(1<<53)*2000 - 1000
			if i < split {
				left.Add(x)
			} else {
				right.Add(x)
			}
			seq.Add(x)
		}
		left.Merge(right)
		scale := math.Max(1, math.Abs(seq.PopVar()))
		return left.N() == seq.N() &&
			math.Abs(left.Mean()-seq.Mean()) < 1e-9 &&
			math.Abs(left.PopVar()-seq.PopVar()) < 1e-6*scale &&
			math.Abs(left.SampleVar()-seq.SampleVar()) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if s.N != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("mean = %g", s.Mean)
	}
	// Even count: median is the midpoint.
	s = Summarize([]float64{1, 2, 3, 10})
	if s.Median != 2.5 {
		t.Errorf("median = %g, want 2.5", s.Median)
	}
	// Empty.
	s = Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if !strings.Contains(Summarize([]float64{1}).String(), "n=1") {
		t.Error("String() missing n")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}
