// Package stats provides the small statistical toolkit the experiments
// use: streaming mean/variance (Welford), summaries, and simple
// distribution helpers for ground-truth comparisons against the
// estimator's TIME/VAR values.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in one pass, numerically stably.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add feeds one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w, as if every observation fed to o
// had also been fed to w (the pairwise combination of Chan, Golub & LeVeque).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// PopVar returns the population variance (divides by n).
func (w *Welford) PopVar() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the sample variance (divides by n−1; 0 if n < 2).
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.PopVar()) }

// Summary describes a sample.
type Summary struct {
	N                int
	Mean, Var, Std   float64
	Min, Max, Median float64
}

// Summarize computes a Summary of xs (population variance).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	var w Welford
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		w.Add(x)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean, s.Var, s.Std = w.Mean(), w.PopVar(), w.StdDev()
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}
