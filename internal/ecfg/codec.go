package ecfg

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/interval"
	"repro/internal/wire"
)

// Encode serializes the extended graph and its bookkeeping. The extended
// graph's node payloads are not written: original nodes (ID ≤ OrigMax)
// re-share the freshly lowered procedure's payload pointers on decode, and
// synthetic nodes carry none.
func (ext *Ext) Encode(w *wire.Writer) {
	w.Varint(int64(ext.Start))
	w.Varint(int64(ext.Stop))
	w.Varint(int64(ext.OrigEntry))
	w.Varint(int64(ext.OrigExit))
	w.Varint(int64(ext.OrigMax))
	ext.G.Encode(w)

	hs := make([]cfg.NodeID, 0, len(ext.Preheader))
	for h := range ext.Preheader {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	w.Uvarint(uint64(len(hs)))
	for _, h := range hs {
		w.Varint(int64(h))
		w.Varint(int64(ext.Preheader[h]))
	}
	w.Uvarint(uint64(len(ext.Postexits)))
	for _, pe := range ext.Postexits {
		w.Varint(int64(pe))
		w.Varint(int64(ext.ExitedInterval[pe]))
	}
	ext.Intervals.Encode(w)
}

// Decode reads an Ext written by Encode, re-attaching payloads of original
// nodes from the freshly lowered graph g (which must be the graph the
// encoded Ext was built from).
func Decode(r *wire.Reader, g *cfg.Graph) *Ext {
	ext := &Ext{
		Preheader:      make(map[cfg.NodeID]cfg.NodeID),
		HeaderOf:       make(map[cfg.NodeID]cfg.NodeID),
		ExitedInterval: make(map[cfg.NodeID]cfg.NodeID),
	}
	ext.Start = cfg.NodeID(r.Varint())
	ext.Stop = cfg.NodeID(r.Varint())
	ext.OrigEntry = cfg.NodeID(r.Varint())
	ext.OrigExit = cfg.NodeID(r.Varint())
	ext.OrigMax = cfg.NodeID(r.Varint())
	if r.Err() != nil {
		return ext
	}
	if ext.OrigMax != g.MaxID() {
		r.Failf("ecfg OrigMax %d does not match lowered graph %q (max %d)", ext.OrigMax, g.Name, g.MaxID())
		return ext
	}
	ext.G = cfg.DecodeGraph(r, func(id cfg.NodeID) any {
		if id <= ext.OrigMax {
			if n := g.Node(id); n != nil {
				return n.Payload
			}
		}
		return nil
	})
	if r.Err() != nil {
		return ext
	}
	eg := ext.G
	nh := r.Count(2)
	for i := 0; i < nh; i++ {
		h := cfg.DecodeNodeID(r, eg)
		ph := cfg.DecodeNodeID(r, eg)
		if r.Err() != nil {
			return ext
		}
		ext.Preheader[h] = ph
		ext.HeaderOf[ph] = h
	}
	np := r.Count(2)
	for i := 0; i < np; i++ {
		pe := cfg.DecodeNodeID(r, eg)
		h := cfg.DecodeNodeID(r, eg)
		if r.Err() != nil {
			return ext
		}
		ext.Postexits = append(ext.Postexits, pe)
		ext.ExitedInterval[pe] = h
	}
	ext.Intervals = interval.Decode(r, eg)
	return ext
}
