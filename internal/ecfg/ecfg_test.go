package ecfg

import (
	"errors"
	"testing"

	"repro/internal/cfg"
	"repro/internal/dfst"
	"repro/internal/interval"
	"repro/internal/paperex"
)

func mustBuild(t *testing.T, g *cfg.Graph) *Ext {
	t.Helper()
	in, err := interval.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Build(g, in)
	if err != nil {
		t.Fatal(err)
	}
	return ext
}

func TestPaperExampleShape(t *testing.T) {
	g := paperex.CFG()
	ext := mustBuild(t, g)
	eg := ext.G

	// Figure 2 shape: original 6 nodes + 1 preheader + 2 postexits +
	// START + STOP = 11 nodes.
	if eg.NumNodes() != 11 {
		t.Fatalf("ECFG has %d nodes, want 11:\n%s", eg.NumNodes(), eg)
	}
	ph, ok := ext.Preheader[paperex.IfM]
	if !ok {
		t.Fatal("header has no preheader")
	}
	if eg.Node(ph).Type != cfg.Preheader {
		t.Errorf("preheader node type = %v", eg.Node(ph).Type)
	}
	if eg.Node(paperex.IfM).Type != cfg.Header {
		t.Errorf("header node type = %v", eg.Node(paperex.IfM).Type)
	}
	if len(ext.Postexits) != 2 {
		t.Fatalf("postexits = %v, want 2 of them", ext.Postexits)
	}
	for _, pe := range ext.Postexits {
		if ext.ExitedInterval[pe] != paperex.IfM {
			t.Errorf("postexit %d exits interval %d, want %d", pe, ext.ExitedInterval[pe], paperex.IfM)
		}
		// Pseudo edge from the preheader.
		found := false
		for _, e := range eg.InEdges(pe) {
			if e.From == ph && e.Label == cfg.PseudoLoop {
				found = true
			}
		}
		if !found {
			t.Errorf("postexit %d missing pseudo edge from preheader", pe)
		}
	}

	// START enters through the preheader (the original entry is the loop
	// header), and START -> STOP pseudo edge exists.
	var sawEntry, sawZ1 bool
	for _, e := range eg.OutEdges(ext.Start) {
		switch {
		case e.To == ph && e.Label == cfg.Uncond:
			sawEntry = true
		case e.To == ext.Stop && e.Label == cfg.PseudoStartStop:
			sawZ1 = true
		}
	}
	if !sawEntry || !sawZ1 {
		t.Errorf("START edges wrong: %v", eg.OutEdges(ext.Start))
	}

	// The back edge GOTO 10 -> header survives untouched.
	if !hasEdge(eg, paperex.Goto10, paperex.IfM, cfg.Uncond) {
		t.Error("back edge GOTO10 -> header missing")
	}
	// The exit edges now route through postexits: 2-T->pe and 3-T->pe.
	for _, src := range []cfg.NodeID{paperex.IfNLt, paperex.IfNGe} {
		for _, e := range eg.OutEdges(src) {
			if e.Label == cfg.True && eg.Node(e.To).Type != cfg.Postexit {
				t.Errorf("exit edge %v does not target a postexit", e)
			}
		}
	}
	if eg.Entry != ext.Start || eg.Exit != ext.Stop {
		t.Error("extended graph entry/exit not START/STOP")
	}
}

func hasEdge(g *cfg.Graph, from, to cfg.NodeID, l cfg.Label) bool {
	for _, e := range g.OutEdges(from) {
		if e.To == to && e.Label == l {
			return true
		}
	}
	return false
}

func TestIntervalsRecomputed(t *testing.T) {
	ext := mustBuild(t, paperex.CFG())
	iv := ext.Intervals
	if len(iv.Headers()) != 1 || iv.Headers()[0] != paperex.IfM {
		t.Fatalf("extended headers = %v", iv.Headers())
	}
	ph := ext.Preheader[paperex.IfM]
	if iv.HDR(ph) != cfg.None {
		t.Errorf("HDR(preheader) = %d, want None (parent interval)", iv.HDR(ph))
	}
	for _, pe := range ext.Postexits {
		if iv.HDR(pe) != cfg.None {
			t.Errorf("HDR(postexit %d) = %d, want None", pe, iv.HDR(pe))
		}
	}
	// Loop body unchanged: nodes 1..5.
	for n := cfg.NodeID(1); n <= 5; n++ {
		if iv.HDR(n) != paperex.IfM {
			t.Errorf("HDR(%d) = %d, want header", n, iv.HDR(n))
		}
	}
}

func TestNestedLoopsGetChainedPostexits(t *testing.T) {
	// Inner loop exit that jumps straight out of both loops:
	// 1 -> 2(outer) -> 3(inner) -> 4 -> 3, 4 -> 6 (two-level exit),
	// plus normal paths 3 -> 5 -> 2 and 5 -> 6.
	g := cfg.New("two-level")
	for i := 0; i < 6; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 4, cfg.Uncond)
	g.MustAddEdge(4, 3, cfg.True)
	g.MustAddEdge(4, 6, cfg.False) // jumps out of inner AND outer loop
	g.MustAddEdge(3, 5, cfg.True)
	g.MustAddEdge(5, 2, cfg.True)
	g.MustAddEdge(5, 6, cfg.False)
	g.Entry, g.Exit = 1, 6

	// Hmm: 3 -> 4 (Uncond) and 3 -> 5 (True) both leave 3; that's fine for
	// the multigraph, the frontend would never produce it but the analyses
	// must not care.
	ext := mustBuild(t, g)
	// The two-level exit 4 -> 6 must produce a chain of two postexits:
	// one leaving the inner interval (pseudo edge from inner preheader) and
	// one leaving the outer (pseudo edge from outer preheader).
	byInterval := map[cfg.NodeID]int{}
	for _, pe := range ext.Postexits {
		byInterval[ext.ExitedInterval[pe]]++
	}
	if byInterval[3] < 1 {
		t.Errorf("no postexit for the inner interval: %v", ext.ExitedInterval)
	}
	if byInterval[2] < 1 {
		t.Errorf("no postexit for the outer interval: %v", ext.ExitedInterval)
	}
	// Every interval entry goes through the preheader chain.
	if err := ext.check(); err != nil {
		t.Error(err)
	}
}

func TestEntryEdgeFromSiblingLoopSplitsThenEnters(t *testing.T) {
	// Loop A {2} exits straight into loop B {3}: 1->2, 2->2, 2->3, 3->3,
	// 3->4. The edge 2->3 is an exit of A and an entry of B: it must route
	// 2 -> postexit(A) -> preheader(B) -> 3.
	g := cfg.New("sibling-transfer")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 2, cfg.True)
	g.MustAddEdge(2, 3, cfg.False)
	g.MustAddEdge(3, 3, cfg.True)
	g.MustAddEdge(3, 4, cfg.False)
	g.Entry, g.Exit = 1, 4
	ext := mustBuild(t, g)
	eg := ext.G
	phB := ext.Preheader[3]
	// 2's False successor must now be a postexit whose successor is phB.
	var ok bool
	for _, e := range eg.OutEdges(2) {
		if e.Label != cfg.False {
			continue
		}
		pe := e.To
		if eg.Node(pe).Type == cfg.Postexit && hasEdge(eg, pe, phB, cfg.Uncond) {
			ok = true
		}
	}
	if !ok {
		t.Errorf("edge 2-F must route through postexit(A) then preheader(B):\n%s", eg)
	}
}

func TestNoLoopsStillGetsStartStop(t *testing.T) {
	g := cfg.New("line")
	g.AddNode(cfg.Other, "a")
	g.AddNode(cfg.Other, "b")
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.Entry, g.Exit = 1, 2
	ext := mustBuild(t, g)
	if ext.G.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4 (a, b, START, STOP)", ext.G.NumNodes())
	}
	if len(ext.Preheader) != 0 || len(ext.Postexits) != 0 {
		t.Error("loop-free graph must get no preheaders/postexits")
	}
	if !ext.IsSynthetic(ext.Start) || ext.IsSynthetic(1) {
		t.Error("IsSynthetic wrong")
	}
}

func TestInvalidInputRejected(t *testing.T) {
	g := cfg.New("bad")
	g.AddNode(cfg.Other, "a")
	g.AddNode(cfg.Other, "island")
	g.Entry, g.Exit = 1, 1
	in := &interval.Info{}
	if _, err := Build(g, in); err == nil {
		t.Fatal("Build must reject graphs that fail Validate")
	}
}

func TestSelfLoopHeader(t *testing.T) {
	// 1 -> 2, 2 -> 2 (self loop), 2 -> 3.
	g := cfg.New("self")
	for i := 0; i < 3; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 2, cfg.True)
	g.MustAddEdge(2, 3, cfg.False)
	g.Entry, g.Exit = 1, 3
	ext := mustBuild(t, g)
	ph, ok := ext.Preheader[2]
	if !ok {
		t.Fatal("self-loop header got no preheader")
	}
	// The self edge stays; the entry edge routes through the preheader.
	if !hasEdge(ext.G, 2, 2, cfg.True) {
		t.Error("self loop edge lost")
	}
	if !hasEdge(ext.G, 1, ph, cfg.Uncond) || !hasEdge(ext.G, ph, 2, cfg.Uncond) {
		t.Errorf("entry not routed through preheader:\n%s", ext.G)
	}
	// Exactly one postexit, fed by the F edge.
	if len(ext.Postexits) != 1 {
		t.Fatalf("postexits = %v", ext.Postexits)
	}
}

func TestLoopAtEntry(t *testing.T) {
	// The entry node itself is a loop header; START must route through the
	// preheader (the Figure 2 case).
	g := cfg.New("entryloop")
	g.AddNode(cfg.Other, "hdr")
	g.AddNode(cfg.Other, "exit")
	g.MustAddEdge(1, 1, cfg.True)
	g.MustAddEdge(1, 2, cfg.False)
	g.Entry, g.Exit = 1, 2
	ext := mustBuild(t, g)
	ph := ext.Preheader[1]
	ok := false
	for _, e := range ext.G.OutEdges(ext.Start) {
		if e.To == ph && e.Label == cfg.Uncond {
			ok = true
		}
	}
	if !ok {
		t.Errorf("START must enter through the preheader:\n%s", ext.G)
	}
}

func TestPreheadersInOrderAndSynthetic(t *testing.T) {
	ext := mustBuild(t, paperex.CFG())
	phs := ext.PreheadersInOrder()
	if len(phs) != 1 || phs[0] != ext.Preheader[paperex.IfM] {
		t.Errorf("PreheadersInOrder = %v", phs)
	}
	if !ext.IsSynthetic(phs[0]) || ext.IsSynthetic(paperex.Call) {
		t.Error("IsSynthetic misclassifies")
	}
}

// irreducibleDoubleEntry builds a loop {2,3} that is entered both at 2 and
// at 3 — the canonical irreducible shape lower's node splitting exists for.
func irreducibleDoubleEntry() *cfg.Graph {
	g := cfg.New("irr")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.True)
	g.MustAddEdge(1, 3, cfg.False)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 2, cfg.True)
	g.MustAddEdge(3, 4, cfg.False)
	g.Entry, g.Exit = 1, 4
	return g
}

// TestIrreducibleTypedErrorThenSplit feeds a double-entry loop to the
// interval/ECFG layers directly, bypassing lower's node splitting: the
// interval layer must return the typed *interval.ErrIrreducible (not
// panic), and after dfst.MakeReducible the same graph must flow through
// Build cleanly.
func TestIrreducibleTypedErrorThenSplit(t *testing.T) {
	g := irreducibleDoubleEntry()
	_, err := interval.Analyze(g)
	var irr *interval.ErrIrreducible
	if !errors.As(err, &irr) {
		t.Fatalf("interval.Analyze = %v, want *interval.ErrIrreducible", err)
	}
	if irr.Edge.To == 0 {
		t.Errorf("typed error carries no offending edge: %+v", irr)
	}

	split, sr := dfst.MakeReducible(g)
	if sr.Splits == 0 {
		t.Fatal("MakeReducible performed no splits on a double-entry loop")
	}
	iv, err := interval.Analyze(split)
	if err != nil {
		t.Fatalf("interval.Analyze after splitting: %v", err)
	}
	ext, err := Build(split, iv)
	if err != nil {
		t.Fatalf("Build after splitting: %v", err)
	}
	if len(iv.Headers()) == 0 {
		t.Error("split graph lost its loop")
	}
	if ext.Start == 0 || ext.Stop == 0 {
		t.Errorf("ECFG missing START/STOP: start=%d stop=%d", ext.Start, ext.Stop)
	}
}
