// Package ecfg builds the extended control flow graph (ECFG) of Section 2
// of the paper.
//
// Starting from a reducible CFG and its interval structure, the
// transformation:
//
//  1. creates a PREHEADER node for every loop header and redirects interval
//     entry edges through it,
//  2. splits every interval exit edge through a fresh POSTEXIT node and adds
//     a pseudo control flow edge from the interval's preheader to the
//     postexit,
//  3. adds START and STOP nodes around the procedure with a pseudo edge
//     START -> STOP.
//
// The pseudo edges (labels Z1/Z2, never taken at run time) give the forward
// control dependence graph its nested interval structure: every node of the
// procedure becomes (transitively) control dependent on START, and every
// node of an interval becomes (transitively) control dependent on the
// interval's preheader.
//
// One generalization over the paper's one-pass step 3: an edge that jumps
// out of k nested intervals at once is routed through a chain of k POSTEXIT
// nodes (the exit-splitting rule is applied to a fixpoint), so multi-level
// exits also respect interval nesting in the FCDG.
package ecfg

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/interval"
)

// Ext is an extended control flow graph together with the bookkeeping that
// later phases (FCDG construction, profiling, estimation) need.
type Ext struct {
	// G is the extended graph. Node IDs of the original graph are
	// preserved; all new nodes have IDs greater than OrigMax.
	G *cfg.Graph

	// Start and Stop are the synthetic START and STOP nodes.
	Start, Stop cfg.NodeID

	// OrigEntry and OrigExit are the original entry/exit (n_first, n_last).
	OrigEntry, OrigExit cfg.NodeID

	// OrigMax is the largest node ID of the input graph.
	OrigMax cfg.NodeID

	// Preheader maps each loop header to its preheader node.
	Preheader map[cfg.NodeID]cfg.NodeID
	// HeaderOf maps each preheader back to its header.
	HeaderOf map[cfg.NodeID]cfg.NodeID

	// Postexits lists the POSTEXIT nodes in creation order.
	Postexits []cfg.NodeID
	// ExitedInterval maps each postexit to the header of the interval the
	// exit leaves.
	ExitedInterval map[cfg.NodeID]cfg.NodeID

	// Intervals is the interval structure recomputed on the extended graph.
	// Loop headers are identical to the input's; preheaders and postexits
	// belong to the parent interval of the loop they serve.
	Intervals *interval.Info
}

// Build constructs the ECFG of g using its interval structure in. The input
// graph is not modified. g must validate and be reducible (in must come
// from interval.Analyze(g)).
func Build(g *cfg.Graph, in *interval.Info) (*Ext, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("ecfg: %w", err)
	}
	eg := g.Clone()
	ext := &Ext{
		G:              eg,
		OrigEntry:      g.Entry,
		OrigExit:       g.Exit,
		OrigMax:        g.MaxID(),
		Preheader:      make(map[cfg.NodeID]cfg.NodeID),
		HeaderOf:       make(map[cfg.NodeID]cfg.NodeID),
		ExitedInterval: make(map[cfg.NodeID]cfg.NodeID),
	}

	// hdrx extends HDR to the nodes we create: preheaders and postexits
	// live in the parent interval of the loop they serve.
	hdrx := make(map[cfg.NodeID]cfg.NodeID)
	hdrOf := func(n cfg.NodeID) cfg.NodeID {
		if n <= ext.OrigMax {
			return in.HDR(n)
		}
		return hdrx[n]
	}

	// Step 2: preheaders. Mark headers and redirect interval entries.
	for _, h := range in.Headers() {
		eg.Node(h).Type = cfg.Header
		ph := eg.AddNode(cfg.Preheader, fmt.Sprintf("PREHEADER(%d)", h))
		ext.Preheader[h] = ph.ID
		ext.HeaderOf[ph.ID] = h
		hdrx[ph.ID] = in.Parent(h)
		// Snapshot in-edges before mutating.
		entries := append([]cfg.Edge(nil), eg.InEdges(h)...)
		for _, e := range entries {
			if in.LCA(hdrOf(e.From), h) == h {
				continue // back edge or edge from within the interval
			}
			eg.RemoveEdge(e.From, h, e.Label)
			eg.MustAddEdge(e.From, ph.ID, e.Label)
		}
		eg.MustAddEdge(ph.ID, h, cfg.Uncond)
	}

	// Step 3 (to a fixpoint): split interval exit edges through POSTEXIT
	// nodes. The worklist carries edges still to be examined; edges created
	// by a split are re-examined so multi-level exits build a postexit
	// chain.
	work := append([]cfg.Edge(nil), eg.Edges()...)
	for len(work) > 0 {
		e := work[0]
		work = work[1:]
		if e.Pseudo() {
			continue
		}
		hu := hdrOf(e.From)
		if hu == cfg.None {
			continue // source is in the outermost interval: nothing to exit
		}
		if in.LCA(hu, hdrOf(e.To)) == hu {
			continue // target inside the source's interval
		}
		// Splitting happens only if the edge still exists (a prior split
		// may have consumed it).
		if !eg.RemoveEdge(e.From, e.To, e.Label) {
			continue
		}
		pe := eg.AddNode(cfg.Postexit, fmt.Sprintf("POSTEXIT(%d)", hu))
		hdrx[pe.ID] = in.Parent(hu)
		ext.Postexits = append(ext.Postexits, pe.ID)
		ext.ExitedInterval[pe.ID] = hu
		eg.MustAddEdge(e.From, pe.ID, e.Label)
		eg.MustAddEdge(pe.ID, e.To, cfg.Uncond)
		eg.MustAddEdge(ext.Preheader[hu], pe.ID, cfg.PseudoLoop)
		// The continuation may still exit an enclosing interval.
		work = append(work, cfg.Edge{From: pe.ID, To: e.To, Label: cfg.Uncond})
	}

	// Steps 4-6: START, STOP and the START -> STOP pseudo edge.
	start := eg.AddNode(cfg.Start, "START")
	stop := eg.AddNode(cfg.Stop, "STOP")
	ext.Start, ext.Stop = start.ID, stop.ID
	// The original entry may have been a loop header whose entry edges now
	// route through a preheader; START must enter through it too.
	entryTarget := ext.OrigEntry
	if ph, ok := ext.Preheader[entryTarget]; ok {
		entryTarget = ph
	}
	eg.MustAddEdge(start.ID, entryTarget, cfg.Uncond)
	eg.MustAddEdge(ext.OrigExit, stop.ID, cfg.Uncond)
	eg.MustAddEdge(start.ID, stop.ID, cfg.PseudoStartStop)
	eg.Entry, eg.Exit = start.ID, stop.ID

	if err := eg.Validate(); err != nil {
		return nil, fmt.Errorf("ecfg: extended graph invalid: %w", err)
	}
	ivx, err := interval.Analyze(eg)
	if err != nil {
		return nil, fmt.Errorf("ecfg: extended graph lost reducibility: %w", err)
	}
	ext.Intervals = ivx
	if err := ext.check(); err != nil {
		return nil, err
	}
	return ext, nil
}

// check verifies the structural properties the rest of the pipeline relies
// on: headers are unchanged, each header's only interval entry is its
// preheader, and every postexit has exactly one non-pseudo in-edge and one
// out-edge.
func (ext *Ext) check() error {
	for _, h := range ext.Intervals.Headers() {
		if _, ok := ext.Preheader[h]; !ok {
			return fmt.Errorf("ecfg: extended graph has header %d with no preheader", h)
		}
		for _, e := range ext.G.InEdges(h) {
			if ext.Intervals.Contains(h, e.From) {
				continue
			}
			if e.From != ext.Preheader[h] {
				return fmt.Errorf("ecfg: interval entry %v bypasses preheader of %d", e, h)
			}
		}
	}
	for _, pe := range ext.Postexits {
		real := 0
		for _, e := range ext.G.InEdges(pe) {
			if !e.Pseudo() {
				real++
			}
		}
		if real != 1 {
			return fmt.Errorf("ecfg: postexit %d has %d real in-edges, want 1", pe, real)
		}
		if len(ext.G.OutEdges(pe)) != 1 {
			return fmt.Errorf("ecfg: postexit %d has %d out-edges, want 1", pe, len(ext.G.OutEdges(pe)))
		}
	}
	return nil
}

// IsSynthetic reports whether n was created by the ECFG transformation
// (START, STOP, preheader or postexit) rather than copied from the input.
func (ext *Ext) IsSynthetic(n cfg.NodeID) bool { return n > ext.OrigMax }

// LoopBodyLabel is the label of the edge connecting a preheader to its
// header; per Definition 3 the frequency of (preheader, LoopBodyLabel) is
// the loop frequency of the interval.
const LoopBodyLabel = cfg.Uncond

// PreheadersInOrder returns the preheader nodes sorted by ID.
func (ext *Ext) PreheadersInOrder() []cfg.NodeID {
	out := make([]cfg.NodeID, 0, len(ext.HeaderOf))
	for ph := range ext.HeaderOf {
		out = append(out, ph)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
