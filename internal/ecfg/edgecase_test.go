package ecfg

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/interval"
	"repro/internal/lang"
	"repro/internal/lower"
)

// buildFromSource lowers a program and builds the ECFG of its main unit.
func buildFromSource(t *testing.T, src string) *Ext {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	in, err := interval.Analyze(res.Main.G)
	if err != nil {
		t.Fatalf("interval: %v", err)
	}
	ext, err := Build(res.Main.G, in)
	if err != nil {
		t.Fatalf("ecfg: %v", err)
	}
	return ext
}

// TestLoweredEdgeCases checks the ECFG shape on the same boundary programs
// the interval package tests: a zero-trip DO, a single-node self-loop, and a
// loop whose several exit edges share one target. The key structural
// property is that every exit edge gets its own POSTEXIT — an exit target
// with multiple predecessors never produces a postexit with more than one
// real in-edge.
func TestLoweredEdgeCases(t *testing.T) {
	cases := []struct {
		name          string
		src           string
		wantPostexits int
	}{
		{
			name: "zero-trip DO",
			src: `      PROGRAM ZTRIP
      INTEGER I, K
      K = 0
      DO 10 I = 5, 1
         K = K + 1
   10 CONTINUE
      PRINT *, K
      END
`,
			wantPostexits: 1,
		},
		{
			name: "single-node self-loop",
			src: `      PROGRAM SELFL
   10 IF (RAND() .LT. 0.5) GOTO 10
      PRINT *, 1
      END
`,
			wantPostexits: 1,
		},
		{
			name: "three exit edges to one join",
			src: `      PROGRAM TWOEX
      INTEGER K
      K = 0
   10 K = K + 1
      IF (RAND() .LT. 0.2) GOTO 30
      IF (RAND() .LT. 0.3) GOTO 30
      IF (K .LT. 8) GOTO 10
   30 CONTINUE
      PRINT *, K
      END
`,
			wantPostexits: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ext := buildFromSource(t, tc.src)
			eg := ext.G

			if len(ext.Preheader) != 1 {
				t.Fatalf("preheaders = %v, want exactly one", ext.Preheader)
			}
			var h, ph cfg.NodeID
			for hh, pp := range ext.Preheader {
				h, ph = hh, pp
			}
			if ext.HeaderOf[ph] != h {
				t.Errorf("HeaderOf(%d) = %d, want %d", ph, ext.HeaderOf[ph], h)
			}

			if len(ext.Postexits) != tc.wantPostexits {
				t.Fatalf("postexits = %v, want %d:\n%s", ext.Postexits, tc.wantPostexits, eg)
			}
			join := cfg.None
			for _, pe := range ext.Postexits {
				if ext.ExitedInterval[pe] != h {
					t.Errorf("postexit %d exits %d, want %d", pe, ext.ExitedInterval[pe], h)
				}
				// Exactly one real in-edge per postexit, however many exit
				// edges converge on the same original target.
				real, pseudoFromPh := 0, false
				for _, e := range eg.InEdges(pe) {
					if e.Pseudo() {
						pseudoFromPh = pseudoFromPh || e.From == ph
						continue
					}
					real++
				}
				if real != 1 {
					t.Errorf("postexit %d has %d real in-edges, want 1:\n%s", pe, real, eg)
				}
				if !pseudoFromPh {
					t.Errorf("postexit %d missing pseudo edge from preheader %d", pe, ph)
				}
				outs := eg.OutEdges(pe)
				if len(outs) != 1 {
					t.Fatalf("postexit %d out-edges = %v, want 1", pe, outs)
				}
				if join == cfg.None {
					join = outs[0].To
				} else if outs[0].To != join {
					t.Errorf("postexit %d rejoins at %d, others at %d", pe, outs[0].To, join)
				}
			}

			// The recomputed interval structure keeps the synthetic nodes in
			// the parent (here: outermost) interval.
			iv := ext.Intervals
			if iv.HDR(ph) != cfg.None {
				t.Errorf("HDR(preheader) = %d, want None", iv.HDR(ph))
			}
			for _, pe := range ext.Postexits {
				if iv.HDR(pe) != cfg.None {
					t.Errorf("HDR(postexit %d) = %d, want None", pe, iv.HDR(pe))
				}
			}
			if got := iv.Headers(); len(got) != 1 || got[0] != h {
				t.Errorf("extended headers = %v, want [%d]", got, h)
			}
		})
	}
}
