// Package lower translates the AST of a program into one statement-level
// control flow graph per program unit, matching the granularity of Figure 1
// of the paper: one CFG node per executable statement, with T/F labels on
// conditional branch edges and U on unconditional ones.
//
// Each node's Payload is an Op describing what executing the node does; the
// interpreter (internal/interp) dispatches on these. Counted DO loops lower
// into three nodes — DoInit (compute the F77 trip count, set the loop
// variable), DoTest (the loop header: branch T into the body while trips
// remain) and DoIncr (advance the variable, branch back to the test) — so
// the loop header is the target of exactly one back edge and interval
// analysis sees the textbook shape.
//
// Unreachable statements (code after an unconditional transfer that carries
// no label) are dropped, mirroring a compiler's dead-code elimination; the
// analyses require every CFG node to be reachable.
package lower

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/dfst"
	"repro/internal/lang"
)

// Branch labels beyond cfg's T/F/U: the arithmetic IF's three-way branch
// and the computed GOTO's cases.
const (
	// LabelNeg/LabelZero/LabelPos are the arithmetic IF edges.
	LabelNeg  cfg.Label = "LT"
	LabelZero cfg.Label = "EQ"
	LabelPos  cfg.Label = "GT"
	// LabelDefault is the computed GOTO fall-through (index out of range).
	LabelDefault cfg.Label = "D"
)

// GotoCase returns the edge label of the i-th (1-based) computed GOTO case.
func GotoCase(i int) cfg.Label { return cfg.Label(fmt.Sprintf("G%d", i)) }

// Op is the executable payload of a CFG node.
type Op interface{ opName() string }

// OpAssign evaluates S.RHS and stores it into S.LHS.
type OpAssign struct{ S *lang.Assign }

// OpBranch evaluates Cond and leaves on the T or F edge.
type OpBranch struct{ Cond lang.Expr }

// OpArithIf evaluates E and leaves on LT, EQ or GT by the sign of E.
type OpArithIf struct{ E lang.Expr }

// OpComputedGoto evaluates E and leaves on edge G<E>, or D if out of range.
type OpComputedGoto struct {
	E lang.Expr
	N int // number of cases
}

// OpCall invokes a subroutine.
type OpCall struct{ S *lang.CallStmt }

// OpDoInit evaluates the loop bounds, sets the loop variable, and computes
// the F77 trip count MAX(0, (hi-lo+step)/step) into hidden per-frame state.
type OpDoInit struct {
	L *lang.DoLoop
	// Test is the node carrying the matching OpDoTest; the hidden trip
	// state is keyed by it.
	Test cfg.NodeID
}

// OpDoTest leaves on T while trips remain, F when the loop is exhausted.
// Key identifies the trip-state slot; it equals the original test node ID
// and is shared by any node-split copies, which therefore share the state.
type OpDoTest struct {
	L   *lang.DoLoop
	Key cfg.NodeID
}

// OpDoIncr advances the loop variable by the step and consumes one trip.
type OpDoIncr struct {
	L    *lang.DoLoop
	Test cfg.NodeID
}

// OpPrint prints list-directed output.
type OpPrint struct{ S *lang.Print }

// OpNop does nothing (CONTINUE and similar anchors).
type OpNop struct{}

// OpReturn returns from the current subroutine.
type OpReturn struct{}

// OpStop terminates the whole program.
type OpStop struct{}

// OpEnd marks the unit exit node (n_last).
type OpEnd struct{}

func (OpAssign) opName() string       { return "assign" }
func (OpBranch) opName() string       { return "branch" }
func (OpArithIf) opName() string      { return "arith-if" }
func (OpComputedGoto) opName() string { return "computed-goto" }
func (OpCall) opName() string         { return "call" }
func (OpDoInit) opName() string       { return "do-init" }
func (OpDoTest) opName() string       { return "do-test" }
func (OpDoIncr) opName() string       { return "do-incr" }
func (OpPrint) opName() string        { return "print" }
func (OpNop) opName() string          { return "nop" }
func (OpReturn) opName() string       { return "return" }
func (OpStop) opName() string         { return "stop" }
func (OpEnd) opName() string          { return "end" }

// Proc is the lowered form of one program unit.
type Proc struct {
	Unit *lang.Unit
	G    *cfg.Graph
	// Stmt maps each node to the source statement it came from (nil for
	// the synthetic END node).
	Stmt map[cfg.NodeID]lang.Stmt
	// Calls lists the callee names of every OpCall node, in node order.
	Calls []string
	// Splits counts node duplications performed to make an irreducible
	// CFG (from GOTO spaghetti) reducible; 0 for structured code.
	Splits int
}

// Result holds the lowered program.
type Result struct {
	Prog *lang.Program
	// Procs maps unit name to its lowered form.
	Procs map[string]*Proc
	// Main is the lowered PROGRAM unit.
	Main *Proc
	// CallGraph maps caller unit name to the distinct callee names.
	CallGraph map[string][]string
}

// Lower lowers every unit of an analyzed program.
func Lower(prog *lang.Program) (*Result, error) {
	res := &Result{
		Prog:      prog,
		Procs:     make(map[string]*Proc),
		CallGraph: make(map[string][]string),
	}
	for _, u := range prog.Units {
		p, err := lowerUnit(u)
		if err != nil {
			return nil, fmt.Errorf("unit %s: %w", u.Name, err)
		}
		res.Procs[u.Name] = p
		if u.IsMain {
			res.Main = p
		}
		seen := map[string]bool{}
		for _, callee := range p.Calls {
			if !seen[callee] {
				seen[callee] = true
				res.CallGraph[u.Name] = append(res.CallGraph[u.Name], callee)
			}
		}
	}
	return res, nil
}

// pending is a dangling out-edge waiting for its target.
type pending struct {
	from  cfg.NodeID
	label cfg.Label
}

type builder struct {
	g     *cfg.Graph
	proc  *Proc
	first cfg.NodeID         // first node created: the unit entry
	label map[int]cfg.NodeID // statement label -> its node
	// jumps are GOTO-ish edges resolved after the whole body is lowered;
	// target -1 means the unit exit.
	jumps []jump
}

type jump struct {
	from   cfg.NodeID
	label  cfg.Label
	target int
}

const exitTarget = -1

func lowerUnit(u *lang.Unit) (*Proc, error) {
	b := &builder{
		g:     cfg.New(u.Name),
		label: make(map[int]cfg.NodeID),
	}
	b.proc = &Proc{Unit: u, G: b.g, Stmt: make(map[cfg.NodeID]lang.Stmt)}

	frontier, err := b.seq(u.Body, []pending{})
	if err != nil {
		return nil, err
	}
	// Exit node (n_last).
	exit := b.newNode("END", OpEnd{}, nil)
	b.connect(frontier, exit)
	for _, j := range b.jumps {
		target := exit
		if j.target != exitTarget {
			t, ok := b.label[j.target]
			if !ok {
				return nil, fmt.Errorf("GOTO %d: label was never lowered", j.target)
			}
			target = t
		}
		if err := b.g.AddEdge(j.from, target, j.label); err != nil {
			return nil, err
		}
	}
	if b.first == cfg.None {
		b.first = exit
	}
	b.g.Entry, b.g.Exit = b.first, exit
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	// GOTO spaghetti can produce an irreducible graph; the paper's
	// framework (and every later phase here) requires reducibility, so
	// apply node splitting now. Copies share their original's payload.
	if !dfst.Reducible(b.g) {
		split, sr := dfst.MakeReducible(b.g)
		stmt := make(map[cfg.NodeID]lang.Stmt, len(b.proc.Stmt))
		for id := cfg.NodeID(1); id <= split.MaxID(); id++ {
			if s, ok := b.proc.Stmt[sr.Original[id]]; ok {
				stmt[id] = s
			}
		}
		b.proc.G = split
		b.proc.Stmt = stmt
		b.proc.Splits = sr.Splits
	}
	return b.proc, nil
}

func (b *builder) newNode(name string, op Op, stmt lang.Stmt) cfg.NodeID {
	n := b.g.AddNode(cfg.Other, name)
	n.Payload = op
	if stmt != nil {
		b.proc.Stmt[n.ID] = stmt
	}
	if b.first == cfg.None {
		b.first = n.ID
	}
	return n.ID
}

func (b *builder) connect(frontier []pending, to cfg.NodeID) {
	for _, p := range frontier {
		b.g.MustAddEdge(p.from, to, p.label)
	}
}

// seq lowers a statement list. frontier holds the dangling edges that reach
// the list's start; the returned frontier reaches past its end.
func (b *builder) seq(body []lang.Stmt, frontier []pending) ([]pending, error) {
	for _, s := range body {
		// Dead code: nothing flows here, nothing can jump here, and at
		// least one node exists already (before the first node, control is
		// live because the unit entry starts the list).
		if len(frontier) == 0 && b.first != cfg.None && s.Lab() == 0 && !anchored(s) {
			continue
		}
		var err error
		frontier, err = b.stmt(s, frontier)
		if err != nil {
			return nil, err
		}
	}
	return frontier, nil
}

// anchored reports whether a statement must be lowered even when its own
// frontier is empty because something may jump to a label inside it (a DO
// terminator or any labelled statement in its nested bodies).
func anchored(s lang.Stmt) bool {
	found := false
	lang.Walk([]lang.Stmt{s}, func(n lang.Stmt) {
		if n.Lab() != 0 {
			found = true
		}
	})
	return found
}

func (b *builder) stmt(s lang.Stmt, frontier []pending) ([]pending, error) {
	switch st := s.(type) {
	case *lang.Assign:
		n := b.newNode(st.Text(), OpAssign{S: st}, st)
		b.define(st, n)
		b.connect(frontier, n)
		return []pending{{n, cfg.Uncond}}, nil

	case *lang.Continue:
		n := b.newNode("CONTINUE", OpNop{}, st)
		b.define(st, n)
		b.connect(frontier, n)
		return []pending{{n, cfg.Uncond}}, nil

	case *lang.Print:
		n := b.newNode("PRINT *", OpPrint{S: st}, st)
		b.define(st, n)
		b.connect(frontier, n)
		return []pending{{n, cfg.Uncond}}, nil

	case *lang.CallStmt:
		n := b.newNode(st.Text(), OpCall{S: st}, st)
		b.define(st, n)
		b.connect(frontier, n)
		b.proc.Calls = append(b.proc.Calls, st.Name)
		return []pending{{n, cfg.Uncond}}, nil

	case *lang.Goto:
		n := b.newNode(st.Text(), OpNop{}, st)
		b.define(st, n)
		b.connect(frontier, n)
		b.jumps = append(b.jumps, jump{n, cfg.Uncond, st.Target})
		return nil, nil

	case *lang.ComputedGoto:
		n := b.newNode(st.Text(), OpComputedGoto{E: st.Expr, N: len(st.Targets)}, st)
		b.define(st, n)
		b.connect(frontier, n)
		for i, t := range st.Targets {
			b.jumps = append(b.jumps, jump{n, GotoCase(i + 1), t})
		}
		return []pending{{n, LabelDefault}}, nil

	case *lang.ArithIf:
		n := b.newNode(st.Text(), OpArithIf{E: st.Expr}, st)
		b.define(st, n)
		b.connect(frontier, n)
		b.jumps = append(b.jumps,
			jump{n, LabelNeg, st.OnNeg},
			jump{n, LabelZero, st.OnZero},
			jump{n, LabelPos, st.OnPos})
		return nil, nil

	case *lang.Return:
		n := b.newNode("RETURN", OpReturn{}, st)
		b.define(st, n)
		b.connect(frontier, n)
		b.jumps = append(b.jumps, jump{n, cfg.Uncond, exitTarget})
		return nil, nil

	case *lang.StopStmt:
		n := b.newNode("STOP", OpStop{}, st)
		b.define(st, n)
		b.connect(frontier, n)
		b.jumps = append(b.jumps, jump{n, cfg.Uncond, exitTarget})
		return nil, nil

	case *lang.LogicalIf:
		return b.logicalIf(st, frontier)

	case *lang.IfBlock:
		return b.ifBlock(st, frontier)

	case *lang.DoLoop:
		return b.doLoop(st, frontier)
	}
	return nil, fmt.Errorf("line %d: cannot lower %T", s.Pos(), s)
}

// define records the statement label of s on node n.
func (b *builder) define(s lang.Stmt, n cfg.NodeID) {
	if l := s.Lab(); l != 0 {
		b.label[l] = n
	}
}

func (b *builder) logicalIf(st *lang.LogicalIf, frontier []pending) ([]pending, error) {
	// "IF (c) GOTO l" is a single node, exactly as in Figure 1.
	if g, ok := st.Then.(*lang.Goto); ok {
		n := b.newNode(st.Text(), OpBranch{Cond: st.Cond}, st)
		b.define(st, n)
		b.connect(frontier, n)
		b.jumps = append(b.jumps, jump{n, cfg.True, g.Target})
		return []pending{{n, cfg.False}}, nil
	}
	// General form: branch node, body on the T arm.
	n := b.newNode(fmt.Sprintf("IF (%s)", st.Cond), OpBranch{Cond: st.Cond}, st)
	b.define(st, n)
	b.connect(frontier, n)
	bodyOut, err := b.stmt(st.Then, []pending{{n, cfg.True}})
	if err != nil {
		return nil, err
	}
	return append(bodyOut, pending{n, cfg.False}), nil
}

func (b *builder) ifBlock(st *lang.IfBlock, frontier []pending) ([]pending, error) {
	n := b.newNode(fmt.Sprintf("IF (%s)", st.Cond), OpBranch{Cond: st.Cond}, st)
	b.define(st, n)
	b.connect(frontier, n)
	var out []pending
	thenOut, err := b.seq(st.Then, []pending{{n, cfg.True}})
	if err != nil {
		return nil, err
	}
	out = append(out, thenOut...)
	elseIn := []pending{{n, cfg.False}}
	for _, arm := range st.Elifs {
		en := b.newNode(fmt.Sprintf("IF (%s)", arm.Cond), OpBranch{Cond: arm.Cond}, st)
		b.connect(elseIn, en)
		armOut, err := b.seq(arm.Body, []pending{{en, cfg.True}})
		if err != nil {
			return nil, err
		}
		out = append(out, armOut...)
		elseIn = []pending{{en, cfg.False}}
	}
	if st.Else != nil {
		elseOut, err := b.seq(st.Else, elseIn)
		if err != nil {
			return nil, err
		}
		out = append(out, elseOut...)
	} else {
		out = append(out, elseIn...)
	}
	return out, nil
}

func (b *builder) doLoop(st *lang.DoLoop, frontier []pending) ([]pending, error) {
	init := b.newNode(st.Text(), OpDoInit{L: st}, st)
	b.define(st, init)
	b.connect(frontier, init)
	test := b.newNode(fmt.Sprintf("DO-TEST %s", st.Var), OpDoTest{L: st}, st)
	b.g.Node(test).Payload = OpDoTest{L: st, Key: test}
	// Patch the init op with the test node it feeds (trip state key).
	b.g.Node(init).Payload = OpDoInit{L: st, Test: test}
	b.g.MustAddEdge(init, test, cfg.Uncond)

	bodyOut, err := b.seq(st.Body, []pending{{test, cfg.True}})
	if err != nil {
		return nil, err
	}
	incr := b.newNode(fmt.Sprintf("DO-INCR %s", st.Var), OpDoIncr{L: st, Test: test}, st)
	b.connect(bodyOut, incr)
	b.g.MustAddEdge(incr, test, cfg.Uncond) // the back edge
	return []pending{{test, cfg.False}}, nil
}
