package lower

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/dfst"
	"repro/internal/lang"
	"repro/internal/paperex"
)

func lowerMain(t *testing.T, src string) *Proc {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	res, err := Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return res.Main
}

func wrap(body string) string { return "      PROGRAM T\n" + body + "      END\n" }

// TestPaperExampleMatchesFigure1: lowering the example source yields the
// Figure 1 CFG exactly (modulo the two initialization assignments and the
// END node that make it runnable).
func TestPaperExampleMatchesFigure1(t *testing.T) {
	prog, err := lang.Parse(paperex.Source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Main.G
	ref := paperex.CFG()
	// Nodes 3..8 of the lowered graph correspond to 1..6 of Figure 1.
	const off = 2
	for _, e := range ref.Edges() {
		found := false
		for _, le := range g.OutEdges(e.From + off) {
			if le.To == e.To+off && le.Label == e.Label {
				found = true
			}
		}
		if !found {
			t.Errorf("missing lowered edge %d-%s->%d (Figure 1 %v)", e.From+off, e.Label, e.To+off, e)
		}
	}
}

func TestIfBlockShape(t *testing.T) {
	p := lowerMain(t, wrap(`      INTEGER I
      I = 0
      IF (I .GT. 0) THEN
         I = 1
      ELSE IF (I .LT. 0) THEN
         I = 2
      ELSE
         I = 3
      ENDIF
      I = 4
`))
	g := p.G
	// Expect two branch nodes (IF and ELSEIF) each with T and F edges.
	branches := 0
	for _, n := range g.Nodes() {
		if _, ok := n.Payload.(OpBranch); ok {
			branches++
			labels := g.Labels(n.ID)
			if len(labels) != 2 {
				t.Errorf("branch %q has labels %v", n.Name, labels)
			}
		}
	}
	if branches != 2 {
		t.Errorf("branches = %d, want 2", branches)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDoLoopShape(t *testing.T) {
	p := lowerMain(t, wrap(`      INTEGER I
      DO 10 I = 1, 3
   10 CONTINUE
`))
	g := p.G
	var init, test, incr cfg.NodeID
	for _, n := range g.Nodes() {
		switch op := n.Payload.(type) {
		case OpDoInit:
			init = n.ID
			if op.Test == cfg.None {
				t.Error("DoInit.Test unset")
			}
		case OpDoTest:
			test = n.ID
			if op.Key != n.ID {
				t.Errorf("DoTest.Key = %d, want %d", op.Key, n.ID)
			}
		case OpDoIncr:
			incr = n.ID
		}
	}
	if init == cfg.None || test == cfg.None || incr == cfg.None {
		t.Fatal("missing DO nodes")
	}
	// init -> test; incr -> test (the back edge); test has T and F.
	if !hasEdge(g, init, test, cfg.Uncond) || !hasEdge(g, incr, test, cfg.Uncond) {
		t.Errorf("DO wiring wrong:\n%s", g)
	}
	if len(g.Labels(test)) != 2 {
		t.Errorf("test labels = %v", g.Labels(test))
	}
}

func hasEdge(g *cfg.Graph, from, to cfg.NodeID, l cfg.Label) bool {
	for _, e := range g.OutEdges(from) {
		if e.To == to && e.Label == l {
			return true
		}
	}
	return false
}

func TestDeadCodeDropped(t *testing.T) {
	p := lowerMain(t, wrap(`      INTEGER I
      I = 1
      GOTO 10
      I = 2
      I = 3
   10 CONTINUE
`))
	for _, n := range p.G.Nodes() {
		if strings.Contains(n.Name, "I = 2") || strings.Contains(n.Name, "I = 3") {
			t.Errorf("dead statement %q survived", n.Name)
		}
	}
	if err := p.G.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLabelledDeadCodeKept(t *testing.T) {
	p := lowerMain(t, wrap(`      INTEGER I
      I = 1
      GOTO 20
   10 I = 2
      GOTO 30
   20 CONTINUE
      GOTO 10
   30 CONTINUE
`))
	found := false
	for _, n := range p.G.Nodes() {
		if strings.Contains(n.Name, "I = 2") {
			found = true
		}
	}
	if !found {
		t.Error("labelled statement reachable via GOTO was dropped")
	}
}

func TestIrreducibleGotoGetsSplit(t *testing.T) {
	// Two-entry loop between labels 10 and 20.
	p := lowerMain(t, wrap(`      INTEGER I
      I = 0
      IF (I .GT. 0) GOTO 20
   10 I = I + 1
   20 I = I + 2
      IF (I .LT. 10) GOTO 10
`))
	if p.Splits == 0 {
		t.Fatalf("expected node splitting for the two-entry loop:\n%s", p.G)
	}
	if !dfst.Reducible(p.G) {
		t.Fatal("graph still irreducible after lowering")
	}
	if err := p.G.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReturnAndStopEdges(t *testing.T) {
	src := `      PROGRAM T
      INTEGER I
      I = 1
      IF (I .GT. 0) STOP
      I = 2
      END

      SUBROUTINE S(I)
      INTEGER I
      IF (I .GT. 0) RETURN
      I = 2
      RETURN
      END
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Every RETURN/STOP node's only successor is the unit exit.
	for _, p := range res.Procs {
		for _, n := range p.G.Nodes() {
			switch n.Payload.(type) {
			case OpReturn, OpStop:
				out := p.G.OutEdges(n.ID)
				if len(out) != 1 || out[0].To != p.G.Exit {
					t.Errorf("%s %q edges = %v, want exit %d", p.G.Name, n.Name, out, p.G.Exit)
				}
			}
		}
	}
}

func TestCallGraphDistinct(t *testing.T) {
	src := `      PROGRAM T
      CALL A
      CALL A
      CALL B
      END

      SUBROUTINE A
      RETURN
      END

      SUBROUTINE B
      CALL A
      RETURN
      END
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CallGraph["T"]; len(got) != 2 {
		t.Errorf("T callees = %v, want [A B]", got)
	}
	if got := res.CallGraph["B"]; len(got) != 1 || got[0] != "A" {
		t.Errorf("B callees = %v", got)
	}
	if len(res.Main.Calls) != 3 {
		t.Errorf("T call sites = %d, want 3", len(res.Main.Calls))
	}
}

func TestLogicalIfNonGotoBody(t *testing.T) {
	p := lowerMain(t, wrap(`      INTEGER I
      I = 0
      IF (I .EQ. 0) I = 5
      I = 9
`))
	// Branch node with T to the assignment and F to the join.
	var br cfg.NodeID
	for _, n := range p.G.Nodes() {
		if _, ok := n.Payload.(OpBranch); ok {
			br = n.ID
		}
	}
	if br == cfg.None {
		t.Fatal("no branch node")
	}
	var tTo, fTo cfg.NodeID
	for _, e := range p.G.OutEdges(br) {
		switch e.Label {
		case cfg.True:
			tTo = e.To
		case cfg.False:
			fTo = e.To
		}
	}
	if !strings.Contains(p.G.Node(tTo).Name, "I = 5") {
		t.Errorf("T arm goes to %q", p.G.Node(tTo).Name)
	}
	if !strings.Contains(p.G.Node(fTo).Name, "I = 9") {
		t.Errorf("F arm goes to %q", p.G.Node(fTo).Name)
	}
}

func TestEmptyProgram(t *testing.T) {
	p := lowerMain(t, "      PROGRAM T\n      END\n")
	if p.G.NumNodes() != 1 {
		t.Errorf("empty program has %d nodes, want 1 (END)", p.G.NumNodes())
	}
	if p.G.Entry != p.G.Exit {
		t.Error("entry must equal exit for an empty unit")
	}
}

func TestArithIfAndComputedGotoShape(t *testing.T) {
	p := lowerMain(t, wrap(`      INTEGER I
      I = 1
      IF (I) 10, 20, 30
   10 CONTINUE
      GOTO 40
   20 CONTINUE
      GOTO 40
   30 CONTINUE
   40 CONTINUE
      GOTO (10, 20), I
`))
	for _, n := range p.G.Nodes() {
		switch n.Payload.(type) {
		case OpArithIf:
			if got := len(p.G.Labels(n.ID)); got != 3 {
				t.Errorf("arith IF labels = %v", p.G.Labels(n.ID))
			}
		case OpComputedGoto:
			if got := len(p.G.Labels(n.ID)); got != 3 { // G1, G2, D
				t.Errorf("computed GOTO labels = %v", p.G.Labels(n.ID))
			}
		}
	}
}
