// Package progen generates random (but always terminating) programs in the
// Fortran subset: nested counted DO loops, RAND-driven IF/ELSE blocks,
// logical IFs, scalar arithmetic, and calls to generated leaf subroutines.
// The repository's property tests run the whole pipeline over these
// programs and check the invariants that hold for every profile:
// counter recovery reproduces exact condition totals, the NODE_FREQ
// recurrence reproduces exact node counts, and the estimated TIME equals
// the measured mean over the profiled runs.
package progen

import (
	"fmt"
	"strings"
)

// rng is a self-contained 64-bit LCG so generation is reproducible and
// independent of math/rand.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}
func (r *rng) intn(n int) int        { return int((r.next() >> 11) % uint64(n)) }
func (r *rng) prob() float64         { return float64(r.next()>>11) / float64(1<<53) }
func (r *rng) chance(p float64) bool { return r.prob() < p }

// Opts select program-family restrictions for GenerateOpts.
type Opts struct {
	// BranchFree restricts generation to straight-line code: assignments
	// and calls to straight-line subroutines, with no control flow at all.
	// Every run executes the identical trace, so the estimated TIME is
	// exact and VAR(START) is exactly zero — the ground truth the oracle's
	// variance invariant compares against.
	BranchFree bool
	// ConstLoops extends the BranchFree family with exit-free counted DO
	// loops whose bounds are compile-time constants (possibly nested), in
	// the main program and the leaf subroutines. Such loops are fully
	// deterministic — the estimator proves their test branches constant-trip
	// and prices them with zero test variance — so programs of this family
	// must still report VAR(START) = 0 exactly. Only meaningful together
	// with BranchFree.
	ConstLoops bool
	// Stops sprinkles terminating STOP gadgets through the non-branch-free
	// families: a RAND-guarded STOP statement in the statement mix (also
	// inside loop bodies, where it adds a visible loop exit edge) and a
	// constant-trip, exit-free DO loop around a call to a stopping leaf
	// subroutine — the interprocedural shape where the caller's CFG shows
	// no exit yet the run can freeze mid-loop. The differential suite uses
	// it to pin the stop-aware Sarkar recovery against path recovery.
	// Ignored when BranchFree is set (a data-dependent STOP would break
	// that family's deterministic-trace guarantee).
	Stops bool
	// ConstFacts prepends a gadget block that the dataflow framework — but
	// not syntactic constant folding — can resolve: an IF decided by a
	// propagated constant (one arm dead), a DO loop whose trip count only
	// flow analysis proves constant, a dead store, and a read of a
	// never-assigned (zero-initialized) local. The oracle corpus uses it to
	// exercise the dataflow-sound invariant and the flow lints. With the
	// knob off the output is bit-identical to prior versions (no extra rng
	// draws).
	ConstFacts bool
}

// Generate returns a random program. Larger size yields more statements;
// maxDepth bounds loop/IF nesting.
func Generate(seed uint64, size, maxDepth int) string {
	return GenerateOpts(seed, size, maxDepth, Opts{})
}

// GenerateOpts is Generate with family restrictions.
func GenerateOpts(seed uint64, size, maxDepth int, o Opts) string {
	r := &rng{s: seed*2862933555777941757 + 3037000493}
	if size < 1 {
		size = 1
	}
	if maxDepth < 1 {
		maxDepth = 1
	}
	g := &gen{r: r, maxDepth: maxDepth, branchFree: o.BranchFree, constLoops: o.BranchFree && o.ConstLoops, stops: o.Stops && !o.BranchFree}
	nsubs := r.intn(3)
	var b strings.Builder
	b.WriteString("      PROGRAM RANDP\n")
	b.WriteString("      INTEGER I1, I2, I3, I4, K, KG1, KG2, KG3, KG4\n")
	b.WriteString("      REAL X1, X2, X3\n")
	if o.ConstFacts {
		b.WriteString("      INTEGER KC1, KC2, KC3, KC4, KCI\n")
	}
	b.WriteString("      X1 = 1.0\n      X2 = 2.0\n      X3 = 0.5\n      K = 0\n")
	g.subs = nsubs
	if o.ConstFacts {
		g.constFacts(&b)
	}
	g.block(&b, size, 0, 3)
	b.WriteString("      PRINT *, X1, X2, K\n")
	b.WriteString("      END\n")
	if g.stops {
		// The stopping leaf: straight-line computation plus a RAND-guarded
		// STOP, so a caller's loop can freeze mid-trip without any exit
		// edge showing in the caller's own CFG.
		b.WriteString(`
      SUBROUTINE SSTOP(A, B)
      REAL A, B
      A = A + B*0.0625
      IF (RAND() .LT. 0.15) STOP
      RETURN
      END
`)
	}
	for s := 1; s <= nsubs; s++ {
		if g.constLoops {
			// Deterministic leaf: a constant-trip, exit-free DO and no
			// data-dependent control flow.
			fmt.Fprintf(&b, `
      SUBROUTINE SUB%d(A, B)
      REAL A, B
      INTEGER J
      DO 10 J = 1, %d
         A = A + B*0.125
   10 CONTINUE
      RETURN
      END
`, s, 2+g.r.intn(6))
			continue
		}
		if o.BranchFree {
			fmt.Fprintf(&b, `
      SUBROUTINE SUB%d(A, B)
      REAL A, B
      A = A + B*0.%d25
      A = A*0.9375
      RETURN
      END
`, s, 1+g.r.intn(8))
			continue
		}
		fmt.Fprintf(&b, `
      SUBROUTINE SUB%d(A, B)
      REAL A, B
      INTEGER J
      DO 10 J = 1, %d
         A = A + B*0.125
   10 CONTINUE
      IF (A .GT. 100.0) A = A*0.5
      RETURN
      END
`, s, 2+g.r.intn(6))
	}
	return b.String()
}

type gen struct {
	r          *rng
	maxDepth   int
	subs       int
	label      int
	gotoVars   int
	branchFree bool
	constLoops bool
	stops      bool
}

func (g *gen) newLabel() int {
	g.label += 10
	return g.label
}

// block emits n statements at the given nesting depth; depth also selects
// the DO variable so nested loops never share one.
func (g *gen) block(b *strings.Builder, n, depth, indent int) {
	pad := strings.Repeat(" ", indent*3)
	for i := 0; i < n; i++ {
		if g.branchFree {
			g.branchFreeStmt(b, pad, depth, indent)
			continue
		}
		den := 10
		if g.stops {
			den = 12 // widen the mix with the two STOP gadgets below
		}
		switch pick := g.r.intn(den); {
		case pick == 10 && depth < g.maxDepth:
			// Constant-trip, exit-free DO around a stopping leaf call: the
			// caller's CFG proves the loop exit-free, yet the callee's STOP
			// can freeze the loop mid-trip.
			lab := g.newLabel()
			v := fmt.Sprintf("I%d", depth+1)
			fmt.Fprintf(b, "%s   DO %d %s = 1, %d\n", pad, lab, v, 2+g.r.intn(5))
			fmt.Fprintf(b, "%s      CALL SSTOP(X1, X2)\n", pad)
			fmt.Fprintf(b, "%s%4d CONTINUE\n", pad, lab)
		case pick >= 10: // guarded STOP in place (10 at max depth, 11)
			fmt.Fprintf(b, "%s   IF (RAND() .LT. %.3f) STOP\n", pad, 0.02+0.1*g.r.prob())
		case pick < 3: // assignment
			g.assign(b, pad)
		case pick < 5 && depth < g.maxDepth: // DO loop
			lab := g.newLabel()
			v := fmt.Sprintf("I%d", depth+1)
			lo := 1 + g.r.intn(3)
			hi := lo + g.r.intn(6)
			fmt.Fprintf(b, "%s   DO %d %s = %d, %d\n", pad, lab, v, lo, hi)
			g.block(b, 1+g.r.intn(2), depth+1, indent+1)
			fmt.Fprintf(b, "%s%4d CONTINUE\n", pad, lab)
		case pick < 8 && depth < g.maxDepth: // IF / ELSE on RAND
			p := 0.1 + 0.8*g.r.prob()
			fmt.Fprintf(b, "%s   IF (RAND() .LT. %.3f) THEN\n", pad, p)
			g.block(b, 1+g.r.intn(2), depth+1, indent+1)
			if g.r.chance(0.5) {
				fmt.Fprintf(b, "%s   ELSE\n", pad)
				g.block(b, 1+g.r.intn(2), depth+1, indent+1)
			}
			fmt.Fprintf(b, "%s   ENDIF\n", pad)
		case pick < 9 && g.subs > 0: // CALL
			fmt.Fprintf(b, "%s   CALL SUB%d(X1, X%d)\n", pad, 1+g.r.intn(g.subs), 2+g.r.intn(2))
		case pick == 9 && depth == 0 && g.gotoVars < 4: // unstructured gadgets
			g.unstructured(b, pad)
		default: // logical IF
			fmt.Fprintf(b, "%s   IF (X1 .GT. %d.0) X1 = X1*0.75\n", pad, 1+g.r.intn(50))
		}
	}
}

// constFacts emits the dataflow gadget block: facts only flow analysis can
// prove, over the reserved KC* scalars no other generator rule touches.
// The IF condition and DO bound read variables, so syntactic folding
// (lang.FoldLogical/FoldInt) cannot decide them; constant propagation can.
func (g *gen) constFacts(b *strings.Builder) {
	// A branch decided by a propagated constant. Half the time the taken
	// arm is the THEN (condition provably true, ELSE dead), half the F
	// fall-through (THEN dead).
	c := 2 + g.r.intn(7)
	d := 1 + g.r.intn(5)
	fmt.Fprintf(b, "      KC1 = %d\n", c)
	if g.r.chance(0.5) {
		fmt.Fprintf(b, "      IF (KC1 .GT. %d) THEN\n", c+d)
		b.WriteString("         X1 = X1 + 123.0\n")
		b.WriteString("      ENDIF\n")
	} else {
		fmt.Fprintf(b, "      IF (KC1 .LE. %d) THEN\n", c+d)
		b.WriteString("         X1 = X1 + 0.125\n")
		b.WriteString("      ELSE\n")
		b.WriteString("         X1 = X1 + 123.0\n")
		b.WriteString("      ENDIF\n")
	}
	// A DO loop whose trip count only the flow analysis proves constant.
	lab := g.newLabel()
	fmt.Fprintf(b, "      KC2 = %d\n", 2+g.r.intn(5))
	fmt.Fprintf(b, "      DO %d KCI = 1, KC2\n", lab)
	b.WriteString("         X2 = X2 + 0.25\n")
	fmt.Fprintf(b, "%4d CONTINUE\n", lab)
	// A dead store (KC3 is never read) and a read of a never-assigned
	// local (KC4, which the interpreter zero-initializes).
	fmt.Fprintf(b, "      KC3 = %d\n", 10+g.r.intn(90))
	b.WriteString("      K = K + KC4\n")
}

// branchFreeStmt emits one statement of the straight-line family:
// assignments and calls to the straight-line leaf subroutines. With
// constLoops it also emits exit-free counted DO loops over constant bounds —
// still fully deterministic, so the trace stays seed-invariant and
// VAR(START) is exactly 0.
func (g *gen) branchFreeStmt(b *strings.Builder, pad string, depth, indent int) {
	if g.constLoops && depth < g.maxDepth && g.r.intn(6) < 2 {
		lab := g.newLabel()
		v := fmt.Sprintf("I%d", depth+1)
		lo := 1 + g.r.intn(3)
		hi := lo + g.r.intn(6)
		fmt.Fprintf(b, "%s   DO %d %s = %d, %d\n", pad, lab, v, lo, hi)
		g.block(b, 1+g.r.intn(2), depth+1, indent+1)
		fmt.Fprintf(b, "%s%4d CONTINUE\n", pad, lab)
		return
	}
	if g.r.intn(6) < 2 && g.subs > 0 {
		fmt.Fprintf(b, "%s   CALL SUB%d(X1, X%d)\n", pad, 1+g.r.intn(g.subs), 2+g.r.intn(2))
		return
	}
	g.assign(b, pad)
}

// unstructured emits GOTO-based control flow at the top level: either a
// bounded backward-GOTO loop (with a data-dependent early exit, sometimes
// exiting via an arithmetic IF or a computed GOTO) or a forward skip.
// Termination is guaranteed by the counter bound.
func (g *gen) unstructured(b *strings.Builder, pad string) {
	g.gotoVars++
	kv := fmt.Sprintf("KG%d", g.gotoVars)
	switch g.r.intn(3) {
	case 0: // backward GOTO loop with a conditional early exit
		top := g.newLabel()
		out := g.newLabel()
		bound := 3 + g.r.intn(9)
		fmt.Fprintf(b, "%s   %s = 0\n", pad, kv)
		fmt.Fprintf(b, "%s%4d %s = %s + 1\n", pad, top, kv, kv)
		g.assign(b, pad)
		fmt.Fprintf(b, "%s   IF (RAND() .LT. %.3f) GOTO %d\n", pad, 0.05+0.2*g.r.prob(), out)
		fmt.Fprintf(b, "%s   IF (%s .LT. %d) GOTO %d\n", pad, kv, bound, top)
		fmt.Fprintf(b, "%s%4d CONTINUE\n", pad, out)
	case 1: // arithmetic IF three-way dispatch, joining forward
		l1, l2, l3, join := g.newLabel(), g.newLabel(), g.newLabel(), g.newLabel()
		fmt.Fprintf(b, "%s   %s = IRAND(3) - 2\n", pad, kv)
		fmt.Fprintf(b, "%s   IF (%s) %d, %d, %d\n", pad, kv, l1, l2, l3)
		fmt.Fprintf(b, "%s%4d X1 = X1 + 1.0\n", pad, l1)
		fmt.Fprintf(b, "%s   GOTO %d\n", pad, join)
		fmt.Fprintf(b, "%s%4d X2 = X2 + 1.0\n", pad, l2)
		fmt.Fprintf(b, "%s   GOTO %d\n", pad, join)
		fmt.Fprintf(b, "%s%4d X3 = X3 + 1.0\n", pad, l3)
		fmt.Fprintf(b, "%s%4d CONTINUE\n", pad, join)
	default: // computed GOTO dispatch with fall-through
		l1, l2, join := g.newLabel(), g.newLabel(), g.newLabel()
		fmt.Fprintf(b, "%s   %s = IRAND(3)\n", pad, kv)
		fmt.Fprintf(b, "%s   GOTO (%d, %d), %s\n", pad, l1, l2, kv)
		fmt.Fprintf(b, "%s   K = K + 100\n", pad)
		fmt.Fprintf(b, "%s   GOTO %d\n", pad, join)
		fmt.Fprintf(b, "%s%4d K = K + 1\n", pad, l1)
		fmt.Fprintf(b, "%s   GOTO %d\n", pad, join)
		fmt.Fprintf(b, "%s%4d K = K + 2\n", pad, l2)
		fmt.Fprintf(b, "%s%4d CONTINUE\n", pad, join)
	}
}

func (g *gen) assign(b *strings.Builder, pad string) {
	switch g.r.intn(4) {
	case 0:
		fmt.Fprintf(b, "%s   X1 = X1 + X2*%.2f\n", pad, 0.1+g.r.prob())
	case 1:
		fmt.Fprintf(b, "%s   X2 = ABS(X2 - X3) + %.2f\n", pad, g.r.prob())
	case 2:
		fmt.Fprintf(b, "%s   K = K + 1\n", pad)
	default:
		fmt.Fprintf(b, "%s   X3 = MIN(X3 + 0.25, 10.0)\n", pad)
	}
}
