package progen

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 10, 3)
	b := Generate(7, 10, 3)
	if a != b {
		t.Error("same seed must generate identical programs")
	}
	c := Generate(8, 10, 3)
	if a == c {
		t.Error("different seeds should generate different programs")
	}
}

func TestGeneratedProgramsParse(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		src := Generate(seed, 4+int(seed%8), 1+int(seed%4))
		if _, err := lang.Parse(src); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

func TestGeneratedStructure(t *testing.T) {
	src := Generate(3, 20, 3)
	if !strings.Contains(src, "PROGRAM RANDP") {
		t.Error("missing main program")
	}
	if !strings.Contains(src, "PRINT *, X1, X2, K") {
		t.Error("missing final print")
	}
}

func TestSizeClamps(t *testing.T) {
	src := Generate(1, 0, 0)
	if _, err := lang.Parse(src); err != nil {
		t.Fatalf("degenerate sizes: %v", err)
	}
}

// TestBranchFreeFamilyIsStraightLine checks the contract the oracle's
// variance invariant depends on: the branch-free family contains no control
// flow of any kind, so every interpreter run executes the identical trace.
func TestBranchFreeFamilyIsStraightLine(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		src := GenerateOpts(seed, 2+int(seed%8), 1+int(seed%3), Opts{BranchFree: true})
		for _, token := range []string{"RAND()", "IRAND", "GOTO", "DO ", "IF ", "ELSE"} {
			if strings.Contains(src, token) {
				t.Fatalf("seed %d: branch-free program contains %q:\n%s", seed, token, src)
			}
		}
		if _, err := lang.Parse(src); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// TestGenerateOptsDefaultMatchesGenerate pins GenerateOpts with zero Opts to
// the Generate output, so the two entry points cannot drift apart.
func TestGenerateOptsDefaultMatchesGenerate(t *testing.T) {
	if Generate(9, 6, 2) != GenerateOpts(9, 6, 2, Opts{}) {
		t.Error("GenerateOpts with zero Opts must equal Generate")
	}
}

// TestConstFactsKnobOffIsIdentical pins the ConstFacts gadget behind its
// knob: with the knob off, no rng draw or declaration changes, so output is
// bit-identical to the knobless generator.
func TestConstFactsKnobOffIsIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		if GenerateOpts(seed, 6, 3, Opts{}) != GenerateOpts(seed, 6, 3, Opts{ConstFacts: false}) {
			t.Fatalf("seed %d: ConstFacts=false changed the output", seed)
		}
	}
}

// TestConstFactsProgramsParse checks every ConstFacts program parses and
// carries the gadget's reserved scalars, which no other generator rule may
// touch (the dataflow analyses must be the only way to decide them).
func TestConstFactsProgramsParse(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		src := GenerateOpts(seed, 1+int(seed%8), 1+int(seed%4), Opts{ConstFacts: true})
		if _, err := lang.Parse(src); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		for _, token := range []string{"KC1 =", "KC2 =", "KC3 =", "KC4", "KCI"} {
			if !strings.Contains(src, token) {
				t.Fatalf("seed %d: ConstFacts program lacks %q:\n%s", seed, token, src)
			}
		}
	}
}
