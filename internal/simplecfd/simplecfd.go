// Package simplecfd provides the SIMPLE benchmark of Table 1: a
// 2-D Lagrangian hydrodynamics + heat-flow code [CHR78]. The original
// UCID-17715 Fortran is not redistributable, so this is a faithful
// structural substitute (documented in DESIGN.md): the same computational
// phases — velocity update from pressure/viscosity gradients, position
// update, volume/density, artificial viscosity with a compression
// conditional, equation of state, a heat-conduction sweep, and an energy
// reduction with conditionals — organized, like the original, as
// subroutines called from an NCYCLES time-step loop over an N×N mesh.
// Table 1 measures profiling overhead, which depends on exactly this
// loop-nest and branch structure, not on the physics constants.
//
// The paper ran SIMPLE at 100×100 with NCYCLES = 10; Source(100, 10)
// reproduces that configuration.
package simplecfd

import "fmt"

// Source renders the benchmark at mesh size n×n with the given number of
// cycles.
func Source(n, ncycles int) string {
	if n < 4 {
		n = 4
	}
	if n > 400 {
		n = 400
	}
	if ncycles < 1 {
		ncycles = 1
	}
	return fmt.Sprintf(`      PROGRAM SIMPLE
      INTEGER N, NCYC
      PARAMETER (N = %d, NCYC = %d)
      REAL U(N,N), V(N,N), X(N,N), Y(N,N)
      REAL P(N,N), Q(N,N), RHO(N,N), E(N,N), T(N,N)
      REAL DT, ETOT
      INTEGER IC
      CALL INIT(U, V, X, Y, P, Q, RHO, E, T, N)
      DT = 0.001
      DO 100 IC = 1, NCYC
         CALL VELO(U, V, P, Q, RHO, N, DT)
         CALL POSN(U, V, X, Y, N, DT)
         CALL DENS(X, Y, RHO, N)
         CALL VISC(U, V, Q, RHO, N)
         CALL EOS(P, E, RHO, Q, N, DT)
         CALL HEAT(T, E, RHO, N, DT)
         CALL ETOTL(E, U, V, RHO, N, ETOT)
  100 CONTINUE
      PRINT *, ETOT
      END

      SUBROUTINE INIT(U, V, X, Y, P, Q, RHO, E, T, N)
      INTEGER N
      REAL U(N,N), V(N,N), X(N,N), Y(N,N)
      REAL P(N,N), Q(N,N), RHO(N,N), E(N,N), T(N,N)
      INTEGER I, J
      DO 10 I = 1, N
         DO 20 J = 1, N
            X(I,J) = 0.01*I
            Y(I,J) = 0.01*J
            U(I,J) = 0.0
            V(I,J) = 0.0
            P(I,J) = 1.0 + 0.001*(I+J)
            Q(I,J) = 0.0
            RHO(I,J) = 1.0 + 0.0001*I*J
            E(I,J) = 2.5
            T(I,J) = 1.0 + 0.002*J
   20    CONTINUE
   10 CONTINUE
      RETURN
      END

      SUBROUTINE VELO(U, V, P, Q, RHO, N, DT)
      INTEGER N
      REAL U(N,N), V(N,N), P(N,N), Q(N,N), RHO(N,N)
      REAL DT, DPX, DPY
      INTEGER I, J
      DO 10 I = 2, N - 1
         DO 20 J = 2, N - 1
            DPX = P(I+1,J) + Q(I+1,J) - P(I-1,J) - Q(I-1,J)
            DPY = P(I,J+1) + Q(I,J+1) - P(I,J-1) - Q(I,J-1)
            U(I,J) = U(I,J) - DT*DPX/RHO(I,J)
            V(I,J) = V(I,J) - DT*DPY/RHO(I,J)
   20    CONTINUE
   10 CONTINUE
      RETURN
      END

      SUBROUTINE POSN(U, V, X, Y, N, DT)
      INTEGER N
      REAL U(N,N), V(N,N), X(N,N), Y(N,N)
      REAL DT
      INTEGER I, J
      DO 10 I = 1, N
         DO 20 J = 1, N
            X(I,J) = X(I,J) + DT*U(I,J)
            Y(I,J) = Y(I,J) + DT*V(I,J)
   20    CONTINUE
   10 CONTINUE
      RETURN
      END

      SUBROUTINE DENS(X, Y, RHO, N)
      INTEGER N
      REAL X(N,N), Y(N,N), RHO(N,N)
      REAL AREA
      INTEGER I, J
      DO 10 I = 2, N - 1
         DO 20 J = 2, N - 1
            AREA = (X(I+1,J) - X(I-1,J)) * (Y(I,J+1) - Y(I,J-1)) -
     &             (X(I,J+1) - X(I,J-1)) * (Y(I+1,J) - Y(I-1,J))
            IF (AREA .LT. 0.0001) AREA = 0.0001
            RHO(I,J) = RHO(I,J) / (1.0 + 0.1*(AREA - 0.0004))
   20    CONTINUE
   10 CONTINUE
      RETURN
      END

      SUBROUTINE VISC(U, V, Q, RHO, N)
      INTEGER N
      REAL U(N,N), V(N,N), Q(N,N), RHO(N,N)
      REAL DIV
      INTEGER I, J
      DO 10 I = 2, N - 1
         DO 20 J = 2, N - 1
            DIV = U(I+1,J) - U(I-1,J) + V(I,J+1) - V(I,J-1)
            IF (DIV .LT. 0.0) THEN
               Q(I,J) = 2.0*RHO(I,J)*DIV*DIV
            ELSE
               Q(I,J) = 0.0
            ENDIF
   20    CONTINUE
   10 CONTINUE
      RETURN
      END

      SUBROUTINE EOS(P, E, RHO, Q, N, DT)
      INTEGER N
      REAL P(N,N), E(N,N), RHO(N,N), Q(N,N)
      REAL DT, GAMMA
      INTEGER I, J
      GAMMA = 1.4
      DO 10 I = 1, N
         DO 20 J = 1, N
            E(I,J) = E(I,J) - DT*(P(I,J) + Q(I,J))*0.01
            IF (E(I,J) .LT. 0.1) E(I,J) = 0.1
            P(I,J) = (GAMMA - 1.0)*RHO(I,J)*E(I,J)
   20    CONTINUE
   10 CONTINUE
      RETURN
      END

      SUBROUTINE HEAT(T, E, RHO, N, DT)
      INTEGER N
      REAL T(N,N), E(N,N), RHO(N,N)
      REAL DT, FLUX
      INTEGER I, J
      DO 10 I = 2, N - 1
         DO 20 J = 2, N - 1
            FLUX = T(I+1,J) + T(I-1,J) + T(I,J+1) + T(I,J-1) -
     &             4.0*T(I,J)
            T(I,J) = T(I,J) + DT*FLUX/RHO(I,J)
            E(I,J) = E(I,J) + 0.001*DT*FLUX
   20    CONTINUE
   10 CONTINUE
      RETURN
      END

      SUBROUTINE ETOTL(E, U, V, RHO, N, ETOT)
      INTEGER N
      REAL E(N,N), U(N,N), V(N,N), RHO(N,N)
      REAL ETOT, KE
      INTEGER I, J
      ETOT = 0.0
      DO 10 I = 1, N
         DO 20 J = 1, N
            KE = 0.5*RHO(I,J)*(U(I,J)*U(I,J) + V(I,J)*V(I,J))
            IF (KE .GT. 1.0E-12) THEN
               ETOT = ETOT + E(I,J) + KE
            ELSE
               ETOT = ETOT + E(I,J)
            ENDIF
   20    CONTINUE
   10 CONTINUE
      RETURN
      END
`, n, ncycles)
}
