package simplecfd

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/profiler"
)

func TestRunsAndRecovers(t *testing.T) {
	p, err := core.Load(Source(12, 3))
	if err != nil {
		t.Fatal(err)
	}
	run, err := interp.Run(p.Res, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if run.Steps == 0 {
		t.Fatal("no steps executed")
	}
	for name, a := range p.An.Procs {
		plan, err := profiler.PlanSmart(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := plan.Recover(plan.SimulateReadings(run))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := profiler.ExactTotals(a, run)
		for c, w := range want {
			if got[c] != w {
				t.Errorf("%s: TOTAL%v = %g, want %g", name, c, got[c], w)
			}
		}
	}
}

func TestMeanExactness(t *testing.T) {
	p, err := core.Load(Source(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	model := cost.Unoptimized
	measured, err := p.MeasuredCost(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.Estimate(model, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Main.Time-measured) / measured; rel > 1e-9 {
		t.Errorf("estimated %g vs measured %g", est.Main.Time, measured)
	}
}

func TestPhaseSubroutinesPresent(t *testing.T) {
	p, err := core.Load(Source(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"SIMPLE", "INIT", "VELO", "POSN", "DENS", "VISC", "EOS", "HEAT", "ETOTL"} {
		if p.An.Procs[name] == nil {
			t.Errorf("missing unit %s", name)
		}
	}
	// The time-step loop dominates: every phase is called NCYC times.
	run, err := interp.Run(p.Res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := run.ByProc["VELO"].Activations; got != 1 {
		t.Errorf("VELO activations = %d, want 1 (NCYC=1)", got)
	}
	if got := run.ByProc["INIT"].Activations; got != 1 {
		t.Errorf("INIT activations = %d, want 1", got)
	}
}

func TestSizeClamping(t *testing.T) {
	if Source(1, 0) == "" {
		t.Fatal("empty source")
	}
	p, err := core.Load(Source(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(p.Res, interp.Options{}); err != nil {
		t.Fatal(err)
	}
}
