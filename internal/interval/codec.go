package interval

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/wire"
)

// Encode serializes the interval structure (sans the graph, which the
// caller re-attaches on decode). Maps are written in sorted key order so
// identical structures encode to identical bytes.
func (in *Info) Encode(w *wire.Writer) {
	w.Uvarint(uint64(len(in.hdr)))
	for _, h := range in.hdr {
		w.Varint(int64(h))
	}
	w.Uvarint(uint64(len(in.headers)))
	for _, h := range in.headers {
		w.Varint(int64(h))
		w.Varint(int64(in.parent[h]))
		w.Int(in.depth[h])
		body := make([]cfg.NodeID, 0, len(in.body[h]))
		for n := range in.body[h] {
			body = append(body, n)
		}
		sort.Slice(body, func(i, j int) bool { return body[i] < body[j] })
		w.Uvarint(uint64(len(body)))
		for _, n := range body {
			w.Varint(int64(n))
		}
		bes := in.backEdges[h]
		w.Uvarint(uint64(len(bes)))
		for _, e := range bes {
			cfg.EncodeEdge(w, e)
		}
	}
}

// Decode reads an interval structure written by Encode and attaches it to
// g, which must be the same graph the encoded structure was computed from
// (the artifact layer guarantees this via content hashing). Malformed
// input surfaces through r.Err().
func Decode(r *wire.Reader, g *cfg.Graph) *Info {
	in := &Info{
		G:         g,
		parent:    make(map[cfg.NodeID]cfg.NodeID),
		depth:     make(map[cfg.NodeID]int),
		body:      make(map[cfg.NodeID]map[cfg.NodeID]bool),
		backEdges: make(map[cfg.NodeID][]cfg.Edge),
	}
	n := r.Count(1)
	if r.Err() == nil && n != int(g.MaxID())+1 {
		r.Failf("interval hdr table has %d entries, graph %q wants %d", n, g.Name, g.MaxID()+1)
		return in
	}
	in.hdr = make([]cfg.NodeID, n)
	for i := 0; i < n; i++ {
		in.hdr[i] = cfg.NodeID(r.Varint())
	}
	nh := r.Count(4)
	for i := 0; i < nh; i++ {
		h := cfg.DecodeNodeID(r, g)
		parent := cfg.NodeID(r.Varint())
		depth := r.Int()
		nb := r.Count(1)
		body := make(map[cfg.NodeID]bool, nb)
		for j := 0; j < nb; j++ {
			body[cfg.DecodeNodeID(r, g)] = true
		}
		ne := r.Count(3)
		var bes []cfg.Edge
		for j := 0; j < ne; j++ {
			bes = append(bes, cfg.DecodeEdge(r, g))
		}
		if r.Err() != nil {
			return in
		}
		in.headers = append(in.headers, h)
		in.parent[h] = parent
		in.depth[h] = depth
		in.body[h] = body
		in.backEdges[h] = bes
	}
	return in
}
