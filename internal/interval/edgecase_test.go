package interval

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/lower"
)

// mainCFG lowers a source program and returns the main program's CFG, so the
// edge cases below exercise the interval analysis on graphs the real
// front end produces rather than hand-built ones.
func mainCFG(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return res.Main.G
}

const zeroTripSrc = `      PROGRAM ZTRIP
      INTEGER I, K
      K = 0
      DO 10 I = 5, 1
         K = K + 1
   10 CONTINUE
      PRINT *, K
      END
`

const selfLoopSrc = `      PROGRAM SELFL
   10 IF (RAND() .LT. 0.5) GOTO 10
      PRINT *, 1
      END
`

const twoExitSrc = `      PROGRAM TWOEX
      INTEGER K
      K = 0
   10 K = K + 1
      IF (RAND() .LT. 0.2) GOTO 30
      IF (RAND() .LT. 0.3) GOTO 30
      IF (K .LT. 8) GOTO 10
   30 CONTINUE
      PRINT *, K
      END
`

// TestLoweredEdgeCases drives the analysis over lowered source programs at
// the edges of the loop model: a DO whose bounds make it zero-trip at run
// time (structurally still a loop), a single-node self-loop interval, and a
// loop leaving through several exit edges that share one target.
func TestLoweredEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// minBody is a lower bound on the header's body size (lowering
		// details may add bookkeeping nodes, so exact counts are brittle).
		minBody   int
		wantBack  int
		wantExits int
		// sharedExitTarget requires every loop exit edge to target the same
		// node.
		sharedExitTarget bool
		// selfLoop requires the interval body to be exactly the header.
		selfLoop bool
	}{
		{
			// DO 10 I = 5, 1 never runs its body, but the interval structure
			// is decided statically: the do-test still heads a loop with a
			// back edge from the increment.
			name:      "zero-trip DO",
			src:       zeroTripSrc,
			minBody:   3, // do-test, body assignment, do-incr at least
			wantBack:  1,
			wantExits: 1,
		},
		{
			name:      "single-node self-loop",
			src:       selfLoopSrc,
			minBody:   1,
			wantBack:  1,
			wantExits: 1,
			selfLoop:  true,
		},
		{
			name:             "two RAND exits and the fall-through share a target",
			src:              twoExitSrc,
			minBody:          4, // labelled assignment + three IFs
			wantBack:         1,
			wantExits:        3,
			sharedExitTarget: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := mainCFG(t, tc.src)
			in, err := Analyze(g)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			hs := in.Headers()
			if len(hs) != 1 {
				t.Fatalf("Headers = %v, want exactly one:\n%s", hs, g)
			}
			h := hs[0]
			if in.Depth(h) != 1 || in.Parent(h) != cfg.None {
				t.Errorf("header %d: Depth = %d, Parent = %d, want outermost loop",
					h, in.Depth(h), in.Parent(h))
			}
			body := in.Body(h)
			if len(body) < tc.minBody {
				t.Errorf("body of %d has %d nodes, want ≥ %d:\n%s", h, len(body), tc.minBody, g)
			}
			if tc.selfLoop && len(body) != 1 {
				t.Errorf("self-loop body = %v, want exactly the header", body)
			}
			for n := range body {
				if in.HDR(n) != h {
					t.Errorf("HDR(%d) = %d, want %d", n, in.HDR(n), h)
				}
			}
			be := in.BackEdges(h)
			if len(be) != tc.wantBack {
				t.Errorf("BackEdges(%d) = %v, want %d", h, be, tc.wantBack)
			}
			if tc.selfLoop && (len(be) != 1 || be[0].From != h) {
				t.Errorf("self-loop back edge = %v, want %d->%d", be, h, h)
			}
			ex := in.LoopExits(h)
			if len(ex) != tc.wantExits {
				t.Fatalf("LoopExits(%d) = %v, want %d edges", h, ex, tc.wantExits)
			}
			if tc.sharedExitTarget {
				for _, e := range ex[1:] {
					if e.To != ex[0].To {
						t.Errorf("exit edges disagree on target: %v", ex)
					}
				}
			}
			for _, e := range ex {
				if !body[e.From] || body[e.To] {
					t.Errorf("exit edge %v does not leave the interval", e)
				}
			}
		})
	}
}
