package interval

import (
	"errors"
	"testing"

	"repro/internal/cfg"
	"repro/internal/paperex"
)

// nested builds: 1 -> 2(outer hdr) -> 3(inner hdr) -> 4 -> 3, 4 -> 5 -> 2,
// 5 -> 6(exit).
func nested() *cfg.Graph {
	g := cfg.New("nested")
	for i := 0; i < 6; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 4, cfg.Uncond)
	g.MustAddEdge(4, 3, cfg.True)
	g.MustAddEdge(4, 5, cfg.False)
	g.MustAddEdge(5, 2, cfg.True)
	g.MustAddEdge(5, 6, cfg.False)
	g.Entry, g.Exit = 1, 6
	return g
}

func TestPaperExampleSingleLoop(t *testing.T) {
	in, err := Analyze(paperex.CFG())
	if err != nil {
		t.Fatal(err)
	}
	hs := in.Headers()
	if len(hs) != 1 || hs[0] != paperex.IfM {
		t.Fatalf("Headers = %v, want [%d]", hs, paperex.IfM)
	}
	// Body = {1,2,3,4,5}; CONTINUE (6) outside.
	for n := cfg.NodeID(1); n <= 5; n++ {
		if in.HDR(n) != paperex.IfM {
			t.Errorf("HDR(%d) = %d, want %d", n, in.HDR(n), paperex.IfM)
		}
	}
	if in.HDR(paperex.Cont20) != cfg.None {
		t.Errorf("HDR(CONTINUE) = %d, want None", in.HDR(paperex.Cont20))
	}
	if in.Parent(paperex.IfM) != cfg.None {
		t.Errorf("Parent(header) = %d, want None (outermost)", in.Parent(paperex.IfM))
	}
	if !in.IsHeader(paperex.IfM) || in.IsHeader(paperex.Call) {
		t.Error("IsHeader wrong")
	}
}

func TestNestedLoops(t *testing.T) {
	in, err := Analyze(nested())
	if err != nil {
		t.Fatal(err)
	}
	hs := in.Headers()
	if len(hs) != 2 || hs[0] != 2 || hs[1] != 3 {
		t.Fatalf("Headers = %v, want [2 3]", hs)
	}
	if in.Parent(3) != 2 {
		t.Errorf("Parent(3) = %d, want 2", in.Parent(3))
	}
	if in.Parent(2) != cfg.None {
		t.Errorf("Parent(2) = %d, want None", in.Parent(2))
	}
	if in.Depth(2) != 1 || in.Depth(3) != 2 {
		t.Errorf("Depth(2)=%d Depth(3)=%d, want 1, 2", in.Depth(2), in.Depth(3))
	}
	// HDR: 3 and 4 innermost in loop 3; 2 and 5 in loop 2; 1 and 6 outside.
	cases := map[cfg.NodeID]cfg.NodeID{1: cfg.None, 2: 2, 3: 3, 4: 3, 5: 2, 6: cfg.None}
	for n, want := range cases {
		if in.HDR(n) != want {
			t.Errorf("HDR(%d) = %d, want %d", n, in.HDR(n), want)
		}
	}
	// Body containment.
	if !in.Contains(2, 4) || !in.Contains(3, 4) || in.Contains(3, 5) {
		t.Error("Contains wrong for nested bodies")
	}
	if !in.Contains(cfg.None, 6) {
		t.Error("outermost interval must contain everything")
	}
}

func TestLCA(t *testing.T) {
	in, err := Analyze(nested())
	if err != nil {
		t.Fatal(err)
	}
	if got := in.LCA(3, 3); got != 3 {
		t.Errorf("LCA(3,3) = %d, want 3", got)
	}
	if got := in.LCA(3, 2); got != 2 {
		t.Errorf("LCA(3,2) = %d, want 2", got)
	}
	if got := in.LCA(2, 3); got != 2 {
		t.Errorf("LCA(2,3) = %d, want 2", got)
	}
	if got := in.LCA(cfg.None, 3); got != cfg.None {
		t.Errorf("LCA(None,3) = %d, want None", got)
	}
}

func TestLCASiblingLoops(t *testing.T) {
	// Two sibling loops: 1 -> 2 -> 2 (self), 2 -> 3 -> 3 (self), 3 -> 4.
	g := cfg.New("siblings")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 2, cfg.True)
	g.MustAddEdge(2, 3, cfg.False)
	g.MustAddEdge(3, 3, cfg.True)
	g.MustAddEdge(3, 4, cfg.False)
	g.Entry, g.Exit = 1, 4
	in, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.LCA(2, 3); got != cfg.None {
		t.Errorf("LCA of sibling loop headers = %d, want None", got)
	}
	if in.Depth(2) != 1 || in.Depth(3) != 1 {
		t.Error("sibling loops must both have depth 1")
	}
}

func TestBackEdgesAndExits(t *testing.T) {
	in, err := Analyze(nested())
	if err != nil {
		t.Fatal(err)
	}
	be := in.BackEdges(3)
	if len(be) != 1 || be[0].From != 4 {
		t.Errorf("BackEdges(3) = %v, want [4->3]", be)
	}
	ex := in.LoopExits(3)
	if len(ex) != 1 || ex[0].From != 4 || ex[0].To != 5 {
		t.Errorf("LoopExits(3) = %v, want [4->5]", ex)
	}
	ex2 := in.LoopExits(2)
	if len(ex2) != 1 || ex2[0].From != 5 || ex2[0].To != 6 {
		t.Errorf("LoopExits(2) = %v, want [5->6]", ex2)
	}
}

func TestIrreducibleRejected(t *testing.T) {
	g := cfg.New("irr")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.True)
	g.MustAddEdge(1, 3, cfg.False)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 2, cfg.True)
	g.MustAddEdge(2, 4, cfg.True)
	g.Entry, g.Exit = 1, 4
	_, err := Analyze(g)
	var irr *ErrIrreducible
	if !errors.As(err, &irr) {
		t.Fatalf("Analyze = %v, want ErrIrreducible", err)
	}
}

func TestNoEntryRejected(t *testing.T) {
	g := cfg.New("empty")
	if _, err := Analyze(g); err == nil {
		t.Fatal("Analyze on graph without entry must fail")
	}
}

func TestMultipleBackEdgesOneHeader(t *testing.T) {
	// 1 -> 2(hdr) -> 3 -> 2 and 3 -> 4 -> 2, 3 -> 5(exit).
	g := cfg.New("multi-latch")
	for i := 0; i < 5; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 2, cfg.True)
	g.MustAddEdge(3, 4, cfg.False)
	g.MustAddEdge(4, 2, cfg.True)
	g.MustAddEdge(4, 5, cfg.False)
	g.Entry, g.Exit = 1, 5
	in, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Headers()) != 1 || in.Headers()[0] != 2 {
		t.Fatalf("Headers = %v, want [2]", in.Headers())
	}
	if len(in.BackEdges(2)) != 2 {
		t.Errorf("BackEdges(2) = %v, want two edges", in.BackEdges(2))
	}
	for _, n := range []cfg.NodeID{2, 3, 4} {
		if in.HDR(n) != 2 {
			t.Errorf("HDR(%d) = %d, want 2", n, in.HDR(n))
		}
	}
}

func TestHDROutOfRange(t *testing.T) {
	in, err := Analyze(paperex.CFG())
	if err != nil {
		t.Fatal(err)
	}
	if in.HDR(cfg.None) != cfg.None || in.HDR(99) != cfg.None {
		t.Error("HDR out of range must be None")
	}
}
