package interval

import (
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/dfst"
	"repro/internal/dom"
)

// structuredRandom builds a random reducible CFG out of nested gadgets
// (sequence, diamond, while), mirroring what the frontend can produce.
func structuredRandom(seed uint64, gadgets int) *cfg.Graph {
	g := cfg.New("rand")
	rng := seed*2862933555777941757 + 3037000493
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 11) % uint64(n))
	}
	cur := g.AddNode(cfg.Other, "entry").ID
	var emit func(depth int)
	emit = func(depth int) {
		switch pick := next(4); {
		case pick == 0 || depth > 3:
			n := g.AddNode(cfg.Other, "s").ID
			g.MustAddEdge(cur, n, cfg.Uncond)
			cur = n
		case pick == 1:
			c := g.AddNode(cfg.Other, "if").ID
			g.MustAddEdge(cur, c, cfg.Uncond)
			j := g.AddNode(cfg.Other, "join").ID
			cur = c
			aStart := g.AddNode(cfg.Other, "a").ID
			g.MustAddEdge(c, aStart, cfg.True)
			cur = aStart
			emit(depth + 1)
			g.MustAddEdge(cur, j, cfg.Uncond)
			bStart := g.AddNode(cfg.Other, "b").ID
			g.MustAddEdge(c, bStart, cfg.False)
			cur = bStart
			emit(depth + 1)
			g.MustAddEdge(cur, j, cfg.Uncond)
			cur = j
		default:
			h := g.AddNode(cfg.Other, "hdr").ID
			g.MustAddEdge(cur, h, cfg.Uncond)
			body := g.AddNode(cfg.Other, "body").ID
			g.MustAddEdge(h, body, cfg.True)
			cur = body
			emit(depth + 1)
			g.MustAddEdge(cur, h, cfg.Uncond)
			exit := g.AddNode(cfg.Other, "exit").ID
			g.MustAddEdge(h, exit, cfg.False)
			cur = exit
		}
	}
	for i := 0; i < gadgets; i++ {
		emit(0)
	}
	end := g.AddNode(cfg.Other, "end").ID
	g.MustAddEdge(cur, end, cfg.Uncond)
	g.Entry, g.Exit = 1, end
	return g
}

// bruteNaturalLoop computes the natural loop of header h by definition.
func bruteNaturalLoop(g *cfg.Graph, h cfg.NodeID, doms *dom.Tree) map[cfg.NodeID]bool {
	body := map[cfg.NodeID]bool{h: true}
	var stack []cfg.NodeID
	for _, e := range g.Edges() {
		if e.To == h && doms.Dominates(h, e.From) && !body[e.From] {
			body[e.From] = true
			stack = append(stack, e.From)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Preds(n) {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	return body
}

func TestLoopBodiesMatchBruteForce(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		g := structuredRandom(seed, 1+int(sizeRaw%6))
		if !dfst.Reducible(g) {
			t.Logf("seed %d: generator produced irreducible graph", seed)
			return false
		}
		in, err := Analyze(g)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		doms := dom.Dominators(g)
		for _, h := range in.Headers() {
			brute := bruteNaturalLoop(g, h, doms)
			body := in.Body(h)
			if len(brute) != len(body) {
				t.Logf("seed %d header %d: body size %d vs brute %d", seed, h, len(body), len(brute))
				return false
			}
			for n := range brute {
				if !body[n] {
					t.Logf("seed %d header %d: missing %d", seed, h, n)
					return false
				}
				// Headers dominate their loop bodies.
				if !doms.Dominates(h, n) {
					t.Logf("seed %d: header %d does not dominate body node %d", seed, h, n)
					return false
				}
			}
		}
		// HDR is consistent with bodies: HDR(n) is a header whose body
		// contains n, and no smaller such body exists.
		for id := cfg.NodeID(1); id <= g.MaxID(); id++ {
			h := in.HDR(id)
			if h == cfg.None {
				for _, h2 := range in.Headers() {
					if in.Body(h2)[id] {
						t.Logf("seed %d: HDR(%d) = None but body(%d) contains it", seed, id, h2)
						return false
					}
				}
				continue
			}
			if !in.Body(h)[id] {
				t.Logf("seed %d: HDR(%d) = %d but body does not contain it", seed, id, h)
				return false
			}
			for _, h2 := range in.Headers() {
				if h2 != h && in.Body(h2)[id] && len(in.Body(h2)) < len(in.Body(h)) {
					t.Logf("seed %d: HDR(%d) = %d not innermost (body(%d) smaller)", seed, id, h, h2)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
