// Package interval computes the interval (loop nesting) structure of a
// reducible control flow graph.
//
// Following Section 2 of the paper, the structure is summarized by three
// mappings:
//
//	HDR(n)         — header of the innermost interval (loop) containing n;
//	                 a header belongs to its own interval, and HDR(n) = 0
//	                 (cfg.None) for nodes in no loop, which the paper calls
//	                 the outermost interval.
//	HDR_PARENT(h)  — header of the interval immediately enclosing interval
//	                 h, or 0 if interval h is outermost.
//	HDR_LCA(a, b)  — least common ancestor of headers a and b in the
//	                 HDR_PARENT tree (with 0 as the tree root).
//
// On a reducible graph loop headers are exactly the targets of back edges
// (edges whose target dominates their source), and the interval of a header
// is the union of the natural loops of its back edges.
package interval

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/dfst"
	"repro/internal/dom"
)

// Info holds the interval structure of one graph.
type Info struct {
	G *cfg.Graph

	// hdr[n] is HDR(n) as defined above (cfg.None when n is in no loop).
	hdr []cfg.NodeID
	// parent[h] is HDR_PARENT(h); only header nodes appear as keys.
	parent map[cfg.NodeID]cfg.NodeID
	// depth[h] is the nesting depth of header h (outermost loop = 1).
	depth map[cfg.NodeID]int
	// body[h] is the node set of interval h, including h itself and all
	// nodes of nested intervals.
	body map[cfg.NodeID]map[cfg.NodeID]bool
	// backEdges[h] lists the back edges targeting h.
	backEdges map[cfg.NodeID][]cfg.Edge
	// headers in deterministic (ascending ID) order.
	headers []cfg.NodeID
}

// ErrIrreducible is returned by Analyze when the graph has a retreating
// edge whose target does not dominate its source. Use dfst.MakeReducible
// first.
type ErrIrreducible struct {
	Edge cfg.Edge
}

func (e *ErrIrreducible) Error() string {
	return fmt.Sprintf("interval: graph is irreducible (retreating edge %v is not a back edge)", e.Edge)
}

// Analyze computes the interval structure of g. The graph must be reducible
// and g.Entry must be set; otherwise an error is returned.
func Analyze(g *cfg.Graph) (*Info, error) {
	if g.Node(g.Entry) == nil {
		return nil, fmt.Errorf("interval: graph %q has no entry node", g.Name)
	}
	d := dfst.New(g)
	doms := dom.Dominators(g)

	in := &Info{
		G:         g,
		hdr:       make([]cfg.NodeID, g.MaxID()+1),
		parent:    make(map[cfg.NodeID]cfg.NodeID),
		depth:     make(map[cfg.NodeID]int),
		body:      make(map[cfg.NodeID]map[cfg.NodeID]bool),
		backEdges: make(map[cfg.NodeID][]cfg.Edge),
	}

	// Collect back edges; reject irreducible graphs.
	for _, e := range d.RetreatingEdges() {
		if !doms.Dominates(e.To, e.From) {
			return nil, &ErrIrreducible{Edge: e}
		}
		in.backEdges[e.To] = append(in.backEdges[e.To], e)
	}
	for h := range in.backEdges {
		in.headers = append(in.headers, h)
	}
	sort.Slice(in.headers, func(i, j int) bool { return in.headers[i] < in.headers[j] })

	// Natural loop of each header: union over its back edges (u, h) of all
	// nodes that reach u along reversed edges without passing through h.
	for _, h := range in.headers {
		body := map[cfg.NodeID]bool{h: true}
		var stack []cfg.NodeID
		for _, e := range in.backEdges[h] {
			if !body[e.From] {
				body[e.From] = true
				stack = append(stack, e.From)
			}
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Preds(n) {
				if !body[p] {
					body[p] = true
					stack = append(stack, p)
				}
			}
		}
		in.body[h] = body
	}

	// Nesting: in a reducible graph two loop bodies are either disjoint or
	// one contains the other, so "innermost containing loop" is well
	// defined. Order headers by increasing body size to find each node's
	// innermost loop first.
	bysize := append([]cfg.NodeID(nil), in.headers...)
	sort.Slice(bysize, func(i, j int) bool {
		a, b := bysize[i], bysize[j]
		if len(in.body[a]) != len(in.body[b]) {
			return len(in.body[a]) < len(in.body[b])
		}
		return a < b
	})
	for _, h := range bysize {
		for n := range in.body[h] {
			if in.hdr[n] == cfg.None {
				in.hdr[n] = h
			}
		}
	}
	// A header is in its own interval; the scan above already guarantees
	// hdr[h] == h because body[h] is the smallest loop containing h.
	// Parent of header h: innermost loop that contains h's body strictly.
	for _, h := range bysize {
		in.parent[h] = cfg.None
		best := cfg.None
		bestSize := int(^uint(0) >> 1)
		for _, h2 := range in.headers {
			if h2 == h {
				continue
			}
			if in.body[h2][h] && len(in.body[h2]) > len(in.body[h]) && len(in.body[h2]) < bestSize {
				best, bestSize = h2, len(in.body[h2])
			}
		}
		in.parent[h] = best
	}
	for _, h := range in.headers {
		in.depth[h] = 0
		for p := h; p != cfg.None; p = in.parent[p] {
			in.depth[h]++
		}
	}
	return in, nil
}

// Headers returns the loop header nodes in ascending ID order. The slice is
// shared; callers must not mutate it.
func (in *Info) Headers() []cfg.NodeID { return in.headers }

// IsHeader reports whether h heads an interval (is the target of a back
// edge).
func (in *Info) IsHeader(h cfg.NodeID) bool { _, ok := in.parent[h]; return ok }

// HDR returns the header of the innermost interval containing n, or
// cfg.None if n belongs to the outermost (whole-procedure) interval.
func (in *Info) HDR(n cfg.NodeID) cfg.NodeID {
	if n <= cfg.None || int(n) >= len(in.hdr) {
		return cfg.None
	}
	return in.hdr[n]
}

// Parent returns HDR_PARENT(h): the header of the immediately enclosing
// interval, or cfg.None for outermost intervals. h must be a header.
func (in *Info) Parent(h cfg.NodeID) cfg.NodeID { return in.parent[h] }

// Depth returns the loop nesting depth of header h (1 = outermost loop).
// Non-headers have depth 0.
func (in *Info) Depth(h cfg.NodeID) int { return in.depth[h] }

// LCA returns HDR_LCA(a, b): the least common ancestor of headers a and b
// in the HDR_PARENT tree. cfg.None is the root of that tree, so LCA of two
// unrelated headers is cfg.None. Both arguments must be headers or
// cfg.None.
func (in *Info) LCA(a, b cfg.NodeID) cfg.NodeID {
	if a == cfg.None || b == cfg.None {
		return cfg.None
	}
	da, db := in.depth[a], in.depth[b]
	for da > db {
		a = in.parent[a]
		da--
	}
	for db > da {
		b = in.parent[b]
		db--
	}
	for a != b {
		a, b = in.parent[a], in.parent[b]
	}
	return a
}

// Body returns the node set of interval h (h itself, its loop body, and all
// nested intervals). The map is shared; callers must not mutate it.
func (in *Info) Body(h cfg.NodeID) map[cfg.NodeID]bool { return in.body[h] }

// Contains reports whether node n lies inside interval h (h's own header
// included). Contains(cfg.None, n) is true for every n: everything is in
// the outermost interval.
func (in *Info) Contains(h, n cfg.NodeID) bool {
	if h == cfg.None {
		return true
	}
	return in.body[h][n]
}

// BackEdges returns the back edges whose target is header h, in graph edge
// order.
func (in *Info) BackEdges(h cfg.NodeID) []cfg.Edge { return in.backEdges[h] }

// LoopExits returns the edges that leave interval h: edges (u, v) with u
// inside the interval and v outside. Deterministic order.
func (in *Info) LoopExits(h cfg.NodeID) []cfg.Edge {
	var out []cfg.Edge
	for _, e := range in.G.Edges() {
		if in.body[h][e.From] && !in.body[h][e.To] {
			out = append(out, e)
		}
	}
	return out
}
