package cdg

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/ecfg"
	"repro/internal/wire"
)

// Encode serializes the dependence edges (succ and pred lists verbatim, so
// iteration orders survive the round trip) plus the back-edge markers. The
// dense caches of a forward graph are not written: Decode rebuilds them
// with the same deterministic computeTopo/buildDense pass Forward runs, so
// a decoded FCDG is indistinguishable from a freshly built one.
func (g *Graph) Encode(w *wire.Writer) {
	w.Varint(int64(g.Root))
	w.Bool(g.topo != nil) // forward graphs carry topo + dense caches
	encodeEdgeMap(w, g.succ)
	encodeEdgeMap(w, g.pred)
	backs := make([]cfg.Edge, 0, len(g.fromBackEdge))
	for e, ok := range g.fromBackEdge {
		if ok {
			backs = append(backs, e)
		}
	}
	sort.Slice(backs, func(i, j int) bool {
		a, b := backs[i], backs[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label < b.Label
	})
	w.Uvarint(uint64(len(backs)))
	for _, e := range backs {
		cfg.EncodeEdge(w, e)
	}
}

func encodeEdgeMap(w *wire.Writer, m map[cfg.NodeID][]cfg.Edge) {
	keys := make([]cfg.NodeID, 0, len(m))
	for n := range m {
		keys = append(keys, n)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Uvarint(uint64(len(keys)))
	for _, n := range keys {
		w.Varint(int64(n))
		es := m[n]
		w.Uvarint(uint64(len(es)))
		for _, e := range es {
			cfg.EncodeEdge(w, e)
		}
	}
}

func decodeEdgeMap(r *wire.Reader, eg *cfg.Graph) map[cfg.NodeID][]cfg.Edge {
	m := make(map[cfg.NodeID][]cfg.Edge)
	nk := r.Count(2)
	for i := 0; i < nk; i++ {
		n := cfg.DecodeNodeID(r, eg)
		ne := r.Count(3)
		es := make([]cfg.Edge, 0, ne)
		for j := 0; j < ne; j++ {
			es = append(es, cfg.DecodeEdge(r, eg))
		}
		if r.Err() != nil {
			return m
		}
		m[n] = es
	}
	return m
}

// Decode reads a Graph written by Encode, attached to ext. For forward
// graphs the topological order and dense condition caches are recomputed;
// a cyclic edge set masquerading as a forward graph is rejected through
// r.Failf (the caller treats it as a cache miss).
func Decode(r *wire.Reader, ext *ecfg.Ext) *Graph {
	g := &Graph{
		Ext:          ext,
		fromBackEdge: make(map[cfg.Edge]bool),
	}
	g.Root = cfg.NodeID(r.Varint())
	forward := r.Bool()
	if r.Err() != nil {
		return g
	}
	eg := ext.G
	if eg.Node(g.Root) == nil {
		r.Failf("cdg root %d outside extended graph", g.Root)
		return g
	}
	g.succ = decodeEdgeMap(r, eg)
	g.pred = decodeEdgeMap(r, eg)
	nb := r.Count(3)
	for i := 0; i < nb; i++ {
		g.fromBackEdge[cfg.DecodeEdge(r, eg)] = true
	}
	if r.Err() != nil {
		return g
	}
	if forward {
		if err := g.computeTopo(); err != nil {
			r.Failf("decoded forward CDG: %v", err)
			return g
		}
		g.buildDense()
	}
	return g
}
