package cdg

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/ecfg"
	"repro/internal/interval"
	"repro/internal/paperex"
)

func buildExt(t *testing.T, g *cfg.Graph) *ecfg.Ext {
	t.Helper()
	in, err := interval.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ecfg.Build(g, in)
	if err != nil {
		t.Fatal(err)
	}
	return ext
}

func buildFCDG(t *testing.T, g *cfg.Graph) (*ecfg.Ext, *Graph) {
	t.Helper()
	ext := buildExt(t, g)
	c, err := Build(ext)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Forward()
	if err != nil {
		t.Fatal(err)
	}
	return ext, f
}

// TestPaperExampleFCDG checks the full control dependence structure of
// Figure 3. With the hand-built Figure 1 CFG the ECFG node IDs are:
// 1..6 the statements, 7 = PREHEADER, 8 = POSTEXIT (from IF N.LT.0),
// 9 = POSTEXIT (from IF N.GE.0), 10 = START, 11 = STOP.
func TestPaperExampleFCDG(t *testing.T) {
	ext, f := buildFCDG(t, paperex.CFG())
	ph := ext.Preheader[paperex.IfM]
	start := ext.Start

	type e struct {
		from cfg.NodeID
		to   cfg.NodeID
		l    cfg.Label
	}
	want := []e{
		{start, ph, cfg.Uncond},             // loop region CD on START
		{start, paperex.Cont20, cfg.Uncond}, // code after the loop CD on START
		{ph, paperex.IfM, cfg.Uncond},       // header CD on preheader (loop freq)
		{paperex.IfM, paperex.IfNLt, cfg.True},
		{paperex.IfM, paperex.IfNGe, cfg.False},
		{paperex.IfNLt, paperex.Call, cfg.False},
		{paperex.IfNLt, paperex.Goto10, cfg.False},
		{paperex.IfNGe, paperex.Call, cfg.False},
		{paperex.IfNGe, paperex.Goto10, cfg.False},
	}
	for _, w := range want {
		if !f.HasEdge(w.from, w.to, w.l) {
			t.Errorf("FCDG missing edge %d -%s-> %d\n%s", w.from, w.l, w.to, f)
		}
	}
	// Postexits are CD on the preheader via the pseudo label.
	for _, pe := range ext.Postexits {
		onPre := f.HasEdge(ph, pe, cfg.PseudoLoop)
		if !onPre {
			t.Errorf("postexit %d not CD on (preheader, Z2)\n%s", pe, f)
		}
	}
	// The loop-closing dependences (IF arms -> header) must be gone.
	if f.HasEdge(paperex.IfNLt, paperex.IfM, cfg.False) ||
		f.HasEdge(paperex.IfNGe, paperex.IfM, cfg.False) {
		t.Errorf("FCDG kept a back edge to the header\n%s", f)
	}
	// STOP is control dependent on nothing and controls nothing.
	if len(f.OutEdges(ext.Stop)) != 0 || len(f.InEdges(ext.Stop)) != 0 {
		t.Errorf("STOP must be isolated in the FCDG")
	}
}

func TestCDGKeepsLoopBackDependences(t *testing.T) {
	ext := buildExt(t, paperex.CFG())
	c, err := Build(ext)
	if err != nil {
		t.Fatal(err)
	}
	// In the full CDG the header IS control dependent on the continuing IF
	// arms (the cycle the FCDG breaks).
	if !c.HasEdge(paperex.IfNLt, paperex.IfM, cfg.False) {
		t.Errorf("CDG missing loop-back dependence (IF N.LT.0, F) -> header\n%s", c)
	}
}

func TestForwardIsAcyclicWithTopo(t *testing.T) {
	_, f := buildFCDG(t, paperex.CFG())
	topo := f.Topo()
	if len(topo) == 0 {
		t.Fatal("no topological order")
	}
	pos := map[cfg.NodeID]int{}
	for i, n := range topo {
		pos[n] = i
	}
	for _, n := range f.Nodes() {
		for _, e := range f.OutEdges(n) {
			if pos[e.From] >= pos[e.To] {
				t.Errorf("edge %v violates topological order", e)
			}
		}
	}
	if topo[0] != f.Root {
		t.Errorf("topo[0] = %d, want root %d", topo[0], f.Root)
	}
}

func TestFCDGRootedAndConnected(t *testing.T) {
	// Paper: "the forward control dependence graph is rooted and
	// connected" — every ECFG node except STOP is reachable from START.
	ext, f := buildFCDG(t, paperex.CFG())
	reach := map[cfg.NodeID]bool{f.Root: true}
	var walk func(n cfg.NodeID)
	walk = func(n cfg.NodeID) {
		for _, e := range f.OutEdges(n) {
			if !reach[e.To] {
				reach[e.To] = true
				walk(e.To)
			}
		}
	}
	walk(f.Root)
	for id := cfg.NodeID(1); id <= ext.G.MaxID(); id++ {
		if id == ext.Stop {
			continue
		}
		if !reach[id] {
			t.Errorf("node %d (%s) not reachable from START in FCDG", id, ext.G.Node(id).Name)
		}
	}
}

func TestConditions(t *testing.T) {
	ext, f := buildFCDG(t, paperex.CFG())
	conds := f.Conditions()
	// Expected conditions: (START,U), (ph,U), (ph,Z2), (1,T), (1,F),
	// (2,F), (3,F)  — plus nothing else. (2,T)/(3,T) appear iff the
	// postexits are also CD on the exit branches, which they are.
	set := map[Condition]bool{}
	for _, c := range conds {
		set[c] = true
	}
	mustHave := []Condition{
		{ext.Start, cfg.Uncond},
		{ext.Preheader[paperex.IfM], cfg.Uncond},
		{ext.Preheader[paperex.IfM], cfg.PseudoLoop},
		{paperex.IfM, cfg.True},
		{paperex.IfM, cfg.False},
		{paperex.IfNLt, cfg.False},
		{paperex.IfNGe, cfg.False},
		{paperex.IfNLt, cfg.True},
		{paperex.IfNGe, cfg.True},
	}
	for _, c := range mustHave {
		if !set[c] {
			t.Errorf("Conditions missing %v: %v", c, conds)
		}
	}
	// Sorted by node then label.
	for i := 1; i < len(conds); i++ {
		a, b := conds[i-1], conds[i]
		if a.Node > b.Node || (a.Node == b.Node && a.Label >= b.Label) {
			t.Errorf("Conditions not sorted: %v before %v", a, b)
		}
	}
}

func TestChildrenAndLabels(t *testing.T) {
	_, f := buildFCDG(t, paperex.CFG())
	kids := f.Children(paperex.IfNLt, cfg.False)
	if len(kids) != 2 || kids[0] != paperex.Call || kids[1] != paperex.Goto10 {
		t.Errorf("Children(IF N.LT.0, F) = %v, want [CALL GOTO]", kids)
	}
	labels := f.Labels(paperex.IfM)
	if len(labels) != 2 {
		t.Errorf("Labels(header) = %v, want [F T]", labels)
	}
}

func TestIdenticallyControlDependentShareCondition(t *testing.T) {
	// The first profiling optimization's premise: CALL and GOTO are
	// identically control dependent — both children of (IF N.LT.0, F) and
	// (IF N.GE.0, F) — although they are in different basic blocks.
	_, f := buildFCDG(t, paperex.CFG())
	parentsOf := func(n cfg.NodeID) map[Condition]bool {
		set := map[Condition]bool{}
		for _, e := range f.InEdges(n) {
			set[Condition{e.From, e.Label}] = true
		}
		return set
	}
	pc, pg := parentsOf(paperex.Call), parentsOf(paperex.Goto10)
	if len(pc) != len(pg) {
		t.Fatalf("CALL and GOTO have different CD parents: %v vs %v", pc, pg)
	}
	for c := range pc {
		if !pg[c] {
			t.Fatalf("CALL and GOTO have different CD parents: %v vs %v", pc, pg)
		}
	}
}

func TestDiamondCDG(t *testing.T) {
	g := cfg.New("diamond")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.True)
	g.MustAddEdge(1, 3, cfg.False)
	g.MustAddEdge(2, 4, cfg.Uncond)
	g.MustAddEdge(3, 4, cfg.Uncond)
	g.Entry, g.Exit = 1, 4
	ext, f := buildFCDG(t, g)
	if !f.HasEdge(1, 2, cfg.True) || !f.HasEdge(1, 3, cfg.False) {
		t.Errorf("branch arms not CD on the branch:\n%s", f)
	}
	// The join node is CD on START, not on the branch.
	if f.HasEdge(1, 4, cfg.True) || f.HasEdge(1, 4, cfg.False) {
		t.Errorf("join node must not be CD on the branch:\n%s", f)
	}
	if !f.HasEdge(ext.Start, 4, cfg.Uncond) {
		t.Errorf("join node must be CD on START:\n%s", f)
	}
}

func TestStringOutput(t *testing.T) {
	_, f := buildFCDG(t, paperex.CFG())
	s := f.String()
	if !strings.Contains(s, "fcdg root=") {
		t.Errorf("String() = %q", s)
	}
	d := f.DOT()
	if !strings.Contains(d, "digraph") || !strings.Contains(d, "PREHEADER") {
		t.Errorf("DOT() missing content")
	}
}

func TestNumEdges(t *testing.T) {
	_, f := buildFCDG(t, paperex.CFG())
	if f.NumEdges() < 9 {
		t.Errorf("NumEdges = %d, want >= 9", f.NumEdges())
	}
}

// TestLoopCarriedDependencesDropped is the regression test for the
// double-count bug the Livermore kernels exposed: a GOTO loop whose header
// is a plain assignment (no CD descendants) used to keep loop-carried CD
// edges like (latch-IF, T) -> header in the FCDG, inflating NODE_FREQ by
// the back-edge count. Both drop rules are exercised: dependences
// generated by walking CFG back edges, and forward-walk dependences
// landing on a header from inside its own loop.
func TestLoopCarriedDependencesDropped(t *testing.T) {
	// 1: K=0; 2: K=K+1 (header); 3: IF exit; 4: work; 5: IF(...) GOTO 2;
	// 6: GOTO 2 via second path; 7: after.
	g := cfg.New("gotoloop")
	for i := 0; i < 7; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 7, cfg.True)  // loop exit
	g.MustAddEdge(3, 4, cfg.False) // continue
	g.MustAddEdge(4, 2, cfg.True)  // back edge (branch)
	g.MustAddEdge(4, 5, cfg.False)
	g.MustAddEdge(5, 6, cfg.Uncond)
	g.MustAddEdge(6, 2, cfg.Uncond) // back edge (unconditional)
	g.Entry, g.Exit = 1, 7
	ext, f := buildFCDG(t, g)

	// The header (2) must be CD on exactly one condition: the preheader's
	// loop-body label.
	ph := ext.Preheader[2]
	in := f.InEdges(2)
	if len(in) != 1 || in[0].From != ph || in[0].Label != cfg.Uncond {
		t.Errorf("header in-edges = %v, want only (preheader %d, U)\n%s", in, ph, f)
	}
	// Same for every node that executes once per iteration: its in-conds
	// must be mutually exclusive per execution. Node 3 executes once per
	// header execution, so it too hangs only off the loop condition.
	in3 := f.InEdges(3)
	if len(in3) != 1 || in3[0].From != ph {
		t.Errorf("node 3 in-edges = %v, want only the preheader\n%s", in3, f)
	}
	// Nodes 5 and 6 are CD on (4,F) only.
	for _, n := range []cfg.NodeID{5, 6} {
		for _, e := range f.InEdges(n) {
			if e.From != 4 || e.Label != cfg.False {
				t.Errorf("node %d unexpected in-edge %v", n, e)
			}
		}
	}
}
