// Package cost defines target-architecture cost models: the mapping from a
// lowered statement node to its (average) local execution time COST(u), in
// abstract machine cycles.
//
// The paper treats primitive-operation costs as an input ("it is assumed
// that the (average) local execution time of each node ... has already been
// estimated, and is stored as COST(u)") and obtains its Table 1 numbers on
// an IBM 3090 with VS Fortran optimization ON and OFF. We substitute two
// cost tables: Optimized models compiled code with register allocation and
// pipelining (cheap loads, cheap loop bookkeeping), Unoptimized models
// memory-to-memory code. Absolute values are arbitrary cycles; what the
// experiments rely on is (a) the ratio between the two models and (b) the
// relative weight of counter-update operations, both chosen to sit in the
// range the paper's Table 1 exhibits.
package cost

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/lang"
	"repro/internal/lower"
)

// Model prices the primitive operations of the lowered language.
type Model struct {
	Name string

	// Arithmetic operation costs.
	AddSub float64
	Mul    float64
	Div    float64
	Pow    float64
	Rel    float64 // relational / logical op
	Intrin float64 // transcendental intrinsic (SQRT, EXP, ...)

	// Memory access costs.
	Load      float64 // scalar load
	Store     float64 // scalar store
	IndexCalc float64 // per-dimension array address arithmetic

	// Control costs.
	Branch   float64 // conditional branch
	Jump     float64 // unconditional jump
	LoopOvhd float64 // DO test/increment bookkeeping (per node)
	CallOvhd float64 // call/return linkage (excludes the callee body)
	PrintOp  float64 // per printed item

	// CounterUpdate is the cost of one profiling counter increment
	// (load + add + store of a memory word). CounterAdd is the cost of
	// adding an arbitrary value to a counter (the DO-loop optimization's
	// one-shot add); it equals CounterUpdate plus the cost of having the
	// value on hand.
	CounterUpdate float64
	CounterAdd    float64

	// Floor, when non-zero, is a minimum cost applied to every node.
	Floor float64
}

// Optimized models full optimization/vectorization: operands mostly live in
// registers, loop bookkeeping is cheap, but a profiling counter update is
// still a memory read-modify-write.
var Optimized = Model{
	Name:   "opt-on",
	AddSub: 1, Mul: 1, Div: 8, Pow: 20, Rel: 1, Intrin: 20,
	Load: 0.5, Store: 1, IndexCalc: 0.5,
	Branch: 1, Jump: 0.5, LoopOvhd: 1, CallOvhd: 10, PrintOp: 50,
	CounterUpdate: 3, CounterAdd: 4,
}

// Unoptimized models no optimization: every operand is loaded from and
// stored to memory, loop bookkeeping is spelled out.
var Unoptimized = Model{
	Name:   "opt-off",
	AddSub: 3, Mul: 5, Div: 15, Pow: 40, Rel: 3, Intrin: 40,
	Load: 3, Store: 3, IndexCalc: 3,
	Branch: 4, Jump: 2, LoopOvhd: 6, CallOvhd: 25, PrintOp: 50,
	CounterUpdate: 9, CounterAdd: 10,
}

// Unit is the trivial model: every node costs exactly 1 (so trace cost
// equals step count) and counters cost 1. Useful in tests where the
// interesting quantity is a frequency, not a time.
var Unit = Model{
	Name:          "unit",
	CounterUpdate: 1, CounterAdd: 1,
	Floor: 1,
}

// Scaled returns the model with every primitive cost multiplied by k — a
// uniformly k-times-slower (or faster) target architecture. Because every
// COST(u) scales linearly, TIME scales by k, VAR by k², and STD_DEV by k;
// the oracle's cost-scaling invariant checks exactly that.
func (m Model) Scaled(k float64) Model {
	s := m
	s.Name = fmt.Sprintf("%s×%g", m.Name, k)
	s.AddSub *= k
	s.Mul *= k
	s.Div *= k
	s.Pow *= k
	s.Rel *= k
	s.Intrin *= k
	s.Load *= k
	s.Store *= k
	s.IndexCalc *= k
	s.Branch *= k
	s.Jump *= k
	s.LoopOvhd *= k
	s.CallOvhd *= k
	s.PrintOp *= k
	s.CounterUpdate *= k
	s.CounterAdd *= k
	s.Floor *= k
	return s
}

// NodeCost returns COST(u) for a lowered node payload under the model.
func (m Model) NodeCost(op lower.Op) float64 {
	c := 0.0
	switch o := op.(type) {
	case lower.OpAssign:
		c = m.exprCost(o.S.RHS) + m.storeCost(o.S.LHS)
	case lower.OpBranch:
		c = m.exprCost(o.Cond) + m.Branch
	case lower.OpArithIf:
		c = m.exprCost(o.E) + 2*m.Branch // compare-and-branch twice
	case lower.OpComputedGoto:
		c = m.exprCost(o.E) + m.Branch + m.Jump // bounds check + indexed jump
	case lower.OpCall:
		c = m.CallOvhd
		for _, a := range o.S.Args {
			c += m.argCost(a)
		}
	case lower.OpDoInit:
		c = m.exprCost(o.L.Lo) + m.exprCost(o.L.Hi) + m.stepCost(o.L.Step) + m.Store + m.LoopOvhd
	case lower.OpDoTest:
		c = m.LoopOvhd + m.Branch
	case lower.OpDoIncr:
		c = m.LoopOvhd + m.AddSub + m.Jump
	case lower.OpPrint:
		c = float64(len(o.S.Items)) * m.PrintOp
		for _, e := range o.S.Items {
			c += m.exprCost(e)
		}
	case lower.OpNop:
		c = 0
	case lower.OpReturn:
		c = m.Jump
	case lower.OpStop:
		c = m.Jump
	case lower.OpEnd:
		c = 0
	}
	if c < m.Floor {
		c = m.Floor
	}
	return c
}

func (m Model) stepCost(e lang.Expr) float64 {
	if e == nil {
		return 0
	}
	return m.exprCost(e)
}

// storeCost prices writing to an lvalue.
func (m Model) storeCost(lhs lang.Expr) float64 {
	if ix, ok := lhs.(*lang.Index); ok {
		c := m.Store + float64(len(ix.Subs))*m.IndexCalc
		for _, s := range ix.Subs {
			c += m.exprCost(s)
		}
		return c
	}
	return m.Store
}

// argCost prices preparing one call argument (address computation for
// by-reference passing, or evaluation for expressions).
func (m Model) argCost(a lang.Expr) float64 {
	switch x := a.(type) {
	case *lang.Var:
		_ = x
		return 0 // just an address: free
	case *lang.Index:
		c := float64(len(x.Subs)) * m.IndexCalc
		for _, s := range x.Subs {
			c += m.exprCost(s)
		}
		return c
	default:
		return m.exprCost(a)
	}
}

// exprCost prices evaluating an expression tree.
func (m Model) exprCost(e lang.Expr) float64 {
	switch x := e.(type) {
	case nil:
		return 0
	case *lang.IntLit, *lang.RealLit, *lang.LogLit, *lang.StrLit:
		return 0
	case *lang.Var:
		return m.Load
	case *lang.Index:
		c := m.Load + float64(len(x.Subs))*m.IndexCalc
		for _, s := range x.Subs {
			c += m.exprCost(s)
		}
		return c
	case *lang.Intrinsic:
		c := 0.0
		for _, a := range x.Args {
			c += m.exprCost(a)
		}
		switch x.Name {
		case "ABS", "MOD", "MIN", "MAX", "INT", "REAL", "SIGN":
			return c + m.AddSub
		default: // SQRT, EXP, LOG, SIN, COS, RAND, IRAND
			return c + m.Intrin
		}
	case *lang.Un:
		return m.exprCost(x.X) + m.AddSub
	case *lang.Bin:
		c := m.exprCost(x.L) + m.exprCost(x.R)
		switch x.Op {
		case lang.OpAdd, lang.OpSub:
			return c + m.AddSub
		case lang.OpMul:
			return c + m.Mul
		case lang.OpDiv:
			return c + m.Div
		case lang.OpPow:
			return c + m.Pow
		default:
			return c + m.Rel
		}
	}
	return 0
}

// Table is a dense COST(u) table indexed directly by NodeID (index 0 is
// the None sentinel and unused). A nil or short table reads as zero cost
// via At, so sparse hand-built tables need only cover the priced nodes.
type Table []float64

// NewTable returns a zeroed table able to hold nodes 1..maxID.
func NewTable(maxID cfg.NodeID) Table { return make(Table, maxID+1) }

// At returns COST(u), treating out-of-range nodes as free.
func (t Table) At(u cfg.NodeID) float64 {
	if u <= cfg.None || int(u) >= len(t) {
		return 0
	}
	return t[u]
}

// FromMap converts a sparse map into a dense table sized to its largest
// key.
func FromMap(m map[cfg.NodeID]float64) Table {
	max := cfg.None
	for u := range m {
		if u > max {
			max = u
		}
	}
	t := NewTable(max)
	for u, v := range m {
		t[u] = v
	}
	return t
}

// Table computes the full COST(u) table for one lowered procedure.
func (m Model) Table(p *lower.Proc) Table {
	out := NewTable(p.G.MaxID())
	for _, n := range p.G.Nodes() {
		if op, ok := n.Payload.(lower.Op); ok {
			out[n.ID] = m.NodeCost(op)
		}
	}
	return out
}
