package cost

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/lower"
)

func lowerOne(t *testing.T, body string) *lower.Proc {
	t.Helper()
	prog, err := lang.Parse("      PROGRAM T\n" + body + "      END\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res.Main
}

func nodeCostByName(t *testing.T, p *lower.Proc, m Model, prefix string) float64 {
	t.Helper()
	for _, n := range p.G.Nodes() {
		if len(n.Name) >= len(prefix) && n.Name[:len(prefix)] == prefix {
			op, ok := n.Payload.(lower.Op)
			if !ok {
				t.Fatalf("node %q has no op", n.Name)
			}
			return m.NodeCost(op)
		}
	}
	t.Fatalf("no node with prefix %q", prefix)
	return 0
}

func TestModelOrdering(t *testing.T) {
	prog, err := lang.Parse(`      PROGRAM T
      REAL A(10)
      INTEGER I
      DO 10 I = 1, 10
         A(I) = A(I)*2.0 + 1.0/3.0
   10 CONTINUE
      IF (A(1) .GT. 0.0) A(2) = SQRT(A(1))
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Main
	onTab := Optimized.Table(p)
	offTab := Unoptimized.Table(p)
	for _, n := range p.G.Nodes() {
		if _, ok := n.Payload.(lower.OpEnd); ok {
			continue
		}
		if offTab[n.ID] < onTab[n.ID] {
			t.Errorf("node %q: opt-off %g < opt-on %g", n.Name, offTab[n.ID], onTab[n.ID])
		}
	}
}

func TestExpressionCostsScaleWithComplexity(t *testing.T) {
	p := lowerOne(t, `      REAL A(5,5)
      X = 1.0
      Y = X + X
      Z = X*X + X/X + X**2.0
      W = A(1,2) + SQRT(X)
`)
	m := Optimized
	simple := nodeCostByName(t, p, m, "X = 1")
	add := nodeCostByName(t, p, m, "Y = X+X")
	heavy := nodeCostByName(t, p, m, "Z = ")
	mem := nodeCostByName(t, p, m, "W = ")
	if !(simple < add && add < heavy) {
		t.Errorf("cost ordering: const %g, add %g, heavy %g", simple, add, heavy)
	}
	if mem <= add {
		t.Errorf("2-D index + intrinsic (%g) should cost more than one add (%g)", mem, add)
	}
}

func TestUnitModelFlat(t *testing.T) {
	p := lowerOne(t, `      REAL A(5)
      INTEGER I
      DO 10 I = 1, 5
         A(I) = A(I)**3.0 + SQRT(2.0)
   10 CONTINUE
`)
	tab := Unit.Table(p)
	for _, n := range p.G.Nodes() {
		if tab[n.ID] != 1 {
			t.Errorf("unit cost of %q = %g, want 1", n.Name, tab[n.ID])
		}
	}
}

func TestCounterPricesPositive(t *testing.T) {
	for _, m := range []Model{Optimized, Unoptimized, Unit} {
		if m.CounterUpdate <= 0 || m.CounterAdd <= 0 {
			t.Errorf("%s: counter prices must be positive", m.Name)
		}
		if m.CounterAdd < m.CounterUpdate {
			t.Errorf("%s: a trip-add (%g) cannot be cheaper than an increment (%g)",
				m.Name, m.CounterAdd, m.CounterUpdate)
		}
	}
}

func TestCallCostExcludesCallee(t *testing.T) {
	prog, err := lang.Parse(`      PROGRAM T
      CALL HEAVY
      END

      SUBROUTINE HEAVY
      INTEGER I
      DO 10 I = 1, 1000
   10 CONTINUE
      RETURN
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := Optimized
	callCost := nodeCostByName(t, res.Main, m, "CALL HEAVY")
	// The call node itself is just linkage; the thousand-iteration body is
	// accounted by rule 2 in the estimator, not here.
	if callCost > m.CallOvhd+1 {
		t.Errorf("call node cost %g should be near linkage cost %g", callCost, m.CallOvhd)
	}
}

// TestScaledMultipliesEveryField uses reflection so that a cost field added
// later without updating Scaled fails here instead of silently breaking the
// oracle's cost-scaling invariant.
func TestScaledMultipliesEveryField(t *testing.T) {
	const k = 2.5
	m := Unoptimized
	m.Floor = 0.5 // exercise the floor too
	s := m.Scaled(k)
	mv, sv := reflect.ValueOf(m), reflect.ValueOf(s)
	for i := 0; i < mv.NumField(); i++ {
		f := mv.Type().Field(i)
		if f.Type.Kind() != reflect.Float64 {
			continue
		}
		orig, scaled := mv.Field(i).Float(), sv.Field(i).Float()
		if math.Abs(scaled-k*orig) > 1e-12*math.Max(1, math.Abs(k*orig)) {
			t.Errorf("field %s: %g scaled to %g, want %g", f.Name, orig, scaled, k*orig)
		}
	}
	if s.Name == m.Name || !strings.Contains(s.Name, m.Name) {
		t.Errorf("scaled model name %q should derive from %q", s.Name, m.Name)
	}
}

// TestScaledScalesNodeCosts checks the end-to-end property on a lowered
// procedure: every node's table cost scales by exactly k.
func TestScaledScalesNodeCosts(t *testing.T) {
	const k = 3.0
	p := lowerOne(t, `      INTEGER I
      REAL X
      X = 0.0
      DO 10 I = 1, 4
         X = X + SIN(X)*2.0
   10 CONTINUE
      PRINT *, X
`)
	base := Optimized.Table(p)
	scaled := Optimized.Scaled(k).Table(p)
	for _, n := range p.G.Nodes() {
		want := k * base[n.ID]
		if math.Abs(scaled[n.ID]-want) > 1e-12*math.Max(1, want) {
			t.Errorf("node %d (%s): cost %g, want %g", n.ID, n.Name, scaled[n.ID], want)
		}
	}
}
