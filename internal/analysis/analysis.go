// Package analysis assembles the paper's full per-procedure pipeline —
// interval structure, extended CFG, control dependence, forward control
// dependence — and orders procedures bottom-up over the call graph, the
// order Section 4's rule 2 requires (callees are costed before callers;
// recursive procedures surface as multi-member or self-looping strongly
// connected components).
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/cdg"
	"repro/internal/ecfg"
	"repro/internal/interval"
	"repro/internal/lower"
)

// Proc bundles every derived structure for one procedure.
type Proc struct {
	P *lower.Proc
	// Intervals is the interval structure of the original CFG.
	Intervals *interval.Info
	// Ext is the extended CFG.
	Ext *ecfg.Ext
	// CDG is the full control dependence graph.
	CDG *cdg.Graph
	// FCDG is the forward control dependence graph.
	FCDG *cdg.Graph
}

// Program is the analyzed whole program.
type Program struct {
	Res *lower.Result
	// Procs maps unit name to its analysis.
	Procs map[string]*Proc
	// BottomUp lists the strongly connected components of the call graph
	// in bottom-up topological order (every callee's component appears
	// before its callers'). Components with more than one member, or a
	// single member that calls itself, are recursive.
	BottomUp [][]string
}

// AnalyzeProc runs the full pipeline on one lowered procedure. The lowering
// phase already node-split any irreducible input, so the CFG is reducible.
func AnalyzeProc(p *lower.Proc) (*Proc, error) {
	a := &Proc{P: p}
	g := p.G
	iv, err := interval.Analyze(g)
	if err != nil {
		return nil, fmt.Errorf("analysis %s: %w", g.Name, err)
	}
	a.Intervals = iv
	ext, err := ecfg.Build(g, iv)
	if err != nil {
		return nil, fmt.Errorf("analysis %s: %w", g.Name, err)
	}
	a.Ext = ext
	full, err := cdg.Build(ext)
	if err != nil {
		return nil, fmt.Errorf("analysis %s: %w", g.Name, err)
	}
	a.CDG = full
	fwd, err := full.Forward()
	if err != nil {
		return nil, fmt.Errorf("analysis %s: %w", g.Name, err)
	}
	a.FCDG = fwd
	return a, nil
}

// AnalyzeProgram analyzes every procedure and computes the bottom-up call
// order.
func AnalyzeProgram(res *lower.Result) (*Program, error) {
	prog := &Program{Res: res, Procs: make(map[string]*Proc)}
	names := make([]string, 0, len(res.Procs))
	for name := range res.Procs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a, err := AnalyzeProc(res.Procs[name])
		if err != nil {
			return nil, err
		}
		prog.Procs[name] = a
	}
	prog.BottomUp = bottomUpSCCs(names, res.CallGraph)
	return prog, nil
}

// IsRecursive reports whether the named procedure participates in a call
// cycle (including direct self-recursion).
func (p *Program) IsRecursive(name string) bool {
	for _, comp := range p.BottomUp {
		if len(comp) > 1 {
			for _, m := range comp {
				if m == name {
					return true
				}
			}
			continue
		}
		if comp[0] != name {
			continue
		}
		for _, callee := range p.Res.CallGraph[name] {
			if callee == name {
				return true
			}
		}
	}
	return false
}

// bottomUpSCCs runs Tarjan's SCC algorithm on the call graph and returns
// the components in reverse topological order (callees before callers).
func bottomUpSCCs(names []string, calls map[string][]string) [][]string {
	index := make(map[string]int)
	lowlink := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	counter := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		counter++
		index[v] = counter
		lowlink[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range calls[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range names {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation — exactly the bottom-up order we need (a component is
	// emitted only after everything it calls).
	return comps
}
