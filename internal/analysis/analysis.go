// Package analysis assembles the paper's full per-procedure pipeline —
// interval structure, extended CFG, control dependence, forward control
// dependence — and orders procedures bottom-up over the call graph, the
// order Section 4's rule 2 requires (callees are costed before callers;
// recursive procedures surface as multi-member or self-looping strongly
// connected components).
//
// Procedures are analyzed independently, so AnalyzeProgram fans them out
// to a bounded worker pool; only the final call-graph SCC pass is global.
// The result is identical for every worker count.
package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdg"
	"repro/internal/dataflow"
	"repro/internal/ecfg"
	"repro/internal/interval"
	"repro/internal/lower"
	"repro/internal/obs"
)

// Proc bundles every derived structure for one procedure.
type Proc struct {
	P *lower.Proc
	// Intervals is the interval structure of the original CFG.
	Intervals *interval.Info
	// Ext is the extended CFG.
	Ext *ecfg.Ext
	// CDG is the full control dependence graph.
	CDG *cdg.Graph
	// FCDG is the forward control dependence graph.
	FCDG *cdg.Graph
	// Flow holds the monotone dataflow facts (constants, feasibility,
	// liveness, definite assignment) over the original lowered CFG.
	Flow *dataflow.Facts
}

// Program is the analyzed whole program.
type Program struct {
	Res *lower.Result
	// Procs maps unit name to its analysis.
	Procs map[string]*Proc
	// BottomUp lists the strongly connected components of the call graph
	// in bottom-up topological order (every callee's component appears
	// before its callers'). Components with more than one member, or a
	// single member that calls itself, are recursive.
	BottomUp [][]string
}

// AnalyzeProc runs the full pipeline on one lowered procedure. The lowering
// phase already node-split any irreducible input, so the CFG is reducible.
func AnalyzeProc(p *lower.Proc) (*Proc, error) { return analyzeProcTraced(p, nil) }

// analyzeProcTraced is AnalyzeProc reporting each phase into tr (nil = no
// tracing). Same-named spans from concurrent procedures aggregate into one
// row per phase.
func analyzeProcTraced(p *lower.Proc, tr *obs.Trace) (*Proc, error) {
	a := &Proc{P: p}
	g := p.G
	sp := tr.Start("interval")
	iv, err := interval.Analyze(g)
	sp.End(obs.M("cfg_nodes", float64(len(g.Nodes()))))
	if err != nil {
		return nil, fmt.Errorf("analysis %s: %w", g.Name, err)
	}
	a.Intervals = iv
	sp = tr.Start("ecfg")
	ext, err := ecfg.Build(g, iv)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("analysis %s: %w", g.Name, err)
	}
	sp.End(obs.M("ecfg_nodes", float64(len(ext.G.Nodes()))))
	a.Ext = ext
	sp = tr.Start("cdg")
	full, err := cdg.Build(ext)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("analysis %s: %w", g.Name, err)
	}
	a.CDG = full
	sp = tr.Start("fcdg")
	fwd, err := full.Forward()
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("analysis %s: %w", g.Name, err)
	}
	sp.End(obs.M("conditions", float64(len(fwd.Conditions()))))
	a.FCDG = fwd
	sp = tr.Start("dataflow")
	a.Flow = dataflow.Analyze(p)
	st := a.Flow.Stats()
	sp.End(obs.M("infeasible_edges", float64(st.Infeasible)))
	return a, nil
}

// Options configures AnalyzeProgramOpts beyond the defaults.
type Options struct {
	// Workers bounds the per-procedure concurrency; ≤ 0 means GOMAXPROCS.
	Workers int

	// CheckProc, when non-nil, is invoked with every successfully analyzed
	// procedure from the same worker that analyzed it, so static checkers
	// ride the analysis pool for free. It must be safe for concurrent use;
	// a non-nil return aborts the whole analysis with that error.
	CheckProc func(*Proc) error

	// Trace, when non-nil, receives per-phase spans (interval, ecfg, cdg,
	// fcdg, check) plus an "analyze" summary span carrying the worker count
	// and pool utilization. Phases of concurrent procedures aggregate.
	Trace *obs.Trace

	// Prebuilt supplies already-derived analyses (the artifact cache's warm
	// half, decoded against the same lowered procedures). Named procedures
	// skip the derivation phases entirely; CheckProc still runs on them, so
	// static diagnostics are identical on warm and cold loads.
	Prebuilt map[string]*Proc
}

// AnalyzeProgram analyzes every procedure with GOMAXPROCS workers and
// computes the bottom-up call order.
func AnalyzeProgram(res *lower.Result) (*Program, error) {
	return AnalyzeProgramOpts(res, Options{})
}

// AnalyzeProgramWorkers is AnalyzeProgram with an explicit worker bound
// (≤ 0 means GOMAXPROCS).
func AnalyzeProgramWorkers(res *lower.Result, workers int) (*Program, error) {
	return AnalyzeProgramOpts(res, Options{Workers: workers})
}

// AnalyzeProgramOpts is the general entry point. Each procedure's graphs
// are private, so workers share nothing; the output is identical for every
// worker count, and on error the failure of the alphabetically first
// failing procedure is reported, as in a sequential run.
func AnalyzeProgramOpts(res *lower.Result, opts Options) (*Program, error) {
	prog := &Program{Res: res, Procs: make(map[string]*Proc, len(res.Procs))}
	names := make([]string, 0, len(res.Procs))
	for name := range res.Procs {
		names = append(names, name)
	}
	sort.Strings(names)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	procs := make([]*Proc, len(names))
	errs := make([]error, len(names))
	overall := opts.Trace.Start("analyze")
	poolStart := time.Now()
	var busyNanos atomic.Int64
	analyzeAt := func(i int) {
		t0 := time.Now()
		if pre := opts.Prebuilt[names[i]]; pre != nil {
			procs[i] = pre
		} else {
			procs[i], errs[i] = analyzeProcTraced(res.Procs[names[i]], opts.Trace)
		}
		if errs[i] == nil && opts.CheckProc != nil {
			sp := opts.Trace.Start("check")
			errs[i] = opts.CheckProc(procs[i])
			sp.End()
		}
		busyNanos.Add(int64(time.Since(t0)))
	}
	if workers <= 1 {
		for i := range names {
			analyzeAt(i)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					analyzeAt(i)
				}
			}()
		}
		for i := range names {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	overall.End(obs.M("procs", float64(len(names))))
	if opts.Trace != nil && workers > 0 {
		if elapsed := time.Since(poolStart); elapsed > 0 {
			opts.Trace.SetMetric("analyze", "workers", float64(workers))
			opts.Trace.SetMetric("analyze", "utilization",
				float64(busyNanos.Load())/(float64(elapsed)*float64(workers)))
		}
	}
	for i, name := range names {
		if errs[i] != nil {
			return nil, errs[i]
		}
		prog.Procs[name] = procs[i]
	}
	prog.BottomUp = bottomUpSCCs(names, res.CallGraph)
	return prog, nil
}

// IsRecursive reports whether the named procedure participates in a call
// cycle (including direct self-recursion).
func (p *Program) IsRecursive(name string) bool {
	for _, comp := range p.BottomUp {
		if len(comp) > 1 {
			for _, m := range comp {
				if m == name {
					return true
				}
			}
			continue
		}
		if comp[0] != name {
			continue
		}
		for _, callee := range p.Res.CallGraph[name] {
			if callee == name {
				return true
			}
		}
	}
	return false
}

// bottomUpSCCs runs Tarjan's SCC algorithm on the call graph and returns
// the components in reverse topological order (callees before callers).
// The DFS carries an explicit stack so call chains of arbitrary depth
// (generated programs, deep library layering) cannot overflow the
// goroutine stack.
func bottomUpSCCs(names []string, calls map[string][]string) [][]string {
	index := make(map[string]int)
	lowlink := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	counter := 0

	type frame struct {
		v    string
		next int // index into calls[v]
	}
	var frames []frame
	push := func(v string) {
		counter++
		index[v] = counter
		lowlink[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		frames = append(frames, frame{v: v})
	}
	for _, root := range names {
		if _, seen := index[root]; seen {
			continue
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(calls[f.v]) {
				w := calls[f.v][f.next]
				f.next++
				if _, seen := index[w]; !seen {
					push(w)
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			// f.v's subtree is complete: emit its component if it is a
			// root, then propagate its lowlink to the DFS parent.
			if lowlink[f.v] == index[f.v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				sort.Strings(comp)
				comps = append(comps, comp)
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if lowlink[v] < lowlink[parent.v] {
					lowlink[parent.v] = lowlink[v]
				}
			}
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation — exactly the bottom-up order we need (a component is
	// emitted only after everything it calls).
	return comps
}
