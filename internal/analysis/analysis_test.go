package analysis

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/dfst"
	"repro/internal/interval"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/paperex"
)

func TestPaperExamplePipeline(t *testing.T) {
	a, err := AnalyzeProc(&lower.Proc{G: paperex.CFG()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Intervals == nil || a.Ext == nil || a.CDG == nil || a.FCDG == nil {
		t.Fatal("incomplete analysis")
	}
	if len(a.FCDG.Topo()) == 0 {
		t.Fatal("FCDG has no topological order")
	}
}

func TestBottomUpOrder(t *testing.T) {
	src := `      PROGRAM MAINP
      CALL A
      END

      SUBROUTINE A
      CALL B
      CALL C
      RETURN
      END

      SUBROUTINE B
      CALL C
      RETURN
      END

      SUBROUTINE C
      RETURN
      END
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := AnalyzeProgram(res)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, comp := range ap.BottomUp {
		if len(comp) != 1 {
			t.Fatalf("unexpected SCC %v", comp)
		}
		pos[comp[0]] = i
	}
	// Callees before callers.
	if !(pos["C"] < pos["B"] && pos["B"] < pos["A"] && pos["A"] < pos["MAINP"]) {
		t.Errorf("bottom-up order wrong: %v", ap.BottomUp)
	}
	for _, name := range []string{"MAINP", "A", "B", "C"} {
		if ap.IsRecursive(name) {
			t.Errorf("%s flagged recursive", name)
		}
	}
}

func TestRecursiveComponents(t *testing.T) {
	src := `      PROGRAM MAINP
      CALL A
      CALL S
      END

      SUBROUTINE A
      CALL B
      RETURN
      END

      SUBROUTINE B
      CALL A
      RETURN
      END

      SUBROUTINE S
      CALL S
      RETURN
      END
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := AnalyzeProgram(res)
	if err != nil {
		t.Fatal(err)
	}
	var mutual []string
	for _, comp := range ap.BottomUp {
		if len(comp) > 1 {
			mutual = comp
		}
	}
	if len(mutual) != 2 || mutual[0] != "A" || mutual[1] != "B" {
		t.Errorf("mutual component = %v, want [A B]", mutual)
	}
	for _, name := range []string{"A", "B", "S"} {
		if !ap.IsRecursive(name) {
			t.Errorf("%s not flagged recursive", name)
		}
	}
	if ap.IsRecursive("MAINP") {
		t.Error("MAINP flagged recursive")
	}
}

// randomReducibleCFG builds a random structured CFG: a sequence of diamond
// and while-loop gadgets, guaranteed reducible by construction.
func randomReducibleCFG(seed uint64, gadgets int) *cfg.Graph {
	g := cfg.New("random")
	rng := seed*2862933555777941757 + 3037000493
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 11) % uint64(n))
	}
	cur := g.AddNode(cfg.Other, "entry").ID
	for i := 0; i < gadgets; i++ {
		switch next(3) {
		case 0: // straight line
			n := g.AddNode(cfg.Other, "s").ID
			g.MustAddEdge(cur, n, cfg.Uncond)
			cur = n
		case 1: // diamond
			c := g.AddNode(cfg.Other, "if").ID
			a := g.AddNode(cfg.Other, "a").ID
			b := g.AddNode(cfg.Other, "b").ID
			j := g.AddNode(cfg.Other, "join").ID
			g.MustAddEdge(cur, c, cfg.Uncond)
			g.MustAddEdge(c, a, cfg.True)
			g.MustAddEdge(c, b, cfg.False)
			g.MustAddEdge(a, j, cfg.Uncond)
			g.MustAddEdge(b, j, cfg.Uncond)
			cur = j
		default: // while loop (possibly nested body)
			h := g.AddNode(cfg.Other, "hdr").ID
			body := g.AddNode(cfg.Other, "body").ID
			exit := g.AddNode(cfg.Other, "exit").ID
			g.MustAddEdge(cur, h, cfg.Uncond)
			g.MustAddEdge(h, body, cfg.True)
			g.MustAddEdge(h, exit, cfg.False)
			g.MustAddEdge(body, h, cfg.Uncond)
			cur = exit
		}
	}
	end := g.AddNode(cfg.Other, "end").ID
	g.MustAddEdge(cur, end, cfg.Uncond)
	g.Entry, g.Exit = 1, end
	return g
}

// TestRandomGraphPipelineProperties: for random reducible CFGs the pipeline
// must succeed and the FCDG must be a rooted DAG covering every node except
// STOP, with interval nesting forming a forest.
func TestRandomGraphPipelineProperties(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		size := 1 + int(sizeRaw%20)
		g := randomReducibleCFG(seed, size)
		if !dfst.Reducible(g) {
			t.Logf("seed %d: generator produced irreducible graph", seed)
			return false
		}
		a, err := AnalyzeProc(&lower.Proc{G: g})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Every node except STOP reachable in FCDG from START.
		reach := map[cfg.NodeID]bool{a.FCDG.Root: true}
		var walk func(n cfg.NodeID)
		walk = func(n cfg.NodeID) {
			for _, e := range a.FCDG.OutEdges(n) {
				if !reach[e.To] {
					reach[e.To] = true
					walk(e.To)
				}
			}
		}
		walk(a.FCDG.Root)
		for id := cfg.NodeID(1); id <= a.Ext.G.MaxID(); id++ {
			if id == a.Ext.Stop {
				continue
			}
			if !reach[id] {
				t.Logf("seed %d: node %d unreachable in FCDG", seed, id)
				return false
			}
		}
		// Interval nesting is a forest: every header's parent chain ends
		// at None without cycles.
		for _, h := range a.Intervals.Headers() {
			seen := map[cfg.NodeID]bool{}
			for p := h; p != cfg.None; p = a.Intervals.Parent(p) {
				if seen[p] {
					t.Logf("seed %d: parent cycle at %d", seed, p)
					return false
				}
				seen[p] = true
			}
		}
		// Topo order is consistent (already verified by construction, but
		// double-check length: every node with FCDG presence is ordered).
		return len(a.FCDG.Topo()) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestAnalyzeProcIrreducibleTypedError hands the pipeline a hand-built
// procedure whose CFG is irreducible — possible only by bypassing lower,
// which node-splits such graphs. The analysis must surface the typed
// interval error through its %w chain rather than panicking downstream.
func TestAnalyzeProcIrreducibleTypedError(t *testing.T) {
	g := cfg.New("IRR")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.True)
	g.MustAddEdge(1, 3, cfg.False)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 2, cfg.True)
	g.MustAddEdge(3, 4, cfg.False)
	g.Entry, g.Exit = 1, 4

	a, err := AnalyzeProc(&lower.Proc{G: g})
	if err == nil {
		t.Fatalf("AnalyzeProc accepted an irreducible CFG: %+v", a)
	}
	var irr *interval.ErrIrreducible
	if !errors.As(err, &irr) {
		t.Fatalf("AnalyzeProc = %v, want wrapped *interval.ErrIrreducible", err)
	}
}
