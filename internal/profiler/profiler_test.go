package profiler

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/cost"
	"repro/internal/ecfg"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/livermore"
	"repro/internal/lower"
	"repro/internal/paperex"
)

// pipeline parses, lowers, analyzes and runs a source program.
func pipeline(t *testing.T, src string, seed uint64) (*analysis.Program, *interp.Result) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := analysis.AnalyzeProgram(res)
	if err != nil {
		t.Fatal(err)
	}
	run, err := interp.Run(res, interp.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ap, run
}

// checkRecovery asserts that the smart plan of every procedure recovers the
// exact ground-truth totals, and returns the main proc's plan.
func checkRecovery(t *testing.T, ap *analysis.Program, run *interp.Result) map[string]*Plan {
	t.Helper()
	plans := map[string]*Plan{}
	for name, a := range ap.Procs {
		plan, err := PlanSmart(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plans[name] = plan
		got, err := plan.Recover(plan.SimulateReadings(run))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := ExactTotals(a, run)
		for c, w := range want {
			if g := got[c]; math.Abs(g-w) > 1e-9 {
				t.Errorf("%s: recovered TOTAL%v = %g, want %g", name, c, g, w)
			}
		}
		if len(got) != len(want) {
			t.Errorf("%s: recovered %d conditions, want %d", name, len(got), len(want))
		}
	}
	return plans
}

func TestPaperExampleRecovery(t *testing.T) {
	ap, run := pipeline(t, paperex.Source, 1)
	plans := checkRecovery(t, ap, run)

	// The paper's profile: IF labelled 10 executes 10 times; the loop
	// exits via IF (N.LT.0); CALL FOO executes 9 times.
	a := ap.Procs["EXMPL"]
	totals := ExactTotals(a, run)
	ph := a.Ext.Preheader[a.Intervals.Headers()[0]]
	if got := totals[cdg.Condition{Node: ph, Label: ecfg.LoopBodyLabel}]; got != 10 {
		t.Errorf("loop TOTAL = %g, want 10 (header executions)", got)
	}
	if got := run.ByProc["FOO"].Activations; got != 9 {
		t.Errorf("FOO activations = %d, want 9", got)
	}

	// Smart must use strictly fewer counters than naive.
	smart := plans["EXMPL"]
	naive := PlanNaive(a)
	if smart.NumCounters() >= naive.NumCounters()+1 {
		t.Errorf("smart counters = %d, naive = %d", smart.NumCounters(), naive.NumCounters())
	}
	// Dynamic overhead: smart strictly cheaper.
	m := cost.Optimized
	so := smart.MeasureOverhead(run, m)
	no := naive.MeasureOverhead(run, m)
	if so.Cost >= no.Cost {
		t.Errorf("smart overhead %g >= naive overhead %g", so.Cost, no.Cost)
	}
	t.Logf("EXMPL: smart %d counters / %d incr, naive %d counters / %d incr",
		smart.NumCounters(), so.Increments, naive.NumCounters(), no.Increments)
}

func TestPaperExampleFrequencies(t *testing.T) {
	ap, run := pipeline(t, paperex.Source, 1)
	a := ap.Procs["EXMPL"]
	plan, err := PlanSmart(a)
	if err != nil {
		t.Fatal(err)
	}
	totals, err := plan.Recover(plan.SimulateReadings(run))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := freq.Compute(a.FCDG, totals)
	if err != nil {
		t.Fatal(err)
	}
	h := a.Intervals.Headers()[0]
	ph := a.Ext.Preheader[h]
	cases := []struct {
		c    cdg.Condition
		want float64
	}{
		{cdg.Condition{Node: ph, Label: ecfg.LoopBodyLabel}, 10}, // loop frequency
		{cdg.Condition{Node: h, Label: cfg.True}, 1.0},           // M.GE.0 always true
		{cdg.Condition{Node: h, Label: cfg.False}, 0.0},          // ELSE arm never
		{cdg.Condition{Node: h + 1, Label: cfg.True}, 0.1},       // exit on 10th test
		{cdg.Condition{Node: h + 1, Label: cfg.False}, 0.9},      // continue 9 of 10
		{cdg.Condition{Node: ph, Label: cfg.PseudoLoop}, 0},      // pseudo: never
		{cdg.Condition{Node: a.Ext.Start, Label: cfg.Uncond}, 1}, // one invocation
	}
	for _, c := range cases {
		if got := tab.Freq.At(c.c); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("FREQ%v = %g, want %g", c.c, got, c.want)
		}
	}
	// NODE_FREQ spot checks: CALL node executes 9 times per invocation.
	callNode := cfg.NodeID(0)
	for id, s := range a.P.Stmt {
		if _, ok := s.(*lang.CallStmt); ok {
			callNode = id
		}
	}
	if callNode == cfg.None {
		t.Fatal("no CALL node found")
	}
	if got := tab.NodeFreq[callNode]; math.Abs(got-9) > 1e-12 {
		t.Errorf("NODE_FREQ(CALL) = %g, want 9", got)
	}
}

const doProgram = `      PROGRAM DOS
      INTEGER I, J, N, S
      PARAMETER (N = 10)
      S = 0
      DO 10 I = 1, N
         DO 20 J = 1, I
            S = S + J
   20    CONTINUE
   10 CONTINUE
      DO 30 I = 1, 7
         S = S - 1
   30 CONTINUE
      PRINT *, S
      END
`

func TestDoLoopOptimization(t *testing.T) {
	ap, run := pipeline(t, doProgram, 1)
	checkRecovery(t, ap, run)
	a := ap.Procs["DOS"]
	plan, err := PlanSmart(a)
	if err != nil {
		t.Fatal(err)
	}
	// The outer DO (constant trip 10) and the third DO (constant trip 7)
	// need no counters at all; the inner triangular loop needs one
	// TripAdd. Expected counters: (START,U) and the TripAdd.
	var trips, conds int
	for _, c := range plan.Counters {
		switch c.Kind {
		case TripAdd:
			trips++
		case CondCounter:
			conds++
		}
	}
	if trips != 1 {
		t.Errorf("TripAdd counters = %d, want 1 (inner triangular loop); plan: %v", trips, plan.Counters)
	}
	if conds > 1 {
		t.Errorf("condition counters = %d, want at most 1 (the run counter); plan: %v", conds, plan.Counters)
	}

	// Overhead comparison against naive on the same run.
	so := plan.MeasureOverhead(run, cost.Optimized)
	no := PlanNaive(a).MeasureOverhead(run, cost.Optimized)
	if so.Cost >= no.Cost {
		t.Errorf("smart overhead %g >= naive %g", so.Cost, no.Cost)
	}
	t.Logf("DOS: smart cost %g (%d incr, %d adds), naive cost %g", so.Cost, so.Increments, so.TripAdds, no.Cost)
}

const exitLoopProgram = `      PROGRAM EXITL
      INTEGER I, S
      S = 0
      DO 10 I = 1, 100
         S = S + I
         IF (S .GT. 50) GOTO 20
   10 CONTINUE
   20 CONTINUE
      PRINT *, S
      END
`

func TestDoLoopWithExitNotHoisted(t *testing.T) {
	ap, run := pipeline(t, exitLoopProgram, 1)
	checkRecovery(t, ap, run)
	a := ap.Procs["EXITL"]
	plan, err := PlanSmart(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.Counters {
		if c.Kind == TripAdd {
			t.Errorf("DO loop with an exit must not get the trip-count optimization: %v", plan.Counters)
		}
	}
}

const unstructuredProgram = `      PROGRAM SPAG
      INTEGER I, K
      I = 0
      K = 0
   10 I = I + 1
      IF (I .GT. 20) GOTO 40
      IF (MOD(I, 3) .EQ. 0) GOTO 30
      K = K + 1
      GOTO 10
   30 K = K + 2
      GOTO 10
   40 CONTINUE
      PRINT *, K
      END
`

func TestUnstructuredRecovery(t *testing.T) {
	ap, run := pipeline(t, unstructuredProgram, 1)
	checkRecovery(t, ap, run)
}

const arithIfProgram = `      PROGRAM ARIF
      INTEGER I, N, A, B, C
      A = 0
      B = 0
      C = 0
      DO 10 I = 1, 30
         N = MOD(I, 3) - 1
         IF (N) 1, 2, 3
    1    A = A + 1
         GOTO 10
    2    B = B + 1
         GOTO 10
    3    C = C + 1
   10 CONTINUE
      PRINT *, A, B, C
      END
`

func TestArithIfRecovery(t *testing.T) {
	ap, run := pipeline(t, arithIfProgram, 1)
	checkRecovery(t, ap, run)
}

const computedGotoProgram = `      PROGRAM CGO
      INTEGER I, K, S
      S = 0
      DO 10 I = 1, 24
         K = MOD(I, 5)
         GOTO (1, 2, 3), K
         S = S + 100
         GOTO 10
    1    S = S + 1
         GOTO 10
    2    S = S + 2
         GOTO 10
    3    S = S + 3
   10 CONTINUE
      PRINT *, S
      END
`

func TestComputedGotoRecovery(t *testing.T) {
	ap, run := pipeline(t, computedGotoProgram, 1)
	checkRecovery(t, ap, run)
}

const randomBranchProgram = `      PROGRAM RNDB
      INTEGER I, A, B
      REAL X
      A = 0
      B = 0
      DO 10 I = 1, 200
         X = RAND()
         IF (X .LT. 0.3) THEN
            A = A + 1
         ELSE IF (X .LT. 0.7) THEN
            B = B + 1
         ELSE
            A = A + 2
            B = B - 1
         ENDIF
   10 CONTINUE
      PRINT *, A, B
      END
`

func TestRandomBranchesRecoveryAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ap, run := pipeline(t, randomBranchProgram, seed)
		checkRecovery(t, ap, run)
	}
}

func TestMultiRunAccumulation(t *testing.T) {
	// Totals accumulated over several runs must equal the sum of per-run
	// exact totals (the program-database property).
	progAST, err := lang.Parse(randomBranchProgram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(progAST)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := analysis.AnalyzeProgram(res)
	if err != nil {
		t.Fatal(err)
	}
	a := ap.Procs["RNDB"]
	plan, err := PlanSmart(a)
	if err != nil {
		t.Fatal(err)
	}
	acc := make(Readings, len(plan.Counters))
	want := make(freq.Totals)
	for seed := uint64(1); seed <= 3; seed++ {
		run, err := interp.Run(res, interp.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(plan.SimulateReadings(run))
		want.Add(ExactTotals(a, run))
	}
	got, err := plan.Recover(acc)
	if err != nil {
		t.Fatal(err)
	}
	for c, w := range want {
		if math.Abs(got[c]-w) > 1e-9 {
			t.Errorf("accumulated TOTAL%v = %g, want %g", c, got[c], w)
		}
	}
	// And the frequency table sees 3 invocations.
	tab, err := freq.Compute(a.FCDG, got)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Runs != 3 {
		t.Errorf("Runs = %g, want 3", tab.Runs)
	}
}

func TestBlockLeaders(t *testing.T) {
	g := cfg.New("t")
	for i := 0; i < 5; i++ {
		g.AddNode(cfg.Other, "n")
	}
	// 1 -> 2 -> 3(T/F) -> {4, 5}, 4 -> 5
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 4, cfg.True)
	g.MustAddEdge(3, 5, cfg.False)
	g.MustAddEdge(4, 5, cfg.Uncond)
	g.Entry, g.Exit = 1, 5
	leaders := BlockLeaders(g)
	want := []cfg.NodeID{1, 4, 5}
	if len(leaders) != len(want) {
		t.Fatalf("leaders = %v, want %v", leaders, want)
	}
	for i := range want {
		if leaders[i] != want[i] {
			t.Fatalf("leaders = %v, want %v", leaders, want)
		}
	}
}

func TestVarianceRun(t *testing.T) {
	// A loop whose per-entry trip counts differ: outer entries see inner
	// trips 1..5, variance of {2,3,4,5,6} header executions = 2.
	src := `      PROGRAM VARP
      INTEGER I, J, S
      S = 0
      DO 10 I = 1, 5
         DO 20 J = 1, I
            S = S + 1
   20    CONTINUE
   10 CONTINUE
      PRINT *, S
      END
`
	progAST, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(progAST)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := analysis.AnalyzeProgram(res)
	if err != nil {
		t.Fatal(err)
	}
	vars, err := VarianceRun(ap, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := ap.Procs["VARP"]
	// Find the inner loop header (depth 2).
	var inner cfg.NodeID
	for _, h := range a.Intervals.Headers() {
		if a.Intervals.Depth(h) == 2 {
			inner = h
		}
	}
	if inner == cfg.None {
		t.Fatal("no inner loop found")
	}
	c := cdg.Condition{Node: a.Ext.Preheader[inner], Label: ecfg.LoopBodyLabel}
	// Per-entry header executions: trips+1 = {2,3,4,5,6}; VAR = 2.
	if got := vars["VARP"][c]; math.Abs(got-2) > 1e-9 {
		t.Errorf("VAR(FREQ(inner)) = %g, want 2", got)
	}
}

// TestLevelMonotonicity: each added optimization can only reduce (or keep)
// both the static counter count and the dynamic update count, on every
// Livermore kernel.
func TestLevelMonotonicity(t *testing.T) {
	for k := 1; k <= livermore.Kernels; k++ {
		ap, run := pipeline(t, livermore.KernelSource(k, 40), 5)
		for name, a := range ap.Procs {
			var prevCounters int
			var prevOps int64
			for i, lv := range []Level{LevelConditions, LevelBranches, LevelFull} {
				plan, err := PlanLevel(a, lv)
				if err != nil {
					t.Fatalf("kernel %d %s level %d: %v", k, name, lv, err)
				}
				o := plan.MeasureOverhead(run, cost.Optimized)
				ops := o.Increments + o.TripAdds
				if i > 0 {
					if plan.NumCounters() > prevCounters {
						t.Errorf("kernel %d %s: level %d counters %d > previous %d",
							k, name, lv, plan.NumCounters(), prevCounters)
					}
					if ops > prevOps {
						t.Errorf("kernel %d %s: level %d ops %d > previous %d",
							k, name, lv, ops, prevOps)
					}
				}
				prevCounters, prevOps = plan.NumCounters(), ops
				// Every level must stay lossless.
				got, err := plan.Recover(plan.SimulateReadings(run))
				if err != nil {
					t.Fatalf("kernel %d %s level %d: %v", k, name, lv, err)
				}
				for c, w := range ExactTotals(a, run) {
					if got[c] != w {
						t.Fatalf("kernel %d %s level %d: TOTAL%v = %g, want %g", k, name, lv, c, got[c], w)
					}
				}
			}
		}
	}
}
