package profiler

import (
	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/freq"
	"repro/internal/interp"
)

// A run that ends in STOP freezes a stack of activations mid-flight: the
// stopping frame at its STOP node and every suspended caller at its CALL
// node. The raw counter readings of such a run are still exact takings —
// counters increment when a branch is taken — but two ingredients of the
// recovery fixpoint silently assume the run completed:
//
//  1. The DO trip rules (doConstTrip, doAddTrip) convert loop entries into
//     body/exit takings as if every entry ran its full trip count. An entry
//     frozen mid-loop took the body edge only (trip − remaining + 1) times
//     and never took the exit edge.
//
//  2. The node-execution derivation exec(u) = Σ in-condition takings
//     assumes a taken in-condition implies u executed. A frame frozen at s
//     had already taken the in-conditions of every node it was committed
//     to downstream of s, without reaching them.
//
// stopAdjust carries the per-procedure corrections for both, computed from
// interp.Result.StopFrames. A real instrumented binary obtains the same
// record in its STOP handler — the frozen call chain plus each frame's
// live DO registers — so this stays within the paper's counter model: no
// extra runtime instrumentation, only a dump-time stack walk.
type stopAdjust struct {
	// pending[u] counts the frozen frames that had taken one of u's
	// in-conditions without reaching u; subtracted from derived exec(u).
	pending map[cfg.NodeID]float64
	// inflight[test] counts the frames frozen inside the DO loop with that
	// test node (live register > 0); remaining[test] sums those frames'
	// remaining-trip registers, in-flight iteration included.
	inflight  map[cfg.NodeID]float64
	remaining map[cfg.NodeID]float64
}

// RecoverRun reconstructs TOTAL_FREQ for every control condition of the
// procedure from one run's simulated counter readings, exactly: unlike
// Recover on raw readings, it consults the run's StopFrames so totals on
// STOP-terminated runs equal actual takings instead of the trip rules'
// run-to-completion upper bound.
func (p *Plan) RecoverRun(run *interp.Result) (freq.Totals, error) {
	return p.recoverWith(p.SimulateReadings(run), p.stopCorrections(run))
}

// stopCorrections derives the stopAdjust of this procedure from a run's
// stop record; nil when no frame of this procedure froze.
func (p *Plan) stopCorrections(run *interp.Result) *stopAdjust {
	name := p.A.P.G.Name
	ext := p.A.Ext
	iv := ext.Intervals
	var adj *stopAdjust
	var pdom *dom.Tree
	for _, sf := range run.StopFrames {
		if sf.Proc != name {
			continue
		}
		if adj == nil {
			adj = &stopAdjust{
				pending:   make(map[cfg.NodeID]float64),
				inflight:  make(map[cfg.NodeID]float64),
				remaining: make(map[cfg.NodeID]float64),
			}
			// Postdominance on the extended graph: pseudo edges make loop
			// bodies skippable, so u pdom s says "committed at s" only for
			// nodes in s's own iteration scope, never for bodies of loops
			// not yet entered.
			pdom = dom.PostDominators(ext.G)
		}
		for _, tr := range sf.Trips {
			adj.inflight[tr.Test]++
			adj.remaining[tr.Test] += float64(tr.Remaining)
		}
		for u := cfg.NodeID(1); u <= ext.G.MaxID(); u++ {
			if u == sf.Node || u == ext.Stop || ext.G.Node(u) == nil {
				continue
			}
			if !pdom.StrictlyDominates(u, sf.Node) {
				continue
			}
			// Loop-condition totals count header arrivals, and the trip
			// rules already cap exit takings of in-flight loops: headers
			// and postexits of loops enclosing s carry no pending arrival.
			if iv.IsHeader(u) && iv.Contains(u, sf.Node) {
				continue
			}
			if h, ok := ext.ExitedInterval[u]; ok && iv.Contains(h, sf.Node) {
				continue
			}
			adj.pending[u]++
		}
	}
	return adj
}
