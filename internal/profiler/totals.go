package profiler

import (
	"repro/internal/analysis"
	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/cost"
	"repro/internal/ecfg"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/lower"
)

// ExactTotals extracts the ground-truth TOTAL_FREQ of every FCDG control
// condition of procedure a from an (uninstrumented) run — what a perfect
// profiler would report. It validates counter recovery in tests and serves
// as the reference profile.
//
// The mapping from run counts to conditions: (START,U) is the number of
// procedure activations; a preheader's loop condition is the header node's
// execution count (Definition 3: header executions per interval
// execution); every original-node condition (u,l) is the number of times
// the branch labelled l left u; pseudo conditions are zero.
func ExactTotals(a *analysis.Proc, run *interp.Result) freq.Totals {
	totals := make(freq.Totals)
	counts := run.ByProc[a.P.G.Name]
	for _, c := range a.FCDG.Conditions() {
		switch {
		case c.Label.IsPseudo():
			totals[c] = 0
		case c.Node == a.Ext.Start:
			totals[c] = float64(counts.Activations)
		case a.Ext.G.Node(c.Node).Type == cfg.Preheader:
			h := a.Ext.HeaderOf[c.Node]
			totals[c] = float64(run.NodeCount(a.P, h))
		default:
			totals[c] = float64(run.LabelCount(a.P, c.Node, c.Label))
		}
	}
	return totals
}

// SimulateReadings produces the values the plan's counters would hold after
// the given run, extracted from the run's exact counts. This is equivalent
// to compiling the counters in: a CondCounter increments exactly when its
// condition's branch is taken, a BlockCounter when its block executes, and
// a TripAdd adds each computed trip count (= the number of times the test's
// T edge is taken). On a STOP-terminated run the TripAdd value models the
// instrumented binary's dump-time correction — the STOP handler subtracts
// each live DO register's remainder from its counter, leaving exactly the
// body takings that actually happened.
func (p *Plan) SimulateReadings(run *interp.Result) Readings {
	out := make(Readings, len(p.Counters))
	for i, c := range p.Counters {
		out[i] = p.counterValue(c, run)
	}
	return out
}

func (p *Plan) counterValue(c Counter, run *interp.Result) float64 {
	a := p.A
	switch c.Kind {
	case BlockCounter:
		return float64(run.NodeCount(a.P, c.Node))
	case TripAdd:
		// Sum of trip counts = number of body entries = takings of the
		// test's T edge.
		for i := range p.rules {
			if p.rules[i].kind == doAddTrip && p.doInitNode(p.rules[i].node) == c.Node {
				return float64(run.LabelCount(a.P, p.rules[i].node, cfg.True))
			}
		}
		// Naive plans have no rules; find the test via the init node.
		if op, ok := initTest(a, c.Node); ok {
			return float64(run.LabelCount(a.P, op, cfg.True))
		}
		return 0
	default:
		cond := c.Cond
		switch {
		case cond.Node == a.Ext.Start:
			return float64(run.ByProc[a.P.G.Name].Activations)
		case a.Ext.G.Node(cond.Node).Type == cfg.Preheader:
			return float64(run.NodeCount(a.P, a.Ext.HeaderOf[cond.Node]))
		default:
			return float64(run.LabelCount(a.P, cond.Node, cond.Label))
		}
	}
}

func initTest(a *analysis.Proc, initNode cfg.NodeID) (cfg.NodeID, bool) {
	for _, e := range a.P.G.OutEdges(initNode) {
		return e.To, true // DoInit has exactly one successor: its test
	}
	return cfg.None, false
}

// Overhead summarizes the dynamic cost an instrumented run would add.
type Overhead struct {
	// Increments is the number of counter-increment operations executed.
	Increments int64
	// TripAdds is the number of add-trip-count operations executed.
	TripAdds int64
	// Cost is the total overhead under the given cost model.
	Cost float64
}

// MeasureOverhead computes the instrumentation overhead of the plan over a
// run, under cost model m.
func (p *Plan) MeasureOverhead(run *interp.Result, m cost.Model) Overhead {
	var o Overhead
	for _, c := range p.Counters {
		v := int64(p.counterEvents(c, run))
		if c.Kind == TripAdd {
			o.TripAdds += v
		} else {
			o.Increments += v
		}
	}
	o.Cost = float64(o.Increments)*m.CounterUpdate + float64(o.TripAdds)*m.CounterAdd
	return o
}

// counterEvents is the number of update operations a counter performs
// during the run (for TripAdd that is one add per loop entry, not the
// summed value).
func (p *Plan) counterEvents(c Counter, run *interp.Result) float64 {
	if c.Kind == TripAdd {
		return float64(run.NodeCount(p.A.P, c.Node)) // one add per DoInit execution
	}
	return p.counterValue(c, run)
}

// ProgramProfile profiles a whole program: per-procedure totals keyed by
// unit name.
type ProgramProfile map[string]freq.Totals

// Plans holds one smart counter placement per procedure. A placement
// depends only on the analysis, so one Plans value serves every run of
// the same program; profiling with it is read-only and safe to share
// across concurrent runs.
type Plans map[string]*Plan

// BuildPlans computes the flow-aware smart placement of every procedure
// once (PlanFlow: the smart scheme plus dataflow-derived counter drops).
func BuildPlans(prog *analysis.Program) (Plans, error) {
	out := make(Plans, len(prog.Procs))
	for name, a := range prog.Procs {
		plan, err := PlanFlow(a)
		if err != nil {
			return nil, err
		}
		out[name] = plan
	}
	return out, nil
}

// Profile recovers full per-procedure totals from the simulated counter
// readings of one run. The run must come from the same lowered program
// the plans were built for. STOP-terminated runs recover exactly: the
// run's stop record caps in-flight loops at their observed partial trips.
func (pl Plans) Profile(run *interp.Result) (ProgramProfile, error) {
	out := make(ProgramProfile, len(pl))
	for name, plan := range pl {
		totals, err := plan.RecoverRun(run)
		if err != nil {
			return nil, err
		}
		out[name] = totals
	}
	return out, nil
}

// ProfileProgram runs smart plans over every procedure of an analyzed
// program and recovers full totals from the simulated counter readings.
// The run must come from the same lowered program. Callers profiling the
// same program repeatedly should BuildPlans once and use Plans.Profile.
func ProfileProgram(prog *analysis.Program, run *interp.Result) (ProgramProfile, error) {
	plans, err := BuildPlans(prog)
	if err != nil {
		return nil, err
	}
	return plans.Profile(run)
}

// LoopVariance extracts, for every loop condition of a procedure, the
// empirical E[F²] second moment of the per-entry iteration count — the
// paper's Section 5 refinement ("the variance term can also be computed by
// obtaining E(FREQ(u,l)²) from execution profile information"). It needs
// per-entry samples, which the simulated profile cannot reconstruct from
// plain counters, so it is collected by a separate instrumented run with an
// OnNode hook; see VarianceProfile in the estimate package tests.
//
// Here we derive it exactly for DO loops whose trip count is constant per
// entry (then E[F²] = (Σtrip)²/entries² ... degenerate) — the general case
// lives in VarianceRun.
func LoopVariance(a *analysis.Proc, perEntryCounts map[cfg.NodeID][]int64) map[cdg.Condition]float64 {
	out := make(map[cdg.Condition]float64)
	for h, samples := range perEntryCounts {
		ph, ok := a.Ext.Preheader[h]
		if !ok || len(samples) == 0 {
			continue
		}
		var sum, sumsq float64
		for _, s := range samples {
			sum += float64(s)
			sumsq += float64(s) * float64(s)
		}
		n := float64(len(samples))
		mean := sum / n
		out[cdg.Condition{Node: ph, Label: ecfg.LoopBodyLabel}] = sumsq/n - mean*mean
	}
	return out
}

// VarianceRun executes the program once more with lightweight
// instrumentation that records, for every loop header, the per-entry
// header-execution counts, and returns VAR(FREQ) per loop condition and
// per procedure. This is the optional extra profile Section 5 case 1
// mentions; it costs one extra counter write per loop entry and exit.
// Recursive procedures are not supported (their activations interleave and
// the per-entry state would mix), matching the paper's scope.
func VarianceRun(prog *analysis.Program, opt interp.Options) (map[string]map[cdg.Condition]float64, error) {
	type loopState struct {
		inEntry map[cfg.NodeID]int64 // header -> count this activation
	}
	// Per proc, per header: samples of header executions per interval
	// entry. We detect entries by watching preheader-level structure:
	// a header execution following a non-body node is a new entry. Rather
	// than tracking predecessors, we track per-activation: when the
	// header's interval is entered (header executes while its remaining
	// count says "not inside"), a new sample opens; when control reaches a
	// node outside the interval, open samples for that interval close.
	samples := make(map[string]map[cfg.NodeID][]int64)
	open := make(map[string]*loopState)
	for name := range prog.Procs {
		samples[name] = make(map[cfg.NodeID][]int64)
		open[name] = &loopState{inEntry: make(map[cfg.NodeID]int64)}
	}
	prev := opt.OnNode
	opt.OnNode = func(p *lower.Proc, n cfg.NodeID, trip int64) {
		if prev != nil {
			prev(p, n, trip)
		}
		a := prog.Procs[p.G.Name]
		if a == nil {
			return
		}
		st := open[p.G.Name]
		iv := a.Intervals
		// Close any open sample whose interval does not contain n.
		for h, cnt := range st.inEntry {
			if !iv.Contains(h, n) {
				samples[p.G.Name][h] = append(samples[p.G.Name][h], cnt)
				delete(st.inEntry, h)
			}
		}
		if iv.IsHeader(n) {
			st.inEntry[n]++
		}
	}
	if _, err := interp.Run(prog.Res, opt); err != nil {
		return nil, err
	}
	out := make(map[string]map[cdg.Condition]float64, len(prog.Procs))
	for name, a := range prog.Procs {
		// Close samples left open at program end.
		for h, cnt := range open[name].inEntry {
			samples[name][h] = append(samples[name][h], cnt)
		}
		out[name] = LoopVariance(a, samples[name])
	}
	return out, nil
}
