package profiler

import (
	"fmt"

	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/freq"
)

// Readings are the raw values of a plan's counters after one or more
// (simulated) instrumented runs, indexed like Plan.Counters.
type Readings []float64

// Add accumulates another run's readings (the program-database merge).
func (r Readings) Add(other Readings) {
	for i := range r {
		r[i] += other[i]
	}
}

// Recover reconstructs TOTAL_FREQ for every control condition of the
// procedure from the counter readings, applying the plan's inference rules
// to a fixpoint. The result feeds freq.Compute directly.
//
// On readings from a STOP-terminated run the trip rules over-estimate
// in-flight loops (they assume every entered DO completes); use RecoverRun
// when the run itself is available — its stop record makes the recovery
// exact there too.
func (p *Plan) Recover(readings Readings) (freq.Totals, error) {
	return p.recoverWith(readings, nil)
}

func (p *Plan) recoverWith(readings Readings, adj *stopAdjust) (freq.Totals, error) {
	if p.Naive {
		return nil, fmt.Errorf("profiler: naive plans count blocks, not conditions; use ExactTotals for analysis")
	}
	if len(readings) != len(p.Counters) {
		return nil, fmt.Errorf("profiler: %d readings for %d counters", len(readings), len(p.Counters))
	}
	st := newSolveState(p, readings)
	st.adj = adj
	if !st.run(p) {
		missing := st.missingConds(p)
		return nil, fmt.Errorf("profiler: recovery incomplete for %s: unresolved %v", p.A.P.G.Name, missing)
	}
	totals := make(freq.Totals, len(st.cond))
	for c, v := range st.cond {
		totals[c] = v
	}
	// Pseudo conditions are statically zero; add them so downstream passes
	// can look any FCDG condition up.
	for _, c := range p.A.FCDG.Conditions() {
		if c.Label.IsPseudo() {
			totals[c] = 0
		}
	}
	return totals, nil
}

// solvable is the symbolic variant of Recover used during placement: can
// every condition be reconstructed from the counters in `counted` plus the
// rules? Values are irrelevant; only derivability matters.
func (p *Plan) solvable(counted map[cdg.Condition]bool, rules []rule) bool {
	st := &solveState{
		cond: make(map[cdg.Condition]float64),
		exec: make(map[cfg.NodeID]float64),
	}
	for c, on := range counted {
		if on {
			st.cond[c] = 0
		}
	}
	for _, c := range p.A.FCDG.Conditions() {
		if c.Label.IsPseudo() {
			st.cond[c] = 0
		}
	}
	st.tripReadings = map[cfg.NodeID]float64{}
	for i := range rules {
		if rules[i].kind == doAddTrip {
			st.tripReadings[rules[i].node] = 0
		}
	}
	saved := p.rules
	p.rules = rules
	ok := st.run(p)
	p.rules = saved
	return ok
}

// solveState carries the fixpoint's known values.
type solveState struct {
	cond map[cdg.Condition]float64
	exec map[cfg.NodeID]float64
	// tripReadings maps a DO test node to its TripAdd counter reading.
	tripReadings map[cfg.NodeID]float64
	// adj holds the stopped-run corrections (nil for completed runs and
	// for the symbolic solvability check): see stopfix.go.
	adj *stopAdjust
}

// pendingAt is the number of frozen frames whose in-condition takings
// committed to u without reaching it.
func (st *solveState) pendingAt(u cfg.NodeID) float64 {
	if st.adj == nil {
		return 0
	}
	return st.adj.pending[u]
}

func newSolveState(p *Plan, readings Readings) *solveState {
	st := &solveState{
		cond:         make(map[cdg.Condition]float64),
		exec:         make(map[cfg.NodeID]float64),
		tripReadings: make(map[cfg.NodeID]float64),
	}
	for i, c := range p.Counters {
		switch c.Kind {
		case CondCounter:
			st.cond[c.Cond] = readings[i]
		case TripAdd:
			// Index by the test node the DoInit feeds.
			for i2 := range p.rules {
				if p.rules[i2].kind == doAddTrip && p.doInitNode(p.rules[i2].node) == c.Node {
					st.tripReadings[p.rules[i2].node] = readings[i]
				}
			}
		}
	}
	for _, c := range p.A.FCDG.Conditions() {
		if c.Label.IsPseudo() {
			st.cond[c] = 0
		}
	}
	return st
}

// run iterates node-execution derivation and rule application to a
// fixpoint; it reports whether every condition became known.
func (st *solveState) run(p *Plan) bool {
	f := p.A.FCDG
	nodes := f.Nodes()
	for changed := true; changed; {
		changed = false
		// exec(u) = Σ TOTAL over u's FCDG in-edges, once all are known.
		for _, u := range nodes {
			if _, ok := st.exec[u]; ok {
				continue
			}
			if u == f.Root {
				c := cdg.Condition{Node: f.Root, Label: cfg.Uncond}
				if v, ok := st.cond[c]; ok {
					st.exec[u] = v
					changed = true
				}
				continue
			}
			in := f.InEdges(u)
			if len(in) == 0 {
				continue // STOP: never needed
			}
			sum := 0.0
			known := true
			for _, e := range in {
				v, ok := st.cond[cdg.Condition{Node: e.From, Label: e.Label}]
				if !ok {
					known = false
					break
				}
				sum += v
			}
			if known {
				st.exec[u] = sum - st.pendingAt(u)
				changed = true
			}
		}
		// Rules.
		for i := range p.rules {
			if st.applyRule(p, &p.rules[i]) {
				changed = true
			}
		}
	}
	return st.missingConds(p) == nil
}

func (st *solveState) missingConds(p *Plan) []cdg.Condition {
	var missing []cdg.Condition
	for _, c := range p.conds {
		if _, ok := st.cond[c]; !ok {
			missing = append(missing, c)
		}
	}
	return missing
}

// applyRule tries one inference rule; it reports whether new values were
// derived.
func (st *solveState) applyRule(p *Plan, r *rule) bool {
	switch r.kind {
	case branchBalance:
		if _, done := st.cond[r.dropped]; done {
			return false
		}
		ex, ok := st.exec[r.node]
		if !ok {
			return false
		}
		sum := 0.0
		for _, o := range r.others {
			v, ok := st.cond[o]
			if !ok {
				return false
			}
			sum += v
		}
		v := ex - sum
		if v < 0 {
			v = 0 // numerical guard; exact inputs never go negative
		}
		st.cond[r.dropped] = v
		return true

	case loopIdentity:
		if _, done := st.cond[r.dropped]; done {
			return false
		}
		ph := p.A.Ext.Preheader[r.node]
		entries, ok := st.exec[ph]
		if !ok {
			return false
		}
		sum := entries
		for _, be := range r.backEdges {
			t, ok := st.taking(p, be)
			if !ok {
				return false
			}
			sum += t
		}
		st.cond[r.dropped] = sum
		return true

	case staticCond:
		if _, done := st.cond[r.dropped]; done {
			return false
		}
		ex, ok := st.exec[r.node]
		if !ok {
			return false
		}
		st.cond[r.dropped] = r.staticFreq * ex
		return true

	case doConstTrip, doAddTrip:
		loopCond := r.dropped
		if loopCond == (cdg.Condition{}) {
			loopCond = cdg.Condition{Node: p.A.Ext.Preheader[r.node], Label: cfg.Uncond}
		}
		if _, done := st.cond[loopCond]; done {
			return false
		}
		ph := p.A.Ext.Preheader[r.node]
		entries, ok := st.exec[ph]
		if !ok {
			return false
		}
		// Frames frozen inside this DO entered it without (yet) completing:
		// each took the body edge only (trip − remaining + 1) times and
		// never took the exit edge. On completed runs n and sr are zero and
		// the rule reduces to the paper's entries×trip identity.
		var n, sr float64
		if st.adj != nil {
			n = st.adj.inflight[r.node]
			sr = st.adj.remaining[r.node]
		}
		var tripSum float64
		if r.kind == doConstTrip {
			tripSum = entries*float64(r.trip) - sr + n
		} else {
			// The TripAdd reading already reflects actual body takings: the
			// STOP-handler dump subtracts each live register's remainder
			// (see SimulateReadings).
			ts, ok := st.tripReadings[r.node]
			if !ok {
				return false
			}
			tripSum = ts
		}
		st.cond[loopCond] = tripSum + entries - n
		bodyCond := cdg.Condition{Node: r.node, Label: cfg.True}
		if hasCondition(p, bodyCond) {
			st.cond[bodyCond] = tripSum
		}
		exitCond := cdg.Condition{Node: r.node, Label: cfg.False}
		if hasCondition(p, exitCond) {
			st.cond[exitCond] = entries - n
		}
		return true
	}
	return false
}

// taking computes how often the CFG edge be was taken: directly if its
// (from,label) is a known condition, or via exec(from) when the source has
// a single non-pseudo out-label.
func (st *solveState) taking(p *Plan, be cfg.Edge) (float64, bool) {
	c := cdg.Condition{Node: be.From, Label: be.Label}
	if v, ok := st.cond[c]; ok {
		return v, true
	}
	if len(nonPseudoLabels(p.A.Ext.G, be.From)) == 1 {
		v, ok := st.exec[be.From]
		return v, ok
	}
	return 0, false
}

func hasCondition(p *Plan, c cdg.Condition) bool {
	for _, have := range p.conds {
		if have == c {
			return true
		}
	}
	return false
}
