// Package profiler implements the counter-based execution profiling of
// Section 3 of the paper, in both the naive form (one counter per basic
// block) and the optimized "smart" form built on the interval structure and
// the forward control dependence graph:
//
//  1. one counter per control condition of the FCDG, so identically
//     control dependent statements share a counter;
//  2. counter elimination by conservation — for a branch whose labels are
//     all control conditions only n−1 need counters, and a loop's
//     frequency counter can be inferred from its entry and back-edge
//     counts;
//  3. the DO-loop optimization — a counted loop with no exits adds its
//     trip count to the counter once per entry, or needs no counter at all
//     when the trip count is a compile-time constant.
//
// Placement is greedy-with-proof: a counter is eliminated only if a
// symbolic solvability pass confirms that every control condition's
// TOTAL_FREQ can still be reconstructed from the remaining counters; the
// reconstruction itself (Plan.Recover) runs the same fixpoint with numbers.
//
// Instrumented runs are simulated: the interpreter already records the
// exact count of every node and labelled edge, so counter readings are
// extracted from those counts — precisely the values compiled-in counters
// would hold — and the overhead a real instrumented binary would pay is
// charged as (counter increments executed) × the cost model's counter
// price.
package profiler

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/ecfg"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/staticfreq"
)

// CounterKind distinguishes the instrumentation a counter needs.
type CounterKind int

// Counter kinds. CondCounter increments when a control condition (u,l) is
// taken (smart scheme). BlockCounter increments when a basic block executes
// (naive scheme). TripAdd adds a DO loop's just-computed trip count once
// per loop entry (both schemes' DO optimization).
const (
	CondCounter CounterKind = iota
	BlockCounter
	TripAdd
)

// Counter is one counter variable the instrumented program maintains.
type Counter struct {
	Kind CounterKind
	// Cond is the counted control condition (CondCounter).
	Cond cdg.Condition
	// Node is the block leader (BlockCounter) or the DoInit node whose
	// trip count is added (TripAdd).
	Node cfg.NodeID
}

func (c Counter) String() string {
	switch c.Kind {
	case CondCounter:
		return fmt.Sprintf("cond%v", c.Cond)
	case BlockCounter:
		return fmt.Sprintf("block(%d)", c.Node)
	default:
		return fmt.Sprintf("tripadd(%d)", c.Node)
	}
}

// rule is one inference rule the recovery fixpoint may apply.
type rule struct {
	kind ruleKind
	// node is the branch node (branchBalance) or loop header (loop rules).
	node cfg.NodeID
	// dropped is the condition the rule recovers.
	dropped cdg.Condition
	// others are the sibling conditions summed by branchBalance.
	others []cdg.Condition
	// backEdges are the CFG back edges of a loopIdentity.
	backEdges []cfg.Edge
	// trip is the constant trip count (doConst) and counter the TripAdd
	// index (doTrip).
	trip    int64
	counter int
	// staticFreq is the compile-time FREQ of a staticCond rule.
	staticFreq float64
}

type ruleKind int

const (
	branchBalance ruleKind = iota // dropped = exec(node) − Σ others
	loopIdentity                  // (ph,U) = exec(ph) + Σ back-edge takings
	doConstTrip                   // (ph,U), (test,T) from exec(ph) × const trip
	doAddTrip                     // (ph,U), (test,T) from TripAdd reading
	staticCond                    // dropped = staticFreq × exec(node)
)

// Plan is a counter placement for one procedure.
type Plan struct {
	A *analysis.Proc
	// Counters in deterministic order.
	Counters []Counter
	// rules recover the eliminated conditions.
	rules []rule
	// conds caches the non-pseudo FCDG conditions.
	conds []cdg.Condition
	// Naive marks a per-block plan (no condition recovery).
	Naive bool
	// Blocks lists the basic block leaders (naive plans).
	Blocks []cfg.NodeID
	// flowTrips are dataflow-proven constant trip counts per DO-test node,
	// consulted by doLoopRule when syntactic folding of the bounds fails.
	// Only flow-aware placements (PlanFlow) set it.
	flowTrips map[cfg.NodeID]int64
}

// NumCounters returns the number of counter variables the plan maintains.
func (p *Plan) NumCounters() int { return len(p.Counters) }

// --------------------------------------------------------------------------
// Smart placement.

// Level selects which of Section 3's optimizations a placement applies,
// for the ablation study. Each level includes the previous ones;
// LevelConditions alone is optimization 1 (counters per control condition
// instead of per block).
type Level int

// Ablation levels.
const (
	LevelConditions Level = iota // opt 1: one counter per control condition
	LevelBranches                // + opt 2: n−1 branch counters, loop inference
	LevelFull                    // + opt 3: DO-loop trip hoisting
)

// PlanSmart computes the fully optimized counter placement for a
// procedure (all three optimizations).
func PlanSmart(a *analysis.Proc) (*Plan, error) { return PlanLevel(a, LevelFull) }

// PlanLevel computes a placement applying the optimizations up to level.
func PlanLevel(a *analysis.Proc, level Level) (*Plan, error) {
	return planImpl(a, level, nil, nil)
}

// PlanStatic computes the fully optimized placement and additionally drops
// counters for conditions whose FREQ is known at compile time (package
// staticfreq): the paper's complementary program analysis. static maps
// conditions to their compile-time FREQ.
func PlanStatic(a *analysis.Proc, static map[cdg.Condition]float64) (*Plan, error) {
	return planImpl(a, LevelFull, static, nil)
}

// PlanFlow computes the fully optimized placement additionally informed by
// the procedure's dataflow facts (a.Flow): counters for conditions pinned
// to an exact 0/1 frequency by feasibility analysis are dropped, and DO
// loops whose trip count only the constant propagation can fold are priced
// as constant-trip loops (no TripAdd counter). This is the placement
// BuildPlans uses; PlanSmart remains the purely profile-driven baseline.
func PlanFlow(a *analysis.Proc) (*Plan, error) {
	var trips map[cfg.NodeID]int64
	if a.Flow != nil {
		trips = a.Flow.ConstTrips
	}
	return planImpl(a, LevelFull, staticfreq.Exact(a), trips)
}

func planImpl(a *analysis.Proc, level Level, static map[cdg.Condition]float64, flowTrips map[cfg.NodeID]int64) (*Plan, error) {
	p := &Plan{A: a, flowTrips: flowTrips}
	for _, c := range a.FCDG.Conditions() {
		if c.Label.IsPseudo() {
			continue
		}
		p.conds = append(p.conds, c)
	}
	counted := make(map[cdg.Condition]bool, len(p.conds))
	for _, c := range p.conds {
		counted[c] = true
	}
	var trial []rule

	// Pass 0 — compile-time frequencies: a statically known condition's
	// total is FREQ × exec(node), so its counter can go.
	for _, c := range p.conds {
		v, ok := static[c]
		if !ok || !counted[c] {
			continue
		}
		r := rule{kind: staticCond, node: c.Node, dropped: c, staticFreq: v}
		counted[c] = false
		trial = append(p.rules, r)
		if p.solvable(counted, trial) {
			p.rules = trial
		} else {
			counted[c] = true
		}
	}

	// Pass 1 — loops, innermost first (headers sorted by depth descending
	// so inner-loop eliminations are tried before outer ones).
	headers := append([]cfg.NodeID(nil), a.Intervals.Headers()...)
	sort.Slice(headers, func(i, j int) bool {
		di, dj := a.Intervals.Depth(headers[i]), a.Intervals.Depth(headers[j])
		if di != dj {
			return di > dj
		}
		return headers[i] < headers[j]
	})
	for _, h := range headers {
		if level < LevelBranches {
			break
		}
		ph := a.Ext.Preheader[h]
		loopCond := cdg.Condition{Node: ph, Label: ecfg.LoopBodyLabel}
		if !counted[loopCond] {
			continue
		}
		if r, ok := p.doLoopRule(h); ok && level >= LevelFull {
			// DO optimization: drop the loop condition and the body-entry
			// condition together.
			saved := []cdg.Condition{loopCond}
			testCond := cdg.Condition{Node: h, Label: cfg.True}
			if counted[testCond] {
				saved = append(saved, testCond)
			}
			for _, c := range saved {
				counted[c] = false
			}
			trial = append(p.rules, r)
			if p.solvable(counted, trial) {
				p.rules = trial
				continue
			}
			for _, c := range saved {
				counted[c] = true
			}
		}
		// General loop: infer the frequency from entries + back edges.
		r := rule{kind: loopIdentity, node: h, dropped: loopCond,
			backEdges: a.Intervals.BackEdges(h)}
		counted[loopCond] = false
		trial = append(p.rules, r)
		if p.solvable(counted, trial) {
			p.rules = trial
			continue
		}
		counted[loopCond] = true
	}

	// Pass 2 — branch conservation: for each node whose CFG labels are all
	// control conditions, try to drop one (the highest-sorting label).
	byNode := map[cfg.NodeID][]cdg.Condition{}
	for _, c := range p.conds {
		byNode[c.Node] = append(byNode[c.Node], c)
	}
	nodes := make([]cfg.NodeID, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, u := range nodes {
		if level < LevelBranches {
			break
		}
		if a.Ext.IsSynthetic(u) {
			continue // preheaders handled above; START keeps its run counter
		}
		cfgLabels := nonPseudoLabels(a.Ext.G, u)
		if len(cfgLabels) < 2 {
			continue
		}
		condSet := map[cfg.Label]bool{}
		for _, c := range byNode[u] {
			condSet[c.Label] = true
		}
		complete := true
		for _, l := range cfgLabels {
			if !condSet[l] {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		// Try dropping each still-counted label, highest first.
		labels := append([]cdg.Condition(nil), byNode[u]...)
		sort.Slice(labels, func(i, j int) bool { return labels[i].Label > labels[j].Label })
		for _, cand := range labels {
			if !counted[cand] {
				continue
			}
			var others []cdg.Condition
			for _, c := range byNode[u] {
				if c != cand {
					others = append(others, c)
				}
			}
			r := rule{kind: branchBalance, node: u, dropped: cand, others: others}
			counted[cand] = false
			trial = append(p.rules, r)
			if p.solvable(counted, trial) {
				p.rules = trial
			} else {
				counted[cand] = true
			}
			break // at most one label per node may be dropped
		}
	}

	// Materialize counters.
	tripAdds := map[cfg.NodeID]int{}
	for i := range p.rules {
		if p.rules[i].kind == doAddTrip {
			init := p.doInitNode(p.rules[i].node)
			if _, dup := tripAdds[init]; !dup {
				tripAdds[init] = 0
			}
		}
	}
	for _, c := range p.conds {
		if counted[c] {
			p.Counters = append(p.Counters, Counter{Kind: CondCounter, Cond: c})
		}
	}
	inits := make([]cfg.NodeID, 0, len(tripAdds))
	for n := range tripAdds {
		inits = append(inits, n)
	}
	sort.Slice(inits, func(i, j int) bool { return inits[i] < inits[j] })
	for _, n := range inits {
		tripAdds[n] = len(p.Counters)
		p.Counters = append(p.Counters, Counter{Kind: TripAdd, Node: n})
	}
	for i := range p.rules {
		if p.rules[i].kind == doAddTrip {
			p.rules[i].counter = tripAdds[p.doInitNode(p.rules[i].node)]
		}
	}
	if !p.solvable(counted, p.rules) {
		return nil, fmt.Errorf("profiler: final plan for %s is not solvable", a.P.G.Name)
	}
	return p, nil
}

// doLoopRule checks whether header h is an exit-free counted DO loop and
// returns the matching rule (doConstTrip when the trip count folds to a
// constant, doAddTrip otherwise).
func (p *Plan) doLoopRule(h cfg.NodeID) (rule, bool) {
	node := p.A.Ext.G.Node(h)
	op, ok := node.Payload.(lower.OpDoTest)
	if !ok {
		return rule{}, false
	}
	// Exit-free: every postexit of this interval is fed by the test's own
	// F edge; any other source is a GOTO out of the loop. This is the
	// paper's FCDG test "just look for an edge to a POSTEXIT node" (from a
	// node other than the header).
	for _, pe := range p.A.Ext.Postexits {
		if p.A.Ext.ExitedInterval[pe] != h {
			continue
		}
		for _, e := range p.A.Ext.G.InEdges(pe) {
			if e.Pseudo() {
				continue
			}
			if e.From != h {
				return rule{}, false
			}
		}
	}
	l := op.L
	lo, okLo := lang.FoldInt(p.A.P.Unit, l.Lo)
	hi, okHi := lang.FoldInt(p.A.P.Unit, l.Hi)
	step := int64(1)
	okStep := true
	if l.Step != nil {
		step, okStep = lang.FoldInt(p.A.P.Unit, l.Step)
	}
	if okLo && okHi && okStep && step != 0 {
		trip := (hi - lo + step) / step
		if trip < 0 {
			trip = 0
		}
		return rule{kind: doConstTrip, node: h, trip: trip}, true
	}
	if trip, ok := p.flowTrips[h]; ok {
		return rule{kind: doConstTrip, node: h, trip: trip}, true
	}
	return rule{kind: doAddTrip, node: h}, true
}

// doInitNode finds the DoInit node feeding the DO test h. In the extended
// graph the init is a predecessor of the loop preheader, not of the header
// itself, so the node is located by its payload.
func (p *Plan) doInitNode(h cfg.NodeID) cfg.NodeID {
	for _, n := range p.A.P.G.Nodes() {
		if op, ok := n.Payload.(lower.OpDoInit); ok && op.Test == h {
			return n.ID
		}
	}
	panic(fmt.Sprintf("profiler: DO test %d has no DoInit node", h))
}

// nonPseudoLabels returns the distinct non-pseudo edge labels leaving u in
// the extended graph (these equal the original CFG labels for original
// nodes).
func nonPseudoLabels(g *cfg.Graph, u cfg.NodeID) []cfg.Label {
	var out []cfg.Label
	for _, l := range g.Labels(u) {
		if !l.IsPseudo() {
			out = append(out, l)
		}
	}
	return out
}

// --------------------------------------------------------------------------
// Naive placement.

// PlanNaive computes the baseline placement: one counter per basic block of
// the procedure's CFG, with the DO-loop optimization applied only when the
// loop body is straight-line code (the paper's Table 1 "naive profiling"
// configuration).
func PlanNaive(a *analysis.Proc) *Plan {
	p := &Plan{A: a, Naive: true}
	g := a.P.G
	leaders := BlockLeaders(g)
	// DO optimization, restricted form: an exit-free DO whose body is one
	// straight-line block. The body-block counter and the test-block
	// counter are replaced by one TripAdd at the DoInit (body executions =
	// Σtrips, test executions = Σtrips + init executions).
	skip := map[cfg.NodeID]bool{}
	var adds []cfg.NodeID
	for _, h := range a.Intervals.Headers() {
		r, ok := p.doLoopRule(h)
		if !ok {
			continue
		}
		body, straight := straightLineBody(a, h)
		if !straight {
			continue
		}
		skip[h] = true    // test block
		skip[body] = true // body block leader
		if r.kind == doAddTrip {
			adds = append(adds, p.doInitNode(h))
		}
		// Constant trips need no counter at all; both blocks derive from
		// the init block count.
	}
	for _, l := range leaders {
		if skip[l] {
			continue
		}
		p.Blocks = append(p.Blocks, l)
		p.Counters = append(p.Counters, Counter{Kind: BlockCounter, Node: l})
	}
	for _, n := range adds {
		p.Counters = append(p.Counters, Counter{Kind: TripAdd, Node: n})
	}
	return p
}

// BlockLeaders returns the basic block leader nodes of g in ascending
// order: the entry, every branch target of a multi-way transfer, and every
// join point.
func BlockLeaders(g *cfg.Graph) []cfg.NodeID {
	lead := map[cfg.NodeID]bool{g.Entry: true}
	for id := cfg.NodeID(1); id <= g.MaxID(); id++ {
		if len(g.InEdges(id)) > 1 {
			lead[id] = true
		}
		if len(g.OutEdges(id)) > 1 {
			for _, e := range g.OutEdges(id) {
				lead[e.To] = true
			}
		}
	}
	out := make([]cfg.NodeID, 0, len(lead))
	for n := range lead {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// straightLineBody reports whether the body of DO loop h (the subgraph
// entered by the test's T edge, up to the DoIncr) is a single basic block,
// and returns its leader.
func straightLineBody(a *analysis.Proc, h cfg.NodeID) (cfg.NodeID, bool) {
	g := a.P.G
	var entry cfg.NodeID
	for _, e := range g.OutEdges(h) {
		if e.Label == cfg.True {
			entry = e.To
		}
	}
	if entry == cfg.None {
		return cfg.None, false
	}
	n := entry
	for {
		if len(g.InEdges(n)) > 1 && n != entry {
			return cfg.None, false
		}
		out := g.OutEdges(n)
		if len(out) != 1 {
			return cfg.None, false
		}
		if _, isIncr := g.Node(n).Payload.(lower.OpDoIncr); isIncr {
			return entry, true
		}
		n = out[0].To
		if n == h || n == entry {
			return cfg.None, false
		}
	}
}
