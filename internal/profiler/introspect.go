package profiler

import (
	"repro/internal/cdg"
	"repro/internal/cfg"
)

// RuleKind is the exported mirror of the plan's internal rule kinds, in the
// same order, for static verification of a placement (package check builds
// a linear system out of the rules and proves it has full rank).
type RuleKind int

// Exported rule kinds.
const (
	RuleBranchBalance RuleKind = iota // dropped = exec(node) − Σ others
	RuleLoopIdentity                  // (ph,U) = exec(ph) + Σ back-edge takings
	RuleDoConstTrip                   // (ph,U), (test,T) from exec(ph) × const trip
	RuleDoAddTrip                     // (ph,U), (test,T) from a TripAdd reading
	RuleStaticCond                    // dropped = staticFreq × exec(node)
)

func (k RuleKind) String() string {
	switch k {
	case RuleBranchBalance:
		return "branch-balance"
	case RuleLoopIdentity:
		return "loop-identity"
	case RuleDoConstTrip:
		return "do-const-trip"
	case RuleDoAddTrip:
		return "do-add-trip"
	case RuleStaticCond:
		return "static-cond"
	}
	return "unknown"
}

// RuleView is a read-only view of one inference rule of a smart plan.
// Slices are copies; mutating them does not affect the plan.
type RuleView struct {
	Kind RuleKind
	// Node is the branch node (RuleBranchBalance, RuleStaticCond) or the
	// loop header / DO test node (loop rules).
	Node cfg.NodeID
	// Dropped is the condition the rule recovers. For the DO rules it is
	// the zero Condition: they recover the loop condition (preheader, U)
	// and, when present, the test's T and F conditions implicitly.
	Dropped cdg.Condition
	// Others are the sibling conditions summed by RuleBranchBalance.
	Others []cdg.Condition
	// BackEdges are the CFG back edges of a RuleLoopIdentity.
	BackEdges []cfg.Edge
	// Trip is the constant trip count of a RuleDoConstTrip.
	Trip int64
	// StaticFreq is the compile-time FREQ of a RuleStaticCond.
	StaticFreq float64
}

// Rules exposes the plan's inference rules for independent verification.
func (p *Plan) Rules() []RuleView {
	out := make([]RuleView, 0, len(p.rules))
	for i := range p.rules {
		r := &p.rules[i]
		out = append(out, RuleView{
			Kind:       RuleKind(r.kind),
			Node:       r.node,
			Dropped:    r.dropped,
			Others:     append([]cdg.Condition(nil), r.others...),
			BackEdges:  append([]cfg.Edge(nil), r.backEdges...),
			Trip:       r.trip,
			StaticFreq: r.staticFreq,
		})
	}
	return out
}

// Conds returns the non-pseudo FCDG conditions the plan must determine —
// the unknowns of the recovery system. The slice is a copy.
func (p *Plan) Conds() []cdg.Condition {
	return append([]cdg.Condition(nil), p.conds...)
}

// ConstTripTests returns the DO-test nodes the plan proved to be exit-free
// counted loops with a compile-time-constant trip count (the doConstTrip
// rule of Section 3's third optimization). Such a test is deterministic —
// per loop entry it takes T exactly trip times and F once — so the
// estimator may drop the Bernoulli model for its branch.
func (p *Plan) ConstTripTests() []cfg.NodeID {
	var out []cfg.NodeID
	for i := range p.rules {
		if p.rules[i].kind == doConstTrip {
			out = append(out, p.rules[i].node)
		}
	}
	return out
}
