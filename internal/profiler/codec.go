package profiler

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/wire"
)

// Encode serializes the counter placement: counters, recovery rules, the
// cached condition list, and the flow-proven trip counts. The plan's
// analysis back-pointer is re-attached on decode.
func (p *Plan) Encode(w *wire.Writer) {
	w.Bool(p.Naive)
	w.Uvarint(uint64(len(p.Counters)))
	for _, c := range p.Counters {
		w.U8(uint8(c.Kind))
		encodeCond(w, c.Cond)
		w.Varint(int64(c.Node))
	}
	w.Uvarint(uint64(len(p.rules)))
	for _, r := range p.rules {
		w.U8(uint8(r.kind))
		w.Varint(int64(r.node))
		encodeCond(w, r.dropped)
		w.Uvarint(uint64(len(r.others)))
		for _, c := range r.others {
			encodeCond(w, c)
		}
		w.Uvarint(uint64(len(r.backEdges)))
		for _, e := range r.backEdges {
			cfg.EncodeEdge(w, e)
		}
		w.Varint(r.trip)
		w.Int(r.counter)
		w.F64(r.staticFreq)
	}
	w.Uvarint(uint64(len(p.conds)))
	for _, c := range p.conds {
		encodeCond(w, c)
	}
	w.Uvarint(uint64(len(p.Blocks)))
	for _, b := range p.Blocks {
		w.Varint(int64(b))
	}
	trips := make([]cfg.NodeID, 0, len(p.flowTrips))
	for n := range p.flowTrips {
		trips = append(trips, n)
	}
	sort.Slice(trips, func(i, j int) bool { return trips[i] < trips[j] })
	w.Uvarint(uint64(len(trips)))
	for _, n := range trips {
		w.Varint(int64(n))
		w.Varint(p.flowTrips[n])
	}
}

func encodeCond(w *wire.Writer, c cdg.Condition) {
	w.Varint(int64(c.Node))
	w.String(string(c.Label))
}

func decodeCond(r *wire.Reader, g *cfg.Graph) cdg.Condition {
	c := cdg.Condition{Node: cfg.NodeID(r.Varint()), Label: cfg.Label(r.String())}
	if r.Err() == nil && c.Node != cfg.None && g.Node(c.Node) == nil {
		r.Failf("condition node %d outside extended graph", c.Node)
	}
	return c
}

// DecodePlan reads a Plan written by Encode, attached to a.
func DecodePlan(r *wire.Reader, a *analysis.Proc) *Plan {
	p := &Plan{A: a}
	eg := a.Ext.G
	p.Naive = r.Bool()
	nc := r.Count(3)
	for i := 0; i < nc; i++ {
		c := Counter{Kind: CounterKind(r.U8())}
		c.Cond = decodeCond(r, eg)
		c.Node = cfg.NodeID(r.Varint())
		if r.Err() == nil && (c.Kind < CondCounter || c.Kind > TripAdd) {
			r.Failf("invalid counter kind %d", int(c.Kind))
		}
		if r.Err() != nil {
			return p
		}
		p.Counters = append(p.Counters, c)
	}
	nr := r.Count(6)
	for i := 0; i < nr; i++ {
		ru := rule{kind: ruleKind(r.U8())}
		ru.node = cfg.NodeID(r.Varint())
		ru.dropped = decodeCond(r, eg)
		no := r.Count(2)
		for j := 0; j < no; j++ {
			ru.others = append(ru.others, decodeCond(r, eg))
		}
		ne := r.Count(3)
		for j := 0; j < ne; j++ {
			ru.backEdges = append(ru.backEdges, cfg.DecodeEdge(r, eg))
		}
		ru.trip = r.Varint()
		ru.counter = r.Int()
		ru.staticFreq = r.F64()
		if r.Err() == nil && (ru.kind < branchBalance || ru.kind > staticCond) {
			r.Failf("invalid rule kind %d", int(ru.kind))
		}
		if r.Err() == nil && ru.kind == doAddTrip && (ru.counter < 0 || ru.counter >= len(p.Counters)) {
			r.Failf("rule counter index %d out of range", ru.counter)
		}
		if r.Err() != nil {
			return p
		}
		p.rules = append(p.rules, ru)
	}
	ncd := r.Count(2)
	for i := 0; i < ncd; i++ {
		p.conds = append(p.conds, decodeCond(r, eg))
	}
	nb := r.Count(1)
	for i := 0; i < nb; i++ {
		p.Blocks = append(p.Blocks, cfg.NodeID(r.Varint()))
	}
	nt := r.Count(2)
	if nt > 0 {
		p.flowTrips = make(map[cfg.NodeID]int64, nt)
		for i := 0; i < nt; i++ {
			n := cfg.NodeID(r.Varint())
			p.flowTrips[n] = r.Varint()
		}
	}
	return p
}

// BuildPlansPrebuilt is BuildPlans reusing already-decoded plans for the
// procedures present in prebuilt (the artifact cache's warm half); only the
// remaining procedures pay the placement computation.
func BuildPlansPrebuilt(prog *analysis.Program, prebuilt map[string]*Plan) (Plans, error) {
	out := make(Plans, len(prog.Procs))
	for name, a := range prog.Procs {
		if plan, ok := prebuilt[name]; ok && plan != nil {
			out[name] = plan
			continue
		}
		plan, err := PlanFlow(a)
		if err != nil {
			return nil, err
		}
		out[name] = plan
	}
	return out, nil
}
