package freq

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/ecfg"
	"repro/internal/lower"
	"repro/internal/paperex"
)

func exampleFCDG(t *testing.T) *analysis.Proc {
	t.Helper()
	a, err := analysis.AnalyzeProc(&lower.Proc{G: paperex.CFG()})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func paperTotals(a *analysis.Proc) Totals {
	ph := a.Ext.Preheader[paperex.IfM]
	t := Totals{
		{Node: a.Ext.Start, Label: cfg.Uncond}:  1,
		{Node: ph, Label: ecfg.LoopBodyLabel}:   10,
		{Node: paperex.IfM, Label: cfg.True}:    10,
		{Node: paperex.IfM, Label: cfg.False}:   0,
		{Node: paperex.IfNLt, Label: cfg.True}:  1,
		{Node: paperex.IfNLt, Label: cfg.False}: 9,
		{Node: paperex.IfNGe, Label: cfg.True}:  0,
		{Node: paperex.IfNGe, Label: cfg.False}: 0,
	}
	for _, c := range a.FCDG.Conditions() {
		if c.Label.IsPseudo() {
			t[c] = 0
		}
	}
	return t
}

func TestComputePaperValues(t *testing.T) {
	a := exampleFCDG(t)
	tab, err := Compute(a.FCDG, paperTotals(a))
	if err != nil {
		t.Fatal(err)
	}
	ph := a.Ext.Preheader[paperex.IfM]
	checks := []struct {
		c    cdg.Condition
		want float64
	}{
		{cdg.Condition{Node: ph, Label: ecfg.LoopBodyLabel}, 10},
		{cdg.Condition{Node: paperex.IfM, Label: cfg.True}, 1},
		{cdg.Condition{Node: paperex.IfNLt, Label: cfg.True}, 0.1},
		{cdg.Condition{Node: paperex.IfNLt, Label: cfg.False}, 0.9},
	}
	for _, c := range checks {
		if got := tab.Freq.At(c.c); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("FREQ%v = %g, want %g", c.c, got, c.want)
		}
	}
	nodeChecks := map[cfg.NodeID]float64{
		paperex.IfM:    10,
		paperex.IfNLt:  10,
		paperex.IfNGe:  0,
		paperex.Call:   9,
		paperex.Goto10: 9,
		paperex.Cont20: 1,
	}
	for n, want := range nodeChecks {
		if got := tab.NodeFreq[n]; math.Abs(got-want) > 1e-12 {
			t.Errorf("NODE_FREQ(%d) = %g, want %g", n, got, want)
		}
	}
	if tab.Runs != 1 {
		t.Errorf("Runs = %g", tab.Runs)
	}
}

func TestFootnote2ZeroGuard(t *testing.T) {
	// A condition on a never-executing node has TOTAL 0 and must get FREQ
	// 0 without dividing.
	a := exampleFCDG(t)
	totals := paperTotals(a)
	tab, err := Compute(a.FCDG, totals)
	if err != nil {
		t.Fatal(err)
	}
	c := cdg.Condition{Node: paperex.IfNGe, Label: cfg.True}
	if tab.Freq.At(c) != 0 {
		t.Errorf("FREQ of dead branch = %g", tab.Freq.At(c))
	}
}

func TestInconsistentProfileRejected(t *testing.T) {
	a := exampleFCDG(t)
	totals := paperTotals(a)
	// Claim the dead ELSE arm took branches anyway.
	totals[cdg.Condition{Node: paperex.IfNGe, Label: cfg.True}] = 5
	if _, err := Compute(a.FCDG, totals); err == nil {
		t.Fatal("inconsistent profile must be rejected")
	}
	// Negative run count.
	totals = paperTotals(a)
	totals[cdg.Condition{Node: a.Ext.Start, Label: cfg.Uncond}] = -1
	if _, err := Compute(a.FCDG, totals); err == nil {
		t.Fatal("negative runs must be rejected")
	}
	// Branch probability above 1.
	totals = paperTotals(a)
	totals[cdg.Condition{Node: paperex.IfM, Label: cfg.True}] = 25
	if _, err := Compute(a.FCDG, totals); err == nil {
		t.Fatal("probability > 1 must be rejected")
	}
}

func TestTotalsAdd(t *testing.T) {
	a := Totals{{Node: 1, Label: cfg.True}: 2}
	b := Totals{{Node: 1, Label: cfg.True}: 3, {Node: 2, Label: cfg.False}: 1}
	a.Add(b)
	if a[cdg.Condition{Node: 1, Label: cfg.True}] != 5 {
		t.Errorf("add failed: %v", a)
	}
	if a[cdg.Condition{Node: 2, Label: cfg.False}] != 1 {
		t.Errorf("new key not merged: %v", a)
	}
}

func TestStaticOverridesTotals(t *testing.T) {
	a := exampleFCDG(t)
	totals := paperTotals(a)
	// Statically claim the header branch is 50/50 — overriding the
	// profiled 10/0 — and keep the downstream totals consistent with the
	// halved node frequency (NODE_FREQ(IfNLt) becomes 5).
	static := map[cdg.Condition]float64{
		{Node: paperex.IfM, Label: cfg.True}:  0.5,
		{Node: paperex.IfM, Label: cfg.False}: 0.5,
	}
	totals[cdg.Condition{Node: paperex.IfNLt, Label: cfg.True}] = 0.5
	totals[cdg.Condition{Node: paperex.IfNLt, Label: cfg.False}] = 4.5
	tab, err := ComputeOpts(a.FCDG, totals, Opts{Static: static})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Freq.At(cdg.Condition{Node: paperex.IfM, Label: cfg.True}); got != 0.5 {
		t.Errorf("static override ignored: %g", got)
	}
	// NODE_FREQ downstream reflects the static value.
	if got := tab.NodeFreq[paperex.IfNLt]; math.Abs(got-5) > 1e-12 {
		t.Errorf("NODE_FREQ(IfNLt) = %g, want 5", got)
	}
}

func TestLoopConditions(t *testing.T) {
	a := exampleFCDG(t)
	lcs := LoopConditions(a.FCDG)
	if len(lcs) != 1 {
		t.Fatalf("loop conditions = %v", lcs)
	}
	if lcs[0].Node != a.Ext.Preheader[paperex.IfM] || lcs[0].Label != ecfg.LoopBodyLabel {
		t.Errorf("loop condition = %v", lcs[0])
	}
}
