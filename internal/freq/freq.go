// Package freq computes relative execution frequencies from raw
// TOTAL_FREQ counter totals, implementing the recurrence equations of
// Section 3 of the paper:
//
//	NODE_FREQ(START) = 1
//	FREQ(u,l)        = TOTAL_FREQ(u,l) / (TOTAL_FREQ(START,U) × NODE_FREQ(u))
//	NODE_FREQ(v)     = Σ over FCDG edges (u,v,l) of NODE_FREQ(u) × FREQ(u,l)
//
// evaluated in a single top-down pass over the forward control dependence
// graph. Per the paper's footnote 2, a zero denominator forces the
// numerator to zero too, so FREQ is defined as 0 without dividing.
//
// FREQ(u,l) is a branch probability in [0,1] for ordinary nodes and the
// average iteration count (≥ 0) of the interval for preheader loop
// conditions.
//
// The recurrence tables are dense: NODE_FREQ is a slice indexed directly
// by cfg.NodeID (IDs are small and contiguous) and FREQ is a CondVec
// indexed by the FCDG's condition index, so the inner loops never hash a
// map key.
package freq

import (
	"fmt"

	"repro/internal/cdg"
	"repro/internal/cfg"
)

// Totals maps control conditions to their accumulated TOTAL_FREQ. The
// special condition (START, U) holds the number of procedure invocations
// the profile covers. This stays a map because it is the interchange
// format of the program database; the per-node recurrence tables below are
// the dense hot-path representation.
type Totals map[cdg.Condition]float64

// Add accumulates another profile into t (the program-database merge
// operation: only ratios matter, so sums over several runs are valid
// inputs).
func (t Totals) Add(other Totals) {
	for c, v := range other {
		t[c] += v
	}
}

// CondVec is a dense FREQ table over an FCDG's condition index: one slot
// per control condition, addressable either by dense index (hot paths) or
// by Condition (convenience lookups).
type CondVec struct {
	f *cdg.Graph
	v []float64
}

// NewCondVec returns a zeroed table sized to f's conditions.
func NewCondVec(f *cdg.Graph) CondVec {
	return CondVec{f: f, v: make([]float64, f.NumConditions())}
}

// At returns FREQ(c), or 0 when c is not a condition of the FCDG —
// matching the zero-default of the map representation it replaces.
func (cv CondVec) At(c cdg.Condition) float64 {
	if i, ok := cv.f.CondIndex(c); ok {
		return cv.v[i]
	}
	return 0
}

// AtIndex returns the value at dense condition index i.
func (cv CondVec) AtIndex(i int) float64 { return cv.v[i] }

// SetIndex stores the value at dense condition index i.
func (cv CondVec) SetIndex(i int, x float64) { cv.v[i] = x }

// Len returns the number of conditions.
func (cv CondVec) Len() int { return len(cv.v) }

// Graph returns the FCDG the table is indexed against.
func (cv CondVec) Graph() *cdg.Graph { return cv.f }

// NodeVec is a dense per-node table indexed directly by cfg.NodeID
// (index 0 is the None sentinel and unused). Indexing reads exactly like
// the map it replaces: v[u].
type NodeVec []float64

// Table holds the recovered relative frequencies of one procedure.
type Table struct {
	F *cdg.Graph
	// Freq is FREQ(u,l) per Definition 3.
	Freq CondVec
	// NodeFreq is the average number of executions of each node per
	// invocation of the procedure, indexed by NodeID.
	NodeFreq NodeVec
	// Runs is TOTAL_FREQ(START, U): the number of invocations profiled.
	Runs float64
	// FreqVar optionally holds VAR(FREQ(u,l)) for loop conditions, when
	// the profile recorded per-entry iteration counts (E[F²] support for
	// Section 5 case 1). Nil entries mean "assume zero variance".
	FreqVar map[cdg.Condition]float64
}

// Opts modify Compute.
type Opts struct {
	// Static supplies FREQ values known from compile-time analysis
	// (package staticfreq); they take precedence over profile totals, and
	// conditions covered statically need no profile data at all.
	Static map[cdg.Condition]float64
}

// Compute runs the top-down pass over the FCDG using profile totals only.
func Compute(f *cdg.Graph, totals Totals) (*Table, error) {
	return ComputeOpts(f, totals, Opts{})
}

// ComputeOpts runs the top-down pass over the FCDG, blending compile-time
// frequencies with profile totals (the paper's "complemented by execution
// profile information wherever compile-time analysis is unsuccessful").
func ComputeOpts(f *cdg.Graph, totals Totals, opts Opts) (*Table, error) {
	t := &Table{
		F:        f,
		Freq:     NewCondVec(f),
		NodeFreq: make(NodeVec, f.Ext.G.MaxID()+1),
	}
	startCond := cdg.Condition{Node: f.Root, Label: cfg.Uncond}
	t.Runs = totals[startCond]
	if t.Runs < 0 {
		return nil, fmt.Errorf("freq: negative run count %g", t.Runs)
	}

	topo := f.Topo()
	if len(topo) == 0 {
		return nil, fmt.Errorf("freq: FCDG has no topological order (not a forward CDG?)")
	}
	t.NodeFreq[f.Root] = 1
	for _, u := range topo {
		nf := t.NodeFreq[u]
		// FREQ for each of u's conditions (footnote 2: guard the division),
		// then propagate NODE_FREQ to the condition's children.
		for _, ci := range f.NodeConds(u) {
			c := ci.Cond
			fr := 0.0
			if sv, ok := opts.Static[c]; ok {
				fr = sv
			} else {
				den := t.Runs * nf
				num := totals[c]
				if den == 0 {
					if num != 0 {
						return nil, fmt.Errorf("freq: inconsistent profile: TOTAL%v = %g but node %d never executes", c, num, u)
					}
				} else {
					fr = num / den
				}
			}
			t.Freq.SetIndex(ci.Index, fr)
			for _, v := range ci.Children {
				t.NodeFreq[v] += nf * fr
			}
		}
	}

	// Sanity: branch probabilities must lie in [0,1] (loop conditions may
	// exceed 1). A violation means the totals did not come from a
	// consistent profile.
	for i := 0; i < t.Freq.Len(); i++ {
		v := t.Freq.AtIndex(i)
		c := f.CondAt(i)
		if v < 0 {
			return nil, fmt.Errorf("freq: FREQ%v = %g < 0", c, v)
		}
		if !isLoopCondition(f, c) && v > 1+1e-9 {
			return nil, fmt.Errorf("freq: branch probability FREQ%v = %g > 1", c, v)
		}
	}
	return t, nil
}

// isLoopCondition reports whether c is a preheader's loop-body condition,
// whose FREQ is an iteration count rather than a probability.
func isLoopCondition(f *cdg.Graph, c cdg.Condition) bool {
	n := f.Ext.G.Node(c.Node)
	return n != nil && n.Type == cfg.Preheader && !c.Label.IsPseudo()
}

// LoopConditions returns the preheader loop conditions of the FCDG in
// deterministic order.
func LoopConditions(f *cdg.Graph) []cdg.Condition {
	var out []cdg.Condition
	for _, c := range f.Conditions() {
		if isLoopCondition(f, c) {
			out = append(out, c)
		}
	}
	return out
}
