// Package freq computes relative execution frequencies from raw
// TOTAL_FREQ counter totals, implementing the recurrence equations of
// Section 3 of the paper:
//
//	NODE_FREQ(START) = 1
//	FREQ(u,l)        = TOTAL_FREQ(u,l) / (TOTAL_FREQ(START,U) × NODE_FREQ(u))
//	NODE_FREQ(v)     = Σ over FCDG edges (u,v,l) of NODE_FREQ(u) × FREQ(u,l)
//
// evaluated in a single top-down pass over the forward control dependence
// graph. Per the paper's footnote 2, a zero denominator forces the
// numerator to zero too, so FREQ is defined as 0 without dividing.
//
// FREQ(u,l) is a branch probability in [0,1] for ordinary nodes and the
// average iteration count (≥ 0) of the interval for preheader loop
// conditions.
package freq

import (
	"fmt"

	"repro/internal/cdg"
	"repro/internal/cfg"
)

// Totals maps control conditions to their accumulated TOTAL_FREQ. The
// special condition (START, U) holds the number of procedure invocations
// the profile covers.
type Totals map[cdg.Condition]float64

// Add accumulates another profile into t (the program-database merge
// operation: only ratios matter, so sums over several runs are valid
// inputs).
func (t Totals) Add(other Totals) {
	for c, v := range other {
		t[c] += v
	}
}

// Table holds the recovered relative frequencies of one procedure.
type Table struct {
	F *cdg.Graph
	// Freq is FREQ(u,l) per Definition 3.
	Freq map[cdg.Condition]float64
	// NodeFreq is the average number of executions of each node per
	// invocation of the procedure.
	NodeFreq map[cfg.NodeID]float64
	// Runs is TOTAL_FREQ(START, U): the number of invocations profiled.
	Runs float64
	// FreqVar optionally holds VAR(FREQ(u,l)) for loop conditions, when
	// the profile recorded per-entry iteration counts (E[F²] support for
	// Section 5 case 1). Nil entries mean "assume zero variance".
	FreqVar map[cdg.Condition]float64
}

// Opts modify Compute.
type Opts struct {
	// Static supplies FREQ values known from compile-time analysis
	// (package staticfreq); they take precedence over profile totals, and
	// conditions covered statically need no profile data at all.
	Static map[cdg.Condition]float64
}

// Compute runs the top-down pass over the FCDG using profile totals only.
func Compute(f *cdg.Graph, totals Totals) (*Table, error) {
	return ComputeOpts(f, totals, Opts{})
}

// ComputeOpts runs the top-down pass over the FCDG, blending compile-time
// frequencies with profile totals (the paper's "complemented by execution
// profile information wherever compile-time analysis is unsuccessful").
func ComputeOpts(f *cdg.Graph, totals Totals, opts Opts) (*Table, error) {
	t := &Table{
		F:        f,
		Freq:     make(map[cdg.Condition]float64),
		NodeFreq: make(map[cfg.NodeID]float64),
	}
	startCond := cdg.Condition{Node: f.Root, Label: cfg.Uncond}
	t.Runs = totals[startCond]
	if t.Runs < 0 {
		return nil, fmt.Errorf("freq: negative run count %g", t.Runs)
	}

	topo := f.Topo()
	if len(topo) == 0 {
		return nil, fmt.Errorf("freq: FCDG has no topological order (not a forward CDG?)")
	}
	t.NodeFreq[f.Root] = 1
	for _, u := range topo {
		nf := t.NodeFreq[u]
		// FREQ for each of u's conditions (footnote 2: guard the division).
		for _, l := range f.Labels(u) {
			c := cdg.Condition{Node: u, Label: l}
			if sv, ok := opts.Static[c]; ok {
				t.Freq[c] = sv
				continue
			}
			den := t.Runs * nf
			num := totals[c]
			if den == 0 {
				if num != 0 {
					return nil, fmt.Errorf("freq: inconsistent profile: TOTAL%v = %g but node %d never executes", c, num, u)
				}
				t.Freq[c] = 0
				continue
			}
			t.Freq[c] = num / den
		}
		// Propagate NODE_FREQ to children.
		for _, e := range f.OutEdges(u) {
			c := cdg.Condition{Node: u, Label: e.Label}
			t.NodeFreq[e.To] += nf * t.Freq[c]
		}
	}

	// Sanity: branch probabilities must lie in [0,1] (loop conditions may
	// exceed 1). A violation means the totals did not come from a
	// consistent profile.
	for c, v := range t.Freq {
		if v < 0 {
			return nil, fmt.Errorf("freq: FREQ%v = %g < 0", c, v)
		}
		if !isLoopCondition(f, c) && v > 1+1e-9 {
			return nil, fmt.Errorf("freq: branch probability FREQ%v = %g > 1", c, v)
		}
	}
	return t, nil
}

// isLoopCondition reports whether c is a preheader's loop-body condition,
// whose FREQ is an iteration count rather than a probability.
func isLoopCondition(f *cdg.Graph, c cdg.Condition) bool {
	n := f.Ext.G.Node(c.Node)
	return n != nil && n.Type == cfg.Preheader && !c.Label.IsPseudo()
}

// LoopConditions returns the preheader loop conditions of the FCDG in
// deterministic order.
func LoopConditions(f *cdg.Graph) []cdg.Condition {
	var out []cdg.Condition
	for _, c := range f.Conditions() {
		if isLoopCondition(f, c) {
			out = append(out, c)
		}
	}
	return out
}
