package dom

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/paperex"
)

// diamond: 1 -> {2,3} -> 4
func diamond() *cfg.Graph {
	g := cfg.New("diamond")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.True)
	g.MustAddEdge(1, 3, cfg.False)
	g.MustAddEdge(2, 4, cfg.Uncond)
	g.MustAddEdge(3, 4, cfg.Uncond)
	g.Entry, g.Exit = 1, 4
	return g
}

func TestDominatorsDiamond(t *testing.T) {
	d := Dominators(diamond())
	want := map[cfg.NodeID]cfg.NodeID{1: 1, 2: 1, 3: 1, 4: 1}
	for n, idom := range want {
		if d.Idom[n] != idom {
			t.Errorf("idom(%d) = %d, want %d", n, d.Idom[n], idom)
		}
	}
	if !d.Dominates(1, 4) || d.StrictlyDominates(2, 4) {
		t.Error("1 must dominate 4; 2 must not")
	}
	if !d.Dominates(3, 3) {
		t.Error("dominance must be reflexive")
	}
	if d.StrictlyDominates(3, 3) {
		t.Error("strict dominance must be irreflexive")
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	p := PostDominators(diamond())
	for n := cfg.NodeID(1); n <= 3; n++ {
		if p.Idom[n] != 4 {
			t.Errorf("ipdom(%d) = %d, want 4", n, p.Idom[n])
		}
	}
	if !p.Dominates(4, 1) {
		t.Error("exit must postdominate entry")
	}
	if p.Dominates(2, 1) {
		t.Error("2 must not postdominate 1 (path through 3)")
	}
}

func TestDominatorsPaperExample(t *testing.T) {
	g := paperex.CFG()
	d := Dominators(g)
	// Node 1 (loop header, entry) dominates everything.
	for n := cfg.NodeID(1); n <= 6; n++ {
		if !d.Dominates(paperex.IfM, n) {
			t.Errorf("header must dominate node %d", n)
		}
	}
	// CALL (4) is reached from both IF arms, so its idom is the header.
	if d.Idom[paperex.Call] != paperex.IfM {
		t.Errorf("idom(CALL) = %d, want %d", d.Idom[paperex.Call], paperex.IfM)
	}
	p := PostDominators(g)
	// CONTINUE (6) postdominates everything.
	for n := cfg.NodeID(1); n <= 6; n++ {
		if !p.Dominates(paperex.Cont20, n) {
			t.Errorf("exit must postdominate node %d", n)
		}
	}
	// Neither IF arm postdominates the header.
	if p.Dominates(paperex.IfNLt, paperex.IfM) || p.Dominates(paperex.IfNGe, paperex.IfM) {
		t.Error("IF arms must not postdominate the header")
	}
	// GOTO 10 (5) is postdominated by the header via the back edge? No:
	// paths from 5 go 5->1->...->6; the header 1 is on every path from 5.
	if !p.Dominates(paperex.IfM, paperex.Goto10) {
		t.Error("header must postdominate GOTO 10")
	}
}

func TestLoopDominators(t *testing.T) {
	// 1 -> 2(header) -> 3 -> 2, 3 -> 4
	g := cfg.New("loop")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 2, cfg.True)
	g.MustAddEdge(3, 4, cfg.False)
	g.Entry, g.Exit = 1, 4
	d := Dominators(g)
	if d.Idom[2] != 1 || d.Idom[3] != 2 || d.Idom[4] != 3 {
		t.Errorf("idoms = %v, want 2:1 3:2 4:3", d.Idom)
	}
	if got := d.Children(2); len(got) != 1 || got[0] != 3 {
		t.Errorf("Children(2) = %v, want [3]", got)
	}
	if d.Parent(1) != cfg.None {
		t.Errorf("Parent(root) = %d, want None", d.Parent(1))
	}
}

func TestUnreachableFromExit(t *testing.T) {
	// Node 3 never reaches the exit: 1->2->4(exit), 1->3, 3->3.
	// The postdominator tree must simply exclude it.
	g := cfg.New("trap")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.True)
	g.MustAddEdge(2, 4, cfg.Uncond)
	g.MustAddEdge(1, 3, cfg.False)
	g.MustAddEdge(3, 3, cfg.Uncond)
	g.Entry, g.Exit = 1, 4
	p := PostDominators(g)
	if p.InTree(3) {
		t.Error("node 3 must be outside the postdominator tree")
	}
	if !p.InTree(1) || !p.InTree(2) {
		t.Error("nodes 1 and 2 must be in the postdominator tree")
	}
}

func TestFrontier(t *testing.T) {
	g := diamond()
	d := Dominators(g)
	df := d.Frontier(g, g.Preds)
	// DF(2) = DF(3) = {4}; DF(1) = DF(4) = {}.
	if len(df[2]) != 1 || df[2][0] != 4 {
		t.Errorf("DF(2) = %v, want [4]", df[2])
	}
	if len(df[3]) != 1 || df[3][0] != 4 {
		t.Errorf("DF(3) = %v, want [4]", df[3])
	}
	if len(df[1]) != 0 {
		t.Errorf("DF(1) = %v, want empty", df[1])
	}
}

func TestFrontierWithLoop(t *testing.T) {
	// 1 -> 2 -> 3 -> 2, 3 -> 4: DF(3) = {2}, DF(2) = {2}.
	g := cfg.New("loop")
	for i := 0; i < 4; i++ {
		g.AddNode(cfg.Other, "n")
	}
	g.MustAddEdge(1, 2, cfg.Uncond)
	g.MustAddEdge(2, 3, cfg.Uncond)
	g.MustAddEdge(3, 2, cfg.True)
	g.MustAddEdge(3, 4, cfg.False)
	g.Entry, g.Exit = 1, 4
	d := Dominators(g)
	df := d.Frontier(g, g.Preds)
	if len(df[3]) != 1 || df[3][0] != 2 {
		t.Errorf("DF(3) = %v, want [2]", df[3])
	}
	if len(df[2]) != 1 || df[2][0] != 2 {
		t.Errorf("DF(2) = %v, want [2]", df[2])
	}
}

func TestDominatesOutOfRange(t *testing.T) {
	d := Dominators(diamond())
	if d.Dominates(1, 99) || d.Dominates(99, 1) || d.Dominates(cfg.None, 1) {
		t.Error("out-of-range queries must return false")
	}
}
