// Package dom computes dominator and postdominator trees and dominance
// frontiers for control flow graphs.
//
// The implementation is the iterative algorithm of Cooper, Harvey and
// Kennedy ("A Simple, Fast Dominance Algorithm") over a reverse postorder
// of the graph, which is near-linear in practice and simple to verify.
// Postdominators are dominators of the edge-reversed graph rooted at the
// exit node. The postdominator tree is the foundation of control dependence
// (Definition 2 of the paper, after Ferrante–Ottenstein–Warren).
package dom

import (
	"sort"

	"repro/internal/cfg"
)

// Tree is a dominator (or postdominator) tree.
type Tree struct {
	// Root is the tree root: the graph entry for dominators, the exit for
	// postdominators.
	Root cfg.NodeID
	// Idom maps each node to its immediate dominator; Idom[Root] == Root,
	// and Idom[n] == cfg.None for nodes outside the analyzed subgraph.
	Idom []cfg.NodeID
	// children in deterministic (ascending ID) order.
	children [][]cfg.NodeID
	// pre/post numbers of the *tree* for O(1) ancestor queries.
	pre, post []int
}

// Dominators computes the dominator tree of g rooted at g.Entry.
func Dominators(g *cfg.Graph) *Tree {
	return build(g, g.Entry, g.Succs, g.Preds)
}

// PostDominators computes the postdominator tree of g rooted at g.Exit,
// i.e. the dominator tree of the reversed graph.
func PostDominators(g *cfg.Graph) *Tree {
	return build(g, g.Exit, g.Preds, g.Succs)
}

// build runs the CHK iterative algorithm. forward yields the successors in
// the direction of the analysis and backward the predecessors (swap them to
// get postdominators).
func build(g *cfg.Graph, root cfg.NodeID, forward, backward func(cfg.NodeID) []cfg.NodeID) *Tree {
	n := int(g.MaxID())
	t := &Tree{
		Root: root,
		Idom: make([]cfg.NodeID, n+1),
	}
	if g.Node(root) == nil {
		return t
	}

	// Reverse postorder of the subgraph reachable from root in the analysis
	// direction, computed with an iterative DFS.
	rpoNum := make([]int, n+1) // 0 = unreachable
	var order []cfg.NodeID
	visited := make([]bool, n+1)
	type frame struct {
		node cfg.NodeID
		next int
	}
	stack := []frame{{node: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succ := forward(f.node)
		if f.next < len(succ) {
			s := succ[f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{node: s})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for i, id := range order {
		rpoNum[id] = i + 1
	}

	intersect := func(a, b cfg.NodeID) cfg.NodeID {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = t.Idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = t.Idom[b]
			}
		}
		return a
	}

	t.Idom[root] = root
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == root {
				continue
			}
			var newIdom cfg.NodeID
			for _, p := range backward(b) {
				if rpoNum[p] == 0 || t.Idom[p] == cfg.None {
					continue // unreachable or not yet processed
				}
				if newIdom == cfg.None {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != cfg.None && t.Idom[b] != newIdom {
				t.Idom[b] = newIdom
				changed = true
			}
		}
	}

	// Build children lists and tree pre/post numbers for ancestor queries.
	t.children = make([][]cfg.NodeID, n+1)
	for id := cfg.NodeID(1); id <= cfg.NodeID(n); id++ {
		if id == root || t.Idom[id] == cfg.None {
			continue
		}
		t.children[t.Idom[id]] = append(t.children[t.Idom[id]], id)
	}
	for _, kids := range t.children {
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	}
	t.pre = make([]int, n+1)
	t.post = make([]int, n+1)
	clock := 0
	type tframe struct {
		node cfg.NodeID
		next int
	}
	tstack := []tframe{{node: root}}
	clock++
	t.pre[root] = clock
	for len(tstack) > 0 {
		f := &tstack[len(tstack)-1]
		kids := t.children[f.node]
		if f.next < len(kids) {
			k := kids[f.next]
			f.next++
			clock++
			t.pre[k] = clock
			tstack = append(tstack, tframe{node: k})
			continue
		}
		clock++
		t.post[f.node] = clock
		tstack = tstack[:len(tstack)-1]
	}
	return t
}

// Parent returns the immediate dominator of n, or cfg.None for the root and
// nodes outside the analyzed subgraph.
func (t *Tree) Parent(n cfg.NodeID) cfg.NodeID {
	if n == t.Root {
		return cfg.None
	}
	if int(n) >= len(t.Idom) {
		return cfg.None
	}
	return t.Idom[n]
}

// Children returns the tree children of n in ascending ID order. The slice
// is shared; callers must not mutate it.
func (t *Tree) Children(n cfg.NodeID) []cfg.NodeID { return t.children[n] }

// Dominates reports whether a (post)dominates b, reflexively: every node
// dominates itself.
func (t *Tree) Dominates(a, b cfg.NodeID) bool {
	if int(a) >= len(t.pre) || int(b) >= len(t.pre) || t.pre[a] == 0 || t.pre[b] == 0 {
		return false
	}
	return t.pre[a] <= t.pre[b] && t.post[a] >= t.post[b]
}

// StrictlyDominates reports whether a (post)dominates b and a != b.
func (t *Tree) StrictlyDominates(a, b cfg.NodeID) bool {
	return a != b && t.Dominates(a, b)
}

// InTree reports whether n was reachable in the analysis direction and is
// part of the tree.
func (t *Tree) InTree(n cfg.NodeID) bool {
	return int(n) < len(t.pre) && n > cfg.None && t.pre[n] != 0
}

// Frontier computes the dominance frontier of every node, per Cytron et
// al.: DF(n) contains the nodes m such that n dominates a predecessor of m
// but does not strictly dominate m. succsOf must match the direction the
// tree was built with (g.Succs for a dominator tree, g.Preds for a
// postdominator tree — i.e. the postdominance frontier uses CFG successors'
// reverse direction automatically when given g).
func (t *Tree) Frontier(g *cfg.Graph, preds func(cfg.NodeID) []cfg.NodeID) [][]cfg.NodeID {
	n := len(t.Idom) - 1
	df := make([]map[cfg.NodeID]bool, n+1)
	for id := cfg.NodeID(1); id <= cfg.NodeID(n); id++ {
		if !t.InTree(id) {
			continue
		}
		ps := preds(id)
		if len(ps) < 2 {
			continue
		}
		for _, p := range ps {
			if !t.InTree(p) {
				continue
			}
			runner := p
			for runner != t.Idom[id] && runner != cfg.None {
				if df[runner] == nil {
					df[runner] = make(map[cfg.NodeID]bool)
				}
				df[runner][id] = true
				if runner == t.Root {
					break
				}
				runner = t.Idom[runner]
			}
		}
	}
	out := make([][]cfg.NodeID, n+1)
	for id := 1; id <= n; id++ {
		if df[id] == nil {
			continue
		}
		for m := range df[id] {
			out[id] = append(out[id], m)
		}
		sort.Slice(out[id], func(a, b int) bool { return out[id][a] < out[id][b] })
	}
	return out
}
