package dom

import (
	"testing"
	"testing/quick"

	"repro/internal/cfg"
)

// bruteDominators computes dominance by definition: a dominates b iff
// removing a makes b unreachable from the entry (or a == b).
func bruteDominators(g *cfg.Graph, entry cfg.NodeID, succs func(cfg.NodeID) []cfg.NodeID) [][]bool {
	n := int(g.MaxID())
	dom := make([][]bool, n+1)
	reachableWithout := func(blocked cfg.NodeID) []bool {
		seen := make([]bool, n+1)
		if entry == blocked {
			return seen
		}
		stack := []cfg.NodeID{entry}
		seen[entry] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range succs(u) {
				if v != blocked && !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		return seen
	}
	base := reachableWithout(cfg.None)
	for a := cfg.NodeID(1); a <= cfg.NodeID(n); a++ {
		dom[a] = make([]bool, n+1)
		without := reachableWithout(a)
		for b := cfg.NodeID(1); b <= cfg.NodeID(n); b++ {
			if !base[b] {
				continue // b unreachable: dominance undefined, skip
			}
			dom[a][b] = a == b || (base[a] && !without[b])
		}
	}
	return dom
}

// randomGraph builds an arbitrary (possibly irreducible) digraph with a
// guaranteed entry-to-exit spine.
func randomGraph(seed uint64, n int) *cfg.Graph {
	g := cfg.New("rand")
	rng := seed*2862933555777941757 + 3037000493
	next := func(k int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 11) % uint64(k))
	}
	for i := 0; i < n; i++ {
		g.AddNode(cfg.Other, "n")
	}
	// Spine so that everything is reachable and the exit is reachable.
	for i := 1; i < n; i++ {
		g.MustAddEdge(cfg.NodeID(i), cfg.NodeID(i+1), cfg.Uncond)
	}
	// Random extra edges with synthetic labels to keep the multigraph
	// constraint (distinct labels per pair).
	extra := n + next(2*n+1)
	for i := 0; i < extra; i++ {
		from := cfg.NodeID(1 + next(n))
		to := cfg.NodeID(1 + next(n))
		lbl := cfg.Label("X" + string(rune('A'+i%26)) + string(rune('0'+i/26%10)))
		_ = g.AddEdge(from, to, lbl) // duplicates silently skipped
	}
	g.Entry, g.Exit = 1, cfg.NodeID(n)
	return g
}

func TestDominatorsMatchBruteForce(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := 3 + int(sizeRaw%10)
		g := randomGraph(seed, n)
		d := Dominators(g)
		brute := bruteDominators(g, g.Entry, g.Succs)
		for a := cfg.NodeID(1); a <= g.MaxID(); a++ {
			for b := cfg.NodeID(1); b <= g.MaxID(); b++ {
				if d.Dominates(a, b) != brute[a][b] {
					t.Logf("seed %d n %d: Dominates(%d,%d) = %v, brute = %v\n%s",
						seed, n, a, b, d.Dominates(a, b), brute[a][b], g)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPostDominatorsMatchBruteForce(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := 3 + int(sizeRaw%10)
		g := randomGraph(seed+1_000_000, n)
		p := PostDominators(g)
		brute := bruteDominators(g, g.Exit, g.Preds)
		for a := cfg.NodeID(1); a <= g.MaxID(); a++ {
			for b := cfg.NodeID(1); b <= g.MaxID(); b++ {
				if p.Dominates(a, b) != brute[a][b] {
					t.Logf("seed %d: PDom(%d,%d) = %v, brute = %v\n%s",
						seed, a, b, p.Dominates(a, b), brute[a][b], g)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestIdomIsClosestDominator: the immediate dominator strictly dominates
// the node and is dominated by every other strict dominator.
func TestIdomIsClosestDominator(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := 3 + int(sizeRaw%10)
		g := randomGraph(seed+2_000_000, n)
		d := Dominators(g)
		for b := cfg.NodeID(1); b <= g.MaxID(); b++ {
			if b == g.Entry || !d.InTree(b) {
				continue
			}
			idom := d.Parent(b)
			if !d.StrictlyDominates(idom, b) {
				return false
			}
			for a := cfg.NodeID(1); a <= g.MaxID(); a++ {
				if a != b && a != idom && d.StrictlyDominates(a, b) && !d.Dominates(a, idom) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
