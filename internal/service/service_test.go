package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

// srcOK is a well-formed program with a call, a data-dependent branch and
// two loops — enough to exercise planning, profiling and estimation.
const srcOK = `      PROGRAM SMOKE
      INTEGER I, S, T
      S = 0
      DO 10 I = 1, 10
         IF (RAND() .GE. 0.5) THEN
            CALL WORK(I, T)
            S = S + T
         ENDIF
   10 CONTINUE
      END

      SUBROUTINE WORK(N, T)
      INTEGER N, J, T
      T = 0
      DO 20 J = 1, N
         T = T + J
   20 CONTINUE
      RETURN
      END
`

// srcSlow burns a few million interpreter steps per seed, so a request
// stays in flight long enough for the drain test to observe it.
const srcSlow = `      PROGRAM SLOW
      INTEGER I, J, S
      S = 0
      DO 10 I = 1, 1000
         DO 20 J = 1, 1000
            S = S + 1
   20    CONTINUE
   10 CONTINUE
      END
`

const srcBad = `      PROGRAM BAD
      PRINT S
      END
`

func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (*http.Response, *AnalyzeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
	}
	return resp, &out
}

func counter(reg *obs.Registry, name string) float64 { return reg.Snapshot()[name] }

// TestSingleFlightCompile slams one source with concurrent identical
// requests and asserts the artifact compiled exactly once: one cache miss,
// everything else a hit against the single-flighted artifact.
func TestSingleFlightCompile(t *testing.T) {
	reg := &obs.Registry{}
	svc := New(Config{Metrics: reg})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	const n = 32
	var wg sync.WaitGroup
	hits := make([]bool, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postAnalyze(t, ts.URL, AnalyzeRequest{Source: srcOK})
			codes[i] = resp.StatusCode
			hits[i] = out.CacheHit
		}(i)
	}
	wg.Wait()
	misses := 0
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("cache misses among responses = %d, want exactly 1", misses)
	}
	if got := counter(reg, "service.cache_misses_total"); got != 1 {
		t.Errorf("cache_misses_total = %v, want 1", got)
	}
	if got := counter(reg, "service.cache_hits_total"); got != n-1 {
		t.Errorf("cache_hits_total = %v, want %d", got, n-1)
	}
}

// TestQueueFullSheds verifies the admission path: with one worker slot
// held and no queue, a request is shed with 503 + Retry-After, and succeeds
// once the slot frees up.
func TestQueueFullSheds(t *testing.T) {
	reg := &obs.Registry{}
	svc := New(Config{Workers: 1, Queue: 0, Metrics: reg})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	svc.lim.sem <- struct{}{} // occupy the only worker slot
	resp, out := postAnalyze(t, ts.URL, AnalyzeRequest{Source: srcOK})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	if out.Errors != 0 {
		t.Errorf("shed response carried diagnostics: %+v", out)
	}
	if got := counter(reg, "service.shed_total"); got != 1 {
		t.Errorf("shed_total = %v, want 1", got)
	}

	<-svc.lim.sem // free the slot
	resp, _ = postAnalyze(t, ts.URL, AnalyzeRequest{Source: srcOK})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status = %d, want 200", resp.StatusCode)
	}
}

// TestQueueWaitRespectsDeadline parks a request in the wait queue behind a
// held worker slot and lets its deadline expire there: 504, not a hang.
func TestQueueWaitRespectsDeadline(t *testing.T) {
	reg := &obs.Registry{}
	svc := New(Config{Workers: 1, Queue: 1, RequestTimeout: 50 * time.Millisecond, Metrics: reg})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	svc.lim.sem <- struct{}{}
	defer func() { <-svc.lim.sem }()
	resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: srcOK})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if got := counter(reg, "service.timeout_total"); got != 1 {
		t.Errorf("timeout_total = %v, want 1", got)
	}
	if got := svc.lim.depth(); got != 0 {
		t.Errorf("queue depth after timeout = %d, want 0", got)
	}
}

// TestShutdownDrains starts a slow analysis, shuts the service down while
// it is in flight, and asserts the in-flight request completes with 200
// while new requests are rejected as draining.
func TestShutdownDrains(t *testing.T) {
	svc := New(Config{Workers: 2, Metrics: &obs.Registry{}})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	type result struct {
		code int
		hit  bool
	}
	done := make(chan result, 1)
	go func() {
		resp, out := postAnalyze(t, ts.URL, AnalyzeRequest{Source: srcSlow, Seeds: []uint64{1, 2, 3, 4}})
		done <- result{resp.StatusCode, out.CacheHit}
	}()

	// Wait until the slow request holds a worker slot.
	deadline := time.Now().Add(5 * time.Second)
	for svc.lim.running() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never started running")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Shutdown only returns once the handler finished; the response may
	// still be in flight on the wire, so wait briefly rather than polling
	// the channel non-blocking.
	select {
	case r := <-done:
		if r.code != http.StatusOK {
			t.Errorf("in-flight request finished with %d, want 200", r.code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request did not complete after drain")
	}

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"source":"X"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown status = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown healthz = %d, want 503", resp.StatusCode)
	}
}

// TestAnalyzeAcrossEngines runs the same request through all three engines
// and both plans and asserts every combination produces the same TIME/VAR
// estimate for the main unit.
func TestAnalyzeAcrossEngines(t *testing.T) {
	svc := New(Config{Metrics: &obs.Registry{}})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	var baseline report.Metrics
	for _, engine := range []string{"tree", "vm", "vm-batch"} {
		for _, plan := range []string{"sarkar", "ball-larus"} {
			resp, out := postAnalyze(t, ts.URL, AnalyzeRequest{
				Source: srcOK, Engine: engine, Plan: plan, Seeds: []uint64{1, 2, 3},
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: status %d", engine, plan, resp.StatusCode)
			}
			if out.Engine != engine || out.Plan != plan {
				t.Fatalf("%s/%s: echoed %s/%s", engine, plan, out.Engine, out.Plan)
			}
			if out.Main != "SMOKE" {
				t.Fatalf("%s/%s: main = %q, want SMOKE", engine, plan, out.Main)
			}
			var est report.Metrics
			for _, pr := range out.Procs {
				if pr.Name == out.Main {
					est = pr.Estimate
				}
				if len(pr.Counters) == 0 {
					t.Errorf("%s/%s: proc %s reported no counter plan", engine, plan, pr.Name)
				}
			}
			if est == nil || est["time"] <= 0 {
				t.Fatalf("%s/%s: missing or non-positive main estimate: %v", engine, plan, est)
			}
			if baseline == nil {
				baseline = est
				continue
			}
			for _, k := range []string{"time", "var", "std_dev"} {
				if math.Abs(est[k]-baseline[k]) > 1e-9*math.Max(1, math.Abs(baseline[k])) {
					t.Errorf("%s/%s: %s = %v, want %v (engine/plan changed the estimate)",
						engine, plan, k, est[k], baseline[k])
				}
			}
		}
	}
}

// TestAnalyzeErrors covers the non-200 request paths.
func TestAnalyzeErrors(t *testing.T) {
	svc := New(Config{MaxSourceBytes: 4096, Metrics: &obs.Registry{}})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	t.Run("front-end diagnostics are a 422 document", func(t *testing.T) {
		resp, out := postAnalyze(t, ts.URL, AnalyzeRequest{Source: srcBad})
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422", resp.StatusCode)
		}
		if out.Errors == 0 || len(out.Diagnostics) == 0 {
			t.Errorf("422 without diagnostics: %+v", out)
		}
		if out.Diagnostics[0].Pass != "parse" {
			t.Errorf("pass = %q, want parse", out.Diagnostics[0].Pass)
		}
	})
	t.Run("bad engine is a 400", func(t *testing.T) {
		resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: srcOK, Engine: "jit"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("missing source is a 400", func(t *testing.T) {
		resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: "   "})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("oversized body is a 413", func(t *testing.T) {
		resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: strings.Repeat("X", 8192)})
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status = %d, want 413", resp.StatusCode)
		}
	})
	t.Run("GET is a 405", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/analyze")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status = %d, want 405", resp.StatusCode)
		}
	})
}

// TestTransientCompileFailureNotCached drives a compile into its deadline
// and asserts the poisoned artifact is dropped, so a later request under a
// sane budget succeeds.
func TestTransientCompileFailureNotCached(t *testing.T) {
	reg := &obs.Registry{}
	svc := New(Config{RequestTimeout: time.Nanosecond, Metrics: reg})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: srcOK})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if got := svc.cache.len(); got != 0 {
		t.Errorf("cache retained the transient failure: %d entries", got)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition carries the service
// family and the scrape-time gauges.
func TestMetricsEndpoint(t *testing.T) {
	svc := New(Config{Metrics: &obs.Registry{}})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	if resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: srcOK}); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE repro_service_requests_total counter",
		"repro_service_requests_total 1",
		"# TYPE repro_service_latency_p99_ms gauge",
		"# TYPE repro_service_cache_entries gauge",
		"repro_service_cache_entries 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q\n%s", want, b.String())
		}
	}
}

// TestLRUEviction fills the cache past capacity with distinct sources and
// asserts the entry count stays bounded.
func TestLRUEviction(t *testing.T) {
	svc := New(Config{CacheSize: 4, Metrics: &obs.Registry{}})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	for i := 0; i < 8; i++ {
		src := strings.Replace(srcOK, "S = 0", fmt.Sprintf("S = %d", i), 1)
		resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("variant %d: status %d", i, resp.StatusCode)
		}
	}
	if got := svc.cache.len(); got != 4 {
		t.Errorf("cache entries = %d, want 4 (LRU bound)", got)
	}
}
