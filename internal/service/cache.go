package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	artstore "repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/report"
)

// artifact is one compiled analysis pipeline, cached across requests and
// keyed by source hash × engine × plan. The zero value is "not compiled
// yet"; compile runs under the sync.Once, so concurrent requests for the
// same key single-flight onto exactly one front-end run and every waiter
// shares the result.
type artifact struct {
	once sync.Once

	// pipe is the loaded pipeline; nil when the front end failed.
	pipe *core.Pipeline
	// diags are the static check findings (or the parse failure rendered
	// as a diagnostic, ptranlint-style).
	diags []report.Diagnostic
	// err is a non-diagnostic failure (front-end timeout, checker fault).
	// transient marks errors that must not stay cached — the caller drops
	// the entry so the next request retries.
	err       error
	transient bool
	// compileMs is the wall time the cold compile took; hits report it as
	// the latency they avoided.
	compileMs float64
}

// compile runs the front end once: parse → lower → analyze with the static
// check passes, then warms the artifact's derived caches (counter plans,
// and the bytecode program when the engine wants it) so cache hits skip
// every per-program cost. Detached from any request context on purpose —
// the artifact outlives the requester — but bounded by the server's
// compile budget.
func (a *artifact) compile(src string, eng interp.Engine, strat core.Strategy, budget time.Duration, disk *artstore.Store) {
	a.once.Do(func() {
		t0 := time.Now()
		defer func() { a.compileMs = float64(time.Since(t0)) / float64(time.Millisecond) }()
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		defer cancel()
		collector := &check.Collector{}
		pipe, err := core.LoadCtx(ctx, src, core.LoadOptions{
			CheckProc: collector.CheckProc,
			Engine:    eng,
			Plan:      strat,
			Cache:     disk,
		})
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				a.err = fmt.Errorf("front end exceeded compile budget: %w", err)
				a.transient = true
				return
			}
			var se *lang.SyntaxError
			if errors.As(err, &se) {
				a.diags = []report.Diagnostic{{
					Severity: report.Error, Pass: "parse",
					Line: se.Line, Col: se.Col, Message: se.Msg,
				}}
				return
			}
			a.diags = []report.Diagnostic{{
				Severity: report.Error, Pass: "parse", Message: err.Error(),
			}}
			return
		}
		diags, err := collector.Diagnostics()
		if err != nil {
			a.err = err
			return
		}
		if _, err := pipe.Plans(); err != nil {
			a.err = fmt.Errorf("counter planning: %w", err)
			return
		}
		// Trigger the one-time bytecode compile now (a bailout is cached
		// and surfaces as the engine-fallback warning, not an error).
		pipe.EngineFallback()
		a.diags = diags
		a.pipe = pipe
	})
}

// failed reports whether the artifact holds a front-end failure rather
// than a usable pipeline (its diags then carry the findings).
func (a *artifact) failed() bool { return a.pipe == nil }

// cacheKey derives the artifact key: content hash of the source crossed
// with the resolved engine and plan (resolved, so "default" and an
// explicit setting share one artifact).
func cacheKey(src string, eng interp.Engine, strat core.Strategy) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:]) + "|" + eng.String() + "|" + strat.String()
}

// lruCache is a size-bounded LRU of compiled artifacts. Eviction only
// unlinks the entry from the index: requests already holding the pointer
// finish against it, and the next request for that key recompiles.
type lruCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	idx map[string]*list.Element
}

type lruEntry struct {
	key string
	art *artifact
}

func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), idx: make(map[string]*list.Element)}
}

// get returns the artifact for key, creating it on miss; the second
// result reports a hit. The artifact may not be compiled yet — callers
// run artifact.compile, which single-flights.
func (c *lruCache) get(key string) (*artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry).art, true
	}
	art := &artifact{}
	c.idx[key] = c.ll.PushFront(&lruEntry{key: key, art: art})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.idx, oldest.Value.(*lruEntry).key)
	}
	return art, false
}

// drop removes key if it still maps to art — used to un-cache transient
// compile failures without racing a concurrent re-insert.
func (c *lruCache) drop(key string, art *artifact) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok && el.Value.(*lruEntry).art == art {
		c.ll.Remove(el)
		delete(c.idx, key)
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
