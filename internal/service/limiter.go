package service

import (
	"context"
	"errors"
	"sync"
)

// errShed is returned when the wait queue is full: the caller sheds the
// request with 503 + Retry-After instead of letting latency collapse.
var errShed = errors.New("service: at capacity")

// limiter is the global worker-pool admission control: at most `workers`
// analyses run concurrently, at most `queue` more wait for a slot, and
// anything beyond that is shed immediately. Waiting is cancellable, so a
// request whose deadline expires in the queue leaves without running.
type limiter struct {
	sem   chan struct{} // one token per running analysis
	queue chan struct{} // one token per waiting request

	mu      sync.Mutex
	waiting int // current queue occupancy, for the gauge
}

func newLimiter(workers, queue int) *limiter {
	return &limiter{
		sem:   make(chan struct{}, workers),
		queue: make(chan struct{}, queue),
	}
}

// acquire takes a worker slot, waiting in the bounded queue when the pool
// is busy. Returns errShed when the queue is full, or ctx.Err() when the
// context ends first. Every nil return must be paired with release.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return errShed
	}
	l.addWaiting(1)
	defer func() {
		l.addWaiting(-1)
		<-l.queue
	}()
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a worker slot taken by acquire.
func (l *limiter) release() { <-l.sem }

func (l *limiter) addWaiting(d int) {
	l.mu.Lock()
	l.waiting += d
	l.mu.Unlock()
}

// depth reports the current queue occupancy.
func (l *limiter) depth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiting
}

// running reports the number of analyses currently holding a worker slot.
func (l *limiter) running() int { return len(l.sem) }
