// Package service is the long-running analysis daemon behind cmd/ptrand:
// POST a source program to /v1/analyze and get the full paper pipeline back
// — static check diagnostics, the optimized counter plan, TIME/VAR
// estimates, and profile totals — in the same report.Document JSON dialect
// the command-line tools emit.
//
// The production posture lives here rather than in the command: a
// content-hash LRU of compiled artifacts (the per-process vmOnce/plansOnce
// caching generalized across requests, single-flighted per key), a bounded
// worker pool with queue shedding, per-request deadlines threaded as a
// context through core.Pipeline, and graceful shutdown that drains
// in-flight analyses before the listener goes away.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	artstore "repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/report"
)

// Config tunes the service; the zero value gets sensible defaults from New.
type Config struct {
	// Workers bounds concurrently running analyses (≤ 0: GOMAXPROCS).
	Workers int
	// Queue bounds requests waiting for a worker slot; anything beyond is
	// shed with 503 + Retry-After (< 0: 0, i.e. shed when all busy).
	Queue int
	// CacheSize bounds the compiled-artifact LRU (≤ 0: 128 entries).
	CacheSize int
	// RequestTimeout bounds one request end to end — queue wait, compile,
	// profile, estimate (≤ 0: 30s). Cancellation granularity is one
	// pipeline phase or one profiled seed (see core.ProfileCtx).
	RequestTimeout time.Duration
	// MaxSourceBytes bounds the request body (≤ 0: 1 MiB).
	MaxSourceBytes int64
	// MaxSeeds bounds the per-request seed list (≤ 0: 256).
	MaxSeeds int
	// MaxSteps caps every profiled run's step budget; requests may lower
	// it but never raise it (≤ 0: the engine default, 500 million).
	MaxSteps int64
	// Metrics receives the service counters and gauges (nil: obs.Default).
	// Tests hand each Service a private registry for isolation.
	Metrics *obs.Registry
	// DiskCache, when non-nil, is the on-disk compiled-artifact store
	// every compile consults and writes back to (core.LoadOptions.Cache).
	// It is the in-memory LRU's persistent half: entries evicted from the
	// LRU — or lost to a daemon restart — recompile warm from disk instead
	// of cold, per procedure.
	DiskCache *artstore.Store
}

// AnalyzeRequest is the POST /v1/analyze body.
type AnalyzeRequest struct {
	// Source is the program text (required).
	Source string `json:"source"`
	// Engine selects the execution substrate: tree|vm|vm-batch, or empty
	// for the server default (REPRO_ENGINE, then the tree-walker).
	Engine string `json:"engine,omitempty"`
	// Plan selects counter placement: sarkar|ball-larus, or empty for the
	// server default (REPRO_PLAN, then Sarkar).
	Plan string `json:"plan,omitempty"`
	// Seeds are the profiling seeds (empty: seed 1).
	Seeds []uint64 `json:"seeds,omitempty"`
	// MaxSteps lowers the per-run step budget below the server cap.
	MaxSteps int64 `json:"max_steps,omitempty"`
}

// ProcReport is one procedure's slice of the analysis result.
type ProcReport struct {
	Name string `json:"name"`
	// Estimate carries the TIME(START)/VAR(START)/STD_DEV tuple under the
	// NaN-safe metrics encoding (keys "time", "var", "std_dev").
	Estimate report.Metrics `json:"estimate"`
	// Counters is the optimized counter placement, one string per counter.
	Counters []string `json:"counters,omitempty"`
	// Totals is the recovered TOTAL_FREQ profile keyed by condition.
	Totals report.Metrics `json:"totals,omitempty"`
}

// AnalyzeResponse is the POST /v1/analyze reply: the shared report document
// (diagnostics, severity tally, per-request phase spans) plus the
// service-level result.
type AnalyzeResponse struct {
	report.Document
	// Engine and Plan echo the resolved selections ("vm", "sarkar", ...).
	Engine string `json:"engine"`
	Plan   string `json:"plan"`
	// Seeds echoes the profiled seed list (empty on front-end failure).
	Seeds []uint64 `json:"seeds,omitempty"`
	// CacheHit reports whether the compiled artifact was reused.
	CacheHit bool `json:"cache_hit"`
	// Main names the PROGRAM unit whose Time is the whole-program
	// estimate; its ProcReport is in Procs.
	Main string `json:"main,omitempty"`
	// Procs are the per-procedure results, sorted by name.
	Procs []ProcReport `json:"procs,omitempty"`
}

// errorReply is the JSON body of every non-2xx response without a document.
type errorReply struct {
	Error string `json:"error"`
}

// latencyRingSize bounds the sliding window the p50/p99 gauges are computed
// over at scrape time.
const latencyRingSize = 2048

// Service is the analysis daemon. Construct with New; it implements
// http.Handler and is safe for concurrent use.
type Service struct {
	cfg   Config
	mux   *http.ServeMux
	cache *lruCache
	lim   *limiter
	reg   *obs.Registry

	// mu guards closed; wg counts in-flight requests so Shutdown can
	// drain them.
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// latency ring: the last latencyRingSize analyze durations in ms.
	latMu   sync.Mutex
	lat     [latencyRingSize]float64
	latNext int
	latLen  int
}

// New builds a Service from the config, applying defaults for zero fields.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = 1 << 20
	}
	if cfg.MaxSeeds <= 0 {
		cfg.MaxSeeds = 256
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default
	}
	s := &Service{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		cache: newLRUCache(cfg.CacheSize),
		lim:   newLimiter(cfg.Workers, cfg.Queue),
		reg:   cfg.Metrics,
	}
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops admitting requests and waits for in-flight analyses to
// drain, or for ctx to end, whichever comes first. New requests get 503
// the moment it is called.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enter admits one request into the drain group; false means draining.
func (s *Service) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.wg.Add(1)
	return true
}

func (s *Service) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Point-in-time gauges are set at scrape so the registry never needs
	// per-request gauge churn.
	s.reg.SetGauge("service.inflight", float64(s.lim.running()))
	s.reg.SetGauge("service.queue_depth", float64(s.lim.depth()))
	s.reg.SetGauge("service.cache_entries", float64(s.cache.len()))
	p50, p99 := s.latencyQuantiles()
	s.reg.SetGauge("service.latency_p50_ms", p50)
	s.reg.SetGauge("service.latency_p99_ms", p99)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, s.reg); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.enter() {
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.wg.Done()
	s.reg.Add("service.requests_total", 1)
	t0 := time.Now()
	defer func() { s.observeLatency(float64(time.Since(t0)) / float64(time.Millisecond)) }()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	var req AnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxSourceBytes))
			return
		}
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		s.writeError(w, http.StatusBadRequest, "source is required")
		return
	}
	eng, err := interp.ParseEngine(req.Engine)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	strat, err := core.ParseStrategy(req.Plan)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Seeds) > s.cfg.MaxSeeds {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("at most %d seeds per request", s.cfg.MaxSeeds))
		return
	}
	if req.MaxSteps < 0 {
		s.writeError(w, http.StatusBadRequest, "max_steps must be non-negative")
		return
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	steps := s.cfg.MaxSteps
	if req.MaxSteps > 0 && (steps == 0 || req.MaxSteps < steps) {
		steps = req.MaxSteps
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Per-request trace: queue wait, compile (zero-width on a warm hit),
	// profile, estimate. The compiled artifact is shared across requests,
	// so its pipeline carries no trace; the request measures around it.
	tr := obs.NewTrace()

	sp := tr.Start("queue_wait")
	err = s.lim.acquire(ctx)
	sp.End()
	if err != nil {
		if errors.Is(err, errShed) {
			s.reg.Add("service.shed_total", 1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusServiceUnavailable, "queue full, retry later")
			return
		}
		s.reg.Add("service.timeout_total", 1)
		s.writeError(w, http.StatusGatewayTimeout, "timed out waiting for a worker")
		return
	}
	defer s.lim.release()

	resolvedEng := interp.EffectiveEngine(eng)
	resolvedStrat := core.EffectiveStrategy(strat)
	key := cacheKey(req.Source, resolvedEng, resolvedStrat)
	art, hit := s.cache.get(key)
	if hit {
		s.reg.Add("service.cache_hits_total", 1)
	} else {
		s.reg.Add("service.cache_misses_total", 1)
	}
	sp = tr.Start("compile")
	art.compile(req.Source, resolvedEng, resolvedStrat, s.cfg.RequestTimeout, s.cfg.DiskCache)
	sp.End(obs.M("cold_ms", art.compileMs))
	if art.err != nil {
		if art.transient {
			// Do not poison the cache with a deadline-shaped failure: the
			// next request recompiles under its own budget.
			s.cache.drop(key, art)
			s.reg.Add("service.timeout_total", 1)
			s.writeError(w, http.StatusGatewayTimeout, art.err.Error())
			return
		}
		s.reg.Add("service.errors_total", 1)
		s.writeError(w, http.StatusInternalServerError, art.err.Error())
		return
	}
	if art.failed() {
		// Front-end findings: a well-formed 422 carrying the diagnostics
		// document, same dialect as ptranlint.
		resp := &AnalyzeResponse{
			Document: *report.NewDocument("ptrand", art.diags),
			Engine:   resolvedEng.String(),
			Plan:     resolvedStrat.String(),
			CacheHit: hit,
		}
		resp.Spans = tr.Spans()
		s.writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	pipe := art.pipe

	sp = tr.Start("profile")
	prof, _, err := pipe.ProfileCtx(ctx, interp.Options{MaxSteps: steps}, seeds...)
	sp.End(obs.M("seeds", float64(len(seeds))))
	if err != nil {
		if ctx.Err() != nil {
			s.reg.Add("service.timeout_total", 1)
			s.writeError(w, http.StatusGatewayTimeout, "profiling exceeded the request deadline")
			return
		}
		s.reg.Add("service.errors_total", 1)
		s.writeError(w, http.StatusInternalServerError, "profile: "+err.Error())
		return
	}
	sp = tr.Start("estimate")
	est, err := pipe.EstimateWithProfile(prof, cost.Optimized, core.Options{})
	sp.End()
	if err != nil {
		s.reg.Add("service.errors_total", 1)
		s.writeError(w, http.StatusInternalServerError, "estimate: "+err.Error())
		return
	}

	diags := append([]report.Diagnostic(nil), art.diags...)
	if fb, fbErr := pipe.EngineFallback(); fb {
		// The run still succeeded bit-identically on the tree-walker; the
		// degradation is throughput only, so it is a warning, not an error.
		s.reg.Add("service.fallback_responses_total", 1)
		diags = append(diags, report.Diagnostic{
			Severity: report.Warning,
			Pass:     "engine",
			Message:  fmt.Sprintf("bytecode compile bailed out, runs fell back to the tree-walker: %v", fbErr),
			Hint:     "results are bit-identical; only throughput degrades",
		})
	}
	diags = append(diags, est.Diagnostics()...)

	resp := &AnalyzeResponse{
		Document: *report.NewDocument("ptrand", diags),
		Engine:   resolvedEng.String(),
		Plan:     resolvedStrat.String(),
		Seeds:    seeds,
		CacheHit: hit,
	}
	resp.Spans = tr.Spans()
	if est.Main != nil {
		resp.Main = est.Main.A.P.G.Name
	}
	plans, _ := pipe.Plans()
	names := make([]string, 0, len(est.Procs))
	for name := range est.Procs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pe := est.Procs[name]
		pr := ProcReport{
			Name: name,
			Estimate: report.Metrics{
				"time":    pe.Time,
				"var":     pe.Var,
				"std_dev": pe.StdDev(),
			},
		}
		if plan := plans[name]; plan != nil {
			pr.Counters = make([]string, len(plan.Counters))
			for i, c := range plan.Counters {
				pr.Counters[i] = c.String()
			}
		}
		if totals := prof[name]; len(totals) > 0 {
			pr.Totals = make(report.Metrics, len(totals))
			for c, v := range totals {
				pr.Totals[fmt.Sprintf("%v", c)] = v
			}
		}
		resp.Procs = append(resp.Procs, pr)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Service) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Service) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, errorReply{Error: msg})
}

// observeLatency folds one analyze duration into the sliding window.
func (s *Service) observeLatency(ms float64) {
	s.latMu.Lock()
	s.lat[s.latNext] = ms
	s.latNext = (s.latNext + 1) % latencyRingSize
	if s.latLen < latencyRingSize {
		s.latLen++
	}
	s.latMu.Unlock()
}

// latencyQuantiles computes p50/p99 over the window (0,0 when empty).
func (s *Service) latencyQuantiles() (p50, p99 float64) {
	s.latMu.Lock()
	window := append([]float64(nil), s.lat[:s.latLen]...)
	s.latMu.Unlock()
	if len(window) == 0 {
		return 0, 0
	}
	sort.Float64s(window)
	return quantile(window, 0.50), quantile(window, 0.99)
}

// quantile picks the nearest-rank quantile from a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
