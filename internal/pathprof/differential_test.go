package pathprof_test

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/pathprof"
	"repro/internal/profiler"
	"repro/internal/progen"

	// Link the bytecode engines so interp.Run/RunBatch dispatch to them.
	_ "repro/internal/vm"
)

// The differential corpus: every generated program runs path-instrumented
// on all three engines, and the suite checks
//
//   - the raw path counters (dense/sparse storage and the STOP partials,
//     order included) are bit-identical across tree, vm and vm-batch;
//   - edge/node frequencies recovered from path counts equal the exact
//     interpreter totals on every run (==, no tolerance), stopped or not;
//   - the Sarkar-plan recovery agrees with the path recovery bit-for-bit
//     on every run, STOP-terminated ones included: the stop-aware recovery
//     (profiler.Plan.RecoverRun) caps in-flight loops at their observed
//     partial trips and discounts the frozen frames' committed-but-never-
//     reached nodes, so the doConstTrip completion assumption no longer
//     leaks into the totals. A third of the corpus generates with
//     progen.Opts.Stops to keep that path hot.
const corpusSize = 200

// corpusCase checks one generated program across engines and plans.
func corpusCase(t *testing.T, seed uint64) {
	size := 1 + int(seed%8)
	src := progen.GenerateOpts(seed, size, 3, progen.Opts{
		BranchFree: seed%5 == 4,
		ConstLoops: seed%10 == 9,
		Stops:      seed%3 == 1,
	})
	prog, err := lang.Parse(src)
	if err != nil {
		t.Errorf("seed %d: parse: %v", seed, err)
		return
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Errorf("seed %d: lower: %v", seed, err)
		return
	}
	ap, err := analysis.AnalyzeProgram(res)
	if err != nil {
		t.Errorf("seed %d: analyze: %v", seed, err)
		return
	}
	sk, err := profiler.BuildPlans(ap)
	if err != nil {
		t.Errorf("seed %d: sarkar plans: %v", seed, err)
		return
	}
	bl, err := pathprof.BuildPlansWith(ap, sk, pathprof.Options{})
	if err != nil {
		t.Errorf("seed %d: path plans: %v", seed, err)
		return
	}
	spec := bl.Spec()
	profSeeds := []uint64{seed, seed + 1}

	// Reference: the tree-walker, one run per profile seed.
	refs := make([]*interp.Result, len(profSeeds))
	for i, ps := range profSeeds {
		opt := interp.Options{Seed: ps, MaxSteps: 20_000_000, Engine: interp.EngineTree, PathSpec: spec}
		run, err := interp.Run(res, opt)
		if err != nil {
			t.Errorf("seed %d/%d: tree run: %v", seed, ps, err)
			return
		}
		refs[i] = run
		checkRecoveries(t, seed, ps, "tree", ap, sk, bl, run)
	}

	// Single-run VM: bit-identical path counts per seed.
	for i, ps := range profSeeds {
		opt := interp.Options{Seed: ps, MaxSteps: 20_000_000, Engine: interp.EngineVM, PathSpec: spec}
		run, err := interp.Run(res, opt)
		if err != nil {
			t.Errorf("seed %d/%d: vm run: %v", seed, ps, err)
			return
		}
		comparePathRuns(t, seed, ps, "vm", refs[i], run)
		checkRecoveries(t, seed, ps, "vm", ap, sk, bl, run)
	}

	// Batched VM: both profile seeds on one lane, so the second seed
	// exercises the per-seed PathCounts.Reset on reused lane storage.
	runs := make([]*interp.Result, len(profSeeds))
	sink := func(idx int, ps uint64, run *interp.Result, err error) bool {
		if err != nil {
			t.Errorf("seed %d/%d: vm-batch run: %v", seed, ps, err)
			return false
		}
		runs[idx] = run
		return true // retain: we compare after the batch completes
	}
	opt := interp.Options{MaxSteps: 20_000_000, Engine: interp.EngineVMBatch, PathSpec: spec}
	if _, err := interp.RunBatch(res, opt, profSeeds, 1, sink); err != nil {
		t.Errorf("seed %d: vm-batch: %v", seed, err)
		return
	}
	for i, ps := range profSeeds {
		if runs[i] == nil {
			continue
		}
		comparePathRuns(t, seed, ps, "vm-batch", refs[i], runs[i])
		checkRecoveries(t, seed, ps, "vm-batch", ap, sk, bl, runs[i])
	}
}

// checkRecoveries verifies path recovery == exact totals (strict) and
// Sarkar recovery == path recovery, for every run — STOP-terminated runs
// included: the stop-aware Sarkar recovery caps in-flight loops at their
// observed partial trips, so both recoveries agree bit-for-bit.
func checkRecoveries(t *testing.T, seed, ps uint64, engine string,
	ap *analysis.Program, sk profiler.Plans, bl *pathprof.Plans, run *interp.Result) {
	t.Helper()
	pathProf, err := bl.Profile(run)
	if err != nil {
		t.Errorf("seed %d/%d %s: path recovery: %v", seed, ps, engine, err)
		return
	}
	for name, a := range ap.Procs {
		exact := profiler.ExactTotals(a, run)
		got := pathProf[name]
		for c, w := range exact {
			if g := got[c]; g != w {
				t.Errorf("seed %d/%d %s proc %s: path TOTAL%v = %g, exact %g",
					seed, ps, engine, name, c, g, w)
			}
		}
		for c := range got {
			if _, ok := exact[c]; !ok {
				t.Errorf("seed %d/%d %s proc %s: path recovery invented condition %v",
					seed, ps, engine, name, c)
			}
		}
	}
	skProf, err := sk.Profile(run)
	if err != nil {
		t.Errorf("seed %d/%d %s: sarkar recovery: %v", seed, ps, engine, err)
		return
	}
	for name := range ap.Procs {
		got, want := skProf[name], pathProf[name]
		for c, w := range want {
			if g := got[c]; g != w {
				t.Errorf("seed %d/%d %s proc %s: sarkar TOTAL%v = %g, path %g",
					seed, ps, engine, name, c, g, w)
			}
		}
	}
}

// comparePathRuns asserts two runs of the same seed carry bit-identical
// path counters: same storage contents and the same partials in the same
// order, for every procedure.
func comparePathRuns(t *testing.T, seed, ps uint64, engine string, want, got *interp.Result) {
	t.Helper()
	if want.Stopped != got.Stopped || want.Steps != got.Steps {
		t.Errorf("seed %d/%d %s: run diverged: stopped %v/%v steps %d/%d",
			seed, ps, engine, want.Stopped, got.Stopped, want.Steps, got.Steps)
		return
	}
	if !reflect.DeepEqual(want.StopFrames, got.StopFrames) {
		t.Errorf("seed %d/%d %s: stop frames diverged: %+v, want %+v",
			seed, ps, engine, got.StopFrames, want.StopFrames)
		return
	}
	if len(want.Paths) != len(got.Paths) {
		t.Errorf("seed %d/%d %s: %d instrumented procs, tree has %d",
			seed, ps, engine, len(got.Paths), len(want.Paths))
		return
	}
	for name, w := range want.Paths {
		g := got.Paths[name]
		if g == nil {
			t.Errorf("seed %d/%d %s proc %s: missing path counts", seed, ps, engine, name)
			continue
		}
		if d := diffPathCounts(w, g); d != "" {
			t.Errorf("seed %d/%d %s proc %s: %s", seed, ps, engine, name, d)
		}
	}
}

func diffPathCounts(w, g *interp.PathCounts) string {
	if w.NumPaths != g.NumPaths {
		return fmt.Sprintf("NumPaths %d vs %d", g.NumPaths, w.NumPaths)
	}
	switch {
	case w.Dense != nil:
		if g.Dense == nil {
			return "storage kind differs (want dense)"
		}
		for id := range w.Dense {
			if w.Dense[id] != g.Dense[id] {
				return fmt.Sprintf("path %d count %d, want %d", id, g.Dense[id], w.Dense[id])
			}
		}
	case w.Sparse != nil:
		if g.Sparse == nil {
			return "storage kind differs (want sparse)"
		}
		if len(w.Sparse) != len(g.Sparse) {
			return fmt.Sprintf("%d sparse entries, want %d", len(g.Sparse), len(w.Sparse))
		}
		for id, c := range w.Sparse {
			if g.Sparse[id] != c {
				return fmt.Sprintf("path %d count %d, want %d", id, g.Sparse[id], c)
			}
		}
	case w.Pairs != nil:
		if g.Pairs == nil {
			return "storage kind differs (want pairs)"
		}
		if len(w.Pairs) != len(g.Pairs) {
			return fmt.Sprintf("%d pair entries, want %d", len(g.Pairs), len(w.Pairs))
		}
		for k, c := range w.Pairs {
			if g.Pairs[k] != c {
				return fmt.Sprintf("pair %v count %d, want %d", k, g.Pairs[k], c)
			}
		}
	}
	if len(w.Partials) != len(g.Partials) {
		return fmt.Sprintf("%d partials, want %d", len(g.Partials), len(w.Partials))
	}
	for i := range w.Partials {
		if w.Partials[i] != g.Partials[i] {
			return fmt.Sprintf("partial %d = %+v, want %+v (order matters)", i, g.Partials[i], w.Partials[i])
		}
	}
	return ""
}

func TestDifferentialRecoveryCorpus(t *testing.T) {
	n := corpusSize
	if testing.Short() {
		n = 25
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	work := make(chan uint64)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range work {
				corpusCase(t, seed)
			}
		}()
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		work <- seed
	}
	close(work)
	wg.Wait()
}
