package pathprof

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/profiler"
	"repro/internal/wire"
)

// Encode serializes the path plan: the numbering's tables (when the
// procedure is instrumented) or just the fallback marker. The analysis and
// Sarkar-fallback back-pointers are re-attached on decode; the engine-facing
// Spec is rebuilt sharing the numbering's slices, exactly as BuildPlansWith
// does.
func (p *Plan) Encode(w *wire.Writer) {
	if p.N == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	n := p.N
	w.Varint(n.NumPaths)
	w.Uvarint(uint64(len(n.Inc)))
	for id := range n.Inc {
		w.Uvarint(uint64(len(n.Inc[id])))
		for k := range n.Inc[id] {
			w.Varint(n.Inc[id][k])
			w.Bool(n.Bump[id][k])
			w.Varint(n.Reset[id][k])
		}
	}
	w.Uvarint(uint64(len(n.np)))
	for _, v := range n.np {
		w.Varint(v)
	}
	w.Uvarint(uint64(len(n.out)))
	for _, edges := range n.out {
		encodeDagEdges(w, edges)
	}
	encodeDagEdges(w, n.entry)
	headers := make([]cfg.NodeID, 0, len(n.entryVal))
	for h := range n.entryVal {
		headers = append(headers, h)
	}
	sort.Slice(headers, func(i, j int) bool { return headers[i] < headers[j] })
	w.Uvarint(uint64(len(headers)))
	for _, h := range headers {
		w.Varint(int64(h))
		w.Varint(n.entryVal[h])
	}
	backs := make([]cfg.Edge, 0, len(n.backRef))
	for e := range n.backRef {
		backs = append(backs, e)
	}
	sort.Slice(backs, func(i, j int) bool {
		a, b := backs[i], backs[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label < b.Label
	})
	w.Uvarint(uint64(len(backs)))
	for _, e := range backs {
		cfg.EncodeEdge(w, e)
		ref := n.backRef[e]
		w.Varint(int64(ref.From))
		w.Int(ref.K)
	}
}

func encodeDagEdges(w *wire.Writer, edges []dagEdge) {
	w.Uvarint(uint64(len(edges)))
	for _, e := range edges {
		w.Varint(e.val)
		w.Varint(int64(e.to))
		w.Int(e.k)
		w.U8(uint8(e.kind))
		cfg.EncodeEdge(w, cfg.Edge{From: e.back.From, To: e.back.To, Label: e.back.Label})
	}
}

func decodeDagEdges(r *wire.Reader, g *cfg.Graph) []dagEdge {
	n := r.Count(6)
	edges := make([]dagEdge, 0, n)
	for i := 0; i < n; i++ {
		e := dagEdge{
			val:  r.Varint(),
			to:   cfg.NodeID(r.Varint()),
			k:    r.Int(),
			kind: edgeKind(r.U8()),
		}
		e.back = cfg.Edge{From: cfg.NodeID(r.Varint()), To: cfg.NodeID(r.Varint()), Label: cfg.Label(r.String())}
		if r.Err() != nil {
			return edges
		}
		if e.to != cfg.None && g.Node(e.to) == nil {
			r.Failf("dag edge target %d outside graph", e.to)
			return edges
		}
		if e.kind > edgeExitDummy {
			r.Failf("invalid dag edge kind %d", int(e.kind))
			return edges
		}
		edges = append(edges, e)
	}
	return edges
}

// DecodePlan reads a Plan written by Encode, attached to a with the given
// Sarkar fallback.
func DecodePlan(r *wire.Reader, a *analysis.Proc, fallback *profiler.Plan) *Plan {
	p := &Plan{A: a, Fallback: fallback}
	if !r.Bool() {
		return p
	}
	g := a.P.G
	n := &Numbering{
		G:        g,
		entryVal: make(map[cfg.NodeID]int64),
		backRef:  make(map[cfg.Edge]EdgeRef),
	}
	n.NumPaths = r.Varint()
	rows := r.Count(1)
	if r.Err() == nil && rows != int(g.MaxID())+1 {
		r.Failf("path numbering has %d rows, graph wants %d", rows, g.MaxID()+1)
		return p
	}
	n.Inc = make([][]int64, rows)
	n.Bump = make([][]bool, rows)
	n.Reset = make([][]int64, rows)
	for id := 0; id < rows; id++ {
		cols := r.Count(3)
		if r.Err() == nil && id >= 1 && cols != len(g.OutEdges(cfg.NodeID(id))) {
			r.Failf("path numbering row %d has %d columns, graph wants %d", id, cols, len(g.OutEdges(cfg.NodeID(id))))
			return p
		}
		n.Inc[id] = make([]int64, cols)
		n.Bump[id] = make([]bool, cols)
		n.Reset[id] = make([]int64, cols)
		for k := 0; k < cols; k++ {
			n.Inc[id][k] = r.Varint()
			n.Bump[id][k] = r.Bool()
			n.Reset[id][k] = r.Varint()
		}
	}
	nnp := r.Count(1)
	if r.Err() == nil && nnp != rows {
		r.Failf("path np table has %d entries, want %d", nnp, rows)
		return p
	}
	n.np = make([]int64, nnp)
	for i := 0; i < nnp; i++ {
		n.np[i] = r.Varint()
	}
	nout := r.Count(1)
	if r.Err() == nil && nout != rows {
		r.Failf("path out table has %d rows, want %d", nout, rows)
		return p
	}
	n.out = make([][]dagEdge, nout)
	for i := 0; i < nout; i++ {
		n.out[i] = decodeDagEdges(r, g)
	}
	n.entry = decodeDagEdges(r, g)
	nh := r.Count(2)
	for i := 0; i < nh; i++ {
		h := cfg.DecodeNodeID(r, g)
		v := r.Varint()
		if r.Err() != nil {
			return p
		}
		n.entryVal[h] = v
	}
	nb := r.Count(5)
	for i := 0; i < nb; i++ {
		e := cfg.DecodeEdge(r, g)
		ref := EdgeRef{From: cfg.NodeID(r.Varint()), K: r.Int()}
		if r.Err() != nil {
			return p
		}
		if ref.From <= cfg.None || g.Node(ref.From) == nil || ref.K < 0 || ref.K >= len(g.OutEdges(ref.From)) {
			r.Failf("back edge ref (%d,%d) outside graph", ref.From, ref.K)
			return p
		}
		n.backRef[e] = ref
	}
	if r.Err() != nil {
		return p
	}
	p.N = n
	p.Spec = &interp.PathProcSpec{NumPaths: n.NumPaths, Inc: n.Inc, Bump: n.Bump, Reset: n.Reset}
	return p
}

// BuildPlansPrebuilt is BuildPlansWith reusing already-decoded plans for
// procedures present in prebuilt; only the rest pay the numbering
// computation. Decoded plans are re-pointed at the passed fallbacks so the
// Plans value is internally consistent.
func BuildPlansPrebuilt(prog *analysis.Program, fallback profiler.Plans, opts Options, prebuilt map[string]*Plan) (*Plans, error) {
	pl := &Plans{
		ByProc: make(map[string]*Plan, len(prog.Procs)),
		Opts:   opts,
		spec:   &interp.PathSpec{Procs: make(map[string]*interp.PathProcSpec), MultiIter: opts.MultiIter},
	}
	for name, a := range prog.Procs {
		fb := fallback[name]
		if fb == nil {
			return nil, fmt.Errorf("pathprof: no fallback plan for %s", name)
		}
		if p, ok := prebuilt[name]; ok && p != nil {
			p.Fallback = fb
			if p.Spec != nil {
				pl.spec.Procs[name] = p.Spec
			}
			pl.ByProc[name] = p
			continue
		}
		p := &Plan{A: a, Fallback: fb}
		n, err := New(a.P.G, backEdges(a), opts.MaxPaths)
		switch {
		case err == nil:
			p.N = n
			p.Spec = &interp.PathProcSpec{
				NumPaths: n.NumPaths,
				Inc:      n.Inc,
				Bump:     n.Bump,
				Reset:    n.Reset,
			}
			pl.spec.Procs[name] = p.Spec
		case isOverflow(err):
			// Keep the Sarkar fallback; the procedure runs uninstrumented.
		default:
			return nil, err
		}
		pl.ByProc[name] = p
	}
	return pl, nil
}
