// Package pathprof implements Ball–Larus path profiling as a second
// counter-placement strategy next to the paper's per-condition scheme
// (internal/profiler): instead of one counter per control condition, it
// numbers the acyclic paths of each procedure's CFG skeleton so an
// instrumented run pays one register add per taken edge and a single
// counter bump per completed path, then recovers exact edge, node and
// condition frequencies from the path counts alone.
//
// The numbering follows Ball & Larus (MICRO 1996) on the acyclic skeleton
// the interval analysis already certifies: a reducible CFG minus all its
// back edges is a DAG. Each back edge t→h is split into two dummy edges —
// t→EXIT ending the current path and ENTRY→h starting the next one — so
// every dynamic trace decomposes into acyclic paths with ids in
// [0, NumPaths). The multiple-loop-iteration extension (D'Elia &
// Demetrescu, PAPERS.md) is available behind Options.MultiIter: counters
// are keyed by consecutive (previous, current) path pairs per activation,
// exposing cross-iteration chains without changing recovered totals.
package pathprof

import (
	"errors"
	"fmt"

	"repro/internal/cfg"
)

// ErrTooManyPaths reports a procedure whose acyclic path count exceeds the
// configured cap; the planner falls back to the Sarkar plan for it.
var ErrTooManyPaths = errors.New("pathprof: too many acyclic paths")

// edgeKind classifies one ordered out-edge of the numbering DAG.
type edgeKind uint8

const (
	// edgeReal is an original CFG edge that is not a back edge.
	edgeReal edgeKind = iota
	// edgeEntryReal is the virtual edge ENTRY→G.Entry (value 0 by
	// construction, so a fresh activation starts with register 0).
	edgeEntryReal
	// edgeEntryDummy is ENTRY→h for a loop header h: the restart edge
	// after its back edges.
	edgeEntryDummy
	// edgeExitDummy is t→EXIT for one back edge t→h: taking the back edge
	// completes the current path here.
	edgeExitDummy
)

// dagEdge is one out-edge in the numbering DAG, ordered by ascending value.
type dagEdge struct {
	val  int64
	to   cfg.NodeID // cfg.None for exit dummies
	k    int        // OutEdges index for edgeReal, -1 otherwise
	kind edgeKind
	back cfg.Edge // the replaced back edge (edgeExitDummy only)
}

// EdgeRef names one real CFG edge by position: the K-th out-edge of From.
type EdgeRef struct {
	From cfg.NodeID
	K    int
}

// Numbering is the Ball–Larus path numbering of one procedure's CFG
// skeleton. Inc/Bump/Reset are the engine-facing tables, indexed [node][k]
// parallel to the graph's OutEdges (and interp.Counts.Edge).
type Numbering struct {
	G *cfg.Graph
	// NumPaths is the number of acyclic paths; ids are 0..NumPaths-1.
	NumPaths int64
	// Inc[n][k] is the register increment of edge (n,k): the edge's DAG
	// value for forward edges, the exit-dummy value for back edges.
	Inc [][]int64
	// Bump[n][k] marks back edges: the register (plus Inc) is a complete
	// path id there, and the register restarts at Reset[n][k].
	Bump [][]bool
	// Reset[n][k] is the entry-dummy value of the back edge's header.
	Reset [][]int64

	np    []int64     // paths from each node to any skeleton sink
	out   [][]dagEdge // per-node DAG out-edges, ascending val
	entry []dagEdge   // virtual-entry out-edges, ascending val

	entryVal map[cfg.NodeID]int64 // header -> entry-dummy value
	backRef  map[cfg.Edge]EdgeRef // back edge -> its (From, K) position
}

// New numbers the acyclic skeleton of g obtained by removing the given back
// edges. Every back edge must exist in g, and removing them must leave a
// DAG (guaranteed for a reducible CFG with its interval back edges; checked
// regardless). maxPaths caps NumPaths; exceeding it returns
// ErrTooManyPaths so callers can fall back per procedure.
func New(g *cfg.Graph, back []cfg.Edge, maxPaths int64) (*Numbering, error) {
	if maxPaths <= 0 {
		maxPaths = DefaultMaxPaths
	}
	maxID := g.MaxID()
	n := &Numbering{
		G:        g,
		Inc:      make([][]int64, maxID+1),
		Bump:     make([][]bool, maxID+1),
		Reset:    make([][]int64, maxID+1),
		np:       make([]int64, maxID+1),
		out:      make([][]dagEdge, maxID+1),
		entryVal: make(map[cfg.NodeID]int64),
		backRef:  make(map[cfg.Edge]EdgeRef, len(back)),
	}
	isBack := make([][]bool, maxID+1)
	for id := cfg.NodeID(1); id <= maxID; id++ {
		outs := g.OutEdges(id)
		n.Inc[id] = make([]int64, len(outs))
		n.Bump[id] = make([]bool, len(outs))
		n.Reset[id] = make([]int64, len(outs))
		isBack[id] = make([]bool, len(outs))
	}
	// Locate every back edge's position; exitDummies groups them by source
	// in input order, headerSeen dedups entry dummies in input order.
	exitDummies := make([][]cfg.Edge, maxID+1)
	var headers []cfg.NodeID
	headerSeen := make(map[cfg.NodeID]bool)
	for _, be := range back {
		found := false
		for k, oe := range g.OutEdges(be.From) {
			if oe == be {
				if isBack[be.From][k] {
					return nil, fmt.Errorf("pathprof: duplicate back edge %v", be)
				}
				isBack[be.From][k] = true
				n.backRef[be] = EdgeRef{From: be.From, K: k}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("pathprof: back edge %v not in graph", be)
		}
		exitDummies[be.From] = append(exitDummies[be.From], be)
		if !headerSeen[be.To] {
			headerSeen[be.To] = true
			headers = append(headers, be.To)
		}
	}

	order, err := topoOrder(g, isBack)
	if err != nil {
		return nil, err
	}

	// NumPaths per node, in reverse topological order: sinks contribute one
	// path, forward edges their target's count, exit dummies one each.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var total int64
		degree := 0
		for k, oe := range g.OutEdges(v) {
			if isBack[v][k] {
				continue
			}
			degree++
			total = satAdd(total, n.np[oe.To])
		}
		for range exitDummies[v] {
			degree++
			total = satAdd(total, 1)
		}
		if degree == 0 {
			total = 1
		}
		if total > maxPaths {
			return nil, fmt.Errorf("%w: %s node %d has %d", ErrTooManyPaths, g.Name, v, total)
		}
		n.np[v] = total
	}

	// Edge values: within each node, forward out-edges in OutEdges order
	// first, then this node's exit dummies in back-edge order; values are
	// the running prefix sums of the successors' path counts.
	for _, v := range order {
		var run int64
		for k, oe := range g.OutEdges(v) {
			if isBack[v][k] {
				continue
			}
			n.out[v] = append(n.out[v], dagEdge{val: run, to: oe.To, k: k, kind: edgeReal})
			n.Inc[v][k] = run
			run += n.np[oe.To]
		}
		for _, be := range exitDummies[v] {
			n.out[v] = append(n.out[v], dagEdge{val: run, to: cfg.None, k: -1, kind: edgeExitDummy, back: be})
			ref := n.backRef[be]
			n.Inc[ref.From][ref.K] = run
			n.Bump[ref.From][ref.K] = true
			run++
		}
	}

	// Virtual entry: the real entry edge first (value 0, so activations
	// start at register 0), then one entry dummy per distinct header.
	n.entry = append(n.entry, dagEdge{val: 0, to: g.Entry, k: -1, kind: edgeEntryReal})
	total := n.np[g.Entry]
	if total > maxPaths {
		return nil, fmt.Errorf("%w: %s has %d from entry", ErrTooManyPaths, g.Name, total)
	}
	for _, h := range headers {
		n.entry = append(n.entry, dagEdge{val: total, to: h, k: -1, kind: edgeEntryDummy})
		n.entryVal[h] = total
		total = satAdd(total, n.np[h])
		if total > maxPaths {
			return nil, fmt.Errorf("%w: %s has %d", ErrTooManyPaths, g.Name, total)
		}
	}
	n.NumPaths = total

	// Back-edge resets point at their header's entry dummy.
	for be, ref := range n.backRef {
		n.Reset[ref.From][ref.K] = n.entryVal[be.To]
	}
	return n, nil
}

// satAdd adds non-negative int64s, saturating instead of overflowing.
func satAdd(a, b int64) int64 {
	s := a + b
	if s < a {
		return 1<<63 - 1
	}
	return s
}

// topoOrder returns every node in a topological order of the skeleton
// (back edges excluded), or an error when a cycle remains.
func topoOrder(g *cfg.Graph, isBack [][]bool) ([]cfg.NodeID, error) {
	maxID := g.MaxID()
	indeg := make([]int, maxID+1)
	for id := cfg.NodeID(1); id <= maxID; id++ {
		for k, oe := range g.OutEdges(id) {
			if !isBack[id][k] {
				indeg[oe.To]++
			}
		}
	}
	var queue, order []cfg.NodeID
	for id := cfg.NodeID(1); id <= maxID; id++ {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for k, oe := range g.OutEdges(v) {
			if isBack[v][k] {
				continue
			}
			indeg[oe.To]--
			if indeg[oe.To] == 0 {
				queue = append(queue, oe.To)
			}
		}
	}
	if len(order) != g.NumNodes() {
		return nil, fmt.Errorf("pathprof: %s skeleton is not acyclic (%d of %d nodes ordered)",
			g.Name, len(order), g.NumNodes())
	}
	return order, nil
}

// Path is one decoded acyclic path (or prefix).
type Path struct {
	// FromEntry marks paths starting at the procedure entry; otherwise the
	// path resumed at Header after a back edge.
	FromEntry bool
	Header    cfg.NodeID
	// Nodes are the real nodes visited, in order.
	Nodes []cfg.NodeID
	// Edges are the real CFG edges taken, in order.
	Edges []EdgeRef
	// ToExit marks paths ending at a skeleton sink (the procedure's END or
	// a STOP-like sink); otherwise Back is the back edge that ended it.
	ToExit bool
	Back   cfg.Edge
}

// pick returns the unique ordered edge whose value interval contains rem.
// Values ascend, so the match is the last edge with val ≤ rem.
func pick(edges []dagEdge, rem int64) (dagEdge, bool) {
	for i := len(edges) - 1; i >= 0; i-- {
		if edges[i].val <= rem {
			return edges[i], true
		}
	}
	return dagEdge{}, false
}

// DecodePath maps a complete path id back to the unique path it numbers.
func (n *Numbering) DecodePath(id int64) (Path, error) {
	if id < 0 || id >= n.NumPaths {
		return Path{}, fmt.Errorf("pathprof: %s path id %d out of range [0,%d)", n.G.Name, id, n.NumPaths)
	}
	first, ok := pick(n.entry, id)
	if !ok {
		return Path{}, fmt.Errorf("pathprof: %s id %d matches no entry edge", n.G.Name, id)
	}
	p := Path{FromEntry: first.kind == edgeEntryReal}
	if !p.FromEntry {
		p.Header = first.to
	}
	rem := id - first.val
	cur := first.to
	for range n.np { // bounded: a DAG path visits each node at most once
		p.Nodes = append(p.Nodes, cur)
		outs := n.out[cur]
		if len(outs) == 0 {
			if rem != 0 {
				return Path{}, fmt.Errorf("pathprof: %s id %d leaves residue %d at sink %d", n.G.Name, id, rem, cur)
			}
			p.ToExit = true
			return p, nil
		}
		e, ok := pick(outs, rem)
		if !ok {
			return Path{}, fmt.Errorf("pathprof: %s id %d matches no edge at node %d", n.G.Name, id, cur)
		}
		rem -= e.val
		if e.kind == edgeExitDummy {
			if rem != 0 {
				return Path{}, fmt.Errorf("pathprof: %s id %d leaves residue %d at exit dummy", n.G.Name, id, rem)
			}
			p.Back = e.back
			return p, nil
		}
		p.Edges = append(p.Edges, EdgeRef{From: cur, K: e.k})
		cur = e.to
	}
	return Path{}, fmt.Errorf("pathprof: %s id %d decode did not terminate", n.G.Name, id)
}

// DecodePartial maps a (node, register) pair recorded at a STOP unwind back
// to the unique path prefix ending at node. Prefix register values are
// always strictly below the path count of the node they sit at, so the same
// interval rule that decodes complete ids reconstructs the prefix.
func (n *Numbering) DecodePartial(node cfg.NodeID, reg int64) (Path, error) {
	if node <= 0 || int(node) >= len(n.out) {
		return Path{}, fmt.Errorf("pathprof: %s partial at unknown node %d", n.G.Name, node)
	}
	first, ok := pick(n.entry, reg)
	if !ok {
		return Path{}, fmt.Errorf("pathprof: %s partial register %d matches no entry edge", n.G.Name, reg)
	}
	p := Path{FromEntry: first.kind == edgeEntryReal}
	if !p.FromEntry {
		p.Header = first.to
	}
	rem := reg - first.val
	cur := first.to
	for range n.np {
		p.Nodes = append(p.Nodes, cur)
		if cur == node {
			if rem != 0 {
				return Path{}, fmt.Errorf("pathprof: %s partial (%d,%d) leaves residue %d", n.G.Name, node, reg, rem)
			}
			return p, nil
		}
		e, ok := pick(n.out[cur], rem)
		if !ok || e.kind == edgeExitDummy {
			return Path{}, fmt.Errorf("pathprof: %s partial (%d,%d) stuck at node %d", n.G.Name, node, reg, cur)
		}
		rem -= e.val
		p.Edges = append(p.Edges, EdgeRef{From: cur, K: e.k})
		cur = e.to
	}
	return Path{}, fmt.Errorf("pathprof: %s partial (%d,%d) decode did not terminate", n.G.Name, node, reg)
}

// EncodePath is DecodePath's inverse: it sums the values along a decoded
// path back into its id. Prefix paths (from DecodePartial) re-encode to
// their register value.
func (n *Numbering) EncodePath(p Path) int64 {
	var id int64
	if !p.FromEntry {
		id = n.entryVal[p.Header]
	}
	for _, e := range p.Edges {
		id += n.Inc[e.From][e.K]
	}
	if !p.ToExit {
		if ref, ok := n.backRef[p.Back]; ok {
			id += n.Inc[ref.From][ref.K]
		}
	}
	return id
}
