package pathprof

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/paperex"
	"repro/internal/profiler"
)

// Differential programs: each exercises a distinct recovery corner — loops
// with CALLs (paper example), STOP inside a loop (stop-node partials), STOP
// inside a callee (call-node partials in the suspended caller), and
// seed-dependent branching.
const stopInLoopSrc = `      PROGRAM SMAIN
      INTEGER I
      DO 10 I = 1, 100
         IF (I .GE. 4) THEN
            STOP
         ENDIF
   10 CONTINUE
      END
`

const stopInCalleeSrc = `      PROGRAM CMAIN
      INTEGER I, K
      K = 0
      DO 10 I = 1, 50
         CALL BUMP(K)
   10 CONTINUE
      END

      SUBROUTINE BUMP(K)
      INTEGER K
      K = K + 1
      IF (K .GE. 7) THEN
         STOP
      ENDIF
      RETURN
      END
`

const randBranchSrc = `      PROGRAM RMAIN
      INTEGER I, A
      A = 0
      DO 10 I = 1, 200
         IF (RAND() .LT. 0.3) THEN
            A = A + 1
         ELSE
            A = A - 1
         ENDIF
         IF (RAND() .LT. 0.1) THEN
            A = A * 2
         ENDIF
   10 CONTINUE
      END
`

// build parses, lowers and analyzes one source program.
func build(t *testing.T, src string) (*lower.Result, *analysis.Program) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := analysis.AnalyzeProgram(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, ap
}

// checkDifferential runs one seed path-instrumented and asserts the plan's
// recovery is bit-identical to both the exact ground truth and the Sarkar
// plan's recovery, for every procedure. It returns the run for follow-up
// assertions.
func checkDifferential(t *testing.T, res *lower.Result, ap *analysis.Program, pl *Plans, seed uint64) *interp.Result {
	t.Helper()
	run, err := interp.Run(res, interp.Options{Seed: seed, PathSpec: pl.Spec()})
	if err != nil {
		t.Fatal(err)
	}
	sarkar, err := profiler.BuildPlans(ap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.Profile(run)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sarkar.Profile(run)
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range ap.Procs {
		exact := profiler.ExactTotals(a, run)
		if len(got[name]) != len(exact) || len(want[name]) != len(exact) {
			t.Fatalf("%s seed %d: condition count mismatch: path %d, sarkar %d, exact %d",
				name, seed, len(got[name]), len(want[name]), len(exact))
		}
		for c, e := range exact {
			// Strict equality on purpose: recovered totals are integer
			// counts and must be bit-identical across strategies.
			if g := got[name][c]; g != e {
				t.Errorf("%s seed %d: path recovery TOTAL%v = %v, want exact %v", name, seed, c, g, e)
			}
			// The Sarkar recovery is exact on STOP-terminated runs too:
			// RecoverRun reads the run's frozen-frame record and caps the
			// trip rules' run-to-completion assumption at the observed
			// partial trips, matching the path recovery's partials.
			if w := want[name][c]; w != e {
				t.Errorf("%s seed %d: sarkar recovery TOTAL%v = %v, want exact %v", name, seed, c, w, e)
			}
		}
	}
	return run
}

func TestRecoverPaperExample(t *testing.T) {
	res, ap := build(t, paperex.Source)
	pl, err := BuildPlans(ap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range pl.ByProc {
		if !p.Instrumented() {
			t.Fatalf("%s fell back unexpectedly", name)
		}
	}
	run := checkDifferential(t, res, ap, pl, 1)
	if run.Paths["EXMPL"] == nil {
		t.Fatal("no path counts recorded for EXMPL")
	}
	if len(run.Paths["EXMPL"].Partials) != 0 {
		t.Fatalf("unexpected partials: %v", run.Paths["EXMPL"].Partials)
	}
}

func TestRecoverStopInLoop(t *testing.T) {
	res, ap := build(t, stopInLoopSrc)
	pl, err := BuildPlans(ap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := checkDifferential(t, res, ap, pl, 1)
	if !run.Stopped {
		t.Fatal("run did not STOP")
	}
	pc := run.Paths["SMAIN"]
	if pc == nil || len(pc.Partials) != 1 {
		t.Fatalf("want exactly one partial for the stopping frame, got %+v", pc)
	}
}

func TestRecoverStopInCallee(t *testing.T) {
	res, ap := build(t, stopInCalleeSrc)
	pl, err := BuildPlans(ap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := checkDifferential(t, res, ap, pl, 1)
	if !run.Stopped {
		t.Fatal("run did not STOP")
	}
	// The callee stops (stop-node partial) and the caller is cut short at
	// its CALL node (call-node partial).
	if pc := run.Paths["BUMP"]; pc == nil || len(pc.Partials) != 1 {
		t.Fatalf("BUMP partials: %+v", pc)
	}
	if pc := run.Paths["CMAIN"]; pc == nil || len(pc.Partials) != 1 {
		t.Fatalf("CMAIN partials: %+v", pc)
	}
}

func TestRecoverRandBranchesAcrossSeeds(t *testing.T) {
	res, ap := build(t, randBranchSrc)
	pl, err := BuildPlans(ap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		checkDifferential(t, res, ap, pl, seed)
	}
}

func TestRecoverMultiIter(t *testing.T) {
	res, ap := build(t, randBranchSrc)
	pl, err := BuildPlans(ap, Options{MultiIter: true})
	if err != nil {
		t.Fatal(err)
	}
	run := checkDifferential(t, res, ap, pl, 3)
	pc := run.Paths["RMAIN"]
	if pc == nil || pc.Pairs == nil {
		t.Fatal("multi-iteration mode did not record pair counters")
	}
	chained := false
	for k := range pc.Pairs {
		if k.Prev != -1 {
			chained = true
			break
		}
	}
	if !chained {
		t.Fatal("no cross-iteration (prev, cur) pair recorded in a 200-iteration loop")
	}
}

func TestRecoverFallback(t *testing.T) {
	res, ap := build(t, paperex.Source)
	// MaxPaths 1 forces the loopy EXMPL procedure over the cap; the plan
	// must keep its Sarkar fallback and still recover exactly.
	pl, err := BuildPlans(ap, Options{MaxPaths: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pl.ByProc["EXMPL"].Instrumented() {
		t.Fatal("EXMPL should have fallen back at MaxPaths=1")
	}
	run := checkDifferential(t, res, ap, pl, 1)
	ec := pl.MeasureEconomy(run)
	if ec.FallbackProcs == 0 {
		t.Fatal("economy did not count the fallback procedure")
	}
	_ = run
}

func TestHotPaths(t *testing.T) {
	res, ap := build(t, paperex.Source)
	pl, err := BuildPlans(ap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := interp.Run(res, interp.Options{Seed: 1, PathSpec: pl.Spec()})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := pl.HotPaths(run, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) == 0 {
		t.Fatal("no hot paths reported")
	}
	perProc := map[string][]HotPath{}
	for _, h := range hot {
		perProc[h.Proc] = append(perProc[h.Proc], h)
	}
	for name, hs := range perProc {
		if len(hs) > 3 {
			t.Errorf("%s: %d entries exceed k=3", name, len(hs))
		}
		for i := 1; i < len(hs); i++ {
			if hs[i].Count > hs[i-1].Count {
				t.Errorf("%s: hot paths not sorted by count", name)
			}
		}
		for _, h := range hs {
			if len(h.Nodes) == 0 {
				t.Errorf("%s: hot path %d has no nodes", name, h.ID)
			}
		}
	}
	// Of the 9 iterations through CALL FOO, the first runs the entry path
	// and the remaining 8 the header path — the header path dominates.
	if top := perProc["EXMPL"]; len(top) == 0 || top[0].Count != 8 || top[0].FromEntry {
		t.Errorf("EXMPL top path = %+v, want header path with count 8", top)
	}
}

func TestMeasureEconomy(t *testing.T) {
	res, ap := build(t, randBranchSrc)
	pl, err := BuildPlans(ap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := interp.Run(res, interp.Options{Seed: 1, PathSpec: pl.Spec()})
	if err != nil {
		t.Fatal(err)
	}
	ec := pl.MeasureEconomy(run)
	// 200 loop completions plus the entry and exit paths: one bump per
	// completed acyclic path, no partials.
	if ec.Bumps < 200 {
		t.Errorf("Bumps = %d, want >= 200 (one per iteration)", ec.Bumps)
	}
	if ec.Touched == 0 || ec.FallbackProcs != 0 {
		t.Errorf("economy = %+v", ec)
	}
	// A Sarkar plan pays at least one increment per executed counter site;
	// the path plan's bump count must not exceed the exact node steps.
	if ec.Bumps > run.Steps {
		t.Errorf("Bumps %d > Steps %d", ec.Bumps, run.Steps)
	}
}
