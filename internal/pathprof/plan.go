package pathprof

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/cost"
	"repro/internal/freq"
	"repro/internal/interp"
	"repro/internal/profiler"
)

// DefaultMaxPaths caps a procedure's path count: DAG chains of diamonds
// make NumPaths exponential in the block count, so real Ball–Larus
// implementations bound it and fall back per procedure. 2^20 keeps sparse
// counter maps and decode work small while covering the generated corpus.
const DefaultMaxPaths = 1 << 20

// Options configure plan building.
type Options struct {
	// MultiIter keys counters by consecutive (previous, current) path
	// pairs per activation — the multiple-loop-iteration extension.
	// Recovery only reads the current component, so totals are unchanged.
	MultiIter bool
	// MaxPaths caps NumPaths per procedure (0 = DefaultMaxPaths);
	// procedures over the cap fall back to their Sarkar plan.
	MaxPaths int64
}

// Plan is the Ball–Larus counterpart of profiler.Plan for one procedure:
// an instrumentation scheme plus exact recovery of condition totals. A
// procedure whose numbering overflows Options.MaxPaths keeps N == nil and
// recovers through its Sarkar Fallback instead — the hybrid mirrors
// production path profilers.
type Plan struct {
	A *analysis.Proc
	// N is the path numbering; nil when the procedure fell back.
	N *Numbering
	// Spec is the engine-facing instrumentation; nil when fallen back.
	Spec *interp.PathProcSpec
	// Fallback is the procedure's Sarkar plan, used when N is nil.
	Fallback *profiler.Plan
}

// Instrumented reports whether the procedure is path-instrumented (vs
// fallen back to its Sarkar plan).
func (p *Plan) Instrumented() bool { return p.N != nil }

// NumCounters is the plan's static counter-space size: NumPaths for an
// instrumented procedure, the Sarkar counter count otherwise.
func (p *Plan) NumCounters() int64 {
	if p.N != nil {
		return p.N.NumPaths
	}
	return int64(p.Fallback.NumCounters())
}

// Plans holds one path plan per procedure plus the whole-program spec.
// Like profiler.Plans, a Plans value depends only on the analysis and is
// read-only after construction, so it is safe to share across concurrent
// runs.
type Plans struct {
	ByProc map[string]*Plan
	Opts   Options

	spec *interp.PathSpec
}

// BuildPlans numbers every procedure of an analyzed program, building the
// Sarkar fallback plans itself. Callers that already hold profiler plans
// (e.g. core.Pipeline) should use BuildPlansWith to avoid rebuilding them.
func BuildPlans(prog *analysis.Program, opts Options) (*Plans, error) {
	sk, err := profiler.BuildPlans(prog)
	if err != nil {
		return nil, err
	}
	return BuildPlansWith(prog, sk, opts)
}

// BuildPlansWith is BuildPlans reusing prebuilt Sarkar plans as fallbacks.
func BuildPlansWith(prog *analysis.Program, fallback profiler.Plans, opts Options) (*Plans, error) {
	pl := &Plans{
		ByProc: make(map[string]*Plan, len(prog.Procs)),
		Opts:   opts,
		spec:   &interp.PathSpec{Procs: make(map[string]*interp.PathProcSpec), MultiIter: opts.MultiIter},
	}
	for name, a := range prog.Procs {
		fb := fallback[name]
		if fb == nil {
			return nil, fmt.Errorf("pathprof: no fallback plan for %s", name)
		}
		p := &Plan{A: a, Fallback: fb}
		n, err := New(a.P.G, backEdges(a), opts.MaxPaths)
		switch {
		case err == nil:
			p.N = n
			p.Spec = &interp.PathProcSpec{
				NumPaths: n.NumPaths,
				Inc:      n.Inc,
				Bump:     n.Bump,
				Reset:    n.Reset,
			}
			pl.spec.Procs[name] = p.Spec
		case isOverflow(err):
			// Keep the Sarkar fallback; the procedure runs uninstrumented.
		default:
			return nil, err
		}
		pl.ByProc[name] = p
	}
	return pl, nil
}

func isOverflow(err error) bool { return errors.Is(err, ErrTooManyPaths) }

// backEdges collects every interval back edge of the procedure, headers in
// ascending ID order and edges in graph order per header — the
// deterministic order the numbering's dummy edges follow.
func backEdges(a *analysis.Proc) []cfg.Edge {
	var out []cfg.Edge
	for _, h := range a.Intervals.Headers() {
		out = append(out, a.Intervals.BackEdges(h)...)
	}
	return out
}

// Spec returns the whole-program instrumentation for interp/vm runs. The
// returned value is shared and read-only.
func (pl *Plans) Spec() *interp.PathSpec { return pl.spec }

// Profile recovers full per-procedure condition totals from one
// instrumented run: path counts where the procedure is instrumented, the
// Sarkar fallback (readings simulated from the run's exact counts)
// elsewhere. The run must come from the same lowered program.
func (pl *Plans) Profile(run *interp.Result) (profiler.ProgramProfile, error) {
	out := make(profiler.ProgramProfile, len(pl.ByProc))
	for name, p := range pl.ByProc {
		totals, err := p.Recover(run)
		if err != nil {
			return nil, err
		}
		out[name] = totals
	}
	return out, nil
}

// edgeTotals accumulates decoded per-edge counts plus the activation count
// for one procedure.
type edgeTotals struct {
	edge        [][]int64
	activations int64
}

// decodeRun decodes every recorded path (complete and partial) of the
// procedure into exact edge counts and the activation count. Activations
// need no separate counter: every activation contributes exactly one path
// or partial whose decode starts at the real entry rather than an entry
// dummy.
func (p *Plan) decodeRun(pc *interp.PathCounts) (*edgeTotals, error) {
	g := p.A.P.G
	et := &edgeTotals{edge: make([][]int64, g.MaxID()+1)}
	for id := cfg.NodeID(1); id <= g.MaxID(); id++ {
		et.edge[id] = make([]int64, len(g.OutEdges(id)))
	}
	var decErr error
	pc.Each(func(id, count int64) {
		if decErr != nil {
			return
		}
		path, err := p.N.DecodePath(id)
		if err != nil {
			decErr = err
			return
		}
		if path.FromEntry {
			et.activations += count
		}
		for _, e := range path.Edges {
			et.edge[e.From][e.K] += count
		}
		if !path.ToExit {
			// The trailing exit dummy attributes one taking of its back
			// edge; the successor path's entry dummy adds nothing.
			ref := p.N.backRef[path.Back]
			et.edge[ref.From][ref.K] += count
		}
	})
	if decErr != nil {
		return nil, decErr
	}
	for _, part := range pc.Partials {
		path, err := p.N.DecodePartial(part.Node, part.Reg)
		if err != nil {
			return nil, err
		}
		if path.FromEntry {
			et.activations++
		}
		for _, e := range path.Edges {
			et.edge[e.From][e.K]++
		}
	}
	return et, nil
}

// nodeCount derives a node's execution count from edge counts: the sum of
// its taken in-edges, plus one activation's worth when it is the entry.
func (et *edgeTotals) nodeCount(g *cfg.Graph, n cfg.NodeID) int64 {
	total := int64(0)
	if n == g.Entry {
		total = et.activations
	}
	for _, ie := range g.InEdges(n) {
		for k, oe := range g.OutEdges(ie.From) {
			if oe == ie {
				total += et.edge[ie.From][k]
				break
			}
		}
	}
	return total
}

// labelCount sums the counts of node n's out-edges labelled l.
func (et *edgeTotals) labelCount(g *cfg.Graph, n cfg.NodeID, l cfg.Label) int64 {
	total := int64(0)
	for k, oe := range g.OutEdges(n) {
		if oe.Label == l {
			total += et.edge[n][k]
		}
	}
	return total
}

// Recover converts the run's recorded path counts back into the exact
// TOTAL_FREQ of every FCDG control condition — the same mapping
// profiler.ExactTotals applies to uninstrumented counts, sourced purely
// from path data. Fallback procedures recover through their Sarkar plan.
func (p *Plan) Recover(run *interp.Result) (freq.Totals, error) {
	a := p.A
	if p.N == nil {
		return p.Fallback.RecoverRun(run)
	}
	pc := run.Paths[a.P.G.Name]
	if pc == nil {
		return nil, fmt.Errorf("pathprof: run has no path counts for %s (was it started with the plan's Spec?)", a.P.G.Name)
	}
	et, err := p.decodeRun(pc)
	if err != nil {
		return nil, err
	}
	g := a.P.G
	totals := make(freq.Totals)
	for _, c := range a.FCDG.Conditions() {
		switch {
		case c.Label.IsPseudo():
			totals[c] = 0
		case c.Node == a.Ext.Start:
			totals[c] = float64(et.activations)
		case a.Ext.G.Node(c.Node).Type == cfg.Preheader:
			h := a.Ext.HeaderOf[c.Node]
			totals[c] = float64(et.nodeCount(g, h))
		default:
			totals[c] = float64(et.labelCount(g, c.Node, c.Label))
		}
	}
	return totals, nil
}

// HotPath is one entry of a hot-path report: a decoded acyclic path and
// its completion count.
type HotPath struct {
	Proc  string
	ID    int64
	Count int64
	// Nodes is the decoded node sequence.
	Nodes []cfg.NodeID
	// FromEntry/ToExit mirror Path: where the path started and whether it
	// ran to the procedure's end (vs a back edge).
	FromEntry bool
	ToExit    bool
}

// HotPaths returns, for every instrumented procedure, its top-k most
// frequently completed paths, ordered by procedure name, then descending
// count, then ascending id. Partial paths are not ranked.
func (pl *Plans) HotPaths(run *interp.Result, k int) ([]HotPath, error) {
	if k <= 0 {
		k = 5
	}
	names := make([]string, 0, len(pl.ByProc))
	for name := range pl.ByProc {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []HotPath
	for _, name := range names {
		p := pl.ByProc[name]
		if p.N == nil {
			continue
		}
		pc := run.Paths[name]
		if pc == nil {
			continue
		}
		var hps []HotPath
		var decErr error
		pc.Each(func(id, count int64) {
			if decErr != nil || count == 0 {
				return
			}
			path, err := p.N.DecodePath(id)
			if err != nil {
				decErr = err
				return
			}
			hps = append(hps, HotPath{
				Proc: name, ID: id, Count: count,
				Nodes: path.Nodes, FromEntry: path.FromEntry, ToExit: path.ToExit,
			})
		})
		if decErr != nil {
			return nil, decErr
		}
		sort.Slice(hps, func(i, j int) bool {
			if hps[i].Count != hps[j].Count {
				return hps[i].Count > hps[j].Count
			}
			return hps[i].ID < hps[j].ID
		})
		if len(hps) > k {
			hps = hps[:k]
		}
		out = append(out, hps...)
	}
	return out, nil
}

// Economy summarizes the dynamic instrumentation cost of one run under the
// path plans: counter bumps executed (completed paths plus STOP partials)
// and the distinct counters touched. Fallback procedures contribute their
// Sarkar counter increments instead.
type Economy struct {
	// Bumps is the number of counter updates the instrumented run paid.
	Bumps int64
	// Touched is the number of distinct path counters with nonzero counts.
	Touched int64
	// FallbackProcs counts procedures recovered through the Sarkar plan.
	FallbackProcs int
}

// MeasureEconomy computes the run's dynamic counter economy.
func (pl *Plans) MeasureEconomy(run *interp.Result) Economy {
	var ec Economy
	for name, p := range pl.ByProc {
		if p.N == nil {
			ec.FallbackProcs++
			ov := p.Fallback.MeasureOverhead(run, cost.Model{})
			ec.Bumps += ov.Increments + ov.TripAdds
			continue
		}
		if pc := run.Paths[name]; pc != nil {
			b, t := pc.Bumps()
			ec.Bumps += b + int64(len(pc.Partials))
			ec.Touched += t
		}
	}
	return ec
}
