package pathprof

import (
	"fmt"
	"testing"

	"repro/internal/cfg"
)

// buildGraph wires a test CFG from an edge list; entry is node 1 and exit
// the highest node id.
func buildGraph(t *testing.T, nodes int, edges []cfg.Edge) *cfg.Graph {
	t.Helper()
	g := cfg.New("T")
	for i := 0; i < nodes; i++ {
		g.AddNode(cfg.Other, fmt.Sprintf("n%d", i+1))
	}
	for _, e := range edges {
		g.MustAddEdge(e.From, e.To, e.Label)
	}
	g.Entry = 1
	g.Exit = cfg.NodeID(nodes)
	return g
}

// roundTrip checks that every path id decodes, re-encodes to itself, and
// that the decoded paths are pairwise distinct; it also round-trips every
// proper prefix of every decoded path through DecodePartial.
func roundTrip(t *testing.T, n *Numbering) {
	t.Helper()
	seen := make(map[string]int64)
	for id := int64(0); id < n.NumPaths; id++ {
		p, err := n.DecodePath(id)
		if err != nil {
			t.Fatalf("DecodePath(%d): %v", id, err)
		}
		if got := n.EncodePath(p); got != id {
			t.Fatalf("EncodePath(DecodePath(%d)) = %d", id, got)
		}
		key := fmt.Sprintf("%v|%v|%v|%v", p.FromEntry, p.Header, p.Edges, p.Back)
		if prev, dup := seen[key]; dup {
			t.Fatalf("ids %d and %d decode to the same path %s", prev, id, key)
		}
		seen[key] = id
		// Every prefix of the path must decode from its (node, register)
		// pair exactly as the engines would record it at a STOP.
		reg := int64(0)
		if !p.FromEntry {
			reg = n.entryVal[p.Header]
		}
		for i, node := range p.Nodes {
			pp, err := n.DecodePartial(node, reg)
			if err != nil {
				t.Fatalf("DecodePartial(%d, %d) of id %d: %v", node, reg, id, err)
			}
			if len(pp.Edges) != i || pp.FromEntry != p.FromEntry {
				t.Fatalf("DecodePartial(%d, %d) of id %d: got %d edges from-entry=%v, want %d, %v",
					node, reg, id, len(pp.Edges), pp.FromEntry, i, p.FromEntry)
			}
			for j := range pp.Edges {
				if pp.Edges[j] != p.Edges[j] {
					t.Fatalf("DecodePartial(%d, %d) edge %d = %v, want %v", node, reg, j, pp.Edges[j], p.Edges[j])
				}
			}
			if i < len(p.Edges) {
				e := p.Edges[i]
				reg += n.Inc[e.From][e.K]
			}
		}
	}
}

func TestNumberingStraightLine(t *testing.T) {
	g := buildGraph(t, 3, []cfg.Edge{
		{From: 1, To: 2, Label: cfg.Uncond},
		{From: 2, To: 3, Label: cfg.Uncond},
	})
	n, err := New(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumPaths != 1 {
		t.Fatalf("NumPaths = %d, want 1", n.NumPaths)
	}
	roundTrip(t, n)
}

func TestNumberingDiamond(t *testing.T) {
	g := buildGraph(t, 4, []cfg.Edge{
		{From: 1, To: 2, Label: cfg.True},
		{From: 1, To: 3, Label: cfg.False},
		{From: 2, To: 4, Label: cfg.Uncond},
		{From: 3, To: 4, Label: cfg.Uncond},
	})
	n, err := New(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumPaths != 2 {
		t.Fatalf("NumPaths = %d, want 2", n.NumPaths)
	}
	roundTrip(t, n)
}

func TestNumberingSingleLoop(t *testing.T) {
	// 1 -> 2; 2 -T-> 3 -> 2 (back); 2 -F-> 4.
	g := buildGraph(t, 4, []cfg.Edge{
		{From: 1, To: 2, Label: cfg.Uncond},
		{From: 2, To: 3, Label: cfg.True},
		{From: 2, To: 4, Label: cfg.False},
		{From: 3, To: 2, Label: cfg.Uncond},
	})
	back := []cfg.Edge{{From: 3, To: 2, Label: cfg.Uncond}}
	n, err := New(g, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Entry paths: 1-2-3-(back), 1-2-4; header paths: 2-3-(back), 2-4.
	if n.NumPaths != 4 {
		t.Fatalf("NumPaths = %d, want 4", n.NumPaths)
	}
	// The back edge must bump and reset to the header's entry-dummy value.
	ref := n.backRef[back[0]]
	if !n.Bump[ref.From][ref.K] {
		t.Fatal("back edge not marked Bump")
	}
	if n.Reset[ref.From][ref.K] != n.entryVal[2] {
		t.Fatalf("back edge reset = %d, want entry value %d", n.Reset[ref.From][ref.K], n.entryVal[2])
	}
	roundTrip(t, n)
}

func TestNumberingNestedLoops(t *testing.T) {
	// Outer header 2, inner header 3:
	// 1->2; 2-T->3; 3-T->4; 4->3 (back, inner); 3-F->5; 5->2 (back, outer);
	// 2-F->6.
	g := buildGraph(t, 6, []cfg.Edge{
		{From: 1, To: 2, Label: cfg.Uncond},
		{From: 2, To: 3, Label: cfg.True},
		{From: 2, To: 6, Label: cfg.False},
		{From: 3, To: 4, Label: cfg.True},
		{From: 3, To: 5, Label: cfg.False},
		{From: 4, To: 3, Label: cfg.Uncond},
		{From: 5, To: 2, Label: cfg.Uncond},
	})
	back := []cfg.Edge{
		{From: 5, To: 2, Label: cfg.Uncond},
		{From: 4, To: 3, Label: cfg.Uncond},
	}
	n, err := New(g, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, n)
}

func TestNumberingSelfLoopAndMultiBack(t *testing.T) {
	// Node 2 loops on itself twice (T and F of a branch) and falls through
	// via a computed default; both self edges are back edges to the same
	// header, sharing one entry dummy but owning distinct exit dummies.
	g := buildGraph(t, 3, []cfg.Edge{
		{From: 1, To: 2, Label: cfg.Uncond},
		{From: 2, To: 2, Label: cfg.True},
		{From: 2, To: 2, Label: cfg.False},
		{From: 2, To: 3, Label: cfg.Uncond},
	})
	back := []cfg.Edge{
		{From: 2, To: 2, Label: cfg.True},
		{From: 2, To: 2, Label: cfg.False},
	}
	n, err := New(g, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Entry: 1-2-(T back), 1-2-(F back), 1-2-3; header: same three from 2.
	if n.NumPaths != 6 {
		t.Fatalf("NumPaths = %d, want 6", n.NumPaths)
	}
	refT := n.backRef[back[0]]
	refF := n.backRef[back[1]]
	if n.Inc[refT.From][refT.K] == n.Inc[refF.From][refF.K] {
		t.Fatal("distinct back edges must own distinct exit-dummy values")
	}
	roundTrip(t, n)
}

func TestNumberingEntryHeader(t *testing.T) {
	// The entry itself is a loop header: ENTRY->h dummies must not alias
	// the real-entry edge.
	g := buildGraph(t, 2, []cfg.Edge{
		{From: 1, To: 1, Label: cfg.True},
		{From: 1, To: 2, Label: cfg.False},
	})
	back := []cfg.Edge{{From: 1, To: 1, Label: cfg.True}}
	n, err := New(g, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumPaths != 4 {
		t.Fatalf("NumPaths = %d, want 4", n.NumPaths)
	}
	roundTrip(t, n)
}

func TestNumberingOverflow(t *testing.T) {
	// A chain of diamonds doubles the path count per stage; a tight cap
	// must refuse with ErrTooManyPaths.
	var edges []cfg.Edge
	nodes := 1
	for i := 0; i < 8; i++ {
		b := cfg.NodeID(nodes)
		edges = append(edges,
			cfg.Edge{From: b, To: b + 1, Label: cfg.True},
			cfg.Edge{From: b, To: b + 2, Label: cfg.False},
			cfg.Edge{From: b + 1, To: b + 3, Label: cfg.Uncond},
			cfg.Edge{From: b + 2, To: b + 3, Label: cfg.Uncond},
		)
		nodes += 3
	}
	g := buildGraph(t, nodes, edges)
	if _, err := New(g, nil, 16); !isOverflow(err) {
		t.Fatalf("New with cap 16 = %v, want ErrTooManyPaths", err)
	}
	n, err := New(g, nil, 0)
	if err != nil {
		t.Fatalf("New uncapped: %v", err)
	}
	if n.NumPaths != 256 {
		t.Fatalf("NumPaths = %d, want 256", n.NumPaths)
	}
}

func TestNumberingRejectsCyclicSkeleton(t *testing.T) {
	g := buildGraph(t, 3, []cfg.Edge{
		{From: 1, To: 2, Label: cfg.Uncond},
		{From: 2, To: 3, Label: cfg.True},
		{From: 3, To: 2, Label: cfg.Uncond},
		{From: 2, To: 2, Label: cfg.False},
	})
	// Only one of the two cycles is declared a back edge.
	back := []cfg.Edge{{From: 2, To: 2, Label: cfg.False}}
	if _, err := New(g, back, 0); err == nil {
		t.Fatal("New accepted a cyclic skeleton")
	}
}

func TestNumberingRejectsUnknownBackEdge(t *testing.T) {
	g := buildGraph(t, 2, []cfg.Edge{{From: 1, To: 2, Label: cfg.Uncond}})
	if _, err := New(g, []cfg.Edge{{From: 2, To: 1, Label: cfg.Uncond}}, 0); err == nil {
		t.Fatal("New accepted a back edge absent from the graph")
	}
}

// FuzzPathNumbering builds a random acyclic-with-back-edges CFG from the
// fuzz input and checks the encode/decode round trip: every id decodes to
// a unique path that re-encodes to the same id, and every prefix decodes
// through DecodePartial.
func FuzzPathNumbering(f *testing.F) {
	f.Add([]byte{4, 1, 0x13, 0x24})
	f.Add([]byte{6, 2, 0x12, 0x23, 0x34, 0x45, 0x56, 0x42, 0x53})
	f.Add([]byte{3, 0, 0x12, 0x23, 0x13})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		nodes := 2 + int(data[0]%10)
		nBack := int(data[1] % 4)
		rest := data[2:]
		g := cfg.New("F")
		for i := 0; i < nodes; i++ {
			g.AddNode(cfg.Other, fmt.Sprintf("n%d", i+1))
		}
		g.Entry = 1
		g.Exit = cfg.NodeID(nodes)
		labels := []cfg.Label{cfg.Uncond, cfg.True, cfg.False}
		// Forward edges keep the skeleton acyclic by construction: each
		// byte encodes from (high nibble) and to (low nibble), coerced to
		// from < to. Back edges (the trailing nBack entries) are coerced
		// the other way and passed to New as the back-edge set.
		var back []cfg.Edge
		for i, b := range rest {
			u := 1 + int(b>>4)%nodes
			v := 1 + int(b&0xf)%nodes
			if u == v {
				v = v%nodes + 1
			}
			if u == v {
				continue
			}
			isBack := i >= len(rest)-nBack
			if (u > v) != isBack {
				u, v = v, u
			}
			lab := labels[(int(b)+i)%len(labels)]
			if err := g.AddEdge(cfg.NodeID(u), cfg.NodeID(v), lab); err != nil {
				continue // duplicate edge
			}
			if isBack {
				back = append(back, cfg.Edge{From: cfg.NodeID(u), To: cfg.NodeID(v), Label: lab})
			}
		}
		n, err := New(g, back, 1<<16)
		if err != nil {
			// Overflow and malformed inputs are legitimate rejections;
			// the invariant under test is only about accepted numberings.
			return
		}
		if n.NumPaths < 1 {
			t.Fatalf("accepted numbering has NumPaths = %d", n.NumPaths)
		}
		limit := n.NumPaths
		if limit > 2048 {
			limit = 2048
		}
		seen := make(map[string]int64)
		for id := int64(0); id < limit; id++ {
			p, err := n.DecodePath(id)
			if err != nil {
				t.Fatalf("DecodePath(%d): %v", id, err)
			}
			if got := n.EncodePath(p); got != id {
				t.Fatalf("EncodePath(DecodePath(%d)) = %d", id, got)
			}
			key := fmt.Sprintf("%v|%v|%v|%v", p.FromEntry, p.Header, p.Edges, p.Back)
			if prev, dup := seen[key]; dup {
				t.Fatalf("ids %d and %d decode to the same path", prev, id)
			}
			seen[key] = id
		}
	})
}
