// Package wire provides the low-level binary encoding used by the
// compiled-artifact format (internal/artifact and the per-package codecs):
// a little append-only Writer and a bounds-checked, sticky-error Reader.
//
// The encoding is deliberately boring — unsigned varints for counts and
// IDs, zig-zag varints for signed values, IEEE bit patterns for floats,
// length-prefixed strings — because artifact blobs must round-trip
// bit-identically and decode safely from arbitrary (truncated, bit-flipped)
// bytes. Every Reader method is total: malformed input surfaces as a typed
// *Error from Err(), never as a panic, and element counts are validated
// against the remaining payload before any allocation so hostile lengths
// cannot balloon memory.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Error is the typed decode failure every malformed artifact reduces to.
type Error struct {
	// Off is the byte offset at which decoding failed.
	Off int
	// Msg describes the failure.
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("wire: offset %d: %s", e.Off, e.Msg) }

// Writer accumulates an encoded payload. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload. The slice aliases the writer's
// buffer; callers must not write to the Writer afterwards.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Raw appends b verbatim.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a fixed-width little-endian uint32 (format/version fields).
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a signed (zig-zag) varint.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern (exact round-trip).
func (w *Writer) F64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// BytesPrefixed appends a length-prefixed byte slice.
func (w *Writer) BytesPrefixed(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader decodes a payload produced by Writer. The first malformed read
// records a sticky error; all subsequent reads return zero values, so
// decoders can run a straight-line sequence of reads and check Err once
// (or wherever they are about to trust a value).
type Reader struct {
	buf []byte
	off int
	err *Error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky decode error, or nil.
func (r *Reader) Err() error {
	if r.err == nil {
		return nil
	}
	return r.err
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// fail records the sticky error (first failure wins).
func (r *Reader) fail(msg string) {
	if r.err == nil {
		r.err = &Error{Off: r.off, Msg: msg}
	}
}

// Failf records a sticky error from the decoder itself — for semantic
// validation failures (an ID out of range, a count mismatch) discovered
// above the byte level.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = &Error{Off: r.off, Msg: fmt.Sprintf(format, args...)}
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated u8")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Bool reads a bool; any byte other than 0 or 1 is malformed.
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.fail("malformed bool")
		return false
	}
	return v == 1
}

// U32 reads a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("malformed uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("malformed varint")
		return 0
	}
	r.off += n
	return v
}

// Int reads an int-sized signed varint.
func (r *Reader) Int() int { return int(r.Varint()) }

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated f64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.fail("string length exceeds payload")
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// BytesPrefixed reads a length-prefixed byte slice (copied).
func (r *Reader) BytesPrefixed() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail("byte-slice length exceeds payload")
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return b
}

// Count reads an element count and validates it against the remaining
// payload assuming each element occupies at least minBytes (≥ 1) bytes, so
// a fuzzed length cannot trigger a huge allocation. Returns 0 on any
// failure.
func (r *Reader) Count(minBytes int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(r.Remaining()/minBytes) {
		r.fail("element count exceeds payload")
		return 0
	}
	return int(n)
}

// Expect reads len(want) bytes and fails unless they equal want (magic
// numbers).
func (r *Reader) Expect(want []byte) {
	if r.err != nil {
		return
	}
	if r.off+len(want) > len(r.buf) {
		r.fail("truncated magic")
		return
	}
	for i, b := range want {
		if r.buf[r.off+i] != b {
			r.fail("bad magic")
			return
		}
	}
	r.off += len(want)
}
