package interp

import (
	"math"

	"repro/internal/lang"
)

// ConstEnv supplies the scalar variables whose runtime value is known at the
// program point being evaluated. ok=false means "unknown", not "absent".
type ConstEnv func(name string) (Value, bool)

// EvalConst evaluates e exactly as machine.eval would, using only the
// constants env supplies plus folded PARAMETER symbols. It returns ok=true
// only when every execution reaching this program point is guaranteed to
// produce v: any leaf outside env, any nondeterminism (RAND/IRAND), any
// array access, and any expression whose runtime evaluation could fail
// (division by zero, MOD by zero, SQRT/LOG domain errors) all yield
// ok=false. It must stay semantically identical to machine.eval — integer
// arithmetic stays integer with truncating division and ipow, mixed
// arithmetic promotes through Float, relationals compare as float64 — so
// that a static "constant" claim can never disagree with an actual run.
func EvalConst(u *lang.Unit, e lang.Expr, env ConstEnv) (Value, bool) {
	switch x := e.(type) {
	case *lang.IntLit:
		return Int(x.Val), true
	case *lang.RealLit:
		return Real(x.Val), true
	case *lang.LogLit:
		return Logical(x.Val), true
	case *lang.StrLit:
		return Value{}, false // runtime error: string used as value
	case *lang.Var:
		if v, ok := env(x.Name); ok {
			return v, true
		}
		if u != nil {
			if sym, ok := u.Symbols[x.Name]; ok && sym.Kind == lang.SymConst {
				return constValue(sym), true
			}
		}
		return Value{}, false
	case *lang.Index:
		return Value{}, false // array elements are not tracked
	case *lang.Un:
		v, ok := EvalConst(u, x.X, env)
		if !ok {
			return Value{}, false
		}
		switch x.Op {
		case lang.OpNot:
			return Logical(!v.B), true
		case lang.OpNeg:
			if v.T == lang.TInt {
				return Int(-v.I), true
			}
			return Real(-v.R), true
		default:
			return v, true
		}
	case *lang.Bin:
		return evalConstBin(u, x, env)
	case *lang.Intrinsic:
		return evalConstIntrinsic(u, x, env)
	}
	return Value{}, false
}

// evalConstBin mirrors machine.evalBin. Both operands must be known (the
// runtime evaluates both unconditionally, so there is no short-circuiting
// to exploit).
func evalConstBin(u *lang.Unit, x *lang.Bin, env ConstEnv) (Value, bool) {
	l, ok := EvalConst(u, x.L, env)
	if !ok {
		return Value{}, false
	}
	r, ok := EvalConst(u, x.R, env)
	if !ok {
		return Value{}, false
	}
	switch x.Op {
	case lang.OpAnd:
		return Logical(l.B && r.B), true
	case lang.OpOr:
		return Logical(l.B || r.B), true
	case lang.OpEqv:
		return Logical(l.B == r.B), true
	case lang.OpNeqv:
		return Logical(l.B != r.B), true
	}
	if x.Op.Relational() {
		a, b := l.Float(), r.Float()
		if l.T == lang.TInt && r.T == lang.TInt {
			a, b = float64(l.I), float64(r.I)
		}
		switch x.Op {
		case lang.OpLT:
			return Logical(a < b), true
		case lang.OpLE:
			return Logical(a <= b), true
		case lang.OpGT:
			return Logical(a > b), true
		case lang.OpGE:
			return Logical(a >= b), true
		case lang.OpEQ:
			return Logical(a == b), true
		default:
			return Logical(a != b), true
		}
	}
	if l.T == lang.TInt && r.T == lang.TInt {
		switch x.Op {
		case lang.OpAdd:
			return Int(l.I + r.I), true
		case lang.OpSub:
			return Int(l.I - r.I), true
		case lang.OpMul:
			return Int(l.I * r.I), true
		case lang.OpDiv:
			if r.I == 0 {
				return Value{}, false // runtime error
			}
			return Int(l.I / r.I), true
		case lang.OpPow:
			return Int(ipow(l.I, r.I)), true
		}
	}
	a, b := l.Float(), r.Float()
	switch x.Op {
	case lang.OpAdd:
		return Real(a + b), true
	case lang.OpSub:
		return Real(a - b), true
	case lang.OpMul:
		return Real(a * b), true
	case lang.OpDiv:
		if b == 0 {
			return Value{}, false // runtime error
		}
		return Real(a / b), true
	case lang.OpPow:
		return Real(math.Pow(a, b)), true
	}
	return Value{}, false
}

// evalConstIntrinsic mirrors machine.evalIntrinsic for the deterministic
// intrinsics; RAND and IRAND are never foldable.
func evalConstIntrinsic(u *lang.Unit, x *lang.Intrinsic, env ConstEnv) (Value, bool) {
	if x.Name == "RAND" || x.Name == "IRAND" {
		return Value{}, false
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, ok := EvalConst(u, a, env)
		if !ok {
			return Value{}, false
		}
		args[i] = v
	}
	if len(args) == 0 {
		return Value{}, false
	}
	allInt := true
	for _, a := range args {
		if a.T != lang.TInt {
			allInt = false
		}
	}
	switch x.Name {
	case "ABS":
		if args[0].T == lang.TInt {
			if args[0].I < 0 {
				return Int(-args[0].I), true
			}
			return args[0], true
		}
		return Real(math.Abs(args[0].R)), true
	case "MOD":
		if len(args) < 2 {
			return Value{}, false
		}
		if allInt {
			if args[1].I == 0 {
				return Value{}, false // runtime error
			}
			return Int(args[0].I % args[1].I), true
		}
		return Real(math.Mod(args[0].Float(), args[1].Float())), true
	case "SIGN":
		if len(args) < 2 {
			return Value{}, false
		}
		mag := math.Abs(args[0].Float())
		if args[1].Float() < 0 {
			mag = -mag
		}
		if allInt {
			return Int(int64(mag)), true
		}
		return Real(mag), true
	case "MIN", "MAX":
		best := args[0]
		for _, a := range args[1:] {
			better := a.Float() < best.Float()
			if x.Name == "MAX" {
				better = a.Float() > best.Float()
			}
			if better {
				best = a
			}
		}
		if allInt {
			return Int(int64(best.Float())), true
		}
		return Real(best.Float()), true
	case "SQRT":
		v := args[0].Float()
		if v < 0 {
			return Value{}, false // runtime error
		}
		return Real(math.Sqrt(v)), true
	case "EXP":
		return Real(math.Exp(args[0].Float())), true
	case "LOG":
		v := args[0].Float()
		if v <= 0 {
			return Value{}, false // runtime error
		}
		return Real(math.Log(v)), true
	case "SIN":
		return Real(math.Sin(args[0].Float())), true
	case "COS":
		return Real(math.Cos(args[0].Float())), true
	case "INT":
		return Int(int64(args[0].Float())), true
	case "REAL":
		return Real(args[0].Float()), true
	}
	return Value{}, false
}
