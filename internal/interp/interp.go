// Package interp executes lowered programs by walking their control flow
// graphs. It is the substrate that stands in for the paper's IBM 3090:
// "CPU time" is the sum of per-node costs (from a cost.Model) along the
// executed trace, and the exact number of times every node and every
// labelled edge executes is recorded — the ground truth that execution
// profiling approximates and that estimation is validated against.
//
// Semantics follow Fortran 77 where the subset overlaps it: scalars and
// arrays are passed by reference, arrays are 1-based and column-major,
// counted DO loops evaluate their bounds once and run a precomputed trip
// count MAX(0, (hi-lo+step)/step), and integer division truncates.
// The RAND/IRAND intrinsics draw from a seeded 64-bit LCG owned by the
// machine, so every run is reproducible from its seed.
package interp

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/cost"
	"repro/internal/lang"
	"repro/internal/lower"
)

// Value is a runtime scalar value.
type Value struct {
	T lang.Type
	I int64
	R float64
	B bool
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{T: lang.TInt, I: i} }

// Real returns a real Value.
func Real(r float64) Value { return Value{T: lang.TReal, R: r} }

// Logical returns a logical Value.
func Logical(b bool) Value { return Value{T: lang.TLogical, B: b} }

// Float returns the value as float64, promoting integers.
func (v Value) Float() float64 {
	if v.T == lang.TInt {
		return float64(v.I)
	}
	return v.R
}

func (v Value) String() string {
	switch v.T {
	case lang.TInt:
		return fmt.Sprintf("%d", v.I)
	case lang.TLogical:
		if v.B {
			return "T"
		}
		return "F"
	default:
		return fmt.Sprintf("%g", v.R)
	}
}

// Array is runtime array storage: column-major, 1-based in every dimension.
type Array struct {
	Type  lang.Type
	Dims  []int64
	Elems []Value
}

// offset converts 1-based subscripts to a linear index, column-major.
func (a *Array) offset(subs []int64) (int64, error) {
	if len(subs) != len(a.Dims) {
		return 0, fmt.Errorf("array has %d dimensions, indexed with %d", len(a.Dims), len(subs))
	}
	off := int64(0)
	stride := int64(1)
	for d := 0; d < len(subs); d++ {
		if subs[d] < 1 || subs[d] > a.Dims[d] {
			return 0, fmt.Errorf("subscript %d out of bounds 1..%d in dimension %d", subs[d], a.Dims[d], d+1)
		}
		off += (subs[d] - 1) * stride
		stride *= a.Dims[d]
	}
	return off, nil
}

// binding is one name's storage in a frame: a scalar cell or an array.
type binding struct {
	cell *Value
	arr  *Array
}

// frame is one procedure activation. trips is indexed by DO test node ID —
// a dense slice rather than a map so the step loop never hashes or
// allocates while bookkeeping loop state.
type frame struct {
	proc  *lower.Proc
	vars  map[string]*binding
	trips []int64 // remaining trips, indexed by DO test node ID
}

// Engine selects the execution substrate for a run.
type Engine int

const (
	// EngineDefault defers the choice: the REPRO_ENGINE environment
	// variable when set ("tree", "vm" or "vm-batch"), otherwise the
	// tree-walker.
	EngineDefault Engine = iota
	// EngineTree is the reference tree-walking interpreter in this package.
	EngineTree
	// EngineVM is the slot-indexed bytecode VM (internal/vm). Programs the
	// bytecode compiler cannot handle, and runs that set OnNode, silently
	// fall back to the tree-walker with identical results.
	EngineVM
	// EngineVMBatch is the bytecode VM's batched multi-seed runner: whole
	// seed batches execute through one compiled instruction stream on
	// per-lane reusable frames (see RunBatch). Single runs behave exactly
	// like EngineVM.
	EngineVMBatch
)

func (e Engine) String() string {
	switch e {
	case EngineTree:
		return "tree"
	case EngineVM:
		return "vm"
	case EngineVMBatch:
		return "vm-batch"
	}
	return "default"
}

// VMBased reports whether the engine executes on the bytecode VM.
func (e Engine) VMBased() bool { return e == EngineVM || e == EngineVMBatch }

// ErrUnknownEngine is the sentinel wrapped by ParseEngine for any value
// outside tree|vm|vm-batch, so CLIs can detect bad -engine flags with
// errors.Is instead of string matching.
var ErrUnknownEngine = errors.New("unknown engine (want tree|vm|vm-batch)")

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "default":
		return EngineDefault, nil
	case "tree":
		return EngineTree, nil
	case "vm":
		return EngineVM, nil
	case "vm-batch":
		return EngineVMBatch, nil
	}
	return EngineDefault, fmt.Errorf("%w: %q", ErrUnknownEngine, s)
}

// vmRun is installed by internal/vm's init; nil until that package is
// linked in. Registration happens once during package initialization, so
// reads after init need no synchronization.
var vmRun func(*lower.Result, Options) (*Result, error)

// RegisterVMEngine installs the bytecode engine entry point. Called from
// internal/vm's init; not for use by other packages.
func RegisterVMEngine(run func(*lower.Result, Options) (*Result, error)) { vmRun = run }

// BatchSink receives one per-seed outcome from RunBatch: idx is the seed's
// position in the batch, res/err mirror Run's return values. The callee owns
// res only for the duration of the call — batch lanes reuse result storage
// across seeds — unless it returns retain=true, which transfers ownership
// and makes the lane rebuild fresh storage for its next seed. When the
// batch runs on more than one lane, the sink may be called concurrently
// from different lanes; calls never share a res or an idx.
type BatchSink func(idx int, seed uint64, res *Result, err error) (retain bool)

// BatchStats summarizes one RunBatch call.
type BatchStats struct {
	// Seeds is the batch size, Lanes the number of lanes actually used.
	Seeds, Lanes int
	// Steps is the total node executions across all seeds.
	Steps int64
	// ExecNanos is the summed per-lane execution time, sink time excluded —
	// busy nanoseconds, not wall time, when Lanes > 1.
	ExecNanos int64
}

// vmRunBatch is installed by internal/vm's init alongside vmRun.
var vmRunBatch func(*lower.Result, Options, []uint64, int, BatchSink) (BatchStats, error)

// RegisterVMBatchEngine installs the batched bytecode engine entry point.
// Called from internal/vm's init; not for use by other packages.
func RegisterVMBatchEngine(run func(*lower.Result, Options, []uint64, int, BatchSink) (BatchStats, error)) {
	vmRunBatch = run
}

// RunBatch executes one seed batch and reports every per-seed outcome
// through sink, in seed order unless the batch engine shards the batch
// across lanes. Under EngineVMBatch (and no OnNode hook) the whole batch
// runs through the VM's batch runner on up to lanes lanes (≤ 0 means
// GOMAXPROCS); any other engine falls back to a sequential per-seed loop
// with identical sink observations. Each seed's res/err are bit-identical
// to Run with the same Options and that seed.
func RunBatch(res *lower.Result, opt Options, seeds []uint64, lanes int, sink BatchSink) (BatchStats, error) {
	if EffectiveEngine(opt.Engine) == EngineVMBatch && opt.OnNode == nil && opt.OnNodeVals == nil && vmRunBatch != nil {
		return vmRunBatch(res, opt, seeds, lanes, sink)
	}
	stats := BatchStats{Seeds: len(seeds), Lanes: 1}
	o := opt
	for i, s := range seeds {
		o.Seed = s
		t0 := time.Now()
		r, err := Run(res, o)
		stats.ExecNanos += int64(time.Since(t0))
		if r != nil {
			stats.Steps += r.Steps
		}
		if sink != nil {
			// Fallback runs allocate a fresh Result per seed, so retain is
			// a no-op here.
			sink(i, s, r, err)
		}
	}
	return stats, nil
}

var (
	envEngineOnce sync.Once
	envEngine     Engine
)

// defaultEngine resolves EngineDefault against REPRO_ENGINE once.
func defaultEngine() Engine {
	envEngineOnce.Do(func() {
		if e, err := ParseEngine(os.Getenv("REPRO_ENGINE")); err == nil {
			envEngine = e
		}
	})
	return envEngine
}

// EffectiveEngine resolves EngineDefault: the REPRO_ENGINE environment
// variable when set, the tree-walker otherwise.
func EffectiveEngine(e Engine) Engine {
	if e == EngineDefault {
		e = defaultEngine()
	}
	if e == EngineDefault {
		e = EngineTree
	}
	return e
}

// Options configure a run.
type Options struct {
	// Seed seeds the RAND/IRAND generator; runs are reproducible per seed.
	Seed uint64
	// MaxSteps bounds the number of executed nodes (0 = 500 million).
	MaxSteps int64
	// Out receives PRINT output (nil discards it).
	Out io.Writer
	// Model prices executed nodes; nil skips cost accounting.
	Model *cost.Model
	// OnNode, if set, is invoked before each node executes. For OpDoInit
	// nodes trip holds the just-computed trip count, otherwise -1.
	OnNode func(p *lower.Proc, n cfg.NodeID, trip int64)
	// OnNodeCost, if set, is invoked before each node executes with the
	// model cost accumulated so far, the node's own cost included.
	// Requires Model to be set; silently never fires otherwise.
	OnNodeCost func(p *lower.Proc, n cfg.NodeID, costSoFar float64)
	// OnNodeVals, if set, is invoked before each node executes with a
	// getter for the current values of the activation's scalar variables
	// (locals and by-reference parameters; arrays and DO trip registers are
	// not addressable). Like OnNode it forces the tree-walker: the VM keeps
	// no name-addressable frame. Hook-carrying activations run a dedicated
	// copy of the dispatch path (callVals/loopVals) so the closure over the
	// frame's bindings never taints the uninstrumented activation's escape
	// analysis. Incompatible with PathSpec; Run rejects the combination.
	OnNodeVals func(p *lower.Proc, n cfg.NodeID, get func(name string) (Value, bool))
	// Engine selects the execution substrate. Both engines produce
	// bit-identical Results; EngineVM compiles the program to bytecode
	// first (use vm.Compile + Program.Run, or core.Pipeline, to amortize
	// compilation over many seeds).
	Engine Engine
	// PathSpec, when non-nil, adds Ball–Larus path instrumentation (see
	// path.go): the run maintains a per-activation path register and
	// records path-completion counts into Result.Paths. All engines
	// produce bit-identical path counts.
	PathSpec *PathSpec
}

// Counts holds per-procedure execution counts.
type Counts struct {
	// Node[id] is how many times the node executed.
	Node []int64
	// Edge[id][k] is how many times the k-th out-edge of node id (in
	// OutEdges order) was taken.
	Edge [][]int64
	// Activations is how many times the procedure was entered.
	Activations int64
}

// Result summarizes one run.
type Result struct {
	// Steps is the number of node executions.
	Steps int64
	// Cost is the accumulated model cost (0 when Options.Model is nil).
	Cost float64
	// ByProc maps unit name to its execution counts.
	ByProc map[string]*Counts
	// Paths maps unit name to its path-profiling counters; nil unless the
	// run was started with Options.PathSpec, and holds entries only for
	// instrumented procedures.
	Paths map[string]*PathCounts
	// Stopped records whether the run ended via STOP (vs falling off the
	// main program's END).
	Stopped bool
	// StopFrames describes every activation the STOP unwound through,
	// innermost-first: the stopping frame frozen at the STOP node itself,
	// then each suspended caller frozen at its CALL node. Nil unless
	// Stopped. A real instrumented binary dumps the same record from its
	// STOP handler: the return-address chain plus the live DO registers.
	StopFrames []StopFrame
}

// StopFrame is one activation frozen mid-flight by a STOP.
type StopFrame struct {
	// Proc is the unit name of the frozen activation.
	Proc string
	// Node is where the activation froze: the STOP statement node for the
	// innermost frame, the CALL node for suspended callers.
	Node cfg.NodeID
	// Trips holds the frame's live (positive) DO trip registers in
	// ascending test-node order. Remaining counts the iterations that had
	// not completed when the run froze, the in-flight iteration included.
	Trips []TripReg
}

// TripReg is one live DO-loop trip register of a stopped frame.
type TripReg struct {
	Test      cfg.NodeID
	Remaining int64
}

// LabelCount returns how often an edge labelled l was taken from node n in
// proc p (each node has at most one out-edge per label).
func (r *Result) LabelCount(p *lower.Proc, n cfg.NodeID, l cfg.Label) int64 {
	c := r.ByProc[p.G.Name]
	if c == nil || int(n) >= len(c.Edge) {
		return 0
	}
	total := int64(0)
	for k, oe := range p.G.OutEdges(n) {
		if oe.Label == l {
			total += c.Edge[n][k]
		}
	}
	return total
}

// EdgeCount returns the count of the exact edge e in proc p, or 0.
func (r *Result) EdgeCount(p *lower.Proc, e cfg.Edge) int64 {
	c := r.ByProc[p.G.Name]
	if c == nil {
		return 0
	}
	for k, oe := range p.G.OutEdges(e.From) {
		if oe == e {
			return c.Edge[e.From][k]
		}
	}
	return 0
}

// NodeCount returns how often node n of proc p executed.
func (r *Result) NodeCount(p *lower.Proc, n cfg.NodeID) int64 {
	c := r.ByProc[p.G.Name]
	if c == nil || int(n) >= len(c.Node) {
		return 0
	}
	return c.Node[n]
}

// errStop unwinds all frames on STOP.
var errStop = errors.New("stop")

// recordStopFrame captures the frozen position and live DO registers of an
// activation a STOP is unwinding through; frames land innermost-first. The
// frame's trips array is dense by test-node ID, so the scan yields
// ascending test-node order — the order every engine must match.
func (m *machine) recordStopFrame(p *lower.Proc, f *frame, pc cfg.NodeID) {
	sf := StopFrame{Proc: p.G.Name, Node: pc}
	for test, rem := range f.trips {
		if rem > 0 {
			sf.Trips = append(sf.Trips, TripReg{Test: cfg.NodeID(test), Remaining: rem})
		}
	}
	m.result.StopFrames = append(m.result.StopFrames, sf)
}

// RuntimeError is an execution failure with source position context.
type RuntimeError struct {
	Unit string
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error in %s (line %d): %s", e.Unit, e.Line, e.Msg)
}

// machine is the execution engine.
type machine struct {
	res    *lower.Result
	opt    Options
	result *Result
	costs  map[string][]float64 // per-proc node cost table
	rng    uint64
	steps  int64
	max    int64
	depth  int
}

// Run executes the program's main unit to completion.
func Run(res *lower.Result, opt Options) (*Result, error) {
	if res.Main == nil {
		return nil, fmt.Errorf("interp: program has no main unit")
	}
	if opt.OnNodeVals != nil && opt.PathSpec != nil {
		return nil, fmt.Errorf("interp: OnNodeVals cannot be combined with PathSpec")
	}
	// The VM supports Out and OnNodeCost but not OnNode (whose OpDoInit
	// trip argument needs the tree-walker's evaluation order) or OnNodeVals
	// (which needs name-addressable frames); runs that need either stay on
	// the reference engine.
	if EffectiveEngine(opt.Engine).VMBased() && opt.OnNode == nil && opt.OnNodeVals == nil && vmRun != nil {
		return vmRun(res, opt)
	}
	m := &machine{
		res: res,
		opt: opt,
		rng: opt.Seed*2862933555777941757 + 3037000493,
		max: opt.MaxSteps,
		result: &Result{
			ByProc: make(map[string]*Counts),
		},
	}
	if m.max == 0 {
		m.max = 500_000_000
	}
	for name, p := range res.Procs {
		m.result.ByProc[name] = &Counts{
			Node: make([]int64, p.G.MaxID()+1),
			Edge: make([][]int64, p.G.MaxID()+1),
		}
		for id := cfg.NodeID(1); id <= p.G.MaxID(); id++ {
			m.result.ByProc[name].Edge[id] = make([]int64, len(p.G.OutEdges(id)))
		}
		if opt.PathSpec != nil {
			if ps := opt.PathSpec.Procs[name]; ps != nil {
				if m.result.Paths == nil {
					m.result.Paths = make(map[string]*PathCounts)
				}
				m.result.Paths[name] = NewPathCounts(ps, opt.PathSpec.MultiIter)
			}
		}
		if opt.Model != nil {
			if m.costs == nil {
				m.costs = make(map[string][]float64)
			}
			tab := make([]float64, p.G.MaxID()+1)
			for _, n := range p.G.Nodes() {
				if op, ok := n.Payload.(lower.Op); ok {
					tab[n.ID] = opt.Model.NodeCost(op)
				}
			}
			m.costs[name] = tab
		}
	}
	err := m.call(res.Main, nil, nil)
	if errors.Is(err, errStop) {
		m.result.Stopped = true
		err = nil
	}
	m.result.Steps = m.steps
	return m.result, err
}

// call runs one procedure activation. args/argStmt describe the CALL site
// bindings (nil for main).
func (m *machine) call(p *lower.Proc, caller *frame, callStmt *lang.CallStmt) error {
	// Hook-carrying activations run a twin of this function. The frame
	// below must never be mentioned by any value-capturing construct in
	// this function: escape analysis is not path-sensitive, so a single
	// closure over f (or f.vars) would push every activation's frame and
	// binding map to the heap, hook set or not.
	if m.opt.OnNodeVals != nil {
		return m.callVals(p, caller, callStmt)
	}
	m.depth++
	defer func() { m.depth-- }()
	if m.depth > 10000 {
		return &RuntimeError{Unit: p.G.Name, Line: 0, Msg: "call stack overflow (runaway recursion?)"}
	}
	f := &frame{
		proc:  p,
		vars:  make(map[string]*binding, len(p.Unit.Symbols)),
		trips: make([]int64, p.G.MaxID()+1),
	}
	if err := m.bindFrame(f, p, caller, callStmt); err != nil {
		return err
	}

	counts := m.result.ByProc[p.G.Name]
	counts.Activations++
	costs := m.costs[p.G.Name]
	g := p.G
	// Path-instrumented activations run a separate copy of the dispatch
	// loop: keeping the Ball–Larus state and per-edge bookkeeping out of
	// the common loop keeps the uninstrumented hot path at its original
	// register pressure (folding them in costs ~30% tree throughput).
	if m.opt.PathSpec != nil {
		if ps := m.opt.PathSpec.Procs[p.G.Name]; ps != nil {
			return m.loopPaths(p, f, counts, costs, ps)
		}
	}
	pc := g.Entry
	for {
		m.steps++
		if m.steps > m.max {
			return &RuntimeError{Unit: p.G.Name, Line: m.lineOf(p, pc), Msg: "step limit exceeded"}
		}
		counts.Node[pc]++
		if costs != nil {
			m.result.Cost += costs[pc]
			if m.opt.OnNodeCost != nil {
				m.opt.OnNodeCost(p, pc, m.result.Cost)
			}
		}
		op, _ := g.Node(pc).Payload.(lower.Op)
		if m.opt.OnNode != nil {
			trip := int64(-1)
			if di, ok := op.(lower.OpDoInit); ok {
				t, err := m.tripCount(f, di.L)
				if err != nil {
					return err
				}
				trip = t
			}
			m.opt.OnNode(p, pc, trip)
		}
		label, done, err := m.exec(f, pc, op)
		if err != nil {
			if errors.Is(err, errStop) {
				m.recordStopFrame(p, f, pc)
			}
			return err
		}
		if done {
			return nil
		}
		taken := -1
		for k, e := range g.OutEdges(pc) {
			if e.Label == label {
				taken = k
				break
			}
		}
		if taken < 0 {
			return &RuntimeError{Unit: p.G.Name, Line: m.lineOf(p, pc),
				Msg: fmt.Sprintf("no out-edge labelled %s from node %d", label, pc)}
		}
		counts.Edge[pc][taken]++
		pc = g.OutEdges(pc)[taken].To
	}
}

// bindFrame populates a fresh activation frame: parameters bound by
// reference to the CALL site, locals allocated, and passed arrays
// reinterpreted with the callee's declared shape. It must not retain f
// anywhere — both activation paths rely on the frame staying local.
func (m *machine) bindFrame(f *frame, p *lower.Proc, caller *frame, callStmt *lang.CallStmt) error {
	// Bind parameters by reference.
	if callStmt != nil {
		for i, name := range p.Unit.Params {
			b, err := m.argBinding(caller, callStmt.Args[i], p.Unit.Symbols[name], callStmt.Line)
			if err != nil {
				return err
			}
			f.vars[name] = b
		}
	}
	// Allocate locals: every non-param, non-const symbol.
	for name, sym := range p.Unit.Symbols {
		if sym.IsParam || sym.Kind == lang.SymConst {
			continue
		}
		if sym.Kind == lang.SymArray {
			arr, err := m.allocArray(f, sym)
			if err != nil {
				return err
			}
			f.vars[name] = &binding{arr: arr}
		} else {
			f.vars[name] = &binding{cell: &Value{T: sym.Type}}
		}
	}
	// Reinterpret passed arrays with the callee's declared shape (Fortran
	// sequence association for adjustable arrays).
	if callStmt != nil {
		for _, name := range p.Unit.Params {
			sym := p.Unit.Symbols[name]
			b := f.vars[name]
			if sym.Kind != lang.SymArray {
				continue
			}
			if b.arr == nil {
				return &RuntimeError{Unit: p.G.Name, Line: callStmt.Line,
					Msg: fmt.Sprintf("argument for array parameter %s is not an array", name)}
			}
			dims := make([]int64, len(sym.Dims))
			total := int64(1)
			for i, de := range sym.Dims {
				v, err := m.eval(f, de)
				if err != nil {
					return err
				}
				dims[i] = v.I
				total *= v.I
			}
			if total > int64(len(b.arr.Elems)) {
				return &RuntimeError{Unit: p.G.Name, Line: callStmt.Line,
					Msg: fmt.Sprintf("array parameter %s needs %d elements, argument has %d", name, total, len(b.arr.Elems))}
			}
			f.vars[name] = &binding{arr: &Array{Type: b.arr.Type, Dims: dims, Elems: b.arr.Elems}}
		}
	}
	return nil
}

// callVals is machine.call's twin for OnNodeVals-instrumented runs: the
// same activation protocol, but the frame is built here — in a different
// function — so the hook's closure over the binding map only taints this
// path's escape analysis, and it dispatches to loopVals. PathSpec never
// reaches here (Run rejects the combination).
func (m *machine) callVals(p *lower.Proc, caller *frame, callStmt *lang.CallStmt) error {
	m.depth++
	defer func() { m.depth-- }()
	if m.depth > 10000 {
		return &RuntimeError{Unit: p.G.Name, Line: 0, Msg: "call stack overflow (runaway recursion?)"}
	}
	f := &frame{
		proc:  p,
		vars:  make(map[string]*binding, len(p.Unit.Symbols)),
		trips: make([]int64, p.G.MaxID()+1),
	}
	if err := m.bindFrame(f, p, caller, callStmt); err != nil {
		return err
	}
	counts := m.result.ByProc[p.G.Name]
	counts.Activations++
	return m.loopVals(p, f, counts, m.costs[p.G.Name], varsGetter(f.vars))
}

// loopVals is the dispatch loop of an OnNodeVals-instrumented activation.
// It must stay a line-for-line copy of machine.call's loop — steps, costs,
// hooks, counts and error behaviour included — so observing variable
// values never perturbs execution.
func (m *machine) loopVals(p *lower.Proc, f *frame, counts *Counts, costs []float64, getVal func(name string) (Value, bool)) error {
	g := p.G
	pc := g.Entry
	for {
		m.steps++
		if m.steps > m.max {
			return &RuntimeError{Unit: p.G.Name, Line: m.lineOf(p, pc), Msg: "step limit exceeded"}
		}
		counts.Node[pc]++
		if costs != nil {
			m.result.Cost += costs[pc]
			if m.opt.OnNodeCost != nil {
				m.opt.OnNodeCost(p, pc, m.result.Cost)
			}
		}
		op, _ := g.Node(pc).Payload.(lower.Op)
		if m.opt.OnNode != nil {
			trip := int64(-1)
			if di, ok := op.(lower.OpDoInit); ok {
				t, err := m.tripCount(f, di.L)
				if err != nil {
					return err
				}
				trip = t
			}
			m.opt.OnNode(p, pc, trip)
		}
		m.opt.OnNodeVals(p, pc, getVal)
		label, done, err := m.exec(f, pc, op)
		if err != nil {
			if errors.Is(err, errStop) {
				m.recordStopFrame(p, f, pc)
			}
			return err
		}
		if done {
			return nil
		}
		taken := -1
		for k, e := range g.OutEdges(pc) {
			if e.Label == label {
				taken = k
				break
			}
		}
		if taken < 0 {
			return &RuntimeError{Unit: p.G.Name, Line: m.lineOf(p, pc),
				Msg: fmt.Sprintf("no out-edge labelled %s from node %d", label, pc)}
		}
		counts.Edge[pc][taken]++
		pc = g.OutEdges(pc)[taken].To
	}
}

// loopPaths is the dispatch loop of a path-instrumented activation: the
// common loop plus the Ball–Larus path register. It must stay a
// line-for-line copy of machine.call's loop — steps, costs, hooks, counts
// and error behaviour included — so instrumentation never perturbs
// execution.
func (m *machine) loopPaths(p *lower.Proc, f *frame, counts *Counts, costs []float64, ps *PathProcSpec) error {
	// The path register and previous completed path id are per-activation
	// locals, so they recurse correctly through OpCall.
	pcnt := m.result.Paths[p.G.Name]
	var (
		preg  int64
		pprev int64 = -1
	)
	g := p.G
	pc := g.Entry
	for {
		m.steps++
		if m.steps > m.max {
			return &RuntimeError{Unit: p.G.Name, Line: m.lineOf(p, pc), Msg: "step limit exceeded"}
		}
		counts.Node[pc]++
		if costs != nil {
			m.result.Cost += costs[pc]
			if m.opt.OnNodeCost != nil {
				m.opt.OnNodeCost(p, pc, m.result.Cost)
			}
		}
		op, _ := g.Node(pc).Payload.(lower.Op)
		if m.opt.OnNode != nil {
			trip := int64(-1)
			if di, ok := op.(lower.OpDoInit); ok {
				t, err := m.tripCount(f, di.L)
				if err != nil {
					return err
				}
				trip = t
			}
			m.opt.OnNode(p, pc, trip)
		}
		label, done, err := m.exec(f, pc, op)
		if err != nil {
			// A STOP unwinding through this activation cuts its current
			// path short: record the (node, register) prefix — the STOP
			// node itself here, the CALL node in suspended callers.
			if errors.Is(err, errStop) {
				pcnt.Partials = append(pcnt.Partials, PathPartial{Node: pc, Reg: preg})
				m.recordStopFrame(p, f, pc)
			}
			return err
		}
		if done {
			// END completes the activation's final path.
			pcnt.Bump(pprev, preg)
			return nil
		}
		taken := -1
		for k, e := range g.OutEdges(pc) {
			if e.Label == label {
				taken = k
				break
			}
		}
		if taken < 0 {
			return &RuntimeError{Unit: p.G.Name, Line: m.lineOf(p, pc),
				Msg: fmt.Sprintf("no out-edge labelled %s from node %d", label, pc)}
		}
		counts.Edge[pc][taken]++
		preg += ps.Inc[pc][taken]
		if ps.Bump[pc][taken] {
			pcnt.Bump(pprev, preg)
			pprev = preg
			preg = ps.Reset[pc][taken]
		}
		pc = g.OutEdges(pc)[taken].To
	}
}

// varsGetter builds the per-activation scalar accessor OnNodeVals
// receives: one closure per activation, not per node. It captures the
// binding map, never the frame, and is only ever called from callVals —
// mentioning it from machine.call would leak every activation's frame or
// binding map to the heap, hook set or not (escape analysis is not
// path-sensitive), and uninstrumented tree throughput pays for that in
// allocation and GC pressure.
func varsGetter(vars map[string]*binding) func(name string) (Value, bool) {
	return func(name string) (Value, bool) {
		if b, ok := vars[name]; ok && b.cell != nil {
			return *b.cell, true
		}
		return Value{}, false
	}
}

func (m *machine) lineOf(p *lower.Proc, n cfg.NodeID) int {
	if s, ok := p.Stmt[n]; ok {
		return s.Pos()
	}
	return 0
}

// exec runs one node and returns the label of the edge to take, or done for
// OpEnd.
func (m *machine) exec(f *frame, pc cfg.NodeID, op lower.Op) (cfg.Label, bool, error) {
	switch o := op.(type) {
	case lower.OpNop:
		return cfg.Uncond, false, nil
	case lower.OpEnd:
		return "", true, nil
	case lower.OpReturn:
		return cfg.Uncond, false, nil // edge leads to END
	case lower.OpStop:
		return "", false, errStop
	case lower.OpAssign:
		if err := m.assign(f, o.S); err != nil {
			return "", false, err
		}
		return cfg.Uncond, false, nil
	case lower.OpPrint:
		if err := m.print(f, o.S); err != nil {
			return "", false, err
		}
		return cfg.Uncond, false, nil
	case lower.OpBranch:
		v, err := m.eval(f, o.Cond)
		if err != nil {
			return "", false, err
		}
		if v.B {
			return cfg.True, false, nil
		}
		return cfg.False, false, nil
	case lower.OpArithIf:
		v, err := m.eval(f, o.E)
		if err != nil {
			return "", false, err
		}
		x := v.Float()
		switch {
		case x < 0:
			return lower.LabelNeg, false, nil
		case x == 0:
			return lower.LabelZero, false, nil
		default:
			return lower.LabelPos, false, nil
		}
	case lower.OpComputedGoto:
		v, err := m.eval(f, o.E)
		if err != nil {
			return "", false, err
		}
		if v.I >= 1 && v.I <= int64(o.N) {
			return lower.GotoCase(int(v.I)), false, nil
		}
		return lower.LabelDefault, false, nil
	case lower.OpDoInit:
		trip, err := m.tripCount(f, o.L)
		if err != nil {
			return "", false, err
		}
		lo, err := m.eval(f, o.L.Lo)
		if err != nil {
			return "", false, err
		}
		if err := m.setScalar(f, o.L.Var, Int(lo.I)); err != nil {
			return "", false, err
		}
		f.trips[o.Test] = trip
		return cfg.Uncond, false, nil
	case lower.OpDoTest:
		if f.trips[o.Key] > 0 {
			return cfg.True, false, nil
		}
		return cfg.False, false, nil
	case lower.OpDoIncr:
		step := int64(1)
		if o.L.Step != nil {
			v, err := m.eval(f, o.L.Step)
			if err != nil {
				return "", false, err
			}
			step = v.I
		}
		cur, err := m.scalar(f, o.L.Var)
		if err != nil {
			return "", false, err
		}
		if err := m.setScalar(f, o.L.Var, Int(cur.I+step)); err != nil {
			return "", false, err
		}
		f.trips[o.Test]--
		return cfg.Uncond, false, nil
	case lower.OpCall:
		callee, ok := m.res.Procs[o.S.Name]
		if !ok {
			return "", false, &RuntimeError{Unit: f.proc.G.Name, Line: o.S.Line,
				Msg: fmt.Sprintf("no subroutine %s", o.S.Name)}
		}
		if err := m.call(callee, f, o.S); err != nil {
			return "", false, err
		}
		return cfg.Uncond, false, nil
	}
	return "", false, &RuntimeError{Unit: f.proc.G.Name, Line: m.lineOf(f.proc, pc),
		Msg: fmt.Sprintf("node %d has no executable payload", pc)}
}

// tripCount computes the F77 trip count of a DO loop in the current frame.
func (m *machine) tripCount(f *frame, l *lang.DoLoop) (int64, error) {
	lo, err := m.eval(f, l.Lo)
	if err != nil {
		return 0, err
	}
	hi, err := m.eval(f, l.Hi)
	if err != nil {
		return 0, err
	}
	step := int64(1)
	if l.Step != nil {
		v, err := m.eval(f, l.Step)
		if err != nil {
			return 0, err
		}
		step = v.I
	}
	if step == 0 {
		return 0, &RuntimeError{Unit: f.proc.G.Name, Line: l.Line, Msg: "DO step is zero"}
	}
	trip := (hi.I - lo.I + step) / step
	if trip < 0 {
		trip = 0
	}
	return trip, nil
}

func (m *machine) allocArray(f *frame, sym *lang.Symbol) (*Array, error) {
	dims := make([]int64, len(sym.Dims))
	total := int64(1)
	for i, de := range sym.Dims {
		v, err := m.eval(f, de)
		if err != nil {
			return nil, err
		}
		if v.I < 1 {
			return nil, &RuntimeError{Unit: f.proc.G.Name, Line: 0,
				Msg: fmt.Sprintf("array %s has non-positive extent %d", sym.Name, v.I)}
		}
		dims[i] = v.I
		total *= v.I
	}
	if total > 50_000_000 {
		return nil, &RuntimeError{Unit: f.proc.G.Name, Line: 0,
			Msg: fmt.Sprintf("array %s too large (%d elements)", sym.Name, total)}
	}
	elems := make([]Value, total)
	for i := range elems {
		elems[i].T = sym.Type
	}
	return &Array{Type: sym.Type, Dims: dims, Elems: elems}, nil
}

// argBinding prepares the binding a callee parameter receives.
func (m *machine) argBinding(caller *frame, arg lang.Expr, paramSym *lang.Symbol, line int) (*binding, error) {
	switch a := arg.(type) {
	case *lang.Var:
		if b, ok := caller.vars[a.Name]; ok {
			// Whole array or scalar by reference.
			if b.arr != nil || paramSym.Kind != lang.SymArray {
				return b, nil
			}
		}
		// PARAMETER constant passed by value-copy.
		if sym, ok := caller.proc.Unit.Symbols[a.Name]; ok && sym.Kind == lang.SymConst {
			v, err := m.eval(caller, a)
			if err != nil {
				return nil, err
			}
			return &binding{cell: &v}, nil
		}
		if b, ok := caller.vars[a.Name]; ok {
			return b, nil
		}
		return nil, &RuntimeError{Unit: caller.proc.G.Name, Line: line,
			Msg: fmt.Sprintf("undefined argument %s", a.Name)}
	case *lang.Index:
		cellPtr, err := m.elemPtr(caller, a)
		if err != nil {
			return nil, err
		}
		return &binding{cell: cellPtr}, nil
	default:
		v, err := m.eval(caller, arg)
		if err != nil {
			return nil, err
		}
		return &binding{cell: &v}, nil
	}
}

func (m *machine) elemPtr(f *frame, ix *lang.Index) (*Value, error) {
	b, ok := f.vars[ix.Name]
	if !ok || b.arr == nil {
		return nil, &RuntimeError{Unit: f.proc.G.Name, Line: 0,
			Msg: fmt.Sprintf("%s is not an array", ix.Name)}
	}
	subs := make([]int64, len(ix.Subs))
	for i, se := range ix.Subs {
		v, err := m.eval(f, se)
		if err != nil {
			return nil, err
		}
		subs[i] = v.I
	}
	off, err := b.arr.offset(subs)
	if err != nil {
		return nil, &RuntimeError{Unit: f.proc.G.Name, Line: 0,
			Msg: fmt.Sprintf("%s: %v", ix.Name, err)}
	}
	return &b.arr.Elems[off], nil
}

func (m *machine) assign(f *frame, s *lang.Assign) error {
	v, err := m.eval(f, s.RHS)
	if err != nil {
		return err
	}
	switch lhs := s.LHS.(type) {
	case *lang.Var:
		return m.setScalar(f, lhs.Name, v)
	case *lang.Index:
		cell, err := m.elemPtr(f, lhs)
		if err != nil {
			return err
		}
		*cell = convert(v, cell.T)
		return nil
	}
	return &RuntimeError{Unit: f.proc.G.Name, Line: s.Line, Msg: "bad assignment target"}
}

func (m *machine) scalar(f *frame, name string) (Value, error) {
	if b, ok := f.vars[name]; ok && b.cell != nil {
		return *b.cell, nil
	}
	if sym, ok := f.proc.Unit.Symbols[name]; ok && sym.Kind == lang.SymConst {
		return constValue(sym), nil
	}
	return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0,
		Msg: fmt.Sprintf("no scalar %s", name)}
}

func (m *machine) setScalar(f *frame, name string, v Value) error {
	b, ok := f.vars[name]
	if !ok || b.cell == nil {
		return &RuntimeError{Unit: f.proc.G.Name, Line: 0,
			Msg: fmt.Sprintf("cannot assign to %s", name)}
	}
	*b.cell = convert(v, b.cell.T)
	return nil
}

func constValue(sym *lang.Symbol) Value {
	switch cv := sym.ConstValue.(type) {
	case int64:
		return Int(cv)
	case float64:
		return Real(cv)
	}
	return Value{}
}

// Convert coerces v to type t (Fortran assignment conversion). Exported so
// the bytecode engine shares the exact store semantics of the tree-walker.
func Convert(v Value, t lang.Type) Value { return convert(v, t) }

// Ipow is F77 integer exponentiation, shared with the bytecode engine.
func Ipow(base, exp int64) int64 { return ipow(base, exp) }

// ConstSymbolValue returns the runtime value of a folded PARAMETER symbol.
func ConstSymbolValue(sym *lang.Symbol) Value { return constValue(sym) }

// convert coerces v to type t (Fortran assignment conversion).
func convert(v Value, t lang.Type) Value {
	if v.T == t || t == lang.TNone {
		return v
	}
	switch t {
	case lang.TInt:
		return Int(int64(v.Float()))
	case lang.TReal:
		return Real(v.Float())
	}
	return v
}

func (m *machine) print(f *frame, s *lang.Print) error {
	if m.opt.Out == nil {
		// Still evaluate for effect parity (RAND advances, errors surface).
		for _, e := range s.Items {
			if _, err := m.eval(f, e); err != nil {
				return err
			}
		}
		return nil
	}
	parts := make([]any, 0, len(s.Items))
	for _, e := range s.Items {
		if sl, ok := e.(*lang.StrLit); ok {
			parts = append(parts, sl.Val)
			continue
		}
		v, err := m.eval(f, e)
		if err != nil {
			return err
		}
		parts = append(parts, v.String())
	}
	fmt.Fprintln(m.opt.Out, parts...)
	return nil
}

// eval evaluates an expression in frame f.
func (m *machine) eval(f *frame, e lang.Expr) (Value, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return Int(x.Val), nil
	case *lang.RealLit:
		return Real(x.Val), nil
	case *lang.LogLit:
		return Logical(x.Val), nil
	case *lang.StrLit:
		return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0, Msg: "string used as value"}
	case *lang.Var:
		return m.scalar(f, x.Name)
	case *lang.Index:
		cell, err := m.elemPtr(f, x)
		if err != nil {
			return Value{}, err
		}
		return *cell, nil
	case *lang.Un:
		v, err := m.eval(f, x.X)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case lang.OpNot:
			return Logical(!v.B), nil
		case lang.OpNeg:
			if v.T == lang.TInt {
				return Int(-v.I), nil
			}
			return Real(-v.R), nil
		default:
			return v, nil
		}
	case *lang.Bin:
		return m.evalBin(f, x)
	case *lang.Intrinsic:
		return m.evalIntrinsic(f, x)
	}
	return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0,
		Msg: fmt.Sprintf("cannot evaluate %T", e)}
}

func (m *machine) evalBin(f *frame, x *lang.Bin) (Value, error) {
	l, err := m.eval(f, x.L)
	if err != nil {
		return Value{}, err
	}
	r, err := m.eval(f, x.R)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case lang.OpAnd:
		return Logical(l.B && r.B), nil
	case lang.OpOr:
		return Logical(l.B || r.B), nil
	case lang.OpEqv:
		return Logical(l.B == r.B), nil
	case lang.OpNeqv:
		return Logical(l.B != r.B), nil
	}
	if x.Op.Relational() {
		a, b := l.Float(), r.Float()
		if l.T == lang.TInt && r.T == lang.TInt {
			a, b = float64(l.I), float64(r.I)
		}
		switch x.Op {
		case lang.OpLT:
			return Logical(a < b), nil
		case lang.OpLE:
			return Logical(a <= b), nil
		case lang.OpGT:
			return Logical(a > b), nil
		case lang.OpGE:
			return Logical(a >= b), nil
		case lang.OpEQ:
			return Logical(a == b), nil
		default:
			return Logical(a != b), nil
		}
	}
	// Arithmetic with INTEGER -> REAL promotion.
	if l.T == lang.TInt && r.T == lang.TInt {
		switch x.Op {
		case lang.OpAdd:
			return Int(l.I + r.I), nil
		case lang.OpSub:
			return Int(l.I - r.I), nil
		case lang.OpMul:
			return Int(l.I * r.I), nil
		case lang.OpDiv:
			if r.I == 0 {
				return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0, Msg: "integer division by zero"}
			}
			return Int(l.I / r.I), nil
		case lang.OpPow:
			return Int(ipow(l.I, r.I)), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch x.Op {
	case lang.OpAdd:
		return Real(a + b), nil
	case lang.OpSub:
		return Real(a - b), nil
	case lang.OpMul:
		return Real(a * b), nil
	case lang.OpDiv:
		if b == 0 {
			return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0, Msg: "division by zero"}
		}
		return Real(a / b), nil
	case lang.OpPow:
		return Real(math.Pow(a, b)), nil
	}
	return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0,
		Msg: fmt.Sprintf("bad operator %v", x.Op)}
}

// ipow is F77 integer exponentiation: negative exponents yield 0 except for
// bases 1 and -1.
func ipow(base, exp int64) int64 {
	if exp < 0 {
		switch base {
		case 1:
			return 1
		case -1:
			if exp%2 == 0 {
				return 1
			}
			return -1
		default:
			return 0
		}
	}
	out := int64(1)
	for ; exp > 0; exp-- {
		out *= base
	}
	return out
}

func (m *machine) evalIntrinsic(f *frame, x *lang.Intrinsic) (Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := m.eval(f, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	allInt := true
	for _, a := range args {
		if a.T != lang.TInt {
			allInt = false
		}
	}
	switch x.Name {
	case "ABS":
		if args[0].T == lang.TInt {
			if args[0].I < 0 {
				return Int(-args[0].I), nil
			}
			return args[0], nil
		}
		return Real(math.Abs(args[0].R)), nil
	case "MOD":
		if allInt {
			if args[1].I == 0 {
				return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0, Msg: "MOD by zero"}
			}
			return Int(args[0].I % args[1].I), nil
		}
		return Real(math.Mod(args[0].Float(), args[1].Float())), nil
	case "SIGN":
		mag := math.Abs(args[0].Float())
		if args[1].Float() < 0 {
			mag = -mag
		}
		if allInt {
			return Int(int64(mag)), nil
		}
		return Real(mag), nil
	case "MIN", "MAX":
		best := args[0]
		for _, a := range args[1:] {
			better := a.Float() < best.Float()
			if x.Name == "MAX" {
				better = a.Float() > best.Float()
			}
			if better {
				best = a
			}
		}
		if allInt {
			return Int(int64(best.Float())), nil
		}
		return Real(best.Float()), nil
	case "SQRT":
		v := args[0].Float()
		if v < 0 {
			return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0, Msg: "SQRT of negative value"}
		}
		return Real(math.Sqrt(v)), nil
	case "EXP":
		return Real(math.Exp(args[0].Float())), nil
	case "LOG":
		v := args[0].Float()
		if v <= 0 {
			return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0, Msg: "LOG of non-positive value"}
		}
		return Real(math.Log(v)), nil
	case "SIN":
		return Real(math.Sin(args[0].Float())), nil
	case "COS":
		return Real(math.Cos(args[0].Float())), nil
	case "INT":
		return Int(int64(args[0].Float())), nil
	case "REAL":
		return Real(args[0].Float()), nil
	case "RAND":
		return Real(m.rand()), nil
	case "IRAND":
		n := args[0].I
		if n < 1 {
			return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0, Msg: "IRAND needs a positive bound"}
		}
		return Int(1 + int64(m.rand()*float64(n))), nil
	}
	return Value{}, &RuntimeError{Unit: f.proc.G.Name, Line: 0,
		Msg: fmt.Sprintf("unknown intrinsic %s", x.Name)}
}

// rand draws the next value of the 64-bit LCG in [0, 1).
func (m *machine) rand() float64 {
	m.rng = m.rng*6364136223846793005 + 1442695040888963407
	return float64(m.rng>>11) / float64(1<<53)
}
