package interp

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/paperex"
)

func TestSmokeRunPaperExample(t *testing.T) {
	prog, err := lang.Parse(paperex.Source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Main.G.String())
	r, err := Run(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("steps=%d", r.Steps)
}

func TestSmokeDoLoop(t *testing.T) {
	src := `      PROGRAM P
      INTEGER I, S
      S = 0
      DO 10 I = 1, 5
      S = S + I
   10 CONTINUE
      PRINT *, S
      END
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := Run(res, Options{Out: &out}); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "15" {
		t.Fatalf("output = %q, want 15", out.String())
	}
}
