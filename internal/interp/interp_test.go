package interp

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/lang"
	"repro/internal/lower"
)

// runSrc parses, lowers and runs a program, returning its PRINT output.
func runSrc(t *testing.T, src string, opt Options) (string, *Result) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	var out strings.Builder
	opt.Out = &out
	r, err := Run(res, opt)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return strings.TrimSpace(out.String()), r
}

// runErr expects a runtime error containing want.
func runErr(t *testing.T, src, want string) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	_, err = Run(res, Options{MaxSteps: 100000})
	if err == nil {
		t.Fatalf("run succeeded, want error %q\n%s", want, src)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error = %v, want substring %q", err, want)
	}
}

func prog(body string) string { return "      PROGRAM T\n" + body + "      END\n" }

func TestArithmeticAndPromotion(t *testing.T) {
	out, _ := runSrc(t, prog(`      INTEGER I
      REAL X
      I = 7/2
      PRINT *, I
      I = -7/2
      PRINT *, I
      X = 7/2
      PRINT *, X
      X = 7.0/2
      PRINT *, X
      I = 2**10
      PRINT *, I
      X = 2.0**0.5
      PRINT *, X
      I = 2**(-1)
      PRINT *, I
`), Options{})
	want := []string{"3", "-3", "3", "3.5", "1024", "1.4142135623730951", "0"}
	got := strings.Split(out, "\n")
	if len(got) != len(want) {
		t.Fatalf("output = %q", out)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestIntrinsics(t *testing.T) {
	out, _ := runSrc(t, prog(`      INTEGER I
      REAL X
      I = MOD(17, 5)
      PRINT *, I
      I = MOD(-17, 5)
      PRINT *, I
      X = MOD(7.5, 2.0)
      PRINT *, X
      I = ABS(-3)
      PRINT *, I
      X = ABS(-2.5)
      PRINT *, X
      I = MIN(3, 1, 2)
      PRINT *, I
      I = MAX(3, 1, 2)
      PRINT *, I
      X = MIN(1.5, 2)
      PRINT *, X
      I = INT(3.9)
      PRINT *, I
      I = INT(-3.9)
      PRINT *, I
      X = SIGN(2.0, -1.0)
      PRINT *, X
      X = SQRT(16.0)
      PRINT *, X
`), Options{})
	want := []string{"2", "-2", "1.5", "3", "2.5", "1", "3", "1.5", "3", "-3", "-2", "4"}
	got := strings.Split(out, "\n")
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestArraysColumnMajorAndBounds(t *testing.T) {
	out, _ := runSrc(t, prog(`      INTEGER A(3,2), I, J, K
      K = 0
      DO 10 J = 1, 2
         DO 20 I = 1, 3
            K = K + 1
            A(I,J) = K
   20    CONTINUE
   10 CONTINUE
      PRINT *, A(1,1), A(3,1), A(1,2), A(3,2)
`), Options{})
	if out != "1 3 4 6" {
		t.Errorf("column-major fill = %q, want \"1 3 4 6\"", out)
	}
	runErr(t, prog(`      INTEGER A(3)
      A(4) = 1
`), "out of bounds")
	runErr(t, prog(`      INTEGER A(3)
      A(0) = 1
`), "out of bounds")
}

func TestDoLoopSemantics(t *testing.T) {
	// Zero-trip, negative step, bounds evaluated once, variable after loop.
	out, _ := runSrc(t, prog(`      INTEGER I, N, S
      S = 0
      DO 10 I = 5, 1
         S = S + 1
   10 CONTINUE
      PRINT *, S
      S = 0
      DO 20 I = 10, 1, -3
         S = S + I
   20 CONTINUE
      PRINT *, S
      N = 3
      S = 0
      DO 30 I = 1, N
         N = 100
         S = S + 1
   30 CONTINUE
      PRINT *, S
      PRINT *, I
`), Options{})
	lines := strings.Split(out, "\n")
	if lines[0] != "0" {
		t.Errorf("zero-trip loop ran %s times", lines[0])
	}
	if lines[1] != "22" { // 10+7+4+1
		t.Errorf("negative step sum = %s, want 22", lines[1])
	}
	if lines[2] != "3" {
		t.Errorf("F77 trip count must be fixed at entry: body ran %s times", lines[2])
	}
	if lines[3] != "4" { // I after completing DO 1..3 is 4
		t.Errorf("loop variable after exit = %s, want 4", lines[3])
	}
	runErr(t, prog(`      INTEGER I, K
      K = 0
      DO 10 I = 1, 5, K
   10 CONTINUE
`), "DO step is zero")
}

func TestByReferenceSemantics(t *testing.T) {
	src := `      PROGRAM T
      INTEGER I, A(3)
      I = 1
      A(2) = 5
      CALL BUMP(I)
      PRINT *, I
      CALL BUMP(A(2))
      PRINT *, A(2)
      CALL BUMP(I + 1)
      PRINT *, I
      CALL FILL(A, 3)
      PRINT *, A(1), A(3)
      END

      SUBROUTINE BUMP(N)
      INTEGER N
      N = N + 1
      RETURN
      END

      SUBROUTINE FILL(V, N)
      INTEGER N, V(N), J
      DO 10 J = 1, N
         V(J) = 7
   10 CONTINUE
      RETURN
      END
`
	out, _ := runSrc(t, src, Options{})
	lines := strings.Split(out, "\n")
	if lines[0] != "2" {
		t.Errorf("scalar by reference: %s", lines[0])
	}
	if lines[1] != "6" {
		t.Errorf("array element by reference: %s", lines[1])
	}
	if lines[2] != "2" {
		t.Errorf("expression argument must not write back: %s", lines[2])
	}
	if lines[3] != "7 7" {
		t.Errorf("whole-array passing: %s", lines[3])
	}
}

func TestSequenceAssociation(t *testing.T) {
	// A 2x3 array viewed as a 6-vector in the callee (column-major).
	src := `      PROGRAM T
      INTEGER A(2,3), I, J, K
      K = 0
      DO 10 J = 1, 3
         DO 20 I = 1, 2
            K = K + 1
            A(I,J) = K
   20    CONTINUE
   10 CONTINUE
      CALL ASVEC(A, 6)
      END

      SUBROUTINE ASVEC(V, N)
      INTEGER N, V(N)
      PRINT *, V(1), V(2), V(6)
      RETURN
      END
`
	out, _ := runSrc(t, src, Options{})
	if out != "1 2 6" {
		t.Errorf("sequence association = %q, want \"1 2 6\"", out)
	}
	// Callee claiming MORE elements than passed is an error.
	bad := strings.Replace(src, "CALL ASVEC(A, 6)", "CALL ASVEC(A, 7)", 1)
	runErr(t, bad, "needs 7 elements")
}

func TestStopUnwinds(t *testing.T) {
	src := `      PROGRAM T
      CALL DEEP
      PRINT *, 'unreachable'
      END

      SUBROUTINE DEEP
      STOP
      RETURN
      END
`
	out, r := runSrc(t, src, Options{})
	if out != "" {
		t.Errorf("output after STOP: %q", out)
	}
	if !r.Stopped {
		t.Error("Stopped flag not set")
	}
}

func TestComputedGotoFallthrough(t *testing.T) {
	out, _ := runSrc(t, prog(`      INTEGER K
      K = 5
      GOTO (10, 20), K
      PRINT *, 'fall'
      GOTO 30
   10 PRINT *, 'one'
      GOTO 30
   20 PRINT *, 'two'
   30 CONTINUE
`), Options{})
	if out != "fall" {
		t.Errorf("out-of-range computed GOTO = %q, want fall-through", out)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	src := prog(`      REAL X
      X = RAND()
      PRINT *, X
`)
	a, _ := runSrc(t, src, Options{Seed: 42})
	b, _ := runSrc(t, src, Options{Seed: 42})
	c, _ := runSrc(t, src, Options{Seed: 43})
	if a != b {
		t.Errorf("same seed differs: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("different seeds agree: %q", a)
	}
	runErr(t, prog("      I = IRAND(0)\n"), "positive bound")
}

func TestRuntimeErrors(t *testing.T) {
	runErr(t, prog("      INTEGER I\n      I = 1/(I-I)\n"), "division by zero")
	runErr(t, prog("      X = 1.0/(X-X)\n"), "division by zero")
	runErr(t, prog("      X = SQRT(-1.0)\n"), "negative")
	runErr(t, prog("      X = LOG(0.0)\n"), "non-positive")
	runErr(t, prog("      I = MOD(1, 0)\n"), "MOD by zero")
	runErr(t, prog(`      INTEGER I
      I = 0
   10 I = I + 1
      IF (I .GT. -1) GOTO 10
`), "step limit")
}

func TestRunawayRecursionCaught(t *testing.T) {
	src := `      PROGRAM T
      CALL R
      END

      SUBROUTINE R
      CALL R
      RETURN
      END
`
	progAst, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(progAst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(res, Options{}); err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v, want stack overflow", err)
	}
}

func TestCostAccounting(t *testing.T) {
	src := prog(`      INTEGER I, S
      S = 0
      DO 10 I = 1, 4
         S = S + 1
   10 CONTINUE
`)
	progAst, _ := lang.Parse(src)
	res, _ := lower.Lower(progAst)
	m := cost.Unit
	r, err := Run(res, Options{Model: &m})
	if err != nil {
		t.Fatal(err)
	}
	// Under the unit model cost == steps.
	if r.Cost != float64(r.Steps) {
		t.Errorf("unit model cost %g != steps %d", r.Cost, r.Steps)
	}
	// Without a model, cost stays zero.
	r2, err := Run(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cost != 0 {
		t.Errorf("cost without model = %g", r2.Cost)
	}
	if r2.Steps != r.Steps {
		t.Errorf("steps differ with/without model: %d vs %d", r2.Steps, r.Steps)
	}
}

func TestLogicalOpsAndPrint(t *testing.T) {
	out, _ := runSrc(t, prog(`      LOGICAL A, B
      A = .TRUE.
      B = .FALSE.
      PRINT *, A, B, A .AND. B, A .OR. B, A .EQV. B, A .NEQV. B, .NOT. B
      PRINT *, 'literal', 42, 1.5
`), Options{})
	lines := strings.Split(out, "\n")
	if lines[0] != "T F F T F T T" {
		t.Errorf("logical line = %q", lines[0])
	}
	if lines[1] != "literal 42 1.5" {
		t.Errorf("print line = %q", lines[1])
	}
}

func TestActivationCounts(t *testing.T) {
	src := `      PROGRAM T
      INTEGER I
      DO 10 I = 1, 5
         CALL S
   10 CONTINUE
      END

      SUBROUTINE S
      RETURN
      END
`
	_, r := runSrc(t, src, Options{})
	if got := r.ByProc["S"].Activations; got != 5 {
		t.Errorf("S activations = %d, want 5", got)
	}
	if got := r.ByProc["T"].Activations; got != 1 {
		t.Errorf("T activations = %d, want 1", got)
	}
}

func TestLabelCountAndEdgeCount(t *testing.T) {
	src := prog(`      INTEGER I, S
      S = 0
      DO 10 I = 1, 6
         IF (MOD(I, 2) .EQ. 0) S = S + 1
   10 CONTINUE
`)
	progAst, _ := lang.Parse(src)
	res, _ := lower.Lower(progAst)
	r, err := Run(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Main
	// Find the IF node and check T was taken 3 times, F 3 times.
	for _, n := range p.G.Nodes() {
		if strings.HasPrefix(n.Name, "IF (MOD") {
			if tc := r.LabelCount(p, n.ID, "T"); tc != 3 {
				t.Errorf("T count = %d, want 3", tc)
			}
			if fc := r.LabelCount(p, n.ID, "F"); fc != 3 {
				t.Errorf("F count = %d, want 3", fc)
			}
		}
	}
}
