package interp

import "repro/internal/cfg"

// Ball–Larus path profiling: engine-facing instrumentation spec and counter
// storage. The numbering itself (dummy-edge construction, increment values,
// decode back to edge frequencies) lives in internal/pathprof; this file
// only defines the contract both execution engines implement so that a
// path-instrumented run is bit-identical across the tree-walker, the VM and
// the batched VM.
//
// The runtime protocol per activation: a path register r starts at 0; taking
// the k-th out-edge of node n adds Inc[n][k]; when Bump[n][k] is set (back
// edges) the counter for path id r is bumped and r restarts at Reset[n][k]
// (the entry-dummy value of the loop header); executing END bumps the
// counter for the final r. A STOP unwinding through live activations records
// one (node, r) partial per instrumented frame, innermost first — the node
// is the STOP node for the stopping frame and the CALL node for each
// suspended caller — so recovery stays exact on stopped runs.

// PathDenseLimit is the NumPaths bound below which engines use a dense
// counter array; larger numberings fall back to a sparse map keyed by path
// id. 4096 keeps per-seed zeroing cheap in batch lanes while covering the
// generated corpus almost entirely.
const PathDenseLimit = 4096

// PathProcSpec instruments one procedure. Inc/Bump/Reset are indexed
// [node][k] parallel to Counts.Edge (the k-th out-edge of node in OutEdges
// order), so both engines apply them exactly where they already count edges.
type PathProcSpec struct {
	// NumPaths is the number of acyclic paths (valid counter ids are
	// 0..NumPaths-1).
	NumPaths int64
	// Inc is the Ball–Larus increment of each out-edge.
	Inc [][]int64
	// Bump marks back edges: taking one completes the current path (bump
	// counter r+Inc) and restarts the register at Reset.
	Bump [][]bool
	// Reset is the restart value after a Bump edge (the header's
	// entry-dummy value); 0 elsewhere.
	Reset [][]int64
}

// PathSpec is the whole-program instrumentation handed to a run via
// Options.PathSpec. Procedures absent from Procs (or mapped to nil) run
// uninstrumented — the planner falls back per procedure when a numbering
// overflows.
type PathSpec struct {
	Procs map[string]*PathProcSpec
	// MultiIter enables the multiple-loop-iteration extension (D'Elia &
	// Demetrescu): counters are keyed by consecutive (previous, current)
	// path-id pairs per activation instead of single ids, exposing
	// cross-iteration chains. Recovery uses only the current component, so
	// exactness is unaffected.
	MultiIter bool
}

// PathPair keys a multi-iteration counter: the previous completed path of
// the same activation (-1 when none) and the current one.
type PathPair struct {
	Prev, Cur int64
}

// PathPartial records a path prefix cut short by STOP: the node the frame
// was suspended at and the path register value there.
type PathPartial struct {
	Node cfg.NodeID
	Reg  int64
}

// PathCounts is the per-procedure counter state of one run. Exactly one of
// Dense, Sparse or Pairs is non-nil, fixed by the spec at run start.
type PathCounts struct {
	NumPaths int64
	// Dense[id] counts completions of path id (NumPaths ≤ PathDenseLimit).
	Dense []int64
	// Sparse holds the same keyed by id for large numberings.
	Sparse map[int64]int64
	// Pairs holds (prev, cur) pair counts under PathSpec.MultiIter.
	Pairs map[PathPair]int64
	// Partials lists prefixes cut short by STOP, innermost frame first.
	Partials []PathPartial
}

// NewPathCounts builds empty counter storage for one instrumented procedure.
func NewPathCounts(ps *PathProcSpec, multiIter bool) *PathCounts {
	pc := &PathCounts{NumPaths: ps.NumPaths}
	switch {
	case multiIter:
		pc.Pairs = make(map[PathPair]int64)
	case ps.NumPaths <= PathDenseLimit:
		pc.Dense = make([]int64, ps.NumPaths)
	default:
		pc.Sparse = make(map[int64]int64)
	}
	return pc
}

// Reset zeroes every counter and drops recorded partials, reusing the
// underlying storage — the batch engine's per-seed clear.
func (pc *PathCounts) Reset() {
	switch {
	case pc.Pairs != nil:
		clear(pc.Pairs)
	case pc.Dense != nil:
		for i := range pc.Dense {
			pc.Dense[i] = 0
		}
	default:
		clear(pc.Sparse)
	}
	pc.Partials = pc.Partials[:0]
}

// Bump records one completed path. prev is the activation's previously
// completed path id (-1 when none); it is only consulted in pair mode.
func (pc *PathCounts) Bump(prev, id int64) {
	switch {
	case pc.Pairs != nil:
		pc.Pairs[PathPair{Prev: prev, Cur: id}]++
	case pc.Dense != nil:
		pc.Dense[id]++
	default:
		pc.Sparse[id]++
	}
}

// Total returns the completion count of path id, summing over pair keys in
// multi-iteration mode.
func (pc *PathCounts) Total(id int64) int64 {
	switch {
	case pc.Pairs != nil:
		var n int64
		for k, c := range pc.Pairs {
			if k.Cur == id {
				n += c
			}
		}
		return n
	case pc.Dense != nil:
		if id >= 0 && id < int64(len(pc.Dense)) {
			return pc.Dense[id]
		}
		return 0
	default:
		return pc.Sparse[id]
	}
}

// Each calls f once per path id with a nonzero completion count, aggregating
// pair keys by their current component. Iteration order is unspecified for
// sparse and pair storage.
func (pc *PathCounts) Each(f func(id, count int64)) {
	switch {
	case pc.Pairs != nil:
		agg := make(map[int64]int64, len(pc.Pairs))
		for k, c := range pc.Pairs {
			agg[k.Cur] += c
		}
		for id, c := range agg {
			f(id, c)
		}
	case pc.Dense != nil:
		for id, c := range pc.Dense {
			if c != 0 {
				f(int64(id), c)
			}
		}
	default:
		for id, c := range pc.Sparse {
			f(id, c)
		}
	}
}

// Bumps returns the total number of counter bumps recorded (completed
// paths; partials excluded) and the number of distinct counters touched.
func (pc *PathCounts) Bumps() (bumps, touched int64) {
	add := func(c int64) {
		if c != 0 {
			bumps += c
			touched++
		}
	}
	switch {
	case pc.Pairs != nil:
		for _, c := range pc.Pairs {
			add(c)
		}
	case pc.Dense != nil:
		for _, c := range pc.Dense {
			add(c)
		}
	default:
		for _, c := range pc.Sparse {
			add(c)
		}
	}
	return bumps, touched
}
