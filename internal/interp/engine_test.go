package interp_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"

	// Link the bytecode engine into this test binary so the internal
	// interp tests exercise the VM dispatch path when REPRO_ENGINE=vm is
	// set (the tier-1 VM leg in CI).
	_ "repro/internal/vm"
)

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in   string
		want interp.Engine
		ok   bool
	}{
		{"", interp.EngineDefault, true},
		{"default", interp.EngineDefault, true},
		{"tree", interp.EngineTree, true},
		{"vm", interp.EngineVM, true},
		{"vm-batch", interp.EngineVMBatch, true},
		{"jit", 0, false},
	}
	for _, c := range cases {
		got, err := interp.ParseEngine(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseEngine(%q) succeeded, want error", c.in)
		}
	}
}

func TestEngineString(t *testing.T) {
	if interp.EngineTree.String() != "tree" || interp.EngineVM.String() != "vm" ||
		interp.EngineVMBatch.String() != "vm-batch" || interp.EngineDefault.String() != "default" {
		t.Errorf("unexpected engine names: %v %v %v %v",
			interp.EngineDefault, interp.EngineTree, interp.EngineVM, interp.EngineVMBatch)
	}
}

func TestEngineVMBased(t *testing.T) {
	if interp.EngineTree.VMBased() || interp.EngineDefault.VMBased() {
		t.Error("tree/default must not report VM-based")
	}
	if !interp.EngineVM.VMBased() || !interp.EngineVMBatch.VMBased() {
		t.Error("vm and vm-batch must report VM-based")
	}
}

func TestEffectiveEngineResolvesExplicit(t *testing.T) {
	if got := interp.EffectiveEngine(interp.EngineTree); got != interp.EngineTree {
		t.Errorf("EffectiveEngine(tree) = %v", got)
	}
	if got := interp.EffectiveEngine(interp.EngineVM); got != interp.EngineVM {
		t.Errorf("EffectiveEngine(vm) = %v", got)
	}
}

// TestVMDispatchFromInterp runs the same program through interp.Run on
// both engines; with the vm package linked, Engine: EngineVM must route to
// the bytecode engine and still produce identical results.
func TestVMDispatchFromInterp(t *testing.T) {
	src := `      PROGRAM P
      INTEGER I, S
      S = 0
      DO 10 I = 1, 100
      S = S + I
   10 CONTINUE
      END
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := interp.Run(res, interp.Options{Engine: interp.EngineTree})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []interp.Engine{interp.EngineVM, interp.EngineVMBatch} {
		vmr, err := interp.Run(res, interp.Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Steps != vmr.Steps || tree.Stopped != vmr.Stopped {
			t.Fatalf("engines disagree: tree steps %d, %v steps %d", tree.Steps, eng, vmr.Steps)
		}
	}
}

// TestRunBatchDispatch drives interp.RunBatch on every engine: the batch
// engine routes whole batches to the VM's batch runner, the others loop
// per seed; every sink observation must match per-seed interp.Run.
func TestRunBatchDispatch(t *testing.T) {
	src := `      PROGRAM P
      INTEGER I, S
      S = 0
      DO 10 I = 1, 50
      S = S + IRAND(9)
   10 CONTINUE
      END
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	want := make([]*interp.Result, len(seeds))
	for i, s := range seeds {
		want[i], err = interp.Run(res, interp.Options{Seed: s, Engine: interp.EngineTree})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
	}
	for _, eng := range []interp.Engine{interp.EngineTree, interp.EngineVM, interp.EngineVMBatch} {
		// The batch engine may call the sink concurrently from its lanes.
		var calls atomic.Int64
		stats, err := interp.RunBatch(res, interp.Options{Engine: eng}, seeds, 3,
			func(idx int, seed uint64, r *interp.Result, rerr error) bool {
				if rerr != nil {
					t.Errorf("%v seed %d: %v", eng, seed, rerr)
					return false
				}
				if seed != seeds[idx] {
					t.Errorf("%v: idx %d got seed %d want %d", eng, idx, seed, seeds[idx])
				}
				if r.Steps != want[idx].Steps || r.Cost != want[idx].Cost {
					t.Errorf("%v seed %d: steps %d cost %v, want %d %v",
						eng, seed, r.Steps, r.Cost, want[idx].Steps, want[idx].Cost)
				}
				calls.Add(1)
				return false
			})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if int(calls.Load()) != len(seeds) || stats.Seeds != len(seeds) {
			t.Fatalf("%v: %d sink calls, stats.Seeds %d, want %d", eng, calls.Load(), stats.Seeds, len(seeds))
		}
		if eng != interp.EngineVMBatch && stats.Lanes != 1 {
			t.Fatalf("%v: fallback lanes = %d, want 1", eng, stats.Lanes)
		}
	}
}
