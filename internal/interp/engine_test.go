package interp_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"

	// Link the bytecode engine into this test binary so the internal
	// interp tests exercise the VM dispatch path when REPRO_ENGINE=vm is
	// set (the tier-1 VM leg in CI).
	_ "repro/internal/vm"
)

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in   string
		want interp.Engine
		ok   bool
	}{
		{"", interp.EngineDefault, true},
		{"default", interp.EngineDefault, true},
		{"tree", interp.EngineTree, true},
		{"vm", interp.EngineVM, true},
		{"jit", 0, false},
	}
	for _, c := range cases {
		got, err := interp.ParseEngine(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseEngine(%q) succeeded, want error", c.in)
		}
	}
}

func TestEngineString(t *testing.T) {
	if interp.EngineTree.String() != "tree" || interp.EngineVM.String() != "vm" || interp.EngineDefault.String() != "default" {
		t.Errorf("unexpected engine names: %v %v %v",
			interp.EngineDefault, interp.EngineTree, interp.EngineVM)
	}
}

func TestEffectiveEngineResolvesExplicit(t *testing.T) {
	if got := interp.EffectiveEngine(interp.EngineTree); got != interp.EngineTree {
		t.Errorf("EffectiveEngine(tree) = %v", got)
	}
	if got := interp.EffectiveEngine(interp.EngineVM); got != interp.EngineVM {
		t.Errorf("EffectiveEngine(vm) = %v", got)
	}
}

// TestVMDispatchFromInterp runs the same program through interp.Run on
// both engines; with the vm package linked, Engine: EngineVM must route to
// the bytecode engine and still produce identical results.
func TestVMDispatchFromInterp(t *testing.T) {
	src := `      PROGRAM P
      INTEGER I, S
      S = 0
      DO 10 I = 1, 100
      S = S + I
   10 CONTINUE
      END
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := interp.Run(res, interp.Options{Engine: interp.EngineTree})
	if err != nil {
		t.Fatal(err)
	}
	vmr, err := interp.Run(res, interp.Options{Engine: interp.EngineVM})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Steps != vmr.Steps || tree.Stopped != vmr.Stopped {
		t.Fatalf("engines disagree: tree steps %d, vm steps %d", tree.Steps, vmr.Steps)
	}
}
