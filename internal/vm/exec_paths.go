package vm

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/lang"
)

// execPaths is the Ball–Larus-instrumented twin of exec in exec.go: the
// same dispatch loop with rs.pt.edge applied at every taken edge, path
// completion on END, and (node, register) partials recorded on STOP.
// Keeping the instrumentation in a separate copy — exactly as the tree
// walker's loopPaths does — leaves the uninstrumented exec at its original
// register pressure and code size; folding the per-edge hooks into the
// shared loop cost ~20-30% of vm/vm-batch throughput. Any change to exec's
// dispatch must be mirrored here (the engine differential suite runs both
// plans over every engine, so a missed edge here fails plan-equiv).
func (rs *runState) execPaths(pc *procCode, f *frame, pi int) error {
	var (
		onCost   = rs.opt.OnNodeCost
		steps    = rs.steps
		maxSteps = rs.max
		cost     = rs.result.Cost
		retErr   error
	)
	calls := rs.calls[:0]
	// The tracer lives on rs rather than in a local: a pathTracer local is
	// address-taken by its method calls and its ~8 words of live state push
	// this register-saturated loop into spills. Its nil rt makes rs.pt.edge
	// inert for procedures the planner fell back to Sarkar counters on.
	// rs.pathCalls mirrors calls with the suspended callers' tracers.
	rs.pt = pathTracer{rt: rs.pathRTs[pi], cnt: rs.paths[pi], prev: -1}
	rs.pathCalls = rs.pathCalls[:0]
	ip := int(pc.entry)
	// The outer loop runs once per activation switch: it re-binds the
	// per-procedure and per-frame locals and falls into the dispatch loop.
	// Keeping those locals write-once inside each outer iteration lets the
	// compiler treat them as invariant across the dispatch loop — mutating
	// them inside opCall/opEnd arms instead costs ~10% of throughput in
	// spilled reloads on every single dispatch.
activation:
	for {
		if len(rs.stack) < pc.maxStack {
			rs.stack = make([]interp.Value, pc.maxStack+16)
		}
		var (
			ins    = pc.ins
			consts = pc.consts
			stack  = rs.stack
			counts = rs.counts[pi]
			nodes  = counts.Node
			edges  = rs.edges[pi]
			vals   = f.vals
			refs   = f.refs
			trips  = f.trips
			costs  []float64
		)
		if rs.costs != nil {
			costs = rs.costs[pi]
		}
		sp := 0
		for {
			in := &ins[ip]
			switch in.op {
			case opNode:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.a]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.a]++
				if costs != nil {
					cost += costs[in.a]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.a), cost)
					}
				}
				ip++

			case opConst:
				stack[sp] = consts[in.a]
				sp++
				ip++
			case opLocal:
				stack[sp] = vals[in.a]
				sp++
				ip++
			case opRef:
				stack[sp] = *refs[in.a]
				sp++
				ip++
			case opElem:
				arr := f.arrays[in.a]
				n := int(in.b)
				sp -= n
				off, err := elemOffset(arr, stack[sp:sp+n], pc.name, pc.strs[in.c])
				if err != nil {
					retErr = err
					break activation
				}
				stack[sp] = arr.Elems[off]
				sp++
				ip++

			case opStoreLocal:
				sp--
				cell := &vals[in.a]
				*cell = interp.Convert(stack[sp], cell.T)
				ip++
			case opStoreRef:
				sp--
				cell := refs[in.a]
				*cell = interp.Convert(stack[sp], cell.T)
				ip++
			case opStoreElem:
				arr := f.arrays[in.a]
				n := int(in.b)
				sp -= n
				off, err := elemOffset(arr, stack[sp:sp+n], pc.name, pc.strs[in.c])
				if err != nil {
					retErr = err
					break activation
				}
				sp--
				cell := &arr.Elems[off]
				*cell = interp.Convert(stack[sp], cell.T)
				ip++

			case opNot:
				stack[sp-1] = interp.Logical(!stack[sp-1].B)
				ip++
			case opNeg:
				v := stack[sp-1]
				if v.T == lang.TInt {
					stack[sp-1] = interp.Int(-v.I)
				} else {
					stack[sp-1] = interp.Real(-v.R)
				}
				ip++
			case opBin:
				sp--
				r := stack[sp]
				l := stack[sp-1]
				v, ok := binopFast(lang.BinOp(in.a), l, r)
				if !ok {
					var err error
					v, err = binop(lang.BinOp(in.a), l, r, pc.name)
					if err != nil {
						retErr = err
						break activation
					}
				}
				stack[sp-1] = v
				ip++
			case opIntrin:
				n := int(in.b)
				sp -= n
				v, err := rs.intrinsic(int(in.a), stack[sp:sp+n], pc.name)
				if err != nil {
					retErr = err
					break activation
				}
				stack[sp] = v
				sp++
				ip++

			case opBranch:
				sp--
				if stack[sp].B {
					edges[in.c]++
					rs.pt.edge(in.c)
					ip = int(in.a)
				} else {
					edges[in.d]++
					rs.pt.edge(in.d)
					ip = int(in.b)
				}
			case opJmp:
				edges[in.b]++
				rs.pt.edge(in.b)
				ip = int(in.a)
			case opGoto:
				ip = int(in.a)
			case opArithIf:
				sp--
				x := stack[sp].Float()
				k := 2
				switch {
				case x < 0:
					k = 0
				case x == 0:
					k = 1
				}
				a := pc.arms[int(in.a)+k]
				edges[a.flat]++
				rs.pt.edge(a.flat)
				ip = int(a.ip)
			case opCGoto:
				sp--
				v := stack[sp].I
				sel := int(in.b) // default arm
				if v >= 1 && v <= int64(in.b) {
					sel = int(v) - 1
				}
				a := pc.arms[int(in.a)+sel]
				edges[a.flat]++
				rs.pt.edge(a.flat)
				ip = int(a.ip)

			case opTrip:
				sp -= 3
				lo, hi, step := stack[sp], stack[sp+1], stack[sp+2]
				if step.I == 0 {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(in.a), Msg: "DO step is zero"}
					break activation
				}
				trip := (hi.I - lo.I + step.I) / step.I
				if trip < 0 {
					trip = 0
				}
				stack[sp] = interp.Int(trip)
				sp++
				ip++
			case opDoInitFin:
				sp -= 2
				trip := stack[sp]
				lo := stack[sp+1]
				var cell *interp.Value
				if in.b != 0 {
					cell = refs[in.a]
				} else {
					cell = &vals[in.a]
				}
				*cell = interp.Convert(interp.Int(lo.I), cell.T)
				trips[in.c] = trip.I
				ip++
			case opDoTest:
				if trips[in.e] > 0 {
					edges[in.c]++
					rs.pt.edge(in.c)
					ip = int(in.a)
				} else {
					edges[in.d]++
					rs.pt.edge(in.d)
					ip = int(in.b)
				}
			case opDoIncr:
				step := int64(1)
				if in.b&2 != 0 {
					sp--
					step = stack[sp].I
				}
				var cell *interp.Value
				if in.b&1 != 0 {
					cell = refs[in.a]
				} else {
					cell = &vals[in.a]
				}
				*cell = interp.Convert(interp.Int(cell.I+step), cell.T)
				trips[in.c]--
				ip++

			case opArgLocal:
				rs.args = append(rs.args, argSlot{cell: &vals[in.a]})
				ip++
			case opArgRef:
				rs.args = append(rs.args, argSlot{cell: refs[in.a]})
				ip++
			case opArgArray:
				rs.args = append(rs.args, argSlot{arr: f.arrays[in.a]})
				ip++
			case opArgElem:
				arr := f.arrays[in.a]
				n := int(in.b)
				sp -= n
				off, err := elemOffset(arr, stack[sp:sp+n], pc.name, pc.strs[in.c])
				if err != nil {
					retErr = err
					break activation
				}
				rs.args = append(rs.args, argSlot{cell: &arr.Elems[off]})
				ip++
			case opArgVal:
				sp--
				cell := new(interp.Value)
				*cell = stack[sp]
				rs.args = append(rs.args, argSlot{cell: cell})
				ip++
			case opCall:
				n := int(in.b)
				base := len(rs.args) - n
				cpi := int(in.a)
				cpc := rs.prog.procs[cpi]
				rs.depth++
				if rs.depth > 10000 {
					rs.depth--
					rs.args = rs.args[:base]
					retErr = &interp.RuntimeError{Unit: cpc.name, Line: 0, Msg: "call stack overflow (runaway recursion?)"}
					break activation
				}
				var nf *frame
				if rs.lane != nil {
					nf = rs.lane.getFrame(cpi, cpc)
				} else {
					nf = cpc.getFrame()
				}
				nf.callLine = int(in.c)
				for i, pb := range cpc.params {
					if pb.isArray {
						nf.arrays[pb.slot] = rs.args[base+i].arr
					} else {
						nf.refs[pb.slot] = rs.args[base+i].cell
					}
				}
				rs.args = rs.args[:base]
				// The value stack is empty at every call (calls are statements),
				// so only the instruction pointer needs saving.
				calls = append(calls, callSite{pc: pc, f: f, pi: int32(pi), ip: int32(ip) + 1})
				rs.pathCalls = append(rs.pathCalls, pathSave{pt: rs.pt, node: in.d})
				rs.pt = pathTracer{rt: rs.pathRTs[cpi], cnt: rs.paths[cpi], prev: -1}
				pc, f, pi = cpc, nf, cpi
				ip = int(pc.entry)
				continue activation

			case opActivate:
				counts.Activations++
				ip++
			case opAllocArray:
				md := &pc.meta[in.c]
				n := int(in.b)
				sp -= n
				dims := make([]int64, n)
				total := int64(1)
				for d := 0; d < n; d++ {
					v := stack[sp+d].I
					if v < 1 {
						retErr = &interp.RuntimeError{Unit: pc.name, Line: 0,
							Msg: fmt.Sprintf("array %s has non-positive extent %d", md.name, v)}
						break activation
					}
					dims[d] = v
					total *= v
				}
				if total > 50_000_000 {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: 0,
						Msg: fmt.Sprintf("array %s too large (%d elements)", md.name, total)}
					break activation
				}
				elems := make([]interp.Value, total)
				for i := range elems {
					elems[i].T = md.typ
				}
				f.arrays[in.a] = &interp.Array{Type: md.typ, Dims: dims, Elems: elems}
				ip++
			case opBindArray:
				md := &pc.meta[in.c]
				arr := f.arrays[in.a]
				if arr == nil {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: f.callLine,
						Msg: fmt.Sprintf("argument for array parameter %s is not an array", md.name)}
					break activation
				}
				n := int(in.b)
				sp -= n
				dims := make([]int64, n)
				total := int64(1)
				for d := 0; d < n; d++ {
					dims[d] = stack[sp+d].I
					total *= dims[d]
				}
				if total > int64(len(arr.Elems)) {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: f.callLine,
						Msg: fmt.Sprintf("array parameter %s needs %d elements, argument has %d", md.name, total, len(arr.Elems))}
					break activation
				}
				f.arrays[in.a] = &interp.Array{Type: arr.Type, Dims: dims, Elems: arr.Elems}
				ip++

			case opPrintStr:
				if rs.opt.Out == nil {
					// The tree-walker evaluates PRINT items for effect parity
					// when output is discarded, and string literals are not
					// values; replicate its exact failure.
					retErr = &interp.RuntimeError{Unit: pc.name, Line: 0, Msg: "string used as value"}
					break activation
				}
				rs.parts = append(rs.parts, pc.strs[in.a])
				ip++
			case opPrintVal:
				sp--
				if rs.opt.Out != nil {
					rs.parts = append(rs.parts, stack[sp].String())
				}
				ip++
			case opPrintFlush:
				if rs.opt.Out != nil {
					fmt.Fprintln(rs.opt.Out, rs.parts...)
					rs.parts = rs.parts[:0]
				}
				ip++

			// Superinstructions: each arm is the literal concatenation of its
			// constituent opcodes' arms (see fuse.go), so fused and unfused
			// streams are observationally identical.
			case opNodeJmp:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.f]++
				if costs != nil {
					cost += costs[in.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.f), cost)
					}
				}
				edges[in.b]++
				rs.pt.edge(in.b)
				ip = int(in.a)
				// Threading: an empty node's jump lands on the DO increment at
				// the bottom of a loop, or on the loop's test node; run either
				// in the same dispatch.
				tin := &ins[ip]
				switch tin.op {
				case opNodeDoIncrJmp:
					steps++
					if steps > maxSteps {
						retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[tin.f]), Msg: "step limit exceeded"}
						break activation
					}
					nodes[tin.f]++
					if costs != nil {
						cost += costs[tin.f]
						if onCost != nil {
							onCost(pc.proc, cfg.NodeID(tin.f), cost)
						}
					}
					var tcell *interp.Value
					if tin.b&1 != 0 {
						tcell = refs[tin.a]
					} else {
						tcell = &vals[tin.a]
					}
					*tcell = interp.Convert(interp.Int(tcell.I+1), tcell.T)
					trips[tin.c]--
					edges[tin.e]++
					rs.pt.edge(tin.e)
					ip = int(tin.d)
				case opNodeDoTest:
					steps++
					if steps > maxSteps {
						retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[tin.f]), Msg: "step limit exceeded"}
						break activation
					}
					nodes[tin.f]++
					if costs != nil {
						cost += costs[tin.f]
						if onCost != nil {
							onCost(pc.proc, cfg.NodeID(tin.f), cost)
						}
					}
					if trips[tin.e] > 0 {
						edges[tin.c]++
						rs.pt.edge(tin.c)
						ip = int(tin.a)
					} else {
						edges[tin.d]++
						rs.pt.edge(tin.d)
						ip = int(tin.b)
					}
				}
			case opNodeDoTest:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.f]++
				if costs != nil {
					cost += costs[in.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.f), cost)
					}
				}
				if trips[in.e] > 0 {
					edges[in.c]++
					rs.pt.edge(in.c)
					ip = int(in.a)
				} else {
					edges[in.d]++
					rs.pt.edge(in.d)
					ip = int(in.b)
				}
			case opNodeDoIncrJmp:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.f]++
				if costs != nil {
					cost += costs[in.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.f), cost)
					}
				}
				var cell *interp.Value
				if in.b&1 != 0 {
					cell = refs[in.a]
				} else {
					cell = &vals[in.a]
				}
				*cell = interp.Convert(interp.Int(cell.I+1), cell.T)
				trips[in.c]--
				edges[in.e]++
				rs.pt.edge(in.e)
				ip = int(in.d)
				// Back-edge threading: a DO increment's jump lands on the
				// loop's test node in every layout the compiler emits, so run
				// the test in the same dispatch. The opcode check is constant
				// per site, so the branch predicts — unlike the top-of-loop
				// indirect dispatch it replaces. The inlined code is the
				// opNodeDoTest arm verbatim; semantics are unchanged.
				tin := &ins[ip]
				if tin.op != opNodeDoTest {
					continue
				}
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[tin.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[tin.f]++
				if costs != nil {
					cost += costs[tin.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(tin.f), cost)
					}
				}
				if trips[tin.e] > 0 {
					edges[tin.c]++
					rs.pt.edge(tin.c)
					ip = int(tin.a)
				} else {
					edges[tin.d]++
					rs.pt.edge(tin.d)
					ip = int(tin.b)
				}
			case opDoIncrJmp:
				step := int64(1)
				if in.b&2 != 0 {
					sp--
					step = stack[sp].I
				}
				var cell *interp.Value
				if in.b&1 != 0 {
					cell = refs[in.a]
				} else {
					cell = &vals[in.a]
				}
				*cell = interp.Convert(interp.Int(cell.I+step), cell.T)
				trips[in.c]--
				edges[in.e]++
				rs.pt.edge(in.e)
				ip = int(in.d)
				// Same back-edge threading as opNodeDoIncrJmp above.
				tin := &ins[ip]
				if tin.op != opNodeDoTest {
					continue
				}
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[tin.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[tin.f]++
				if costs != nil {
					cost += costs[tin.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(tin.f), cost)
					}
				}
				if trips[tin.e] > 0 {
					edges[tin.c]++
					rs.pt.edge(tin.c)
					ip = int(tin.a)
				} else {
					edges[tin.d]++
					rs.pt.edge(tin.d)
					ip = int(tin.b)
				}
			case opNodeConst:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.f]++
				if costs != nil {
					cost += costs[in.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.f), cost)
					}
				}
				stack[sp] = consts[in.a]
				sp++
				ip++
			case opNodeLocal:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.f]++
				if costs != nil {
					cost += costs[in.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.f), cost)
					}
				}
				stack[sp] = vals[in.a]
				sp++
				ip++
			case opNodeRef:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.f]++
				if costs != nil {
					cost += costs[in.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.f), cost)
					}
				}
				stack[sp] = *refs[in.a]
				sp++
				ip++
			case opLocalConstBin:
				v, ok := binopFast(lang.BinOp(in.c), vals[in.a], consts[in.b])
				if !ok {
					var err error
					v, err = binop(lang.BinOp(in.c), vals[in.a], consts[in.b], pc.name)
					if err != nil {
						retErr = err
						break activation
					}
				}
				stack[sp] = v
				sp++
				ip++
				// Threading: a condition's closing compare often lands on the
				// IF statement's branch; run it in the same dispatch. The
				// inlined code is the opBranch arm verbatim on the value just
				// pushed.
				tin := &ins[ip]
				if tin.op != opBranch {
					continue
				}
				sp--
				if v.B {
					edges[tin.c]++
					rs.pt.edge(tin.c)
					ip = int(tin.a)
				} else {
					edges[tin.d]++
					rs.pt.edge(tin.d)
					ip = int(tin.b)
				}
			case opLocalLocalBin:
				v, ok := binopFast(lang.BinOp(in.c), vals[in.a], vals[in.b])
				if !ok {
					var err error
					v, err = binop(lang.BinOp(in.c), vals[in.a], vals[in.b], pc.name)
					if err != nil {
						retErr = err
						break activation
					}
				}
				stack[sp] = v
				sp++
				ip++
				// Threading: a condition's closing compare often lands on the
				// IF statement's branch; run it in the same dispatch. The
				// inlined code is the opBranch arm verbatim on the value just
				// pushed.
				tin := &ins[ip]
				if tin.op != opBranch {
					continue
				}
				sp--
				if v.B {
					edges[tin.c]++
					rs.pt.edge(tin.c)
					ip = int(tin.a)
				} else {
					edges[tin.d]++
					rs.pt.edge(tin.d)
					ip = int(tin.b)
				}
			case opStoreLocalJmp:
				sp--
				cell := &vals[in.a]
				*cell = interp.Convert(stack[sp], cell.T)
				edges[in.c]++
				rs.pt.edge(in.c)
				ip = int(in.b)
			case opStoreRefJmp:
				sp--
				cell := refs[in.a]
				*cell = interp.Convert(stack[sp], cell.T)
				edges[in.c]++
				rs.pt.edge(in.c)
				ip = int(in.b)
			case opRefConstBin:
				v, ok := binopFast(lang.BinOp(in.c), *refs[in.a], consts[in.b])
				if !ok {
					var err error
					v, err = binop(lang.BinOp(in.c), *refs[in.a], consts[in.b], pc.name)
					if err != nil {
						retErr = err
						break activation
					}
				}
				stack[sp] = v
				sp++
				ip++
				// Threading: a condition's closing compare often lands on the
				// IF statement's branch; run it in the same dispatch. The
				// inlined code is the opBranch arm verbatim on the value just
				// pushed.
				tin := &ins[ip]
				if tin.op != opBranch {
					continue
				}
				sp--
				if v.B {
					edges[tin.c]++
					rs.pt.edge(tin.c)
					ip = int(tin.a)
				} else {
					edges[tin.d]++
					rs.pt.edge(tin.d)
					ip = int(tin.b)
				}
			case opNodeRefConstBin:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.f]++
				if costs != nil {
					cost += costs[in.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.f), cost)
					}
				}
				v, ok := binopFast(lang.BinOp(in.c), *refs[in.a], consts[in.b])
				if !ok {
					var err error
					v, err = binop(lang.BinOp(in.c), *refs[in.a], consts[in.b], pc.name)
					if err != nil {
						retErr = err
						break activation
					}
				}
				stack[sp] = v
				sp++
				ip++
				// Threading: a condition's closing compare often lands on the
				// IF statement's branch; run it in the same dispatch. The
				// inlined code is the opBranch arm verbatim on the value just
				// pushed.
				tin := &ins[ip]
				if tin.op != opBranch {
					continue
				}
				sp--
				if v.B {
					edges[tin.c]++
					rs.pt.edge(tin.c)
					ip = int(tin.a)
				} else {
					edges[tin.d]++
					rs.pt.edge(tin.d)
					ip = int(tin.b)
				}
			case opNodeRefRefConstBin:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.f]++
				if costs != nil {
					cost += costs[in.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.f), cost)
					}
				}
				stack[sp] = *refs[in.a]
				sp++
				v, ok := binopFast(lang.BinOp(in.d), *refs[in.b], consts[in.c])
				if !ok {
					var err error
					v, err = binop(lang.BinOp(in.d), *refs[in.b], consts[in.c], pc.name)
					if err != nil {
						retErr = err
						break activation
					}
				}
				stack[sp] = v
				sp++
				ip++
				// Threading: the accumulation statement's opening flows
				// straight into its closing opBinStoreRefJmp, whose jump lands
				// on the statement-closing Node+Jmp, whose target is the DO
				// increment and its back-edge test — the whole inner-loop
				// iteration of the bench corpus. Run the chain in one
				// dispatch: every block is the corresponding arm verbatim, and
				// every opcode check is constant per site, so the branches
				// predict where the top-of-loop indirect dispatch would not.
				tin := &ins[ip]
				if tin.op != opBinStoreRefJmp {
					continue
				}
				sp -= 2
				v2, ok2 := binopFast(lang.BinOp(tin.a), stack[sp], stack[sp+1])
				if !ok2 {
					var err error
					v2, err = binop(lang.BinOp(tin.a), stack[sp], stack[sp+1], pc.name)
					if err != nil {
						retErr = err
						break activation
					}
				}
				cell := refs[tin.b]
				*cell = interp.Convert(v2, cell.T)
				edges[tin.d]++
				rs.pt.edge(tin.d)
				ip = int(tin.c)
				uin := &ins[ip]
				if uin.op != opNodeJmp {
					continue
				}
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[uin.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[uin.f]++
				if costs != nil {
					cost += costs[uin.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(uin.f), cost)
					}
				}
				edges[uin.b]++
				rs.pt.edge(uin.b)
				ip = int(uin.a)
				win := &ins[ip]
				if win.op != opNodeDoIncrJmp {
					continue
				}
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[win.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[win.f]++
				if costs != nil {
					cost += costs[win.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(win.f), cost)
					}
				}
				var wcell *interp.Value
				if win.b&1 != 0 {
					wcell = refs[win.a]
				} else {
					wcell = &vals[win.a]
				}
				*wcell = interp.Convert(interp.Int(wcell.I+1), wcell.T)
				trips[win.c]--
				edges[win.e]++
				rs.pt.edge(win.e)
				ip = int(win.d)
				xin := &ins[ip]
				if xin.op != opNodeDoTest {
					continue
				}
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[xin.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[xin.f]++
				if costs != nil {
					cost += costs[xin.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(xin.f), cost)
					}
				}
				if trips[xin.e] > 0 {
					edges[xin.c]++
					rs.pt.edge(xin.c)
					ip = int(xin.a)
				} else {
					edges[xin.d]++
					rs.pt.edge(xin.d)
					ip = int(xin.b)
				}
			case opConstBin:
				v, ok := binopFast(lang.BinOp(in.b), stack[sp-1], consts[in.a])
				if !ok {
					var err error
					v, err = binop(lang.BinOp(in.b), stack[sp-1], consts[in.a], pc.name)
					if err != nil {
						retErr = err
						break activation
					}
				}
				stack[sp-1] = v
				ip++
				// Threading: a condition's closing compare often lands on the
				// IF statement's branch; run it in the same dispatch. The
				// inlined code is the opBranch arm verbatim on the value just
				// pushed.
				tin := &ins[ip]
				if tin.op != opBranch {
					continue
				}
				sp--
				if v.B {
					edges[tin.c]++
					rs.pt.edge(tin.c)
					ip = int(tin.a)
				} else {
					edges[tin.d]++
					rs.pt.edge(tin.d)
					ip = int(tin.b)
				}
			case opBinStoreRefJmp:
				sp -= 2
				v, ok := binopFast(lang.BinOp(in.a), stack[sp], stack[sp+1])
				if !ok {
					var err error
					v, err = binop(lang.BinOp(in.a), stack[sp], stack[sp+1], pc.name)
					if err != nil {
						retErr = err
						break activation
					}
				}
				cell := refs[in.b]
				*cell = interp.Convert(v, cell.T)
				edges[in.d]++
				rs.pt.edge(in.d)
				ip = int(in.c)
				// Threading: a loop body's closing store jumps either to the
				// DO increment at the bottom of the loop or to the empty node
				// that closes the statement. Run the target — and, for the
				// increment, its back-edge test — in the same dispatch.
				tin := &ins[ip]
				switch tin.op {
				case opNodeDoIncrJmp:
					steps++
					if steps > maxSteps {
						retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[tin.f]), Msg: "step limit exceeded"}
						break activation
					}
					nodes[tin.f]++
					if costs != nil {
						cost += costs[tin.f]
						if onCost != nil {
							onCost(pc.proc, cfg.NodeID(tin.f), cost)
						}
					}
					var tcell *interp.Value
					if tin.b&1 != 0 {
						tcell = refs[tin.a]
					} else {
						tcell = &vals[tin.a]
					}
					*tcell = interp.Convert(interp.Int(tcell.I+1), tcell.T)
					trips[tin.c]--
					edges[tin.e]++
					rs.pt.edge(tin.e)
					ip = int(tin.d)
					uin := &ins[ip]
					if uin.op != opNodeDoTest {
						continue
					}
					steps++
					if steps > maxSteps {
						retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[uin.f]), Msg: "step limit exceeded"}
						break activation
					}
					nodes[uin.f]++
					if costs != nil {
						cost += costs[uin.f]
						if onCost != nil {
							onCost(pc.proc, cfg.NodeID(uin.f), cost)
						}
					}
					if trips[uin.e] > 0 {
						edges[uin.c]++
						rs.pt.edge(uin.c)
						ip = int(uin.a)
					} else {
						edges[uin.d]++
						rs.pt.edge(uin.d)
						ip = int(uin.b)
					}
				case opNodeJmp:
					steps++
					if steps > maxSteps {
						retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[tin.f]), Msg: "step limit exceeded"}
						break activation
					}
					nodes[tin.f]++
					if costs != nil {
						cost += costs[tin.f]
						if onCost != nil {
							onCost(pc.proc, cfg.NodeID(tin.f), cost)
						}
					}
					edges[tin.b]++
					rs.pt.edge(tin.b)
					ip = int(tin.a)
				}
			case opBinBranch:
				sp -= 2
				v, ok := binopFast(lang.BinOp(in.e), stack[sp], stack[sp+1])
				if !ok {
					var err error
					v, err = binop(lang.BinOp(in.e), stack[sp], stack[sp+1], pc.name)
					if err != nil {
						retErr = err
						break activation
					}
				}
				if v.B {
					edges[in.c]++
					rs.pt.edge(in.c)
					ip = int(in.a)
				} else {
					edges[in.d]++
					rs.pt.edge(in.d)
					ip = int(in.b)
				}
			case opDoInitFinJmp:
				sp -= 2
				trip := stack[sp]
				lo := stack[sp+1]
				var cell *interp.Value
				if in.b != 0 {
					cell = refs[in.a]
				} else {
					cell = &vals[in.a]
				}
				*cell = interp.Convert(interp.Int(lo.I), cell.T)
				trips[in.c] = trip.I
				edges[in.e]++
				rs.pt.edge(in.e)
				ip = int(in.d)
				// Threading: a DO header's jump lands on the loop's test
				// node; run the test in the same dispatch (opNodeDoTest arm
				// verbatim, same as the back-edge threading above).
				tin := &ins[ip]
				if tin.op != opNodeDoTest {
					continue
				}
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[tin.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[tin.f]++
				if costs != nil {
					cost += costs[tin.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(tin.f), cost)
					}
				}
				if trips[tin.e] > 0 {
					edges[tin.c]++
					rs.pt.edge(tin.c)
					ip = int(tin.a)
				} else {
					edges[tin.d]++
					rs.pt.edge(tin.d)
					ip = int(tin.b)
				}

			case opNodeConstConst:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.f]++
				if costs != nil {
					cost += costs[in.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.f), cost)
					}
				}
				stack[sp] = consts[in.a]
				stack[sp+1] = consts[in.b]
				sp += 2
				ip++
			case opConstTrip:
				sp -= 2
				lo, hi := stack[sp], stack[sp+1]
				step := consts[in.a]
				if step.I == 0 {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(in.b), Msg: "DO step is zero"}
					break activation
				}
				trip := (hi.I - lo.I + step.I) / step.I
				if trip < 0 {
					trip = 0
				}
				stack[sp] = interp.Int(trip)
				sp++
				ip++
			case opArgLocal2:
				rs.args = append(rs.args, argSlot{cell: &vals[in.a]}, argSlot{cell: &vals[in.b]})
				ip++
			case opNodeArgLocal2:
				steps++
				if steps > maxSteps {
					retErr = &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.f]), Msg: "step limit exceeded"}
					break activation
				}
				nodes[in.f]++
				if costs != nil {
					cost += costs[in.f]
					if onCost != nil {
						onCost(pc.proc, cfg.NodeID(in.f), cost)
					}
				}
				rs.args = append(rs.args, argSlot{cell: &vals[in.a]}, argSlot{cell: &vals[in.b]})
				ip++
			case opActivateGoto:
				counts.Activations++
				ip = int(in.a)

			case opEnd:
				if rs.pt.rt != nil {
					// END completes the activation's final path.
					rs.pt.cnt.Bump(rs.pt.prev, rs.pt.reg)
				}
				if len(calls) == 0 {
					break activation
				}
				if rs.lane != nil {
					rs.lane.putFrame(pi, f)
				} else {
					pc.putFrame(f)
				}
				rs.depth--
				top := calls[len(calls)-1]
				calls = calls[:len(calls)-1]
				rs.pt = rs.pathCalls[len(rs.pathCalls)-1].pt
				rs.pathCalls = rs.pathCalls[:len(rs.pathCalls)-1]
				pc, f, pi = top.pc, top.f, int(top.pi)
				ip = int(top.ip)
				continue activation
			case opStop:
				if rs.pt.rt != nil {
					// The stopping frame's path is cut short here; record the
					// (stop node, register) prefix for exact recovery.
					rs.pt.cnt.Partials = append(rs.pt.cnt.Partials,
						interp.PathPartial{Node: cfg.NodeID(in.a), Reg: rs.pt.reg})
				}
				rs.recordStopFrame(pc, f, cfg.NodeID(in.a))
				retErr = errStop
				break activation
			default:
				retErr = &interp.RuntimeError{Unit: pc.name, Line: 0,
					Msg: fmt.Sprintf("vm: bad opcode %d at ip %d", in.op, ip)}
				break activation
			}
		}
	}
	// STOP and runtime errors break out with callers still suspended on the
	// explicit stack; release their frames exactly as the recursive unwind
	// did. The outermost frame belongs to runProc.
	for len(calls) > 0 {
		if rs.lane != nil {
			rs.lane.putFrame(pi, f)
		} else {
			pc.putFrame(f)
		}
		rs.depth--
		top := calls[len(calls)-1]
		calls = calls[:len(calls)-1]
		pc, f, pi = top.pc, top.f, int(top.pi)
		ps := rs.pathCalls[len(rs.pathCalls)-1]
		rs.pathCalls = rs.pathCalls[:len(rs.pathCalls)-1]
		rs.pt = ps.pt
		if retErr == errStop && rs.pt.rt != nil {
			// A STOP below cut this caller short at its CALL node; the
			// partials land innermost-first, matching the tree-walker's
			// recursive unwind. Other errors record nothing — such runs
			// never reach recovery.
			rs.pt.cnt.Partials = append(rs.pt.cnt.Partials,
				interp.PathPartial{Node: cfg.NodeID(ps.node), Reg: rs.pt.reg})
		}
		if retErr == errStop {
			rs.recordStopFrame(pc, f, cfg.NodeID(ps.node))
		}
	}
	rs.calls = calls
	rs.steps = steps
	rs.result.Cost = cost
	return retErr
}
