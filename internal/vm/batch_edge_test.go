package vm

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/pathprof"
	"repro/internal/profiler"
	"repro/internal/progen"
)

// Batch-runner edge cases: empty batches, lane counts exceeding the seed
// count, single-lane batches mixing error and success seeds, and path
// instrumentation surviving lane-storage reuse across error unwinding.

func TestBatchZeroSeeds(t *testing.T) {
	t.Parallel()
	res := lowerSrc(t, progen.Generate(3, 6, 2))
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	called := false
	sink := func(int, uint64, *interp.Result, error) bool { called = true; return false }
	for _, lanes := range []int{0, 1, 16} {
		stats, err := prog.RunBatch(interp.Options{}, nil, lanes, sink)
		if err != nil {
			t.Fatalf("lanes %d: %v", lanes, err)
		}
		if stats.Seeds != 0 || stats.Steps != 0 {
			t.Fatalf("lanes %d: stats = %+v, want empty", lanes, stats)
		}
		if called {
			t.Fatalf("lanes %d: sink called on an empty batch", lanes)
		}
	}
	// A nil sink must be fine too.
	if _, err := prog.RunBatch(interp.Options{}, nil, 4, nil); err != nil {
		t.Fatalf("nil sink: %v", err)
	}
}

func TestBatchMoreLanesThanSeeds(t *testing.T) {
	t.Parallel()
	src := progen.Generate(11, 8, 3)
	res := lowerSrc(t, src)
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := cost.Optimized
	opt := interp.Options{MaxSteps: 2_000_000, Model: &m}
	seeds := []uint64{6, 2, 9}
	want := make([]*interp.Result, len(seeds))
	for i, s := range seeds {
		o := opt
		o.Seed = s
		o.Engine = interp.EngineTree
		if want[i], err = interp.Run(res, o); err != nil {
			t.Fatalf("tree seed %d: %v", s, err)
		}
	}
	got := make([]*interp.Result, len(seeds))
	stats, err := prog.RunBatch(opt, seeds, 64, func(idx int, _ uint64, r *interp.Result, err error) bool {
		if err != nil {
			t.Errorf("seed idx %d: %v", idx, err)
			return false
		}
		got[idx] = r
		return true
	})
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if stats.Lanes > len(seeds) {
		t.Fatalf("lanes = %d with %d seeds: lanes must be clamped", stats.Lanes, len(seeds))
	}
	for i, s := range seeds {
		if d := diffResults(want[i], got[i]); d != "" {
			t.Fatalf("seed %d: %s", s, d)
		}
	}
}

// TestBatchSingleLanePathReuse runs a single lane over a seed set that
// mixes runtime errors, STOPs and completions, with path instrumentation
// attached: every per-seed outcome (error text, counters, path counts,
// partials order) must match the tree-walker exactly, proving the lane's
// reused path-counter storage is fully reset across seeds — including
// after mid-batch unwinding.
func TestBatchSingleLanePathReuse(t *testing.T) {
	t.Parallel()
	// IRAND draws decide, per seed, between a clean finish, a STOP inside
	// the loop (recording partials) and a division-by-zero error.
	src := `      PROGRAM P
      INTEGER I, J, K, S
      S = 0
      DO 10 K = 1, 3
      I = IRAND(6)
      IF (I .EQ. 1) THEN
      STOP
      ENDIF
      J = 6 / (I - 2)
      S = S + J
   10 CONTINUE
      PRINT *, S
      END
`
	res := lowerSrc(t, src)
	ap, err := analysis.AnalyzeProgram(res)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	sk, err := profiler.BuildPlans(ap)
	if err != nil {
		t.Fatalf("sarkar plans: %v", err)
	}
	bl, err := pathprof.BuildPlansWith(ap, sk, pathprof.Options{})
	if err != nil {
		t.Fatalf("path plans: %v", err)
	}
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := cost.Optimized
	opt := interp.Options{MaxSteps: 100000, Model: &m, PathSpec: bl.Spec()}
	seeds := make([]uint64, 30)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	want := make([]*interp.Result, len(seeds))
	wantErr := make([]error, len(seeds))
	var stops, fails, fine int
	for i, s := range seeds {
		o := opt
		o.Seed = s
		o.Engine = interp.EngineTree
		want[i], wantErr[i] = interp.Run(res, o)
		switch {
		case wantErr[i] != nil:
			fails++
		case want[i].Stopped:
			stops++
		default:
			fine++
		}
	}
	if stops == 0 || fails == 0 || fine == 0 {
		t.Fatalf("bad corpus: %d stops, %d errors, %d clean — need all three", stops, fails, fine)
	}
	got := make([]*interp.Result, len(seeds))
	errs := make([]error, len(seeds))
	stats, err := prog.RunBatch(opt, seeds, 1, func(idx int, _ uint64, r *interp.Result, err error) bool {
		if err != nil {
			errs[idx] = err
			return false
		}
		got[idx] = r
		return true
	})
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if stats.Lanes != 1 {
		t.Fatalf("lanes = %d, want 1", stats.Lanes)
	}
	for i, s := range seeds {
		if (wantErr[i] == nil) != (errs[i] == nil) ||
			(wantErr[i] != nil && wantErr[i].Error() != errs[i].Error()) {
			t.Fatalf("seed %d: err tree=%v batch=%v", s, wantErr[i], errs[i])
		}
		if wantErr[i] != nil {
			continue
		}
		if d := diffResults(want[i], got[i]); d != "" {
			t.Fatalf("seed %d: %s", s, d)
		}
		if d := diffPaths(want[i], got[i]); d != "" {
			t.Fatalf("seed %d: %s", s, d)
		}
	}
}

// diffPaths compares the path-counter state of two results of the same
// seed, partials order included.
func diffPaths(tree, vm *interp.Result) string {
	if len(tree.Paths) != len(vm.Paths) {
		return "Paths size differs"
	}
	for name, tc := range tree.Paths {
		vc := vm.Paths[name]
		if vc == nil {
			return "proc " + name + ": missing path counts"
		}
		if tc.NumPaths != vc.NumPaths {
			return "proc " + name + ": NumPaths differs"
		}
		same := true
		tc.Each(func(id, c int64) {
			if vc.Total(id) != c {
				same = false
			}
		})
		vc.Each(func(id, c int64) {
			if tc.Total(id) != c {
				same = false
			}
		})
		if !same {
			return "proc " + name + ": path counts differ"
		}
		if len(tc.Partials) != len(vc.Partials) {
			return "proc " + name + ": partials count differs"
		}
		for i := range tc.Partials {
			if tc.Partials[i] != vc.Partials[i] {
				return "proc " + name + ": partials order differs"
			}
		}
	}
	return ""
}
