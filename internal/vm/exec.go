package vm

import (
	"fmt"
	"math"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/lang"
)

// exec is the switch-dispatch loop: it runs pc's instruction stream against
// frame f until opEnd or opStop. The value stack is empty at every
// statement boundary (and therefore at every call), so one shared stack
// slice serves all activations.
func (rs *runState) exec(pc *procCode, f *frame, pi int) error {
	if len(rs.stack) < pc.maxStack {
		rs.stack = make([]interp.Value, pc.maxStack+16)
	}
	var (
		ins    = pc.ins
		consts = pc.consts
		stack  = rs.stack
		counts = rs.counts[pi]
		edges  = rs.edges[pi]
		onCost = rs.opt.OnNodeCost
		costs  []float64
	)
	if rs.costs != nil {
		costs = rs.costs[pi]
	}
	sp := 0
	ip := int(pc.entry)
	for {
		in := &ins[ip]
		switch in.op {
		case opNode:
			rs.steps++
			if rs.steps > rs.max {
				return &interp.RuntimeError{Unit: pc.name, Line: int(pc.lines[in.a]), Msg: "step limit exceeded"}
			}
			counts.Node[in.a]++
			if costs != nil {
				rs.result.Cost += costs[in.a]
				if onCost != nil {
					onCost(pc.proc, cfg.NodeID(in.a), rs.result.Cost)
				}
			}
			ip++

		case opConst:
			stack[sp] = consts[in.a]
			sp++
			ip++
		case opLocal:
			stack[sp] = f.vals[in.a]
			sp++
			ip++
		case opRef:
			stack[sp] = *f.refs[in.a]
			sp++
			ip++
		case opElem:
			arr := f.arrays[in.a]
			n := int(in.b)
			sp -= n
			off, err := elemOffset(arr, stack[sp:sp+n], pc.name, pc.strs[in.c])
			if err != nil {
				return err
			}
			stack[sp] = arr.Elems[off]
			sp++
			ip++

		case opStoreLocal:
			sp--
			cell := &f.vals[in.a]
			*cell = interp.Convert(stack[sp], cell.T)
			ip++
		case opStoreRef:
			sp--
			cell := f.refs[in.a]
			*cell = interp.Convert(stack[sp], cell.T)
			ip++
		case opStoreElem:
			arr := f.arrays[in.a]
			n := int(in.b)
			sp -= n
			off, err := elemOffset(arr, stack[sp:sp+n], pc.name, pc.strs[in.c])
			if err != nil {
				return err
			}
			sp--
			cell := &arr.Elems[off]
			*cell = interp.Convert(stack[sp], cell.T)
			ip++

		case opNot:
			stack[sp-1] = interp.Logical(!stack[sp-1].B)
			ip++
		case opNeg:
			v := stack[sp-1]
			if v.T == lang.TInt {
				stack[sp-1] = interp.Int(-v.I)
			} else {
				stack[sp-1] = interp.Real(-v.R)
			}
			ip++
		case opBin:
			sp--
			r := stack[sp]
			l := stack[sp-1]
			v, err := binop(lang.BinOp(in.a), l, r, pc.name)
			if err != nil {
				return err
			}
			stack[sp-1] = v
			ip++
		case opIntrin:
			n := int(in.b)
			sp -= n
			v, err := rs.intrinsic(int(in.a), stack[sp:sp+n], pc.name)
			if err != nil {
				return err
			}
			stack[sp] = v
			sp++
			ip++

		case opBranch:
			sp--
			if stack[sp].B {
				edges[in.c]++
				ip = int(in.a)
			} else {
				edges[in.d]++
				ip = int(in.b)
			}
		case opJmp:
			edges[in.b]++
			ip = int(in.a)
		case opGoto:
			ip = int(in.a)
		case opArithIf:
			sp--
			x := stack[sp].Float()
			k := 2
			switch {
			case x < 0:
				k = 0
			case x == 0:
				k = 1
			}
			a := pc.arms[int(in.a)+k]
			edges[a.flat]++
			ip = int(a.ip)
		case opCGoto:
			sp--
			v := stack[sp].I
			sel := int(in.b) // default arm
			if v >= 1 && v <= int64(in.b) {
				sel = int(v) - 1
			}
			a := pc.arms[int(in.a)+sel]
			edges[a.flat]++
			ip = int(a.ip)

		case opTrip:
			sp -= 3
			lo, hi, step := stack[sp], stack[sp+1], stack[sp+2]
			if step.I == 0 {
				return &interp.RuntimeError{Unit: pc.name, Line: int(in.a), Msg: "DO step is zero"}
			}
			trip := (hi.I - lo.I + step.I) / step.I
			if trip < 0 {
				trip = 0
			}
			stack[sp] = interp.Int(trip)
			sp++
			ip++
		case opDoInitFin:
			sp -= 2
			trip := stack[sp]
			lo := stack[sp+1]
			var cell *interp.Value
			if in.b != 0 {
				cell = f.refs[in.a]
			} else {
				cell = &f.vals[in.a]
			}
			*cell = interp.Convert(interp.Int(lo.I), cell.T)
			f.trips[in.c] = trip.I
			ip++
		case opDoTest:
			if f.trips[in.e] > 0 {
				edges[in.c]++
				ip = int(in.a)
			} else {
				edges[in.d]++
				ip = int(in.b)
			}
		case opDoIncr:
			step := int64(1)
			if in.b&2 != 0 {
				sp--
				step = stack[sp].I
			}
			var cell *interp.Value
			if in.b&1 != 0 {
				cell = f.refs[in.a]
			} else {
				cell = &f.vals[in.a]
			}
			*cell = interp.Convert(interp.Int(cell.I+step), cell.T)
			f.trips[in.c]--
			ip++

		case opArgLocal:
			rs.args = append(rs.args, argSlot{cell: &f.vals[in.a]})
			ip++
		case opArgRef:
			rs.args = append(rs.args, argSlot{cell: f.refs[in.a]})
			ip++
		case opArgArray:
			rs.args = append(rs.args, argSlot{arr: f.arrays[in.a]})
			ip++
		case opArgElem:
			arr := f.arrays[in.a]
			n := int(in.b)
			sp -= n
			off, err := elemOffset(arr, stack[sp:sp+n], pc.name, pc.strs[in.c])
			if err != nil {
				return err
			}
			rs.args = append(rs.args, argSlot{cell: &arr.Elems[off]})
			ip++
		case opArgVal:
			sp--
			cell := new(interp.Value)
			*cell = stack[sp]
			rs.args = append(rs.args, argSlot{cell: cell})
			ip++
		case opCall:
			n := int(in.b)
			base := len(rs.args) - n
			err := rs.runProc(int(in.a), rs.args[base:], int(in.c))
			rs.args = rs.args[:base]
			if err != nil {
				return err
			}
			ip++

		case opActivate:
			counts.Activations++
			ip++
		case opAllocArray:
			md := &pc.meta[in.c]
			n := int(in.b)
			sp -= n
			dims := make([]int64, n)
			total := int64(1)
			for d := 0; d < n; d++ {
				v := stack[sp+d].I
				if v < 1 {
					return &interp.RuntimeError{Unit: pc.name, Line: 0,
						Msg: fmt.Sprintf("array %s has non-positive extent %d", md.name, v)}
				}
				dims[d] = v
				total *= v
			}
			if total > 50_000_000 {
				return &interp.RuntimeError{Unit: pc.name, Line: 0,
					Msg: fmt.Sprintf("array %s too large (%d elements)", md.name, total)}
			}
			elems := make([]interp.Value, total)
			for i := range elems {
				elems[i].T = md.typ
			}
			f.arrays[in.a] = &interp.Array{Type: md.typ, Dims: dims, Elems: elems}
			ip++
		case opBindArray:
			md := &pc.meta[in.c]
			arr := f.arrays[in.a]
			if arr == nil {
				return &interp.RuntimeError{Unit: pc.name, Line: f.callLine,
					Msg: fmt.Sprintf("argument for array parameter %s is not an array", md.name)}
			}
			n := int(in.b)
			sp -= n
			dims := make([]int64, n)
			total := int64(1)
			for d := 0; d < n; d++ {
				dims[d] = stack[sp+d].I
				total *= dims[d]
			}
			if total > int64(len(arr.Elems)) {
				return &interp.RuntimeError{Unit: pc.name, Line: f.callLine,
					Msg: fmt.Sprintf("array parameter %s needs %d elements, argument has %d", md.name, total, len(arr.Elems))}
			}
			f.arrays[in.a] = &interp.Array{Type: arr.Type, Dims: dims, Elems: arr.Elems}
			ip++

		case opPrintStr:
			if rs.opt.Out == nil {
				// The tree-walker evaluates PRINT items for effect parity
				// when output is discarded, and string literals are not
				// values; replicate its exact failure.
				return &interp.RuntimeError{Unit: pc.name, Line: 0, Msg: "string used as value"}
			}
			rs.parts = append(rs.parts, pc.strs[in.a])
			ip++
		case opPrintVal:
			sp--
			if rs.opt.Out != nil {
				rs.parts = append(rs.parts, stack[sp].String())
			}
			ip++
		case opPrintFlush:
			if rs.opt.Out != nil {
				fmt.Fprintln(rs.opt.Out, rs.parts...)
				rs.parts = rs.parts[:0]
			}
			ip++

		case opEnd:
			return nil
		case opStop:
			return errStop
		default:
			return &interp.RuntimeError{Unit: pc.name, Line: 0,
				Msg: fmt.Sprintf("vm: bad opcode %d at ip %d", in.op, ip)}
		}
	}
}

// binop replicates the tree-walker's evalBin exactly, including the
// error messages and the int/int fast paths.
func binop(op lang.BinOp, l, r interp.Value, unit string) (interp.Value, error) {
	switch op {
	case lang.OpAnd:
		return interp.Logical(l.B && r.B), nil
	case lang.OpOr:
		return interp.Logical(l.B || r.B), nil
	case lang.OpEqv:
		return interp.Logical(l.B == r.B), nil
	case lang.OpNeqv:
		return interp.Logical(l.B != r.B), nil
	}
	if op.Relational() {
		a, b := l.Float(), r.Float()
		if l.T == lang.TInt && r.T == lang.TInt {
			a, b = float64(l.I), float64(r.I)
		}
		switch op {
		case lang.OpLT:
			return interp.Logical(a < b), nil
		case lang.OpLE:
			return interp.Logical(a <= b), nil
		case lang.OpGT:
			return interp.Logical(a > b), nil
		case lang.OpGE:
			return interp.Logical(a >= b), nil
		case lang.OpEQ:
			return interp.Logical(a == b), nil
		default:
			return interp.Logical(a != b), nil
		}
	}
	if l.T == lang.TInt && r.T == lang.TInt {
		switch op {
		case lang.OpAdd:
			return interp.Int(l.I + r.I), nil
		case lang.OpSub:
			return interp.Int(l.I - r.I), nil
		case lang.OpMul:
			return interp.Int(l.I * r.I), nil
		case lang.OpDiv:
			if r.I == 0 {
				return interp.Value{}, &interp.RuntimeError{Unit: unit, Line: 0, Msg: "integer division by zero"}
			}
			return interp.Int(l.I / r.I), nil
		case lang.OpPow:
			return interp.Int(interp.Ipow(l.I, r.I)), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case lang.OpAdd:
		return interp.Real(a + b), nil
	case lang.OpSub:
		return interp.Real(a - b), nil
	case lang.OpMul:
		return interp.Real(a * b), nil
	case lang.OpDiv:
		if b == 0 {
			return interp.Value{}, &interp.RuntimeError{Unit: unit, Line: 0, Msg: "division by zero"}
		}
		return interp.Real(a / b), nil
	case lang.OpPow:
		return interp.Real(math.Pow(a, b)), nil
	}
	return interp.Value{}, &interp.RuntimeError{Unit: unit, Line: 0,
		Msg: fmt.Sprintf("bad operator %v", op)}
}

// Intrinsic ids baked into opIntrin's a field at compile time.
const (
	intrABS = iota
	intrMOD
	intrSIGN
	intrMIN
	intrMAX
	intrSQRT
	intrEXP
	intrLOG
	intrSIN
	intrCOS
	intrINT
	intrREAL
	intrRAND
	intrIRAND
)

// intrinsicID maps intrinsic names to ids (compile time only).
var intrinsicID = map[string]int{
	"ABS": intrABS, "MOD": intrMOD, "SIGN": intrSIGN, "MIN": intrMIN,
	"MAX": intrMAX, "SQRT": intrSQRT, "EXP": intrEXP, "LOG": intrLOG,
	"SIN": intrSIN, "COS": intrCOS, "INT": intrINT, "REAL": intrREAL,
	"RAND": intrRAND, "IRAND": intrIRAND,
}

// intrinsic replicates the tree-walker's evalIntrinsic on already-evaluated
// arguments.
func (rs *runState) intrinsic(id int, args []interp.Value, unit string) (interp.Value, error) {
	allInt := true
	for _, a := range args {
		if a.T != lang.TInt {
			allInt = false
		}
	}
	switch id {
	case intrABS:
		if args[0].T == lang.TInt {
			if args[0].I < 0 {
				return interp.Int(-args[0].I), nil
			}
			return args[0], nil
		}
		return interp.Real(math.Abs(args[0].R)), nil
	case intrMOD:
		if allInt {
			if args[1].I == 0 {
				return interp.Value{}, &interp.RuntimeError{Unit: unit, Line: 0, Msg: "MOD by zero"}
			}
			return interp.Int(args[0].I % args[1].I), nil
		}
		return interp.Real(math.Mod(args[0].Float(), args[1].Float())), nil
	case intrSIGN:
		mag := math.Abs(args[0].Float())
		if args[1].Float() < 0 {
			mag = -mag
		}
		if allInt {
			return interp.Int(int64(mag)), nil
		}
		return interp.Real(mag), nil
	case intrMIN, intrMAX:
		best := args[0]
		for _, a := range args[1:] {
			better := a.Float() < best.Float()
			if id == intrMAX {
				better = a.Float() > best.Float()
			}
			if better {
				best = a
			}
		}
		if allInt {
			return interp.Int(int64(best.Float())), nil
		}
		return interp.Real(best.Float()), nil
	case intrSQRT:
		v := args[0].Float()
		if v < 0 {
			return interp.Value{}, &interp.RuntimeError{Unit: unit, Line: 0, Msg: "SQRT of negative value"}
		}
		return interp.Real(math.Sqrt(v)), nil
	case intrEXP:
		return interp.Real(math.Exp(args[0].Float())), nil
	case intrLOG:
		v := args[0].Float()
		if v <= 0 {
			return interp.Value{}, &interp.RuntimeError{Unit: unit, Line: 0, Msg: "LOG of non-positive value"}
		}
		return interp.Real(math.Log(v)), nil
	case intrSIN:
		return interp.Real(math.Sin(args[0].Float())), nil
	case intrCOS:
		return interp.Real(math.Cos(args[0].Float())), nil
	case intrINT:
		return interp.Int(int64(args[0].Float())), nil
	case intrREAL:
		return interp.Real(args[0].Float()), nil
	case intrRAND:
		return interp.Real(rs.rand()), nil
	case intrIRAND:
		n := args[0].I
		if n < 1 {
			return interp.Value{}, &interp.RuntimeError{Unit: unit, Line: 0, Msg: "IRAND needs a positive bound"}
		}
		return interp.Int(1 + int64(rs.rand()*float64(n))), nil
	}
	return interp.Value{}, &interp.RuntimeError{Unit: unit, Line: 0,
		Msg: fmt.Sprintf("unknown intrinsic id %d", id)}
}
