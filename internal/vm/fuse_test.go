package vm

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/progen"
)

// fusedForms is the full superinstruction catalog: every fused opcode with
// the exact constituent sequence its exec arm concatenates. The structural
// test below walks fused and unfused instruction streams in lockstep and
// requires each fused instruction to stand for precisely this sequence —
// so a new superinstruction must be registered here to pass.
var fusedForms = map[opcode]struct {
	name string
	seq  []opcode
}{
	opNodeJmp:            {"NodeJmp", []opcode{opNode, opJmp}},
	opNodeDoTest:         {"NodeDoTest", []opcode{opNode, opDoTest}},
	opNodeDoIncrJmp:      {"NodeDoIncrJmp", []opcode{opNode, opDoIncr, opJmp}},
	opDoIncrJmp:          {"DoIncrJmp", []opcode{opDoIncr, opJmp}},
	opNodeConst:          {"NodeConst", []opcode{opNode, opConst}},
	opNodeLocal:          {"NodeLocal", []opcode{opNode, opLocal}},
	opNodeRef:            {"NodeRef", []opcode{opNode, opRef}},
	opLocalConstBin:      {"LocalConstBin", []opcode{opLocal, opConst, opBin}},
	opLocalLocalBin:      {"LocalLocalBin", []opcode{opLocal, opLocal, opBin}},
	opStoreLocalJmp:      {"StoreLocalJmp", []opcode{opStoreLocal, opJmp}},
	opStoreRefJmp:        {"StoreRefJmp", []opcode{opStoreRef, opJmp}},
	opRefConstBin:        {"RefConstBin", []opcode{opRef, opConst, opBin}},
	opConstBin:           {"ConstBin", []opcode{opConst, opBin}},
	opBinStoreRefJmp:     {"BinStoreRefJmp", []opcode{opBin, opStoreRef, opJmp}},
	opBinBranch:          {"BinBranch", []opcode{opBin, opBranch}},
	opDoInitFinJmp:       {"DoInitFinJmp", []opcode{opDoInitFin, opJmp}},
	opNodeRefConstBin:    {"NodeRefConstBin", []opcode{opNode, opRef, opConst, opBin}},
	opNodeRefRefConstBin: {"NodeRefRefConstBin", []opcode{opNode, opRef, opRef, opConst, opBin}},
	opNodeConstConst:     {"NodeConstConst", []opcode{opNode, opConst, opConst}},
	opConstTrip:          {"ConstTrip", []opcode{opConst, opTrip}},
	opArgLocal2:          {"ArgLocal2", []opcode{opArgLocal, opArgLocal}},
	opNodeArgLocal2:      {"NodeArgLocal2", []opcode{opNode, opArgLocal, opArgLocal}},
	opActivateGoto:       {"ActivateGoto", []opcode{opActivate, opGoto}},
}

// fuseWitnesses are hand-written programs that, together with a slice of
// the progen corpus, make every superinstruction fire at least once.
var fuseWitnesses = []string{
	// DO loop accumulating through a subroutine ref parameter: loop-header
	// and back-edge fusions, ref-expression fusions, call staging.
	`      PROGRAM FW1
      INTEGER I, S, A, B
      S = 0
      A = 2
      B = 3
      DO 10 I = 1, 8
      S = S + I*2
   10 CONTINUE
      CALL ACC(A, B)
      PRINT *, S, A
      END
      SUBROUTINE ACC(X, Y)
      INTEGER X, Y, J
      DO 20 J = 1, 4
      X = X + 1
      Y = Y + X*3
   20 CONTINUE
      END
`,
	// Branches on computed conditions plus a forward GOTO: NodeJmp and
	// StoreLocalJmp shapes.
	`      PROGRAM FW2
      INTEGER I, S
      S = 1
      I = IRAND(10)
      IF (I .GT. 5) THEN
      S = S * 2
      ELSE
      S = S * 3
      ENDIF
      GOTO 30
      S = 99
   30 CONTINUE
      PRINT *, S
      END
`,
	// Rarer shapes the progen corpus misses: a condition whose comparison
	// operands are both computed (BinBranch), a stepped DO whose increment
	// is preceded by the step expression (standalone DoIncrJmp), a 4-arg
	// CALL (NodeArgLocal2 + ArgLocal2), a bare ref copy (NodeRef) and a
	// ref-const product off a local lead (RefConstBin).
	`      PROGRAM FW3
      INTEGER I, J, K, S, N
      I = IRAND(5)
      J = I + 2
      K = 4
      S = 0
      IF (I + J .GT. K + 1) THEN
      S = 1
      ENDIF
      DO 40 N = 1, 9, 2
      S = S + N
   40 CONTINUE
      CALL Q4(I, J, K, S)
      PRINT *, S, K
      END
      SUBROUTINE Q4(A, B, C, D)
      INTEGER A, B, C, D, T
      T = A
      D = T + B*2
      C = D + A*3
      END
`,
}

// fusedStreamMatchesPlain walks a fused instruction stream against the
// NoFuse stream of the same procedure and returns an error when any fused
// instruction does not stand for the literal concatenation of its
// registered constituents (or when an opcode is missing from the catalog).
// It returns the set of fused opcodes observed.
func fusedStreamMatchesPlain(name string, fused, plain []instr) (map[opcode]bool, error) {
	seen := make(map[opcode]bool)
	j := 0
	for i := 0; i < len(fused); i++ {
		in := fused[i]
		form, isFused := fusedForms[in.op]
		if !isFused {
			if j >= len(plain) || plain[j].op != in.op {
				return nil, fmt.Errorf("proc %s: fused[%d] op %d out of sync with plain[%d]", name, i, in.op, j)
			}
			j++
			continue
		}
		seen[in.op] = true
		for k, want := range form.seq {
			if j >= len(plain) || plain[j].op != want {
				return nil, fmt.Errorf("proc %s: fused[%d] %s constituent %d: plain[%d] is not op %d",
					name, i, form.name, k, j, want)
			}
			j++
		}
	}
	if j != len(plain) {
		return nil, fmt.Errorf("proc %s: fused stream consumed %d plain instructions of %d", name, j, len(plain))
	}
	return seen, nil
}

// TestFuseCatalog checks, over the witness programs plus a progen slice,
// that (a) every fused instruction in every compiled procedure is the
// literal concatenation of its cataloged constituents, and (b) every
// superinstruction in the catalog actually fires somewhere — so dead
// patterns and uncataloged opcodes both fail loudly.
func TestFuseCatalog(t *testing.T) {
	t.Parallel()
	srcs := append([]string{}, fuseWitnesses...)
	for seed := uint64(1); seed <= 40; seed++ {
		srcs = append(srcs, progen.GenerateOpts(seed, 4+int(seed%8), 1+int(seed%3), progen.Opts{ConstLoops: seed%2 == 0}))
	}
	covered := make(map[opcode]bool)
	for si, src := range srcs {
		res := lowerSrc(t, src)
		fusedProg, err := Compile(res)
		if err != nil {
			t.Fatalf("src %d: compile: %v", si, err)
		}
		plainProg, err := CompileOpts(res, CompileOptions{NoFuse: true})
		if err != nil {
			t.Fatalf("src %d: compile nofuse: %v", si, err)
		}
		if len(fusedProg.procs) != len(plainProg.procs) {
			t.Fatalf("src %d: proc count differs", si)
		}
		for pi, pc := range fusedProg.procs {
			seen, err := fusedStreamMatchesPlain(pc.name, pc.ins, plainProg.procs[pi].ins)
			if err != nil {
				t.Fatalf("src %d: %v", si, err)
			}
			for op := range seen {
				covered[op] = true
			}
		}
	}
	for op, form := range fusedForms {
		if !covered[op] {
			t.Errorf("superinstruction %s never fired on the witness corpus", form.name)
		}
	}
}

// FuzzFusePipeline feeds generator knobs to the fused and unfused
// compilers and requires bit-identical execution (result counters, PRINT
// output, error text) on two interpreter seeds per program.
func FuzzFusePipeline(f *testing.F) {
	f.Add(uint64(7), byte(6), byte(2), byte(0))
	f.Add(uint64(19), byte(10), byte(3), byte(1))
	f.Add(uint64(3), byte(4), byte(1), byte(2))
	f.Fuzz(func(t *testing.T, seed uint64, size, depth, fam byte) {
		opts := progen.Opts{
			BranchFree: fam%3 == 1,
			ConstLoops: fam%3 == 2,
		}
		src := progen.GenerateOpts(seed, 1+int(size%12), 1+int(depth%4), opts)
		res := lowerSrc(t, src)
		fusedProg, err := Compile(res)
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, src)
		}
		plainProg, err := CompileOpts(res, CompileOptions{NoFuse: true})
		if err != nil {
			t.Fatalf("compile nofuse: %v\n%s", err, src)
		}
		m := cost.Optimized
		for _, runSeed := range []uint64{seed, seed*31 + 1} {
			var fout, pout bytes.Buffer
			mf, mp := m, m
			fr, ferr := fusedProg.Run(interp.Options{Seed: runSeed, MaxSteps: 1_000_000, Model: &mf, Out: &fout})
			pr, perr := plainProg.Run(interp.Options{Seed: runSeed, MaxSteps: 1_000_000, Model: &mp, Out: &pout})
			if (ferr == nil) != (perr == nil) || (ferr != nil && ferr.Error() != perr.Error()) {
				t.Fatalf("run %d: err fused=%v plain=%v\n%s", runSeed, ferr, perr, src)
			}
			if ferr != nil {
				continue
			}
			if d := diffResults(pr, fr); d != "" {
				t.Fatalf("run %d: %s\n%s", runSeed, d, src)
			}
			if fout.String() != pout.String() {
				t.Fatalf("run %d: PRINT differs\nfused: %q\nplain: %q", runSeed, fout.String(), pout.String())
			}
		}
	})
}
