package vm

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cfg"
	"repro/internal/interp"
)

// laneState is the reusable per-lane execution state of a batch run: one
// runState whose Result, counter slices and edge slabs are built once and
// zeroed between seeds, plus the frame arena. A lane runs its shard of the
// seed batch sequentially; lanes never share mutable state.
type laneState struct {
	rs    runState
	arena *laneArena
}

func newLaneState(p *Program, opt interp.Options) *laneState {
	ls := &laneState{arena: newLaneArena(len(p.procs))}
	rs := &ls.rs
	rs.prog = p
	rs.opt = opt
	rs.lane = ls.arena
	rs.max = opt.MaxSteps
	if rs.max == 0 {
		rs.max = 500_000_000
	}
	if opt.Model != nil {
		rs.costs = p.costTables(opt.Model)
	}
	ls.build()
	return ls
}

// build allocates fresh result storage: once at lane start, and again after
// a sink retained the previous seed's Result (which transferred ownership
// of the whole structure, counter slices included).
func (ls *laneState) build() {
	rs := &ls.rs
	p := rs.prog
	rs.result = &interp.Result{ByProc: make(map[string]*interp.Counts, len(p.procs))}
	rs.counts = make([]*interp.Counts, len(p.procs))
	rs.edges = make([][]int64, len(p.procs))
	for i, pc := range p.procs {
		g := pc.proc.G
		maxID := g.MaxID()
		flat := make([]int64, pc.numEdges)
		ct := &interp.Counts{
			Node: make([]int64, maxID+1),
			Edge: make([][]int64, maxID+1),
		}
		for id := cfg.NodeID(1); id <= maxID; id++ {
			off := int(pc.edgeOff[id])
			n := len(g.OutEdges(id))
			ct.Edge[id] = flat[off : off+n : off+n]
		}
		rs.result.ByProc[pc.name] = ct
		rs.counts[i] = ct
		rs.edges[i] = flat
	}
	rs.initPaths()
}

// reset clears the reusable per-seed state so the next seed starts from the
// exact state a fresh Run would: zero counters, zero cost, reseeded RNG.
func (ls *laneState) reset(seed uint64) {
	rs := &ls.rs
	rs.opt.Seed = seed
	rs.rng = seed*2862933555777941757 + 3037000493
	rs.steps = 0
	rs.depth = 0
	rs.args = rs.args[:0]
	rs.parts = rs.parts[:0]
	r := rs.result
	r.Steps = 0
	r.Cost = 0
	r.Stopped = false
	r.StopFrames = nil
	for i, ct := range rs.counts {
		clearInt64(ct.Node)
		ct.Activations = 0
		clearInt64(rs.edges[i])
	}
	for _, pcn := range rs.paths {
		if pcn != nil {
			pcn.Reset()
		}
	}
}

func clearInt64(s []int64) {
	for i := range s {
		s[i] = 0
	}
}

// runSeed executes one seed on the lane. The returned Result is the lane's
// reusable storage: valid until the next reset.
func (ls *laneState) runSeed(seed uint64) (*interp.Result, error) {
	ls.reset(seed)
	rs := &ls.rs
	err := rs.runProc(rs.prog.mainIdx, nil, 0)
	if errors.Is(err, errStop) {
		rs.result.Stopped = true
		err = nil
	}
	rs.result.Steps = rs.steps
	return rs.result, err
}

// runLane executes one contiguous seed shard, reporting each outcome to
// sink with the seed's batch-global index. Returns total steps and exec
// nanoseconds (sink time excluded).
func (p *Program) runLane(opt interp.Options, seeds []uint64, base int, sink interp.BatchSink) (steps, execNanos int64) {
	ls := newLaneState(p, opt)
	for i, seed := range seeds {
		t0 := time.Now()
		res, err := ls.runSeed(seed)
		execNanos += int64(time.Since(t0))
		steps += res.Steps
		if sink != nil && sink(base+i, seed, res, err) {
			ls.build()
		}
	}
	return steps, execNanos
}

// RunBatch executes every seed through the compiled program, sharding the
// batch contiguously across up to lanes lanes (≤ 0 means GOMAXPROCS), each
// with its own arena-backed reusable frames and result storage. Per-seed
// results are bit-identical to Run with the same Options and seed — seeds
// are independent (own RNG, counters, Result), so neither fusion nor the
// lane count can change any per-seed outcome. Runs that need ordered
// observation (Out, OnNodeCost) are forced onto a single lane, which
// processes seeds strictly in batch order; OnNode runs fall back to the
// tree-walker per seed, like Run. Per-seed runtime errors are reported
// through the sink and do not stop the batch.
func (p *Program) RunBatch(opt interp.Options, seeds []uint64, lanes int, sink interp.BatchSink) (interp.BatchStats, error) {
	if opt.OnNode != nil {
		o := opt
		o.Engine = interp.EngineTree
		return interp.RunBatch(p.res, o, seeds, lanes, sink)
	}
	if lanes <= 0 {
		lanes = runtime.GOMAXPROCS(0)
	}
	if lanes > len(seeds) {
		lanes = len(seeds)
	}
	if opt.Out != nil || opt.OnNodeCost != nil {
		lanes = 1
	}
	if lanes < 1 {
		lanes = 1
	}
	stats := interp.BatchStats{Seeds: len(seeds), Lanes: lanes}
	if len(seeds) == 0 {
		return stats, nil
	}
	if lanes == 1 {
		stats.Steps, stats.ExecNanos = p.runLane(opt, seeds, 0, sink)
		return stats, nil
	}
	var (
		wg         sync.WaitGroup
		stepsTot   atomic.Int64
		execNanos  atomic.Int64
		batchSeeds = len(seeds)
	)
	for k := 0; k < lanes; k++ {
		lo := k * batchSeeds / lanes
		hi := (k + 1) * batchSeeds / lanes
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			st, ex := p.runLane(opt, seeds[lo:hi], lo, sink)
			stepsTot.Add(st)
			execNanos.Add(ex)
		}(lo, hi)
	}
	wg.Wait()
	stats.Steps = stepsTot.Load()
	stats.ExecNanos = execNanos.Load()
	return stats, nil
}
