package vm

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/progen"
)

// benchProgram compiles the same generated program cmd/bench's "medium"
// scenario profiles, so pprof sessions on these benchmarks look at the
// instruction mix that the snapshot numbers come from.
func benchProgram(b *testing.B) *Program {
	b.Helper()
	src := progen.Generate(7, 80, 3)
	prog, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		b.Fatal(err)
	}
	p, err := Compile(res)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkRun measures the per-seed path: one Run call per iteration,
// fresh Result each time, pool-backed frames.
func BenchmarkRun(b *testing.B) {
	p := benchProgram(b)
	m := cost.Optimized
	opt := interp.Options{Model: &m}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := opt
		o.Seed = uint64(i) + 1
		res, err := p.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "nodes/s")
}

// BenchmarkRunBatch measures the batched path: arena frames, one reusable
// lane state, results recycled between seeds.
func BenchmarkRunBatch(b *testing.B) {
	p := benchProgram(b)
	m := cost.Optimized
	opt := interp.Options{Model: &m}
	seeds := make([]uint64, 64)
	for i := range seeds {
		seeds[i] = uint64(i) + 1
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := p.RunBatch(opt, seeds, 1, func(idx int, seed uint64, res *interp.Result, err error) bool {
			return false
		})
		if err != nil {
			b.Fatal(err)
		}
		steps += stats.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "nodes/s")
}
