package vm

import "repro/internal/interp"

// laneArena owns all frame storage of one batch lane. Frames are carved out
// of chunked slabs (one bulk allocation amortized over many activations)
// and recycled through per-procedure free lists, so a lane's steady state
// allocates nothing per seed: the arena only grows to the deepest live call
// chain the lane ever sees. Unlike the sync.Pool path used by single runs,
// nothing here is synchronized or reclaimed by the GC mid-batch — a lane is
// owned by exactly one goroutine.
type laneArena struct {
	// free[pi] is the LIFO of recycled frames for procedure pi. Calls
	// strictly nest, so a released frame is always reusable immediately.
	free [][]*frame

	// Current chunks; carving slices forward never invalidates slots
	// already handed out, because exhausted chunks are replaced, not grown.
	frames []frame
	vals   []interp.Value
	refs   []*interp.Value
	arrays []*interp.Array
	trips  []int64
}

// arenaChunk is the slab granularity, in elements.
const arenaChunk = 1024

func newLaneArena(numProcs int) *laneArena {
	return &laneArena{free: make([][]*frame, numProcs)}
}

func (a *laneArena) frameSlot() *frame {
	if len(a.frames) == 0 {
		a.frames = make([]frame, 64)
	}
	f := &a.frames[0]
	a.frames = a.frames[1:]
	return f
}

func (a *laneArena) valSlots(n int) []interp.Value {
	if n == 0 {
		return nil
	}
	if len(a.vals) < n {
		a.vals = make([]interp.Value, max(arenaChunk, n))
	}
	s := a.vals[:n:n]
	a.vals = a.vals[n:]
	return s
}

func (a *laneArena) refSlots(n int) []*interp.Value {
	if n == 0 {
		return nil
	}
	if len(a.refs) < n {
		a.refs = make([]*interp.Value, max(arenaChunk, n))
	}
	s := a.refs[:n:n]
	a.refs = a.refs[n:]
	return s
}

func (a *laneArena) arraySlots(n int) []*interp.Array {
	if n == 0 {
		return nil
	}
	if len(a.arrays) < n {
		a.arrays = make([]*interp.Array, max(arenaChunk, n))
	}
	s := a.arrays[:n:n]
	a.arrays = a.arrays[n:]
	return s
}

func (a *laneArena) tripSlots(n int) []int64 {
	if n == 0 {
		return nil
	}
	if len(a.trips) < n {
		a.trips = make([]int64, max(arenaChunk, n))
	}
	s := a.trips[:n:n]
	a.trips = a.trips[n:]
	return s
}

// getFrame returns a frame for procedure pi: locals seeded from the value
// template, trip counters cleared. Recycled frames keep stale refs and
// arrays (see putFrame); the call-time parameter bind and the procedure
// prologue rewrite every one of those slots before any instruction reads
// them, so observable state matches a frame from the sync.Pool path.
func (a *laneArena) getFrame(pi int, pc *procCode) *frame {
	if s := a.free[pi]; len(s) > 0 {
		f := s[len(s)-1]
		a.free[pi] = s[:len(s)-1]
		copy(f.vals, pc.valTemplate)
		for i := range f.trips {
			f.trips[i] = 0
		}
		return f
	}
	f := a.frameSlot()
	f.vals = a.valSlots(len(pc.valTemplate))
	f.refs = a.refSlots(pc.numRefs)
	f.arrays = a.arraySlots(pc.numArrays)
	f.trips = a.tripSlots(pc.numTrips)
	copy(f.vals, pc.valTemplate)
	return f
}

// putFrame releases a frame back to its procedure's free list. Unlike the
// sync.Pool path, stale refs and arrays are NOT dropped: every ref slot is
// a scalar parameter and every array slot is a parameter or a
// prologue-allocated local, so each one is rewritten before use on the
// next activation, and anything a stale pointer pins lives at most until
// the lane's arena is released at the end of the batch. Skipping the
// clear avoids a pointer-write barrier per slot on the hottest release
// path.
func (a *laneArena) putFrame(pi int, f *frame) {
	a.free[pi] = append(a.free[pi], f)
}
