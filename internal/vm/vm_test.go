package vm

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/progen"
)

func lowerSrc(t *testing.T, src string) *lower.Result {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v\n%s", err, src)
	}
	return res
}

// diffResults returns a description of the first difference between two
// interp.Results, or "" when they are bit-identical.
func diffResults(tree, vm *interp.Result) string {
	if tree.Steps != vm.Steps {
		return fmt.Sprintf("Steps: tree %d vm %d", tree.Steps, vm.Steps)
	}
	if tree.Cost != vm.Cost {
		return fmt.Sprintf("Cost: tree %v vm %v", tree.Cost, vm.Cost)
	}
	if tree.Stopped != vm.Stopped {
		return fmt.Sprintf("Stopped: tree %v vm %v", tree.Stopped, vm.Stopped)
	}
	if len(tree.ByProc) != len(vm.ByProc) {
		return fmt.Sprintf("ByProc size: tree %d vm %d", len(tree.ByProc), len(vm.ByProc))
	}
	for name, tc := range tree.ByProc {
		vc := vm.ByProc[name]
		if vc == nil {
			return fmt.Sprintf("proc %s missing from vm result", name)
		}
		if tc.Activations != vc.Activations {
			return fmt.Sprintf("%s Activations: tree %d vm %d", name, tc.Activations, vc.Activations)
		}
		if len(tc.Node) != len(vc.Node) {
			return fmt.Sprintf("%s Node len: tree %d vm %d", name, len(tc.Node), len(vc.Node))
		}
		for id := range tc.Node {
			if tc.Node[id] != vc.Node[id] {
				return fmt.Sprintf("%s Node[%d]: tree %d vm %d", name, id, tc.Node[id], vc.Node[id])
			}
		}
		for id := range tc.Edge {
			if len(tc.Edge[id]) != len(vc.Edge[id]) {
				return fmt.Sprintf("%s Edge[%d] len: tree %d vm %d", name, id, len(tc.Edge[id]), len(vc.Edge[id]))
			}
			for k := range tc.Edge[id] {
				if tc.Edge[id][k] != vc.Edge[id][k] {
					return fmt.Sprintf("%s Edge[%d][%d]: tree %d vm %d", name, id, k, tc.Edge[id][k], vc.Edge[id][k])
				}
			}
		}
	}
	return ""
}

func runBoth(t *testing.T, src string, opt interp.Options) (*interp.Result, error, *interp.Result, error) {
	t.Helper()
	res := lowerSrc(t, src)
	topt := opt
	topt.Engine = interp.EngineTree
	tr, terr := interp.Run(res, topt)
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	vr, verr := prog.Run(opt)
	return tr, terr, vr, verr
}

// TestDifferentialProgen runs generated programs of every family on both
// engines and requires bit-identical results, PRINT output included.
func TestDifferentialProgen(t *testing.T) {
	t.Parallel()
	families := []struct {
		name string
		opts progen.Opts
	}{
		{"branchy", progen.Opts{}},
		{"branch-free", progen.Opts{BranchFree: true}},
		{"det-loop", progen.Opts{BranchFree: true, ConstLoops: true}},
	}
	model := cost.Optimized
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 80; seed++ {
				src := progen.GenerateOpts(seed, 2+int(seed%10), 1+int(seed%4), fam.opts)
				res := lowerSrc(t, src)
				prog, err := Compile(res)
				if err != nil {
					t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
				}
				for _, runSeed := range []uint64{seed, seed * 77} {
					var tout, vout bytes.Buffer
					m := model
					topt := interp.Options{Seed: runSeed, MaxSteps: 5_000_000, Model: &m, Out: &tout, Engine: interp.EngineTree}
					tr, terr := interp.Run(res, topt)
					vopt := topt
					vopt.Out = &vout
					vopt.Engine = interp.EngineVM
					vr, verr := prog.Run(vopt)
					if (terr == nil) != (verr == nil) || (terr != nil && terr.Error() != verr.Error()) {
						t.Fatalf("seed %d run %d: err tree=%v vm=%v\n%s", seed, runSeed, terr, verr, src)
					}
					if terr != nil {
						continue
					}
					if d := diffResults(tr, vr); d != "" {
						t.Fatalf("seed %d run %d: %s\n%s", seed, runSeed, d, src)
					}
					if tout.String() != vout.String() {
						t.Fatalf("seed %d run %d: PRINT output differs\ntree: %q\nvm:   %q\n%s",
							seed, runSeed, tout.String(), vout.String(), src)
					}
				}
			}
		})
	}
}

// TestErrorParity checks the engines produce the same runtime errors,
// message for message.
func TestErrorParity(t *testing.T) {
	t.Parallel()
	cases := []string{
		// Integer division by zero.
		"      PROGRAM P\n      INTEGER I\n      I = 0\n      I = 7 / I\n      END\n",
		// Step limit exceeded.
		"      PROGRAM P\n      INTEGER I, J\n      DO 10 I = 1, 100000000\n      J = J + 1\n   10 CONTINUE\n      END\n",
		// SQRT of negative value.
		"      PROGRAM P\n      REAL X\n      X = -4.0\n      X = SQRT(X)\n      END\n",
		// Subscript out of bounds.
		"      PROGRAM P\n      INTEGER A(5), I\n      I = 9\n      A(I) = 1\n      END\n",
		// MOD by zero.
		"      PROGRAM P\n      INTEGER I\n      I = 0\n      I = MOD(4, I)\n      END\n",
	}
	for i, src := range cases {
		tr, terr, vr, verr := runBoth(t, src, interp.Options{MaxSteps: 10000})
		if terr == nil || verr == nil {
			t.Fatalf("case %d: expected errors, tree=%v vm=%v", i, terr, verr)
		}
		if terr.Error() != verr.Error() {
			t.Fatalf("case %d: tree err %q vm err %q", i, terr, verr)
		}
		_ = tr
		_ = vr
	}
}

// TestSubroutineParity exercises by-reference arguments, array passing and
// recursion depth handling across the call boundary.
func TestSubroutineParity(t *testing.T) {
	t.Parallel()
	src := `      PROGRAM P
      INTEGER A(10), I, S
      DO 10 I = 1, 10
      A(I) = I * I
   10 CONTINUE
      S = 0
      CALL SUM(A, 10, S)
      PRINT *, S
      END
      SUBROUTINE SUM(V, N, ACC)
      INTEGER V(N), N, ACC, J
      ACC = 0
      DO 20 J = 1, N
      ACC = ACC + V(J)
   20 CONTINUE
      END
`
	var tout, vout bytes.Buffer
	res := lowerSrc(t, src)
	m := cost.Optimized
	tr, terr := interp.Run(res, interp.Options{Model: &m, Out: &tout, Engine: interp.EngineTree})
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vr, verr := prog.Run(interp.Options{Model: &m, Out: &vout})
	if terr != nil || verr != nil {
		t.Fatalf("tree err %v, vm err %v", terr, verr)
	}
	if d := diffResults(tr, vr); d != "" {
		t.Fatal(d)
	}
	if tout.String() != vout.String() {
		t.Fatalf("output differs: tree %q vm %q", tout.String(), vout.String())
	}
	if tout.String() != " 385\n" && tout.String() == "" {
		t.Fatalf("unexpected output %q", tout.String())
	}
}

// TestEngineDispatch checks interp.Run routes to the VM when asked and
// that results still match the tree engine.
func TestEngineDispatch(t *testing.T) {
	t.Parallel()
	src := progen.Generate(11, 8, 3)
	res := lowerSrc(t, src)
	m := cost.Optimized
	tr, terr := interp.Run(res, interp.Options{Seed: 3, Model: &m, Engine: interp.EngineTree})
	vr, verr := interp.Run(res, interp.Options{Seed: 3, Model: &m, Engine: interp.EngineVM})
	if terr != nil || verr != nil {
		t.Fatalf("tree err %v, vm err %v", terr, verr)
	}
	if d := diffResults(tr, vr); d != "" {
		t.Fatal(d)
	}
}

// TestCompileReuse ensures one compiled Program yields independent,
// reproducible results across many seeds (compile-once/run-many contract).
func TestCompileReuse(t *testing.T) {
	t.Parallel()
	src := progen.Generate(5, 10, 3)
	res := lowerSrc(t, src)
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := cost.Optimized
	first := make(map[uint64]*interp.Result)
	for round := 0; round < 2; round++ {
		for seed := uint64(0); seed < 8; seed++ {
			mc := m
			r, err := prog.Run(interp.Options{Seed: seed, Model: &mc, MaxSteps: 2_000_000})
			if err != nil {
				t.Fatalf("round %d seed %d: %v", round, seed, err)
			}
			if round == 0 {
				first[seed] = r
			} else if d := diffResults(first[seed], r); d != "" {
				t.Fatalf("seed %d not reproducible: %s", seed, d)
			}
		}
	}
}

// batchAll runs a whole seed batch with a retaining sink and returns the
// per-seed results and errors, indexed like seeds.
func batchAll(t *testing.T, prog *Program, opt interp.Options, seeds []uint64, lanes int) ([]*interp.Result, []error) {
	t.Helper()
	results := make([]*interp.Result, len(seeds))
	errs := make([]error, len(seeds))
	stats, err := prog.RunBatch(opt, seeds, lanes, func(idx int, seed uint64, res *interp.Result, err error) bool {
		if seeds[idx] != seed {
			t.Errorf("sink idx %d: seed %d, want %d", idx, seed, seeds[idx])
		}
		results[idx] = res
		errs[idx] = err
		return true
	})
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if stats.Seeds != len(seeds) {
		t.Fatalf("stats.Seeds = %d, want %d", stats.Seeds, len(seeds))
	}
	return results, errs
}

// TestDifferentialBatch is the third axis of the differential suite: the
// same programs and seeds through tree, per-seed vm and vm-batch at lane
// counts 1, 3 and 16, all required bit-identical.
func TestDifferentialBatch(t *testing.T) {
	t.Parallel()
	families := []struct {
		name string
		opts progen.Opts
	}{
		{"branchy", progen.Opts{}},
		{"branch-free", progen.Opts{BranchFree: true}},
		{"det-loop", progen.Opts{BranchFree: true, ConstLoops: true}},
	}
	model := cost.Optimized
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 20; seed++ {
				src := progen.GenerateOpts(seed, 2+int(seed%10), 1+int(seed%4), fam.opts)
				res := lowerSrc(t, src)
				prog, err := Compile(res)
				if err != nil {
					t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
				}
				runSeeds := make([]uint64, 16)
				for k := range runSeeds {
					runSeeds[k] = seed*77 + uint64(k)*13
				}
				m := model
				opt := interp.Options{MaxSteps: 5_000_000, Model: &m}
				// Reference: tree-walker, one run per seed.
				want := make([]*interp.Result, len(runSeeds))
				wantErr := make([]error, len(runSeeds))
				for k, rs := range runSeeds {
					o := opt
					o.Seed = rs
					o.Engine = interp.EngineTree
					want[k], wantErr[k] = interp.Run(res, o)
				}
				for _, lanes := range []int{1, 3, 16} {
					got, errs := batchAll(t, prog, opt, runSeeds, lanes)
					for k := range runSeeds {
						if (wantErr[k] == nil) != (errs[k] == nil) ||
							(wantErr[k] != nil && wantErr[k].Error() != errs[k].Error()) {
							t.Fatalf("seed %d lanes %d run %d: err tree=%v batch=%v\n%s",
								seed, lanes, runSeeds[k], wantErr[k], errs[k], src)
						}
						if wantErr[k] != nil {
							continue
						}
						if d := diffResults(want[k], got[k]); d != "" {
							t.Fatalf("seed %d lanes %d run %d: %s\n%s", seed, lanes, runSeeds[k], d, src)
						}
					}
				}
			}
		})
	}
}

// TestBatchErrorMidBatch builds a batch where some seeds hit a runtime
// error: error seeds must report the tree-walker's exact error through the
// sink, the batch must keep going, and later seeds on the same lane must be
// unaffected by the mid-batch unwinding.
func TestBatchErrorMidBatch(t *testing.T) {
	t.Parallel()
	// IRAND(3) draws 1, 2 or 3 per seed; the division errors exactly when
	// it draws 1, so the batch mixes failing and succeeding seeds.
	src := `      PROGRAM P
      INTEGER I, J, K, S
      S = 0
      DO 10 K = 1, 4
      I = IRAND(3)
      J = 6 / (I - 1)
      S = S + J
   10 CONTINUE
      PRINT *, S
      END
`
	res := lowerSrc(t, src)
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	seeds := make([]uint64, 40)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	m := cost.Optimized
	opt := interp.Options{MaxSteps: 100000, Model: &m}
	want := make([]*interp.Result, len(seeds))
	wantErr := make([]error, len(seeds))
	failing := 0
	for i, s := range seeds {
		o := opt
		o.Seed = s
		o.Engine = interp.EngineTree
		want[i], wantErr[i] = interp.Run(res, o)
		if wantErr[i] != nil {
			failing++
		}
	}
	if failing == 0 || failing == len(seeds) {
		t.Fatalf("bad corpus: %d/%d failing seeds, need a mix", failing, len(seeds))
	}
	for _, lanes := range []int{1, 3, 16} {
		got, errs := batchAll(t, prog, opt, seeds, lanes)
		for i := range seeds {
			if (wantErr[i] == nil) != (errs[i] == nil) ||
				(wantErr[i] != nil && wantErr[i].Error() != errs[i].Error()) {
				t.Fatalf("lanes %d seed %d: err tree=%v batch=%v", lanes, seeds[i], wantErr[i], errs[i])
			}
			if wantErr[i] != nil {
				continue
			}
			if d := diffResults(want[i], got[i]); d != "" {
				t.Fatalf("lanes %d seed %d: %s", lanes, seeds[i], d)
			}
		}
	}
}

// TestBatchPrintOrdering checks that a batch carrying an output writer is
// forced onto one lane and produces exactly the sequential per-seed output.
func TestBatchPrintOrdering(t *testing.T) {
	t.Parallel()
	src := `      PROGRAM P
      INTEGER I
      I = IRAND(100)
      PRINT *, 'SEED DREW', I
      END
`
	res := lowerSrc(t, src)
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	seeds := []uint64{5, 9, 2, 14, 3, 3, 11}
	var want bytes.Buffer
	for _, s := range seeds {
		if _, err := interp.Run(res, interp.Options{Seed: s, Out: &want, Engine: interp.EngineTree}); err != nil {
			t.Fatalf("tree seed %d: %v", s, err)
		}
	}
	var got bytes.Buffer
	stats, err := prog.RunBatch(interp.Options{Out: &got}, seeds, 16, nil)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if stats.Lanes != 1 {
		t.Fatalf("Out set: lanes = %d, want 1", stats.Lanes)
	}
	if got.String() != want.String() {
		t.Fatalf("batch output differs\nbatch: %q\ntree:  %q", got.String(), want.String())
	}
}

// TestBatchArenaReuse drives one lane directly through seeds with different
// behaviors and re-runs the first seed last: identical results prove the
// arena hands back fully zeroed frames (locals re-seeded, trips cleared,
// refs/arrays dropped) between seeds.
func TestBatchArenaReuse(t *testing.T) {
	t.Parallel()
	src := progen.Generate(7, 12, 3)
	res := lowerSrc(t, src)
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := cost.Optimized
	ls := newLaneState(prog, interp.Options{MaxSteps: 2_000_000, Model: &m})
	first, err := ls.runSeed(3)
	if err != nil {
		t.Fatalf("seed 3: %v", err)
	}
	snap := cloneResult(first)
	for _, s := range []uint64{8, 1, 99} {
		if _, err := ls.runSeed(s); err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
	}
	again, err := ls.runSeed(3)
	if err != nil {
		t.Fatalf("seed 3 again: %v", err)
	}
	if d := diffResults(snap, again); d != "" {
		t.Fatalf("lane state leaked across seeds: %s", d)
	}
	// The lane reuses its result storage between seeds unless retained.
	if first != again {
		t.Fatal("lane rebuilt result storage without a retain")
	}
}

// cloneResult deep-copies a Result so it survives lane storage reuse.
func cloneResult(r *interp.Result) *interp.Result {
	out := &interp.Result{Steps: r.Steps, Cost: r.Cost, Stopped: r.Stopped,
		ByProc: make(map[string]*interp.Counts, len(r.ByProc))}
	for name, ct := range r.ByProc {
		cc := &interp.Counts{
			Node:        append([]int64(nil), ct.Node...),
			Edge:        make([][]int64, len(ct.Edge)),
			Activations: ct.Activations,
		}
		for i := range ct.Edge {
			cc.Edge[i] = append([]int64(nil), ct.Edge[i]...)
		}
		out.ByProc[name] = cc
	}
	return out
}

// TestBatchRetain checks the ownership contract: a retained Result must
// stay intact while the lane keeps running, and an unretained one is
// recycled storage.
func TestBatchRetain(t *testing.T) {
	t.Parallel()
	src := progen.Generate(13, 10, 2)
	res := lowerSrc(t, src)
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := cost.Optimized
	opt := interp.Options{MaxSteps: 2_000_000, Model: &m}
	seeds := []uint64{4, 7, 19, 23, 42}
	retained := make([]*interp.Result, len(seeds))
	if _, err := prog.RunBatch(opt, seeds, 1, func(idx int, seed uint64, r *interp.Result, err error) bool {
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		retained[idx] = r
		return true
	}); err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i, s := range seeds {
		for j := i + 1; j < len(seeds); j++ {
			if retained[i] == retained[j] {
				t.Fatalf("retained results for seeds %d and %d alias", s, seeds[j])
			}
		}
		single, err := prog.Run(interp.Options{Seed: s, MaxSteps: 2_000_000, Model: &m})
		if err != nil {
			t.Fatalf("single seed %d: %v", s, err)
		}
		if d := diffResults(single, retained[i]); d != "" {
			t.Fatalf("seed %d: retained result corrupted: %s", s, d)
		}
	}
}

// TestFusionDifferential compiles the same programs with and without the
// superinstruction pass and requires bit-identical results, while checking
// the pass actually fires on loopy programs.
func TestFusionDifferential(t *testing.T) {
	t.Parallel()
	m := cost.Optimized
	anyFused := false
	for seed := uint64(1); seed <= 40; seed++ {
		src := progen.GenerateOpts(seed, 4+int(seed%8), 1+int(seed%3), progen.Opts{ConstLoops: seed%2 == 0})
		res := lowerSrc(t, src)
		fusedProg, err := Compile(res)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		plainProg, err := CompileOpts(res, CompileOptions{NoFuse: true})
		if err != nil {
			t.Fatalf("seed %d: compile nofuse: %v", seed, err)
		}
		if plainProg.FusedInstructions() != 0 {
			t.Fatalf("seed %d: NoFuse program reports %d fused instructions", seed, plainProg.FusedInstructions())
		}
		if fusedProg.FusedInstructions() > 0 {
			anyFused = true
		}
		if fusedProg.NumInstructions()+fusedProg.FusedInstructions() != plainProg.NumInstructions() {
			t.Fatalf("seed %d: instruction accounting: fused %d + eliminated %d != plain %d",
				seed, fusedProg.NumInstructions(), fusedProg.FusedInstructions(), plainProg.NumInstructions())
		}
		for _, runSeed := range []uint64{seed, seed * 31} {
			var fout, pout bytes.Buffer
			mf, mp := m, m
			fr, ferr := fusedProg.Run(interp.Options{Seed: runSeed, MaxSteps: 2_000_000, Model: &mf, Out: &fout})
			pr, perr := plainProg.Run(interp.Options{Seed: runSeed, MaxSteps: 2_000_000, Model: &mp, Out: &pout})
			if (ferr == nil) != (perr == nil) || (ferr != nil && ferr.Error() != perr.Error()) {
				t.Fatalf("seed %d run %d: err fused=%v plain=%v\n%s", seed, runSeed, ferr, perr, src)
			}
			if ferr != nil {
				continue
			}
			if d := diffResults(pr, fr); d != "" {
				t.Fatalf("seed %d run %d: fused vs plain: %s\n%s", seed, runSeed, d, src)
			}
			if fout.String() != pout.String() {
				t.Fatalf("seed %d run %d: PRINT differs\nfused: %q\nplain: %q", seed, runSeed, fout.String(), pout.String())
			}
		}
	}
	if !anyFused {
		t.Fatal("superinstruction pass never fired on the progen corpus")
	}
}

// TestCheckProc verifies the lint-mode compiler accepts every generated
// program (the progen surface is fully compilable).
func TestCheckProc(t *testing.T) {
	t.Parallel()
	for seed := uint64(1); seed <= 30; seed++ {
		res := lowerSrc(t, progen.Generate(seed, 6, 3))
		for _, p := range res.Procs {
			if err := CheckProc(p); err != nil {
				t.Fatalf("seed %d proc %s: %v", seed, p.G.Name, err)
			}
		}
	}
}
