package vm

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/progen"
)

func lowerSrc(t *testing.T, src string) *lower.Result {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	res, err := lower.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v\n%s", err, src)
	}
	return res
}

// diffResults returns a description of the first difference between two
// interp.Results, or "" when they are bit-identical.
func diffResults(tree, vm *interp.Result) string {
	if tree.Steps != vm.Steps {
		return fmt.Sprintf("Steps: tree %d vm %d", tree.Steps, vm.Steps)
	}
	if tree.Cost != vm.Cost {
		return fmt.Sprintf("Cost: tree %v vm %v", tree.Cost, vm.Cost)
	}
	if tree.Stopped != vm.Stopped {
		return fmt.Sprintf("Stopped: tree %v vm %v", tree.Stopped, vm.Stopped)
	}
	if len(tree.ByProc) != len(vm.ByProc) {
		return fmt.Sprintf("ByProc size: tree %d vm %d", len(tree.ByProc), len(vm.ByProc))
	}
	for name, tc := range tree.ByProc {
		vc := vm.ByProc[name]
		if vc == nil {
			return fmt.Sprintf("proc %s missing from vm result", name)
		}
		if tc.Activations != vc.Activations {
			return fmt.Sprintf("%s Activations: tree %d vm %d", name, tc.Activations, vc.Activations)
		}
		if len(tc.Node) != len(vc.Node) {
			return fmt.Sprintf("%s Node len: tree %d vm %d", name, len(tc.Node), len(vc.Node))
		}
		for id := range tc.Node {
			if tc.Node[id] != vc.Node[id] {
				return fmt.Sprintf("%s Node[%d]: tree %d vm %d", name, id, tc.Node[id], vc.Node[id])
			}
		}
		for id := range tc.Edge {
			if len(tc.Edge[id]) != len(vc.Edge[id]) {
				return fmt.Sprintf("%s Edge[%d] len: tree %d vm %d", name, id, len(tc.Edge[id]), len(vc.Edge[id]))
			}
			for k := range tc.Edge[id] {
				if tc.Edge[id][k] != vc.Edge[id][k] {
					return fmt.Sprintf("%s Edge[%d][%d]: tree %d vm %d", name, id, k, tc.Edge[id][k], vc.Edge[id][k])
				}
			}
		}
	}
	return ""
}

func runBoth(t *testing.T, src string, opt interp.Options) (*interp.Result, error, *interp.Result, error) {
	t.Helper()
	res := lowerSrc(t, src)
	topt := opt
	topt.Engine = interp.EngineTree
	tr, terr := interp.Run(res, topt)
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	vr, verr := prog.Run(opt)
	return tr, terr, vr, verr
}

// TestDifferentialProgen runs generated programs of every family on both
// engines and requires bit-identical results, PRINT output included.
func TestDifferentialProgen(t *testing.T) {
	t.Parallel()
	families := []struct {
		name string
		opts progen.Opts
	}{
		{"branchy", progen.Opts{}},
		{"branch-free", progen.Opts{BranchFree: true}},
		{"det-loop", progen.Opts{BranchFree: true, ConstLoops: true}},
	}
	model := cost.Optimized
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 80; seed++ {
				src := progen.GenerateOpts(seed, 2+int(seed%10), 1+int(seed%4), fam.opts)
				res := lowerSrc(t, src)
				prog, err := Compile(res)
				if err != nil {
					t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
				}
				for _, runSeed := range []uint64{seed, seed * 77} {
					var tout, vout bytes.Buffer
					m := model
					topt := interp.Options{Seed: runSeed, MaxSteps: 5_000_000, Model: &m, Out: &tout, Engine: interp.EngineTree}
					tr, terr := interp.Run(res, topt)
					vopt := topt
					vopt.Out = &vout
					vopt.Engine = interp.EngineVM
					vr, verr := prog.Run(vopt)
					if (terr == nil) != (verr == nil) || (terr != nil && terr.Error() != verr.Error()) {
						t.Fatalf("seed %d run %d: err tree=%v vm=%v\n%s", seed, runSeed, terr, verr, src)
					}
					if terr != nil {
						continue
					}
					if d := diffResults(tr, vr); d != "" {
						t.Fatalf("seed %d run %d: %s\n%s", seed, runSeed, d, src)
					}
					if tout.String() != vout.String() {
						t.Fatalf("seed %d run %d: PRINT output differs\ntree: %q\nvm:   %q\n%s",
							seed, runSeed, tout.String(), vout.String(), src)
					}
				}
			}
		})
	}
}

// TestErrorParity checks the engines produce the same runtime errors,
// message for message.
func TestErrorParity(t *testing.T) {
	t.Parallel()
	cases := []string{
		// Integer division by zero.
		"      PROGRAM P\n      INTEGER I\n      I = 0\n      I = 7 / I\n      END\n",
		// Step limit exceeded.
		"      PROGRAM P\n      INTEGER I, J\n      DO 10 I = 1, 100000000\n      J = J + 1\n   10 CONTINUE\n      END\n",
		// SQRT of negative value.
		"      PROGRAM P\n      REAL X\n      X = -4.0\n      X = SQRT(X)\n      END\n",
		// Subscript out of bounds.
		"      PROGRAM P\n      INTEGER A(5), I\n      I = 9\n      A(I) = 1\n      END\n",
		// MOD by zero.
		"      PROGRAM P\n      INTEGER I\n      I = 0\n      I = MOD(4, I)\n      END\n",
	}
	for i, src := range cases {
		tr, terr, vr, verr := runBoth(t, src, interp.Options{MaxSteps: 10000})
		if terr == nil || verr == nil {
			t.Fatalf("case %d: expected errors, tree=%v vm=%v", i, terr, verr)
		}
		if terr.Error() != verr.Error() {
			t.Fatalf("case %d: tree err %q vm err %q", i, terr, verr)
		}
		_ = tr
		_ = vr
	}
}

// TestSubroutineParity exercises by-reference arguments, array passing and
// recursion depth handling across the call boundary.
func TestSubroutineParity(t *testing.T) {
	t.Parallel()
	src := `      PROGRAM P
      INTEGER A(10), I, S
      DO 10 I = 1, 10
      A(I) = I * I
   10 CONTINUE
      S = 0
      CALL SUM(A, 10, S)
      PRINT *, S
      END
      SUBROUTINE SUM(V, N, ACC)
      INTEGER V(N), N, ACC, J
      ACC = 0
      DO 20 J = 1, N
      ACC = ACC + V(J)
   20 CONTINUE
      END
`
	var tout, vout bytes.Buffer
	res := lowerSrc(t, src)
	m := cost.Optimized
	tr, terr := interp.Run(res, interp.Options{Model: &m, Out: &tout, Engine: interp.EngineTree})
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vr, verr := prog.Run(interp.Options{Model: &m, Out: &vout})
	if terr != nil || verr != nil {
		t.Fatalf("tree err %v, vm err %v", terr, verr)
	}
	if d := diffResults(tr, vr); d != "" {
		t.Fatal(d)
	}
	if tout.String() != vout.String() {
		t.Fatalf("output differs: tree %q vm %q", tout.String(), vout.String())
	}
	if tout.String() != " 385\n" && tout.String() == "" {
		t.Fatalf("unexpected output %q", tout.String())
	}
}

// TestEngineDispatch checks interp.Run routes to the VM when asked and
// that results still match the tree engine.
func TestEngineDispatch(t *testing.T) {
	t.Parallel()
	src := progen.Generate(11, 8, 3)
	res := lowerSrc(t, src)
	m := cost.Optimized
	tr, terr := interp.Run(res, interp.Options{Seed: 3, Model: &m, Engine: interp.EngineTree})
	vr, verr := interp.Run(res, interp.Options{Seed: 3, Model: &m, Engine: interp.EngineVM})
	if terr != nil || verr != nil {
		t.Fatalf("tree err %v, vm err %v", terr, verr)
	}
	if d := diffResults(tr, vr); d != "" {
		t.Fatal(d)
	}
}

// TestCompileReuse ensures one compiled Program yields independent,
// reproducible results across many seeds (compile-once/run-many contract).
func TestCompileReuse(t *testing.T) {
	t.Parallel()
	src := progen.Generate(5, 10, 3)
	res := lowerSrc(t, src)
	prog, err := Compile(res)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := cost.Optimized
	first := make(map[uint64]*interp.Result)
	for round := 0; round < 2; round++ {
		for seed := uint64(0); seed < 8; seed++ {
			mc := m
			r, err := prog.Run(interp.Options{Seed: seed, Model: &mc, MaxSteps: 2_000_000})
			if err != nil {
				t.Fatalf("round %d seed %d: %v", round, seed, err)
			}
			if round == 0 {
				first[seed] = r
			} else if d := diffResults(first[seed], r); d != "" {
				t.Fatalf("seed %d not reproducible: %s", seed, d)
			}
		}
	}
}

// TestCheckProc verifies the lint-mode compiler accepts every generated
// program (the progen surface is fully compilable).
func TestCheckProc(t *testing.T) {
	t.Parallel()
	for seed := uint64(1); seed <= 30; seed++ {
		res := lowerSrc(t, progen.Generate(seed, 6, 3))
		for _, p := range res.Procs {
			if err := CheckProc(p); err != nil {
				t.Fatalf("seed %d proc %s: %v", seed, p.G.Name, err)
			}
		}
	}
}
