package vm

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/wire"
)

// EncodeProc serializes one compiled procedure's bytecode and tables. The
// lowered-proc back-pointer is re-attached by ComposeProgram; everything
// else — including the global callee indices baked into opCall operands —
// is written verbatim, so the blob is only valid for the exact procedure
// set it was compiled against (the artifact cache's link hash keys on
// that).
func (p *Program) EncodeProc(name string, w *wire.Writer) bool {
	i, ok := p.byName[name]
	if !ok {
		return false
	}
	pc := p.procs[i]
	w.String(pc.name)
	w.Uvarint(uint64(len(pc.ins)))
	for _, in := range pc.ins {
		w.U8(uint8(in.op))
		w.Varint(int64(in.a))
		w.Varint(int64(in.b))
		w.Varint(int64(in.c))
		w.Varint(int64(in.d))
		w.Varint(int64(in.e))
		w.Varint(int64(in.f))
	}
	w.Uvarint(uint64(len(pc.consts)))
	for _, v := range pc.consts {
		encodeVMValue(w, v)
	}
	w.Uvarint(uint64(len(pc.strs)))
	for _, s := range pc.strs {
		w.String(s)
	}
	w.Uvarint(uint64(len(pc.arms)))
	for _, a := range pc.arms {
		w.Varint(int64(a.ip))
		w.Varint(int64(a.flat))
	}
	w.Uvarint(uint64(len(pc.lines)))
	for _, l := range pc.lines {
		w.Varint(int64(l))
	}
	w.Uvarint(uint64(len(pc.edgeOff)))
	for _, o := range pc.edgeOff {
		w.Varint(int64(o))
	}
	w.Int(pc.numEdges)
	w.Uvarint(uint64(len(pc.valTemplate)))
	for _, v := range pc.valTemplate {
		encodeVMValue(w, v)
	}
	w.Int(pc.numRefs)
	w.Int(pc.numArrays)
	w.Int(pc.numTrips)
	w.Uvarint(uint64(len(pc.tripNodes)))
	for _, n := range pc.tripNodes {
		w.Varint(int64(n))
	}
	w.Uvarint(uint64(len(pc.params)))
	for _, pb := range pc.params {
		w.Varint(int64(pb.slot))
		w.Bool(pb.isArray)
	}
	w.Uvarint(uint64(len(pc.meta)))
	for _, m := range pc.meta {
		w.String(m.name)
		w.U8(uint8(m.typ))
	}
	w.Varint(int64(pc.entry))
	w.Int(pc.maxStack)
	w.Int(pc.fused)
	return true
}

func encodeVMValue(w *wire.Writer, v interp.Value) {
	w.U8(uint8(v.T))
	w.Varint(v.I)
	w.F64(v.R)
	w.Bool(v.B)
}

func decodeVMValue(r *wire.Reader) interp.Value {
	v := interp.Value{T: lang.Type(r.U8()), I: r.Varint(), R: r.F64(), B: r.Bool()}
	if r.Err() == nil && (v.T < lang.TNone || v.T > lang.TLogical) {
		r.Failf("invalid value type %d", int(v.T))
	}
	return v
}

// decodeProcCode reads one procedure's bytecode, re-attaching proc, and
// validates the tables that the exec loop indexes without bounds checks
// (instruction range of entry, per-node line/edge tables, flat edge-counter
// extents). Anything inconsistent fails the reader; the caller treats it as
// a cache miss and recompiles.
func decodeProcCode(r *wire.Reader, proc *lower.Proc) *procCode {
	pc := &procCode{proc: proc}
	pc.name = r.String()
	if r.Err() == nil && pc.name != proc.G.Name {
		r.Failf("vm blob is for %q, lowered proc is %q", pc.name, proc.G.Name)
		return pc
	}
	ni := r.Count(7)
	pc.ins = make([]instr, 0, ni)
	for i := 0; i < ni; i++ {
		in := instr{
			op: opcode(r.U8()),
			a:  int32(r.Varint()),
			b:  int32(r.Varint()),
			c:  int32(r.Varint()),
			d:  int32(r.Varint()),
			e:  int32(r.Varint()),
			f:  int32(r.Varint()),
		}
		if r.Err() != nil {
			return pc
		}
		if in.op > opActivateGoto {
			r.Failf("invalid opcode %d", int(in.op))
			return pc
		}
		pc.ins = append(pc.ins, in)
	}
	nc := r.Count(4)
	pc.consts = make([]interp.Value, 0, nc)
	for i := 0; i < nc; i++ {
		pc.consts = append(pc.consts, decodeVMValue(r))
	}
	ns := r.Count(1)
	pc.strs = make([]string, 0, ns)
	for i := 0; i < ns; i++ {
		pc.strs = append(pc.strs, r.String())
	}
	na := r.Count(2)
	pc.arms = make([]arm, 0, na)
	for i := 0; i < na; i++ {
		a := arm{ip: int32(r.Varint()), flat: int32(r.Varint())}
		if r.Err() != nil {
			return pc
		}
		if a.ip < 0 || int(a.ip) >= len(pc.ins) {
			r.Failf("arm target %d outside %d instructions", a.ip, len(pc.ins))
			return pc
		}
		pc.arms = append(pc.arms, a)
	}
	maxID := int(proc.G.MaxID())
	nl := r.Count(1)
	if r.Err() == nil && nl != maxID+1 {
		r.Failf("line table has %d entries, graph wants %d", nl, maxID+1)
		return pc
	}
	pc.lines = make([]int32, nl)
	for i := 0; i < nl; i++ {
		pc.lines[i] = int32(r.Varint())
	}
	ne := r.Count(1)
	if r.Err() == nil && ne != maxID+1 {
		r.Failf("edge offset table has %d entries, graph wants %d", ne, maxID+1)
		return pc
	}
	pc.edgeOff = make([]int32, ne)
	for i := 0; i < ne; i++ {
		pc.edgeOff[i] = int32(r.Varint())
	}
	pc.numEdges = r.Int()
	if r.Err() != nil {
		return pc
	}
	if pc.numEdges < 0 {
		r.Failf("negative edge count %d", pc.numEdges)
		return pc
	}
	for id := cfg.NodeID(1); id <= proc.G.MaxID(); id++ {
		off := int(pc.edgeOff[id])
		n := len(proc.G.OutEdges(id))
		if off < 0 || off+n > pc.numEdges {
			r.Failf("edge offsets of node %d (%d+%d) exceed %d flat counters", id, off, n, pc.numEdges)
			return pc
		}
	}
	nv := r.Count(4)
	pc.valTemplate = make([]interp.Value, 0, nv)
	for i := 0; i < nv; i++ {
		pc.valTemplate = append(pc.valTemplate, decodeVMValue(r))
	}
	pc.numRefs = r.Int()
	pc.numArrays = r.Int()
	pc.numTrips = r.Int()
	if r.Err() != nil {
		return pc
	}
	if pc.numRefs < 0 || pc.numArrays < 0 || pc.numTrips < 0 {
		r.Failf("negative frame extent (%d refs, %d arrays, %d trips)", pc.numRefs, pc.numArrays, pc.numTrips)
		return pc
	}
	nt := r.Count(1)
	if r.Err() == nil && nt != pc.numTrips {
		r.Failf("trip node table has %d entries, want %d", nt, pc.numTrips)
		return pc
	}
	pc.tripNodes = make([]cfg.NodeID, 0, nt)
	for i := 0; i < nt; i++ {
		pc.tripNodes = append(pc.tripNodes, cfg.DecodeNodeID(r, proc.G))
	}
	np := r.Count(2)
	if r.Err() == nil && np != len(proc.Unit.Params) {
		r.Failf("param table has %d entries, unit wants %d", np, len(proc.Unit.Params))
		return pc
	}
	pc.params = make([]paramBind, 0, np)
	for i := 0; i < np; i++ {
		pb := paramBind{slot: int32(r.Varint()), isArray: r.Bool()}
		if r.Err() != nil {
			return pc
		}
		lim := pc.numRefs
		if pb.isArray {
			lim = pc.numArrays
		}
		if pb.slot < 0 || int(pb.slot) >= lim {
			r.Failf("param %d slot %d out of range", i, pb.slot)
			return pc
		}
		pc.params = append(pc.params, pb)
	}
	nm := r.Count(2)
	pc.meta = make([]arrayMeta, 0, nm)
	for i := 0; i < nm; i++ {
		m := arrayMeta{name: r.String(), typ: lang.Type(r.U8())}
		if r.Err() == nil && (m.typ < lang.TNone || m.typ > lang.TLogical) {
			r.Failf("invalid array element type %d", int(m.typ))
		}
		if r.Err() != nil {
			return pc
		}
		pc.meta = append(pc.meta, m)
	}
	pc.entry = int32(r.Varint())
	pc.maxStack = r.Int()
	pc.fused = r.Int()
	if r.Err() != nil {
		return pc
	}
	if pc.entry < 0 || int(pc.entry) >= len(pc.ins) {
		r.Failf("entry %d outside %d instructions", pc.entry, len(pc.ins))
		return pc
	}
	if pc.maxStack < 0 || pc.fused < 0 {
		r.Failf("negative stack/fusion extent (%d, %d)", pc.maxStack, pc.fused)
		return pc
	}
	return pc
}

// DecodeProcCheck decodes one procedure blob purely for validation — fuzz
// and corruption tests use it to prove arbitrary bytes produce a typed
// error, never a panic. The decoded code is discarded.
func DecodeProcCheck(blob []byte, proc *lower.Proc) error {
	r := wire.NewReader(blob)
	decodeProcCode(r, proc)
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("vm blob has %d trailing bytes", r.Remaining())
	}
	return nil
}

// ComposeProgram assembles a Program from per-procedure blobs, compiling
// afresh (and fusing) any procedure whose blob is absent or rejects.
// Returned misses name the procedures that had to be compiled — including
// decode rejections — so the caller can re-save them. A compile error (the
// program is outside the VM subset) is returned exactly as Compile would
// return it.
func ComposeProgram(res *lower.Result, blobs map[string][]byte) (*Program, []string, error) {
	if res.Main == nil {
		return nil, nil, fmt.Errorf("vm: program has no main unit")
	}
	names := make([]string, 0, len(res.Procs))
	for name := range res.Procs {
		names = append(names, name)
	}
	sort.Strings(names)
	p := &Program{res: res, byName: make(map[string]int, len(names))}
	for i, name := range names {
		p.byName[name] = i
	}
	var missed []string
	for _, name := range names {
		if blob, ok := blobs[name]; ok {
			r := wire.NewReader(blob)
			pc := decodeProcCode(r, res.Procs[name])
			if r.Err() == nil && r.Remaining() == 0 {
				p.procs = append(p.procs, pc)
				continue
			}
		}
		pc, err := compileProc(res, res.Procs[name], p.byName, false)
		if err != nil {
			return nil, nil, err
		}
		pc.fuse()
		p.procs = append(p.procs, pc)
		missed = append(missed, name)
	}
	p.mainIdx = p.byName[res.Main.G.Name]
	return p, missed, nil
}
