package vm

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"
	"repro/internal/obs"
)

// BailoutError reports a lowered construct the bytecode compiler does not
// handle. Callers fall back to the tree-walker; the check pass "vmcompile"
// surfaces bailouts as diagnostics so the de-optimization is visible.
type BailoutError struct {
	Proc      string
	Line      int
	Construct string
	Reason    string
}

func (e *BailoutError) Error() string {
	return fmt.Sprintf("vm: %s: cannot compile %s: %s", e.Proc, e.Construct, e.Reason)
}

// CompileOptions tune the bytecode compiler.
type CompileOptions struct {
	// NoFuse disables the superinstruction peephole pass (fuse.go). The
	// differential suite compiles both ways to prove fusion changes
	// nothing observable; production callers leave it false.
	NoFuse bool
}

// Compile translates every procedure of a lowered program into bytecode
// and runs the superinstruction fusion pass over each. The returned
// Program is immutable and safe for concurrent Run calls — compile once,
// run every seed.
func Compile(res *lower.Result) (*Program, error) {
	return CompileOpts(res, CompileOptions{})
}

// CompileOpts is Compile with explicit options. A bailout (the program
// uses a construct outside the compilable subset) increments the
// "vm.compile_bailouts" metric in obs.Default, so silent tree-walker
// fallbacks show up in perf data instead of hiding behind identical
// results.
func CompileOpts(res *lower.Result, opt CompileOptions) (*Program, error) {
	prog, err := compileAll(res, opt)
	if err != nil {
		obs.Default.Add("vm.compile_bailouts", 1)
		return nil, err
	}
	obs.Default.Add("vm.superinstructions", int64(prog.FusedInstructions()))
	return prog, nil
}

func compileAll(res *lower.Result, opt CompileOptions) (*Program, error) {
	if res.Main == nil {
		return nil, fmt.Errorf("vm: program has no main unit")
	}
	names := make([]string, 0, len(res.Procs))
	for name := range res.Procs {
		names = append(names, name)
	}
	sort.Strings(names)
	p := &Program{res: res, byName: make(map[string]int, len(names))}
	for i, name := range names {
		p.byName[name] = i
	}
	for _, name := range names {
		pc, err := compileProc(res, res.Procs[name], p.byName, false)
		if err != nil {
			return nil, err
		}
		if !opt.NoFuse {
			pc.fuse()
		}
		p.procs = append(p.procs, pc)
	}
	p.mainIdx = p.byName[res.Main.G.Name]
	return p, nil
}

// CheckProc is the lint-mode entry point: it compiles one procedure in
// isolation (unresolved callees tolerated, cross-procedure argument binding
// unchecked) and reports the first construct that would force a
// tree-walker fallback. Used by the check pass "vmcompile".
func CheckProc(p *lower.Proc) error {
	_, err := compileProc(nil, p, nil, true)
	return err
}

// fixup marks an instruction field holding a node ID that must be patched
// to the node's instruction index.
type fixup struct {
	idx   int
	field uint8 // 0 = a, 1 = b
}

// procComp compiles one procedure.
type procComp struct {
	res    *lower.Result
	p      *lower.Proc
	byName map[string]int
	loose  bool
	out    *procCode

	valSlot  map[string]int32
	refSlot  map[string]int32
	arrSlot  map[string]int32
	metaIdx  map[string]int32
	tripSlot map[cfg.NodeID]int32
	constIdx map[interp.Value]int32
	strIdx   map[string]int32

	localArrays []string // sorted; allocated in the prologue

	nodeIP []int32
	fix    []fixup

	depth   int
	curNode cfg.NodeID
	inDims  bool
}

func compileProc(res *lower.Result, p *lower.Proc, byName map[string]int, loose bool) (*procCode, error) {
	c := &procComp{
		res:      res,
		p:        p,
		byName:   byName,
		loose:    loose,
		out:      &procCode{proc: p, name: p.G.Name},
		valSlot:  make(map[string]int32),
		refSlot:  make(map[string]int32),
		arrSlot:  make(map[string]int32),
		metaIdx:  make(map[string]int32),
		tripSlot: make(map[cfg.NodeID]int32),
		constIdx: make(map[interp.Value]int32),
		strIdx:   make(map[string]int32),
	}
	if err := c.allocSlots(); err != nil {
		return nil, err
	}
	if err := c.compileBody(); err != nil {
		return nil, err
	}
	if err := c.compilePrologue(); err != nil {
		return nil, err
	}
	c.patch()
	c.out.numTrips = len(c.tripSlot)
	c.out.tripNodes = make([]cfg.NodeID, len(c.tripSlot))
	for key, slot := range c.tripSlot {
		c.out.tripNodes[slot] = key
	}
	return c.out, nil
}

func (c *procComp) bail(construct, format string, args ...any) error {
	line := 0
	if s, ok := c.p.Stmt[c.curNode]; ok && s != nil {
		line = s.Pos()
	}
	return &BailoutError{Proc: c.p.G.Name, Line: line, Construct: construct,
		Reason: fmt.Sprintf(format, args...)}
}

// allocSlots assigns every symbol a dense frame slot: parameters to
// reference slots (scalars) or array slots, locals to value slots seeded
// from valTemplate or array slots filled by the prologue.
func (c *procComp) allocSlots() error {
	unit := c.p.Unit
	for _, name := range unit.Params {
		sym := unit.Symbols[name]
		if sym == nil {
			return c.bail("parameter", "parameter %s has no symbol", name)
		}
		switch sym.Kind {
		case lang.SymArray:
			slot := int32(c.out.numArrays)
			c.out.numArrays++
			c.arrSlot[name] = slot
			c.metaIdx[name] = int32(len(c.out.meta))
			c.out.meta = append(c.out.meta, arrayMeta{name: name, typ: sym.Type})
			c.out.params = append(c.out.params, paramBind{slot: slot, isArray: true})
		case lang.SymScalar:
			slot := int32(c.out.numRefs)
			c.out.numRefs++
			c.refSlot[name] = slot
			c.out.params = append(c.out.params, paramBind{slot: slot, isArray: false})
		default:
			return c.bail("parameter", "parameter %s is not a scalar or array", name)
		}
	}
	names := make([]string, 0, len(unit.Symbols))
	for name := range unit.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sym := unit.Symbols[name]
		if sym.IsParam || sym.Kind == lang.SymConst {
			continue
		}
		if sym.Kind == lang.SymArray {
			slot := int32(c.out.numArrays)
			c.out.numArrays++
			c.arrSlot[name] = slot
			c.metaIdx[name] = int32(len(c.out.meta))
			c.out.meta = append(c.out.meta, arrayMeta{name: name, typ: sym.Type})
			c.localArrays = append(c.localArrays, name)
		} else {
			c.valSlot[name] = int32(len(c.out.valTemplate))
			c.out.valTemplate = append(c.out.valTemplate, interp.Value{T: sym.Type})
		}
	}
	return nil
}

// compileBody emits each CFG node's code in node-ID order: the opNode
// bookkeeping marker, the node's operation, and a terminal transferring
// control along a counted edge.
func (c *procComp) compileBody() error {
	g := c.p.G
	maxID := g.MaxID()
	c.nodeIP = make([]int32, maxID+1)
	c.out.lines = make([]int32, maxID+1)
	c.out.edgeOff = make([]int32, maxID+1)
	total := 0
	for id := cfg.NodeID(1); id <= maxID; id++ {
		c.out.edgeOff[id] = int32(total)
		total += len(g.OutEdges(id))
	}
	c.out.numEdges = total

	for id := cfg.NodeID(1); id <= maxID; id++ {
		c.curNode = id
		if s, ok := c.p.Stmt[id]; ok && s != nil {
			c.out.lines[id] = int32(s.Pos())
		}
		c.nodeIP[id] = int32(len(c.out.ins))
		c.emit(instr{op: opNode, a: int32(id)})
		op, ok := g.Node(id).Payload.(lower.Op)
		if !ok {
			return c.bail("node", "node %d has no executable payload", id)
		}
		if err := c.compileOp(id, op); err != nil {
			return err
		}
		if c.depth != 0 {
			return c.bail("internal", "stack imbalance %+d after node %d", c.depth, id)
		}
	}
	return nil
}

func (c *procComp) compileOp(id cfg.NodeID, op lower.Op) error {
	switch o := op.(type) {
	case lower.OpNop, lower.OpReturn:
		return c.emitUncond(id)
	case lower.OpEnd:
		c.emit(instr{op: opEnd})
		return nil
	case lower.OpStop:
		// a = the STOP node's CFG id, read by the path-profiling partial
		// recorder; not a branch target, so no fixup.
		c.emit(instr{op: opStop, a: int32(id)})
		return nil
	case lower.OpAssign:
		if err := c.assign(o.S); err != nil {
			return err
		}
		return c.emitUncond(id)
	case lower.OpPrint:
		for _, item := range o.S.Items {
			if sl, ok := item.(*lang.StrLit); ok {
				c.emit(instr{op: opPrintStr, a: c.internStr(sl.Val)})
				continue
			}
			if err := c.expr(item); err != nil {
				return err
			}
			c.emit(instr{op: opPrintVal})
			c.depth--
		}
		c.emit(instr{op: opPrintFlush})
		return c.emitUncond(id)
	case lower.OpBranch:
		if err := c.expr(o.Cond); err != nil {
			return err
		}
		tFlat, tTo, err := c.flatEdge(id, cfg.True)
		if err != nil {
			return err
		}
		fFlat, fTo, err := c.flatEdge(id, cfg.False)
		if err != nil {
			return err
		}
		idx := c.emit(instr{op: opBranch, a: int32(tTo), b: int32(fTo), c: tFlat, d: fFlat})
		c.fix = append(c.fix, fixup{idx, 0}, fixup{idx, 1})
		c.depth--
		return nil
	case lower.OpArithIf:
		if err := c.expr(o.E); err != nil {
			return err
		}
		base := int32(len(c.out.arms))
		for _, l := range []cfg.Label{lower.LabelNeg, lower.LabelZero, lower.LabelPos} {
			if err := c.addArm(id, l); err != nil {
				return err
			}
		}
		c.emit(instr{op: opArithIf, a: base})
		c.depth--
		return nil
	case lower.OpComputedGoto:
		if err := c.expr(o.E); err != nil {
			return err
		}
		base := int32(len(c.out.arms))
		for i := 1; i <= o.N; i++ {
			if err := c.addArm(id, lower.GotoCase(i)); err != nil {
				return err
			}
		}
		if err := c.addArm(id, lower.LabelDefault); err != nil {
			return err
		}
		c.emit(instr{op: opCGoto, a: base, b: int32(o.N)})
		c.depth--
		return nil
	case lower.OpDoInit:
		return c.doInit(id, o)
	case lower.OpDoTest:
		tFlat, tTo, err := c.flatEdge(id, cfg.True)
		if err != nil {
			return err
		}
		fFlat, fTo, err := c.flatEdge(id, cfg.False)
		if err != nil {
			return err
		}
		idx := c.emit(instr{op: opDoTest, a: int32(tTo), b: int32(fTo), c: tFlat, d: fFlat, e: c.trip(o.Key)})
		c.fix = append(c.fix, fixup{idx, 0}, fixup{idx, 1})
		return nil
	case lower.OpDoIncr:
		slot, isRef, err := c.loopVar(o.L.Var)
		if err != nil {
			return err
		}
		flags := int32(0)
		if isRef {
			flags |= 1
		}
		if o.L.Step != nil {
			if err := c.expr(o.L.Step); err != nil {
				return err
			}
			flags |= 2
			c.depth--
		}
		c.emit(instr{op: opDoIncr, a: slot, b: flags, c: c.trip(o.Test)})
		return c.emitUncond(id)
	case lower.OpCall:
		if err := c.call(o.S); err != nil {
			return err
		}
		return c.emitUncond(id)
	}
	return c.bail("node", "unknown operation %T", op)
}

// doInit compiles the DO-loop initializer: the trip count evaluates
// lo, hi, step, then lo is evaluated a second time for the variable store —
// exactly the tree-walker's order, so RNG draws line up.
func (c *procComp) doInit(id cfg.NodeID, o lower.OpDoInit) error {
	slot, isRef, err := c.loopVar(o.L.Var)
	if err != nil {
		return err
	}
	if err := c.expr(o.L.Lo); err != nil {
		return err
	}
	if err := c.expr(o.L.Hi); err != nil {
		return err
	}
	if o.L.Step != nil {
		if err := c.expr(o.L.Step); err != nil {
			return err
		}
	} else {
		c.konst(interp.Int(1))
	}
	c.emit(instr{op: opTrip, a: int32(o.L.Line)})
	c.depth -= 2
	if err := c.expr(o.L.Lo); err != nil {
		return err
	}
	ref := int32(0)
	if isRef {
		ref = 1
	}
	c.emit(instr{op: opDoInitFin, a: slot, b: ref, c: c.trip(o.Test)})
	c.depth -= 2
	return c.emitUncond(id)
}

// loopVar resolves a DO variable to its scalar slot.
func (c *procComp) loopVar(name string) (int32, bool, error) {
	sym := c.p.Unit.Symbols[name]
	if sym == nil || sym.Kind != lang.SymScalar {
		return 0, false, c.bail("DO variable", "%s is not a scalar variable", name)
	}
	if sym.IsParam {
		return c.refSlot[name], true, nil
	}
	return c.valSlot[name], false, nil
}

// call compiles argument staging (in parameter order, matching the
// tree-walker's binding order) and the opCall.
func (c *procComp) call(s *lang.CallStmt) error {
	var callee *lower.Proc
	if c.res != nil {
		callee = c.res.Procs[s.Name]
	}
	if callee == nil {
		if !c.loose {
			return c.bail("CALL", "no subroutine %s", s.Name)
		}
		// Lint mode: compile the arguments for coverage, skip the call.
		for _, arg := range s.Args {
			if err := c.stageArg(arg, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if len(s.Args) != len(callee.Unit.Params) {
		return c.bail("CALL", "%s takes %d argument(s), got %d", s.Name, len(callee.Unit.Params), len(s.Args))
	}
	for i, arg := range s.Args {
		param := callee.Unit.Symbols[callee.Unit.Params[i]]
		if err := c.stageArg(arg, param); err != nil {
			return err
		}
	}
	// d = the CALL node's CFG id: a STOP unwinding through this frame
	// records its path partial against the call node (not a branch target,
	// so no fixup).
	c.emit(instr{op: opCall, a: int32(c.byName[s.Name]), b: int32(len(s.Args)), c: int32(s.Line), d: int32(c.curNode)})
	return nil
}

// stageArg emits the staging op for one CALL argument. param is nil in
// lint mode for unresolved callees (no cross-checking possible).
func (c *procComp) stageArg(arg lang.Expr, param *lang.Symbol) error {
	paramIsArray := param != nil && param.Kind == lang.SymArray
	switch a := arg.(type) {
	case *lang.Var:
		sym := c.p.Unit.Symbols[a.Name]
		if sym == nil {
			return c.bail("CALL argument", "undefined argument %s", a.Name)
		}
		switch sym.Kind {
		case lang.SymConst:
			if paramIsArray {
				return c.bail("CALL argument", "constant %s passed to array parameter", a.Name)
			}
			c.konst(interp.ConstSymbolValue(sym))
			c.emit(instr{op: opArgVal})
			c.depth--
			return nil
		case lang.SymArray:
			if param != nil && !paramIsArray {
				return c.bail("CALL argument", "array %s passed to scalar parameter", a.Name)
			}
			c.emit(instr{op: opArgArray, a: c.arrSlot[a.Name]})
			return nil
		default:
			if paramIsArray {
				return c.bail("CALL argument", "scalar %s passed to array parameter", a.Name)
			}
			if sym.IsParam {
				c.emit(instr{op: opArgRef, a: c.refSlot[a.Name]})
			} else {
				c.emit(instr{op: opArgLocal, a: c.valSlot[a.Name]})
			}
			return nil
		}
	case *lang.Index:
		if paramIsArray {
			return c.bail("CALL argument", "array element passed to array parameter")
		}
		sym := c.p.Unit.Symbols[a.Name]
		if sym == nil || sym.Kind != lang.SymArray {
			return c.bail("CALL argument", "%s is not an array", a.Name)
		}
		for _, se := range a.Subs {
			if err := c.expr(se); err != nil {
				return err
			}
		}
		c.emit(instr{op: opArgElem, a: c.arrSlot[a.Name], b: int32(len(a.Subs)), c: c.internStr(a.Name)})
		c.depth -= len(a.Subs)
		return nil
	default:
		if paramIsArray {
			return c.bail("CALL argument", "expression passed to array parameter")
		}
		if err := c.expr(arg); err != nil {
			return err
		}
		c.emit(instr{op: opArgVal})
		c.depth--
		return nil
	}
}

// assign compiles "lhs = rhs": RHS first, then subscripts, then the store —
// the tree-walker's evaluation order.
func (c *procComp) assign(s *lang.Assign) error {
	if err := c.expr(s.RHS); err != nil {
		return err
	}
	switch lhs := s.LHS.(type) {
	case *lang.Var:
		sym := c.p.Unit.Symbols[lhs.Name]
		if sym == nil || sym.Kind != lang.SymScalar {
			return c.bail("assignment", "cannot assign to %s", lhs.Name)
		}
		if sym.IsParam {
			c.emit(instr{op: opStoreRef, a: c.refSlot[lhs.Name]})
		} else {
			c.emit(instr{op: opStoreLocal, a: c.valSlot[lhs.Name]})
		}
		c.depth--
		return nil
	case *lang.Index:
		sym := c.p.Unit.Symbols[lhs.Name]
		if sym == nil || sym.Kind != lang.SymArray {
			return c.bail("assignment", "%s is not an array", lhs.Name)
		}
		for _, se := range lhs.Subs {
			if err := c.expr(se); err != nil {
				return err
			}
		}
		c.emit(instr{op: opStoreElem, a: c.arrSlot[lhs.Name], b: int32(len(lhs.Subs)), c: c.internStr(lhs.Name)})
		c.depth -= len(lhs.Subs) + 1
		return nil
	}
	return c.bail("assignment", "bad assignment target %T", s.LHS)
}

// expr compiles one expression; net stack effect is +1.
func (c *procComp) expr(e lang.Expr) error {
	switch x := e.(type) {
	case *lang.IntLit:
		c.konst(interp.Int(x.Val))
		return nil
	case *lang.RealLit:
		c.konst(interp.Real(x.Val))
		return nil
	case *lang.LogLit:
		c.konst(interp.Logical(x.Val))
		return nil
	case *lang.StrLit:
		return c.bail("string literal", "string used as value")
	case *lang.Var:
		sym := c.p.Unit.Symbols[x.Name]
		if sym == nil {
			return c.bail("variable", "no scalar %s", x.Name)
		}
		switch sym.Kind {
		case lang.SymConst:
			c.konst(interp.ConstSymbolValue(sym))
		case lang.SymArray:
			return c.bail("variable", "array %s used as a scalar", x.Name)
		default:
			if c.inDims && !sym.IsParam {
				return c.bail("array bounds", "dimension of %s depends on a local variable", x.Name)
			}
			if sym.IsParam {
				c.emit(instr{op: opRef, a: c.refSlot[x.Name]})
			} else {
				c.emit(instr{op: opLocal, a: c.valSlot[x.Name]})
			}
			c.depth++
			if c.depth > c.out.maxStack {
				c.out.maxStack = c.depth
			}
		}
		return nil
	case *lang.Index:
		sym := c.p.Unit.Symbols[x.Name]
		if sym == nil || sym.Kind != lang.SymArray {
			return c.bail("subscript", "%s is not an array", x.Name)
		}
		for _, se := range x.Subs {
			if err := c.expr(se); err != nil {
				return err
			}
		}
		c.emit(instr{op: opElem, a: c.arrSlot[x.Name], b: int32(len(x.Subs)), c: c.internStr(x.Name)})
		c.depth -= len(x.Subs) - 1
		return nil
	case *lang.Un:
		if err := c.expr(x.X); err != nil {
			return err
		}
		switch x.Op {
		case lang.OpNot:
			c.emit(instr{op: opNot})
		case lang.OpNeg:
			c.emit(instr{op: opNeg})
		}
		return nil
	case *lang.Bin:
		if err := c.expr(x.L); err != nil {
			return err
		}
		if err := c.expr(x.R); err != nil {
			return err
		}
		c.emit(instr{op: opBin, a: int32(x.Op)})
		c.depth--
		return nil
	case *lang.Intrinsic:
		id, ok := intrinsicID[x.Name]
		if !ok {
			return c.bail("intrinsic", "unknown intrinsic %s", x.Name)
		}
		if len(x.Args) == 0 && id != intrRAND {
			return c.bail("intrinsic", "%s needs arguments", x.Name)
		}
		if c.inDims && (id == intrRAND || id == intrIRAND) {
			return c.bail("array bounds", "dimension depends on %s", x.Name)
		}
		for _, a := range x.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		c.emit(instr{op: opIntrin, a: int32(id), b: int32(len(x.Args))})
		c.depth -= len(x.Args) - 1
		if c.depth > c.out.maxStack {
			c.out.maxStack = c.depth
		}
		return nil
	}
	return c.bail("expression", "cannot evaluate %T", e)
}

// compilePrologue emits the activation sequence: allocate local arrays
// (sorted name order), reinterpret array parameters with the callee's
// declared shape (parameter order — the tree-walker's order), count the
// activation, and jump to the CFG entry node.
func (c *procComp) compilePrologue() error {
	c.curNode = 0
	c.out.entry = int32(len(c.out.ins))
	unit := c.p.Unit
	for _, name := range c.localArrays {
		sym := unit.Symbols[name]
		if err := c.dims(sym); err != nil {
			return err
		}
		c.emit(instr{op: opAllocArray, a: c.arrSlot[name], b: int32(len(sym.Dims)), c: c.metaIdx[name]})
		c.depth -= len(sym.Dims)
	}
	for _, name := range unit.Params {
		sym := unit.Symbols[name]
		if sym == nil || sym.Kind != lang.SymArray {
			continue
		}
		if err := c.dims(sym); err != nil {
			return err
		}
		c.emit(instr{op: opBindArray, a: c.arrSlot[name], b: int32(len(sym.Dims)), c: c.metaIdx[name]})
		c.depth -= len(sym.Dims)
	}
	if c.depth != 0 {
		return c.bail("internal", "stack imbalance %+d after prologue", c.depth)
	}
	c.emit(instr{op: opActivate})
	idx := c.emit(instr{op: opGoto, a: int32(c.p.G.Entry)})
	c.fix = append(c.fix, fixup{idx, 0})
	return nil
}

// dims compiles array extent expressions. The tree-walker evaluates local
// allocations in map-iteration order, so only order-insensitive dimension
// expressions (constants, parameters — no locals, no RNG) are compilable.
func (c *procComp) dims(sym *lang.Symbol) error {
	c.inDims = true
	defer func() { c.inDims = false }()
	for _, de := range sym.Dims {
		if err := c.expr(de); err != nil {
			return err
		}
	}
	return nil
}

// flatEdge resolves (node, label) to the flat edge-counter index and the
// target node, matching the tree-walker's first-match label search.
func (c *procComp) flatEdge(from cfg.NodeID, label cfg.Label) (int32, cfg.NodeID, error) {
	for k, e := range c.p.G.OutEdges(from) {
		if e.Label == label {
			return c.out.edgeOff[from] + int32(k), e.To, nil
		}
	}
	return 0, 0, c.bail("edge", "no out-edge labelled %s from node %d", label, from)
}

// emitUncond terminates a node with its unconditional edge.
func (c *procComp) emitUncond(from cfg.NodeID) error {
	flat, to, err := c.flatEdge(from, cfg.Uncond)
	if err != nil {
		return err
	}
	idx := c.emit(instr{op: opJmp, a: int32(to), b: flat})
	c.fix = append(c.fix, fixup{idx, 0})
	return nil
}

// addArm appends one multi-way branch arm (target patched later).
func (c *procComp) addArm(from cfg.NodeID, label cfg.Label) error {
	flat, to, err := c.flatEdge(from, label)
	if err != nil {
		return err
	}
	c.out.arms = append(c.out.arms, arm{ip: int32(to), flat: flat})
	return nil
}

// trip returns the trip slot for a DO test node, allocating on first use.
func (c *procComp) trip(key cfg.NodeID) int32 {
	slot, ok := c.tripSlot[key]
	if !ok {
		slot = int32(len(c.tripSlot))
		c.tripSlot[key] = slot
	}
	return slot
}

// konst pushes an interned constant.
func (c *procComp) konst(v interp.Value) {
	idx, ok := c.constIdx[v]
	if !ok {
		idx = int32(len(c.out.consts))
		c.out.consts = append(c.out.consts, v)
		c.constIdx[v] = idx
	}
	c.emit(instr{op: opConst, a: idx})
	c.depth++
	if c.depth > c.out.maxStack {
		c.out.maxStack = c.depth
	}
}

func (c *procComp) internStr(s string) int32 {
	idx, ok := c.strIdx[s]
	if !ok {
		idx = int32(len(c.out.strs))
		c.out.strs = append(c.out.strs, s)
		c.strIdx[s] = idx
	}
	return idx
}

func (c *procComp) emit(in instr) int {
	c.out.ins = append(c.out.ins, in)
	return len(c.out.ins) - 1
}

// patch rewrites node-ID placeholders in jump fields and arms to
// instruction indices.
func (c *procComp) patch() {
	for _, fx := range c.fix {
		in := &c.out.ins[fx.idx]
		if fx.field == 0 {
			in.a = c.nodeIP[in.a]
		} else {
			in.b = c.nodeIP[in.b]
		}
	}
	for i := range c.out.arms {
		c.out.arms[i].ip = c.nodeIP[c.out.arms[i].ip]
	}
}

// init registers the engine with interp so interp.Run can dispatch
// Options{Engine: EngineVM} here without an import cycle. One-shot runs
// compile per call; use Compile + Program.Run (or core.Pipeline) to
// amortize compilation over many seeds.
func init() {
	interp.RegisterVMEngine(func(res *lower.Result, opt interp.Options) (*interp.Result, error) {
		p, err := Compile(res)
		if err != nil {
			opt.Engine = interp.EngineTree
			return interp.Run(res, opt)
		}
		return p.Run(opt)
	})
	interp.RegisterVMBatchEngine(func(res *lower.Result, opt interp.Options, seeds []uint64,
		lanes int, sink interp.BatchSink) (interp.BatchStats, error) {
		p, err := Compile(res)
		if err != nil {
			// Compile bailout: the per-seed tree fallback loop makes the
			// identical sink observations, one fresh Result per seed.
			opt.Engine = interp.EngineTree
			return interp.RunBatch(res, opt, seeds, lanes, sink)
		}
		return p.RunBatch(opt, seeds, lanes, sink)
	})
}
