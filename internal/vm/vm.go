// Package vm is the bytecode execution engine: a one-time compiler from
// lowered procedures to a flat, slot-indexed instruction stream, plus a
// tight switch-dispatch interpreter that runs it. Variables are resolved at
// compile time to dense frame slots (no string maps), DO-loop trip counts
// live in slots instead of a map, branch targets are precomputed
// instruction indices, and the per-node bookkeeping (step count, node
// counter, cost accumulation) is fused into the instruction stream.
//
// Compile once per program, then run every profiling seed against the
// shared Program; per-activation frames are recycled through per-procedure
// pools so the steady-state run allocates only what the program itself
// allocates (local arrays, by-value argument cells).
//
// The engine is bit-identical to the tree-walker in internal/interp: the
// same step counts, node/edge counters, activation counts, float cost
// accumulation order, RNG draw order and runtime error messages. Programs
// the compiler cannot handle (see BailoutError) and runs that set
// Options.OnNode fall back to the tree-walker.
package vm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cfg"
	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/lower"
)

// opcode is the instruction operation.
type opcode uint8

const (
	// opNode is the fused per-node bookkeeping marker: step count and
	// limit, node counter, cost accumulation, OnNodeCost hook. a = node ID.
	opNode       opcode = iota
	opConst             // push consts[a]
	opLocal             // push vals[a]
	opRef               // push *refs[a]
	opElem              // a=array slot, b=#subs, c=name idx: pop subs, push element
	opStoreLocal        // pop value into vals[a] (converted to the cell type)
	opStoreRef          // pop value into *refs[a]
	opStoreElem         // a=array slot, b=#subs, c=name idx: pop subs then value
	opNot               // logical negate the top
	opNeg               // arithmetic negate the top
	opBin               // a=lang.BinOp: pop two, push result
	opIntrin            // a=intrinsic id, b=#args
	opBranch            // pop cond; true: a/flat c, false: b/flat d
	opJmp               // jump to a counting flat edge b
	opGoto              // jump to a, no edge counted (prologue -> entry)
	opArithIf           // pop value; arms[a..a+2] = LT/EQ/GT
	opCGoto             // pop value; arms[a..a+b] = G1..GN then default
	opTrip              // a=line: pop step,hi,lo; push F77 trip count
	opDoInitFin         // a=var slot, b=isRef, c=trip slot: pop lo, pop trip
	opDoTest            // trips[e] > 0: a/flat c, else b/flat d
	opDoIncr            // a=var slot, b=flags(1 isRef, 2 hasStep), c=trip slot
	opArgLocal          // stage &vals[a]
	opArgRef            // stage refs[a]
	opArgArray          // stage arrays[a]
	opArgElem           // a=array slot, b=#subs, c=name idx: stage element pointer
	opArgVal            // pop value, stage a fresh cell holding the copy
	opCall              // a=proc idx, b=#args, c=call line
	opActivate          // count one activation (end of prologue)
	opAllocArray        // a=array slot, b=#dims, c=meta idx: pop dims, allocate
	opBindArray         // a=array slot, b=#dims, c=meta idx: reinterpret param array
	opPrintStr          // append strs[a] (errors when Out is nil, like the tree)
	opPrintVal          // pop value, append its rendering
	opPrintFlush        // write the accumulated line
	opEnd               // return from the procedure
	opStop              // STOP: unwind every frame

	// Superinstructions: fused forms of the hot pairs/triples above,
	// installed by the post-compile peephole pass in fuse.go. Each one
	// replaces two or three dispatches (and their cost/counter bookkeeping
	// preambles) with a single switch arm; semantics are exactly the
	// concatenation of the constituent opcodes.
	opNodeJmp       // opNode(f) + opJmp: a=target, b=flat edge
	opNodeDoTest    // opNode(f) + opDoTest: a/b targets, c/d flat edges, e=trip slot
	opNodeDoIncrJmp // opNode(f) + stepless opDoIncr(a=var, b=flags, c=trip) + opJmp(d=target, e=flat)
	opDoIncrJmp     // opDoIncr(a=var, b=flags, c=trip) + opJmp(d=target, e=flat)
	opNodeConst     // opNode(f) + opConst(a)
	opNodeLocal     // opNode(f) + opLocal(a)
	opNodeRef       // opNode(f) + opRef(a)
	opLocalConstBin // opLocal(a) + opConst(b) + opBin(c)
	opLocalLocalBin // opLocal(a) + opLocal(b) + opBin(c)
	opStoreLocalJmp // opStoreLocal(a) + opJmp(b=target, c=flat)
	opStoreRefJmp   // opStoreRef(a) + opJmp(b=target, c=flat)

	// Round two, driven by the dynamic mix of the bench corpus: the inner
	// loop of a typical generated program is DoTest, Node, Ref, Ref, Const,
	// Bin, Bin, StoreRef, Jmp, Node, DoIncr, Jmp — these forms collapse the
	// remaining expression/store/back-edge dispatches.
	opRefConstBin    // opRef(a) + opConst(b) + opBin(c)
	opConstBin       // opConst(a) + opBin(b): pop l, push l op consts[a]
	opBinStoreRefJmp // opBin(a) + opStoreRef(b) + opJmp(c=target, d=flat)
	opBinBranch      // opBin(e) + opBranch(a/b targets, c/d flat edges)
	opDoInitFinJmp   // opDoInitFin(a=var, b=isRef, c=trip) + opJmp(d=target, e=flat)

	// Whole-statement forms: an accumulation statement like S = S + X*C
	// opens with Node, Ref, [Ref,] Const, Bin — common enough in generated
	// programs to deserve single-dispatch opcodes.
	opNodeRefConstBin    // opNode(f) + opRef(a) + opConst(b) + opBin(c)
	opNodeRefRefConstBin // opNode(f) + opRef(a), then opRef(b) + opConst(c) + opBin(d)

	// Round three, aimed at the shapes the dynamic mix still dispatches one
	// by one: the DO-loop header (Node, Const lo, Const hi, Const step,
	// Trip), call-argument staging, and the two-instruction procedure
	// prologue.
	opNodeConstConst // opNode(f) + opConst(a) + opConst(b)
	opConstTrip      // opConst(a=step const) + opTrip(b=line)
	opArgLocal2      // opArgLocal(a) + opArgLocal(b)
	opNodeArgLocal2  // opNode(f) + opArgLocal(a) + opArgLocal(b)
	opActivateGoto   // opActivate + opGoto(a)
)

// instr is one fixed-width instruction. Field meaning depends on op; f is
// only used by superinstructions (the fused opNode's node ID).
type instr struct {
	op               opcode
	a, b, c, d, e, f int32
}

// arm is one precomputed multi-way branch target.
type arm struct {
	ip   int32 // target instruction index
	flat int32 // flat edge-counter index
}

// paramBind describes where one parameter lands in the callee frame.
type paramBind struct {
	slot    int32
	isArray bool
}

// arrayMeta is the compile-time identity of an array slot (error messages,
// element type for allocation).
type arrayMeta struct {
	name string
	typ  lang.Type
}

// procCode is one compiled procedure.
type procCode struct {
	proc   *lower.Proc
	name   string
	ins    []instr
	consts []interp.Value
	strs   []string
	arms   []arm
	// lines maps node ID to its source line (step-limit errors).
	lines []int32
	// edgeOff maps node ID to its first flat edge-counter index.
	edgeOff  []int32
	numEdges int
	// valTemplate seeds the local-scalar slots of a fresh frame.
	valTemplate []interp.Value
	numRefs     int
	numArrays   int
	numTrips    int
	// tripNodes maps a trip slot back to its DO test node (StopFrame
	// records report registers by test node, like the tree-walker).
	tripNodes []cfg.NodeID
	params    []paramBind
	meta      []arrayMeta
	entry     int32
	maxStack  int
	// fused counts the instructions eliminated by superinstruction fusion.
	fused int
	pool  sync.Pool
}

// frame is one pooled activation record.
type frame struct {
	vals     []interp.Value
	refs     []*interp.Value
	arrays   []*interp.Array
	trips    []int64
	callLine int
}

func (pc *procCode) getFrame() *frame {
	f, _ := pc.pool.Get().(*frame)
	if f == nil {
		f = &frame{
			vals:   make([]interp.Value, len(pc.valTemplate)),
			refs:   make([]*interp.Value, pc.numRefs),
			arrays: make([]*interp.Array, pc.numArrays),
			trips:  make([]int64, pc.numTrips),
		}
	}
	copy(f.vals, pc.valTemplate)
	for i := range f.trips {
		f.trips[i] = 0
	}
	return f
}

func (pc *procCode) putFrame(f *frame) {
	// Drop references so pooled frames do not pin arrays or caller cells.
	for i := range f.refs {
		f.refs[i] = nil
	}
	for i := range f.arrays {
		f.arrays[i] = nil
	}
	pc.pool.Put(f)
}

// Program is a compiled program, safe for concurrent Run calls.
type Program struct {
	res     *lower.Result
	procs   []*procCode
	byName  map[string]int
	mainIdx int

	// costCache memoizes per-node cost tables by model value, so running
	// many seeds under one model prices the nodes once. Tables are
	// immutable after insertion and shared by concurrent runs.
	costMu    sync.Mutex
	costCache map[cost.Model][][]float64

	// pathCache memoizes flattened Ball–Larus tables per PathSpec (by
	// identity — specs are built once per Plans and shared), mirroring
	// costCache: flatten once, run every seed.
	pathMu    sync.Mutex
	pathCache map[*interp.PathSpec][]*pathRT
}

// pathRT is one procedure's Ball–Larus instrumentation flattened onto the
// VM's flat edge-counter indexing: inc/bump/reset[edgeOff[node]+k] mirror
// the spec's [node][k] tables, so the exec loop applies them with the same
// index it already uses to count the edge. Immutable after construction.
type pathRT struct {
	spec  *interp.PathProcSpec
	inc   []int64
	bump  []bool
	reset []int64
}

// pathTables returns the per-proc flattened path tables for spec, building
// them on first use. A nil entry means the procedure is uninstrumented.
func (p *Program) pathTables(spec *interp.PathSpec) []*pathRT {
	p.pathMu.Lock()
	defer p.pathMu.Unlock()
	if rts, ok := p.pathCache[spec]; ok {
		return rts
	}
	rts := make([]*pathRT, len(p.procs))
	for i, pc := range p.procs {
		ps := spec.Procs[pc.name]
		if ps == nil {
			continue
		}
		rt := &pathRT{
			spec:  ps,
			inc:   make([]int64, pc.numEdges),
			bump:  make([]bool, pc.numEdges),
			reset: make([]int64, pc.numEdges),
		}
		g := pc.proc.G
		for id := cfg.NodeID(1); id <= g.MaxID(); id++ {
			off := int(pc.edgeOff[id])
			for k := range g.OutEdges(id) {
				rt.inc[off+k] = ps.Inc[id][k]
				rt.bump[off+k] = ps.Bump[id][k]
				rt.reset[off+k] = ps.Reset[id][k]
			}
		}
		rts[i] = rt
	}
	if p.pathCache == nil {
		p.pathCache = make(map[*interp.PathSpec][]*pathRT)
	}
	p.pathCache[spec] = rts
	return rts
}

// NumInstructions returns the total instruction count across procedures
// (after fusion, when it ran).
func (p *Program) NumInstructions() int {
	n := 0
	for _, pc := range p.procs {
		n += len(pc.ins)
	}
	return n
}

// FusedInstructions returns how many instructions the superinstruction pass
// eliminated across the program (0 when compiled with NoFuse).
func (p *Program) FusedInstructions() int {
	n := 0
	for _, pc := range p.procs {
		n += pc.fused
	}
	return n
}

// costTables returns the per-proc, per-node cost table for m, building it
// on first use.
func (p *Program) costTables(m *cost.Model) [][]float64 {
	p.costMu.Lock()
	defer p.costMu.Unlock()
	if tabs, ok := p.costCache[*m]; ok {
		return tabs
	}
	tabs := make([][]float64, len(p.procs))
	for i, pc := range p.procs {
		tab := make([]float64, pc.proc.G.MaxID()+1)
		for _, n := range pc.proc.G.Nodes() {
			if op, ok := n.Payload.(lower.Op); ok {
				tab[n.ID] = m.NodeCost(op)
			}
		}
		tabs[i] = tab
	}
	if p.costCache == nil {
		p.costCache = make(map[cost.Model][][]float64)
	}
	p.costCache[*m] = tabs
	return tabs
}

// argSlot is one staged call argument, mirroring the tree-walker's binding.
type argSlot struct {
	cell *interp.Value
	arr  *interp.Array
}

// callSite is one suspended caller activation on exec's explicit call
// stack. Calls are handled inside the dispatch loop — push the caller,
// switch the register-cached locals to the callee — instead of recursing
// through runProc, so an activation costs a frame bind plus a register
// reload rather than a Go call, a full preamble, and a flush/reload of the
// step and cost accumulators.
type callSite struct {
	pc *procCode
	f  *frame
	pi int32
	ip int32
}

// errStop unwinds all frames on STOP, like the tree-walker's sentinel.
var errStop = errors.New("stop")

// pathTracer is one activation's Ball–Larus state: the path register, the
// previously completed path id (pair mode), and the procedure's flattened
// tables. A zero tracer (rt nil) is inert, so uninstrumented procedures —
// and whole runs without a PathSpec — pay one predictable nil check per
// taken edge and nothing else.
type pathTracer struct {
	rt   *pathRT
	cnt  *interp.PathCounts
	reg  int64
	prev int64
}

// edge applies one taken edge by flat index. The split keeps the inert
// check small enough to inline at every exec edge site; the register math
// only runs for instrumented activations.
func (pt *pathTracer) edge(flat int32) {
	if pt.rt == nil {
		return
	}
	pt.edgeSlow(flat)
}

func (pt *pathTracer) edgeSlow(flat int32) {
	rt := pt.rt
	pt.reg += rt.inc[flat]
	if rt.bump[flat] {
		// A back edge completes the current path: bump its counter and
		// restart the register at the header's entry-dummy value.
		pt.cnt.Bump(pt.prev, pt.reg)
		pt.prev = pt.reg
		pt.reg = rt.reset[flat]
	}
}

// pathSave is one suspended caller's tracer on the explicit call stack,
// parallel to callSite. node is the caller's CALL node, recorded so a STOP
// unwinding through the frame can log an exact (node, register) partial.
type pathSave struct {
	pt   pathTracer
	node int32
}

// runState is the per-run mutable state shared by all activations.
type runState struct {
	prog   *Program
	opt    interp.Options
	result *interp.Result
	counts []*interp.Counts
	edges  [][]int64   // flat edge counters per proc index
	costs  [][]float64 // nil when Options.Model is nil
	stack  []interp.Value
	args   []argSlot
	calls  []callSite
	parts  []any
	// pathRTs/paths are the per-proc Ball–Larus tables and counters; nil
	// unless Options.PathSpec is set. pt is the live activation's tracer
	// (kept here rather than in an exec local so the dispatch loop carries
	// no extra live registers); pathCalls mirrors calls with the suspended
	// callers' tracers (see exec).
	pathRTs   []*pathRT
	paths     []*interp.PathCounts
	pt        pathTracer
	pathCalls []pathSave
	rng       uint64
	steps     int64
	max       int64
	depth     int
	// lane, when non-nil, supplies frames from the batch lane's arena
	// instead of the shared per-procedure sync.Pools (see batch.go).
	lane *laneArena
}

// recordStopFrame mirrors the tree-walker's: capture an activation's frozen
// position and live DO registers as a STOP unwinds through it. VM trip
// slots are allocated in compile order, so sort by test node to match the
// tree-walker's dense ascending scan bit-for-bit.
func (rs *runState) recordStopFrame(pc *procCode, f *frame, node cfg.NodeID) {
	sf := interp.StopFrame{Proc: pc.name, Node: node}
	for slot, rem := range f.trips {
		if rem > 0 {
			sf.Trips = append(sf.Trips, interp.TripReg{Test: pc.tripNodes[slot], Remaining: rem})
		}
	}
	sort.Slice(sf.Trips, func(i, j int) bool { return sf.Trips[i].Test < sf.Trips[j].Test })
	rs.result.StopFrames = append(rs.result.StopFrames, sf)
}

// Run executes the compiled program once under opt. Results are
// bit-identical to interp.Run on the same lowered program. Runs that set
// OnNode are delegated to the tree-walker (the hook's OpDoInit trip
// argument requires the tree's evaluation order).
func (p *Program) Run(opt interp.Options) (*interp.Result, error) {
	if opt.OnNode != nil {
		opt.Engine = interp.EngineTree
		return interp.Run(p.res, opt)
	}
	rs := &runState{
		prog: p,
		opt:  opt,
		rng:  opt.Seed*2862933555777941757 + 3037000493,
		max:  opt.MaxSteps,
		result: &interp.Result{
			ByProc: make(map[string]*interp.Counts, len(p.procs)),
		},
		counts: make([]*interp.Counts, len(p.procs)),
		edges:  make([][]int64, len(p.procs)),
	}
	if rs.max == 0 {
		rs.max = 500_000_000
	}
	for i, pc := range p.procs {
		g := pc.proc.G
		maxID := g.MaxID()
		flat := make([]int64, pc.numEdges)
		ct := &interp.Counts{
			Node: make([]int64, maxID+1),
			Edge: make([][]int64, maxID+1),
		}
		for id := cfg.NodeID(1); id <= maxID; id++ {
			off := int(pc.edgeOff[id])
			n := len(g.OutEdges(id))
			ct.Edge[id] = flat[off : off+n : off+n]
		}
		rs.result.ByProc[pc.name] = ct
		rs.counts[i] = ct
		rs.edges[i] = flat
	}
	if opt.Model != nil {
		rs.costs = p.costTables(opt.Model)
	}
	rs.initPaths()
	err := rs.runProc(p.mainIdx, nil, 0)
	if errors.Is(err, errStop) {
		rs.result.Stopped = true
		err = nil
	}
	rs.result.Steps = rs.steps
	return rs.result, err
}

// initPaths builds the run's path-profiling state from Options.PathSpec:
// flattened tables plus one PathCounts per instrumented procedure, exposed
// on the Result exactly like the tree-walker's.
func (rs *runState) initPaths() {
	spec := rs.opt.PathSpec
	if spec == nil {
		return
	}
	rts := rs.prog.pathTables(spec)
	rs.pathRTs = rts
	rs.paths = make([]*interp.PathCounts, len(rs.prog.procs))
	for i, rt := range rts {
		if rt == nil {
			continue
		}
		// Lazy map creation matches the tree-walker: a spec with no
		// instrumented procedures leaves Result.Paths nil.
		if rs.result.Paths == nil {
			rs.result.Paths = make(map[string]*interp.PathCounts)
		}
		pcn := interp.NewPathCounts(rt.spec, spec.MultiIter)
		rs.paths[i] = pcn
		rs.result.Paths[rs.prog.procs[i].name] = pcn
	}
}

// runProc executes one activation of proc pi with the staged args.
func (rs *runState) runProc(pi int, args []argSlot, callLine int) error {
	pc := rs.prog.procs[pi]
	rs.depth++
	if rs.depth > 10000 {
		rs.depth--
		return &interp.RuntimeError{Unit: pc.name, Line: 0, Msg: "call stack overflow (runaway recursion?)"}
	}
	var f *frame
	if rs.lane != nil {
		f = rs.lane.getFrame(pi, pc)
	} else {
		f = pc.getFrame()
	}
	f.callLine = callLine
	for i, pb := range pc.params {
		if pb.isArray {
			f.arrays[pb.slot] = args[i].arr
		} else {
			f.refs[pb.slot] = args[i].cell
		}
	}
	// Path-instrumented runs dispatch through execPaths, a twin of the
	// exec loop with the per-edge Ball–Larus hooks compiled in; keeping
	// exec itself hook-free preserves uninstrumented vm/vm-batch
	// throughput (see exec_paths.go).
	var err error
	if rs.pathRTs != nil {
		err = rs.execPaths(pc, f, pi)
	} else {
		err = rs.exec(pc, f, pi)
	}
	if rs.lane != nil {
		rs.lane.putFrame(pi, f)
	} else {
		pc.putFrame(f)
	}
	rs.depth--
	return err
}

// elemOffset converts 1-based subscripts (as stack values) to a linear
// column-major index, with the tree-walker's exact error messages.
func elemOffset(arr *interp.Array, subs []interp.Value, unit, name string) (int64, error) {
	if len(subs) != len(arr.Dims) {
		return 0, &interp.RuntimeError{Unit: unit, Line: 0,
			Msg: fmt.Sprintf("%s: array has %d dimensions, indexed with %d", name, len(arr.Dims), len(subs))}
	}
	off := int64(0)
	stride := int64(1)
	for d := 0; d < len(subs); d++ {
		s := subs[d].I
		if s < 1 || s > arr.Dims[d] {
			return 0, &interp.RuntimeError{Unit: unit, Line: 0,
				Msg: fmt.Sprintf("%s: subscript %d out of bounds 1..%d in dimension %d", name, s, arr.Dims[d], d+1)}
		}
		off += (s - 1) * stride
		stride *= arr.Dims[d]
	}
	return off, nil
}

// rand draws the next LCG value in [0, 1); identical to the tree-walker.
func (rs *runState) rand() float64 {
	rs.rng = rs.rng*6364136223846793005 + 1442695040888963407
	return float64(rs.rng>>11) / float64(1<<53)
}
