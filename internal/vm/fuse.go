package vm

// Superinstruction fusion: a post-compile peephole pass that rewrites hot
// instruction pairs and triples into single fused opcodes, amortizing
// dispatch overhead across the patterns the bench corpus executes most —
// per-node bookkeeping followed by an unconditional jump, the DO-loop
// test/increment/back-edge sequence, the first push of an expression, and
// the load-const-binop shape of counter updates like I = I + 1.
//
// Fusion preserves the bit-identical contract trivially: every fused arm in
// exec.go is the literal concatenation of its constituent opcodes' arms, so
// steps, counters, cost accumulation order, RNG draws and error messages
// are unchanged. Control-flow safety comes from the compiler's layout: all
// jump targets are opNode leaders (the first instruction emitted per CFG
// node) plus the prologue entry, so an instruction that follows a leader
// within the same node can never be jumped to — but the pass re-derives the
// target set from the instruction stream anyway and refuses to consume a
// targeted instruction, keeping it correct against future layout changes.

// fuse runs the peephole pass over one compiled procedure, rewriting its
// instruction stream in place and remapping every jump target and arm. It
// must run after patch() (targets are instruction indices, not node IDs).
func (pc *procCode) fuse() {
	ins := pc.ins
	n := len(ins)
	if n == 0 {
		return
	}

	// A consumed instruction must not be a jump target: execution would
	// land mid-superinstruction. Collect every target.
	target := make([]bool, n)
	mark := func(ip int32) {
		if int(ip) < n {
			target[ip] = true
		}
	}
	mark(pc.entry)
	for i := range ins {
		switch ins[i].op {
		case opBranch, opDoTest:
			mark(ins[i].a)
			mark(ins[i].b)
		case opJmp, opGoto:
			mark(ins[i].a)
		}
	}
	for _, a := range pc.arms {
		mark(a.ip)
	}

	// eat reports whether ins[j] may be folded into a superinstruction
	// starting before it.
	eat := func(j int) bool { return j < n && !target[j] }

	fused := make([]instr, 0, n)
	oldToNew := make([]int32, n)
	for i := 0; i < n; {
		in := ins[i]
		out := in
		width := 1
		switch in.op {
		case opNode:
			switch {
			case eat(i+1) && ins[i+1].op == opDoIncr && ins[i+1].b&2 == 0 &&
				eat(i+2) && ins[i+2].op == opJmp:
				d := ins[i+1]
				j := ins[i+2]
				out = instr{op: opNodeDoIncrJmp, a: d.a, b: d.b, c: d.c, d: j.a, e: j.b, f: in.a}
				width = 3
			case eat(i+1) && ins[i+1].op == opDoTest:
				d := ins[i+1]
				out = instr{op: opNodeDoTest, a: d.a, b: d.b, c: d.c, d: d.d, e: d.e, f: in.a}
				width = 2
			case eat(i+1) && ins[i+1].op == opJmp:
				j := ins[i+1]
				out = instr{op: opNodeJmp, a: j.a, b: j.b, f: in.a}
				width = 2
			case eat(i+1) && ins[i+1].op == opConst && eat(i+2) && ins[i+2].op == opConst:
				// The DO-header prefix: Node, Const lo, Const hi.
				out = instr{op: opNodeConstConst, a: ins[i+1].a, b: ins[i+2].a, f: in.a}
				width = 3
			case eat(i+1) && ins[i+1].op == opConst:
				out = instr{op: opNodeConst, a: ins[i+1].a, f: in.a}
				width = 2
			case eat(i+1) && ins[i+1].op == opRef && eat(i+2) && refBinTriple(ins, i+2, eat):
				// Node, Ref, then a ref-const-bin triple: the whole
				// accumulation-statement prefix in one dispatch.
				out = instr{op: opNodeRefRefConstBin,
					a: ins[i+1].a, b: ins[i+2].a, c: ins[i+3].a, d: ins[i+4].a, f: in.a}
				width = 5
			case eat(i+1) && refBinTriple(ins, i+1, eat):
				out = instr{op: opNodeRefConstBin,
					a: ins[i+1].a, b: ins[i+2].a, c: ins[i+3].a, f: in.a}
				width = 4
			case eat(i+1) && ins[i+1].op == opRef:
				out = instr{op: opNodeRef, a: ins[i+1].a, f: in.a}
				width = 2
			case eat(i+1) && ins[i+1].op == opLocal && !binTriple(ins, i+1, eat):
				// Leave the opLocal free when it opens a load-op-bin
				// triple: opNode + opLocalConstBin (2 dispatches) beats
				// opNodeLocal + opConst + opBin (3).
				out = instr{op: opNodeLocal, a: ins[i+1].a, f: in.a}
				width = 2
			case eat(i+1) && ins[i+1].op == opArgLocal && eat(i+2) && ins[i+2].op == opArgLocal:
				// A CALL statement's opening: Node, then argument staging.
				out = instr{op: opNodeArgLocal2, a: ins[i+1].a, b: ins[i+2].a, f: in.a}
				width = 3
			}
		case opLocal:
			if binTriple(ins, i, eat) {
				sec := ins[i+1]
				op := opLocalLocalBin
				if sec.op == opConst {
					op = opLocalConstBin
				}
				out = instr{op: op, a: in.a, b: sec.a, c: ins[i+2].a}
				width = 3
			}
		case opRef:
			if refBinTriple(ins, i, eat) {
				out = instr{op: opRefConstBin, a: in.a, b: ins[i+1].a, c: ins[i+2].a}
				width = 3
			}
		case opConst:
			switch {
			case eat(i+1) && ins[i+1].op == opTrip:
				// The DO-header suffix: Const step, Trip.
				out = instr{op: opConstTrip, a: in.a, b: ins[i+1].a}
				width = 2
			case eat(i+1) && ins[i+1].op == opBin:
				out = instr{op: opConstBin, a: in.a, b: ins[i+1].a}
				width = 2
			}
		case opArgLocal:
			if eat(i+1) && ins[i+1].op == opArgLocal {
				out = instr{op: opArgLocal2, a: in.a, b: ins[i+1].a}
				width = 2
			}
		case opActivate:
			if eat(i+1) && ins[i+1].op == opGoto {
				out = instr{op: opActivateGoto, a: ins[i+1].a}
				width = 2
			}
		case opBin:
			switch {
			case eat(i+1) && ins[i+1].op == opStoreRef &&
				eat(i+2) && ins[i+2].op == opJmp:
				out = instr{op: opBinStoreRefJmp, a: in.a, b: ins[i+1].a, c: ins[i+2].a, d: ins[i+2].b}
				width = 3
			case eat(i+1) && ins[i+1].op == opBranch:
				br := ins[i+1]
				out = instr{op: opBinBranch, a: br.a, b: br.b, c: br.c, d: br.d, e: in.a}
				width = 2
			}
		case opDoInitFin:
			if eat(i+1) && ins[i+1].op == opJmp {
				out = instr{op: opDoInitFinJmp, a: in.a, b: in.b, c: in.c, d: ins[i+1].a, e: ins[i+1].b}
				width = 2
			}
		case opStoreLocal:
			if eat(i+1) && ins[i+1].op == opJmp {
				out = instr{op: opStoreLocalJmp, a: in.a, b: ins[i+1].a, c: ins[i+1].b}
				width = 2
			}
		case opStoreRef:
			if eat(i+1) && ins[i+1].op == opJmp {
				out = instr{op: opStoreRefJmp, a: in.a, b: ins[i+1].a, c: ins[i+1].b}
				width = 2
			}
		case opDoIncr:
			if eat(i+1) && ins[i+1].op == opJmp {
				out = instr{op: opDoIncrJmp, a: in.a, b: in.b, c: in.c, d: ins[i+1].a, e: ins[i+1].b}
				width = 2
			}
		}
		idx := int32(len(fused))
		fused = append(fused, out)
		for k := 0; k < width; k++ {
			oldToNew[i+k] = idx
		}
		i += width
	}

	// Remap every control transfer from old indices to fused ones.
	for i := range fused {
		in := &fused[i]
		switch in.op {
		case opBranch, opDoTest, opNodeDoTest, opBinBranch:
			in.a = oldToNew[in.a]
			in.b = oldToNew[in.b]
		case opJmp, opGoto, opNodeJmp, opActivateGoto:
			in.a = oldToNew[in.a]
		case opNodeDoIncrJmp, opDoIncrJmp, opDoInitFinJmp:
			in.d = oldToNew[in.d]
		case opStoreLocalJmp, opStoreRefJmp:
			in.b = oldToNew[in.b]
		case opBinStoreRefJmp:
			in.c = oldToNew[in.c]
		}
	}
	for i := range pc.arms {
		pc.arms[i].ip = oldToNew[pc.arms[i].ip]
	}
	pc.entry = oldToNew[pc.entry]
	pc.fused = n - len(fused)
	pc.ins = fused
}

// binTriple reports whether ins[i] opens a load-load/const-binop triple
// whose tail may be consumed.
func binTriple(ins []instr, i int, eat func(int) bool) bool {
	return ins[i].op == opLocal &&
		eat(i+1) && (ins[i+1].op == opConst || ins[i+1].op == opLocal) &&
		eat(i+2) && ins[i+2].op == opBin
}

// refBinTriple reports whether ins[i] opens a ref-const-binop triple whose
// tail may be consumed.
func refBinTriple(ins []instr, i int, eat func(int) bool) bool {
	return ins[i].op == opRef &&
		eat(i+1) && ins[i+1].op == opConst &&
		eat(i+2) && ins[i+2].op == opBin
}
