// Package cfg defines the labelled control flow multigraph that every
// analysis in this repository operates on.
//
// The representation follows Definition 1 of Sarkar (PLDI 1989): a control
// flow graph CFG = (Nc, Ec, Tc) where Ec is a set of labelled edges (so two
// nodes may be connected by several edges with distinct labels) and Tc maps
// each node to one of the types START, STOP, HEADER, PREHEADER, POSTEXIT or
// OTHER. The type mapping carries no semantics of its own; it only marks the
// interval structure for later phases (ECFG and FCDG construction).
//
// Nodes are numbered from 1 upwards, matching the paper's convention that 0
// is reserved as the "no node" sentinel (e.g. HDR_PARENT(h) = 0 for the
// outermost interval).
package cfg

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within one Graph. IDs are dense, start at 1, and
// are never reused. The zero value None means "no node".
type NodeID int

// None is the null node ID. The paper numbers nodes from 1 so that 0 can act
// as the sentinel parent of the outermost interval.
const None NodeID = 0

// Label identifies which branch an edge represents.
type Label string

// Standard edge labels. True and False are the two arms of a conditional
// branch, Uncond is an unconditional transfer. PseudoStartStop and
// PseudoLoop label the pseudo edges inserted during ECFG construction
// (Z1 and Z2 in Figure 2 of the paper); they can never be taken at run time.
const (
	True            Label = "T"
	False           Label = "F"
	Uncond          Label = "U"
	PseudoStartStop Label = "Z1"
	PseudoLoop      Label = "Z2"
)

// IsPseudo reports whether l labels a pseudo control flow edge, i.e. an edge
// inserted by the ECFG transformation that is never taken by any execution.
func (l Label) IsPseudo() bool { return l == PseudoStartStop || l == PseudoLoop }

// NodeType classifies nodes per the paper's Tc mapping.
type NodeType int

// Node types from Definition 1. Other is the type of every node in an
// original (pre-ECFG) control flow graph.
const (
	Other NodeType = iota
	Start
	Stop
	Header
	Preheader
	Postexit
)

var nodeTypeNames = [...]string{"OTHER", "START", "STOP", "HEADER", "PREHEADER", "POSTEXIT"}

func (t NodeType) String() string {
	if t < 0 || int(t) >= len(nodeTypeNames) {
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
	return nodeTypeNames[t]
}

// Node is a unit of computation in the graph: a statement, basic block,
// operation or instruction. The graph itself does not interpret Payload;
// the frontend stores the lowered statement there and the interpreter reads
// it back.
type Node struct {
	ID   NodeID
	Type NodeType
	// Name is a short human-readable description used in dumps and DOT
	// output, e.g. "IF (M.GE.0)" or "PREHEADER(4)".
	Name string
	// Payload carries the frontend statement executed at this node, if any.
	Payload any
}

// Edge is a labelled control flow edge. A Pseudo edge is one inserted by the
// ECFG transformation that can never be taken at run time.
type Edge struct {
	From, To NodeID
	Label    Label
}

// Pseudo reports whether the edge is a pseudo control flow edge.
func (e Edge) Pseudo() bool { return e.Label.IsPseudo() }

func (e Edge) String() string {
	return fmt.Sprintf("%d -%s-> %d", e.From, e.Label, e.To)
}

// Graph is a labelled control flow multigraph. The zero value is not usable;
// call New.
type Graph struct {
	// Name identifies the procedure this graph belongs to.
	Name string

	nodes []*Node // index 0 unused so that nodes[id] works directly
	succ  [][]Edge
	pred  [][]Edge

	// Entry and Exit are the designated first and last nodes. They are
	// optional until Validate is called; lowering sets them and the ECFG
	// transformation replaces them with START/STOP.
	Entry, Exit NodeID
}

// New returns an empty graph for the named procedure.
func New(name string) *Graph {
	return &Graph{
		Name:  name,
		nodes: []*Node{nil}, // reserve index 0 = None
		succ:  [][]Edge{nil},
		pred:  [][]Edge{nil},
	}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.nodes) - 1 }

// MaxID returns the largest node ID in use. IDs are dense so MaxID equals
// NumNodes, but callers that size auxiliary arrays should use MaxID for
// clarity.
func (g *Graph) MaxID() NodeID { return NodeID(len(g.nodes) - 1) }

// AddNode creates a node of the given type and returns it.
func (g *Graph) AddNode(t NodeType, name string) *Node {
	n := &Node{ID: NodeID(len(g.nodes)), Type: t, Name: name}
	g.nodes = append(g.nodes, n)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return n
}

// Node returns the node with the given ID, or nil if id is None or out of
// range.
func (g *Graph) Node(id NodeID) *Node {
	if id <= None || int(id) >= len(g.nodes) {
		return nil
	}
	return g.nodes[id]
}

// Nodes returns all nodes in ID order. The returned slice is freshly
// allocated; mutating it does not affect the graph (the *Node values are
// shared).
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, g.NumNodes())
	for _, n := range g.nodes[1:] {
		out = append(out, n)
	}
	return out
}

// AddEdge inserts the labelled edge from -> to. Duplicate (from, to, label)
// triples are rejected because Ec is a set; distinct labels between the same
// node pair are allowed (multigraph).
func (g *Graph) AddEdge(from, to NodeID, label Label) error {
	if g.Node(from) == nil {
		return fmt.Errorf("cfg: AddEdge: no node %d", from)
	}
	if g.Node(to) == nil {
		return fmt.Errorf("cfg: AddEdge: no node %d", to)
	}
	for _, e := range g.succ[from] {
		if e.To == to && e.Label == label {
			return fmt.Errorf("cfg: AddEdge: duplicate edge %v", e)
		}
	}
	e := Edge{From: from, To: to, Label: label}
	g.succ[from] = append(g.succ[from], e)
	g.pred[to] = append(g.pred[to], e)
	return nil
}

// MustAddEdge is AddEdge that panics on error; it is intended for
// programmatically constructed graphs where a duplicate edge is a bug.
func (g *Graph) MustAddEdge(from, to NodeID, label Label) {
	if err := g.AddEdge(from, to, label); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the exact (from, to, label) edge. It reports whether an
// edge was removed.
func (g *Graph) RemoveEdge(from, to NodeID, label Label) bool {
	removed := false
	g.succ[from] = filterEdges(g.succ[from], func(e Edge) bool {
		if e.To == to && e.Label == label && !removed {
			removed = true
			return false
		}
		return true
	})
	if removed {
		g.pred[to] = filterEdges(g.pred[to], func(e Edge) bool {
			return !(e.From == from && e.Label == label)
		})
	}
	return removed
}

func filterEdges(edges []Edge, keep func(Edge) bool) []Edge {
	out := edges[:0]
	for _, e := range edges {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// OutEdges returns the edges leaving n in insertion order. The returned
// slice is shared with the graph; callers must not mutate it.
func (g *Graph) OutEdges(n NodeID) []Edge { return g.succ[n] }

// InEdges returns the edges entering n in insertion order. The returned
// slice is shared with the graph; callers must not mutate it.
func (g *Graph) InEdges(n NodeID) []Edge { return g.pred[n] }

// Succs returns the distinct successor node IDs of n in first-seen order.
func (g *Graph) Succs(n NodeID) []NodeID {
	return distinctTargets(g.succ[n], func(e Edge) NodeID { return e.To })
}

// Preds returns the distinct predecessor node IDs of n in first-seen order.
func (g *Graph) Preds(n NodeID) []NodeID {
	return distinctTargets(g.pred[n], func(e Edge) NodeID { return e.From })
}

func distinctTargets(edges []Edge, pick func(Edge) NodeID) []NodeID {
	var out []NodeID
	for _, e := range edges {
		id := pick(e)
		dup := false
		for _, seen := range out {
			if seen == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	return out
}

// Edges returns every edge in the graph, ordered by source node ID and then
// insertion order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for id := NodeID(1); id <= g.MaxID(); id++ {
		out = append(out, g.succ[id]...)
	}
	return out
}

// Labels returns the distinct edge labels leaving n, in first-seen order.
func (g *Graph) Labels(n NodeID) []Label {
	var out []Label
	for _, e := range g.succ[n] {
		dup := false
		for _, l := range out {
			if l == e.Label {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e.Label)
		}
	}
	return out
}

// Validate checks the structural invariants that later phases rely on:
// Entry and Exit are set and exist, every node is reachable from Entry, and
// no edge dangles. It returns a descriptive error for the first violation.
func (g *Graph) Validate() error {
	if g.Node(g.Entry) == nil {
		return fmt.Errorf("cfg %q: entry node %d does not exist", g.Name, g.Entry)
	}
	if g.Node(g.Exit) == nil {
		return fmt.Errorf("cfg %q: exit node %d does not exist", g.Name, g.Exit)
	}
	reach := g.ReachableFrom(g.Entry)
	for id := NodeID(1); id <= g.MaxID(); id++ {
		if !reach[id] {
			return fmt.Errorf("cfg %q: node %d (%s) unreachable from entry", g.Name, id, g.nodes[id].Name)
		}
	}
	return nil
}

// ReachableFrom returns the set of nodes reachable from start by following
// edges forward (including start itself). The result is indexed by NodeID.
func (g *Graph) ReachableFrom(start NodeID) []bool {
	reach := make([]bool, g.MaxID()+1)
	if g.Node(start) == nil {
		return reach
	}
	stack := []NodeID{start}
	reach[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.succ[n] {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return reach
}

// Clone returns a deep copy of the graph structure. Node Payload pointers
// are shared (payloads are immutable statements).
func (g *Graph) Clone() *Graph {
	out := New(g.Name)
	out.Entry, out.Exit = g.Entry, g.Exit
	for _, n := range g.nodes[1:] {
		c := *n
		out.nodes = append(out.nodes, &c)
		out.succ = append(out.succ, append([]Edge(nil), g.succ[n.ID]...))
		out.pred = append(out.pred, append([]Edge(nil), g.pred[n.ID]...))
	}
	return out
}

// String renders a compact textual dump, one node per line with its
// out-edges, suitable for golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cfg %q entry=%d exit=%d\n", g.Name, g.Entry, g.Exit)
	for id := NodeID(1); id <= g.MaxID(); id++ {
		n := g.nodes[id]
		fmt.Fprintf(&b, "  %3d %-9s %-24s ->", id, n.Type, n.Name)
		for _, e := range g.succ[id] {
			fmt.Fprintf(&b, " %d:%s", e.To, e.Label)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT renders the graph in Graphviz dot syntax. Pseudo edges are dashed,
// node types other than OTHER are shown as shapes.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	for id := NodeID(1); id <= g.MaxID(); id++ {
		n := g.nodes[id]
		shape := "box"
		switch n.Type {
		case Start, Stop:
			shape = "ellipse"
		case Preheader, Postexit:
			shape = "hexagon"
		case Header:
			shape = "house"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", id, fmt.Sprintf("%d: %s", id, n.Name), shape)
	}
	for _, e := range g.Edges() {
		style := ""
		if e.Pseudo() {
			style = " style=dashed"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q%s];\n", e.From, e.To, string(e.Label), style)
	}
	b.WriteString("}\n")
	return b.String()
}

// SortedIDs returns all node IDs in ascending order. It exists for callers
// that want deterministic iteration without caring about graph internals.
func (g *Graph) SortedIDs() []NodeID {
	ids := make([]NodeID, 0, g.NumNodes())
	for id := NodeID(1); id <= g.MaxID(); id++ {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
