package cfg

import (
	"strings"
	"testing"
)

func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	a := g.AddNode(Other, "a")
	b := g.AddNode(Other, "b")
	c := g.AddNode(Other, "c")
	d := g.AddNode(Other, "d")
	g.MustAddEdge(a.ID, b.ID, True)
	g.MustAddEdge(a.ID, c.ID, False)
	g.MustAddEdge(b.ID, d.ID, Uncond)
	g.MustAddEdge(c.ID, d.ID, Uncond)
	g.Entry, g.Exit = a.ID, d.ID
	return g
}

func TestAddNodeAssignsDenseIDsFromOne(t *testing.T) {
	g := New("t")
	for want := NodeID(1); want <= 5; want++ {
		n := g.AddNode(Other, "x")
		if n.ID != want {
			t.Fatalf("node ID = %d, want %d", n.ID, want)
		}
	}
	if g.NumNodes() != 5 || g.MaxID() != 5 {
		t.Fatalf("NumNodes=%d MaxID=%d, want 5, 5", g.NumNodes(), g.MaxID())
	}
}

func TestNodeLookup(t *testing.T) {
	g := diamond(t)
	if g.Node(None) != nil {
		t.Error("Node(None) should be nil")
	}
	if g.Node(99) != nil {
		t.Error("Node(out of range) should be nil")
	}
	if n := g.Node(2); n == nil || n.Name != "b" {
		t.Errorf("Node(2) = %+v, want node b", n)
	}
}

func TestAddEdgeRejectsDuplicatesAndDangling(t *testing.T) {
	g := diamond(t)
	if err := g.AddEdge(1, 2, True); err == nil {
		t.Error("duplicate (from,to,label) edge should be rejected")
	}
	// Same pair, different label: multigraph allows it.
	if err := g.AddEdge(1, 2, Uncond); err != nil {
		t.Errorf("distinct label between same nodes should be allowed: %v", err)
	}
	if err := g.AddEdge(1, 99, Uncond); err == nil {
		t.Error("edge to nonexistent node should be rejected")
	}
	if err := g.AddEdge(99, 1, Uncond); err == nil {
		t.Error("edge from nonexistent node should be rejected")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := diamond(t)
	if !g.RemoveEdge(1, 2, True) {
		t.Fatal("RemoveEdge existing edge returned false")
	}
	if g.RemoveEdge(1, 2, True) {
		t.Fatal("RemoveEdge absent edge returned true")
	}
	for _, e := range g.OutEdges(1) {
		if e.To == 2 && e.Label == True {
			t.Fatal("edge still present in out list")
		}
	}
	for _, e := range g.InEdges(2) {
		if e.From == 1 && e.Label == True {
			t.Fatal("edge still present in in list")
		}
	}
}

func TestSuccsPredsDistinct(t *testing.T) {
	g := New("multi")
	a := g.AddNode(Other, "a")
	b := g.AddNode(Other, "b")
	g.MustAddEdge(a.ID, b.ID, True)
	g.MustAddEdge(a.ID, b.ID, False)
	if got := g.Succs(a.ID); len(got) != 1 || got[0] != b.ID {
		t.Errorf("Succs = %v, want [2]", got)
	}
	if got := g.Preds(b.ID); len(got) != 1 || got[0] != a.ID {
		t.Errorf("Preds = %v, want [1]", got)
	}
	if got := g.Labels(a.ID); len(got) != 2 {
		t.Errorf("Labels = %v, want two labels", got)
	}
}

func TestValidate(t *testing.T) {
	g := diamond(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	// Unreachable node.
	g.AddNode(Other, "island")
	if err := g.Validate(); err == nil {
		t.Error("graph with unreachable node accepted")
	}
	// Missing entry.
	g2 := New("empty")
	if err := g2.Validate(); err == nil {
		t.Error("graph without entry accepted")
	}
}

func TestReachableFrom(t *testing.T) {
	g := diamond(t)
	reach := g.ReachableFrom(2)
	want := map[NodeID]bool{2: true, 4: true}
	for id := NodeID(1); id <= g.MaxID(); id++ {
		if reach[id] != want[id] {
			t.Errorf("reach[%d] = %v, want %v", id, reach[id], want[id])
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.MustAddEdge(4, 1, Uncond)
	c.Node(1).Name = "changed"
	if len(g.OutEdges(4)) != 0 {
		t.Error("clone edge mutation leaked into original")
	}
	if g.Node(1).Name != "a" {
		t.Error("clone node mutation leaked into original")
	}
	if c.Entry != g.Entry || c.Exit != g.Exit {
		t.Error("clone lost entry/exit")
	}
}

func TestPseudoLabels(t *testing.T) {
	if !PseudoStartStop.IsPseudo() || !PseudoLoop.IsPseudo() {
		t.Error("Z labels must be pseudo")
	}
	for _, l := range []Label{True, False, Uncond} {
		if l.IsPseudo() {
			t.Errorf("%s must not be pseudo", l)
		}
	}
	e := Edge{From: 1, To: 2, Label: PseudoLoop}
	if !e.Pseudo() {
		t.Error("edge with Z2 label must be pseudo")
	}
}

func TestStringAndDOTContainStructure(t *testing.T) {
	g := diamond(t)
	s := g.String()
	for _, want := range []string{"diamond", "entry=1", "exit=4", "2:T", "3:F"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	d := g.DOT()
	for _, want := range []string{"digraph", "n1 -> n2", "n3 -> n4"} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT() missing %q:\n%s", want, d)
		}
	}
}

func TestNodeTypeString(t *testing.T) {
	cases := map[NodeType]string{
		Other: "OTHER", Start: "START", Stop: "STOP",
		Header: "HEADER", Preheader: "PREHEADER", Postexit: "POSTEXIT",
	}
	for ty, want := range cases {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(ty), ty.String(), want)
		}
	}
	if got := NodeType(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown NodeType should print its value, got %q", got)
	}
}

func TestEdgesOrderedBySource(t *testing.T) {
	g := diamond(t)
	prev := NodeID(0)
	for _, e := range g.Edges() {
		if e.From < prev {
			t.Fatalf("Edges() not ordered by source: %v", g.Edges())
		}
		prev = e.From
	}
	if len(g.Edges()) != 4 {
		t.Fatalf("len(Edges) = %d, want 4", len(g.Edges()))
	}
}
