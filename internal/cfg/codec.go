package cfg

import (
	"repro/internal/wire"
)

// Encode writes the graph's full structure — nodes (ID order, type, name),
// entry/exit, and the succ and pred adjacency lists verbatim — so Decode
// reconstructs a graph whose observable state (including edge iteration
// order) is bit-identical to the original. Payloads are NOT encoded: the
// artifact cache re-lowers the source on load and re-attaches payloads by
// node ID, which preserves the pointer sharing (e.g. one *lang.DoLoop
// across its DO nodes) that serialization would break.
func (g *Graph) Encode(w *wire.Writer) {
	w.String(g.Name)
	w.Varint(int64(g.Entry))
	w.Varint(int64(g.Exit))
	w.Uvarint(uint64(g.NumNodes()))
	for _, n := range g.nodes[1:] {
		w.U8(uint8(n.Type))
		w.String(n.Name)
	}
	encodeAdj(w, g.succ[1:])
	encodeAdj(w, g.pred[1:])
}

func encodeAdj(w *wire.Writer, adj [][]Edge) {
	for _, edges := range adj {
		w.Uvarint(uint64(len(edges)))
		for _, e := range edges {
			w.Varint(int64(e.From))
			w.Varint(int64(e.To))
			w.String(string(e.Label))
		}
	}
}

func decodeAdj(r *wire.Reader, n int) [][]Edge {
	adj := make([][]Edge, n+1)
	for id := 1; id <= n; id++ {
		m := r.Count(3)
		edges := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			e := Edge{
				From:  NodeID(r.Varint()),
				To:    NodeID(r.Varint()),
				Label: Label(r.String()),
			}
			if e.From <= None || int(e.From) > n || e.To <= None || int(e.To) > n {
				r.Failf("edge %v references node outside graph of %d nodes", e, n)
				return adj
			}
			edges = append(edges, e)
		}
		adj[id] = edges
	}
	return adj
}

// DecodeGraph reads a graph written by Encode. payload, when non-nil,
// supplies each node's Payload (typically from a freshly lowered copy of
// the same procedure). Malformed input surfaces through r.Err(); the
// returned graph is only meaningful when r.Err() == nil.
func DecodeGraph(r *wire.Reader, payload func(NodeID) any) *Graph {
	g := New(r.String())
	g.Entry = NodeID(r.Varint())
	g.Exit = NodeID(r.Varint())
	n := r.Count(2)
	for id := 1; id <= n; id++ {
		t := NodeType(r.U8())
		name := r.String()
		if t < Other || t > Postexit {
			r.Failf("node %d has invalid type %d", id, int(t))
			return g
		}
		node := g.AddNode(t, name)
		if payload != nil {
			node.Payload = payload(node.ID)
		}
	}
	if r.Err() != nil {
		return g
	}
	g.succ = decodeAdj(r, n)
	g.pred = decodeAdj(r, n)
	if g.Entry != None && g.Node(g.Entry) == nil {
		r.Failf("entry %d outside graph", g.Entry)
	}
	if g.Exit != None && g.Node(g.Exit) == nil {
		r.Failf("exit %d outside graph", g.Exit)
	}
	return g
}

// DecodeNodeID reads a node ID and validates it against g (None allowed).
func DecodeNodeID(r *wire.Reader, g *Graph) NodeID {
	id := NodeID(r.Varint())
	if id == None {
		return id
	}
	if g.Node(id) == nil {
		r.Failf("node ID %d outside graph %q", id, g.Name)
		return None
	}
	return id
}

// DecodeEdge reads an edge whose endpoints must exist in g.
func DecodeEdge(r *wire.Reader, g *Graph) Edge {
	e := Edge{From: NodeID(r.Varint()), To: NodeID(r.Varint()), Label: Label(r.String())}
	if r.Err() == nil && (g.Node(e.From) == nil || g.Node(e.To) == nil) {
		r.Failf("edge %v references node outside graph %q", e, g.Name)
	}
	return e
}

// EncodeEdge writes an edge for DecodeEdge.
func EncodeEdge(w *wire.Writer, e Edge) {
	w.Varint(int64(e.From))
	w.Varint(int64(e.To))
	w.String(string(e.Label))
}
