package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/interp"
	"repro/internal/paperex"
)

func TestFlatProfilePaperExample(t *testing.T) {
	p, err := Load(paperex.Source)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.Unit
	est, err := p.Estimate(model, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := est.FlatProfile()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FlatRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if got := byName["EXMPL"].Calls; got != 1 {
		t.Errorf("EXMPL calls = %g, want 1", got)
	}
	if got := byName["FOO"].Calls; got != 9 {
		t.Errorf("FOO calls = %g, want 9", got)
	}
	// Self/cumulative consistency: main's cumulative is the whole-program
	// time and exceeds its self time (it calls FOO).
	if byName["EXMPL"].Self >= byName["EXMPL"].Cumulative {
		t.Errorf("EXMPL self %g !< cumulative %g", byName["EXMPL"].Self, byName["EXMPL"].Cumulative)
	}
	// Total self across procedures = whole-program time.
	total := 0.0
	for _, r := range rows {
		total += r.TotalSelf
	}
	if math.Abs(total-est.Main.Time) > 1e-9 {
		t.Errorf("Σ calls×self = %g, want TIME = %g", total, est.Main.Time)
	}
	text := FormatFlat(rows)
	for _, want := range []string{"%time", "EXMPL", "FOO"} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatFlat missing %q:\n%s", want, text)
		}
	}
}

func TestFlatProfileRecursive(t *testing.T) {
	src := `      PROGRAM RECM
      INTEGER N
      N = 7
      CALL R(N)
      END

      SUBROUTINE R(N)
      INTEGER N
      IF (N .LE. 0) RETURN
      N = N - 1
      CALL R(N)
      RETURN
      END
`
	p, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.Unit
	est, err := p.Estimate(model, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := est.FlatProfile()
	if err != nil {
		t.Fatal(err)
	}
	var r FlatRow
	for _, row := range rows {
		if row.Name == "R" {
			r = row
		}
	}
	// R activates 8 times (N=7 down to 0).
	if math.Abs(r.Calls-8) > 1e-9 {
		t.Errorf("R calls = %g, want 8", r.Calls)
	}
	// Flat total equals the measured program cost (mean exactness).
	measured, err := p.MeasuredCost(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, row := range rows {
		total += row.TotalSelf
	}
	if math.Abs(total-measured) > 1e-6*measured {
		t.Errorf("flat total %g, measured %g", total, measured)
	}
}

func TestConditionFreq(t *testing.T) {
	p, err := Load(paperex.Source)
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.Estimate(cost.Unit, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := p.An.Procs["EXMPL"]
	h := a.Intervals.Headers()[0]
	if got := est.ConditionFreq("EXMPL", h, "T"); math.Abs(got-1) > 1e-12 {
		t.Errorf("FREQ(header,T) = %g, want 1", got)
	}
	if got := est.ConditionFreq("NOPE", h, "T"); got != 0 {
		t.Errorf("unknown proc freq = %g, want 0", got)
	}
}

func TestFlatProfileSIMPLEShares(t *testing.T) {
	// Sanity on a multi-procedure program: phases called once per cycle,
	// INIT once.
	src := simpleSrc(t)
	p, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	est, err := p.Estimate(cost.Optimized, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := est.FlatProfile()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FlatRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if got := byName["INIT"].Calls; got != 1 {
		t.Errorf("INIT calls = %g, want 1", got)
	}
	if got := byName["VELO"].Calls; got != 3 {
		t.Errorf("VELO calls = %g, want 3 (NCYC=3)", got)
	}
	_ = interp.Options{}
}

func simpleSrc(t *testing.T) string {
	t.Helper()
	// A miniature SIMPLE-shaped driver (3 cycles, 2 phases).
	return `      PROGRAM MINI
      INTEGER IC
      CALL INIT
      DO 10 IC = 1, 3
         CALL VELO
         CALL POSN
   10 CONTINUE
      END

      SUBROUTINE INIT
      RETURN
      END

      SUBROUTINE VELO
      INTEGER I
      DO 20 I = 1, 10
   20 CONTINUE
      RETURN
      END

      SUBROUTINE POSN
      INTEGER I
      DO 30 I = 1, 5
   30 CONTINUE
      RETURN
      END
`
}
